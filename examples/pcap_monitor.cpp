// pcap_monitor: run Table-1 NetQRE applications — several at once, as one
// QuerySet — over a pcap capture file, with TCP reordering handled by the
// runtime preprocessor (§2).
//
//   pcap_monitor <capture.pcap> [query-file[:main-sfun]...]
//
// Every named query is loaded into one QuerySet, so the capture is decoded
// and classified once no matter how many queries run.  With no capture on
// hand, generate one first with examples/make_traces.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "netqre.hpp"

int main(int argc, char** argv) {
  using namespace netqre;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <capture.pcap> [query-file[:main-sfun]...]\n",
                 argv[0]);
    return 2;
  }
  const std::string pcap_path = argv[1];
  std::vector<std::string> specs(argv + 2, argv + argc);
  if (specs.empty()) specs.push_back("heavy_hitter.nqre:hh");

  QuerySet set;
  for (const auto& spec : specs) {
    const size_t colon = spec.find(':');
    const std::string file = spec.substr(0, colon);
    std::string main_sfun =
        colon != std::string::npos ? spec.substr(colon + 1) : "";
    if (main_sfun.empty()) {
      for (const auto& q : apps::table1()) {
        if (q.file == file) main_sfun = q.main;
      }
    }
    auto program = apps::compile_app(file, main_sfun);
    if (!set.load(main_sfun, std::move(program.query))) {
      std::fprintf(stderr, "duplicate query name '%s'\n", main_sfun.c_str());
      return 2;
    }
  }

  // The runtime handles reordering/retransmissions before the queries (§2).
  // mmap reader -> reorderer -> query set compose over the batched
  // PacketSource interface; no per-packet glue.
  net::MappedPcapReader reader(pcap_path);
  net::TcpReorderer reorder;
  net::ReorderingSource source(reader, reorder);
  const uint64_t n = run_source(set, source);

  std::printf("%llu packets processed through %zu quer%s (%llu reordered, "
              "%llu retransmits dropped)\n",
              static_cast<unsigned long long>(n), set.size(),
              set.size() == 1 ? "y" : "ies",
              static_cast<unsigned long long>(reorder.stats().reordered),
              static_cast<unsigned long long>(
                  reorder.stats().retransmits_dropped));

  for (const auto& name : set.names()) {
    if (set.is_scalar(name)) {
      std::printf("%s = %s\n", name.c_str(),
                  set.eval(name).to_string().c_str());
      continue;
    }
    std::printf("%s per instantiation:\n", name.c_str());
    int shown = 0;
    set.enumerate(name, [&](const std::vector<core::Value>& key,
                            const core::Value& value) {
      if (++shown > 20) return;
      std::string k;
      for (const auto& v : key) k += v.to_string() + " ";
      std::printf("  %s-> %s\n", k.c_str(), value.to_string().c_str());
    });
    if (shown > 20) std::printf("  ... (%d more)\n", shown - 20);
  }
  return 0;
}
