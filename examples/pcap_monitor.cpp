// pcap_monitor: run any Table-1 NetQRE application over a pcap capture file,
// with TCP reordering handled by the runtime preprocessor (§2).
//
//   pcap_monitor <capture.pcap> [query-file [main-sfun]]
//
// With no capture on hand, generate one first with examples/make_traces.
#include <cstdio>
#include <string>

#include "apps/queries.hpp"
#include "netqre.hpp"

int main(int argc, char** argv) {
  using namespace netqre;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <capture.pcap> [query-file [main-sfun]]\n",
                 argv[0]);
    return 2;
  }
  const std::string pcap_path = argv[1];
  const std::string query_file = argc > 2 ? argv[2] : "heavy_hitter.nqre";
  const std::string main_sfun = argc > 3 ? argv[3] : "hh";

  auto program = apps::compile_app(query_file, main_sfun);
  core::Engine engine(program.query);

  // The runtime handles reordering/retransmissions before the query (§2).
  // mmap reader -> reorderer -> engine compose over the batched
  // PacketSource interface; no per-packet glue.
  net::MappedPcapReader reader(pcap_path);
  net::TcpReorderer reorder;
  net::ReorderingSource source(reader, reorder);
  const uint64_t n = run_source(engine, source);

  std::printf("%llu packets processed (%llu reordered, %llu retransmits "
              "dropped)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(reorder.stats().reordered),
              static_cast<unsigned long long>(
                  reorder.stats().retransmits_dropped));

  if (program.query.param_names.empty()) {
    std::printf("%s = %s\n", main_sfun.c_str(),
                engine.eval().to_string().c_str());
  } else {
    std::printf("%s per instantiation:\n", main_sfun.c_str());
    int shown = 0;
    engine.enumerate([&](const std::vector<core::Value>& key,
                         const core::Value& value) {
      if (++shown > 20) return;
      std::string k;
      for (const auto& v : key) k += v.to_string() + " ";
      std::printf("  %s-> %s\n", k.c_str(), value.to_string().c_str());
    });
    if (shown > 20) std::printf("  ... (%d more)\n", shown - 20);
  }
  return 0;
}
