// make_traces: write the synthetic workloads to pcap files so the other
// examples (and external tools like tcpdump/wireshark) can consume them.
//
//   make_traces [output-dir]
#include <cstdio>
#include <string>

#include "net/pcap.hpp"
#include "trafficgen/trafficgen.hpp"

int main(int argc, char** argv) {
  using namespace netqre;
  const std::string dir = argc > 1 ? argv[1] : ".";

  auto dump = [&](const std::string& name,
                  const std::vector<net::Packet>& trace) {
    const std::string path = dir + "/" + name;
    net::write_all(path, trace);
    std::printf("%-24s %8zu packets\n", path.c_str(), trace.size());
  };

  trafficgen::BackboneConfig backbone;
  backbone.n_packets = 100'000;
  backbone.n_flows = 5'000;
  dump("backbone.pcap", trafficgen::backbone_trace(backbone));

  dump("synflood.pcap", trafficgen::syn_flood_trace({}));
  dump("slowloris.pcap", trafficgen::slowloris_trace({}));
  dump("sip.pcap", trafficgen::sip_trace({}));
  dump("dns.pcap", trafficgen::dns_trace({}));
  dump("smtp.pcap", trafficgen::smtp_trace({}));
  return 0;
}
