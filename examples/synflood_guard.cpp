// synflood_guard: live enforcement on the emulated SDN substrate (§7.3) —
// a NetQRE SYN-flood detector on a switch mirror port that blocks the
// attacker through the controller, printing the resulting server bandwidth.
#include <cstdio>

#include "sdn/experiments.hpp"

int main() {
  using namespace netqre::sdn;
  E2EResult r = run_synflood_experiment();
  if (r.detect_time < 0) {
    std::printf("attack was not detected\n");
    return 1;
  }
  std::printf("SYN flood detected at t=%.2fs, source blocked at t=%.2fs "
              "(%llu attack packets dropped)\n\n",
              r.detect_time, r.block_time,
              static_cast<unsigned long long>(r.dropped_by_rule));
  std::printf("%s", format_series(r).c_str());
  return 0;
}
