// Quickstart: compile a NetQRE program from source text and run it over a
// packet stream.
//
// The program is the paper's opening example family: count per-flow bytes
// (heavy hitter, §4.1).  Packets here are built in memory; see
// examples/pcap_monitor.cpp for reading capture files.
#include <cstdio>

#include "net/ipv4.hpp"
#include "netqre.hpp"

int main() {
  using namespace netqre;

  // 1. A NetQRE program (the prelude provides count_size and filter).
  const std::string source = R"(
    sfun int hh(IP x, IP y) =
      filter(srcip == x, dstip == y) >> count_size;
  )";

  // 2. Compile it: parsing, type-directed lowering, PSRE -> DFA compilation,
  //    unambiguity checks and the guarded-state plan all happen here.
  lang::CompiledProgram program = netqre::compile(source, "hh");
  for (const auto& w : program.query.warnings) {
    std::printf("compile warning: %s\n", w.c_str());
  }

  // 3. Feed packets.  The engine maintains one guarded state per observed
  //    (x, y) instantiation - no manual per-flow bookkeeping.
  core::Engine engine(program.query);
  auto packet = [](const char* src, const char* dst, uint32_t len) {
    net::Packet p;
    p.src_ip = *net::parse_ip(src);
    p.dst_ip = *net::parse_ip(dst);
    p.proto = net::Proto::Tcp;
    p.wire_len = len;
    return p;
  };
  engine.on_packet(packet("10.0.0.1", "10.0.0.2", 1500));
  engine.on_packet(packet("10.0.0.1", "10.0.0.2", 900));
  engine.on_packet(packet("10.0.0.3", "10.0.0.2", 64));

  // 4. Query results: at a concrete instantiation, or all observed flows.
  core::Value v = engine.eval_at(
      {core::Value::ip(*net::parse_ip("10.0.0.1")),
       core::Value::ip(*net::parse_ip("10.0.0.2"))});
  std::printf("hh(10.0.0.1, 10.0.0.2) = %s bytes\n", v.to_string().c_str());

  std::printf("all observed flows:\n");
  engine.enumerate([](const std::vector<core::Value>& key,
                      const core::Value& value) {
    std::printf("  %s -> %s : %s bytes\n", key[0].to_string().c_str(),
                key[1].to_string().c_str(), value.to_string().c_str());
  });
  return 0;
}
