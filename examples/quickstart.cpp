// Quickstart: compile NetQRE programs from source text and run them — as a
// QuerySet, the primary embedding shape — over a packet stream.
//
// The programs are the paper's opening example family: per-flow byte counts
// (heavy hitter, §4.1) and per-source distinct destinations (super
// spreader).  Both queries share each packet's decode and predicate
// classification; add a third with one more load() call.  Packets here are
// built in memory; see examples/pcap_monitor.cpp for reading capture files.
#include <cstdio>

#include "net/ipv4.hpp"
#include "netqre.hpp"

int main() {
  using namespace netqre;

  // 1. NetQRE programs (the prelude provides count_size and filter).
  const std::string hh_source = R"(
    sfun int hh(IP x, IP y) =
      filter(srcip == x, dstip == y) >> count_size;
  )";
  const std::string ss_source = R"(
    sfun int ss(IP x) = sum{ exists(srcip == x && dstip == y) | IP y };
  )";

  // 2. Compile and load.  compile() runs parsing, type-directed lowering,
  //    PSRE -> DFA compilation, unambiguity checks and the guarded-state
  //    plan; load() puts the query into the live set under a name.
  QuerySet set;
  set.load("hh", netqre::compile(hh_source, "hh").query);
  set.load("ss", netqre::compile(ss_source, "ss").query);

  // 3. Feed packets.  One pass evaluates every loaded query; each maintains
  //    one guarded state per observed parameter instantiation — no manual
  //    per-flow bookkeeping.
  auto packet = [](const char* src, const char* dst, uint32_t len) {
    net::Packet p;
    p.src_ip = *net::parse_ip(src);
    p.dst_ip = *net::parse_ip(dst);
    p.proto = net::Proto::Tcp;
    p.wire_len = len;
    return p;
  };
  set.on_packet(packet("10.0.0.1", "10.0.0.2", 1500));
  set.on_packet(packet("10.0.0.1", "10.0.0.2", 900));
  set.on_packet(packet("10.0.0.3", "10.0.0.2", 64));

  // 4. Query results by name: at a concrete instantiation, or all observed
  //    instantiations of one query.
  core::Value v = set.eval_at(
      "hh", {core::Value::ip(*net::parse_ip("10.0.0.1")),
             core::Value::ip(*net::parse_ip("10.0.0.2"))});
  std::printf("hh(10.0.0.1, 10.0.0.2) = %s bytes\n", v.to_string().c_str());

  std::printf("all observed flows:\n");
  set.enumerate("hh", [](const std::vector<core::Value>& key,
                         const core::Value& value) {
    std::printf("  %s -> %s : %s bytes\n", key[0].to_string().c_str(),
                key[1].to_string().c_str(), value.to_string().c_str());
  });
  std::printf("distinct destinations per source:\n");
  set.enumerate("ss", [](const std::vector<core::Value>& key,
                         const core::Value& value) {
    std::printf("  %s : %s\n", key[0].to_string().c_str(),
                value.to_string().c_str());
  });
  return 0;
}
