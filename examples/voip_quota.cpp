// voip_quota: the paper's motivating scenario (§2) end to end — monitor
// per-user VoIP usage from SIP/RTP traffic and alert users whose usage is
// far above the average.
//
// Uses the full phase-split usage program (queries/voip_usage.nqre): each
// call is decomposed into init/call/end phases and only call-phase media
// bytes are charged (§4.3).
#include <cstdio>

#include "apps/queries.hpp"
#include "netqre.hpp"
#include "trafficgen/trafficgen.hpp"

int main() {
  using namespace netqre;

  // A SIPp-like workload: 12 calls across 4 users (user0 makes the most).
  trafficgen::SipConfig cfg;
  cfg.n_users = 4;
  cfg.n_calls = 12;
  cfg.media_pkts_per_call = 40;
  const auto trace = trafficgen::sip_trace(cfg);
  std::printf("replaying %zu packets of SIP + RTP traffic\n\n", trace.size());

  auto usage = apps::compile_app("voip_usage.nqre", "usage_per_user");
  core::Engine engine(usage.query);
  for (const auto& p : trace) engine.on_packet(p);

  double total = 0;
  int users = 0;
  std::printf("%-32s %12s\n", "user", "usage (B)");
  engine.enumerate([&](const std::vector<core::Value>& key,
                       const core::Value& value) {
    std::printf("%-32s %12s\n", key[0].to_string().c_str(),
                value.to_string().c_str());
    total += value.as_double();
    ++users;
  });
  if (users == 0) {
    std::printf("no VoIP usage observed\n");
    return 1;
  }
  const double avg = total / users;
  std::printf("\naverage usage = %.0f B\n", avg);
  engine.enumerate([&](const std::vector<core::Value>& key,
                       const core::Value& value) {
    if (value.as_double() > 1.5 * avg) {
      std::printf("ALERT: %s usage %.0f B exceeds 1.5x average\n",
                  key[0].to_string().c_str(), value.as_double());
    }
  });
  return 0;
}
