// Tier-equivalence differential suite: every Table-1 query runs its golden
// workload through the interpreter and the compiled tier — single-shard and
// 4-shard — and the full snapshots (top-level result + sorted per-key
// enumeration) must be bit-identical.  The compiled tier is only correct if
// it is indistinguishable from the interpreter on every query it claims.
//
// Also pins the tier census: the eight queries the analyzer specializes
// today must never silently regress to the interpreter (a regression here
// is a perf cliff that no functional test would catch).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/ops.hpp"
#include "core/parallel.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::EngineTier;
using core::ParallelEngine;
using core::Value;

// Same small fixed-seed workloads as the golden-result tests.
std::vector<net::Packet> workload_for(const std::string& query_file) {
  using namespace trafficgen;
  if (query_file == "syn_flood.nqre") {
    SynFloodConfig cfg;
    cfg.benign_handshakes = 20;
    cfg.attack_handshakes = 120;
    return syn_flood_trace(cfg);
  }
  if (query_file == "slowloris.nqre") {
    SlowlorisConfig cfg;
    cfg.normal_conns = 12;
    cfg.slow_conns = 18;
    cfg.duration = 10.0;
    return slowloris_trace(cfg);
  }
  if (query_file == "voip_count.nqre" || query_file == "voip_usage.nqre") {
    SipConfig cfg;
    cfg.n_users = 4;
    cfg.n_calls = 12;
    cfg.media_pkts_per_call = 8;
    return sip_trace(cfg);
  }
  if (query_file == "email_keywords.nqre") {
    SmtpConfig cfg;
    cfg.n_mails = 40;
    cfg.keyword_mails = 9;
    return smtp_trace(cfg);
  }
  if (query_file == "dns_tunnel.nqre" ||
      query_file == "dns_amplification.nqre") {
    DnsConfig cfg;
    cfg.normal_queries = 80;
    cfg.tunnel_queries = 15;
    cfg.amplification_pairs = 12;
    return dns_trace(cfg);
  }
  BackboneConfig cfg;
  cfg.n_packets = 2000;
  cfg.n_flows = 50;
  cfg.seed = 5;
  return backbone_trace(cfg);
}

std::string snapshot(const core::CompiledQuery& q, Engine& eng) {
  std::ostringstream out;
  out << "result " << eng.eval().to_string() << '\n';
  std::vector<std::string> entries;
  if (dynamic_cast<const core::ParamScopeOp*>(q.root.get()) != nullptr) {
    eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
      std::ostringstream line;
      line << "entry";
      for (const auto& k : key) line << ' ' << k.to_string();
      line << " = " << v.to_string();
      entries.push_back(line.str());
    });
  }
  std::sort(entries.begin(), entries.end());
  out << "entries " << entries.size() << '\n';
  for (const auto& e : entries) out << e << '\n';
  return out.str();
}

// Per-shard snapshots plus the merged enumeration: both tiers run behind
// the same partitioner, so shard-by-shard state must match exactly.
std::string parallel_snapshot(const core::CompiledQuery& q,
                              const ParallelEngine& pe) {
  std::ostringstream out;
  std::vector<std::string> entries;
  const auto* scope = dynamic_cast<const core::ParamScopeOp*>(q.root.get());
  if (scope != nullptr) {
    pe.enumerate_all([&](const std::vector<Value>& key, const Value& v) {
      std::ostringstream line;
      line << "entry";
      for (const auto& k : key) line << ' ' << k.to_string();
      line << " = " << v.to_string();
      entries.push_back(line.str());
    });
    if (scope->mode().kind == core::ScopeMode::Kind::Aggregate) {
      out << "merged " << pe.aggregate(scope->mode().agg).to_string() << '\n';
    }
  }
  std::sort(entries.begin(), entries.end());
  out << "entries " << entries.size() << '\n';
  for (const auto& e : entries) out << e << '\n';
  for (int s = 0; s < pe.workers(); ++s) {
    out << "shard " << s << " result "
        << pe.shard_engine(s).eval().to_string() << '\n';
  }
  return out.str();
}

class SpecTierTest : public ::testing::TestWithParam<apps::QueryInfo> {};

// Single shard: forced-interpreted vs auto vs forced-compiled.  Auto must
// agree with the interpreter on every query; forced-compiled additionally
// proves the fallback path is inert (it interprets when no plan exists).
TEST_P(SpecTierTest, SingleShardSnapshotsAreTierInvariant) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  const auto trace = workload_for(info.file);

  Engine interp(prog.query, EngineTier::Interpreted);
  ASSERT_STREQ(interp.tier(), "interpreted");
  for (const auto& p : trace) interp.on_packet(p);
  const std::string want = snapshot(prog.query, interp);

  Engine autoe(prog.query);  // tier auto-selected behind the gate
  for (const auto& p : trace) autoe.on_packet(p);
  EXPECT_EQ(want, snapshot(prog.query, autoe))
      << info.title << ": auto tier (" << autoe.tier()
      << ") diverged from the interpreter";

  Engine forced(prog.query, EngineTier::Compiled);
  for (const auto& p : trace) forced.on_packet(p);
  EXPECT_EQ(want, snapshot(prog.query, forced))
      << info.title << ": forced compiled tier (" << forced.tier()
      << ") diverged from the interpreter";

  // eval_at must agree on every enumerated key and on a fresh one.
  if (const auto* scope =
          dynamic_cast<const core::ParamScopeOp*>(prog.query.root.get())) {
    interp.enumerate([&](const std::vector<Value>& key, const Value& v) {
      EXPECT_EQ(v.to_string(), autoe.eval_at(key).to_string())
          << info.title << ": eval_at diverged";
    });
    const std::vector<Value> fresh(static_cast<size_t>(scope->n_params()),
                                   Value::integer(999983));
    EXPECT_EQ(interp.eval_at(fresh).to_string(),
              autoe.eval_at(fresh).to_string())
        << info.title << ": fresh-key eval_at diverged";
  }
}

// 4-shard parallel runtime: the same hash partitioner feeds both tiers, so
// every shard sees the same sub-stream and must hold identical state.
TEST_P(SpecTierTest, FourShardSnapshotsAreTierInvariant) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  const auto trace = workload_for(info.file);

  ParallelEngine interp(prog.query, 4, nullptr, EngineTier::Interpreted);
  interp.feed(trace);
  interp.finish();

  ParallelEngine compiled(prog.query, 4, nullptr, EngineTier::Compiled);
  compiled.feed(trace);
  compiled.finish();

  EXPECT_EQ(parallel_snapshot(prog.query, interp),
            parallel_snapshot(prog.query, compiled))
      << info.title << ": 4-shard compiled tier (" << compiled.tier()
      << ") diverged from the interpreter";
}

std::string param_name(
    const ::testing::TestParamInfo<apps::QueryInfo>& info) {
  std::string n = info.param.main;
  std::replace_if(
      n.begin(), n.end(), [](char c) { return !std::isalnum(c); }, '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, SpecTierTest,
                         ::testing::ValuesIn(apps::table1()), param_name);

// Saves NETQRE_FORCE_TIER around a test and clears it on entry: census
// tests assert the *Auto* decision, which the CI tier-matrix (running the
// whole suite under a forced tier) would otherwise override.
class ScopedTierEnv {
 public:
  ScopedTierEnv() {
    if (const char* v = ::getenv("NETQRE_FORCE_TIER")) saved_ = v;
    ::unsetenv("NETQRE_FORCE_TIER");
  }
  ~ScopedTierEnv() {
    if (saved_.empty()) {
      ::unsetenv("NETQRE_FORCE_TIER");
    } else {
      ::setenv("NETQRE_FORCE_TIER", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

// The specialized census: these eight queries carry a clean certificate
// gate and a proven plan today.  If any of them shows up "interpreted"
// under auto selection, the analyzer lost a shape — fail loudly instead of
// silently falling back to the slow tier.
TEST(SpecTierCensus, CompiledSetNeverShrinks) {
  ScopedTierEnv env_guard;
  const std::set<std::string> must_compile = {
      "hh",        "ss",           "src_pkts",         "flow_pkts",
      "total_bytes", "recent_src_bytes", "dns_long_queries", "keyword_pkts"};
  for (const auto& info : apps::table1()) {
    if (must_compile.count(info.main) == 0) continue;
    auto prog = apps::compile_app(info.file, info.main);
    Engine eng(prog.query);  // Auto: gate + structural proof
    EXPECT_STREQ(eng.tier(), "specialized")
        << info.main << " regressed to the interpreter: "
        << eng.tier_reason();
  }
}

// NETQRE_FORCE_TIER is the CI tier-matrix hook: it must override Auto in
// both directions but never a programmatic tier choice.
TEST(SpecTierCensus, ForceTierEnvOverridesAuto) {
  ScopedTierEnv env_guard;
  auto prog = apps::compile_app("heavy_hitter.nqre", "hh");
  ::setenv("NETQRE_FORCE_TIER", "interpreted", 1);
  {
    Engine eng(prog.query);
    EXPECT_STREQ(eng.tier(), "interpreted");
    Engine pinned(prog.query, EngineTier::Compiled);
    EXPECT_STREQ(pinned.tier(), "specialized")
        << "explicit ctor tier must win over the environment";
  }
  ::setenv("NETQRE_FORCE_TIER", "compiled", 1);
  {
    Engine eng(prog.query);
    EXPECT_STREQ(eng.tier(), "specialized");
  }
}

}  // namespace
}  // namespace netqre
