// Unit tests for the differential fuzzing harness itself: spec round-trips,
// generator health, the in-process specialized monitor, the shrinker, the
// corpus serialization, and a fixed-seed differential run.  The longer
// campaign lives in the `netqre_fuzz_smoke` ctest (500 iterations); CI's
// nightly job explores with a clock-derived seed on top.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/codegen.hpp"
#include "core/engine.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/gen.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;
using fuzz::GenConfig;
using fuzz::Rng;
using fuzz::SNode;
using net::Packet;

// ------------------------------------------------------------------ spec

TEST(FuzzSpec, PrintParseRoundtrip) {
  Rng rng(99);
  GenConfig cfg;
  for (int i = 0; i < 200; ++i) {
    const SNode prog = fuzz::random_program(rng, cfg);
    const SNode back = fuzz::parse_spec(fuzz::print_spec(prog));
    EXPECT_EQ(prog, back) << fuzz::print_spec(prog);
  }
}

TEST(FuzzSpec, ParserRejectsMalformed) {
  EXPECT_THROW(fuzz::parse_spec("(const 1"), fuzz::SpecError);
  EXPECT_THROW(fuzz::parse_spec("(const 1) junk"), fuzz::SpecError);
  EXPECT_THROW(fuzz::parse_spec("(bin add (const 1) 2)"), fuzz::SpecError);
  EXPECT_THROW(fuzz::compile_spec(fuzz::parse_spec("(wat)")),
               fuzz::SpecError);
  EXPECT_THROW(fuzz::compile_spec(fuzz::parse_spec("(const x)")),
               fuzz::SpecError);
  // Param slot outside the aggregate's declared range.
  EXPECT_THROW(fuzz::compile_spec(fuzz::parse_spec(
                   "(agg sum 0 1 (exists (param srcip 3 0)))")),
               fuzz::SpecError);
}

TEST(FuzzSpec, CompilesAConcreteCounter) {
  const SNode prog = fuzz::parse_spec(
      "(agg sum 0 1 (comp (filter (pand (param srcip 0 0) (atom syn eq 1)))"
      " (foldc sum 1)))");
  auto q = fuzz::compile_spec(prog);
  EXPECT_TRUE(q.warnings.empty());
  EXPECT_EQ(q.n_slots, 1);
}

// ------------------------------------------------------------- generator

TEST(FuzzGen, EveryDrawCompilesWithoutWarnings) {
  Rng rng(7);
  GenConfig cfg;
  uint64_t rejected = 0;
  for (int i = 0; i < 300; ++i) {
    const SNode prog = fuzz::next_program(rng, cfg, rejected);
    auto q = fuzz::compile_spec(prog);  // must not throw
    EXPECT_TRUE(q.warnings.empty()) << fuzz::print_spec(prog);
  }
  // The grammar is built to mostly compile: rejections are the ambiguous
  // tail, not the common case.
  EXPECT_LT(rejected, 300u);
}

TEST(FuzzGen, TracesRespectTheStreamBound) {
  Rng rng(13);
  GenConfig cfg;
  cfg.max_stream = 6;
  bool saw_empty = false;
  for (int i = 0; i < 200; ++i) {
    const auto trace = fuzz::random_trace(rng, cfg);
    EXPECT_LE(trace.size(), 6u);
    saw_empty |= trace.empty();
  }
  EXPECT_TRUE(saw_empty);  // empty streams are part of the adversarial mix
}

// ------------------------------------------------------- codegen monitor

TEST(FuzzOracle, SpecializedMonitorMatchesEngine) {
  // The heavy-hitter shape: per-source SYN counter.
  const SNode prog = fuzz::parse_spec(
      "(agg sum 0 1 (comp (filter (pand (param srcip 0 0) (atom syn eq 1)))"
      " (foldc sum 1)))");
  auto q = fuzz::compile_spec(prog);
  auto plan = core::analyze_spec(q);
  ASSERT_TRUE(plan.has_value());

  std::vector<Packet> trace;
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.ts = 1000.0 + i;
    p.src_ip = 1 + static_cast<uint32_t>(i % 3);
    p.dst_ip = 9;
    p.proto = net::Proto::Tcp;
    p.tcp_flags = (i % 2) ? net::TcpFlags::kSyn : net::TcpFlags::kAck;
    trace.push_back(p);
  }

  Engine eng(q);
  eng.on_stream(trace);
  core::SpecializedMonitor mon(*plan);
  for (const auto& p : trace) mon.on_packet(p);

  EXPECT_EQ(eng.eval().as_int(), mon.aggregate());
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    ASSERT_EQ(key.size(), 1u);
    EXPECT_EQ(mon.at(static_cast<uint64_t>(key[0].as_int())), v.as_int());
  });
}

// --------------------------------------------------------------- shrink

TEST(FuzzShrink, MinimizesASyntheticFailure) {
  // Failure := "the program still contains a (foldc ...) node AND the trace
  // still holds a packet with src == 7".  The shrinker should strip
  // everything else.
  const SNode prog = fuzz::parse_spec(
      "(bin add (bin mul (const 3) (const 4))"
      " (comp (filter (atom syn eq 1)) (foldc sum 1)))");
  std::vector<Packet> trace(30);
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].ts = 1000.0 + static_cast<double>(i);
    trace[i].src_ip = (i == 17) ? 7u : 1u;
  }

  auto has_fold = [](const auto& self, const SNode& n) -> bool {
    if (n.tag == "foldc") return true;
    for (const auto& k : n.kids) {
      if (self(self, k)) return true;
    }
    return false;
  };
  fuzz::FailPredicate still_fails = [&](const SNode& p,
                                        const std::vector<Packet>& t) {
    bool pkt = false;
    for (const auto& q : t) pkt |= q.src_ip == 7;
    return pkt && has_fold(has_fold, p);
  };

  ASSERT_TRUE(still_fails(prog, trace));
  const auto r = fuzz::shrink_case(prog, trace, still_fails);
  ASSERT_TRUE(still_fails(r.prog, r.trace));
  EXPECT_EQ(r.trace.size(), 1u);  // exactly the src==7 packet survives
  EXPECT_EQ(r.trace[0].src_ip, 7u);
  EXPECT_LE(fuzz::spec_size(r.prog), 2);  // the fold node, maybe one parent
  EXPECT_GT(r.steps, 0u);
}

// --------------------------------------------------------------- corpus

TEST(FuzzCorpus, CaseTextRoundtrip) {
  fuzz::FuzzCase c;
  c.note = "roundtrip probe";
  c.prog = fuzz::parse_spec("(agg sum 0 1 (exists (param srcip 0 0)))");
  Packet p;
  p.ts = 1234.5625;
  p.src_ip = 3;
  p.dst_ip = 4;
  p.src_port = 10;
  p.dst_port = 20;
  p.proto = net::Proto::Tcp;
  p.tcp_flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  p.seq = 77;
  p.ack_no = 88;
  p.wire_len = 512;
  p.payload = "GET /";
  c.trace = {p};

  const fuzz::FuzzCase back = fuzz::case_from_text(fuzz::case_to_text(c));
  EXPECT_EQ(back.note, c.note);
  EXPECT_EQ(back.prog, c.prog);
  ASSERT_EQ(back.trace.size(), 1u);
  EXPECT_EQ(back.trace[0].ts, p.ts);
  EXPECT_EQ(back.trace[0].tcp_flags, p.tcp_flags);
  EXPECT_EQ(back.trace[0].payload, p.payload);
  EXPECT_EQ(back.trace[0].wire_len, p.wire_len);
}

TEST(FuzzCorpus, RejectsBadMagic) {
  EXPECT_THROW(fuzz::case_from_text("bogus v9\nprog (const 1)\n"),
               fuzz::SpecError);
}

// ------------------------------------------------------------- campaign

TEST(FuzzCampaign, FixedSeedRunIsCleanAndDeterministic) {
  fuzz::FuzzConfig cfg;
  cfg.seed = 2026;
  cfg.iterations = 300;
  const auto a = fuzz::run_fuzz(cfg);
  EXPECT_EQ(a.iterations, 300u);
  EXPECT_EQ(a.mismatches, 0u)
      << (a.failures.empty() ? std::string() : a.failures[0]);
  EXPECT_GT(a.scope_programs, 0u);
  EXPECT_GT(a.checks_codegen, 0u);
  EXPECT_GT(a.checks_parallel_sharded, 0u);

  const auto b = fuzz::run_fuzz(cfg);  // same seed → same campaign
  EXPECT_EQ(b.rejected, a.rejected);
  EXPECT_EQ(b.scope_programs, a.scope_programs);
  EXPECT_EQ(b.checks_codegen, a.checks_codegen);
}

TEST(FuzzCampaign, ReplayReportsMalformedFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "nq_fuzz_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "broken.case").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("netqre-fuzz-case v1\nprog (const\n", f);
    fclose(f);
  }
  std::vector<std::string> lines;
  EXPECT_EQ(fuzz::replay_corpus({path}, fuzz::OracleOptions{}, lines), 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("MISMATCH"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace netqre
