// Tests for the health & alerting engine (src/obs/health): the .health
// rule parser, the per-(rule,key) state machine (hysteresis boundaries,
// `for`-duration debounce, flap suppression, store-gap handling), metric
// rules over the obs registry, the CRITICAL → TraceGovernor dump
// correlation, the ALERT wire extension round-trip into a parent's
// FleetAlertView, and the /api/v1/alerts HTTP surface.
//
// Store-driven rules must behave identically in both telemetry builds (the
// engine's own gauges become no-ops, the state machine does not); tests
// that read the metrics registry skip when telemetry is compiled out.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/series_store.hpp"
#include "store/stream.hpp"

namespace netqre {
namespace {

using health::AlertStatus;
using health::AlertTransition;
using health::HealthConfig;
using health::HealthEngine;
using health::HealthRule;
using health::Threshold;
using obs::kEnabled;

constexpr uint64_t kSecond = 1'000'000'000ull;
constexpr uint64_t kBase = 1'700'000'000ull * kSecond;

uint64_t at(uint64_t s) { return kBase + s * kSecond; }

// One-key store rule over context "q": Value of dimension "value",
// warn > 10, crit > 20.
HealthRule value_rule(double hysteresis = 0, uint64_t for_ns = 0) {
  HealthRule r;
  r.name = "r";
  r.source = HealthRule::Source::Store;
  r.selector = "q";
  r.key = "value";
  r.method = HealthRule::Method::Value;
  r.window_s = 60;
  r.warn = {Threshold::Op::Gt, 10};
  r.crit = {Threshold::Op::Gt, 20};
  r.hysteresis = hysteresis;
  r.for_ns = for_ns;
  return r;
}

// Ingests one scalar sample into the store's "q" context at round `s`.
void put(store::SeriesStore& store, uint64_t s, double v) {
  store.ingest(store.context("q"), at(s), {{"value", v}});
}

// ------------------------------------------------------------------ parser

TEST(HealthParse, FullStanzaRoundTrips) {
  const auto res = health::parse_health_rules(
      "# comment\n"
      "alarm: syn_flood\n"
      "on: syn_flood.nqre\n"
      "key: value\n"
      "lookup: max -60s\n"
      "warn: > 20\n"
      "crit: > 50\n"
      "for: 5s\n"
      "hysteresis: 5\n"
      "info: too many half-open handshakes\n"
      "\n"
      "alarm: evictions\n"
      "metric: netqre_store_evicted_keys_total\n"
      "lookup: delta\n"
      "warn: > 0\n");
  ASSERT_TRUE(res.error.empty()) << res.error;
  ASSERT_EQ(res.rules.size(), 2u);
  const HealthRule& r = res.rules[0];
  EXPECT_EQ(r.name, "syn_flood");
  EXPECT_EQ(r.source, HealthRule::Source::Store);
  EXPECT_EQ(r.selector, "syn_flood.nqre");
  EXPECT_EQ(r.key, "value");
  EXPECT_EQ(r.method, HealthRule::Method::Max);
  EXPECT_EQ(r.window_s, 60);
  EXPECT_EQ(r.warn.op, Threshold::Op::Gt);
  EXPECT_EQ(r.warn.value, 20.0);
  EXPECT_EQ(r.crit.value, 50.0);
  EXPECT_EQ(r.for_ns, 5 * kSecond);
  EXPECT_EQ(r.hysteresis, 5.0);
  EXPECT_EQ(r.info, "too many half-open handshakes");
  EXPECT_EQ(res.rules[1].source, HealthRule::Source::Metric);
  EXPECT_EQ(res.rules[1].method, HealthRule::Method::Delta);
}

TEST(HealthParse, ErrorsAreLineNumberedAndAtomic) {
  // Line 3 is malformed: the whole file is rejected, not partially loaded.
  const auto res = health::parse_health_rules(
      "alarm: a\n"
      "on: ctx\n"
      "warn: >>> nonsense\n");
  EXPECT_TRUE(res.rules.empty());
  EXPECT_NE(res.error.find("line 3"), std::string::npos) << res.error;

  EXPECT_FALSE(health::parse_health_rules("on: ctx\n").error.empty());
  EXPECT_FALSE(health::parse_health_rules("alarm: a\non: c\n").error.empty())
      << "a rule without thresholds must be rejected";
  EXPECT_FALSE(health::parse_health_rules("").error.empty());
}

TEST(HealthParse, BuiltinRulesCoverTheDaemonTelemetry) {
  const auto rules = health::builtin_rules();
  ASSERT_GE(rules.size(), 5u);
  for (const auto& r : rules) {
    EXPECT_EQ(r.source, HealthRule::Source::Metric);
    EXPECT_FALSE(r.selector.empty());
    EXPECT_FALSE(r.info.empty());
  }
}

// ------------------------------------------------------------ state machine

TEST(HealthStateMachine, EscalatesAndStatusNamesRoundTrip) {
  store::SeriesStore store;
  HealthEngine eng(&store, nullptr);
  eng.add_rule(value_rule());

  put(store, 0, 5);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);

  put(store, 1, 15);
  eng.evaluate(at(1));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Warning);

  put(store, 2, 25);
  eng.evaluate(at(2));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);
  EXPECT_EQ(eng.transitions_total(), 2u);

  AlertStatus s;
  ASSERT_TRUE(health::parse_alert_status("CRITICAL", s));
  EXPECT_EQ(s, AlertStatus::Critical);
  EXPECT_FALSE(health::parse_alert_status("bogus", s));
}

TEST(HealthStateMachine, HysteresisBoundary) {
  store::SeriesStore store;
  HealthEngine eng(&store, nullptr);
  eng.add_rule(value_rule(/*hysteresis=*/5));

  // Raise at the boundary: > 20 crosses only past the threshold.
  put(store, 0, 20);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Warning);
  put(store, 1, 21);
  eng.evaluate(at(1));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);

  // Inside the release band (20-5=15 < v <= 20): Critical holds.
  put(store, 2, 16);
  eng.evaluate(at(2));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);

  // Below the band: releases to Warning (11 > warn 10 still).
  put(store, 3, 11);
  eng.evaluate(at(3));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Warning);

  // Warning's own band (10-5=5 < v <= 10) holds, then releases.
  put(store, 4, 6);
  eng.evaluate(at(4));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Warning);
  put(store, 5, 5);
  eng.evaluate(at(5));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);
}

TEST(HealthStateMachine, ForDurationDebouncesEscalationOnly) {
  store::SeriesStore store;
  HealthEngine eng(&store, nullptr);
  eng.add_rule(value_rule(/*hysteresis=*/0, /*for_ns=*/5 * kSecond));

  // Breach at t=0: pending, not committed.
  put(store, 0, 25);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);
  EXPECT_EQ(eng.transitions_total(), 0u);

  // Still breached at +2s: still pending.
  eng.evaluate(at(2));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);

  // A dip resets the pending clock.
  put(store, 3, 5);
  eng.evaluate(at(3));
  put(store, 4, 25);
  eng.evaluate(at(4));
  eng.evaluate(at(8));  // 4s after the re-breach: not yet
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);

  // Held the full 5s: commits.
  eng.evaluate(at(9));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);
  EXPECT_EQ(eng.transitions_total(), 1u);

  // De-escalation is immediate (no `for` on the way down).
  put(store, 10, 1);
  eng.evaluate(at(10));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);
}

TEST(HealthStateMachine, FlapSuppressionFreezesAndRecovers) {
  store::SeriesStore store;
  HealthConfig cfg;
  cfg.flap_transitions = 2;
  cfg.flap_window_ns = 60 * kSecond;
  HealthEngine eng(&store, nullptr, cfg);
  eng.add_rule(value_rule());

  // Three committed transitions inside the window trip the flap latch.
  put(store, 0, 25);
  eng.evaluate(at(0));  // Clear -> Critical
  put(store, 1, 1);
  eng.evaluate(at(1));  // Critical -> Clear
  put(store, 2, 25);
  eng.evaluate(at(2));  // Clear -> Critical (3rd commit: now flapping)
  EXPECT_EQ(eng.transitions_total(), 3u);

  // Frozen: further oscillation is suppressed, status stays put.
  put(store, 3, 1);
  eng.evaluate(at(3));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);
  EXPECT_EQ(eng.transitions_total(), 3u);
  EXPECT_GE(eng.suppressed_total(), 1u);

  // Quiet for a full window: the latch releases and transitions resume.
  eng.evaluate(at(70));
  put(store, 71, 1);
  eng.evaluate(at(71));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Clear);
  EXPECT_EQ(eng.transitions_total(), 4u);
}

TEST(HealthStateMachine, StoreGapHoldsStateAndCountsMiss) {
  store::SeriesStore store;
  HealthEngine eng(&store, nullptr);
  HealthRule r = value_rule();
  r.window_s = 10;  // tight window so silence becomes a gap
  eng.add_rule(r);

  put(store, 0, 25);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);

  // A different dimension keeps the clock moving; "value" goes silent.
  // 20s later its window holds no defined point — the alarm HOLDS (data
  // loss is a telemetry problem, not recovery).
  store.ingest(store.context("q"), at(20), {{"other", 1.0}});
  eng.evaluate(at(20));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);
  EXPECT_NE(eng.alerts_json().find("\"no_data_evals\":1"), std::string::npos)
      << eng.alerts_json();

  // A rule over a context that never existed evaluates to no keys at all.
  HealthRule ghost = value_rule();
  ghost.name = "ghost";
  ghost.selector = "missing";
  eng.add_rule(ghost);
  eng.evaluate(at(21));
  EXPECT_FALSE(eng.status("ghost", "value").has_value());
}

TEST(HealthStateMachine, AggregateAndWildcardKeys) {
  store::SeriesStore store;
  const auto ctx = store.context("q");
  store.ingest(ctx, at(0), {{"a", 30.0}, {"b", 40.0}});

  // No key: one alarm over the per-row sum of all dimensions.
  HealthRule agg = value_rule();
  agg.key.clear();
  HealthEngine eng(&store, nullptr);
  eng.add_rule(agg);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("r", "total"), AlertStatus::Critical);
  EXPECT_NE(eng.alerts_json().find("\"value\":70"), std::string::npos)
      << eng.alerts_json();

  // key "*": one alarm per dimension.
  HealthRule fan = value_rule();
  fan.name = "fan";
  fan.key = "*";
  eng.add_rule(fan);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("fan", "a"), AlertStatus::Critical);
  EXPECT_EQ(eng.status("fan", "b"), AlertStatus::Critical);
  const auto counts = eng.counts();
  EXPECT_EQ(counts.critical, 3u);
}

// ------------------------------------------------------------- metric rules

TEST(HealthMetricRules, LabeledMetricsFanOutPerLabelSet) {
  if (!kEnabled) GTEST_SKIP() << "no metrics registry in no-op build";
  obs::registry().reset();
  auto& g0 = obs::registry().gauge(obs::labeled_name(
      "netqre_health_test_depth", {{"shard", "0"}}));
  auto& g1 = obs::registry().gauge(obs::labeled_name(
      "netqre_health_test_depth", {{"shard", "1"}}));
  g0.set(2);
  g1.set(9);

  HealthRule r;
  r.name = "depth";
  r.source = HealthRule::Source::Metric;
  r.selector = "netqre_health_test_depth";
  r.method = HealthRule::Method::Value;
  r.crit = {Threshold::Op::Ge, 8};
  HealthEngine eng(nullptr, nullptr);
  eng.add_rule(r);
  eng.evaluate(at(0));
  EXPECT_EQ(eng.status("depth", "shard=\"0\""), AlertStatus::Clear);
  EXPECT_EQ(eng.status("depth", "shard=\"1\""), AlertStatus::Critical);
  obs::registry().reset();
}

TEST(HealthMetricRules, DeltaIsBaselineFirst) {
  if (!kEnabled) GTEST_SKIP() << "no metrics registry in no-op build";
  obs::registry().reset();
  auto& c = obs::registry().counter("netqre_health_test_events_total");
  c.inc(1000);  // pre-existing count must never fire on first sight

  HealthRule r;
  r.name = "events";
  r.source = HealthRule::Source::Metric;
  r.selector = "netqre_health_test_events_total";
  r.method = HealthRule::Method::Delta;
  r.crit = {Threshold::Op::Gt, 10};
  HealthEngine eng(nullptr, nullptr);
  eng.add_rule(r);

  eng.evaluate(at(0));  // baseline-setting sighting
  EXPECT_EQ(eng.status("events", "value"), AlertStatus::Clear);

  c.inc(5);  // small delta: still clear
  eng.evaluate(at(1));
  EXPECT_EQ(eng.status("events", "value"), AlertStatus::Clear);

  c.inc(100);  // burst: fires on the change, not the absolute value
  eng.evaluate(at(2));
  EXPECT_EQ(eng.status("events", "value"), AlertStatus::Critical);
  obs::registry().reset();
}

// ------------------------------------------- transitions, log, correlation

TEST(HealthLog, TransitionLogIsStableBoundedAndSequenced) {
  store::SeriesStore store;
  HealthConfig cfg;
  cfg.max_transitions = 2;
  HealthEngine eng(&store, nullptr, cfg);
  eng.add_rule(value_rule());

  put(store, 0, 15);
  eng.evaluate(at(0));
  put(store, 1, 25);
  eng.evaluate(at(1));
  put(store, 2, 1);
  eng.evaluate(at(2));

  // Three transitions happened; the bounded log keeps the last two, and
  // log_text carries no timestamps (byte-stable across identical replays).
  EXPECT_EQ(eng.transitions_total(), 3u);
  EXPECT_EQ(eng.log_text(),
            "#1 r[value] WARNING->CRITICAL value=25\n"
            "#2 r[value] CRITICAL->CLEAR value=1\n");
  EXPECT_NE(eng.log_json().find("\"seq\":2"), std::string::npos);

  // Idempotence: re-evaluating without new data commits nothing.
  const std::string before = eng.log_text();
  eng.evaluate(at(30));
  eng.evaluate(at(60));
  EXPECT_EQ(eng.log_text(), before);
}

TEST(HealthGovernor, CriticalTransitionCorrelatesDump) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_health_dump_test";
  fs::remove_all(dir);
  obs::GovernorConfig gcfg;
  gcfg.dump_dir = dir.string();
  gcfg.prefix = "alert";
  obs::TraceGovernor governor(gcfg);

  store::SeriesStore store;
  HealthEngine eng(&store, &governor);
  eng.add_rule(value_rule());

  put(store, 0, 15);
  eng.evaluate(at(0));  // Warning: no dump
  EXPECT_EQ(governor.dumps_written(), 0u);

  put(store, 1, 25);
  eng.evaluate(at(1));  // Critical: dump, recorded on the transition
  EXPECT_EQ(governor.dumps_written(), 1u);
  const std::string log = eng.log_json();
  const size_t dump_at = log.find("\"dump\":\"");
  ASSERT_NE(dump_at, std::string::npos) << log;
  std::ifstream in(dir / "alert_0.json");
  ASSERT_TRUE(in.good());
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("alert: r[value] CRITICAL"), std::string::npos);

  // A second CRITICAL inside the "alert" cooldown commits its transition
  // but correlates no new dump.
  put(store, 2, 1);
  eng.evaluate(at(2));
  put(store, 3, 25);
  eng.evaluate(at(3));
  EXPECT_EQ(eng.status("r", "value"), AlertStatus::Critical);
  EXPECT_EQ(governor.dumps_written(), 1u);
  fs::remove_all(dir);
}

// --------------------------------------------- wire round-trip + fleet view

TEST(HealthStream, AlertLineRoundTripsIntoFleetView) {
  // Edge side: transitions feed the hook, which renders ALERT lines.
  store::SeriesStore edge_store;
  HealthEngine eng(&edge_store, nullptr);
  eng.add_rule(value_rule());
  std::vector<std::string> bodies;
  eng.set_transition_hook([&bodies](const AlertTransition& tr) {
    store::AlertLine line;
    line.t_ns = tr.t_ns;
    line.seq = tr.seq;
    line.rule = tr.rule;
    line.from = health::alert_status_name(tr.from);
    line.to = health::alert_status_name(tr.to);
    line.value = tr.value;
    line.key = tr.key;
    bodies.push_back(store::render_alert("edge-test", line));
  });
  put(edge_store, 0, 25.5);
  eng.evaluate(at(0));
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0].find("ALERT "), std::string::npos);

  // Parent side: apply_push parses the line and hands it to the view.
  store::SeriesStore parent_store;
  health::FleetAlertView view;
  const auto res = store::apply_push(
      parent_store, bodies[0],
      [&view](std::string_view source, const store::AlertLine& line) {
        view.ingest(source, line);
      });
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_EQ(res.alerts, 1u);
  EXPECT_EQ(view.sources(), 1u);
  const std::string json = view.alerts_json();
  EXPECT_NE(json.find("\"source\":\"edge-test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"r\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"CRITICAL\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":25.5"), std::string::npos);
  EXPECT_NE(view.log_json().find("\"from\":\"CLEAR\""), std::string::npos);
}

TEST(HealthStream, MalformedAlertLinesAreRejected) {
  store::SeriesStore s;
  const auto bad = [&s](const std::string& body) {
    return store::apply_push(s, "NETQRE-STREAM v1\n" + body).error;
  };
  EXPECT_FALSE(bad("ALERT 1 0 r CLEAR CRITICAL 2\n").empty())
      << "ALERT before SOURCE must be rejected";
  EXPECT_FALSE(bad("SOURCE e\nALERT 1 0 r CLEAR\n").empty());
  EXPECT_FALSE(bad("SOURCE e\nALERT x 0 r CLEAR CRITICAL 2\n").empty());
  EXPECT_FALSE(bad("SOURCE e\nCONTEXT c\nBEGIN 1\n"
                   "ALERT 1 0 r CLEAR CRITICAL 2\nEND\n")
                   .empty())
      << "ALERT inside a round must be rejected";
  // Keys may contain spaces (the tail of the line).
  const auto ok = store::apply_push(
      s, "NETQRE-STREAM v1\nSOURCE e\nALERT 1 0 r CLEAR WARNING 2 a b c\n");
  EXPECT_TRUE(ok.error.empty()) << ok.error;
  EXPECT_EQ(ok.alerts, 1u);
}

// ----------------------------------------------------------- HTTP endpoints

std::string http_get(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

TEST(HealthHttp, AlertsEndpointsServeEngineState) {
  store::SeriesStore store;
  HealthEngine eng(&store, nullptr);
  eng.add_rule(value_rule());
  put(store, 0, 25);
  eng.evaluate(at(0));

  obs::HttpServer srv;
  health::register_health_endpoints(srv, eng);
  srv.start(0);
  const std::string alerts = http_get(srv.port(), "/api/v1/alerts");
  EXPECT_NE(alerts.find("200"), std::string::npos);
  EXPECT_NE(alerts.find("\"status\":\"CRITICAL\""), std::string::npos)
      << alerts;
  const std::string log = http_get(srv.port(), "/api/v1/alerts/log");
  EXPECT_NE(log.find("\"to\":\"CRITICAL\""), std::string::npos);
  const std::string text =
      http_get(srv.port(), "/api/v1/alerts/log?format=text");
  EXPECT_NE(text.find("#0 r[value] CLEAR->CRITICAL value=25"),
            std::string::npos)
      << text;
  srv.stop();
}

}  // namespace
}  // namespace netqre
