// Resource-certificate tests (src/lang/certify.hpp).
//
// Every Table-1 query is certified, then run over its golden-test workload
// with per-op profiling on, and the observed behaviour is held to the
// certified bounds: guard-trie key growth never exceeds the touched-leaf
// width, total operator steps never exceed packets x the per-packet cost
// bound, and (where the certificate claims bounded state) engine memory
// stays within fixed + keys x bytes-per-key.  A certificate may be loose —
// these are upper bounds — but it must never be wrong.
//
// The engine-tier decision is pinned as a golden file
// (tests/golden/spec_reasons.txt): every query maps to specialized or
// interpreted with a structured reason.  Regenerate after intentional
// changes with NETQRE_UPDATE_GOLDEN=1, like the result snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/ops.hpp"
#include "lang/certify.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;

#ifndef NETQRE_GOLDEN_DIR
#define NETQRE_GOLDEN_DIR "tests/golden"
#endif
#ifndef NETQRE_CORPUS_DIR
#define NETQRE_CORPUS_DIR "tests/corpus"
#endif

// Same small fixed-seed workloads as the golden-result tests, so certified
// bounds are checked on exactly the traffic whose results are pinned.
std::vector<net::Packet> workload_for(const std::string& query_file) {
  using namespace trafficgen;
  if (query_file == "syn_flood.nqre") {
    SynFloodConfig cfg;
    cfg.benign_handshakes = 20;
    cfg.attack_handshakes = 120;
    return syn_flood_trace(cfg);
  }
  if (query_file == "slowloris.nqre") {
    SlowlorisConfig cfg;
    cfg.normal_conns = 12;
    cfg.slow_conns = 18;
    cfg.duration = 10.0;
    return slowloris_trace(cfg);
  }
  if (query_file == "voip_count.nqre" || query_file == "voip_usage.nqre") {
    SipConfig cfg;
    cfg.n_users = 4;
    cfg.n_calls = 12;
    cfg.media_pkts_per_call = 8;
    return sip_trace(cfg);
  }
  if (query_file == "email_keywords.nqre") {
    SmtpConfig cfg;
    cfg.n_mails = 40;
    cfg.keyword_mails = 9;
    return smtp_trace(cfg);
  }
  if (query_file == "dns_tunnel.nqre" ||
      query_file == "dns_amplification.nqre") {
    DnsConfig cfg;
    cfg.normal_queries = 80;
    cfg.tunnel_queries = 15;
    cfg.amplification_pairs = 12;
    return dns_trace(cfg);
  }
  BackboneConfig cfg;
  cfg.n_packets = 2000;
  cfg.n_flows = 50;
  cfg.seed = 5;
  return backbone_trace(cfg);
}

class CertifyTest : public ::testing::TestWithParam<apps::QueryInfo> {};

// Structural invariants of every certificate: the tier matches the real
// analyze_spec decision and every verdict carries its evidence.
TEST_P(CertifyTest, CertificateIsWellFormed) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  const auto cert = lang::certify(prog, info.main);

  EXPECT_TRUE(cert.tier == "specialized" || cert.tier == "interpreted");
  EXPECT_FALSE(cert.tier_reason.empty());
  const auto plan = core::analyze_spec(prog.query);
  EXPECT_EQ(plan.has_value(), cert.tier == "specialized")
      << info.main << ": certificate tier disagrees with analyze_spec";

  EXPECT_EQ(cert.unambiguous, cert.ambiguities.empty());
  for (const auto& a : cert.ambiguities) {
    EXPECT_FALSE(a.witness.empty());
    EXPECT_FALSE(a.detail.empty());
  }
  for (const auto& lv : cert.levels) {
    if (lv.bounded) {
      EXPECT_GT(lv.bytes_per_key, 0u) << info.main;
    } else {
      EXPECT_FALSE(lv.unbounded_reason.empty()) << info.main;
      EXPECT_FALSE(cert.state_bounded) << info.main;
    }
  }
  if (!cert.state_bounded) {
    // NQ101 must carry a concrete reason, not a generic shrug.
    bool reasoned = !cert.unbounded_reason.empty();
    for (const auto& lv : cert.levels) reasoned |= !lv.unbounded_reason.empty();
    EXPECT_TRUE(reasoned) << info.main;
  }
  // A specialized query is exactly one the certificate proved safe.
  if (cert.tier == "specialized") {
    EXPECT_TRUE(cert.unambiguous) << info.main;
    EXPECT_TRUE(cert.state_bounded) << info.main;
    EXPECT_TRUE(cert.cost_bounded) << info.main;
  }
}

// The load-bearing property: observed execution never exceeds the
// certificate.  Key growth, operator steps and memory are all checked
// against the certified quotas on the golden workload.
TEST_P(CertifyTest, ObservedNeverExceedsCertified) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  const auto cert = lang::certify(prog, info.main);

  Engine eng(prog.query);
  eng.enable_profiling();
  for (const auto& p : workload_for(info.file)) eng.on_packet(p);
  const uint64_t pkts = eng.packets();
  ASSERT_GT(pkts, 0u);

  if (cert.cost_bounded) {
    const auto* prof = eng.profile();
    ASSERT_NE(prof, nullptr);
    uint64_t observed_steps = 0;
    for (uint64_t s : prof->steps) observed_steps += s;
    EXPECT_LE(observed_steps, pkts * cert.op_steps_per_packet)
        << info.main << ": certified per-packet cost bound violated";
  }

  const auto* scope =
      dynamic_cast<const core::ParamScopeOp*>(prog.query.root.get());
  if (scope != nullptr && !cert.levels.empty() && cert.levels.front().sparse) {
    const auto stats = scope->stats(eng.state());
    // Each packet can materialize at most touched_per_packet guard-trie
    // paths; +1 for the default chain that exists from the start.
    EXPECT_LE(stats.leaves,
              1 + pkts * cert.levels.front().touched_per_packet)
        << info.main << ": certified key-growth bound violated";

    if (cert.state_bounded && cert.levels.size() == 1) {
      EXPECT_LE(eng.state_memory(),
                cert.fixed_bytes + stats.leaves * cert.bytes_per_key)
          << info.main << ": certified bytes-per-key quota violated ("
          << eng.state_memory() << " B observed for " << stats.leaves
          << " leaves)";
    }
  }
  // Scope-free queries carry all state in the fixed part; queries whose
  // scopes sit below a non-scope root can't attribute observed memory to
  // key counts here (the trie isn't reachable for stats), so only the
  // levels-free case is checked.
  if (scope == nullptr && cert.state_bounded && cert.levels.empty()) {
    EXPECT_LE(eng.state_memory(), cert.fixed_bytes)
        << info.main << ": certified fixed-state quota violated";
  }
}

std::string param_name(
    const ::testing::TestParamInfo<apps::QueryInfo>& info) {
  std::string n = info.param.main;
  std::replace_if(
      n.begin(), n.end(), [](char c) { return !std::isalnum(c); }, '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, CertifyTest,
                         ::testing::ValuesIn(apps::table1()), param_name);

// Engine-tier decisions are golden-pinned: every non-specializing query
// must produce a stable structured reason, and the specializing set must
// not silently shrink.
TEST(CertifySpecReasons, GoldenTierDecisions) {
  std::ostringstream got;
  int specialized = 0;
  for (const auto& info : apps::table1()) {
    auto prog = apps::compile_app(info.file, info.main);
    const auto cert = lang::certify(prog, info.main);
    got << info.main << ": " << cert.tier << " -- " << cert.tier_reason
        << '\n';
    if (cert.tier == "specialized") ++specialized;
  }
  EXPECT_GE(specialized, 2) << "specialized family unexpectedly empty";

  const std::string path =
      std::string(NETQRE_GOLDEN_DIR) + "/spec_reasons.txt";
  if (std::getenv("NETQRE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got.str();
    SUCCEED() << "updated " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NETQRE_UPDATE_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got.str())
      << "tier decisions diverged — if intentional, regenerate with "
         "NETQRE_UPDATE_GOLDEN=1 and review the diff";
}

// The deliberately ambiguous corpus queries must trip NQ100 with a concrete
// witness naming the two parses.
TEST(CertifyAmbiguity, CorpusQueriesYieldWitnesses) {
  const std::string path = std::string(NETQRE_CORPUS_DIR) + "/ambiguous.nqre";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  struct Want {
    const char* main;
    bool iter;
  };
  for (const Want w : {Want{"syn_partition", false}, Want{"syn_run_count", true}}) {
    auto prog = lang::compile_source(source, w.main);
    const auto cert = lang::certify(prog, w.main);
    EXPECT_FALSE(cert.unambiguous) << w.main;
    ASSERT_FALSE(cert.ambiguities.empty()) << w.main;
    bool found = false;
    for (const auto& a : cert.ambiguities) {
      if (a.is_iter != w.iter) continue;
      found = true;
      EXPECT_FALSE(a.witness.empty());
      EXPECT_NE(a.witness, "(no concrete witness found)") << w.main;
      EXPECT_NE(a.detail.find("packet"), std::string::npos) << w.main;
    }
    EXPECT_TRUE(found) << w.main << ": no finding for the expected operator";

    const auto diags = lang::certificate_diagnostics(cert);
    bool nq100 = false;
    for (const auto& d : diags) nq100 |= d.code == "NQ100";
    EXPECT_TRUE(nq100) << w.main;
    for (const auto& d : diags) {
      EXPECT_FALSE(d.is_error()) << "certificate rules must stay warnings";
    }
  }
}

// The certificate gate really gates: a refuted certificate forces the
// interpreter tier even for a query whose structure specializes.
TEST(CertifyGate, RefutedCertificateForcesInterpreter) {
  auto prog = apps::compile_app("heavy_hitter.nqre", "hh");
  ASSERT_TRUE(core::analyze_spec(prog.query).has_value());

  core::SpecGate gate;
  gate.unambiguous = false;
  gate.detail = "forced for the test";
  auto decision = core::analyze_spec_explained(prog.query, &gate);
  EXPECT_FALSE(decision.specialized());
  EXPECT_NE(decision.reason.find("certificate"), std::string::npos);

  gate = core::SpecGate{};
  gate.state_bounded = false;
  decision = core::analyze_spec_explained(prog.query, &gate);
  EXPECT_FALSE(decision.specialized());
  EXPECT_NE(decision.reason.find("certificate"), std::string::npos);
}

// JSON serialization round-trips through a strict parser shape check: the
// lint CI job consumes this, so the object must stay well-formed.
TEST(CertifyJson, SerializesWellFormed) {
  auto prog = apps::compile_app("heavy_hitter.nqre", "hh");
  const auto cert = lang::certify(prog, "hh");
  obs::JsonWriter w;
  lang::certificate_json(cert, w);
  const std::string js = w.str();
  EXPECT_NE(js.find("\"tier\":\"specialized\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"bytes_per_key\""), std::string::npos);
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
  EXPECT_EQ(std::count(js.begin(), js.end(), '['),
            std::count(js.begin(), js.end(), ']'));
}

}  // namespace
}  // namespace netqre
