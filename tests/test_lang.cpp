// Language front-end tests: lexer, parser, lowering, and compile+run of the
// full Table-1 application suite.
#include <gtest/gtest.h>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "lang/lexer.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"
#include "net/ipv4.hpp"

namespace netqre::lang {
namespace {

using core::Engine;
using core::Value;
using net::make_ip;
using net::Packet;
using net::Proto;
using net::TcpFlags;

Packet tcp(uint32_t src, uint32_t dst, uint8_t flags = TcpFlags::kAck,
           uint32_t seq = 0, uint32_t ack = 0, uint32_t len = 100) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = 1000;
  p.dst_port = 80;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.wire_len = len;
  return p;
}

TEST(Lexer, TokenKinds) {
  auto toks = lex("sfun int f(IP x) = /.*[srcip == 1.0.0.1]/ ? 2.5 : 3;");
  ASSERT_GT(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "sfun");
  // the IP literal
  bool saw_ip = false, saw_double = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Ip) {
      saw_ip = true;
      EXPECT_EQ(t.int_value, make_ip(1, 0, 0, 1));
    }
    if (t.kind == Tok::Double) {
      saw_double = true;
      EXPECT_DOUBLE_EQ(t.dbl_value, 2.5);
    }
  }
  EXPECT_TRUE(saw_ip);
  EXPECT_TRUE(saw_double);
}

TEST(Lexer, CommentsAndStrings) {
  auto toks = lex("# a comment line\nx \"hi\\nthere\" // trailing\ny");
  ASSERT_EQ(toks.size(), 4u);  // x, string, y, End
  EXPECT_EQ(toks[1].kind, Tok::Str);
  EXPECT_EQ(toks[1].text, "hi\nthere");
  EXPECT_EQ(toks[2].text, "y");
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(lex("\"unterminated"), LexError);
  EXPECT_THROW(lex("1.2.3.4.5"), LexError);
  EXPECT_THROW(lex("~"), LexError);
}

TEST(Parser, SfunWithParams) {
  Program p = parse_program(
      "sfun int hh(IP x, IP y) = filter(srcip == x, dstip == y) >> count;");
  ASSERT_EQ(p.sfuns.size(), 1u);
  EXPECT_EQ(p.sfuns[0].name, "hh");
  ASSERT_EQ(p.sfuns[0].params.size(), 2u);
  EXPECT_EQ(p.sfuns[0].params[1].second, "y");
  EXPECT_EQ(p.sfuns[0].body->kind, Exp::Kind::Comp);
}

TEST(Parser, RegexPostfixAndAlt) {
  ExpPtr e = parse_expression("/[syn == 1] [syn == 0]* | .+/ ? 1");
  ASSERT_EQ(e->kind, Exp::Kind::Cond);
  EXPECT_EQ(e->kids[0]->kind, Exp::Kind::Regex);
  EXPECT_EQ(e->kids[0]->re.kind, ReExp::Kind::Alt);
}

TEST(Parser, AggBinders) {
  ExpPtr e = parse_expression("sum{ 1 | Conn c, string id }");
  ASSERT_EQ(e->kind, Exp::Kind::Agg);
  ASSERT_EQ(e->binders.size(), 2u);
  EXPECT_EQ(e->binders[0].first, "Conn");
  EXPECT_EQ(e->binders[1].second, "id");
}

TEST(Parser, SplitNary) {
  ExpPtr e = parse_expression("split(a, b, c, sum)");
  ASSERT_EQ(e->kind, Exp::Kind::Split);
  EXPECT_EQ(e->kids.size(), 3u);
}

TEST(Parser, ErrorsAreReported) {
  EXPECT_THROW(parse_program("sfun int f = ;"), ParseError);
  EXPECT_THROW(parse_program("sfun badtype f = 1;"), ParseError);
  EXPECT_THROW(parse_expression("iter(1)"), ParseError);
}

TEST(Lower, CountFromLanguage) {
  auto prog = compile_source("sfun int my_count = count;", "my_count");
  Engine eng(prog.query);
  for (int i = 0; i < 5; ++i) eng.on_packet(tcp(1, 2));
  EXPECT_EQ(eng.eval().as_int(), 5);
}

TEST(Lower, HeavyHitterFromLanguage) {
  auto prog = apps::compile_app("heavy_hitter.nqre", "hh");
  Engine eng(prog.query);
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 0, 100));
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 0, 150));
  eng.on_packet(tcp(3, 4, TcpFlags::kAck, 0, 0, 70));
  EXPECT_EQ(eng.eval_at({Value::ip(1), Value::ip(2)}).as_int(), 250);
  EXPECT_EQ(eng.eval_at({Value::ip(3), Value::ip(4)}).as_int(), 70);
}

TEST(Lower, SuperSpreaderFromLanguage) {
  auto prog = apps::compile_app("super_spreader.nqre", "ss");
  Engine eng(prog.query);
  eng.on_packet(tcp(1, 2));
  eng.on_packet(tcp(1, 3));
  eng.on_packet(tcp(1, 3));
  eng.on_packet(tcp(9, 4));
  EXPECT_EQ(eng.eval_at({Value::ip(1)}).as_int(), 2);
  EXPECT_EQ(eng.eval_at({Value::ip(9)}).as_int(), 1);
}

TEST(Lower, CompletedFlowsFromLanguage) {
  auto prog = apps::compile_app("completed_flows.nqre", "completed_flows");
  Engine eng(prog.query);
  auto flow = [&](uint16_t sport) {
    Packet syn = tcp(1, 2, TcpFlags::kSyn);
    syn.src_port = sport;
    Packet data = tcp(1, 2, TcpFlags::kAck);
    data.src_port = sport;
    Packet fin = tcp(1, 2, TcpFlags::kFin | TcpFlags::kAck);
    fin.src_port = sport;
    eng.on_packet(syn);
    eng.on_packet(data);
    eng.on_packet(fin);
  };
  flow(1000);
  flow(1001);
  EXPECT_EQ(eng.eval().as_int(), 2);
  // An opened-but-not-finished flow does not count.
  Packet syn = tcp(1, 2, TcpFlags::kSyn);
  syn.src_port = 1002;
  eng.on_packet(syn);
  EXPECT_EQ(eng.eval().as_int(), 2);
}

TEST(Lower, SynFloodFromLanguage) {
  auto prog =
      apps::compile_app("syn_flood.nqre", "incomplete_handshake_num");
  Engine eng(prog.query);
  // Complete handshake: SYN(seq=10), SYNACK(seq=20, ack=11), ACK(ack=21).
  eng.on_packet(tcp(1, 2, TcpFlags::kSyn, 10, 0));
  eng.on_packet(tcp(2, 1, TcpFlags::kSyn | TcpFlags::kAck, 20, 11));
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 11, 21));
  EXPECT_EQ(eng.eval().as_int(), 0);
  // Incomplete handshake: no final ACK.
  eng.on_packet(tcp(1, 2, TcpFlags::kSyn, 50, 0));
  eng.on_packet(tcp(2, 1, TcpFlags::kSyn | TcpFlags::kAck, 60, 51));
  EXPECT_EQ(eng.eval().as_int(), 1);
}

TEST(Lower, DupAcksFromLanguage) {
  auto prog = apps::compile_app("dup_acks.nqre", "dup_acks");
  Engine eng(prog.query);
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 100));
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 100));  // dup of 100
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 200));
  EXPECT_EQ(eng.eval().as_int(), 1);
  eng.on_packet(tcp(1, 2, TcpFlags::kAck, 0, 200));  // dup of 200
  EXPECT_EQ(eng.eval().as_int(), 2);
}

TEST(Lower, WindowSpecIsStripped) {
  auto prog = apps::compile_app("traffic_change.nqre", "recent_src_bytes");
  EXPECT_EQ(prog.window, CompiledProgram::Window::Recent);
  EXPECT_DOUBLE_EQ(prog.window_seconds, 5.0);
}

TEST(Lower, ErrorsAreReported) {
  EXPECT_THROW(compile_source("sfun int f = undefined_name;", "f"),
               LowerError);
  EXPECT_THROW(compile_source("sfun int f = f;", "f"), LowerError);
  EXPECT_THROW(compile_source("sfun int f = count;", "g"), LowerError);
}

TEST(Table1, AllApplicationsCompile) {
  for (const auto& app : apps::table1()) {
    SCOPED_TRACE(app.title);
    EXPECT_NO_THROW({
      auto prog = apps::compile_app(app.file, app.main);
      EXPECT_NE(prog.query.root, nullptr);
    });
  }
}

TEST(Table1, LocWithinPaperBound) {
  // §7.1: every application is expressible in at most 18 lines of NetQRE.
  for (const auto& app : apps::table1()) {
    SCOPED_TRACE(app.title);
    int loc = apps::count_loc(app.file);
    EXPECT_GE(loc, 1);
    EXPECT_LE(loc, 18);
  }
}

}  // namespace
}  // namespace netqre::lang
