// System tests for the live monitoring surface: the from-scratch HTTP
// exposition server, the standard observability endpoints, and the
// TraceGovernor's anomaly-dump loop — all in-process on an ephemeral
// loopback port, so no fixed port and no external tooling is needed.
//
// Everything here must hold in both builds: with telemetry off the
// endpoints still serve (empty registry, empty trace), the governor never
// trips, and /healthz keeps working.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apps/queries.hpp"
#include "apps/queryset_admin.hpp"
#include "core/parallel.hpp"
#include "core/queryset.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using obs::kEnabled;

// Blocking one-shot HTTP GET over a raw socket; returns the full response
// (status line + headers + body).  Keeps the tests free of any client
// library, mirroring what `curl` would send.
std::string http_get(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

// Same raw-socket one-shot, any method (+ optional body).
std::string http_request(uint16_t port, const std::string& method,
                         const std::string& path,
                         const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

int status_of(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  const size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string body_of(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpServer, ServesRegisteredHandlersOnEphemeralPort) {
  obs::HttpServer srv;
  srv.handle("/hello", [](const obs::HttpRequest& req) {
    return obs::HttpResponse::text("hi " + req.query + "\n");
  });
  srv.start(0);
  ASSERT_GT(srv.port(), 0);
  ASSERT_TRUE(srv.running());

  const auto resp = http_get(srv.port(), "/hello?q=1");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_EQ(body_of(resp), "hi q=1\n");
  // Framing: Content-Length is present and Connection: close is announced.
  EXPECT_NE(resp.find("Content-Length: 7"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);

  EXPECT_EQ(status_of(http_get(srv.port(), "/missing")), 404);
  EXPECT_GE(srv.requests_served(), 2u);
  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
}

TEST(HttpServer, RejectsNonGetMethods) {
  obs::HttpServer srv;
  srv.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("x");
  });
  srv.start(0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  EXPECT_EQ(status_of(out), 405);
  srv.stop();
}

TEST(ObservabilityEndpoints, MetricsHealthzTracez) {
  obs::registry().reset();
  if (kEnabled) {
    obs::registry().counter("netqre_test_monitor_total").inc(11);
  }
  std::atomic<bool> healthy{true};
  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [&] { return healthy.load(); }, nullptr);
  srv.start(0);

  // /metrics: Prometheus content type and, when enabled, our counter.
  const auto metrics = http_get(srv.port(), "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(body_of(metrics).find("netqre_test_monitor_total 11"),
              std::string::npos);
  }

  // /statz mirrors the snapshot as JSON.
  const auto statz = http_get(srv.port(), "/statz");
  EXPECT_EQ(status_of(statz), 200);
  EXPECT_NE(statz.find("application/json"), std::string::npos);

  // /healthz flips with the probe.
  EXPECT_EQ(status_of(http_get(srv.port(), "/healthz")), 200);
  healthy = false;
  EXPECT_EQ(status_of(http_get(srv.port(), "/healthz")), 503);
  healthy = true;

  // /tracez always serves a well-formed Chrome trace document.
  const auto tracez = http_get(srv.port(), "/tracez");
  EXPECT_EQ(status_of(tracez), 200);
  EXPECT_NE(body_of(tracez).find("\"traceEvents\""), std::string::npos);

  // /dump without a governor: explicit 503, not a crash.
  EXPECT_EQ(status_of(http_get(srv.port(), "/dump")), 503);

  // The index lists the surface.
  const auto index = http_get(srv.port(), "/");
  EXPECT_NE(body_of(index).find("/metrics"), std::string::npos);
  srv.stop();
}

TEST(TraceGovernor, QueueSaturationTriggersDump) {
  if (!kEnabled) GTEST_SKIP() << "governor never fires in no-op build";
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_gov_test";
  fs::remove_all(dir);

  obs::registry().reset();
  obs::tracer().clear();
  obs::tracer().record(obs::TraceKind::Mark, 1, 1);

  obs::GovernorConfig cfg;
  cfg.dump_dir = dir.string();
  cfg.prefix = "sat";
  obs::TraceGovernor governor(cfg);

  // Healthy snapshot: no trip.
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());

  // Saturate one shard queue gauge — the exact signal ParallelEngine
  // publishes when its dispatcher blocks on a full queue.
  obs::registry()
      .gauge(obs::labeled_name("netqre_parallel_shard_queue_depth",
                               {{"shard", "0"}}))
      .set(cfg.queue_saturation_depth);
  const std::string reason = governor.check(obs::registry().snapshot());
  EXPECT_NE(reason.find("queue"), std::string::npos) << reason;

  // poll() writes the dump file; it parses as a Chrome trace document.
  const auto path = governor.poll();
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(governor.dumps_written(), 1u);
  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\""), std::string::npos);

  // Within the cooldown the same (still-saturated) signal does not dump
  // again.
  EXPECT_FALSE(governor.poll().has_value());
  EXPECT_EQ(governor.dumps_written(), 1u);

  obs::registry().reset();
  obs::tracer().clear();
  fs::remove_all(dir);
}

TEST(TraceGovernor, CooldownsArePerTriggerKind) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_gov_kind_test";
  fs::remove_all(dir);

  obs::GovernorConfig cfg;
  cfg.dump_dir = dir.string();
  cfg.prefix = "kind";
  obs::TraceGovernor governor(cfg);

  // A queue-kind dump must not starve an alert-kind dump: kinds cool down
  // independently.
  ASSERT_TRUE(governor.request_dump("queue", "queue test").has_value());
  EXPECT_FALSE(governor.request_dump("queue", "again").has_value());
  const auto alert = governor.request_dump("alert", "alert test");
  ASSERT_TRUE(alert.has_value());
  EXPECT_FALSE(governor.request_dump("alert", "again").has_value());
  EXPECT_EQ(governor.dumps_written(), 2u);

  std::ifstream in(*alert);
  ASSERT_TRUE(in.good());
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("alert test"), std::string::npos);

  fs::remove_all(dir);
}

TEST(TraceGovernor, TruncatedRecordBurstTriggers) {
  if (!kEnabled) GTEST_SKIP() << "governor never fires in no-op build";
  obs::registry().reset();
  obs::GovernorConfig cfg;
  cfg.truncated_burst = 16;
  obs::TraceGovernor governor(cfg);

  auto& truncated =
      obs::registry().counter("netqre_pcap_truncated_records_total");
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());
  truncated.inc(5);  // below the burst threshold
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());
  truncated.inc(16);  // a burst since the last poll
  const std::string reason = governor.check(obs::registry().snapshot());
  EXPECT_NE(reason.find("truncated"), std::string::npos) << reason;
  obs::registry().reset();
}

// End-to-end: a genuine ParallelEngine run behind the endpoints — the
// /metrics body a scraper would see carries the engine and shard series
// produced by real work, and /dump captures the run's trace events.
TEST(MonitorEndToEnd, LiveEngineServesScrapeableMetricsAndDump) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_mon_e2e";
  fs::remove_all(dir);

  obs::registry().reset();
  obs::tracer().clear();

  trafficgen::BackboneConfig tcfg;
  tcfg.n_packets = 5000;
  tcfg.n_flows = 300;
  const auto trace = trafficgen::backbone_trace(tcfg);
  {
    core::ParallelEngine par(
        apps::compile_app("heavy_hitter.nqre", "hh").query, 2);
    par.feed(trace);
    par.finish();
  }

  obs::GovernorConfig gcfg;
  gcfg.dump_dir = dir.string();
  obs::TraceGovernor governor(gcfg);
  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [] { return true; }, &governor);
  srv.start(0);

  const std::string metrics = body_of(http_get(srv.port(), "/metrics"));
  if (kEnabled) {
    EXPECT_NE(metrics.find("netqre_engine_packets_total"),
              std::string::npos);
    EXPECT_NE(metrics.find(
                  "netqre_parallel_shard_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("netqre_parallel_backpressure_wait_ns"),
              std::string::npos);
  }

  // Manual /dump writes a file whose path is the response body.
  const auto dump_resp = http_get(srv.port(), "/dump");
  EXPECT_EQ(status_of(dump_resp), 200);
  std::string path = body_of(dump_resp);
  while (!path.empty() && path.back() == '\n') path.pop_back();
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "dump file missing: " << path;
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  if (kEnabled) {
    // The shard workers' breadcrumbs made it into the dumped trace.
    EXPECT_NE(dump.find("shard_"), std::string::npos);
  }

  srv.stop();
  obs::registry().reset();
  obs::tracer().clear();
  fs::remove_all(dir);
}

// RFC 9110 method dispatch: a known path hit with the wrong method is 405
// with an Allow header listing what the path does support; only a path no
// method knows is 404.
TEST(HttpServer, WrongMethodOnKnownPathIs405WithAllow) {
  obs::HttpServer srv;
  srv.handle("/read", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("r");
  });
  srv.handle_post("/write", [](const obs::HttpRequest& req) {
    return obs::HttpResponse::text("w" + req.body);
  });
  srv.handle_delete("/gone", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("d");
  });
  srv.start(0);

  const auto post_read = http_request(srv.port(), "POST", "/read");
  EXPECT_EQ(status_of(post_read), 405);
  EXPECT_NE(post_read.find("Allow: GET, HEAD"), std::string::npos);

  const auto get_write = http_request(srv.port(), "GET", "/write");
  EXPECT_EQ(status_of(get_write), 405);
  EXPECT_NE(get_write.find("Allow: POST"), std::string::npos);

  const auto get_gone = http_request(srv.port(), "GET", "/gone");
  EXPECT_EQ(status_of(get_gone), 405);
  EXPECT_NE(get_gone.find("Allow: DELETE"), std::string::npos);

  // Unknown method on a known path: still 405, not 404.
  EXPECT_EQ(status_of(http_request(srv.port(), "PUT", "/read")), 405);
  // Unknown path: 404 whatever the method.
  EXPECT_EQ(status_of(http_request(srv.port(), "POST", "/nowhere")), 404);
  EXPECT_EQ(status_of(http_request(srv.port(), "DELETE", "/nowhere")), 404);

  // The supported methods still work.
  EXPECT_EQ(body_of(http_request(srv.port(), "POST", "/write", "x")), "wx");
  EXPECT_EQ(body_of(http_request(srv.port(), "DELETE", "/gone")), "d");
  // HEAD answers like GET with the body elided but the length preserved.
  const auto head = http_request(srv.port(), "HEAD", "/read");
  EXPECT_EQ(status_of(head), 200);
  EXPECT_NE(head.find("Content-Length: 1"), std::string::npos);
  EXPECT_EQ(body_of(head), "");
  srv.stop();
}

// /api/v1 is canonical; the original bare paths answer identically but
// announce their deprecation per draft-ietf-httpapi-deprecation-header.
TEST(ObservabilityEndpoints, BareAliasesCarryDeprecationHeaders) {
  obs::registry().reset();
  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [] { return true; }, nullptr);
  srv.start(0);

  for (const std::string suffix : {"/metrics", "/statz", "/tracez"}) {
    const auto canonical = http_get(srv.port(), "/api/v1" + suffix);
    EXPECT_EQ(status_of(canonical), 200) << suffix;
    EXPECT_EQ(canonical.find("Deprecation:"), std::string::npos) << suffix;

    const auto alias = http_get(srv.port(), suffix);
    EXPECT_EQ(status_of(alias), 200) << suffix;
    EXPECT_NE(alias.find("Deprecation: true"), std::string::npos) << suffix;
    EXPECT_NE(alias.find("Link: </api/v1" + suffix +
                         ">; rel=\"successor-version\""),
              std::string::npos)
        << suffix;
    EXPECT_EQ(body_of(alias), body_of(canonical)) << suffix;
  }
  // /healthz is unversioned on purpose (probe contract): no deprecation.
  const auto healthz = http_get(srv.port(), "/healthz");
  EXPECT_EQ(status_of(healthz), 200);
  EXPECT_EQ(healthz.find("Deprecation:"), std::string::npos);
  srv.stop();
  obs::registry().reset();
}

// The /api/v1/queries admin surface against a live QuerySet: load through
// the full lint -> certify -> compile chain, observe status rows, unload.
TEST(QueryAdmin, LoadEvalUnloadOverHttp) {
  // The tier row asserted below is the Auto decision; clear the CI
  // tier-matrix override for the duration (same guard as test_spec_tier).
  std::string saved_tier;
  if (const char* v = ::getenv("NETQRE_FORCE_TIER")) saved_tier = v;
  ::unsetenv("NETQRE_FORCE_TIER");

  obs::registry().reset();
  core::QuerySet set;
  apps::QuerySetRuntime rt;
  rt.set = &set;

  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [] { return true; }, nullptr);
  apps::register_queryset_admin(srv, rt);
  srv.start(0);

  // Empty set: a well-formed empty roster.
  auto list = http_get(srv.port(), "/api/v1/queries");
  EXPECT_EQ(status_of(list), 200);
  EXPECT_NE(body_of(list).find("\"queries\":[]"), std::string::npos);

  // Load a shipped query; the file names the query by default.
  const auto loaded = http_request(
      srv.port(), "POST", "/api/v1/queries?file=heavy_hitter.nqre");
  EXPECT_EQ(status_of(loaded), 200);
  EXPECT_NE(body_of(loaded).find("\"loaded\":\"heavy_hitter.nqre\""),
            std::string::npos);
  ASSERT_TRUE(set.contains("heavy_hitter.nqre"));

  // Re-loading the same name is a conflict, not a silent replace.
  EXPECT_EQ(status_of(http_request(
                srv.port(), "POST",
                "/api/v1/queries?file=heavy_hitter.nqre")),
            409);
  // Unknown shipped file: 404.  Inline garbage: 400 with diagnostics.
  EXPECT_EQ(status_of(http_request(srv.port(), "POST",
                                   "/api/v1/queries?file=nope.nqre")),
            404);
  const auto bad = http_request(srv.port(), "POST",
                                "/api/v1/queries?name=bad&main=b",
                                "sfun int b( = nonsense");
  EXPECT_EQ(status_of(bad), 400);

  // Feed traffic, then the row reflects real execution.
  trafficgen::BackboneConfig tcfg;
  tcfg.n_packets = 4000;
  tcfg.n_flows = 200;
  set.on_batch(trafficgen::backbone_trace(tcfg));
  list = http_get(srv.port(), "/api/v1/queries");
  EXPECT_NE(body_of(list).find("\"packets\":4000"), std::string::npos);
  EXPECT_NE(body_of(list).find("\"tier\":\"specialized\""),
            std::string::npos);

  // The extended statz carries the certificate for the loaded query.
  const auto statz = http_get(srv.port(), "/api/v1/statz");
  EXPECT_EQ(status_of(statz), 200);
  EXPECT_NE(body_of(statz).find("\"queryset\""), std::string::npos);
  EXPECT_NE(body_of(statz).find("\"certificate\""), std::string::npos);

  // Unload; absent names are 404; a bare DELETE without ?name= is 400.
  EXPECT_EQ(status_of(http_request(
                srv.port(), "DELETE",
                "/api/v1/queries?name=heavy_hitter.nqre")),
            200);
  EXPECT_FALSE(set.contains("heavy_hitter.nqre"));
  EXPECT_EQ(status_of(http_request(
                srv.port(), "DELETE",
                "/api/v1/queries?name=heavy_hitter.nqre")),
            404);
  EXPECT_EQ(status_of(http_request(srv.port(), "DELETE", "/api/v1/queries")),
            400);
  srv.stop();
  obs::registry().reset();
  if (!saved_tier.empty()) {
    ::setenv("NETQRE_FORCE_TIER", saved_tier.c_str(), 1);
  }
}

// Load/unload churn while packets flow: a replay thread feeds the set
// continuously while this thread loads and unloads a second query over
// HTTP.  Every packet must be counted exactly once (the swap happens at a
// batch boundary, never dropping or double-feeding), and the resident
// query's results must be bit-identical to an undisturbed engine — i.e. no
// state leaks between tenants across the churn.  Run under TSan in CI.
TEST(QueryAdmin, ChurnDuringReplayDropsNoPacketsAndMixesNoState) {
  obs::registry().reset();
  trafficgen::BackboneConfig tcfg;
  tcfg.n_packets = 2000;
  tcfg.n_flows = 150;
  const auto trace = trafficgen::backbone_trace(tcfg);

  core::QuerySet set;
  apps::QuerySetRuntime rt;
  rt.set = &set;
  ASSERT_TRUE(set.load("hh", apps::compile_app("heavy_hitter.nqre", "hh")
                                 .query));

  obs::HttpServer srv;
  apps::register_queryset_admin(srv, rt);
  srv.start(0);

  constexpr int kRounds = 40;
  std::thread replay([&] {
    for (int i = 0; i < kRounds; ++i) set.on_batch(trace);
  });

  // Churn the second tenant for as long as the replay runs (at least a few
  // cycles even if the replay outpaces the HTTP round-trips).
  int churns = 0;
  while (churns < 5 || set.packets() < uint64_t{kRounds} * trace.size()) {
    EXPECT_EQ(status_of(http_request(
                  srv.port(), "POST",
                  "/api/v1/queries?file=super_spreader.nqre&name=churn")),
              200);
    EXPECT_EQ(status_of(http_request(srv.port(), "DELETE",
                                     "/api/v1/queries?name=churn")),
              200);
    ++churns;
  }
  replay.join();
  srv.stop();
  EXPECT_GE(churns, 5);

  // Packet parity: nothing dropped, nothing double-fed across the swaps.
  EXPECT_EQ(set.packets(), uint64_t{kRounds} * trace.size());
  ASSERT_TRUE(set.status("hh").has_value());
  EXPECT_EQ(set.status("hh")->packets, uint64_t{kRounds} * trace.size());

  // State purity: the resident query saw exactly the replayed stream.
  core::Engine undisturbed(apps::compile_app("heavy_hitter.nqre", "hh")
                               .query);
  for (int i = 0; i < kRounds; ++i) undisturbed.on_batch(trace);
  std::vector<core::ResultSample> got, want;
  set.snapshot_results("hh", got);
  undisturbed.snapshot_results(want);
  std::map<std::string, double> got_map, want_map;
  for (const auto& s : got) got_map[s.key] = s.value;
  for (const auto& s : want) want_map[s.key] = s.value;
  EXPECT_EQ(got_map, want_map);
  obs::registry().reset();
}

}  // namespace
}  // namespace netqre
