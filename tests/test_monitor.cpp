// System tests for the live monitoring surface: the from-scratch HTTP
// exposition server, the standard observability endpoints, and the
// TraceGovernor's anomaly-dump loop — all in-process on an ephemeral
// loopback port, so no fixed port and no external tooling is needed.
//
// Everything here must hold in both builds: with telemetry off the
// endpoints still serve (empty registry, empty trace), the governor never
// trips, and /healthz keeps working.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "apps/queries.hpp"
#include "core/parallel.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using obs::kEnabled;

// Blocking one-shot HTTP GET over a raw socket; returns the full response
// (status line + headers + body).  Keeps the tests free of any client
// library, mirroring what `curl` would send.
std::string http_get(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

int status_of(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  const size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string body_of(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpServer, ServesRegisteredHandlersOnEphemeralPort) {
  obs::HttpServer srv;
  srv.handle("/hello", [](const obs::HttpRequest& req) {
    return obs::HttpResponse::text("hi " + req.query + "\n");
  });
  srv.start(0);
  ASSERT_GT(srv.port(), 0);
  ASSERT_TRUE(srv.running());

  const auto resp = http_get(srv.port(), "/hello?q=1");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_EQ(body_of(resp), "hi q=1\n");
  // Framing: Content-Length is present and Connection: close is announced.
  EXPECT_NE(resp.find("Content-Length: 7"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);

  EXPECT_EQ(status_of(http_get(srv.port(), "/missing")), 404);
  EXPECT_GE(srv.requests_served(), 2u);
  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
}

TEST(HttpServer, RejectsNonGetMethods) {
  obs::HttpServer srv;
  srv.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("x");
  });
  srv.start(0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  EXPECT_EQ(status_of(out), 405);
  srv.stop();
}

TEST(ObservabilityEndpoints, MetricsHealthzTracez) {
  obs::registry().reset();
  if (kEnabled) {
    obs::registry().counter("netqre_test_monitor_total").inc(11);
  }
  std::atomic<bool> healthy{true};
  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [&] { return healthy.load(); }, nullptr);
  srv.start(0);

  // /metrics: Prometheus content type and, when enabled, our counter.
  const auto metrics = http_get(srv.port(), "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(body_of(metrics).find("netqre_test_monitor_total 11"),
              std::string::npos);
  }

  // /statz mirrors the snapshot as JSON.
  const auto statz = http_get(srv.port(), "/statz");
  EXPECT_EQ(status_of(statz), 200);
  EXPECT_NE(statz.find("application/json"), std::string::npos);

  // /healthz flips with the probe.
  EXPECT_EQ(status_of(http_get(srv.port(), "/healthz")), 200);
  healthy = false;
  EXPECT_EQ(status_of(http_get(srv.port(), "/healthz")), 503);
  healthy = true;

  // /tracez always serves a well-formed Chrome trace document.
  const auto tracez = http_get(srv.port(), "/tracez");
  EXPECT_EQ(status_of(tracez), 200);
  EXPECT_NE(body_of(tracez).find("\"traceEvents\""), std::string::npos);

  // /dump without a governor: explicit 503, not a crash.
  EXPECT_EQ(status_of(http_get(srv.port(), "/dump")), 503);

  // The index lists the surface.
  const auto index = http_get(srv.port(), "/");
  EXPECT_NE(body_of(index).find("/metrics"), std::string::npos);
  srv.stop();
}

TEST(TraceGovernor, QueueSaturationTriggersDump) {
  if (!kEnabled) GTEST_SKIP() << "governor never fires in no-op build";
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_gov_test";
  fs::remove_all(dir);

  obs::registry().reset();
  obs::tracer().clear();
  obs::tracer().record(obs::TraceKind::Mark, 1, 1);

  obs::GovernorConfig cfg;
  cfg.dump_dir = dir.string();
  cfg.prefix = "sat";
  obs::TraceGovernor governor(cfg);

  // Healthy snapshot: no trip.
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());

  // Saturate one shard queue gauge — the exact signal ParallelEngine
  // publishes when its dispatcher blocks on a full queue.
  obs::registry()
      .gauge(obs::labeled_name("netqre_parallel_shard_queue_depth",
                               {{"shard", "0"}}))
      .set(cfg.queue_saturation_depth);
  const std::string reason = governor.check(obs::registry().snapshot());
  EXPECT_NE(reason.find("queue"), std::string::npos) << reason;

  // poll() writes the dump file; it parses as a Chrome trace document.
  const auto path = governor.poll();
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(governor.dumps_written(), 1u);
  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\""), std::string::npos);

  // Within the cooldown the same (still-saturated) signal does not dump
  // again.
  EXPECT_FALSE(governor.poll().has_value());
  EXPECT_EQ(governor.dumps_written(), 1u);

  obs::registry().reset();
  obs::tracer().clear();
  fs::remove_all(dir);
}

TEST(TraceGovernor, TruncatedRecordBurstTriggers) {
  if (!kEnabled) GTEST_SKIP() << "governor never fires in no-op build";
  obs::registry().reset();
  obs::GovernorConfig cfg;
  cfg.truncated_burst = 16;
  obs::TraceGovernor governor(cfg);

  auto& truncated =
      obs::registry().counter("netqre_pcap_truncated_records_total");
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());
  truncated.inc(5);  // below the burst threshold
  EXPECT_TRUE(governor.check(obs::registry().snapshot()).empty());
  truncated.inc(16);  // a burst since the last poll
  const std::string reason = governor.check(obs::registry().snapshot());
  EXPECT_NE(reason.find("truncated"), std::string::npos) << reason;
  obs::registry().reset();
}

// End-to-end: a genuine ParallelEngine run behind the endpoints — the
// /metrics body a scraper would see carries the engine and shard series
// produced by real work, and /dump captures the run's trace events.
TEST(MonitorEndToEnd, LiveEngineServesScrapeableMetricsAndDump) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "netqre_mon_e2e";
  fs::remove_all(dir);

  obs::registry().reset();
  obs::tracer().clear();

  trafficgen::BackboneConfig tcfg;
  tcfg.n_packets = 5000;
  tcfg.n_flows = 300;
  const auto trace = trafficgen::backbone_trace(tcfg);
  {
    core::ParallelEngine par(
        apps::compile_app("heavy_hitter.nqre", "hh").query, 2);
    par.feed(trace);
    par.finish();
  }

  obs::GovernorConfig gcfg;
  gcfg.dump_dir = dir.string();
  obs::TraceGovernor governor(gcfg);
  obs::HttpServer srv;
  obs::register_observability_endpoints(
      srv, [] { return true; }, &governor);
  srv.start(0);

  const std::string metrics = body_of(http_get(srv.port(), "/metrics"));
  if (kEnabled) {
    EXPECT_NE(metrics.find("netqre_engine_packets_total"),
              std::string::npos);
    EXPECT_NE(metrics.find(
                  "netqre_parallel_shard_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("netqre_parallel_backpressure_wait_ns"),
              std::string::npos);
  }

  // Manual /dump writes a file whose path is the response body.
  const auto dump_resp = http_get(srv.port(), "/dump");
  EXPECT_EQ(status_of(dump_resp), 200);
  std::string path = body_of(dump_resp);
  while (!path.empty() && path.back() == '\n') path.pop_back();
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "dump file missing: " << path;
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  if (kEnabled) {
    // The shard workers' breadcrumbs made it into the dumped trace.
    EXPECT_NE(dump.find("shard_"), std::string::npos);
  }

  srv.stop();
  obs::registry().reset();
  obs::tracer().clear();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace netqre
