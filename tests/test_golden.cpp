// Golden-result tests: every Table-1 query (queries/*.nqre) is run over a
// small fixed-seed trafficgen workload and its full output — the top-level
// result plus the sorted per-key enumeration — is compared byte-for-byte
// against a checked-in snapshot under tests/golden/.
//
// When a change legitimately shifts results (new query semantics, a
// trafficgen fix), regenerate the snapshots with
//
//     NETQRE_UPDATE_GOLDEN=1 ./netqre_golden_tests
//
// and review the diff like any other code change.  An unexplained diff is a
// regression in one of the evaluation paths, not an update candidate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/ops.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;

#ifndef NETQRE_GOLDEN_DIR
#define NETQRE_GOLDEN_DIR "tests/golden"
#endif

// Small, fast workloads — golden tests pin exact values, they don't need
// the paper-scale traces the benches use.
std::vector<net::Packet> workload_for(const std::string& query_file) {
  using namespace trafficgen;
  if (query_file == "syn_flood.nqre") {
    SynFloodConfig cfg;
    cfg.benign_handshakes = 20;
    cfg.attack_handshakes = 120;
    return syn_flood_trace(cfg);
  }
  if (query_file == "slowloris.nqre") {
    SlowlorisConfig cfg;
    cfg.normal_conns = 12;
    cfg.slow_conns = 18;
    cfg.duration = 10.0;
    return slowloris_trace(cfg);
  }
  if (query_file == "voip_count.nqre" || query_file == "voip_usage.nqre") {
    SipConfig cfg;
    cfg.n_users = 4;
    cfg.n_calls = 12;
    cfg.media_pkts_per_call = 8;
    return sip_trace(cfg);
  }
  if (query_file == "email_keywords.nqre") {
    SmtpConfig cfg;
    cfg.n_mails = 40;
    cfg.keyword_mails = 9;
    return smtp_trace(cfg);
  }
  if (query_file == "dns_tunnel.nqre" || query_file == "dns_amplification.nqre") {
    DnsConfig cfg;
    cfg.normal_queries = 80;
    cfg.tunnel_queries = 15;
    cfg.amplification_pairs = 12;
    return dns_trace(cfg);
  }
  // Generic backbone mix for the counting / flow-statistics queries.
  BackboneConfig cfg;
  cfg.n_packets = 2000;
  cfg.n_flows = 50;
  cfg.seed = 5;
  return backbone_trace(cfg);
}

// Canonical snapshot: result line, entry count, then sorted entries.
// Parameterless queries have nothing to enumerate — just the result.
std::string snapshot(const core::CompiledQuery& q, Engine& eng) {
  std::ostringstream out;
  out << "result " << eng.eval().to_string() << '\n';
  std::vector<std::string> entries;
  if (dynamic_cast<const core::ParamScopeOp*>(q.root.get()) != nullptr) {
    eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
      std::ostringstream line;
      line << "entry";
      for (const auto& k : key) line << ' ' << k.to_string();
      line << " = " << v.to_string();
      entries.push_back(line.str());
    });
  }
  std::sort(entries.begin(), entries.end());
  out << "entries " << entries.size() << '\n';
  for (const auto& e : entries) out << e << '\n';
  return out.str();
}

class GoldenTest : public ::testing::TestWithParam<apps::QueryInfo> {};

TEST_P(GoldenTest, MatchesSnapshot) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  Engine eng(prog.query);
  for (const auto& p : workload_for(info.file)) eng.on_packet(p);
  const std::string got = snapshot(prog.query, eng);

  const std::string path =
      std::string(NETQRE_GOLDEN_DIR) + "/" + info.main + ".txt";
  if (std::getenv("NETQRE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    SUCCEED() << "updated " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with NETQRE_UPDATE_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << info.title << " diverged from " << path
      << " — if the change is intentional, regenerate with "
         "NETQRE_UPDATE_GOLDEN=1 and review the diff";
}

// Batched ingestion must reproduce the per-packet snapshot exactly —
// top-level result and every enumerated entry — on every Table-1 workload.
TEST_P(GoldenTest, BatchedIngestionMatchesPerPacket) {
  const auto& info = GetParam();
  auto prog = apps::compile_app(info.file, info.main);
  const auto trace = workload_for(info.file);

  Engine scalar(prog.query);
  for (const auto& p : trace) scalar.on_packet(p);

  Engine batched(prog.query);
  const std::span<const net::Packet> all(trace);
  // Prime-sized chunks so batch boundaries never align with the workload's
  // internal structure (handshakes, calls, mails).
  constexpr size_t kChunk = 257;
  for (size_t pos = 0; pos < all.size(); pos += kChunk) {
    batched.on_batch(all.subspan(pos, std::min(kChunk, all.size() - pos)));
  }

  EXPECT_EQ(scalar.packets(), batched.packets());
  EXPECT_EQ(snapshot(prog.query, scalar), snapshot(prog.query, batched))
      << info.title << ": on_batch diverged from the per-packet path";
}

std::string param_name(
    const ::testing::TestParamInfo<apps::QueryInfo>& info) {
  std::string n = info.param.main;
  std::replace_if(
      n.begin(), n.end(), [](char c) { return !std::isalnum(c); }, '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, GoldenTest,
                         ::testing::ValuesIn(apps::table1()), param_name);

}  // namespace
}  // namespace netqre
