// Edge-case coverage: lexer/parser corners, field extraction, reassembly
// overflow, trie statistics, pcap endianness, and the language grammar's
// precedence rules.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engine.hpp"
#include "core/fields.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"
#include "net/ipv4.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;

// ------------------------------------------------------------- lexer/parser

TEST(Grammar, CompositionBindsLoosest) {
  // a >> b ? c  must parse as a >> (b ? c).
  auto e = lang::parse_expression("count >> count > 1 ? 5");
  ASSERT_EQ(e->kind, lang::Exp::Kind::Comp);
  EXPECT_EQ(e->kids[1]->kind, lang::Exp::Kind::Cond);
}

TEST(Grammar, ArithmeticPrecedence) {
  // 1 + 2 * 3 == 7, evaluated end to end on the empty stream.
  auto prog = lang::compile_source("sfun int f = 1 + 2 * 3;", "f");
  Engine eng(prog.query);
  EXPECT_EQ(eng.eval().as_int(), 7);
}

TEST(Grammar, DivisionIsNotARegex) {
  auto prog = lang::compile_source("sfun double f = 10 / 4;", "f");
  Engine eng(prog.query);
  EXPECT_DOUBLE_EQ(eng.eval().as_double(), 2.5);
}

TEST(Grammar, RegexAtomsAndPostfix) {
  auto prog = lang::compile_source(
      "sfun int f = /[syn == 1]+ [syn == 0]?/ ? 1 : 0;", "f");
  Engine eng(prog.query);
  net::Packet p;
  p.proto = net::Proto::Tcp;
  p.tcp_flags = net::TcpFlags::kSyn;
  eng.on_packet(p);
  EXPECT_EQ(eng.eval().as_int(), 1);
  p.tcp_flags = net::TcpFlags::kAck;
  eng.on_packet(p);
  EXPECT_EQ(eng.eval().as_int(), 1);
  eng.on_packet(p);
  EXPECT_EQ(eng.eval().as_int(), 0);
}

TEST(Grammar, NestedSfunInliningWithOffsets) {
  // Static argument arithmetic (x+1) flows into predicate offsets.
  auto prog = lang::compile_source(R"(
    sfun re match_seq(int s) = /.*[seq == s]/;
    sfun int f(int x) = match_seq(x + 1) ? 1 : 0;
  )",
                                   "f");
  Engine eng(prog.query);
  net::Packet p;
  p.proto = net::Proto::Tcp;
  p.seq = 43;
  eng.on_packet(p);
  EXPECT_EQ(eng.eval_at({Value::integer(42)}).as_int(), 1);
  EXPECT_EQ(eng.eval_at({Value::integer(43)}).as_int(), 0);
}

TEST(Grammar, RecursionIsRejected) {
  EXPECT_THROW(lang::compile_source(
                   "sfun int a = b; sfun int b = a;", "a"),
               lang::LowerError);
}

TEST(Grammar, WindowOnlyAtTopLevel) {
  EXPECT_THROW(lang::compile_source(
                   "sfun int f = iter(recent(5) ? 1, sum);", "f"),
               lang::LowerError);
}

// --------------------------------------------------------------- fields

TEST(Fields, ResolveAndExtract) {
  net::Packet p;
  p.src_ip = net::make_ip(1, 2, 3, 4);
  p.wire_len = 99;
  p.proto = net::Proto::Udp;
  p.payload = "INVITE sip:x SIP/2.0\r\nCall-ID: abc\r\n\r\n";

  core::begin_packet_fields();
  auto srcip = core::resolve_field("srcip");
  ASSERT_TRUE(srcip.has_value());
  EXPECT_EQ(core::extract(*srcip, p).to_string(), "1.2.3.4");

  auto method = core::resolve_field("sip.method");
  ASSERT_TRUE(method.has_value());
  EXPECT_EQ(core::extract(*method, p).as_str(), "INVITE");
  // Cached second read returns the same value.
  EXPECT_EQ(core::extract(*method, p).as_str(), "INVITE");

  EXPECT_FALSE(core::resolve_field("no.such.field").has_value());
}

TEST(Fields, SipParsers) {
  const std::string msg =
      "SIP/2.0 200 OK\r\nFrom: sip:a@b\r\nCall-ID: xyz\r\n\r\nbody";
  EXPECT_EQ(core::sip_method(msg), "200");
  EXPECT_EQ(core::sip_header(msg, "call-id"), "xyz");  // case-insensitive
  EXPECT_EQ(core::sip_header(msg, "Via"), "");
  EXPECT_EQ(core::sip_method("garbage"), "");
}

TEST(Fields, CustomRegistration) {
  auto& reg = core::FieldRegistry::instance();
  int id = reg.register_fn("test.always42", [](const net::Packet&) {
    return Value::integer(42);
  });
  EXPECT_EQ(reg.name_of(id), "test.always42");
  auto ref = core::resolve_field("test.always42");
  ASSERT_TRUE(ref.has_value());
  core::begin_packet_fields();
  EXPECT_EQ(core::extract(*ref, net::Packet{}).as_int(), 42);
}

// ------------------------------------------------------------ reassembly

TEST(Reassembly, BufferOverflowFlushesInOrder) {
  net::TcpReorderer r(4);  // tiny buffer
  std::vector<net::Packet> out;
  auto seg = [](uint32_t seq) {
    net::Packet p;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.src_port = 10;
    p.dst_port = 20;
    p.proto = net::Proto::Tcp;
    p.tcp_flags = net::TcpFlags::kAck;
    p.seq = seq;
    p.payload = "xxxx";
    return p;
  };
  net::Packet syn = seg(100);
  syn.tcp_flags = net::TcpFlags::kSyn;
  syn.payload.clear();
  r.push(syn, out);
  // Hold 5 future segments (gap at 101): overflow declares the gap lost.
  for (uint32_t s : {109, 105, 113, 117, 121}) r.push(seg(s), out);
  ASSERT_GE(out.size(), 2u);
  // Released segments are in sequence order.
  for (size_t i = 2; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].seq, out[i].seq);
  }
}

// ------------------------------------------------------------------ pcap

TEST(Pcap, BigEndianFilesAreByteSwapped) {
  auto path = std::filesystem::temp_directory_path() / "netqre_be.pcap";
  {
    std::ofstream f(path, std::ios::binary);
    // Global header, big-endian magic 0xa1b2c3d4 stored byte-swapped for a
    // little-endian reader.
    const unsigned char gh[24] = {0xa1, 0xb2, 0xc3, 0xd4, 0, 2, 0, 4,
                                  0,    0,   0,   0,    0, 0, 0, 0,
                                  0,    0,   0xff, 0xff, 0, 0, 0, 1};
    f.write(reinterpret_cast<const char*>(gh), 24);
  }
  net::PcapReader reader(path.string());
  EXPECT_EQ(reader.snaplen(), 0xffffu);
  EXPECT_FALSE(reader.next().has_value());  // empty capture
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- trie stats

TEST(ScopeStats, LeavesTrackLiveFlowsOnly) {
  auto prog = lang::compile_source(
      "sfun int f(IP x) = filter(srcip == x) >> count;", "f");
  // The assertions probe the interpreter's guard trie via eng.state(); the
  // compiled tier (which this query qualifies for) never materializes it.
  Engine eng(prog.query, core::EngineTier::Interpreted);
  const auto* scope =
      dynamic_cast<const core::ParamScopeOp*>(prog.query.root.get());
  ASSERT_NE(scope, nullptr);
  EXPECT_FALSE(scope->eager());

  net::Packet p;
  p.proto = net::Proto::Tcp;
  for (uint32_t s = 0; s < 10; ++s) {
    p.src_ip = 100 + s;
    eng.on_packet(p);
  }
  auto stats = scope->stats(eng.state());
  // 10 concrete leaves + the default chain.
  EXPECT_EQ(stats.leaves, 11u);
  EXPECT_EQ(stats.eager_steps, 0u);
}

TEST(ScopeStats, ValidatorFlagsUngatedIter) {
  // A bare `count` inside a parameter scope updates on every packet: the
  // scope must take the dynamic/eager path yet stay correct.
  auto prog = lang::compile_source(
      "sfun int f(IP x) = sum{ exists(srcip == x && dstip == y) | IP y } "
      "+ count;",
      "f");
  Engine eng(prog.query);
  net::Packet p;
  p.proto = net::Proto::Tcp;
  p.src_ip = 1;
  p.dst_ip = 2;
  eng.on_packet(p);
  p.dst_ip = 3;
  eng.on_packet(p);
  EXPECT_EQ(eng.eval_at({Value::ip(1)}).as_int(), 2 + 2);  // 2 dsts + 2 pkts
}

}  // namespace
}  // namespace netqre
