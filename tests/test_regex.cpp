// Automata-layer tests: PSRE → DFA compilation checked against a naive
// recursive matcher, minimization/product/complement properties, and the
// split/iter unambiguity checks (§3.3, §5.1).
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <span>

#include "core/regex.hpp"
#include "net/packet.hpp"

namespace netqre::core {
namespace {

using net::Packet;

// Alphabet for these tests: packets characterized by (srcip in {1..4},
// syn flag).  Letters are produced through real predicate evaluation.
Packet pkt(uint32_t src, bool syn = false) {
  Packet p;
  p.src_ip = src;
  p.proto = net::Proto::Tcp;
  p.tcp_flags = syn ? net::TcpFlags::kSyn : net::TcpFlags::kAck;
  return p;
}

// Naive PSRE matcher by structural recursion (the specification semantics).
bool naive_match(const Re& re, const AtomTable& table,
                 std::span<const Packet> w, const Valuation& val) {
  switch (re.kind) {
    case Re::Kind::Epsilon:
      return w.empty();
    case Re::Kind::Pred:
      return w.size() == 1 && re.pred.eval(table, w[0], val);
    case Re::Kind::Concat:
      for (size_t k = 0; k <= w.size(); ++k) {
        if (naive_match(re.kids[0], table, w.first(k), val) &&
            naive_match(re.kids[1], table, w.subspan(k), val)) {
          return true;
        }
      }
      return false;
    case Re::Kind::Alt:
      return naive_match(re.kids[0], table, w, val) ||
             naive_match(re.kids[1], table, w, val);
    case Re::Kind::Star:
      if (w.empty()) return true;
      for (size_t k = 1; k <= w.size(); ++k) {
        if (naive_match(re.kids[0], table, w.first(k), val) &&
            naive_match(re, table, w.subspan(k), val)) {
          return true;
        }
      }
      return false;
    case Re::Kind::Plus: {
      // Plus = body · body*.
      Re expand = Re::concat(re.kids[0], Re::star(re.kids[0]));
      return naive_match(expand, table, w, val);
    }
    case Re::Kind::Opt:
      return w.empty() || naive_match(re.kids[0], table, w, val);
    case Re::Kind::And:
      return naive_match(re.kids[0], table, w, val) &&
             naive_match(re.kids[1], table, w, val);
    case Re::Kind::Not:
      return !naive_match(re.kids[0], table, w, val);
  }
  return false;
}

bool dfa_match(const Dfa& dfa, const AtomTable& table,
               std::span<const Packet> w, const Valuation& val) {
  int q = dfa.start;
  for (const auto& p : w) q = dfa.step(q, dfa.letter_of(table, p, val));
  return dfa.accept[q];
}

struct Fixture {
  AtomTable table;
  Formula src(uint32_t v) {
    Atom a;
    a.field = {Field::SrcIp, -1};
    a.literal = Value::ip(v);
    return Formula::atom(table.intern(a));
  }
  Formula syn() {
    Atom a;
    a.field = {Field::Syn, -1};
    a.literal = Value::boolean(true);
    return Formula::atom(table.intern(a));
  }
};

TEST(RegexDfa, EpsilonAcceptsOnlyEmpty) {
  Fixture f;
  Dfa d = compile_regex(Re::eps(), f.table);
  EXPECT_TRUE(d.accepts_empty());
  std::vector<Packet> w = {pkt(1)};
  EXPECT_FALSE(dfa_match(d, f.table, w, {}));
}

TEST(RegexDfa, AnyStarAcceptsEverything) {
  Fixture f;
  Dfa d = compile_regex(Re::all(), f.table);
  EXPECT_TRUE(d.accepts_empty());
  std::vector<Packet> w = {pkt(1), pkt(2), pkt(3)};
  EXPECT_TRUE(dfa_match(d, f.table, w, {}));
  EXPECT_EQ(d.n_states(), 1);  // minimal
}

TEST(RegexDfa, ComplementFlipsMembership) {
  Fixture f;
  // !( .* [syn] ) : streams NOT ending in a SYN.
  Re ends_syn = Re::concat(Re::all(), Re::pred_of(f.syn()));
  Dfa d = compile_regex(Re::negate(ends_syn), f.table);
  std::vector<Packet> no = {pkt(1), pkt(2, true)};
  std::vector<Packet> yes = {pkt(1, true), pkt(2)};
  EXPECT_FALSE(dfa_match(d, f.table, no, {}));
  EXPECT_TRUE(dfa_match(d, f.table, yes, {}));
  EXPECT_TRUE(d.accepts_empty());
}

TEST(RegexDfa, IntersectionRequiresBoth) {
  Fixture f;
  // (.*[src==1].*) & (.*[syn].*): stream contains both a src-1 packet and a
  // SYN (possibly the same packet).
  Re has1 = Re::concat(Re::concat(Re::all(), Re::pred_of(f.src(1))),
                       Re::all());
  Re hasS = Re::concat(Re::concat(Re::all(), Re::pred_of(f.syn())),
                       Re::all());
  Dfa d = compile_regex(Re::conj(has1, hasS), f.table);
  std::vector<Packet> both = {pkt(2, true), pkt(1)};
  std::vector<Packet> only1 = {pkt(1), pkt(1)};
  EXPECT_TRUE(dfa_match(d, f.table, both, {}));
  EXPECT_FALSE(dfa_match(d, f.table, only1, {}));
}

TEST(RegexDfa, MinimizationIsMinimalForKnownLanguage) {
  Fixture f;
  // .*[syn][!syn]* : classic 2-state language over {syn, !syn}.
  Re re = Re::concat(Re::all(),
                     Re::concat(Re::pred_of(f.syn()),
                                Re::star(Re::pred_of(
                                    Formula::negate(f.syn())))));
  Dfa d = compile_regex(re, f.table);
  EXPECT_LE(d.n_states(), 3);
}

// Randomized equivalence: DFA compilation agrees with the naive matcher on
// random expressions and random streams.
class RandomRegex : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegex, DfaAgreesWithNaiveMatcher) {
  std::mt19937 rng(GetParam());
  Fixture f;
  // Pre-intern the atoms so every generated expression shares them.
  std::vector<Formula> preds = {f.src(1), f.src(2), f.syn(),
                                Formula::conj(f.src(1), f.syn()),
                                Formula::negate(f.src(2))};

  std::function<Re(int)> gen = [&](int depth) -> Re {
    const int pick = depth <= 0 ? static_cast<int>(rng() % 2)
                                : static_cast<int>(rng() % 8);
    switch (pick) {
      case 0: return Re::pred_of(preds[rng() % preds.size()]);
      case 1: return Re::eps();
      case 2: return Re::concat(gen(depth - 1), gen(depth - 1));
      case 3: return Re::alt(gen(depth - 1), gen(depth - 1));
      case 4: return Re::star(gen(depth - 1));
      case 5: return Re::opt(gen(depth - 1));
      case 6: return Re::plus(gen(depth - 1));
      default: return Re::conj(gen(depth - 1), gen(depth - 1));
    }
  };

  for (int trial = 0; trial < 12; ++trial) {
    Re re = gen(3);
    Dfa dfa = compile_regex(re, f.table);
    for (int s = 0; s < 12; ++s) {
      std::vector<Packet> w;
      const size_t len = rng() % 6;
      for (size_t i = 0; i < len; ++i) {
        w.push_back(pkt(1 + rng() % 3, rng() % 2 == 0));
      }
      Valuation val;
      EXPECT_EQ(dfa_match(dfa, f.table, w, val),
                naive_match(re, f.table, w, val))
          << "trial " << trial << " re=" << re.to_string(f.table);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegex,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------- ambiguity

TEST(Ambiguity, LastSynSplitIsUnambiguous) {
  Fixture f;
  Dfa any = compile_regex(Re::all(), f.table);
  Re last_syn = Re::concat(Re::pred_of(f.syn()),
                           Re::star(Re::pred_of(Formula::negate(f.syn()))));
  Dfa g = compile_regex(last_syn, f.table);
  EXPECT_TRUE(concat_unambiguous(any, g, f.table));
}

TEST(Ambiguity, AnyDotAnyIsAmbiguous) {
  Fixture f;
  // .* · .* splits anywhere.
  Dfa any = compile_regex(Re::all(), f.table);
  EXPECT_FALSE(concat_unambiguous(any, any, f.table));
}

TEST(Ambiguity, SinglePacketIterIsUnambiguous) {
  Fixture f;
  Dfa single = compile_regex(Re::any(), f.table);
  EXPECT_TRUE(star_unambiguous(single, f.table));
}

TEST(Ambiguity, EmptyAcceptingIterIsAmbiguous) {
  Fixture f;
  Dfa star = compile_regex(Re::all(), f.table);
  EXPECT_FALSE(star_unambiguous(star, f.table));
}

TEST(Ambiguity, SynRunsIterIsUnambiguous) {
  Fixture f;
  // ([syn]+[!syn]+)-segments factor uniquely.
  Re seg = Re::concat(Re::plus(Re::pred_of(f.syn())),
                      Re::plus(Re::pred_of(Formula::negate(f.syn()))));
  Dfa d = compile_regex(seg, f.table);
  EXPECT_TRUE(star_unambiguous(d, f.table));
}

TEST(Ambiguity, OptionalPrefixConcatIsAmbiguous) {
  Fixture f;
  // [syn]? · [syn]? : "syn" splits two ways.
  Dfa opt = compile_regex(Re::opt(Re::pred_of(f.syn())), f.table);
  EXPECT_FALSE(concat_unambiguous(opt, opt, f.table));
}

TEST(RegexDfa, TooManyAtomsIsRejected) {
  Fixture f;
  Re re = Re::eps();
  for (uint32_t i = 0; i < 25; ++i) {
    re = Re::concat(std::move(re), Re::pred_of(f.src(100 + i)));
  }
  EXPECT_THROW(compile_regex(re, f.table), std::runtime_error);
}

TEST(RegexDfa, DeadStateDetection) {
  Fixture f;
  // [syn] exactly: after two packets the run is dead.
  Dfa d = compile_regex(Re::pred_of(f.syn()), f.table);
  int q = d.start;
  q = d.step(q, d.letter_of(f.table, pkt(1, true), {}));
  EXPECT_TRUE(d.accept[q]);
  EXPECT_FALSE(d.is_dead(q));
  q = d.step(q, d.letter_of(f.table, pkt(1, true), {}));
  EXPECT_TRUE(d.is_dead(q));
  EXPECT_FALSE(d.empty_language());
}

}  // namespace
}  // namespace netqre::core
