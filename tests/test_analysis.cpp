// Semantic-analysis tests: one bad snippet per lint rule asserting the
// expected rule code and line, plus whole-file checks (all Table-1 queries
// analyze clean of errors; one broken program yields several distinct
// diagnostics in a single pass).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "apps/queries.hpp"
#include "lang/analysis.hpp"
#include "lang/diag.hpp"

namespace netqre::lang {
namespace {

bool has_diag(const Diagnostics& diags, const std::string& code, int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.code == code && d.line == line;
  });
}

std::string dump(const Diagnostics& diags) {
  std::string out;
  for (const auto& d : diags) out += "  " + d.to_string() + "\n";
  return out.empty() ? "  (no diagnostics)\n" : out;
}

struct RuleCase {
  const char* name;
  const char* source;
  const char* code;  // expected rule code
  int line;          // expected 1-based line within `source`
};

// One deliberately bad snippet per rule.  Line numbers refer to the snippet
// itself: the prelude is parsed separately, so user source starts at line 1.
const RuleCase kRuleCases[] = {
    {"NQ000_syntax",
     "sfun int f =\n"
     "  filter(srcip == ) >> count;\n",
     "NQ000", 2},
    {"NQ001_undefined_param",
     "sfun int f(IP a) =\n"
     "  filter(srcip == b) >> count;\n",
     "NQ001", 2},
    {"NQ001_undefined_sfun",
     "sfun int f = nosuchfun >> count;\n", "NQ001", 1},
    {"NQ002_unused_param",
     "sfun int f(IP a, int threshold) =\n"
     "  filter(srcip == a) >> count;\n",
     "NQ002", 1},
    {"NQ003_arity",
     "sfun int g(IP a, IP b) = filter(srcip == a, dstip == b) >> count;\n"
     "sfun int f(IP a) =\n"
     "  g(a) >> count;\n",
     "NQ003", 3},
    {"NQ003_type",
     "sfun int g(IP a) = filter(srcip == a) >> count;\n"
     "sfun int f =\n"
     "  g(\"nope\") >> count;\n",
     "NQ003", 3},
    {"NQ004_unsat_conjunction",
     "sfun int f =\n"
     "  filter(dstport == 80, dstport == 443) >> count;\n",
     "NQ004", 2},
    {"NQ005_nullable_iter",
     "sfun int f =\n"
     "  iter(/[syn == 1]*/ ? 1, sum);\n",
     "NQ005", 2},
    {"NQ005_overlapping_split",
     "sfun int f =\n"
     "  split(/[syn == 1]*/ ? 1, /[syn == 1]*/ ? 1, sum);\n",
     "NQ005", 2},
    {"NQ006_recent_inside_filter",
     "sfun int f =\n"
     "  filter(srcip == 1.2.3.4) >> count >> recent(5);\n",
     "NQ006", 2},
};

class AnalysisRule : public ::testing::TestWithParam<RuleCase> {};

TEST_P(AnalysisRule, ReportsCodeAtLine) {
  const RuleCase& c = GetParam();
  Diagnostics diags = analyze_source(c.source);
  EXPECT_TRUE(has_diag(diags, c.code, c.line))
      << "expected " << c.code << " at line " << c.line << ", got:\n"
      << dump(diags);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, AnalysisRule, ::testing::ValuesIn(kRuleCases),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      return std::string(info.param.name);
    });

// Warnings must not masquerade as errors and vice versa.
TEST(Analysis, SeverityMapping) {
  Diagnostics diags = analyze_source(
      "sfun int f(IP unused) = iter(/[syn == 1]*/ ? 1, sum);\n");
  ASSERT_FALSE(diags.empty());
  for (const auto& d : diags) {
    EXPECT_TRUE(d.code == "NQ002" || d.code == "NQ005") << d.to_string();
    EXPECT_FALSE(d.is_error()) << d.to_string();
  }
  EXPECT_FALSE(has_errors(diags));
}

// A single pass over one broken program reports all problems, not just the
// first: at least two distinct rule codes, each with a source line.
TEST(Analysis, MultipleDiagnosticsInOnePass) {
  Diagnostics diags = analyze_source(
      "sfun int per_src(IP a, int unused) =\n"
      "  filter(srcip == a, dstport == 80 && dstport == 443) >> count;\n"
      "sfun int f =\n"
      "  per_src(1.2.3.4) >> recent(5) >> count;\n");
  std::set<std::string> codes;
  for (const auto& d : diags) {
    EXPECT_GT(d.line, 0) << d.to_string();
    codes.insert(d.code);
  }
  EXPECT_GE(codes.size(), 2u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "NQ002", 1)) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "NQ004", 2)) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "NQ003", 4)) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "NQ006", 4)) << dump(diags);
}

// A correct program produces no diagnostics at all.
TEST(Analysis, CleanProgramIsClean) {
  Diagnostics diags = analyze_source(
      "sfun int per_src(IP a) =\n"
      "  filter(srcip == a, syn == 1) >> count;\n"
      "sfun int f(IP a) = recent(10) >> per_src(a);\n");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// Every Table-1 query file must analyze without errors (warnings allowed:
// the runtime compiler flags the same split/iter ambiguities).
TEST(Analysis, Table1QueriesHaveNoErrors) {
  std::set<std::string> files;
  for (const auto& q : apps::table1()) files.insert(q.file);
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    Diagnostics diags = analyze_source(apps::load_source(file));
    EXPECT_FALSE(has_errors(diags)) << file << ":\n" << dump(diags);
  }
}

}  // namespace
}  // namespace netqre::lang
