#!/bin/sh
# Two-process streaming test: a parent aggregator and one edge monitor,
# real sockets, real processes.  The edge replays a small generated
# workload, samples its result map every 200 ms and pushes each round to
# the parent; the test then asserts the parent serves the child's series
# through /api/v1/contexts and /api/v1/data.
#
# Usage: stream_e2e.sh <path-to-netqre-monitor>
set -eu

MONITOR=${1:?usage: stream_e2e.sh <netqre-monitor>}
WORK=$(mktemp -d)
PARENT_PID=""
EDGE_PID=""
cleanup() {
  [ -n "$PARENT_PID" ] && kill "$PARENT_PID" 2>/dev/null || true
  [ -n "$EDGE_PID" ] && kill "$EDGE_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# HTTP GET without curl/wget deps (CI images have curl, dev boxes vary).
fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -sf --max-time 10 "$1"
  else
    wget -qO- -T 10 "$1"
  fi
}

# --- parent: ephemeral port, grepped from its startup banner ------------
"$MONITOR" --parent --port 0 --max-seconds 60 2>"$WORK/parent.log" &
PARENT_PID=$!
PARENT_PORT=""
for _ in $(seq 1 50); do
  PARENT_PORT=$(sed -n 's/.*http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/parent.log" | head -n1)
  [ -n "$PARENT_PORT" ] && break
  sleep 0.1
done
[ -n "$PARENT_PORT" ] || { echo "FAIL: parent never started"; cat "$WORK/parent.log"; exit 1; }

# --- edge: replay, sample every 200 ms, stream to the parent ------------
# An always-firing alarm over the replayed query's context, so the run
# also exercises the edge -> parent ALERT path.
cat >"$WORK/e2e.health" <<'EOF'
alarm: e2e_always
on: heavy_hitter.nqre
lookup: max -60s
crit: > 0
info: e2e synthetic alarm
EOF
"$MONITOR" --port 0 --packets 20000 --pps 50000 --store-every 200 \
  --stream-to 127.0.0.1:"$PARENT_PORT" --source edge-e2e \
  --health "$WORK/e2e.health" \
  --max-seconds 4 2>"$WORK/edge.log" &
EDGE_PID=$!
wait $EDGE_PID
EDGE_PID=""

grep -q "streamed [1-9]" "$WORK/edge.log" || {
  echo "FAIL: edge streamed no rounds"; cat "$WORK/edge.log"; exit 1; }

# --- the parent must now serve the child's series -----------------------
CONTEXTS=$(fetch "http://127.0.0.1:$PARENT_PORT/api/v1/contexts")
echo "$CONTEXTS" | grep -q '"edge-e2e/heavy_hitter.nqre"' || {
  echo "FAIL: child context missing from parent /api/v1/contexts"
  echo "$CONTEXTS"; exit 1; }

DATA=$(fetch "http://127.0.0.1:$PARENT_PORT/api/v1/data?context=edge-e2e%2Fheavy_hitter.nqre&after=-600&points=10")
echo "$DATA" | grep -q '"context":"edge-e2e/heavy_hitter.nqre"' || {
  echo "FAIL: parent /api/v1/data did not answer the child context"
  echo "$DATA"; exit 1; }
# At least one data row with a real (non-null) value must be present.
echo "$DATA" | grep -Eq '"data":\[\[' || {
  echo "FAIL: parent range query returned no rows"; echo "$DATA"; exit 1; }
POINTS=$(echo "$DATA" | sed -n 's/.*"points":\([0-9]*\).*/\1/p')
[ "${POINTS:-0}" -ge 1 ] || {
  echo "FAIL: parent range query has points=$POINTS"; echo "$DATA"; exit 1; }

# --- and the child's alert must have propagated -------------------------
grep -q "CLEAR->CRITICAL" "$WORK/edge.log" || {
  echo "FAIL: edge never raised the synthetic alarm"
  cat "$WORK/edge.log"; exit 1; }
ALERTS=$(fetch "http://127.0.0.1:$PARENT_PORT/api/v1/alerts")
echo "$ALERTS" | grep -q '"source":"edge-e2e"' || {
  echo "FAIL: edge source missing from parent /api/v1/alerts"
  echo "$ALERTS"; exit 1; }
echo "$ALERTS" | grep -q '"rule":"e2e_always"' || {
  echo "FAIL: edge alarm missing from parent /api/v1/alerts"
  echo "$ALERTS"; exit 1; }
echo "$ALERTS" | grep -q '"status":"CRITICAL"' || {
  echo "FAIL: edge alarm not CRITICAL on the parent"
  echo "$ALERTS"; exit 1; }

kill $PARENT_PID
wait $PARENT_PID 2>/dev/null || true
PARENT_PID=""
echo "PASS: parent served ${POINTS} points and the edge-e2e alert"
