// Unit tests for the packet substrate: IPv4 helpers, wire codec, pcap I/O,
// flow keys, TCP reassembly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/flow.hpp"
#include "net/ipv4.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "net/wire.hpp"

namespace netqre::net {
namespace {

Packet make_tcp(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
                uint8_t flags, uint32_t seq = 0, uint32_t ack = 0,
                std::string payload = "") {
  Packet p;
  p.ts = 1.5;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.payload = std::move(payload);
  p.wire_len = static_cast<uint32_t>(54 + p.payload.size());
  return p;
}

TEST(Ipv4, ParseFormatRoundTrip) {
  EXPECT_EQ(parse_ip("10.0.0.1"), make_ip(10, 0, 0, 1));
  EXPECT_EQ(parse_ip("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ip("0.0.0.0"), 0u);
  EXPECT_EQ(format_ip(make_ip(192, 168, 1, 42)), "192.168.1.42");
  EXPECT_EQ(*parse_ip(format_ip(0xdeadbeef)), 0xdeadbeefu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ip("10.0.0"));
  EXPECT_FALSE(parse_ip("10.0.0.256"));
  EXPECT_FALSE(parse_ip("10.0.0.1.2"));
  EXPECT_FALSE(parse_ip("a.b.c.d"));
  EXPECT_FALSE(parse_ip(""));
  EXPECT_FALSE(parse_ip("10..0.1"));
}

TEST(Wire, TcpRoundTrip) {
  Packet p = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80,
                      TcpFlags::kSyn | TcpFlags::kAck, 1000, 2000, "hello");
  auto frame = encode_frame(p);
  auto q = decode_frame(frame, p.ts, p.wire_len);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->src_ip, p.src_ip);
  EXPECT_EQ(q->dst_ip, p.dst_ip);
  EXPECT_EQ(q->src_port, p.src_port);
  EXPECT_EQ(q->dst_port, p.dst_port);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->ack_no, p.ack_no);
  EXPECT_TRUE(q->syn());
  EXPECT_TRUE(q->ack());
  EXPECT_FALSE(q->fin());
  EXPECT_EQ(q->payload, "hello");
}

TEST(Wire, UdpRoundTrip) {
  Packet p;
  p.src_ip = make_ip(1, 2, 3, 4);
  p.dst_ip = make_ip(5, 6, 7, 8);
  p.src_port = 5060;
  p.dst_port = 5060;
  p.proto = Proto::Udp;
  p.payload = "INVITE sip:bob@example.com SIP/2.0\r\n";
  p.wire_len = 100;
  auto q = decode_frame(encode_frame(p), 0.0, p.wire_len);
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->is_udp());
  EXPECT_EQ(q->payload, p.payload);
  EXPECT_EQ(q->wire_len, 100u);
}

TEST(Wire, RejectsTruncated) {
  Packet p = make_tcp(1, 2, 3, 4, TcpFlags::kSyn);
  auto frame = encode_frame(p);
  frame.resize(20);
  EXPECT_FALSE(decode_frame(frame, 0.0, 0).has_value());
}

TEST(Wire, ChecksumIsValid) {
  Packet p = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1, 2,
                      TcpFlags::kAck, 7, 9, "data");
  auto frame = encode_frame(p);
  // Recomputing the IP header checksum over the stored header yields 0.
  EXPECT_EQ(inet_checksum(std::span(frame.data() + 14, size_t{20})), 0);
}

TEST(Pcap, WriteReadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "netqre_test.pcap";
  std::vector<Packet> packets;
  for (int i = 0; i < 100; ++i) {
    packets.push_back(make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2),
                               1000 + i, 80, TcpFlags::kAck, i, 0,
                               std::string(i % 7, 'x')));
    packets.back().ts = 1000.0 + i * 0.125;
  }
  write_all(path.string(), packets);
  auto loaded = read_all(path.string());
  ASSERT_EQ(loaded.size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].src_port, packets[i].src_port);
    EXPECT_EQ(loaded[i].payload, packets[i].payload);
    EXPECT_NEAR(loaded[i].ts, packets[i].ts, 1e-5);
  }
  std::filesystem::remove(path);
}

TEST(Pcap, RejectsBadMagic) {
  auto path = std::filesystem::temp_directory_path() / "netqre_bad.pcap";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pcap file at all, just text";
  }
  EXPECT_THROW(PcapReader reader(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Flow, ConnCanonicalIsDirectionless) {
  Packet p = make_tcp(make_ip(10, 0, 0, 2), make_ip(10, 0, 0, 1), 80, 1234,
                      TcpFlags::kAck);
  Packet q = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80,
                      TcpFlags::kAck);
  EXPECT_EQ(Conn::of(p).canonical(), Conn::of(q).canonical());
  EXPECT_NE(Conn::of(p), Conn::of(q));
  EXPECT_TRUE(Conn::of(p).matches(q));
  EXPECT_TRUE(Conn::of(q).matches(p));
}

TEST(Flow, HashSpreads) {
  ConnHash h;
  Conn a{1, 2, 3, 4, Proto::Tcp};
  Conn b{1, 2, 3, 5, Proto::Tcp};
  EXPECT_NE(h(a), h(b));
}

TEST(Reassembly, PassesInOrderTraffic) {
  TcpReorderer r;
  std::vector<Packet> out;
  uint32_t seq = 100;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, seq), out);
  seq += 1;
  for (int i = 0; i < 5; ++i) {
    r.push(make_tcp(1, 2, 10, 20, TcpFlags::kAck, seq, 0, "abcd"), out);
    seq += 4;
  }
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(r.stats().retransmits_dropped, 0u);
}

TEST(Reassembly, ReordersOutOfOrderSegments) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  auto a = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA");
  auto b = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 105, 0, "BBBB");
  r.push(b, out);  // arrives early: held
  EXPECT_EQ(out.size(), 1u);
  r.push(a, out);  // fills the gap: both released, in order
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].payload, "AAAA");
  EXPECT_EQ(out[2].payload, "BBBB");
  EXPECT_EQ(r.stats().reordered, 1u);
}

TEST(Reassembly, DropsExactRetransmission) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  auto a = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA");
  r.push(a, out);
  r.push(a, out);  // retransmission
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(r.stats().retransmits_dropped, 1u);
}

TEST(Reassembly, NonTcpPassesThrough) {
  TcpReorderer r;
  std::vector<Packet> out;
  Packet p;
  p.proto = Proto::Udp;
  r.push(p, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Reassembly, FlushReleasesHeldSegments) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 105, 0, "BBBB"), out);
  EXPECT_EQ(out.size(), 1u);
  r.flush(out);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace netqre::net
