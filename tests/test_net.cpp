// Unit tests for the packet substrate: IPv4 helpers, wire codec, pcap I/O,
// flow keys, TCP reassembly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/flow.hpp"
#include "net/ipv4.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "net/wire.hpp"

namespace netqre::net {
namespace {

Packet make_tcp(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
                uint8_t flags, uint32_t seq = 0, uint32_t ack = 0,
                std::string payload = "") {
  Packet p;
  p.ts = 1.5;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.payload = std::move(payload);
  p.wire_len = static_cast<uint32_t>(54 + p.payload.size());
  return p;
}

TEST(Ipv4, ParseFormatRoundTrip) {
  EXPECT_EQ(parse_ip("10.0.0.1"), make_ip(10, 0, 0, 1));
  EXPECT_EQ(parse_ip("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ip("0.0.0.0"), 0u);
  EXPECT_EQ(format_ip(make_ip(192, 168, 1, 42)), "192.168.1.42");
  EXPECT_EQ(*parse_ip(format_ip(0xdeadbeef)), 0xdeadbeefu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ip("10.0.0"));
  EXPECT_FALSE(parse_ip("10.0.0.256"));
  EXPECT_FALSE(parse_ip("10.0.0.1.2"));
  EXPECT_FALSE(parse_ip("a.b.c.d"));
  EXPECT_FALSE(parse_ip(""));
  EXPECT_FALSE(parse_ip("10..0.1"));
}

TEST(Wire, TcpRoundTrip) {
  Packet p = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80,
                      TcpFlags::kSyn | TcpFlags::kAck, 1000, 2000, "hello");
  auto frame = encode_frame(p);
  auto q = decode_frame(frame, p.ts, p.wire_len);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->src_ip, p.src_ip);
  EXPECT_EQ(q->dst_ip, p.dst_ip);
  EXPECT_EQ(q->src_port, p.src_port);
  EXPECT_EQ(q->dst_port, p.dst_port);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->ack_no, p.ack_no);
  EXPECT_TRUE(q->syn());
  EXPECT_TRUE(q->ack());
  EXPECT_FALSE(q->fin());
  EXPECT_EQ(q->payload, "hello");
}

TEST(Wire, UdpRoundTrip) {
  Packet p;
  p.src_ip = make_ip(1, 2, 3, 4);
  p.dst_ip = make_ip(5, 6, 7, 8);
  p.src_port = 5060;
  p.dst_port = 5060;
  p.proto = Proto::Udp;
  p.payload = "INVITE sip:bob@example.com SIP/2.0\r\n";
  p.wire_len = 100;
  auto q = decode_frame(encode_frame(p), 0.0, p.wire_len);
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->is_udp());
  EXPECT_EQ(q->payload, p.payload);
  EXPECT_EQ(q->wire_len, 100u);
}

TEST(Wire, RejectsTruncated) {
  Packet p = make_tcp(1, 2, 3, 4, TcpFlags::kSyn);
  auto frame = encode_frame(p);
  frame.resize(20);
  EXPECT_FALSE(decode_frame(frame, 0.0, 0).has_value());
}

TEST(Wire, ChecksumIsValid) {
  Packet p = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1, 2,
                      TcpFlags::kAck, 7, 9, "data");
  auto frame = encode_frame(p);
  // Recomputing the IP header checksum over the stored header yields 0.
  EXPECT_EQ(inet_checksum(std::span(frame.data() + 14, size_t{20})), 0);
}

TEST(Pcap, WriteReadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "netqre_test.pcap";
  std::vector<Packet> packets;
  for (int i = 0; i < 100; ++i) {
    packets.push_back(make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2),
                               1000 + i, 80, TcpFlags::kAck, i, 0,
                               std::string(i % 7, 'x')));
    packets.back().ts = 1000.0 + i * 0.125;
  }
  write_all(path.string(), packets);
  PacketBatch round_trip;
  read_all(path.string(), round_trip);
  const auto loaded = std::move(round_trip).take();
  ASSERT_EQ(loaded.size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].src_port, packets[i].src_port);
    EXPECT_EQ(loaded[i].payload, packets[i].payload);
    EXPECT_NEAR(loaded[i].ts, packets[i].ts, 1e-5);
  }
  std::filesystem::remove(path);
}

TEST(Pcap, RejectsBadMagic) {
  auto path = std::filesystem::temp_directory_path() / "netqre_bad.pcap";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pcap file at all, just text";
  }
  EXPECT_THROW(PcapReader reader(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Flow, ConnCanonicalIsDirectionless) {
  Packet p = make_tcp(make_ip(10, 0, 0, 2), make_ip(10, 0, 0, 1), 80, 1234,
                      TcpFlags::kAck);
  Packet q = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80,
                      TcpFlags::kAck);
  EXPECT_EQ(Conn::of(p).canonical(), Conn::of(q).canonical());
  EXPECT_NE(Conn::of(p), Conn::of(q));
  EXPECT_TRUE(Conn::of(p).matches(q));
  EXPECT_TRUE(Conn::of(q).matches(p));
}

TEST(Flow, HashSpreads) {
  ConnHash h;
  Conn a{1, 2, 3, 4, Proto::Tcp};
  Conn b{1, 2, 3, 5, Proto::Tcp};
  EXPECT_NE(h(a), h(b));
}

TEST(Reassembly, PassesInOrderTraffic) {
  TcpReorderer r;
  std::vector<Packet> out;
  uint32_t seq = 100;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, seq), out);
  seq += 1;
  for (int i = 0; i < 5; ++i) {
    r.push(make_tcp(1, 2, 10, 20, TcpFlags::kAck, seq, 0, "abcd"), out);
    seq += 4;
  }
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(r.stats().retransmits_dropped, 0u);
}

TEST(Reassembly, ReordersOutOfOrderSegments) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  auto a = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA");
  auto b = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 105, 0, "BBBB");
  r.push(b, out);  // arrives early: held
  EXPECT_EQ(out.size(), 1u);
  r.push(a, out);  // fills the gap: both released, in order
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].payload, "AAAA");
  EXPECT_EQ(out[2].payload, "BBBB");
  EXPECT_EQ(r.stats().reordered, 1u);
}

TEST(Reassembly, DropsExactRetransmission) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  auto a = make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA");
  r.push(a, out);
  r.push(a, out);  // retransmission
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(r.stats().retransmits_dropped, 1u);
}

TEST(Reassembly, NonTcpPassesThrough) {
  TcpReorderer r;
  std::vector<Packet> out;
  Packet p;
  p.proto = Proto::Udp;
  r.push(p, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Reassembly, FlushReleasesHeldSegments) {
  TcpReorderer r;
  std::vector<Packet> out;
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100), out);
  r.push(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 105, 0, "BBBB"), out);
  EXPECT_EQ(out.size(), 1u);
  r.flush(out);
  EXPECT_EQ(out.size(), 2u);
}

void expect_packet_eq(const Packet& a, const Packet& b, size_t i) {
  EXPECT_NEAR(a.ts, b.ts, 1e-5) << "packet " << i;
  EXPECT_EQ(a.src_ip, b.src_ip) << "packet " << i;
  EXPECT_EQ(a.dst_ip, b.dst_ip) << "packet " << i;
  EXPECT_EQ(a.src_port, b.src_port) << "packet " << i;
  EXPECT_EQ(a.dst_port, b.dst_port) << "packet " << i;
  EXPECT_EQ(a.proto, b.proto) << "packet " << i;
  EXPECT_EQ(a.tcp_flags, b.tcp_flags) << "packet " << i;
  EXPECT_EQ(a.seq, b.seq) << "packet " << i;
  EXPECT_EQ(a.ack_no, b.ack_no) << "packet " << i;
  EXPECT_EQ(a.wire_len, b.wire_len) << "packet " << i;
  EXPECT_EQ(a.payload, b.payload) << "packet " << i;
}

std::vector<Packet> mixed_trace(int n) {
  std::vector<Packet> packets;
  for (int i = 0; i < n; ++i) {
    if (i % 5 == 4) {
      Packet u;
      u.ts = 2000.0 + i;
      u.src_ip = make_ip(10, 0, 1, static_cast<uint8_t>(i));
      u.dst_ip = make_ip(10, 0, 2, 1);
      u.src_port = 5060;
      u.dst_port = 5060;
      u.proto = Proto::Udp;
      u.payload = std::string(static_cast<size_t>(i % 11), 'u');
      u.wire_len = static_cast<uint32_t>(42 + u.payload.size());
      packets.push_back(u);
      continue;
    }
    packets.push_back(make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2),
                               static_cast<uint16_t>(1000 + i), 80,
                               TcpFlags::kAck, static_cast<uint32_t>(i), 7,
                               std::string(static_cast<size_t>(i % 13), 'x')));
    packets.back().ts = 1000.0 + i * 0.125;
  }
  return packets;
}

TEST(Wire, DecodeIntoMatchesDecodeAndResetsStaleFields) {
  Packet tcp = make_tcp(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80,
                        TcpFlags::kSyn | TcpFlags::kAck, 1000, 2000, "hello");
  auto tcp_frame = encode_frame(tcp);
  Packet out;
  ASSERT_TRUE(decode_frame_into(tcp_frame, tcp.ts, tcp.wire_len, out));
  auto ref = decode_frame(tcp_frame, tcp.ts, tcp.wire_len);
  ASSERT_TRUE(ref.has_value());
  expect_packet_eq(out, *ref, 0);

  // Reusing the same slot for a UDP frame must not leak TCP-only fields.
  Packet udp;
  udp.src_ip = make_ip(1, 2, 3, 4);
  udp.dst_ip = make_ip(5, 6, 7, 8);
  udp.src_port = 53;
  udp.dst_port = 53;
  udp.proto = Proto::Udp;
  udp.payload = "dns";
  udp.wire_len = 60;
  ASSERT_TRUE(decode_frame_into(encode_frame(udp), 2.0, udp.wire_len, out));
  EXPECT_TRUE(out.is_udp());
  EXPECT_EQ(out.seq, 0u);
  EXPECT_EQ(out.ack_no, 0u);
  EXPECT_EQ(out.tcp_flags, 0);
  EXPECT_EQ(out.payload, "dns");

  // Undecodable frames report false and leave the claim revocable.
  std::vector<uint8_t> junk(20, 0xab);
  EXPECT_FALSE(decode_frame_into(junk, 0.0, 0, out));
}

TEST(Pcap, MappedReaderMatchesStreamReader) {
  auto path = std::filesystem::temp_directory_path() / "netqre_mmap.pcap";
  const auto packets = mixed_trace(100);
  write_all(path.string(), packets);

  std::vector<Packet> via_stream;
  {
    PcapReader r(path.string());
    while (auto p = r.next_packet()) via_stream.push_back(*p);
  }
  std::vector<Packet> via_mmap;
  {
    MappedPcapReader r(path.string());
    PacketBatch batch;
    // Odd batch size so refills straddle record boundaries.
    while (r.fill(batch, 7) > 0) {
      for (const auto& p : batch) via_mmap.push_back(p);
    }
  }
  ASSERT_EQ(via_stream.size(), packets.size());
  ASSERT_EQ(via_mmap.size(), via_stream.size());
  for (size_t i = 0; i < via_stream.size(); ++i) {
    expect_packet_eq(via_mmap[i], via_stream[i], i);
  }
  std::filesystem::remove(path);
}

TEST(Pcap, TruncatedTailParityBetweenReaders) {
  auto path = std::filesystem::temp_directory_path() / "netqre_trunc.pcap";
  write_all(path.string(), mixed_trace(10));
  // Cut into the last record's body.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);

  // Strict mode: both readers throw on the cut record.
  {
    PcapReader r(path.string());
    EXPECT_THROW(
        {
          while (r.next_packet()) {
          }
        },
        std::runtime_error);
  }
  {
    MappedPcapReader r(path.string());
    PacketBatch batch;
    EXPECT_THROW(
        {
          while (r.fill(batch, 4) > 0) {
          }
        },
        std::runtime_error);
  }

  // Tolerant mode: both stop at the cut with the same prefix and counter.
  PcapOptions tolerant;
  tolerant.tolerant = true;
  std::vector<Packet> via_stream;
  uint64_t stream_truncated = 0;
  {
    PcapReader r(path.string(), tolerant);
    while (auto p = r.next_packet()) via_stream.push_back(*p);
    stream_truncated = r.truncated_records();
  }
  std::vector<Packet> via_mmap;
  uint64_t mmap_truncated = 0;
  {
    MappedPcapReader r(path.string(), tolerant);
    PacketBatch batch;
    while (r.fill(batch, 4) > 0) {
      for (const auto& p : batch) via_mmap.push_back(p);
    }
    mmap_truncated = r.truncated_records();
  }
  EXPECT_EQ(via_stream.size(), 9u);
  ASSERT_EQ(via_mmap.size(), via_stream.size());
  for (size_t i = 0; i < via_stream.size(); ++i) {
    expect_packet_eq(via_mmap[i], via_stream[i], i);
  }
  EXPECT_EQ(stream_truncated, 1u);
  EXPECT_EQ(mmap_truncated, 1u);
  std::filesystem::remove(path);
}

TEST(Pcap, MappedReaderRejectsBadMagic) {
  auto path = std::filesystem::temp_directory_path() / "netqre_badm.pcap";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pcap file at all, just text";
  }
  EXPECT_THROW(MappedPcapReader reader(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Pcap, BatchReadAllMatchesVectorReadAll) {
  auto path = std::filesystem::temp_directory_path() / "netqre_batch.pcap";
  const auto packets = mixed_trace(64);
  write_all(path.string(), packets);

  // Parity with the deprecated copy-returning overload, on purpose: this
  // test is the record that both paths decode identically until the old
  // one is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto vec = read_all(path.string());
#pragma GCC diagnostic pop
  PacketBatch batch;
  EXPECT_EQ(read_all(path.string(), batch), vec.size());
  ASSERT_EQ(batch.size(), vec.size());
  for (size_t i = 0; i < vec.size(); ++i) {
    expect_packet_eq(batch[i], vec[i], i);
  }
  // The batch overload appends (callers concatenate captures).
  EXPECT_EQ(read_all(path.string(), batch), vec.size());
  EXPECT_EQ(batch.size(), 2 * vec.size());
  std::filesystem::remove(path);
}

TEST(Pcap, WriteAllSpanOverloadRoundTrips) {
  auto path = std::filesystem::temp_directory_path() / "netqre_span.pcap";
  const auto packets = mixed_trace(16);
  write_all(path.string(),
            std::span<const Packet>(packets.data() + 4, size_t{8}));
  PacketBatch batch;
  read_all(path.string(), batch);
  const auto loaded = std::move(batch).take();
  ASSERT_EQ(loaded.size(), 8u);
  for (size_t i = 0; i < loaded.size(); ++i) {
    expect_packet_eq(loaded[i], packets[i + 4], i);
  }
  std::filesystem::remove(path);
}

TEST(Reassembly, ReorderingSourceMatchesManualPipeline) {
  // Out-of-order segments, a retransmission, a gap-filling release that
  // exceeds the batch size, a held segment only flush() can deliver, and
  // interleaved non-TCP traffic.
  std::vector<Packet> trace;
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kSyn, 100));
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 109, 0, "CCCC"));
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 105, 0, "BBBB"));
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 113, 0, "DDDD"));
  Packet udp;
  udp.proto = Proto::Udp;
  udp.payload = "u";
  trace.push_back(udp);
  // Fills the gap at 101: releases AAAA plus the three held segments.
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA"));
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 101, 0, "AAAA"));
  // Never released in order: only the end-of-stream flush delivers it.
  trace.push_back(make_tcp(1, 2, 10, 20, TcpFlags::kAck, 125, 0, "ZZZZ"));

  std::vector<Packet> manual;
  {
    TcpReorderer r;
    for (const auto& p : trace) r.push(p, manual);
    r.flush(manual);
  }

  std::vector<Packet> batched;
  {
    VectorSource upstream(trace);
    TcpReorderer r;
    ReorderingSource source(upstream, r);
    PacketBatch batch;
    // max=3 < the 4-packet gap release, forcing surplus carry-over.
    while (source.fill(batch, 3) > 0) {
      for (const auto& p : batch) batched.push_back(p);
    }
    EXPECT_EQ(source.fill(batch, 3), 0u);  // stays drained after the flush
  }

  ASSERT_EQ(batched.size(), manual.size());
  for (size_t i = 0; i < manual.size(); ++i) {
    expect_packet_eq(batched[i], manual[i], i);
  }
}

}  // namespace
}  // namespace netqre::net
