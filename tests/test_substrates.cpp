// Substrate tests: traffic generators, manual baselines (cross-checked
// against compiled NetQRE queries), OpenSketch-style sketches, and the
// Bro-like interpreted engine.
#include <gtest/gtest.h>

#include "apps/queries.hpp"
#include "baselines/baselines.hpp"
#include "brolike/brolike.hpp"
#include "core/engine.hpp"
#include "core/fields.hpp"
#include "sketch/sketch.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;

// ----------------------------------------------------------- trafficgen

TEST(TrafficGen, BackboneIsDeterministicAndShaped) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 20'000;
  cfg.n_flows = 500;
  auto a = trafficgen::backbone_trace(cfg);
  auto b = trafficgen::backbone_trace(cfg);
  ASSERT_EQ(a.size(), cfg.n_packets);
  // Deterministic given the seed.
  for (size_t i : {size_t{0}, size_t{777}, a.size() - 1}) {
    EXPECT_EQ(a[i].src_ip, b[i].src_ip);
    EXPECT_EQ(a[i].wire_len, b[i].wire_len);
  }
  // Timestamps monotone at the configured rate.
  EXPECT_LT(a.front().ts, a.back().ts);
  // Mean size near the paper's 888 B.
  double mean = 0;
  for (const auto& p : a) mean += p.wire_len;
  mean /= static_cast<double>(a.size());
  EXPECT_GT(mean, 700);
  EXPECT_LT(mean, 1100);
}

TEST(TrafficGen, BackboneZipfIsSkewed) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 30'000;
  cfg.n_flows = 1'000;
  auto trace = trafficgen::backbone_trace(cfg);
  std::map<uint64_t, int> per_flow;
  for (const auto& p : trace) {
    ++per_flow[(uint64_t{p.src_ip} << 32) | p.dst_ip];
  }
  int top = 0;
  for (const auto& [k, n] : per_flow) top = std::max(top, n);
  // The hottest flow should dominate the uniform share by a wide margin.
  EXPECT_GT(top, 10 * static_cast<int>(cfg.n_packets / cfg.n_flows));
}

TEST(TrafficGen, SynFloodHasExactHandshakeCounts) {
  trafficgen::SynFloodConfig cfg;
  cfg.benign_handshakes = 30;
  cfg.attack_handshakes = 50;
  auto trace = trafficgen::syn_flood_trace(cfg);
  // benign: SYN+SYNACK+ACK = 3 packets; attack: SYN+SYNACK = 2.
  EXPECT_EQ(trace.size(), 30u * 3 + 50u * 2);
  baselines::SynFloodDetector det;
  for (const auto& p : trace) det.on_packet(p);
  EXPECT_EQ(det.incomplete(), 50u);
}

TEST(TrafficGen, SipTraceParsesBack) {
  trafficgen::SipConfig cfg;
  cfg.n_users = 3;
  cfg.n_calls = 6;
  cfg.media_pkts_per_call = 4;
  auto trace = trafficgen::sip_trace(cfg);
  int invites = 0, byes = 0, media = 0;
  for (const auto& p : trace) {
    auto m = core::sip_method(p.payload);
    if (m == "INVITE") {
      ++invites;
      EXPECT_FALSE(core::sip_header(p.payload, "Call-ID").empty());
      EXPECT_FALSE(core::sip_header(p.payload, "From").empty());
    } else if (m == "BYE") {
      ++byes;
    } else if (m.empty() && p.is_udp() && p.src_port != 5060) {
      ++media;
    }
  }
  EXPECT_EQ(invites, 6);
  EXPECT_EQ(byes, 6);
  EXPECT_EQ(media, 6 * 4);
}

TEST(TrafficGen, DnsMessagesDecode) {
  trafficgen::DnsConfig cfg;
  cfg.normal_queries = 10;
  cfg.tunnel_queries = 5;
  cfg.amplification_pairs = 3;
  auto trace = trafficgen::dns_trace(cfg);
  int long_names = 0, responses = 0;
  uint64_t victim_in = 0, victim_out = 0;
  for (const auto& p : trace) {
    if (p.dst_port == 53) {
      auto name = core::dns_qname(p.payload);
      EXPECT_FALSE(name.empty());
      if (name.size() > 40) ++long_names;
      if (p.src_ip == cfg.victim_ip) victim_out += p.wire_len;
    }
    if (p.src_port == 53) {
      EXPECT_TRUE(core::dns_is_response(p.payload));
      ++responses;
      if (p.dst_ip == cfg.victim_ip) victim_in += p.wire_len;
    }
  }
  EXPECT_EQ(long_names, 5);
  EXPECT_EQ(responses, 13);
  EXPECT_GT(victim_in, 10 * victim_out);  // the amplification signature
}

TEST(TrafficGen, IperfHitsTargetRate) {
  auto trace = trafficgen::iperf_trace(1, 2, 0.0, 10.0, 8.0);
  uint64_t bytes = 0;
  for (const auto& p : trace) bytes += p.wire_len;
  const double mbps = bytes * 8.0 / 1e6 / 10.0;
  EXPECT_NEAR(mbps, 8.0, 0.2);
}

// -------------------------------------------- baselines vs NetQRE queries

TEST(Baselines, HeavyHitterMatchesNetQRE) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 5'000;
  cfg.n_flows = 200;
  auto trace = trafficgen::backbone_trace(cfg);

  Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  baselines::HeavyHitter base;
  for (const auto& p : trace) {
    eng.on_packet(p);
    base.on_packet(p);
  }
  EXPECT_EQ(static_cast<uint64_t>(eng.eval().as_int()), base.total());
  int checked = 0;
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    EXPECT_EQ(static_cast<uint64_t>(v.as_int()),
              base.bytes(static_cast<uint32_t>(key[0].as_int()),
                         static_cast<uint32_t>(key[1].as_int())));
    ++checked;
  });
  EXPECT_EQ(static_cast<size_t>(checked), base.flows());
}

TEST(Baselines, SuperSpreaderMatchesNetQRE) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 4'000;
  cfg.n_flows = 300;
  auto trace = trafficgen::backbone_trace(cfg);
  Engine eng(apps::compile_app("super_spreader.nqre", "ss").query);
  baselines::SuperSpreader base;
  for (const auto& p : trace) {
    eng.on_packet(p);
    base.on_packet(p);
  }
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    EXPECT_EQ(static_cast<size_t>(v.as_int()),
              base.fanout(static_cast<uint32_t>(key[0].as_int())));
  });
}

TEST(Baselines, EntropyFinalization) {
  baselines::EntropyEstimator e;
  net::Packet p;
  // Uniform over 4 sources: entropy = 2 bits.
  for (uint32_t s = 1; s <= 4; ++s) {
    p.src_ip = s;
    for (int i = 0; i < 10; ++i) e.on_packet(p);
  }
  EXPECT_NEAR(e.entropy(), 2.0, 1e-9);
  // Single source: entropy 0.
  baselines::EntropyEstimator single;
  p.src_ip = 7;
  for (int i = 0; i < 5; ++i) single.on_packet(p);
  EXPECT_NEAR(single.entropy(), 0.0, 1e-9);
}

TEST(Baselines, CompletedFlowsMatchesNetQRE) {
  trafficgen::SlowlorisConfig cfg;  // normal conns complete, slow ones never
  cfg.normal_conns = 40;
  cfg.slow_conns = 25;
  auto trace = trafficgen::slowloris_trace(cfg);
  Engine eng(apps::compile_app("completed_flows.nqre",
                               "completed_flows").query);
  baselines::CompletedFlows base;
  for (const auto& p : trace) {
    eng.on_packet(p);
    base.on_packet(p);
  }
  EXPECT_EQ(static_cast<uint64_t>(eng.eval().as_int()), base.completed());
  EXPECT_EQ(base.completed(), 40u);
}

TEST(Baselines, SlowlorisAverageRateDropsUnderAttack) {
  trafficgen::SlowlorisConfig normal;
  normal.normal_conns = 50;
  normal.slow_conns = 0;
  trafficgen::SlowlorisConfig attack;
  attack.normal_conns = 50;
  attack.slow_conns = 150;

  baselines::SlowlorisDetector clean, attacked;
  for (const auto& p : trafficgen::slowloris_trace(normal)) {
    clean.on_packet(p);
  }
  for (const auto& p : trafficgen::slowloris_trace(attack)) {
    attacked.on_packet(p);
  }
  EXPECT_LT(attacked.average_rate(), clean.average_rate() / 2);
}

// ------------------------------------------------------------- sketches

TEST(Sketch, CountMinNeverUnderestimates) {
  sketch::CountMinSketch cm;
  std::map<uint64_t, uint64_t> truth;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 5'000; ++i) {
    uint64_t key = rng() % 300;
    uint64_t inc = 1 + rng() % 100;
    cm.update(key, inc);
    truth[key] += inc;
  }
  for (const auto& [k, v] : truth) {
    EXPECT_GE(cm.query(k), v);
  }
}

TEST(Sketch, CountMinAccurateForHeavyKeys) {
  sketch::CountMinSketch cm;
  for (int i = 0; i < 1'000; ++i) cm.update(42, 1'000);
  for (int i = 0; i < 10'000; ++i) cm.update(i + 100, 1);
  const uint64_t est = cm.query(42);
  EXPECT_GE(est, 1'000'000u);
  EXPECT_LE(est, 1'010'000u);  // small collision noise
}

TEST(Sketch, SuperSpreaderEstimateTracksFanout) {
  sketch::OpenSketchSuperSpreader ss;
  net::Packet p;
  p.src_ip = 1;
  for (uint32_t d = 0; d < 30; ++d) {
    p.dst_ip = 100 + d;
    ss.on_packet(p);
    ss.on_packet(p);  // duplicates must not inflate the estimate
  }
  const double est = ss.estimate(1);
  EXPECT_GT(est, 15.0);
  EXPECT_LT(est, 60.0);
  EXPECT_LT(ss.estimate(999), 3.0);  // unseen source
}

TEST(Sketch, MemoryIsTraceIndependent) {
  sketch::OpenSketchHeavyHitter hh;
  const size_t before = hh.memory();
  net::Packet p;
  for (uint32_t i = 0; i < 10'000; ++i) {
    p.src_ip = i;
    p.dst_ip = ~i;
    p.wire_len = 100;
    hh.on_packet(p);
  }
  EXPECT_EQ(hh.memory(), before);  // sketches: fixed footprint
}

// -------------------------------------------------------------- brolike

TEST(Brolike, InterpreterArithmeticAndTables) {
  brolike::Script s;
  s.constants = {int64_t{2}, int64_t{3}, std::string("k")};
  s.code = {
      {brolike::OpCode::PushConst, 0}, {brolike::OpCode::PushConst, 1},
      {brolike::OpCode::Mul, 0},       {brolike::OpCode::StoreGlobal, 0},
      {brolike::OpCode::PushConst, 2}, {brolike::OpCode::TableIncr, 0},
      {brolike::OpCode::PushConst, 2}, {brolike::OpCode::TableGet, 0},
      {brolike::OpCode::StoreGlobal, 1}, {brolike::OpCode::Halt, 0},
  };
  brolike::Interpreter vm;
  vm.run(s, {});
  EXPECT_EQ(std::get<int64_t>(vm.globals[0]), 6);
  EXPECT_EQ(std::get<int64_t>(vm.globals[1]), 1);
}

TEST(Brolike, InterpreterBranches) {
  // if (ev0 == 7) g0 = 1 else g0 = 2
  brolike::Script s;
  s.constants = {int64_t{7}, int64_t{1}, int64_t{2}};
  s.code = {
      {brolike::OpCode::LoadEvent, 0}, {brolike::OpCode::PushConst, 0},
      {brolike::OpCode::CmpEq, 0},     {brolike::OpCode::JmpIfZero, 7},
      {brolike::OpCode::PushConst, 1}, {brolike::OpCode::StoreGlobal, 0},
      {brolike::OpCode::Jmp, 9},       {brolike::OpCode::PushConst, 2},
      {brolike::OpCode::StoreGlobal, 0}, {brolike::OpCode::Halt, 0},
  };
  brolike::Interpreter vm;
  vm.run(s, {int64_t{7}});
  EXPECT_EQ(std::get<int64_t>(vm.globals[0]), 1);
  vm.run(s, {int64_t{8}});
  EXPECT_EQ(std::get<int64_t>(vm.globals[0]), 2);
}

TEST(Brolike, VoipCounterAgreesWithNetQRE) {
  trafficgen::SipConfig cfg;
  cfg.n_users = 5;
  cfg.n_calls = 37;
  cfg.media_pkts_per_call = 3;
  auto trace = trafficgen::sip_trace(cfg);

  brolike::VoipCallCounter bro;
  Engine eng(apps::compile_app("voip_count.nqre", "voip_call_count").query);
  for (const auto& p : trace) {
    bro.on_packet(p);
    eng.on_packet(p);
  }
  EXPECT_EQ(bro.total_calls(), 37);
  EXPECT_EQ(eng.eval().as_int(), 37);
  EXPECT_EQ(bro.calls_for(trafficgen::sip_user_name(0)), 8);  // 37 over 5
}

}  // namespace
}  // namespace netqre
