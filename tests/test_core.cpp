// Core smoke tests: predicates, regex→DFA, builder combinators, engine runs
// of the paper's flagship queries (heavy hitter, super spreader, counting).
#include <gtest/gtest.h>

#include <map>
#include <span>

#include "core/builder.hpp"
#include "core/engine.hpp"
#include "net/ipv4.hpp"

namespace netqre::core {
namespace {

using net::make_ip;
using net::Packet;
using net::Proto;
using net::TcpFlags;

Packet pkt(uint32_t src, uint32_t dst, uint32_t len = 100,
           uint8_t flags = TcpFlags::kAck) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = 10;
  p.dst_port = 20;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.wire_len = len;
  return p;
}

TEST(Regex, SingleAnyPacket) {
  QueryBuilder b;
  auto e = b.match(Re::any());
  Engine eng(b.finish(e));
  EXPECT_FALSE(eng.eval().as_bool());  // empty stream does not match "."
  eng.on_packet(pkt(1, 2));
  EXPECT_TRUE(eng.eval().as_bool());
  eng.on_packet(pkt(1, 2));
  EXPECT_FALSE(eng.eval().as_bool());  // two packets no longer match "."
}

TEST(Regex, LiteralPredicate) {
  QueryBuilder b;
  auto f = b.atom_eq("srcip", Value::ip(make_ip(1, 0, 0, 1)));
  auto e = b.match(Re::concat(Re::all(), Re::pred_of(f)));  // /.*[p]/
  Engine eng(b.finish(e));
  eng.on_packet(pkt(make_ip(9, 9, 9, 9), 2));
  EXPECT_FALSE(eng.eval().as_bool());
  eng.on_packet(pkt(make_ip(1, 0, 0, 1), 2));
  EXPECT_TRUE(eng.eval().as_bool());
  eng.on_packet(pkt(make_ip(9, 9, 9, 9), 2));
  EXPECT_FALSE(eng.eval().as_bool());
}

TEST(Builder, CountCountsPackets) {
  QueryBuilder b;
  Engine eng(b.finish(b.count()));
  EXPECT_EQ(eng.eval().as_int(), 0);
  for (int i = 0; i < 7; ++i) eng.on_packet(pkt(1, 2));
  EXPECT_EQ(eng.eval().as_int(), 7);
}

TEST(Builder, CountSizeSumsWireBytes) {
  QueryBuilder b;
  Engine eng(b.finish(b.count_size()));
  eng.on_packet(pkt(1, 2, 100));
  eng.on_packet(pkt(1, 2, 250));
  EXPECT_EQ(eng.eval().as_int(), 350);
}

// hh(x, y) = filter(srcip==x && dstip==y) >> count_size  (§4.1)
TEST(Engine, HeavyHitterPerFlowBytes) {
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  int y = b.new_param("y", Type::Ip);
  auto pred = Formula::conj(b.atom_param("srcip", x),
                            b.atom_param("dstip", y));
  auto hh = b.comp(b.filter(pred), b.count_size());
  auto top = b.aggregate(AggOp::Sum, {x, y}, std::move(hh));
  Engine eng(b.finish(top, {"x", "y"}));

  eng.on_packet(pkt(1, 2, 100));
  eng.on_packet(pkt(1, 3, 50));
  eng.on_packet(pkt(1, 2, 200));
  eng.on_packet(pkt(4, 2, 25));

  EXPECT_EQ(eng.eval_at({Value::ip(1), Value::ip(2)}).as_int(), 300);
  EXPECT_EQ(eng.eval_at({Value::ip(1), Value::ip(3)}).as_int(), 50);
  EXPECT_EQ(eng.eval_at({Value::ip(4), Value::ip(2)}).as_int(), 25);
  EXPECT_EQ(eng.eval_at({Value::ip(7), Value::ip(8)}).as_int(), 0);
  EXPECT_EQ(eng.eval().as_int(), 375);  // sum over observed flows

  int flows = 0;
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    ++flows;
    if (key[0].as_int() == 1 && key[1].as_int() == 2) {
      EXPECT_EQ(v.as_int(), 300);
    }
  });
  EXPECT_EQ(flows, 3);
}

// ss(x) = sum{ exist_pair(x,y) ? 1 : 0 | IP y }  (§4.1)
TEST(Engine, SuperSpreaderCountsDistinctDsts) {
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  int y = b.new_param("y", Type::Ip);
  auto pred = Formula::conj(b.atom_param("srcip", x),
                            b.atom_param("dstip", y));
  auto inner = b.exists(std::move(pred));
  auto per_src = b.aggregate(AggOp::Sum, {y}, std::move(inner));
  auto top = b.aggregate(AggOp::Max, {x}, std::move(per_src));
  Engine eng(b.finish(top, {"x"}));

  eng.on_packet(pkt(1, 2));
  eng.on_packet(pkt(1, 3));
  eng.on_packet(pkt(1, 3));  // duplicate destination
  eng.on_packet(pkt(1, 4));
  eng.on_packet(pkt(5, 2));

  EXPECT_EQ(eng.eval_at({Value::ip(1)}).as_int(), 3);
  EXPECT_EQ(eng.eval_at({Value::ip(5)}).as_int(), 1);
  EXPECT_EQ(eng.eval().as_int(), 3);  // max over sources
}

TEST(Engine, SplitCountsAfterLastSyn) {
  // split(any?0, last_syn?count, sum): packets since the last SYN (§3.3).
  QueryBuilder b;
  auto syn1 = b.atom_eq("syn", Value::boolean(true));
  Re last_syn = Re::concat(
      Re::pred_of(syn1),
      Re::star(Re::pred_of(Formula::negate(syn1))));
  auto f = b.cond(Re::all(), b.constant(Value::integer(0)));
  auto g = b.cond(last_syn, b.count());
  Engine eng(b.finish(b.split(std::move(f), std::move(g), AggOp::Sum)));

  eng.on_packet(pkt(1, 2));                          // no SYN yet: undef
  EXPECT_FALSE(eng.eval().defined());
  eng.on_packet(pkt(1, 2, 100, TcpFlags::kSyn));     // SYN
  EXPECT_EQ(eng.eval().as_int(), 1);
  eng.on_packet(pkt(1, 2));
  eng.on_packet(pkt(1, 2));
  EXPECT_EQ(eng.eval().as_int(), 3);
  eng.on_packet(pkt(1, 2, 100, TcpFlags::kSyn));     // later SYN resets
  EXPECT_EQ(eng.eval().as_int(), 1);
}

TEST(Engine, BatchMatchesPerPacket) {
  // on_batch is documented to leave the query state bit-identical to
  // calling on_packet for each packet in order; check value, enumeration
  // and the packet counter on a parameterized query.
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  int y = b.new_param("y", Type::Ip);
  auto pred = Formula::conj(b.atom_param("srcip", x),
                            b.atom_param("dstip", y));
  auto top = b.aggregate(AggOp::Sum, {x, y},
                         b.comp(b.filter(pred), b.count_size()));
  CompiledQuery q = b.finish(top);

  std::vector<Packet> stream;
  for (uint32_t i = 0; i < 100; ++i) {
    stream.push_back(pkt(1 + i % 5, 2 + i % 3, 10 + i));
  }

  Engine scalar(q);
  for (const auto& p : stream) scalar.on_packet(p);

  Engine batched(q);
  const std::span<const Packet> all(stream);
  for (size_t pos = 0; pos < all.size(); pos += 7) {
    batched.on_batch(all.subspan(pos, std::min<size_t>(7, all.size() - pos)));
  }

  EXPECT_EQ(scalar.packets(), batched.packets());
  EXPECT_EQ(scalar.eval().as_int(), batched.eval().as_int());
  std::map<std::string, std::string> a, c;
  scalar.enumerate([&](const std::vector<Value>& key, const Value& v) {
    a[key[0].to_string() + "," + key[1].to_string()] = v.to_string();
  });
  batched.enumerate([&](const std::vector<Value>& key, const Value& v) {
    c[key[0].to_string() + "," + key[1].to_string()] = v.to_string();
  });
  EXPECT_EQ(a, c);
  // An empty batch is a no-op, not an error.
  batched.on_batch({});
  EXPECT_EQ(scalar.packets(), batched.packets());
}

TEST(Engine, StreamingMatchesReference) {
  // Streaming vs specification semantics on the heavy-hitter query.
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  int y = b.new_param("y", Type::Ip);
  auto pred = Formula::conj(b.atom_param("srcip", x),
                            b.atom_param("dstip", y));
  auto top = b.aggregate(AggOp::Sum, {x, y},
                         b.comp(b.filter(pred), b.count_size()));
  CompiledQuery q = b.finish(top);

  std::vector<Packet> stream = {pkt(1, 2, 10), pkt(1, 3, 20), pkt(1, 2, 30),
                                pkt(2, 2, 40), pkt(1, 3, 50)};
  Engine eng(q);
  eng.on_stream(stream);
  Valuation val(q.n_slots, Value::undef());
  Value ref = q.root->ref_eval(stream, val);
  EXPECT_EQ(eng.eval().as_int(), ref.as_int());
}

}  // namespace
}  // namespace netqre::core
