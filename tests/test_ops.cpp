// Operator-layer tests: streaming updates (Algorithms 1-4) against the
// reference evaluator on randomized streams, sparse-vs-eager scope
// equivalence, aggregation accumulators, and value semantics.
#include <gtest/gtest.h>

#include <random>

#include "core/builder.hpp"
#include "core/engine.hpp"
#include "net/ipv4.hpp"

namespace netqre::core {
namespace {

using net::Packet;
using net::Proto;
using net::TcpFlags;

Packet pkt(uint32_t src, uint32_t dst, uint32_t len = 100,
           uint8_t flags = TcpFlags::kAck, uint32_t seq = 0,
           uint32_t ack = 0) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = 10;
  p.dst_port = 20;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.wire_len = len;
  return p;
}

std::vector<Packet> random_stream(std::mt19937& rng, size_t max_len) {
  std::vector<Packet> out;
  const size_t n = rng() % (max_len + 1);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(pkt(1 + rng() % 3, 1 + rng() % 3, 40 + rng() % 3 * 700,
                      rng() % 4 == 0 ? TcpFlags::kSyn : TcpFlags::kAck,
                      rng() % 5, rng() % 5));
  }
  return out;
}

// Runs a query both streaming and through ref_eval and compares.
void check_against_ref(const CompiledQuery& q,
                       const std::vector<Packet>& stream,
                       const std::string& what) {
  Engine eng(q);
  eng.on_stream(stream);
  Valuation val(q.n_slots, Value::undef());
  Value ref = q.root->ref_eval(stream, val);
  Value got = eng.eval();
  EXPECT_EQ(got.defined(), ref.defined()) << what;
  if (got.defined() && ref.defined()) {
    EXPECT_NEAR(got.as_double(), ref.as_double(), 1e-9) << what;
  }
}

// ------------------------------------------------------------ AggAcc

TEST(AggAcc, SumAvgMaxMin) {
  for (AggOp op : {AggOp::Sum, AggOp::Avg, AggOp::Max, AggOp::Min}) {
    AggAcc a = AggAcc::identity(op);
    a.add(Value::integer(4));
    a.add(Value::integer(10));
    a.add(Value::integer(1));
    switch (op) {
      case AggOp::Sum: EXPECT_EQ(a.result().as_int(), 15); break;
      case AggOp::Avg: EXPECT_DOUBLE_EQ(a.result().as_double(), 5.0); break;
      case AggOp::Max: EXPECT_EQ(a.result().as_int(), 10); break;
      case AggOp::Min: EXPECT_EQ(a.result().as_int(), 1); break;
    }
  }
}

TEST(AggAcc, EmptyIdentity) {
  EXPECT_EQ(AggAcc::identity(AggOp::Sum).result().as_int(), 0);
  EXPECT_FALSE(AggAcc::identity(AggOp::Avg).result().defined());
  EXPECT_FALSE(AggAcc::identity(AggOp::Max).result().defined());
  EXPECT_FALSE(AggAcc::identity(AggOp::Min).result().defined());
}

TEST(AggAcc, MergeEqualsSequential) {
  AggAcc a = AggAcc::identity(AggOp::Avg);
  AggAcc b = AggAcc::identity(AggOp::Avg);
  a.add(Value::integer(2));
  a.add(Value::integer(4));
  b.add(Value::integer(6));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.result().as_double(), 4.0);
}

TEST(AggAcc, UndefinedInputsAreIgnored) {
  AggAcc a = AggAcc::identity(AggOp::Sum);
  a.add(Value::undef());
  a.add(Value::integer(3));
  EXPECT_EQ(a.result().as_int(), 3);
  EXPECT_EQ(a.count, 1);
}

// ------------------------------------------------------------- Value

TEST(Value, NumericComparisonAcrossKinds) {
  EXPECT_EQ(Value::integer(3).compare(Value::real(3.0)), 0);
  EXPECT_LT(Value::integer(2).compare(Value::real(2.5)), 0);
  EXPECT_GT(Value::real(7.0).compare(Value::integer(6)), 0);
}

TEST(Value, EqualityIgnoresTypeTag) {
  EXPECT_EQ(Value::integer(80), Value::integer(80, Type::Port));
  EXPECT_NE(Value::integer(80), Value::integer(81));
  EXPECT_NE(Value::integer(0), Value::undef());
}

TEST(Value, FormattingByType) {
  EXPECT_EQ(Value::ip(net::make_ip(10, 0, 0, 1)).to_string(), "10.0.0.1");
  EXPECT_EQ(Value::boolean(true).to_string(), "true");
  EXPECT_EQ(Value::undef().to_string(), "undef");
  EXPECT_EQ(Value::str("abc").to_string(), "abc");
}

// ---------------------------------------------------- property: queries

struct QueryFactory {
  std::string name;
  std::function<CompiledQuery()> make;
};

std::vector<QueryFactory> property_queries() {
  return {
      {"count",
       [] {
         QueryBuilder b;
         return b.finish(b.count());
       }},
      {"count_size",
       [] {
         QueryBuilder b;
         return b.finish(b.count_size());
       }},
      {"hh-sum",
       [] {
         QueryBuilder b;
         int x = b.new_param("x", Type::Ip);
         int y = b.new_param("y", Type::Ip);
         auto pred = Formula::conj(b.atom_param("srcip", x),
                                   b.atom_param("dstip", y));
         return b.finish(b.aggregate(
             AggOp::Sum, {x, y}, b.comp(b.filter(pred), b.count_size())));
       }},
      {"ss-max",
       [] {
         QueryBuilder b;
         int x = b.new_param("x", Type::Ip);
         int y = b.new_param("y", Type::Ip);
         auto pred = Formula::conj(b.atom_param("srcip", x),
                                   b.atom_param("dstip", y));
         return b.finish(b.aggregate(
             AggOp::Max, {x},
             b.aggregate(AggOp::Sum, {y}, b.exists(std::move(pred)))));
       }},
      {"split-last-syn",
       [] {
         QueryBuilder b;
         auto syn = b.atom_eq("syn", Value::boolean(true));
         Re last = Re::concat(Re::pred_of(syn),
                              Re::star(Re::pred_of(Formula::negate(syn))));
         return b.finish(b.split(b.cond(Re::all(),
                                        b.constant(Value::integer(0))),
                                 b.cond(last, b.count()), AggOp::Sum));
       }},
      {"iter-syn-runs",
       [] {
         QueryBuilder b;
         auto syn = b.atom_eq("syn", Value::boolean(true));
         Re seg = Re::concat(Re::plus(Re::pred_of(syn)),
                             Re::plus(Re::pred_of(Formula::negate(syn))));
         return b.finish(
             b.iter(b.cond(seg, b.constant(Value::integer(1))), AggOp::Sum));
       }},
      {"per-src-bytes",
       [] {
         QueryBuilder b;
         int x = b.new_param("x", Type::Ip);
         return b.finish(b.aggregate(
             AggOp::Sum, {x},
             b.comp(b.filter(b.atom_param("srcip", x)), b.count_size())));
       }},
      {"dup-seq",
       [] {
         // Distinct seq values appearing at least twice.
         QueryBuilder b;
         int y = b.new_param("y", Type::Int);
         auto a = b.atom_param("seq", y);
         Re twice = Re::concat(
             Re::concat(Re::concat(Re::all(), Re::pred_of(a)), Re::all()),
             Re::concat(Re::pred_of(a), Re::all()));
         return b.finish(b.aggregate(
             AggOp::Sum, {y},
             b.cond_else(twice, b.constant(Value::integer(1)),
                         b.constant(Value::integer(0)))));
       }},
  };
}

class StreamingVsReference
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StreamingVsReference, Agree) {
  const auto [qi, seed] = GetParam();
  auto factories = property_queries();
  ASSERT_LT(static_cast<size_t>(qi), factories.size());
  CompiledQuery q = factories[qi].make();
  std::mt19937 rng(seed * 977 + qi);
  for (int trial = 0; trial < 8; ++trial) {
    auto stream = random_stream(rng, 10);
    check_against_ref(q, stream, factories[qi].name + " trial " +
                                     std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingVsReference,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2, 3)));

// -------------------------------------------- sparse vs eager scope

// The sparse guard-trie update (with letter-class skipping and descent) must
// be observationally equal to the always-eager update.
class SparseVsEager : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsEager, HeavyHitterShape) {
  auto make = [](bool eager) {
    QueryBuilder b;
    int x = b.new_param("x", Type::Ip);
    int y = b.new_param("y", Type::Ip);
    auto pred = Formula::conj(b.atom_param("srcip", x),
                              b.atom_param("dstip", y));
    auto inner = b.comp(b.filter(pred), b.count_size());
    ScopeMode mode;
    mode.kind = ScopeMode::Kind::Aggregate;
    mode.agg = AggOp::Sum;
    auto scope = std::make_shared<ParamScopeOp>(0, 2, mode,
                                                std::move(inner.op),
                                                b.table(), eager);
    CompiledQuery q;
    q.root = std::move(scope);
    q.table = b.table();
    q.n_slots = 2;
    return q;
  };
  CompiledQuery sparse = make(false);
  CompiledQuery eager = make(true);

  std::mt19937 rng(GetParam());
  Engine a(sparse), e(eager);
  for (int i = 0; i < 120; ++i) {
    Packet p = pkt(1 + rng() % 4, 1 + rng() % 4, 40 + rng() % 2 * 1000);
    a.on_packet(p);
    e.on_packet(p);
  }
  EXPECT_EQ(a.eval().as_int(), e.eval().as_int());
  // Every concrete valuation agrees.
  e.enumerate([&](const std::vector<Value>& key, const Value& v) {
    EXPECT_EQ(a.eval_at(key).as_int(), v.as_int());
  });
}

TEST_P(SparseVsEager, SynFloodShape) {
  auto make = [](bool eager) {
    QueryBuilder b;
    int x = b.new_param("x", Type::Int);
    int y = b.new_param("y", Type::Int);
    auto syn1 = Formula::conj(
        Formula::conj(b.atom_eq("syn", Value::boolean(true)),
                      Formula::negate(b.atom_eq("ack", Value::boolean(true)))),
        b.atom_param("seq", x));
    auto synack = Formula::conj(
        Formula::conj(b.atom_eq("syn", Value::boolean(true)),
                      b.atom_eq("ack", Value::boolean(true))),
        Formula::conj(b.atom_param("seq", y), b.atom_param("ackno", x, 1)));
    auto complete = Formula::conj(b.atom_eq("ack", Value::boolean(true)),
                                  b.atom_param("ackno", y, 1));
    Re bad = Re::concat(
        Re::concat(Re::concat(Re::all(), Re::pred_of(syn1)), Re::all()),
        Re::concat(Re::pred_of(synack),
                   Re::star(Re::pred_of(Formula::negate(complete)))));
    auto inner = b.cond(bad, b.constant(Value::integer(1)));
    ScopeMode mode;
    mode.kind = ScopeMode::Kind::Aggregate;
    mode.agg = AggOp::Sum;
    auto scope = std::make_shared<ParamScopeOp>(0, 2, mode,
                                                std::move(inner.op),
                                                b.table(), eager);
    CompiledQuery q;
    q.root = std::move(scope);
    q.table = b.table();
    q.n_slots = 2;
    return q;
  };
  CompiledQuery sparse = make(false);
  CompiledQuery eager = make(true);

  std::mt19937 rng(GetParam() + 100);
  Engine a(sparse), e(eager);
  for (int i = 0; i < 80; ++i) {
    const int roll = rng() % 3;
    const uint8_t flags = roll == 0 ? TcpFlags::kSyn
                          : roll == 1 ? (TcpFlags::kSyn | TcpFlags::kAck)
                                      : TcpFlags::kAck;
    Packet p = pkt(1, 2, 60, flags, rng() % 6, rng() % 6);
    a.on_packet(p);
    e.on_packet(p);
  }
  EXPECT_EQ(a.eval().as_int(), e.eval().as_int());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsEager,
                         ::testing::Values(11, 22, 33, 44, 55));

// --------------------------------------------------------- split / iter

TEST(SplitOp, UndefinedWhenNoValidDecomposition) {
  QueryBuilder b;
  auto syn = b.atom_eq("syn", Value::boolean(true));
  // f = exactly one SYN packet, g = exactly one non-SYN packet.
  auto f = b.cond(Re::pred_of(syn), b.constant(Value::integer(1)));
  auto g = b.cond(Re::pred_of(Formula::negate(syn)),
                  b.constant(Value::integer(2)));
  Engine eng(b.finish(b.split(std::move(f), std::move(g), AggOp::Sum)));
  eng.on_packet(pkt(1, 2, 100, TcpFlags::kSyn));
  EXPECT_FALSE(eng.eval().defined());  // missing the non-SYN suffix
  eng.on_packet(pkt(1, 2, 100, TcpFlags::kAck));
  EXPECT_EQ(eng.eval().as_int(), 3);
  eng.on_packet(pkt(1, 2, 100, TcpFlags::kAck));
  EXPECT_FALSE(eng.eval().defined());  // too long for f . g
}

TEST(SplitOp, EmptyPrefixSplit) {
  QueryBuilder b;
  // f defined on the empty stream (count = 0), g = count: split at the very
  // beginning is a valid decomposition.
  auto f = b.count();
  auto g = b.count();
  Engine eng(b.finish(b.split(std::move(f), std::move(g), AggOp::Sum)));
  EXPECT_EQ(eng.eval().as_int(), 0);  // empty + empty
  eng.on_packet(pkt(1, 2));
  EXPECT_EQ(eng.eval().as_int(), 1);  // ambiguous split but consistent sum
}

TEST(IterOp, MaxOverSegments) {
  QueryBuilder b;
  // Segments of [syn]+[!syn]+; value = segment packet count; max over them.
  auto syn = b.atom_eq("syn", Value::boolean(true));
  Re seg = Re::concat(Re::plus(Re::pred_of(syn)),
                      Re::plus(Re::pred_of(Formula::negate(syn))));
  Engine eng(b.finish(b.iter(b.cond(seg, b.count()), AggOp::Max)));
  auto push = [&](bool s, int n) {
    for (int i = 0; i < n; ++i) {
      eng.on_packet(pkt(1, 2, 100, s ? TcpFlags::kSyn : TcpFlags::kAck));
    }
  };
  push(true, 1);
  push(false, 2);  // segment of 3
  push(true, 2);
  push(false, 3);  // segment of 5
  EXPECT_EQ(eng.eval().as_int(), 5);
}

TEST(TernaryOp, PolicyThreshold) {
  QueryBuilder b;
  auto cond = b.bin(BinKind::Gt, b.count(), b.constant(Value::integer(2)));
  auto expr = b.ternary(std::move(cond),
                        b.action("alert", {b.last_field("srcip")}),
                        std::nullopt);
  Engine eng(b.finish(std::move(expr)));
  eng.on_packet(pkt(9, 2));
  eng.on_packet(pkt(9, 2));
  EXPECT_FALSE(eng.eval().defined());
  eng.on_packet(pkt(9, 2));
  ASSERT_TRUE(eng.eval().defined());
  EXPECT_EQ(eng.eval().to_string(), "alert(0.0.0.9)");
}

TEST(ProjOp, ConnComponents) {
  Value c = Value::conn(net::Conn{net::make_ip(1, 2, 3, 4),
                                  net::make_ip(5, 6, 7, 8), 1000, 80,
                                  Proto::Tcp});
  EXPECT_EQ(ProjOp::project(ProjOp::Component::SrcIp, c).to_string(),
            "1.2.3.4");
  EXPECT_EQ(ProjOp::project(ProjOp::Component::DstPort, c).as_int(), 80);
  EXPECT_FALSE(
      ProjOp::project(ProjOp::Component::SrcIp, Value::integer(1)).defined());
}

TEST(Engine, ResetClearsState) {
  QueryBuilder b;
  Engine eng(b.finish(b.count()));
  eng.on_packet(pkt(1, 2));
  eng.on_packet(pkt(1, 2));
  EXPECT_EQ(eng.eval().as_int(), 2);
  eng.reset();
  EXPECT_EQ(eng.eval().as_int(), 0);
  EXPECT_EQ(eng.packets(), 0u);
}

TEST(Engine, StateMemoryGrowsWithFlows) {
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  auto q = b.finish(b.aggregate(
      AggOp::Sum, {x}, b.comp(b.filter(b.atom_param("srcip", x)),
                              b.count())));
  Engine eng(q);
  const size_t empty = eng.state_memory();
  for (uint32_t i = 0; i < 50; ++i) eng.on_packet(pkt(1000 + i, 2));
  EXPECT_GT(eng.state_memory(), empty);
}

}  // namespace
}  // namespace netqre::core
