// Unit tests for the telemetry layer (src/obs) and its engine/net
// instrumentation: counter/gauge/histogram semantics, registry snapshot
// consistency, per-op profiling, and the tolerant pcap read mode.
//
// Every assertion is written to hold in both builds: with telemetry on it
// checks real values, with -DNETQRE_TELEMETRY=OFF (obs::kEnabled == false)
// it checks that the whole layer reads as empty no-ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "net/pcap.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using obs::kEnabled;

uint64_t expected(uint64_t v) { return kEnabled ? v : 0; }

TEST(ObsCounter, IncrementValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), expected(42));
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValuePeakAndSets) {
  obs::Gauge g;
  g.set(10);
  g.set(100);
  g.set(30);
  EXPECT_EQ(g.value(), static_cast<int64_t>(expected(30)));
  EXPECT_EQ(g.peak(), static_cast<int64_t>(expected(100)));
  EXPECT_EQ(g.sets(), expected(3));
  g.add(-5);
  EXPECT_EQ(g.value(), static_cast<int64_t>(expected(25)));
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  EXPECT_EQ(g.sets(), 0u);
}

TEST(ObsHistogram, BucketPlacementCountAndSum) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  obs::Histogram h(bounds);
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(2.0);  // bucket 1 (<= 2, inclusive upper bound)
  h.observe(3.0);  // bucket 2 (<= 4)
  h.observe(9.0);  // +inf overflow bucket
  EXPECT_EQ(h.count(), expected(4));
  if (kEnabled) {
    EXPECT_DOUBLE_EQ(h.sum(), 14.5);
    const auto buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
  }
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  obs::MetricSample s;
  s.kind = obs::MetricKind::Histogram;
  s.bounds = {10.0, 20.0, 40.0};
  s.buckets = {0, 100, 0};
  s.count = 100;
  // All mass in (10, 20]: the median interpolates to the bucket midpoint.
  EXPECT_NEAR(obs::histogram_quantile(s, 0.5), 15.0, 1.0);
  EXPECT_LE(obs::histogram_quantile(s, 0.99), 20.0);
  obs::MetricSample empty;
  empty.kind = obs::MetricKind::Histogram;
  EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0.0);
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  auto& reg = obs::registry();
  obs::Counter& a = reg.counter("netqre_test_idempotent_total");
  obs::Counter& b = reg.counter("netqre_test_idempotent_total");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = reg.gauge("netqre_test_idempotent_gauge");
  obs::Gauge& g2 = reg.gauge("netqre_test_idempotent_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, KindMismatchThrows) {
  if (!kEnabled) GTEST_SKIP() << "no registry bookkeeping in no-op build";
  auto& reg = obs::registry();
  reg.counter("netqre_test_kind_total");
  EXPECT_THROW(reg.gauge("netqre_test_kind_total"), std::runtime_error);
  EXPECT_THROW(reg.histogram("netqre_test_kind_total",
                             obs::latency_bounds_ns()),
               std::runtime_error);
}

TEST(ObsRegistry, SnapshotIsSortedAndFindable) {
  auto& reg = obs::registry();
  reg.counter("netqre_test_snap_b_total").inc(7);
  reg.counter("netqre_test_snap_a_total").inc(3);
  const auto snap = reg.snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(snap.metrics.empty());
    EXPECT_EQ(snap.find("netqre_test_snap_a_total"), nullptr);
    return;
  }
  for (size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
  const auto* a = snap.find("netqre_test_snap_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 3u);
  const auto* b = snap.find("netqre_test_snap_b_total");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 7u);
  EXPECT_EQ(snap.find("netqre_test_snap_missing"), nullptr);
  // Both expositions include the metric and parse as non-empty documents.
  EXPECT_NE(snap.to_json().find("netqre_test_snap_a_total"),
            std::string::npos);
  EXPECT_NE(snap.to_prometheus().find("netqre_test_snap_a_total"),
            std::string::npos);
}

TEST(ObsRegistry, ResetZeroesButKeepsInstances) {
  auto& reg = obs::registry();
  obs::Counter& c = reg.counter("netqre_test_reset_total");
  c.inc(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  // The handle stays valid and usable after reset.
  c.inc();
  EXPECT_EQ(c.value(), expected(1));
}

// ---- engine instrumentation ------------------------------------------------

std::vector<net::Packet> small_backbone() {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 3000;
  cfg.n_flows = 200;
  return trafficgen::backbone_trace(cfg);
}

TEST(EngineTelemetry, CountersAgreeWithEngineAccessors) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  const auto trace = small_backbone();
  eng.on_stream(trace);
  EXPECT_EQ(eng.packets(), trace.size());

  const auto snap = obs::registry().snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(snap.metrics.empty());
    return;
  }
  const auto* pkts = snap.find("netqre_engine_packets_total");
  ASSERT_NE(pkts, nullptr);
  EXPECT_EQ(pkts->count, eng.packets());

  // on_stream ends with a state sample, so the gauges match the engine.
  const auto* mem = snap.find("netqre_engine_state_memory_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->value, static_cast<int64_t>(eng.state_memory()));
  EXPECT_GE(mem->peak, mem->value);

  const auto* guarded = snap.find("netqre_engine_guarded_states");
  ASSERT_NE(guarded, nullptr);
  EXPECT_GT(guarded->value, 0);

  const auto* lat = snap.find("netqre_engine_packet_latency_ns");
  ASSERT_NE(lat, nullptr);
  // on_stream runs as one batch: a single mean-ns/packet sample.
  EXPECT_EQ(lat->count, 1u);

  // The scalar path keeps its one-sample-per-kLatencySampleEvery cadence.
  obs::registry().reset();
  core::Engine scalar(apps::compile_app("heavy_hitter.nqre", "hh").query);
  for (const auto& p : trace) scalar.on_packet(p);
  const auto snap2 = obs::registry().snapshot();
  const auto* lat2 = snap2.find("netqre_engine_packet_latency_ns");
  ASSERT_NE(lat2, nullptr);
  EXPECT_EQ(lat2->count,
            (trace.size() + core::Engine::kLatencySampleEvery - 1) /
                core::Engine::kLatencySampleEvery);
}

TEST(EngineTelemetry, ResetResamplesStateGauges) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  eng.on_stream(small_backbone());
  const size_t before = eng.state_memory();
  eng.reset();
  EXPECT_EQ(eng.packets(), 0u);
  EXPECT_LT(eng.state_memory(), before);
  if (!kEnabled) return;
  const auto snap = obs::registry().snapshot();
  const auto* mem = snap.find("netqre_engine_state_memory_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->value, static_cast<int64_t>(eng.state_memory()));
  // The peak still remembers the pre-reset high-water mark.
  EXPECT_GE(mem->peak, static_cast<int64_t>(before));
}

TEST(EngineTelemetry, PerOpProfileAndPublish) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  eng.enable_profiling();
  eng.on_stream(small_backbone());

  // indexed_ops is a preorder numbering: ids match positions, root first.
  const auto& ops = eng.indexed_ops();
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops.front(), eng.query().root.get());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i]->node_id(), static_cast<int>(i));
  }

  const core::OpProfile* prof = eng.profile();
  ASSERT_NE(prof, nullptr);
  ASSERT_EQ(prof->steps.size(), ops.size());
  if (kEnabled) {
    EXPECT_EQ(prof->steps[0], eng.packets());  // root steps once per packet
  }

  eng.publish_op_metrics();
  if (kEnabled) {
    // Publish is flush-and-clear: the per-node profile is zeroed...
    for (uint64_t s : prof->steps) EXPECT_EQ(s, 0u);
    // ...and the per-kind counters absorbed the steps.
    const auto snap = obs::registry().snapshot();
    uint64_t total = 0;
    for (const auto& m : snap.metrics) {
      if (m.name.rfind("netqre_op_steps_total", 0) == 0) total += m.count;
    }
    EXPECT_GT(total, 0u);
    // A second publish with no new work adds nothing.
    eng.publish_op_metrics();
    const auto snap2 = obs::registry().snapshot();
    uint64_t total2 = 0;
    for (const auto& m : snap2.metrics) {
      if (m.name.rfind("netqre_op_steps_total", 0) == 0) total2 += m.count;
    }
    EXPECT_EQ(total2, total);
  }
}

// ---- tolerant pcap ---------------------------------------------------------

TEST(PcapTolerant, TruncatedFileStopsAtLastWholeRecord) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "netqre_trunc.pcap";
  std::vector<net::Packet> packets;
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.src_ip = 0x0a000001;
    p.dst_ip = 0x0a000002;
    p.src_port = 1000 + i;
    p.dst_port = 80;
    p.proto = net::Proto::Tcp;
    p.ts = i * 0.001;
    p.payload.assign(64, 'x');
    packets.push_back(p);
  }
  net::write_all(path.string(), packets);
  // Cut the last record short.
  fs::resize_file(path, fs::file_size(path) - 20);

  // Strict mode throws mid-file.
  {
    net::PcapReader strict(path.string());
    EXPECT_THROW(
        {
          while (strict.next()) {
          }
        },
        std::runtime_error);
  }

  // Tolerant mode delivers every whole record, then stops cleanly.
  obs::registry().reset();
  net::PcapOptions opt;
  opt.tolerant = true;
  net::PcapReader reader(path.string(), opt);
  size_t whole = 0;
  while (reader.next()) ++whole;
  EXPECT_EQ(whole, packets.size() - 1);
  EXPECT_EQ(reader.truncated_records(), 1u);
  // A drained reader stays at EOF.
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.truncated_records(), 1u);

  if (kEnabled) {
    const auto snap = obs::registry().snapshot();
    const auto* truncated = snap.find("netqre_pcap_truncated_records_total");
    ASSERT_NE(truncated, nullptr);
    EXPECT_EQ(truncated->count, 1u);
    const auto* records = snap.find("netqre_pcap_records_total");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->count, packets.size() - 1);
  }

  // read_all in tolerant mode returns the decodable prefix.
  const auto recovered = net::read_all(path.string(), opt);
  EXPECT_EQ(recovered.size(), packets.size() - 1);
  fs::remove(path);
}

}  // namespace
}  // namespace netqre
