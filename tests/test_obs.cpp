// Unit tests for the telemetry layer (src/obs) and its engine/net
// instrumentation: counter/gauge/histogram semantics, registry snapshot
// consistency, per-op profiling, and the tolerant pcap read mode.
//
// Every assertion is written to hold in both builds: with telemetry on it
// checks real values, with -DNETQRE_TELEMETRY=OFF (obs::kEnabled == false)
// it checks that the whole layer reads as empty no-ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <thread>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "net/pcap.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using obs::kEnabled;

uint64_t expected(uint64_t v) { return kEnabled ? v : 0; }

TEST(ObsCounter, IncrementValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), expected(42));
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValuePeakAndSets) {
  obs::Gauge g;
  g.set(10);
  g.set(100);
  g.set(30);
  EXPECT_EQ(g.value(), static_cast<int64_t>(expected(30)));
  EXPECT_EQ(g.peak(), static_cast<int64_t>(expected(100)));
  EXPECT_EQ(g.sets(), expected(3));
  g.add(-5);
  EXPECT_EQ(g.value(), static_cast<int64_t>(expected(25)));
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  EXPECT_EQ(g.sets(), 0u);
}

TEST(ObsHistogram, BucketPlacementCountAndSum) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  obs::Histogram h(bounds);
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(2.0);  // bucket 1 (<= 2, inclusive upper bound)
  h.observe(3.0);  // bucket 2 (<= 4)
  h.observe(9.0);  // +inf overflow bucket
  EXPECT_EQ(h.count(), expected(4));
  if (kEnabled) {
    EXPECT_DOUBLE_EQ(h.sum(), 14.5);
    const auto buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
  }
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  obs::MetricSample s;
  s.kind = obs::MetricKind::Histogram;
  s.bounds = {10.0, 20.0, 40.0};
  s.buckets = {0, 100, 0};
  s.count = 100;
  // All mass in (10, 20]: the median interpolates to the bucket midpoint.
  EXPECT_NEAR(obs::histogram_quantile(s, 0.5), 15.0, 1.0);
  EXPECT_LE(obs::histogram_quantile(s, 0.99), 20.0);
  obs::MetricSample empty;
  empty.kind = obs::MetricKind::Histogram;
  EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0.0);
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  auto& reg = obs::registry();
  obs::Counter& a = reg.counter("netqre_test_idempotent_total");
  obs::Counter& b = reg.counter("netqre_test_idempotent_total");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = reg.gauge("netqre_test_idempotent_gauge");
  obs::Gauge& g2 = reg.gauge("netqre_test_idempotent_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, KindMismatchThrows) {
  if (!kEnabled) GTEST_SKIP() << "no registry bookkeeping in no-op build";
  auto& reg = obs::registry();
  reg.counter("netqre_test_kind_total");
  EXPECT_THROW(reg.gauge("netqre_test_kind_total"), std::runtime_error);
  EXPECT_THROW(reg.histogram("netqre_test_kind_total",
                             obs::latency_bounds_ns()),
               std::runtime_error);
}

TEST(ObsRegistry, SnapshotIsSortedAndFindable) {
  auto& reg = obs::registry();
  reg.counter("netqre_test_snap_b_total").inc(7);
  reg.counter("netqre_test_snap_a_total").inc(3);
  const auto snap = reg.snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(snap.metrics.empty());
    EXPECT_EQ(snap.find("netqre_test_snap_a_total"), nullptr);
    return;
  }
  for (size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
  const auto* a = snap.find("netqre_test_snap_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 3u);
  const auto* b = snap.find("netqre_test_snap_b_total");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 7u);
  EXPECT_EQ(snap.find("netqre_test_snap_missing"), nullptr);
  // Both expositions include the metric and parse as non-empty documents.
  EXPECT_NE(snap.to_json().find("netqre_test_snap_a_total"),
            std::string::npos);
  EXPECT_NE(snap.to_prometheus().find("netqre_test_snap_a_total"),
            std::string::npos);
}

TEST(ObsRegistry, ResetZeroesButKeepsInstances) {
  auto& reg = obs::registry();
  obs::Counter& c = reg.counter("netqre_test_reset_total");
  c.inc(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  // The handle stays valid and usable after reset.
  c.inc();
  EXPECT_EQ(c.value(), expected(1));
}

TEST(ObsRegistry, PrometheusBucketsAreCumulativeAndMergeLabels) {
  if (!kEnabled) GTEST_SKIP() << "empty exposition in no-op build";
  auto& reg = obs::registry();
  const std::vector<double> bounds{10, 100};
  auto& h = reg.histogram(
      obs::labeled_name("netqre_test_expo_ns", {{"shard", "0"}}), bounds);
  h.observe(5);    // <= 10
  h.observe(50);   // <= 100
  h.observe(500);  // +Inf overflow
  const std::string text = reg.snapshot().to_prometheus();
  // Buckets are cumulative (1, 2, 3), the le label merges after the
  // existing ones, and +Inf/_sum/_count close the family.
  EXPECT_NE(text.find("netqre_test_expo_ns_bucket{shard=\"0\",le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("netqre_test_expo_ns_bucket{shard=\"0\",le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("netqre_test_expo_ns_bucket{shard=\"0\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("netqre_test_expo_ns_sum{shard=\"0\"} 555"),
            std::string::npos);
  EXPECT_NE(text.find("netqre_test_expo_ns_count{shard=\"0\"} 3"),
            std::string::npos);
  // `# TYPE` names the base metric, not the labeled instance.
  EXPECT_NE(text.find("# TYPE netqre_test_expo_ns histogram"),
            std::string::npos);
}

TEST(ObsRegistry, BuildInfoAndUptimeExport) {
  obs::register_build_info();
  const obs::BuildInfo bi = obs::build_info();
  EXPECT_NE(std::string_view(bi.version), "");
  EXPECT_NE(std::string_view(bi.git_sha), "");
  if (!kEnabled) return;
  const std::string text = obs::registry().snapshot().to_prometheus();
  const std::string expected_line =
      obs::labeled_name("netqre_build_info", {{"version", bi.version},
                                              {"git_sha", bi.git_sha}}) +
      " 1";
  EXPECT_NE(text.find(expected_line), std::string::npos) << text;
  EXPECT_NE(text.find("netqre_uptime_seconds"), std::string::npos);
  // A later touch refreshes rather than re-registers.
  obs::touch_uptime();
  EXPECT_GE(obs::registry().gauge("netqre_uptime_seconds").value(), 0);
}

// ---- engine instrumentation ------------------------------------------------

std::vector<net::Packet> small_backbone() {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 3000;
  cfg.n_flows = 200;
  return trafficgen::backbone_trace(cfg);
}

TEST(EngineTelemetry, CountersAgreeWithEngineAccessors) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  const auto trace = small_backbone();
  eng.on_stream(trace);
  EXPECT_EQ(eng.packets(), trace.size());

  const auto snap = obs::registry().snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(snap.metrics.empty());
    return;
  }
  const auto* pkts = snap.find("netqre_engine_packets_total");
  ASSERT_NE(pkts, nullptr);
  EXPECT_EQ(pkts->count, eng.packets());

  // on_stream ends with a state sample, so the gauges match the engine.
  const auto* mem = snap.find("netqre_engine_state_memory_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->value, static_cast<int64_t>(eng.state_memory()));
  EXPECT_GE(mem->peak, mem->value);

  const auto* guarded = snap.find("netqre_engine_guarded_states");
  ASSERT_NE(guarded, nullptr);
  EXPECT_GT(guarded->value, 0);

  const auto* lat = snap.find("netqre_engine_packet_latency_ns");
  ASSERT_NE(lat, nullptr);
  // on_stream runs as one batch, and each batch contributes two
  // observations: the per-packet mean and the sampled per-packet max.
  EXPECT_EQ(lat->count, 2u);

  // The scalar path keeps its one-sample-per-kLatencySampleEvery cadence.
  obs::registry().reset();
  core::Engine scalar(apps::compile_app("heavy_hitter.nqre", "hh").query);
  for (const auto& p : trace) scalar.on_packet(p);
  const auto snap2 = obs::registry().snapshot();
  const auto* lat2 = snap2.find("netqre_engine_packet_latency_ns");
  ASSERT_NE(lat2, nullptr);
  EXPECT_EQ(lat2->count,
            (trace.size() + core::Engine::kLatencySampleEvery - 1) /
                core::Engine::kLatencySampleEvery);
}

TEST(EngineTelemetry, BatchRecordsMeanAndSampledMax) {
  if (!kEnabled) GTEST_SKIP() << "no latency histogram in no-op build";
  // Regression: on_batch used to record only the batch mean, so a single
  // slow packet inside an otherwise fast batch was invisible to p99.  Every
  // batch must now contribute exactly two observations (mean + sampled max),
  // and the max is by construction >= the mean of the sampled packets.
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  const auto trace = small_backbone();
  const std::span<const net::Packet> all(trace);
  const size_t half = trace.size() / 2;
  eng.on_batch(all.subspan(0, half));
  eng.on_batch(all.subspan(half));

  const auto snap = obs::registry().snapshot();
  const auto* lat = snap.find("netqre_engine_packet_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 4u);  // 2 batches x (mean + sampled max)
  EXPECT_GT(lat->sum, 0.0);
}

TEST(EngineTelemetry, ResetResamplesStateGauges) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  eng.on_stream(small_backbone());
  const size_t before = eng.state_memory();
  eng.reset();
  EXPECT_EQ(eng.packets(), 0u);
  EXPECT_LT(eng.state_memory(), before);
  if (!kEnabled) return;
  const auto snap = obs::registry().snapshot();
  const auto* mem = snap.find("netqre_engine_state_memory_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->value, static_cast<int64_t>(eng.state_memory()));
  // The peak still remembers the pre-reset high-water mark.
  EXPECT_GE(mem->peak, static_cast<int64_t>(before));
}

TEST(EngineTelemetry, PerOpProfileAndPublish) {
  obs::registry().reset();
  core::Engine eng(apps::compile_app("heavy_hitter.nqre", "hh").query);
  eng.enable_profiling();
  eng.on_stream(small_backbone());

  // indexed_ops is a preorder numbering: ids match positions, root first.
  const auto& ops = eng.indexed_ops();
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops.front(), eng.query().root.get());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i]->node_id(), static_cast<int>(i));
  }

  const core::OpProfile* prof = eng.profile();
  ASSERT_NE(prof, nullptr);
  ASSERT_EQ(prof->steps.size(), ops.size());
  if (kEnabled) {
    EXPECT_EQ(prof->steps[0], eng.packets());  // root steps once per packet
  }

  eng.publish_op_metrics();
  if (kEnabled) {
    // Publish is flush-and-clear: the per-node profile is zeroed...
    for (uint64_t s : prof->steps) EXPECT_EQ(s, 0u);
    // ...and the per-kind counters absorbed the steps.
    const auto snap = obs::registry().snapshot();
    uint64_t total = 0;
    for (const auto& m : snap.metrics) {
      if (m.name.rfind("netqre_op_steps_total", 0) == 0) total += m.count;
    }
    EXPECT_GT(total, 0u);
    // A second publish with no new work adds nothing.
    eng.publish_op_metrics();
    const auto snap2 = obs::registry().snapshot();
    uint64_t total2 = 0;
    for (const auto& m : snap2.metrics) {
      if (m.name.rfind("netqre_op_steps_total", 0) == 0) total2 += m.count;
    }
    EXPECT_EQ(total2, total);
  }
}

// ---- Prometheus exposition hygiene -----------------------------------------

TEST(PrometheusHygiene, SanitizeMetricName) {
  EXPECT_EQ(obs::sanitize_metric_name("netqre_ok_total"), "netqre_ok_total");
  // Invalid characters collapse to '_'.
  EXPECT_EQ(obs::sanitize_metric_name("foo.bar-baz/qux"), "foo_bar_baz_qux");
  // A leading digit is illegal in the exposition grammar.
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  // Colons are legal in metric names (recording-rule convention).
  EXPECT_EQ(obs::sanitize_metric_name("job:latency:p99"), "job:latency:p99");
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");
}

TEST(PrometheusHygiene, EscapeLabelValue) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::escape_label_value("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusHygiene, LabeledNameBuildsEscapedSeries) {
  EXPECT_EQ(obs::labeled_name("netqre_x_total", {{"shard", "3"}}),
            "netqre_x_total{shard=\"3\"}");
  // Label keys are sanitized; values are escaped, not sanitized.
  EXPECT_EQ(obs::labeled_name("m", {{"bad-key", "v\"q\""}}),
            "m{bad_key=\"v\\\"q\\\"\"}");
  EXPECT_EQ(obs::labeled_name("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=\"1\",b=\"2\"}");
}

TEST(PrometheusHygiene, ExpositionEscapesAndStaysStable) {
  if (!kEnabled) GTEST_SKIP() << "no registry bookkeeping in no-op build";
  auto& reg = obs::registry();
  reg.counter(obs::labeled_name("netqre_test_esc_total",
                                {{"q", "he said \"hi\"\nback\\slash"}}))
      .inc(5);
  const auto snap = obs::registry().snapshot();
  const std::string text = snap.to_prometheus();
  // The label value survives with exposition escapes, on one line.
  EXPECT_NE(
      text.find(
          "netqre_test_esc_total{q=\"he said \\\"hi\\\"\\nback\\\\slash\"} 5"),
      std::string::npos);
  // Rendering the same snapshot twice is byte-identical, and a fresh
  // snapshot with no metric changes renders identically too (stable
  // ordering: no map-iteration or hash nondeterminism leaks into the text).
  EXPECT_EQ(text, snap.to_prometheus());
  EXPECT_EQ(text, obs::registry().snapshot().to_prometheus());
  // Sorted by name: every # TYPE header introduces a name >= its
  // predecessor (snapshot order is asserted sorted elsewhere; this pins the
  // exposition to that order).
  std::vector<std::string> names;
  size_t pos = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    pos += 7;
    names.push_back(text.substr(pos, text.find(' ', pos) - pos));
  }
  ASSERT_FALSE(names.empty());
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LE(names[i - 1], names[i]);
  }
}

// ---- flight recorder -------------------------------------------------------

TEST(TraceRecorder, RecordSnapshotAndClear) {
  auto& tr = obs::tracer();
  tr.clear();
  if (!kEnabled) {
    tr.record(obs::TraceKind::Mark, 1, 2);
    const auto snap = tr.snapshot();
    EXPECT_TRUE(snap.events.empty());
    EXPECT_TRUE(snap.threads.empty());
    EXPECT_EQ(snap.dropped, 0u);
    return;
  }
  tr.set_thread_name("obs-test");
  tr.record(obs::TraceKind::Mark, 1, 10);
  tr.record(obs::TraceKind::BatchBegin, 2, 0);
  tr.record(obs::TraceKind::BatchEnd, 2, 999);
  const auto snap = tr.snapshot();
  ASSERT_GE(snap.events.size(), 3u);
  // Events come back in timestamp order.
  for (size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].ts_ns, snap.events[i].ts_ns);
  }
  // Our three events are present, in order, on a named thread.
  std::vector<obs::TraceEvent> mine;
  for (const auto& e : snap.events) {
    if (e.kind == obs::TraceKind::Mark && e.a == 1 && e.b == 10) {
      mine.push_back(e);
    }
  }
  ASSERT_EQ(mine.size(), 1u);
  bool named = false;
  for (const auto& t : snap.threads) {
    if (t.tid == mine[0].tid) named = t.name == "obs-test";
  }
  EXPECT_TRUE(named);

  tr.clear();
  EXPECT_TRUE(tr.snapshot().events.empty());
}

TEST(TraceRecorder, RingOverwriteKeepsNewestAndCountsDropped) {
  if (!kEnabled) GTEST_SKIP() << "no rings in no-op build";
  auto& tr = obs::tracer();
  tr.clear();
  // A private thread gets a fresh ring with a small capacity, overfills it
  // 4x, and the snapshot holds only the newest `cap` events.
  tr.set_ring_capacity(64);
  std::thread([&] {
    tr.set_thread_name("overflow-test");
    for (uint64_t i = 0; i < 256; ++i) {
      tr.record(obs::TraceKind::Mark, i, 7777);
    }
  }).join();
  tr.set_ring_capacity(obs::TraceRecorder::kDefaultRingEvents);

  const auto snap = tr.snapshot();
  std::vector<uint64_t> seen;
  for (const auto& e : snap.events) {
    if (e.kind == obs::TraceKind::Mark && e.b == 7777) seen.push_back(e.a);
  }
  ASSERT_EQ(seen.size(), 64u);
  // The survivors are exactly the newest 64, still in order.
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 256 - 64 + i);
  }
  EXPECT_GE(snap.dropped, 256u - 64u);
  tr.clear();
}

TEST(TraceRecorder, DisableStopsRecording) {
  if (!kEnabled) GTEST_SKIP() << "recorder always off in no-op build";
  auto& tr = obs::tracer();
  tr.clear();
  tr.set_enabled(false);
  tr.record(obs::TraceKind::Mark, 42, 4242);
  tr.set_enabled(true);
  for (const auto& e : tr.snapshot().events) {
    EXPECT_FALSE(e.kind == obs::TraceKind::Mark && e.b == 4242);
  }
}

TEST(TraceRecorder, ChromeJsonShape) {
  auto& tr = obs::tracer();
  tr.clear();
  if (kEnabled) {
    tr.record(obs::TraceKind::BatchBegin, 128, 0);
    tr.record(obs::TraceKind::BatchEnd, 128, 50'000);
    tr.record(obs::TraceKind::BackpressureWait, 0, 1'000'000);
    tr.record(obs::TraceKind::ActionFire, 1, 0);
  }
  const std::string json = tr.snapshot().to_chrome_json("unit test");
  // Always a valid document, even when empty.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // batch slice
    EXPECT_NE(json.find("\"backpressure_wait\""), std::string::npos);
    EXPECT_NE(json.find("\"action_fire\""), std::string::npos);
    EXPECT_NE(json.find("\"reason\":\"unit test\""), std::string::npos);
    // The text exporter mentions the same events.
    const std::string text = tr.snapshot().to_text();
    EXPECT_NE(text.find("action_fire"), std::string::npos);
  }
  tr.clear();
}

// ---- parallel engine queue telemetry ---------------------------------------

TEST(ParallelTelemetry, ShardQueueGaugesAndBackpressureHistogram) {
  obs::registry().reset();
  obs::tracer().clear();
  const auto trace = small_backbone();
  const int workers = 2;
  {
    core::ParallelEngine par(
        apps::compile_app("heavy_hitter.nqre", "hh").query, workers);
    par.feed(trace);
    par.finish();
    EXPECT_EQ(par.packets(), trace.size());
  }
  const auto snap = obs::registry().snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(snap.metrics.empty());
    return;
  }
  // Every shard published its queue-depth gauge and packet counter, and the
  // per-shard packet counters account for the whole trace.
  uint64_t shard_packets = 0;
  for (int i = 0; i < workers; ++i) {
    const std::string label = std::to_string(i);
    const auto* depth = snap.find(obs::labeled_name(
        "netqre_parallel_shard_queue_depth", {{"shard", label}}));
    ASSERT_NE(depth, nullptr) << "missing gauge for shard " << i;
    EXPECT_GE(depth->peak, 1);  // at least one batch was ever queued
    const auto* pkts = snap.find(obs::labeled_name(
        "netqre_parallel_shard_packets_total", {{"shard", label}}));
    ASSERT_NE(pkts, nullptr);
    shard_packets += pkts->count;
  }
  EXPECT_EQ(shard_packets, trace.size());
  // The backpressure-wait histogram exists (waits may be zero on a fast
  // drain; the count only grows when the dispatcher actually blocked).
  const auto* waits = snap.find("netqre_parallel_backpressure_wait_ns");
  ASSERT_NE(waits, nullptr);
  // The shard workers left enqueue/dequeue breadcrumbs in the recorder.
  const auto trace_snap = obs::tracer().snapshot();
  bool saw_queue_event = false;
  for (const auto& e : trace_snap.events) {
    if (e.kind == obs::TraceKind::ShardEnqueue ||
        e.kind == obs::TraceKind::ShardDequeue) {
      saw_queue_event = true;
      break;
    }
  }
  EXPECT_TRUE(saw_queue_event);
  obs::tracer().clear();
}

// ---- tolerant pcap ---------------------------------------------------------

TEST(PcapTolerant, TruncatedFileStopsAtLastWholeRecord) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "netqre_trunc.pcap";
  std::vector<net::Packet> packets;
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.src_ip = 0x0a000001;
    p.dst_ip = 0x0a000002;
    p.src_port = 1000 + i;
    p.dst_port = 80;
    p.proto = net::Proto::Tcp;
    p.ts = i * 0.001;
    p.payload.assign(64, 'x');
    packets.push_back(p);
  }
  net::write_all(path.string(), packets);
  // Cut the last record short.
  fs::resize_file(path, fs::file_size(path) - 20);

  // Strict mode throws mid-file.
  {
    net::PcapReader strict(path.string());
    EXPECT_THROW(
        {
          while (strict.next()) {
          }
        },
        std::runtime_error);
  }

  // Tolerant mode delivers every whole record, then stops cleanly.
  obs::registry().reset();
  net::PcapOptions opt;
  opt.tolerant = true;
  net::PcapReader reader(path.string(), opt);
  size_t whole = 0;
  while (reader.next()) ++whole;
  EXPECT_EQ(whole, packets.size() - 1);
  EXPECT_EQ(reader.truncated_records(), 1u);
  // A drained reader stays at EOF.
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.truncated_records(), 1u);

  if (kEnabled) {
    const auto snap = obs::registry().snapshot();
    const auto* truncated = snap.find("netqre_pcap_truncated_records_total");
    ASSERT_NE(truncated, nullptr);
    EXPECT_EQ(truncated->count, 1u);
    const auto* records = snap.find("netqre_pcap_records_total");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->count, packets.size() - 1);
  }

  // read_all in tolerant mode returns the decodable prefix.
  net::PacketBatch recovered;
  net::read_all(path.string(), recovered, opt);
  EXPECT_EQ(recovered.size(), packets.size() - 1);
  fs::remove(path);
}

}  // namespace
}  // namespace netqre
