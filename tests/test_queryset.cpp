// Multi-tenant QuerySet runtime (DESIGN.md §7): per-query results must be
// bit-identical to a standalone Engine on the same trace in both tiers,
// loads/unloads must join and leave at batch boundaries without touching
// the other tenants, the shared atom pool must actually deduplicate, and a
// quota breach must stay confined to the breaching query.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/queryset.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::CompiledQuery;
using core::Engine;
using core::EngineTier;
using core::ParallelQuerySet;
using core::QuerySet;
using core::ResultSample;

// Clears NETQRE_FORCE_TIER for tests that assert the Auto tier decision
// (the CI tier-matrix runs the whole suite under a forced tier), restoring
// it on exit — the same guard test_spec_tier.cpp uses.
class ScopedTierEnv {
 public:
  ScopedTierEnv() {
    if (const char* v = ::getenv("NETQRE_FORCE_TIER")) saved_ = v;
    ::unsetenv("NETQRE_FORCE_TIER");
  }
  ~ScopedTierEnv() {
    if (saved_.empty()) {
      ::unsetenv("NETQRE_FORCE_TIER");
    } else {
      ::setenv("NETQRE_FORCE_TIER", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

std::vector<net::Packet> workload(uint64_t n_packets) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = n_packets;
  cfg.n_flows = static_cast<uint32_t>(std::max<uint64_t>(64, n_packets / 20));
  return trafficgen::backbone_trace(cfg);
}

CompiledQuery compile(const char* file, const char* main) {
  return apps::compile_app(file, main).query;
}

// key -> value map of a snapshot, for order-insensitive comparison.
std::map<std::string, double> as_map(
    const std::vector<ResultSample>& samples) {
  std::map<std::string, double> out;
  for (const auto& s : samples) out[s.key] = s.value;
  return out;
}

std::map<std::string, double> engine_results(const CompiledQuery& q,
                                             EngineTier tier,
                                             std::span<const net::Packet>
                                                 trace) {
  Engine engine(q, tier);
  engine.on_batch(trace);
  std::vector<ResultSample> out;
  engine.snapshot_results(out);
  return as_map(out);
}

std::map<std::string, double> set_results(const QuerySet& set,
                                          std::string_view name) {
  std::vector<ResultSample> out;
  set.snapshot_results(name, out);
  return as_map(out);
}

TEST(QuerySet, MatchesStandaloneEngineBothTiers) {
  ScopedTierEnv tier_env;
  const auto trace = workload(20'000);
  // One query per tier family: hh specializes under the certificate gate,
  // syn_flood stays interpreted.
  const auto hh = compile("heavy_hitter.nqre", "hh");
  const auto syn = compile("syn_flood.nqre", "syn_flood");

  for (const EngineTier tier :
       {EngineTier::Interpreted, EngineTier::Auto}) {
    QuerySet set;
    QuerySet::LoadOptions opt;
    opt.tier = tier;
    ASSERT_TRUE(set.load("hh", hh, opt));
    ASSERT_TRUE(set.load("syn", syn, opt));
    set.on_batch(trace);

    EXPECT_EQ(set_results(set, "hh"), engine_results(hh, tier, trace));
    EXPECT_EQ(set_results(set, "syn"), engine_results(syn, tier, trace));
    EXPECT_EQ(set.packets(), trace.size());
  }

  // The two tiers agree with each other through the set as well.
  QuerySet interp, compiled;
  QuerySet::LoadOptions force_interp;
  force_interp.tier = EngineTier::Interpreted;
  ASSERT_TRUE(interp.load("hh", hh, force_interp));
  ASSERT_TRUE(compiled.load("hh", hh));
  interp.on_batch(trace);
  compiled.on_batch(trace);
  ASSERT_EQ(compiled.status("hh")->tier, "specialized");
  EXPECT_EQ(set_results(interp, "hh"), set_results(compiled, "hh"));
}

TEST(QuerySet, RejectsDuplicateNamesAndUnloadsCleanly) {
  QuerySet set;
  ASSERT_TRUE(set.load("hh", compile("heavy_hitter.nqre", "hh")));
  EXPECT_FALSE(set.load("hh", compile("super_spreader.nqre", "ss")));
  EXPECT_TRUE(set.contains("hh"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.unload("hh"));
  EXPECT_FALSE(set.unload("hh"));
  EXPECT_FALSE(set.contains("hh"));
  EXPECT_EQ(set.size(), 0u);
}

TEST(QuerySet, AtomPoolDeduplicatesAcrossQueries) {
  // email_keywords and dns_tunnel both specialize with non-Param atoms
  // (payload / parsed-field predicates).
  ScopedTierEnv tier_env;
  QuerySet set;
  ASSERT_TRUE(set.load("a", compile("email_keywords.nqre", "keyword_pkts")));
  const size_t pool_one = set.atom_pool_size();
  const size_t refs_one = set.atom_refs();
  ASSERT_GT(pool_one, 0u);

  // The same query under a second name adds references but no atoms.
  ASSERT_TRUE(set.load("b", compile("email_keywords.nqre", "keyword_pkts")));
  EXPECT_EQ(set.atom_pool_size(), pool_one);
  EXPECT_EQ(set.atom_refs(), 2 * refs_one);

  // A different query grows the pool by at most its own atom count.
  ASSERT_TRUE(set.load("c", compile("dns_tunnel.nqre", "dns_long_queries")));
  EXPECT_GE(set.atom_refs(), set.atom_pool_size());

  // Pool shrinks back when the queries leave.
  set.unload("b");
  set.unload("c");
  EXPECT_EQ(set.atom_pool_size(), pool_one);
  EXPECT_EQ(set.atom_refs(), refs_one);
}

TEST(QuerySet, CpuShareAttributionSumsToOneMillion) {
  ScopedTierEnv tier_env;
  QuerySet set;

  // A lone query owns the whole set's work.
  ASSERT_TRUE(set.load("hh", compile("heavy_hitter.nqre", "hh")));
  ASSERT_TRUE(set.status("hh").has_value());
  EXPECT_EQ(set.status("hh")->cpu_share_ppm, 1'000'000u);

  // Shares re-split on every roster change and stay a partition of the
  // whole (ppm rounding allows a hair of slack around 1e6).
  ASSERT_TRUE(set.load("syn", compile("syn_flood.nqre", "syn_flood")));
  ASSERT_TRUE(set.load("ss", compile("super_spreader.nqre", "ss")));
  uint64_t total = 0;
  for (const char* name : {"hh", "syn", "ss"}) {
    const auto st = set.status(name);
    ASSERT_TRUE(st.has_value()) << name;
    EXPECT_GT(st->cpu_share_ppm, 0u) << name;
    total += st->cpu_share_ppm;
  }
  EXPECT_NEAR(static_cast<double>(total), 1e6, 3.0);

  // The interpreted tier is costed heavier than a pooled compiled query:
  // syn_flood stays interpreted while hh specializes.
  ASSERT_EQ(set.status("syn")->tier, "interpreted");
  ASSERT_EQ(set.status("hh")->tier, "specialized");
  EXPECT_GT(set.status("syn")->cpu_share_ppm, set.status("hh")->cpu_share_ppm);

  set.unload("syn");
  set.unload("ss");
  EXPECT_EQ(set.status("hh")->cpu_share_ppm, 1'000'000u);
}

TEST(QuerySet, MidStreamLoadStartsBlankAndUnloadLeavesOthersUntouched) {
  const auto trace = workload(20'000);
  const auto half = trace.size() / 2;
  const std::span<const net::Packet> first(trace.data(), half);
  const std::span<const net::Packet> second(trace.data() + half,
                                            trace.size() - half);
  const auto hh = compile("heavy_hitter.nqre", "hh");
  const auto ss = compile("super_spreader.nqre", "ss");

  QuerySet set;
  ASSERT_TRUE(set.load("hh", hh));
  set.on_batch(first);
  // ss joins mid-stream: it must see only the second half.
  ASSERT_TRUE(set.load("ss", ss));
  set.on_batch(second);

  EXPECT_EQ(set_results(set, "hh"),
            engine_results(hh, EngineTier::Auto, trace));
  EXPECT_EQ(set_results(set, "ss"),
            engine_results(ss, EngineTier::Auto, second));

  // Unloading ss must not disturb hh's state.
  const auto hh_before = set_results(set, "hh");
  ASSERT_TRUE(set.unload("ss"));
  EXPECT_EQ(set_results(set, "hh"), hh_before);
  EXPECT_THROW((void)set.eval("ss"), std::runtime_error);
}

TEST(QuerySet, QuotaEvictionIsConfinedToTheBreachingQuery) {
  // Enough packets for several quota checks (every kQuotaCheckEvery).
  ScopedTierEnv tier_env;
  const auto trace = workload(60'000);
  const auto hh = compile("heavy_hitter.nqre", "hh");
  const auto ss = compile("super_spreader.nqre", "ss");

  QuerySet set;
  QuerySet::LoadOptions tight;
  tight.state_quota_bytes = 16 * 1024;
  ASSERT_TRUE(set.load("tight", hh, tight));
  ASSERT_TRUE(set.load("roomy", ss));
  set.on_batch(trace);
  set.sample_state_metrics();

  const auto tight_st = *set.status("tight");
  const auto roomy_st = *set.status("roomy");
  ASSERT_EQ(tight_st.tier, "specialized");

  // The tight query breached and evicted; after the final enforcement its
  // state is back under budget.
  EXPECT_GT(tight_st.evicted_keys, 0u);
  EXPECT_LE(tight_st.state_bytes, tight_st.quota_bytes);

  // The roomy query lost nothing: no evictions, and its results are
  // bit-identical to a standalone engine over the same trace.
  EXPECT_EQ(roomy_st.evicted_keys, 0u);
  EXPECT_EQ(roomy_st.quota_resets, 0u);
  EXPECT_EQ(set_results(set, "roomy"),
            engine_results(ss, EngineTier::Auto, trace));
}

TEST(QuerySet, InterpretedTierQuotaResetsState) {
  const auto trace = workload(40'000);
  QuerySet set;
  QuerySet::LoadOptions opt;
  opt.tier = EngineTier::Interpreted;
  opt.state_quota_bytes = 8 * 1024;
  ASSERT_TRUE(set.load("hh", compile("heavy_hitter.nqre", "hh"), opt));
  set.on_batch(trace);
  set.sample_state_metrics();

  const auto st = *set.status("hh");
  EXPECT_EQ(st.tier, "interpreted");
  EXPECT_GT(st.quota_resets, 0u);
  EXPECT_EQ(st.evicted_keys, 0u);
  EXPECT_LE(st.state_bytes, st.quota_bytes);
}

TEST(ParallelQuerySet, MergedSnapshotMatchesSingleSet) {
  const auto trace = workload(20'000);
  const auto hh = compile("heavy_hitter.nqre", "hh");
  const auto ss = compile("super_spreader.nqre", "ss");

  QuerySet single;
  ASSERT_TRUE(single.load("hh", hh));
  ASSERT_TRUE(single.load("ss", ss));
  single.on_batch(trace);

  ParallelQuerySet par(4);
  ASSERT_TRUE(par.load("hh", hh));
  ASSERT_TRUE(par.load("ss", ss));
  EXPECT_FALSE(par.load("hh", hh));
  par.feed(trace);
  par.finish();
  EXPECT_EQ(par.packets(), trace.size());

  std::vector<std::pair<std::string, std::vector<ResultSample>>> merged;
  par.snapshot_all_async([&](auto rounds) { merged = std::move(rounds); });
  ASSERT_EQ(merged.size(), 2u);
  for (const auto& [name, samples] : merged) {
    std::vector<ResultSample> want;
    single.snapshot_results(name, want);
    EXPECT_EQ(as_map(samples), as_map(want)) << "query " << name;
  }

  // Merged status: packet counts sum to one trace per query, tiers agree
  // with the single set.
  for (const auto& st : par.status()) {
    EXPECT_EQ(st.packets, trace.size()) << st.name;
    EXPECT_EQ(st.tier, single.status(st.name)->tier);
  }
}

}  // namespace
}  // namespace netqre
