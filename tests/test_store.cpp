// Tests for the time-series result store (src/store): downsampling
// invariants (a tier-1 point is the *exact* aggregate of the tier-0
// samples it covers), key-budget eviction, range queries over the HTTP
// surface, the NETQRE-STREAM push protocol, and the engine result-snapshot
// hooks the sampler is built on.
//
// Everything here must hold in both telemetry builds: the store's data
// path never depends on obs::kEnabled, only its self-telemetry does.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "core/parallel.hpp"
#include "obs/http_export.hpp"
#include "store/series_store.hpp"
#include "store/stream.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using store::RangeQuery;
using store::RangeResult;
using store::Sample;
using store::SeriesStore;
using store::StoreConfig;
using store::TierPointAt;

constexpr uint64_t kBase = 1'700'000'000ull * 1'000'000'000ull;

uint64_t at(uint64_t round) { return kBase + round * 1'000'000'000ull; }

// A small geometry so rotations and ring wraps happen within a few dozen
// rounds: tier1 folds 5 raw samples, tier2 folds 2 tier1 points.
StoreConfig small_config() {
  StoreConfig cfg;
  cfg.tier0_points = 20;
  cfg.tier1_every = 5;
  cfg.tier1_points = 8;
  cfg.tier2_every = 2;
  cfg.tier2_points = 4;
  cfg.max_keys = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: the API promises every response
// is a *valid JSON document*, so the tests parse, not pattern-match.

struct JsonValidator {
  std::string_view s;
  size_t i = 0;

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i == s.size();
  }

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) return false;
    i += lit.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    return eat('"');
  }
  bool number() {
    const size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && (std::isdigit(s[i]) || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
                            s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
};

bool valid_json(std::string_view doc) {
  JsonValidator v{doc};
  return v.parse();
}

// One-shot HTTP over a raw socket (mirrors what curl sends).
std::string http_request(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

std::string http_get(uint16_t port, const std::string& path) {
  return http_request(port,
                      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

int status_of(const std::string& response) {
  const size_t sp = response.find(' ');
  return sp == std::string::npos ? -1
                                 : std::atoi(response.c_str() + sp + 1);
}

std::string body_of(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

// ---------------------------------------------------------------- tiers

TEST(SeriesStore, Tier1PointIsExactAggregateOfCoveredTier0Samples) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // 10 rounds: two complete tier-1 windows of 5 samples each.
  for (uint64_t r = 0; r < 10; ++r) {
    store.ingest(ctx, at(r), {{"k", static_cast<double>(r * r)}});
  }
  const auto t0 = store.tier_points("q", "k", 0);
  const auto t1 = store.tier_points("q", "k", 1);
  ASSERT_EQ(t0.size(), 10u);
  ASSERT_EQ(t1.size(), 2u);

  for (size_t w = 0; w < 2; ++w) {
    double mn = INFINITY, mx = -INFINITY, sum = 0;
    uint32_t count = 0;
    for (size_t j = w * 5; j < w * 5 + 5; ++j) {
      const double v = t0[j].point.sum;  // count==1 points: sum == value
      ASSERT_EQ(t0[j].point.count, 1u);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
      ++count;
    }
    EXPECT_EQ(t1[w].point.min, mn);
    EXPECT_EQ(t1[w].point.max, mx);
    EXPECT_EQ(t1[w].point.sum, sum);
    EXPECT_EQ(t1[w].point.count, count);
    // The window is stamped with its last covered sample's time.
    EXPECT_EQ(t1[w].t_s, t0[w * 5 + 4].t_s);
  }
}

TEST(SeriesStore, Tier2PointIsExactMergeOfCoveredTier1Points) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // 10 rounds = 2 tier1 points = 1 tier2 point.
  for (uint64_t r = 0; r < 10; ++r) {
    store.ingest(ctx, at(r), {{"k", static_cast<double>(100 - r)}});
  }
  const auto t1 = store.tier_points("q", "k", 1);
  const auto t2 = store.tier_points("q", "k", 2);
  ASSERT_EQ(t1.size(), 2u);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t2[0].point.min, std::min(t1[0].point.min, t1[1].point.min));
  EXPECT_EQ(t2[0].point.max, std::max(t1[0].point.max, t1[1].point.max));
  EXPECT_EQ(t2[0].point.sum, t1[0].point.sum + t1[1].point.sum);
  EXPECT_EQ(t2[0].point.count, t1[0].point.count + t1[1].point.count);
}

TEST(SeriesStore, GapsAreExcludedFromAggregates) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // "k" is present only in rounds 0 and 3 of the first window.
  for (uint64_t r = 0; r < 5; ++r) {
    std::vector<Sample> round;
    if (r == 0) round.push_back({"k", 10.0});
    if (r == 3) round.push_back({"k", 30.0});
    round.push_back({"other", 1.0});  // keeps the round non-empty
    store.ingest(ctx, at(r), round);
  }
  const auto t1 = store.tier_points("q", "k", 1);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].point.count, 2u);  // gaps do not count
  EXPECT_EQ(t1[0].point.sum, 40.0);
  EXPECT_EQ(t1[0].point.min, 10.0);
  EXPECT_EQ(t1[0].point.max, 30.0);
  EXPECT_EQ(t1[0].point.avg(), 20.0);
}

TEST(SeriesStore, SamplesBeforeAKeyExistedAreNotCounted) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // "late" first appears in round 3; rounds 0-2 predate it entirely and
  // must not read stale ring slots.
  for (uint64_t r = 0; r < 5; ++r) {
    std::vector<Sample> round{{"early", 1.0}};
    if (r >= 3) round.push_back({"late", 5.0});
    store.ingest(ctx, at(r), round);
  }
  const auto t1 = store.tier_points("q", "late", 1);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].point.count, 2u);
  EXPECT_EQ(t1[0].point.sum, 10.0);
}

// ------------------------------------------------------------- eviction

TEST(SeriesStore, EvictionRespectsKeyBudgetAndPicksStalestKey) {
  SeriesStore store(small_config());  // max_keys = 4
  const auto ctx = store.context("q");
  // Round 0: four keys fill the budget.
  store.ingest(ctx, at(0),
               {{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  // Rounds 1-2: everyone but "b" keeps reporting — "b" goes stalest.
  store.ingest(ctx, at(1), {{"a", 2}, {"c", 2}, {"d", 2}});
  store.ingest(ctx, at(2), {{"a", 3}, {"c", 3}, {"d", 3}});
  EXPECT_EQ(store.keys("q"), 4u);
  EXPECT_EQ(store.evicted_keys(), 0u);

  // Round 3 introduces "e": the budget forces one eviction, and the victim
  // must be "b".
  store.ingest(ctx, at(3), {{"a", 4}, {"c", 4}, {"d", 4}, {"e", 4}});
  EXPECT_EQ(store.keys("q"), 4u);
  EXPECT_EQ(store.evicted_keys(), 1u);
  EXPECT_TRUE(store.tier_points("q", "b", 0).empty());
  EXPECT_FALSE(store.tier_points("q", "e", 0).empty());
}

TEST(SeriesStore, CardinalityBlowupIsBoundedByBudget) {
  StoreConfig cfg = small_config();
  cfg.max_keys = 8;
  SeriesStore store(cfg);
  const auto ctx = store.context("q");
  for (uint64_t r = 0; r < 20; ++r) {
    // Every round brings 4 brand-new keys — a key scan.
    std::vector<Sample> round;
    for (int k = 0; k < 4; ++k) {
      round.push_back({"scan-" + std::to_string(r * 4 + k), 1.0});
    }
    store.ingest(ctx, at(r), round);
  }
  EXPECT_EQ(store.keys("q"), 8u);
  EXPECT_EQ(store.evicted_keys(), 20u * 4u - 8u);
  // Resident memory stays bounded once the budget is hit (rings grow
  // lazily, so allow one slot's worth of growth across surviving keys).
  const size_t bytes = store.resident_bytes();
  store.ingest(ctx, at(20), {{"one-more", 1.0}});
  EXPECT_LE(store.resident_bytes(), bytes + 4096);
}

// --------------------------------------------------------- range queries

TEST(SeriesStore, RangeQueryWindowAndDimensionsAreStable) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  for (uint64_t r = 0; r < 8; ++r) {
    store.ingest(ctx, at(r),
                 {{"zeta", static_cast<double>(r)},
                  {"alpha", static_cast<double>(10 * r)}});
  }
  RangeQuery q;
  q.after_s = -3;  // relative to the latest sample: rounds 4..7
  q.before_s = 0;
  RangeResult out;
  ASSERT_TRUE(store.query("q", q, out));
  EXPECT_EQ(out.tier, 0);
  // Dimensions in lexicographic order regardless of insertion order.
  ASSERT_EQ(out.dimensions.size(), 2u);
  EXPECT_EQ(out.dimensions[0], "alpha");
  EXPECT_EQ(out.dimensions[1], "zeta");
  ASSERT_EQ(out.rows.size(), 4u);
  EXPECT_EQ(out.rows.front().t_s, static_cast<int64_t>(at(4) / 1'000'000'000ull));
  EXPECT_EQ(out.rows.back().t_s, static_cast<int64_t>(at(7) / 1'000'000'000ull));
  EXPECT_EQ(out.rows.back().values[0], 70.0);  // alpha at round 7
  EXPECT_EQ(out.rows.back().values[1], 7.0);   // zeta at round 7

  // Dimension filter: unknown names drop out, duplicates collapse.
  q.dimensions = {"zeta", "nope", "zeta"};
  ASSERT_TRUE(store.query("q", q, out));
  ASSERT_EQ(out.dimensions.size(), 1u);
  EXPECT_EQ(out.dimensions[0], "zeta");
  ASSERT_EQ(out.rows.size(), 4u);
  EXPECT_EQ(out.rows.back().values[0], 7.0);
}

TEST(SeriesStore, RangeQueryGroupsDownToRequestedPoints) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  for (uint64_t r = 0; r < 8; ++r) {
    store.ingest(ctx, at(r), {{"k", static_cast<double>(r)}});
  }
  RangeQuery q;
  q.after_s = -100;
  q.points = 2;  // 8 raw rows -> 2 groups of 4
  RangeResult out;
  ASSERT_TRUE(store.query("q", q, out));
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].values[0], (0.0 + 1 + 2 + 3) / 4);
  EXPECT_EQ(out.rows[1].values[0], (4.0 + 5 + 6 + 7) / 4);
  // Group time = its last row's time (windows stamp their end).
  EXPECT_EQ(out.rows[1].t_s, static_cast<int64_t>(at(7) / 1'000'000'000ull));
}

TEST(SeriesStore, WideWindowFallsBackToFinestAvailableHistory) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  for (uint64_t r = 0; r < 3; ++r) {
    store.ingest(ctx, at(r), {{"k", 1.0}});
  }
  // An hour-wide window against 3 s of history must answer with the raw
  // samples, not an empty coarse tier.
  RangeQuery q;
  q.after_s = -3600;
  RangeResult out;
  ASSERT_TRUE(store.query("q", q, out));
  EXPECT_EQ(out.tier, 0);
  EXPECT_EQ(out.rows.size(), 3u);
}

TEST(SeriesStore, LongWindowIsAnsweredByAHigherTier) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // 30 rounds with tier0 capacity 20: raw history starts at round 10, so
  // a query reaching back to round 0 must climb tiers.
  for (uint64_t r = 0; r < 30; ++r) {
    store.ingest(ctx, at(r), {{"k", static_cast<double>(r)}});
  }
  RangeQuery q;
  q.after_s = static_cast<int64_t>(at(0) / 1'000'000'000ull);
  q.before_s = static_cast<int64_t>(at(29) / 1'000'000'000ull);
  RangeResult out;
  ASSERT_TRUE(store.query("q", q, out));
  EXPECT_GT(out.tier, 0);
  EXPECT_FALSE(out.rows.empty());
  ASSERT_TRUE(store.query("nosuch", q, out) == false);
}

TEST(SeriesStore, RangeResultJsonIsValidAndOrdered) {
  SeriesStore store(small_config());
  const auto ctx = store.context("q");
  // One gap (null) and a non-integral value exercise both emitters.
  store.ingest(ctx, at(0), {{"b", 1.5}});
  store.ingest(ctx, at(1), {{"a", 2.0}, {"b", 3.0}});
  RangeQuery q;
  q.after_s = -100;
  RangeResult out;
  ASSERT_TRUE(store.query("q", q, out));
  const std::string doc = out.to_json();
  EXPECT_TRUE(valid_json(doc)) << doc;
  // Stable order: "a" before "b" in both name lists.
  EXPECT_NE(doc.find("\"dimension_names\":[\"a\",\"b\"]"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"labels\":[\"time\",\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(doc.find("null"), std::string::npos);  // a's gap in round 0
  EXPECT_TRUE(valid_json(store.contexts_json()));
}

// ------------------------------------------------------- the HTTP surface

TEST(StoreHttp, DataAndContextsEndpointsServeValidJson) {
  SeriesStore store(small_config());
  const auto ctx = store.context("hh");
  for (uint64_t r = 0; r < 6; ++r) {
    store.ingest(ctx, at(r),
                 {{"10.0.0.1", static_cast<double>(r)}, {"10.0.0.2", 1.0}});
  }
  obs::HttpServer srv;
  store::register_store_endpoints(srv, store);
  srv.start(0);

  auto resp = http_get(srv.port(), "/api/v1/contexts");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_TRUE(valid_json(body_of(resp))) << body_of(resp);
  EXPECT_NE(body_of(resp).find("\"hh\""), std::string::npos);

  resp = http_get(srv.port(),
                  "/api/v1/data?context=hh&after=-100&points=3&"
                  "dimensions=10.0.0.1,10.0.0.2");
  EXPECT_EQ(status_of(resp), 200);
  const std::string doc = body_of(resp);
  EXPECT_TRUE(valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"10.0.0.1\""), std::string::npos);

  // Same query twice must serialize identically (stable ordering).
  const auto again = http_get(srv.port(),
                              "/api/v1/data?context=hh&after=-100&points=3&"
                              "dimensions=10.0.0.1,10.0.0.2");
  EXPECT_EQ(body_of(again), doc);

  resp = http_get(srv.port(), "/api/v1/data?context=unknown");
  EXPECT_EQ(status_of(resp), 404);
  EXPECT_TRUE(valid_json(body_of(resp)));
  resp = http_get(srv.port(), "/api/v1/data");
  EXPECT_EQ(status_of(resp), 400);
  srv.stop();
}

TEST(StoreHttp, UrlDecodeHandlesEscapesAndPlus) {
  EXPECT_EQ(store::url_decode("a%2Cb+c"), "a,b c");
  EXPECT_EQ(store::url_decode("plain"), "plain");
  EXPECT_EQ(store::url_decode("%zz"), "%zz");  // malformed escape passes through
}

TEST(HttpRobustness, OversizedRequestHeadGets413) {
  obs::HttpServer srv;
  srv.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("ok");
  });
  srv.start(0);
  // A request line beyond kMaxHeadBytes with no terminator.
  std::string raw = "GET /" + std::string(obs::HttpServer::kMaxHeadBytes, 'a');
  const auto resp = http_request(srv.port(), raw + "\r\n\r\n");
  EXPECT_EQ(status_of(resp), 413);
  srv.stop();
}

TEST(HttpRobustness, SilentClientGets408) {
  obs::HttpServer srv;
  srv.set_read_timeout_ms(100);
  srv.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("ok");
  });
  srv.start(0);
  // Connect, send half a request, go silent.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string partial = "GET /x HTTP/1.1\r\n";
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  std::string out;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  EXPECT_EQ(status_of(out), 408);
  srv.stop();
}

// --------------------------------------------------- the stream protocol

TEST(Stream, RenderAndApplyRoundTrip) {
  SeriesStore store(small_config());
  const std::vector<Sample> round{{"10.0.0.1", 42.0}, {"10.0.0.2", 17.5}};
  const std::string body = store::render_push("edge-1", "hh", at(0), round);
  const auto res = store::apply_push(store, body);
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_EQ(res.rounds, 1u);
  // Series land under "<source>/<context>".
  const auto pts = store.tier_points("edge-1/hh", "10.0.0.1", 0);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].point.sum, 42.0);
  EXPECT_EQ(store.tier_points("edge-1/hh", "10.0.0.2", 0)[0].point.sum, 17.5);
}

TEST(Stream, MultiRoundBodyAndKeysWithSpaces) {
  SeriesStore store(small_config());
  std::string body = "NETQRE-STREAM v1\nSOURCE e\nCONTEXT c\n";
  body += "BEGIN " + std::to_string(at(0)) + "\nSET a key 1\nEND\n";
  body += "BEGIN " + std::to_string(at(1)) + "\nSET a key 2\nEND\n";
  const auto res = store::apply_push(store, body);
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_EQ(res.rounds, 2u);
  const auto pts = store.tier_points("e/c", "a key", 0);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].point.sum, 2.0);
}

TEST(Stream, MalformedBodiesAreRejected) {
  SeriesStore store(small_config());
  EXPECT_FALSE(store::apply_push(store, "hello\n").error.empty());
  EXPECT_FALSE(
      store::apply_push(store, "NETQRE-STREAM v1\nBEGIN 1\nEND\n").error.empty());
  EXPECT_FALSE(store::apply_push(store,
                                 "NETQRE-STREAM v1\nSOURCE e\nCONTEXT c\n"
                                 "SET k 1\n")
                   .error.empty());
  EXPECT_FALSE(store::apply_push(store,
                                 "NETQRE-STREAM v1\nSOURCE e\nCONTEXT c\n"
                                 "BEGIN 1\nSET k notanumber\nEND\n")
                   .error.empty());
  // A truncated body reports the rounds that did land.
  const auto res = store::apply_push(
      store, "NETQRE-STREAM v1\nSOURCE e\nCONTEXT c\nBEGIN " +
                 std::to_string(at(0)) + "\nSET k 1\nEND\nBEGIN " +
                 std::to_string(at(1)) + "\nSET k 2\n");
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(res.rounds, 1u);
}

TEST(Stream, ClientPushesRoundsToParentStore) {
  // In-process parent: a store behind the push endpoint.
  SeriesStore parent(small_config());
  obs::HttpServer srv;
  store::register_store_endpoints(srv, parent);
  srv.start(0);

  store::StreamClient::Config ccfg;
  ccfg.port = srv.port();
  ccfg.source = "edge-t";
  store::StreamClient client(ccfg);
  for (uint64_t r = 0; r < 5; ++r) {
    client.push("hh", at(r), {{"k", static_cast<double>(r)}});
  }
  client.stop();  // drains the queue
  EXPECT_EQ(client.rounds_sent(), 5u);
  EXPECT_EQ(client.push_failures(), 0u);
  const auto pts = parent.tier_points("edge-t/hh", "k", 0);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts[4].point.sum, 4.0);

  // The parent serves range queries over the streamed series.
  const auto resp =
      http_get(srv.port(), "/api/v1/data?context=edge-t%2Fhh&after=-100");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_TRUE(valid_json(body_of(resp)));
  srv.stop();
}

TEST(Stream, DeadParentNeverBlocksAndCountsFailures) {
  store::StreamClient::Config ccfg;
  ccfg.port = 1;  // nothing listens there
  ccfg.io_timeout_ms = 100;
  ccfg.max_queued = 2;
  store::StreamClient client(ccfg);
  for (uint64_t r = 0; r < 10; ++r) {
    client.push("hh", at(r), {{"k", 1.0}});  // must not block
  }
  client.stop();
  EXPECT_EQ(client.rounds_sent(), 0u);
  EXPECT_GT(client.push_failures(), 0u);
}

// ----------------------------------------------- engine snapshot hooks

core::CompiledQuery heavy_hitter_query() {
  static const auto app = apps::compile_app("heavy_hitter.nqre", "hh");
  return app.query;
}

std::vector<net::Packet> small_trace() {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 5000;
  cfg.n_flows = 200;
  return trafficgen::backbone_trace(cfg);
}

TEST(Snapshot, EngineSnapshotMatchesEnumerate) {
  core::Engine engine(heavy_hitter_query());
  engine.on_stream(small_trace());

  std::vector<core::ResultSample> samples;
  engine.snapshot_results(samples);
  ASSERT_FALSE(samples.empty());

  std::map<std::string, double> expected;
  engine.enumerate([&](const std::vector<core::Value>& key,
                       const core::Value& v) {
    if (!v.defined()) return;
    std::string name;
    for (size_t i = 0; i < key.size(); ++i) {
      if (i) name += ',';
      name += key[i].to_string();
    }
    expected[name] = v.as_double();
  });
  ASSERT_EQ(samples.size(), expected.size());
  for (const auto& s : samples) {
    const auto it = expected.find(s.key);
    ASSERT_NE(it, expected.end()) << s.key;
    EXPECT_EQ(it->second, s.value);
  }
}

TEST(Snapshot, ParallelSnapshotAfterFinishMatchesEnumerateAll) {
  core::ParallelEngine parallel(heavy_hitter_query(), 3);
  const auto trace = small_trace();
  parallel.feed(trace);
  parallel.finish();

  std::map<std::string, double> expected;
  parallel.enumerate_all([&](const std::vector<core::Value>& key,
                             const core::Value& v) {
    if (!v.defined()) return;
    std::string name;
    for (size_t i = 0; i < key.size(); ++i) {
      if (i) name += ',';
      name += key[i].to_string();
    }
    expected[name] += v.as_double();
  });

  std::vector<core::ResultSample> merged;
  parallel.snapshot_results_async(
      [&](std::vector<core::ResultSample> out) { merged = std::move(out); });
  // Post-finish the callback is synchronous.
  ASSERT_EQ(merged.size(), expected.size());
  for (const auto& s : merged) {
    const auto it = expected.find(s.key);
    ASSERT_NE(it, expected.end()) << s.key;
    EXPECT_EQ(it->second, s.value);
  }
}

TEST(Snapshot, ParallelSnapshotMidStreamCompletesWithoutRace) {
  core::ParallelEngine parallel(heavy_hitter_query(), 3);
  const auto trace = small_trace();

  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  size_t last_size = 0;
  // Interleave feeds and async snapshots: each visit runs on the shard's
  // own worker, so the engine is never observed while another thread
  // mutates it.
  for (int round = 0; round < 4; ++round) {
    parallel.feed(trace);
    parallel.snapshot_results_async([&](std::vector<core::ResultSample> out) {
      std::lock_guard lock(mu);
      ++completed;
      last_size = out.size();
      cv.notify_one();
    });
  }
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return completed == 4; });
  }
  parallel.finish();
  EXPECT_GT(last_size, 0u);
}

// End-to-end in one process: engine results -> client -> parent store.
TEST(Stream, EdgeRoundsAggregateUnderPerSourceContexts) {
  StoreConfig pcfg = small_config();
  pcfg.max_keys = 1024;  // the engine round carries a full flow table
  SeriesStore parent(pcfg);
  obs::HttpServer srv;
  store::register_store_endpoints(srv, parent);
  srv.start(0);

  core::Engine engine(heavy_hitter_query());
  engine.on_stream(small_trace());
  std::vector<core::ResultSample> results;
  engine.snapshot_results(results);
  ASSERT_FALSE(results.empty());
  std::vector<Sample> round;
  for (const auto& r : results) round.push_back({r.key, r.value});

  // Two edges push the same round under different identities.
  for (const char* source : {"edge-1", "edge-2"}) {
    const int status = store::http_post_once(
        "127.0.0.1", srv.port(), "/api/v1/push",
        store::render_push(source, "hh", at(0), round), 1000);
    EXPECT_EQ(status, 200);
  }
  EXPECT_EQ(parent.keys("edge-1/hh"), round.size());
  EXPECT_EQ(parent.keys("edge-2/hh"), round.size());
  srv.stop();
}

}  // namespace
}  // namespace netqre
