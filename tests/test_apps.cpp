// End-to-end behavior of the Table-1 applications on their natural
// workloads: DNS attacks, email keywords, connection lifetime, new
// connections, traffic change, slowloris, and the full VoIP usage program.
#include <gtest/gtest.h>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/window.hpp"
#include "net/ipv4.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;

TEST(Apps, DnsTunnelDetectorFlagsTheTunnelClient) {
  trafficgen::DnsConfig cfg;
  auto trace = trafficgen::dns_trace(cfg);
  Engine eng(apps::compile_app("dns_tunnel.nqre", "dns_long_queries").query);
  for (const auto& p : trace) eng.on_packet(p);

  EXPECT_EQ(eng.eval_at({Value::ip(cfg.tunnel_client)}).as_int(),
            static_cast<int64_t>(cfg.tunnel_queries));
  // Normal clients issue only short names.
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    if (static_cast<uint32_t>(key[0].as_int()) != cfg.tunnel_client) {
      EXPECT_EQ(v.as_int(), 0);
    }
  });
}

TEST(Apps, DnsAmplificationByteRatio) {
  trafficgen::DnsConfig cfg;
  auto trace = trafficgen::dns_trace(cfg);
  Engine resp(apps::compile_app("dns_amplification.nqre",
                                "dns_resp_bytes").query);
  Engine req(apps::compile_app("dns_amplification.nqre",
                               "dns_req_bytes").query);
  for (const auto& p : trace) {
    resp.on_packet(p);
    req.on_packet(p);
  }
  const Value key = Value::ip(cfg.victim_ip);
  EXPECT_GT(resp.eval_at({key}).as_int(), 10 * req.eval_at({key}).as_int());
}

TEST(Apps, EmailKeywordCountsOnlyTheSpammer) {
  trafficgen::SmtpConfig cfg;
  auto trace = trafficgen::smtp_trace(cfg);
  Engine eng(apps::compile_app("email_keywords.nqre", "keyword_pkts").query);
  for (const auto& p : trace) eng.on_packet(p);
  EXPECT_EQ(eng.eval_at({Value::ip(cfg.spammer_ip)}).as_int(),
            static_cast<int64_t>(cfg.keyword_mails));

  Engine total(apps::compile_app("email_keywords.nqre",
                                 "total_keyword_pkts").query);
  for (const auto& p : trace) total.on_packet(p);
  EXPECT_EQ(total.eval().as_int(), static_cast<int64_t>(cfg.keyword_mails));
}

TEST(Apps, LifetimeMeasuresFirstToLastPacket) {
  auto prog = apps::compile_app("lifetime.nqre", "lifetime");
  Engine eng(prog.query);
  auto mk = [](double ts) {
    net::Packet p;
    p.ts = ts;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.src_port = 10;
    p.dst_port = 20;
    p.proto = net::Proto::Tcp;
    p.tcp_flags = net::TcpFlags::kAck;
    p.wire_len = 100;
    return p;
  };
  eng.on_packet(mk(10.0));
  eng.on_packet(mk(11.5));
  eng.on_packet(mk(14.25));
  const net::Conn c = net::Conn::of(mk(0)).canonical();
  EXPECT_NEAR(eng.eval_at({Value::conn(c)}).as_double(), 4.25, 1e-9);
}

TEST(Apps, NewConnsCountsSynOpeners) {
  auto prog = apps::compile_app("new_conns.nqre", "new_conns");
  Engine eng(prog.query);
  trafficgen::SynFloodConfig cfg;
  cfg.benign_handshakes = 12;
  cfg.attack_handshakes = 0;
  for (const auto& p : trafficgen::syn_flood_trace(cfg)) eng.on_packet(p);
  EXPECT_EQ(eng.eval().as_int(), 12);
}

TEST(Apps, TrafficChangeWindowedByteCounts) {
  auto prog = apps::compile_app("traffic_change.nqre", "recent_src_bytes");
  ASSERT_EQ(prog.window, lang::CompiledProgram::Window::Recent);
  core::SlidingWindow win(prog.query, prog.window_seconds, 4);
  // Source 7 sends 1000 B/s; after 20 s a recent-5s query sees ~5000 B.
  for (int t = 0; t < 20; ++t) {
    net::Packet p;
    p.ts = t;
    p.src_ip = 7;
    p.dst_ip = 2;
    p.proto = net::Proto::Udp;
    p.wire_len = 1000;
    win.on_packet(p);
  }
  const double v = win.eval_at({Value::ip(7)}).as_double();
  EXPECT_GE(v, 2000.0);   // at least half a window covered
  EXPECT_LE(v, 6000.0);   // never more than the full window
}

TEST(Apps, SlowlorisAvgRateFlagsAttack) {
  auto prog = apps::compile_app("slowloris.nqre", "avg_rate");
  trafficgen::SlowlorisConfig clean_cfg;
  clean_cfg.normal_conns = 40;
  clean_cfg.slow_conns = 0;
  trafficgen::SlowlorisConfig attack_cfg;
  attack_cfg.normal_conns = 40;
  attack_cfg.slow_conns = 120;

  Engine clean(prog.query), attacked(prog.query);
  for (const auto& p : trafficgen::slowloris_trace(clean_cfg)) {
    clean.on_packet(p);
  }
  for (const auto& p : trafficgen::slowloris_trace(attack_cfg)) {
    attacked.on_packet(p);
  }
  ASSERT_TRUE(clean.eval().defined());
  ASSERT_TRUE(attacked.eval().defined());
  EXPECT_LT(attacked.eval().as_double(), clean.eval().as_double() / 2);
}

TEST(Apps, VoipUsageCountsOnlyCallPhaseBytes) {
  // 2 users, 4 calls, 10 media packets each: usage must equal the media
  // bytes only (SIP signalling excluded), split evenly between users.
  trafficgen::SipConfig cfg;
  cfg.n_users = 2;
  cfg.n_calls = 4;
  cfg.media_pkts_per_call = 10;
  cfg.media_payload = 160;
  auto trace = trafficgen::sip_trace(cfg);

  uint64_t media_bytes = 0;
  for (const auto& p : trace) {
    if (p.is_udp() && p.src_port != 5060) media_bytes += p.wire_len;
  }

  Engine eng(apps::compile_app("voip_usage.nqre", "usage_per_user").query);
  for (const auto& p : trace) eng.on_packet(p);

  uint64_t reported = 0;
  int users = 0;
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    reported += static_cast<uint64_t>(v.as_int());
    ++users;
    EXPECT_EQ(key[0].as_str().substr(0, 8), "sip:user");
  });
  EXPECT_EQ(users, 2);
  EXPECT_EQ(reported, media_bytes);
}

TEST(Apps, VoipCallsPerUser) {
  trafficgen::SipConfig cfg;
  cfg.n_users = 4;
  cfg.n_calls = 10;  // users 0,1 get 3 calls; users 2,3 get 2
  cfg.media_pkts_per_call = 2;
  auto trace = trafficgen::sip_trace(cfg);
  Engine eng(apps::compile_app("voip_count.nqre", "calls_per_user").query);
  for (const auto& p : trace) eng.on_packet(p);
  EXPECT_EQ(eng.eval_at({Value::str(trafficgen::sip_user_name(0))}).as_int(),
            3);
  EXPECT_EQ(eng.eval_at({Value::str(trafficgen::sip_user_name(3))}).as_int(),
            2);
}

TEST(Apps, SslRenegotiationFlagsTheAttacker) {
  trafficgen::TlsRenegConfig cfg;
  cfg.normal_conns = 20;
  cfg.attacker_renegs = 40;
  auto trace = trafficgen::tls_reneg_trace(cfg);
  Engine eng(apps::compile_app("ssl_renegotiation.nqre",
                               "tls_handshakes").query);
  for (const auto& p : trace) eng.on_packet(p);
  int attackers = 0;
  eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
    const net::Conn& c = key[0].as_conn();
    const bool is_attacker =
        c.src_ip == cfg.attacker_ip || c.dst_ip == cfg.attacker_ip;
    if (v.as_int() > 10) {
      ++attackers;
      EXPECT_TRUE(is_attacker);
      EXPECT_EQ(v.as_int(), 41);  // initial handshake + 40 renegotiations
    } else {
      EXPECT_EQ(v.as_int(), 1);  // normal connections handshake once
    }
  });
  EXPECT_EQ(attackers, 1);
}

TEST(Apps, SslRenegotiationAlertFires) {
  trafficgen::TlsRenegConfig cfg;
  cfg.normal_conns = 5;
  cfg.attacker_renegs = 30;
  auto trace = trafficgen::tls_reneg_trace(cfg);
  Engine eng(apps::compile_app("ssl_renegotiation.nqre",
                               "ssl_reneg_alert").query);
  std::vector<std::string> fired;
  eng.set_action_handler([&](const Value& v, const net::Packet&) {
    fired.push_back(v.to_string());
  });
  for (const auto& p : trace) eng.on_packet(p);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].find("10.0.0.112"), std::string::npos);
}

TEST(Apps, DupAcksPerConnection) {
  auto prog = apps::compile_app("dup_acks.nqre", "dup_acks");
  Engine eng(prog.query);
  auto ackpkt = [](uint32_t ackno, uint16_t sport = 10) {
    net::Packet p;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.src_port = sport;
    p.dst_port = 80;
    p.proto = net::Proto::Tcp;
    p.tcp_flags = net::TcpFlags::kAck;
    p.ack_no = ackno;
    p.wire_len = 52;
    return p;
  };
  // Three duplicate groups on ackno 100 (x3), 200 (x2), 300 (x1).
  for (int i = 0; i < 3; ++i) eng.on_packet(ackpkt(100));
  for (int i = 0; i < 2; ++i) eng.on_packet(ackpkt(200));
  eng.on_packet(ackpkt(300));
  EXPECT_EQ(eng.eval().as_int(), 2);  // acknos 100 and 200 are duplicated
}

TEST(Apps, CompletedFlowsIgnoresRstOnlyFlows) {
  auto prog = apps::compile_app("completed_flows.nqre", "completed_flows");
  Engine eng(prog.query);
  auto tcp = [](uint16_t sport, uint8_t flags) {
    net::Packet p;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.src_port = sport;
    p.dst_port = 80;
    p.proto = net::Proto::Tcp;
    p.tcp_flags = flags;
    p.wire_len = 60;
    return p;
  };
  // Flow A: full SYN..FIN.  Flow B: SYN then RST (never completes).
  eng.on_packet(tcp(1000, net::TcpFlags::kSyn));
  eng.on_packet(tcp(1001, net::TcpFlags::kSyn));
  eng.on_packet(tcp(1001, net::TcpFlags::kRst));
  eng.on_packet(tcp(1000, net::TcpFlags::kFin | net::TcpFlags::kAck));
  EXPECT_EQ(eng.eval().as_int(), 1);
}

}  // namespace
}  // namespace netqre
