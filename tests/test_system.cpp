// System-level tests: time windows, parallel runtime, the SDN emulation
// substrate, codegen (generate + g++ compile + run + compare), and action
// dispatch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "apps/queries.hpp"
#include "core/codegen.hpp"
#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "core/window.hpp"
#include "net/pcap.hpp"
#include "sdn/experiments.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre {
namespace {

using core::Engine;
using core::Value;

net::Packet pkt_at(double ts, uint32_t src = 1, uint32_t len = 100) {
  net::Packet p;
  p.ts = ts;
  p.src_ip = src;
  p.dst_ip = 2;
  p.proto = net::Proto::Tcp;
  p.tcp_flags = net::TcpFlags::kAck;
  p.wire_len = len;
  return p;
}

// --------------------------------------------------------------- windows

TEST(Window, TumblingResetsAtBoundaries) {
  core::QueryBuilder b;
  core::TumblingWindow win(b.finish(b.count()), 5.0);
  std::vector<std::pair<double, int64_t>> closed;
  win.set_window_handler([&](double start, const Engine& e) {
    closed.emplace_back(start, e.eval().as_int());
  });
  for (double t : {0.5, 1.0, 4.9, 5.1, 6.0, 12.0}) win.on_packet(pkt_at(t));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_DOUBLE_EQ(closed[0].first, 0.0);
  EXPECT_EQ(closed[0].second, 3);
  EXPECT_DOUBLE_EQ(closed[1].first, 5.0);
  EXPECT_EQ(closed[1].second, 2);
  EXPECT_EQ(win.engine().eval().as_int(), 1);  // the t=12 packet
}

TEST(Window, TumblingSkipsEmptyWindows) {
  core::QueryBuilder b;
  core::TumblingWindow win(b.finish(b.count()), 1.0);
  int windows = 0;
  win.set_window_handler([&](double, const Engine&) { ++windows; });
  win.on_packet(pkt_at(0.1));
  win.on_packet(pkt_at(10.1));
  EXPECT_EQ(windows, 10);  // empty windows still close in order
}

TEST(Window, SlidingCoversRecentHistory) {
  core::QueryBuilder b;
  core::SlidingWindow win(b.finish(b.count()), 4.0, 4);
  // One packet per second for 12 seconds.
  for (int t = 0; t < 12; ++t) win.on_packet(pkt_at(t + 0.5));
  // Exact recent(4) would be 4; panes answer within [window/2, window].
  const int64_t v = win.eval().as_int();
  EXPECT_GE(v, 2);
  EXPECT_LE(v, 4);
}

// -------------------------------------------------------------- parallel

TEST(Parallel, ShardedAggregateMatchesSingleEngine) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 6'000;
  cfg.n_flows = 200;
  auto trace = trafficgen::backbone_trace(cfg);
  auto query = apps::compile_app("heavy_hitter.nqre", "hh").query;

  Engine single(query);
  for (const auto& p : trace) single.on_packet(p);

  core::ParallelEngine par(query, 4);
  par.feed(trace);
  par.finish();

  EXPECT_EQ(par.aggregate(core::AggOp::Sum).as_int(), single.eval().as_int());
  EXPECT_EQ(par.packets(), trace.size());

  // Per-flow values agree shard by shard.
  size_t flows = 0;
  par.enumerate_all([&](const std::vector<Value>& key, const Value& v) {
    EXPECT_EQ(single.eval_at(key).as_int(), v.as_int());
    ++flows;
  });
  EXPECT_GT(flows, 100u);
}

TEST(Parallel, BusyTimeIsTracked) {
  auto query = apps::compile_app("count_traffic.nqre", "total_bytes").query;
  core::ParallelEngine par(query, 2);
  std::vector<net::Packet> trace;
  for (int i = 0; i < 20'000; ++i) trace.push_back(pkt_at(i * 1e-5, i % 7));
  par.feed(trace);
  par.finish();
  EXPECT_GT(par.total_busy_seconds(), 0.0);
  EXPECT_GE(par.total_busy_seconds(), par.max_busy_seconds());
}

// ------------------------------------------------------------------- sdn

TEST(Sdn, TokenBucketLimitsLinkRate) {
  sdn::Switch sw(2, 10.0);  // 10 Mbps to server 2
  // Offer 50 Mbps for one second.
  auto flood = trafficgen::iperf_trace(1, 2, 0.0, 1.0, 50.0);
  uint64_t delivered = 0;
  for (const auto& p : flood) {
    if (sw.process(p)) ++delivered;
  }
  EXPECT_GT(sw.dropped_by_queue(), 0u);
  // Delivered ~10 Mbps worth.
  const double mbps = delivered * 1454 * 8.0 / 1e6;
  EXPECT_NEAR(mbps, 10.0, 2.0);
}

TEST(Sdn, DropRulesTakeEffectAtInstallTime) {
  sdn::Switch sw(2, 100.0);
  sw.install_drop(1, 0.5);
  EXPECT_TRUE(sw.process(pkt_at(0.4)));
  EXPECT_FALSE(sw.process(pkt_at(0.6)));
  EXPECT_EQ(sw.dropped_by_rule(), 1u);
}

TEST(Sdn, MirrorSeesEverythingIncludingDropped) {
  sdn::Switch sw(2, 100.0);
  sw.install_drop(1, 0.0);
  int mirrored = 0;
  sw.set_mirror([&](const net::Packet&, double) { ++mirrored; });
  sw.process(pkt_at(1.0));
  sw.process(pkt_at(2.0));
  EXPECT_EQ(mirrored, 2);
  EXPECT_EQ(sw.dropped_by_rule(), 2u);
}

TEST(Sdn, SynFloodExperimentBlocksAttacker) {
  auto r = sdn::run_synflood_experiment();
  ASSERT_GE(r.detect_time, 7.0);  // attack starts at t=7
  EXPECT_LT(r.detect_time, 13.0);
  EXPECT_GT(r.dropped_by_rule, 1'000u);
  // C1's bandwidth survives throughout.
  const auto& c1 = r.series.mbps.at("10.0.0.2");
  EXPECT_NEAR(c1.back(), 1.0, 0.3);
}

TEST(Sdn, VoipExperimentEnforcesQuota) {
  auto r = sdn::run_voip_experiment();
  ASSERT_GE(r.detect_time, 0.0);
  // 18.75 MB at 5 Mbps is ~30 s.
  EXPECT_NEAR(r.detect_time, 30.0, 5.0);
  const auto& c2 = r.series.mbps.at("10.0.0.99");
  EXPECT_NEAR(c2[10], 5.0, 1.0);  // during the call
  // The caller's series ends at the block (per-bucket records stop once
  // every packet is dropped).
  EXPECT_LT(static_cast<double>(c2.size()) * r.series.interval,
            r.block_time + 1.0);
}

// --------------------------------------------------------------- actions

TEST(Actions, EngineFiresOncePerDistinctAlert) {
  auto prog = lang::compile_source(
      "sfun action watch = (count > 2) ? alert(last.srcip);", "watch");
  Engine eng(prog.query);
  std::vector<std::string> fired;
  eng.set_action_handler([&](const Value& v, const net::Packet&) {
    fired.push_back(v.to_string());
  });
  for (int i = 0; i < 5; ++i) eng.on_packet(pkt_at(i, 9));
  ASSERT_EQ(fired.size(), 1u);  // same alert text fires once
  EXPECT_EQ(fired[0], "alert(0.0.0.9)");
}

TEST(Actions, PerValuationAlerts) {
  auto prog = lang::compile_source(
      "sfun action watch(IP x) = "
      "(filter(srcip == x) >> count) > 1 ? alert(x);",
      "watch");
  Engine eng(prog.query);
  std::vector<std::string> fired;
  eng.set_action_handler([&](const Value& v, const net::Packet&) {
    fired.push_back(v.to_string());
  });
  for (int i = 0; i < 3; ++i) {
    eng.on_packet(pkt_at(i, 5));
    eng.on_packet(pkt_at(i, 6));
  }
  ASSERT_EQ(fired.size(), 2u);  // one alert per offending source
}

// --------------------------------------------------------------- codegen

class CodegenTest : public ::testing::Test {
 protected:
  static std::filesystem::path tmp_dir() {
    auto dir = std::filesystem::temp_directory_path() / "netqre_codegen_test";
    std::filesystem::create_directories(dir);
    return dir;
  }
};

TEST_F(CodegenTest, UnsupportedShapesReturnNullopt) {
  // split/iter composites are outside the specializer's shape.
  auto q = apps::compile_app("completed_flows.nqre", "completed_flows").query;
  EXPECT_FALSE(core::generate_cpp(q, "X").has_value());
}

TEST_F(CodegenTest, GeneratedHeavyHitterMatchesEngine) {
  auto query = apps::compile_app("heavy_hitter.nqre", "hh").query;
  auto gen = core::generate_cpp(query, "HH");
  ASSERT_TRUE(gen.has_value());
  EXPECT_NE(gen->source.find("class HH"), std::string::npos);
  EXPECT_NE(gen->source.find("kTrans"), std::string::npos);

  // Full pipeline: write pcap + generated source, compile with g++, run,
  // compare the aggregate with the interpreting engine.
  const auto dir = tmp_dir();
  const auto pcap = dir / "hh.pcap";
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = 8'000;
  cfg.n_flows = 300;
  auto trace = trafficgen::backbone_trace(cfg);
  net::write_all(pcap.string(), trace);

  const auto src = dir / "hh_gen.cpp";
  const auto bin = dir / "hh_gen";
  std::ofstream(src) << core::generate_pcap_main(*gen);
  const std::string compile = "g++ -O1 -std=c++20 " + src.string() + " -o " +
                              bin.string() + " 2>" + (dir / "cc.log").string();
  ASSERT_EQ(std::system(compile.c_str()), 0);

  const auto out_path = dir / "hh.out";
  ASSERT_EQ(std::system(
                (bin.string() + " " + pcap.string() + " > " +
                 out_path.string()).c_str()),
            0);
  long long aggregate = -1;
  size_t packets = 0;
  double secs = 0;
  std::ifstream(out_path) >> aggregate >> packets >> secs;
  EXPECT_EQ(packets, trace.size());

  Engine eng(query);
  // Replay through the same pcap to normalize wire_len handling.
  net::PacketBatch replay;
  net::read_all(pcap.string(), replay);
  for (const auto& p : replay.packets()) eng.on_packet(p);
  EXPECT_EQ(aggregate, eng.eval().as_int());
  std::filesystem::remove_all(dir);
}

TEST_F(CodegenTest, GeneratedSuperSpreaderShape) {
  auto query = apps::compile_app("super_spreader.nqre", "ss").query;
  auto gen = core::generate_cpp(query, "SS");
  ASSERT_TRUE(gen.has_value());
  // Distinct family: the aggregate counts accepting (x, y) entries.
  EXPECT_NE(gen->source.find("kAccept[kv.second.q]"), std::string::npos);
}

TEST_F(CodegenTest, GeneratedEntropyCountersMatchEngine) {
  auto query = apps::compile_app("entropy.nqre", "src_pkts").query;
  auto gen = core::generate_cpp(query, "SrcPkts");
  ASSERT_TRUE(gen.has_value());
  // Structural checks only (the full compile path is covered above).
  EXPECT_NE(gen->source.find("p.src_ip"), std::string::npos);
  EXPECT_NE(gen->source.find("aggregate"), std::string::npos);
}

}  // namespace
}  // namespace netqre
