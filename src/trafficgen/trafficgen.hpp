// Synthetic workload generators — stand-ins for the paper's traces
// (DESIGN.md §3): CAIDA backbone captures [7][2], SIPp VoIP replays [5],
// the authors' SYN-flood generator, Slowloris clients, DNS attack traffic
// and SMTP mail.  All generators are deterministic given a seed.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace netqre::trafficgen {

// ------------------------------------------------------------- backbone

// CAIDA-like backbone mix: heavy-tailed (Zipf) flow popularity, ~888 B mean
// packet size (the paper's trace), TCP-dominated with a UDP fraction,
// monotone timestamps at `pps` packets/second.
struct BackboneConfig {
  uint64_t n_packets = 1'000'000;
  uint32_t n_flows = 20'000;
  double zipf_skew = 1.1;     // flow popularity skew
  double pps = 620'000;       // paper: ~620k packets/sec
  double udp_fraction = 0.15;
  uint64_t seed = 1;
  double start_ts = 1000.0;
};

std::vector<net::Packet> backbone_trace(const BackboneConfig& cfg);

// Streaming variant for memory-conscious benchmarks: deterministic per-index
// packet synthesis without materializing the trace.
class BackboneStream {
 public:
  explicit BackboneStream(const BackboneConfig& cfg);
  [[nodiscard]] uint64_t size() const { return cfg_.n_packets; }
  net::Packet packet(uint64_t index) const;

 private:
  BackboneConfig cfg_;
  std::vector<uint32_t> flow_src_, flow_dst_;
  std::vector<uint16_t> flow_sport_, flow_dport_;
  std::vector<uint8_t> flow_udp_;
  std::vector<double> flow_cdf_;  // Zipf cumulative popularity
};

// -------------------------------------------------------------- attacks

// Benign clients completing TCP handshakes plus an attacker spraying
// SYN/SYN-ACK pairs that never complete (§4.2, §7.3).
struct SynFloodConfig {
  uint32_t benign_handshakes = 200;
  uint32_t attack_handshakes = 2'000;
  uint32_t attacker_ip = 0x0a000063;  // 10.0.0.99
  uint32_t server_ip = 0x0a000001;    // 10.0.0.1
  double start_ts = 0.0;
  double duration = 5.0;
  uint64_t seed = 7;
};

std::vector<net::Packet> syn_flood_trace(const SynFloodConfig& cfg);

// Slowloris (§4.2): normal HTTP connections transfer quickly; attacker
// connections trickle tiny segments for the whole capture.
struct SlowlorisConfig {
  uint32_t normal_conns = 100;
  uint32_t slow_conns = 150;
  uint32_t server_ip = 0x0a000001;
  double duration = 30.0;
  uint64_t seed = 11;
};

std::vector<net::Packet> slowloris_trace(const SlowlorisConfig& cfg);

// SSL/TLS renegotiation attack (§1): normal HTTPS connections perform one
// handshake; the attacker forces repeated renegotiations over a single
// connection to exhaust server CPU.
struct TlsRenegConfig {
  uint32_t normal_conns = 50;
  uint32_t attacker_renegs = 200;  // renegotiations on the attack connection
  uint32_t attacker_ip = 0x0a000070;  // 10.0.0.112
  uint32_t server_ip = 0x0a000001;
  uint64_t seed = 41;
};

std::vector<net::Packet> tls_reneg_trace(const TlsRenegConfig& cfg);

// ----------------------------------------------------------------- VoIP

// SIPp-like call generator: INVITE / 200 OK / ACK over UDP 5060 with real
// SIP headers (Call-ID, From, To), RTP media on a negotiated port pair, BYE
// to tear down.  Matches the phase patterns of the VoIP queries (§4.3).
struct SipConfig {
  uint32_t n_users = 20;
  uint32_t n_calls = 100;          // total calls across users
  uint32_t media_pkts_per_call = 50;
  uint32_t media_payload = 160;    // G.711-ish 20 ms frames
  double call_spacing = 0.05;      // seconds between call setups
  uint64_t seed = 23;
  double start_ts = 0.0;
};

std::vector<net::Packet> sip_trace(const SipConfig& cfg);

// The caller user name of call k, as it appears in the SIP From header.
std::string sip_user_name(uint32_t user_index);

// ------------------------------------------------------------------ DNS

struct DnsConfig {
  uint32_t normal_queries = 500;
  uint32_t tunnel_queries = 100;  // long random subdomains from one host
  uint32_t amplification_pairs = 100;  // small query, large spoofed response
  uint32_t tunnel_client = 0x0a000042;  // 10.0.0.66
  uint32_t victim_ip = 0x0a000007;      // 10.0.0.7
  uint64_t seed = 31;
};

std::vector<net::Packet> dns_trace(const DnsConfig& cfg);

// ----------------------------------------------------------------- SMTP

struct SmtpConfig {
  uint32_t n_mails = 200;
  uint32_t keyword_mails = 40;  // mails carrying the watched keyword
  std::string keyword = "invoice";
  uint32_t spammer_ip = 0x0a000055;  // 10.0.0.85 sends the keyword mails
  uint64_t seed = 37;
};

std::vector<net::Packet> smtp_trace(const SmtpConfig& cfg);

// ------------------------------------------------------------- utilities

// Constant-rate filler traffic between two hosts (iperf-like), for the SDN
// experiments (§7.3).
std::vector<net::Packet> iperf_trace(uint32_t src, uint32_t dst,
                                     double start, double duration,
                                     double mbps, uint16_t dport = 5001);

}  // namespace netqre::trafficgen
