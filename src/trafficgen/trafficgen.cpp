#include "trafficgen/trafficgen.hpp"

#include <algorithm>
#include <cmath>

#include "net/flow.hpp"
#include "net/ipv4.hpp"

namespace netqre::trafficgen {
namespace {

using net::Packet;
using net::Proto;
using net::TcpFlags;

Packet tcp_pkt(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
               uint8_t flags, uint32_t seq, uint32_t ack, uint32_t len,
               double ts) {
  Packet p;
  p.ts = ts;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = Proto::Tcp;
  p.tcp_flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.wire_len = len;
  return p;
}

Packet udp_pkt(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
               std::string payload, double ts) {
  Packet p;
  p.ts = ts;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = Proto::Udp;
  p.wire_len = static_cast<uint32_t>(42 + payload.size());
  p.payload = std::move(payload);
  return p;
}

}  // namespace

// ---------------------------------------------------------------- backbone

BackboneStream::BackboneStream(const BackboneConfig& cfg) : cfg_(cfg) {
  std::mt19937_64 rng(cfg.seed);
  flow_src_.resize(cfg.n_flows);
  flow_dst_.resize(cfg.n_flows);
  flow_sport_.resize(cfg.n_flows);
  flow_dport_.resize(cfg.n_flows);
  flow_udp_.resize(cfg.n_flows);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0b000000, 0xdfffffff);
  std::uniform_int_distribution<uint16_t> port_dist(1024, 65535);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  static constexpr uint16_t kServices[] = {80, 443, 53, 25, 22, 5060};
  for (uint32_t f = 0; f < cfg.n_flows; ++f) {
    flow_src_[f] = ip_dist(rng);
    flow_dst_[f] = ip_dist(rng);
    flow_sport_[f] = port_dist(rng);
    flow_dport_[f] = kServices[rng() % std::size(kServices)];
    flow_udp_[f] = unit(rng) < cfg.udp_fraction ? 1 : 0;
  }
  // Zipf popularity CDF over flows.
  flow_cdf_.resize(cfg.n_flows);
  double total = 0;
  for (uint32_t f = 0; f < cfg.n_flows; ++f) {
    total += 1.0 / std::pow(static_cast<double>(f + 1), cfg.zipf_skew);
    flow_cdf_[f] = total;
  }
  for (auto& v : flow_cdf_) v /= total;
}

Packet BackboneStream::packet(uint64_t index) const {
  // Per-index deterministic randomness: hash of (seed, index).
  const uint64_t h1 = net::mix64(cfg_.seed * 0x9e3779b97f4a7c15ull + index);
  const uint64_t h2 = net::mix64(h1 ^ 0xc2b2ae3d27d4eb4full);
  const double u = static_cast<double>(h1 >> 11) * 0x1.0p-53;

  const auto it = std::lower_bound(flow_cdf_.begin(), flow_cdf_.end(), u);
  const uint32_t f = static_cast<uint32_t>(it - flow_cdf_.begin());

  Packet p;
  p.ts = cfg_.start_ts + static_cast<double>(index) / cfg_.pps;
  p.src_ip = flow_src_[f];
  p.dst_ip = flow_dst_[f];
  p.src_port = flow_sport_[f];
  p.dst_port = flow_dport_[f];
  p.proto = flow_udp_[f] ? Proto::Udp : Proto::Tcp;
  // Bimodal sizes targeting the paper's 888 B mean: 40 B control packets
  // and 1460 B data segments, roughly 40/60.
  const bool small = (h2 & 0xff) < 0x67;  // ~40%
  p.wire_len = small ? 40 : 1454;
  if (p.proto == Proto::Tcp) {
    p.seq = static_cast<uint32_t>(h2 >> 8);
    p.ack_no = static_cast<uint32_t>(h2 >> 20);
    p.tcp_flags = TcpFlags::kAck;
    const uint8_t roll = static_cast<uint8_t>(h2 >> 40);
    if (roll < 8) {
      p.tcp_flags = TcpFlags::kSyn;  // ~3% connection setups
    } else if (roll < 12) {
      p.tcp_flags = TcpFlags::kFin | TcpFlags::kAck;
    }
  }
  return p;
}

std::vector<Packet> backbone_trace(const BackboneConfig& cfg) {
  BackboneStream stream(cfg);
  std::vector<Packet> out;
  out.reserve(cfg.n_packets);
  for (uint64_t i = 0; i < cfg.n_packets; ++i) out.push_back(stream.packet(i));
  return out;
}

// --------------------------------------------------------------- SYN flood

std::vector<Packet> syn_flood_trace(const SynFloodConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0a000002, 0x0a00005f);
  std::uniform_int_distribution<uint32_t> seq_dist;
  std::uniform_int_distribution<uint16_t> port_dist(1024, 65535);

  const uint32_t total = cfg.benign_handshakes + cfg.attack_handshakes;
  const double step = cfg.duration / std::max(1u, total);
  double ts = cfg.start_ts;

  for (uint32_t i = 0; i < cfg.benign_handshakes; ++i) {
    const uint32_t client = ip_dist(rng);
    const uint16_t sport = port_dist(rng);
    const uint32_t cseq = seq_dist(rng);
    const uint32_t sseq = seq_dist(rng);
    out.push_back(tcp_pkt(client, cfg.server_ip, sport, 80, TcpFlags::kSyn,
                          cseq, 0, 60, ts));
    out.push_back(tcp_pkt(cfg.server_ip, client, 80, sport,
                          TcpFlags::kSyn | TcpFlags::kAck, sseq, cseq + 1, 60,
                          ts + 1e-4));
    out.push_back(tcp_pkt(client, cfg.server_ip, sport, 80, TcpFlags::kAck,
                          cseq + 1, sseq + 1, 52, ts + 2e-4));
    ts += step;
  }
  for (uint32_t i = 0; i < cfg.attack_handshakes; ++i) {
    const uint16_t sport = port_dist(rng);
    const uint32_t cseq = seq_dist(rng);
    const uint32_t sseq = seq_dist(rng);
    out.push_back(tcp_pkt(cfg.attacker_ip, cfg.server_ip, sport, 80,
                          TcpFlags::kSyn, cseq, 0, 60, ts));
    out.push_back(tcp_pkt(cfg.server_ip, cfg.attacker_ip, 80, sport,
                          TcpFlags::kSyn | TcpFlags::kAck, sseq, cseq + 1, 60,
                          ts + 1e-4));
    // No completing ACK: the half-open handshake the query counts.
    ts += step;
  }
  std::ranges::sort(out, {}, &Packet::ts);
  return out;
}

// --------------------------------------------------------------- Slowloris

std::vector<Packet> slowloris_trace(const SlowlorisConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0a000100, 0x0a0001ff);
  std::uniform_int_distribution<uint16_t> port_dist(1024, 65535);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  auto connection = [&](bool slow) {
    const uint32_t client = ip_dist(rng);
    const uint16_t sport = port_dist(rng);
    const double t0 = unit(rng) * cfg.duration * 0.2;
    uint32_t seq = static_cast<uint32_t>(rng());
    out.push_back(tcp_pkt(client, cfg.server_ip, sport, 80, TcpFlags::kSyn,
                          seq, 0, 60, t0));
    seq += 1;
    if (slow) {
      // Attacker: a handful of tiny header fragments over the whole window;
      // the connection never finishes.
      const int n = 6 + static_cast<int>(rng() % 4);
      for (int k = 0; k < n; ++k) {
        const double t = t0 + (k + 1) * (cfg.duration * 0.8 / n);
        out.push_back(tcp_pkt(client, cfg.server_ip, sport, 80,
                              TcpFlags::kAck | TcpFlags::kPsh, seq, 1, 60,
                              t));
        seq += 8;
      }
    } else {
      // Normal client: a burst of full-size segments finishing quickly.
      const int n = 20 + static_cast<int>(rng() % 20);
      for (int k = 0; k < n; ++k) {
        const double t = t0 + 1e-3 * (k + 1);
        out.push_back(tcp_pkt(client, cfg.server_ip, sport, 80,
                              TcpFlags::kAck, seq, 1, 1454, t));
        seq += 1402;
      }
      out.push_back(
          tcp_pkt(client, cfg.server_ip, sport, 80,
                  TcpFlags::kFin | TcpFlags::kAck, seq, 1, 52,
                  t0 + 1e-3 * (n + 2)));
    }
  };

  for (uint32_t i = 0; i < cfg.normal_conns; ++i) connection(false);
  for (uint32_t i = 0; i < cfg.slow_conns; ++i) connection(true);
  std::ranges::sort(out, {}, &Packet::ts);
  return out;
}

// --------------------------------------------------------------- TLS reneg

namespace {

std::string tls_client_hello() {
  std::string rec;
  rec += '\x16';              // handshake record
  rec += '\x03';
  rec += '\x03';              // TLS 1.2
  rec += '\x00';
  rec += '\x2a';              // length
  rec += '\x01';              // ClientHello
  rec.append(41, '\x00');     // truncated body
  return rec;
}

std::string tls_app_data(size_t n) {
  std::string rec;
  rec += '\x17';  // application data
  rec += '\x03';
  rec += '\x03';
  rec += static_cast<char>(n >> 8);
  rec += static_cast<char>(n & 0xff);
  rec.append(n, 'x');
  return rec;
}

}  // namespace

std::vector<Packet> tls_reneg_trace(const TlsRenegConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0a000002, 0x0a00005f);
  std::uniform_int_distribution<uint16_t> port_dist(1024, 65535);
  double ts = 0.0;

  auto tls_pkt = [&](uint32_t src, uint16_t sport, std::string payload,
                     uint32_t seq) {
    Packet p = tcp_pkt(src, cfg.server_ip, sport, 443,
                       TcpFlags::kAck | TcpFlags::kPsh, seq, 1,
                       static_cast<uint32_t>(54 + payload.size()), ts);
    p.payload = std::move(payload);
    ts += 0.001;
    return p;
  };

  for (uint32_t c = 0; c < cfg.normal_conns; ++c) {
    const uint32_t client = ip_dist(rng);
    const uint16_t sport = port_dist(rng);
    uint32_t seq = static_cast<uint32_t>(rng());
    out.push_back(tls_pkt(client, sport, tls_client_hello(), seq));
    for (int k = 0; k < 5; ++k) {
      out.push_back(tls_pkt(client, sport, tls_app_data(256), seq += 300));
    }
  }
  // One attacker connection renegotiating over and over.
  const uint16_t asport = port_dist(rng);
  uint32_t aseq = static_cast<uint32_t>(rng());
  for (uint32_t k = 0; k < cfg.attacker_renegs + 1; ++k) {
    out.push_back(tls_pkt(cfg.attacker_ip, asport, tls_client_hello(),
                          aseq += 60));
  }
  return out;
}

// --------------------------------------------------------------------- SIP

std::string sip_user_name(uint32_t user_index) {
  return "sip:user" + std::to_string(user_index) + "@example.com";
}

std::vector<Packet> sip_trace(const SipConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  double ts = cfg.start_ts;

  auto sip_msg = [&](const std::string& first_line, const std::string& from,
                     const std::string& to, const std::string& call_id,
                     const std::string& body = "") {
    std::string msg = first_line + "\r\n";
    msg += "Via: SIP/2.0/UDP proxy.example.com\r\n";
    msg += "From: " + from + "\r\n";
    msg += "To: " + to + "\r\n";
    msg += "Call-ID: " + call_id + "\r\n";
    msg += "CSeq: 1 INVITE\r\n";
    if (!body.empty()) {
      msg += "Content-Type: application/sdp\r\n";
      msg += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    msg += "\r\n" + body;
    return msg;
  };

  for (uint32_t call = 0; call < cfg.n_calls; ++call) {
    const uint32_t user = call % cfg.n_users;
    const uint32_t caller_ip = 0x0a010000 + user;         // 10.1.0.x
    const uint32_t callee_ip = 0x0a020000 + (call % 97);  // 10.2.0.x
    const std::string caller = sip_user_name(user);
    const std::string callee =
        "sip:peer" + std::to_string(call % 97) + "@example.com";
    const std::string call_id =
        "call-" + std::to_string(call) + "-" + std::to_string(rng() % 100000);
    const uint16_t media_port = static_cast<uint16_t>(16384 + (call % 8192) * 2);

    const std::string sdp =
        "v=0\r\no=- 0 0 IN IP4 " + net::format_ip(caller_ip) +
        "\r\nm=audio " + std::to_string(media_port) + " RTP/AVP 0\r\n";

    // init phase: INVITE, 200 OK, ACK.
    out.push_back(udp_pkt(caller_ip, callee_ip, 5060, 5060,
                          sip_msg("INVITE " + callee + " SIP/2.0", caller,
                                  callee, call_id, sdp),
                          ts));
    ts += 0.002;
    out.push_back(udp_pkt(callee_ip, caller_ip, 5060, 5060,
                          sip_msg("SIP/2.0 200 OK", caller, callee, call_id,
                                  sdp),
                          ts));
    ts += 0.002;
    out.push_back(udp_pkt(caller_ip, callee_ip, 5060, 5060,
                          sip_msg("ACK " + callee + " SIP/2.0", caller,
                                  callee, call_id),
                          ts));
    ts += 0.002;

    // call phase: RTP on the negotiated media ports.
    for (uint32_t k = 0; k < cfg.media_pkts_per_call; ++k) {
      const bool forward = (k % 2) == 0;
      std::string rtp(cfg.media_payload, '\0');
      rtp[0] = '\x80';  // RTP v2
      out.push_back(udp_pkt(forward ? caller_ip : callee_ip,
                            forward ? callee_ip : caller_ip, media_port,
                            media_port, std::move(rtp), ts));
      ts += 0.0002;
    }

    // end phase: BYE.
    out.push_back(udp_pkt(caller_ip, callee_ip, 5060, 5060,
                          sip_msg("BYE " + callee + " SIP/2.0", caller,
                                  callee, call_id),
                          ts));
    ts += cfg.call_spacing;
  }
  return out;
}

// --------------------------------------------------------------------- DNS

namespace {

// Minimal DNS wire message with one question.
std::string dns_message(uint16_t id, const std::string& qname, uint16_t qtype,
                        bool response, int answers, size_t pad) {
  std::string m;
  auto put16 = [&](uint16_t v) {
    m += static_cast<char>(v >> 8);
    m += static_cast<char>(v & 0xff);
  };
  put16(id);
  put16(response ? 0x8180 : 0x0100);
  put16(1);                                   // QDCOUNT
  put16(static_cast<uint16_t>(answers));      // ANCOUNT
  put16(0);
  put16(0);
  size_t pos = 0;
  while (pos < qname.size()) {
    size_t dot = qname.find('.', pos);
    if (dot == std::string::npos) dot = qname.size();
    m += static_cast<char>(dot - pos);
    m += qname.substr(pos, dot - pos);
    pos = dot + 1;
  }
  m += '\0';
  put16(qtype);
  put16(1);  // IN
  m.append(pad, 'x');  // fake answer section payload (amplification bulk)
  return m;
}

}  // namespace

std::vector<Packet> dns_trace(const DnsConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0a000002, 0x0a00003f);
  const uint32_t resolver = 0x08080808;
  double ts = 0.0;

  for (uint32_t i = 0; i < cfg.normal_queries; ++i) {
    const uint32_t client = ip_dist(rng);
    const std::string name =
        "host" + std::to_string(rng() % 50) + ".example.com";
    out.push_back(udp_pkt(client, resolver, 40000 + i % 20000, 53,
                          dns_message(i, name, 1, false, 0, 0), ts));
    ts += 0.001;
    out.push_back(udp_pkt(resolver, client, 53, 40000 + i % 20000,
                          dns_message(i, name, 1, true, 1, 60), ts));
    ts += 0.001;
  }
  for (uint32_t i = 0; i < cfg.tunnel_queries; ++i) {
    // Exfiltration: 55+ byte random hex labels under tunnel.example.com.
    std::string label;
    for (int k = 0; k < 56; ++k) label += "0123456789abcdef"[rng() % 16];
    out.push_back(udp_pkt(cfg.tunnel_client, resolver, 41000, 53,
                          dns_message(1000 + i, label + ".t.example.com", 16,
                                      false, 0, 0),
                          ts));
    ts += 0.002;
  }
  for (uint32_t i = 0; i < cfg.amplification_pairs; ++i) {
    // Spoofed small ANY query "from" the victim, huge response to it.
    out.push_back(udp_pkt(cfg.victim_ip, resolver, 42000, 53,
                          dns_message(2000 + i, "big.example.com", 255, false,
                                      0, 0),
                          ts));
    ts += 0.0005;
    out.push_back(udp_pkt(resolver, cfg.victim_ip, 53, 42000,
                          dns_message(2000 + i, "big.example.com", 255, true,
                                      20, 3000),
                          ts));
    ts += 0.0005;
  }
  return out;
}

// -------------------------------------------------------------------- SMTP

std::vector<Packet> smtp_trace(const SmtpConfig& cfg) {
  std::vector<Packet> out;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<uint32_t> ip_dist(0x0a000002, 0x0a00004f);
  const uint32_t mail_server = 0x0a0000fe;
  double ts = 0.0;

  for (uint32_t i = 0; i < cfg.n_mails; ++i) {
    const bool spam = i < cfg.keyword_mails;
    const uint32_t client = spam ? cfg.spammer_ip : ip_dist(rng);
    std::string body = "From: a@b\r\nSubject: hello " + std::to_string(i) +
                       "\r\n\r\nRegular message body number " +
                       std::to_string(rng() % 1000) + ".";
    if (spam) body += " Please find the " + cfg.keyword + " attached.";
    Packet p = tcp_pkt(client, mail_server,
                       static_cast<uint16_t>(2000 + i % 30000), 25,
                       TcpFlags::kAck | TcpFlags::kPsh,
                       static_cast<uint32_t>(rng()), 1,
                       static_cast<uint32_t>(54 + body.size()), ts);
    p.payload = std::move(body);
    out.push_back(std::move(p));
    ts += 0.01;
  }
  return out;
}

// ------------------------------------------------------------------- iperf

std::vector<Packet> iperf_trace(uint32_t src, uint32_t dst, double start,
                                double duration, double mbps,
                                uint16_t dport) {
  std::vector<Packet> out;
  constexpr uint32_t kPktBytes = 1454;
  const double pps = mbps * 1e6 / 8.0 / kPktBytes;
  const auto n = static_cast<uint64_t>(duration * pps);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(tcp_pkt(src, dst, 30000, dport, TcpFlags::kAck,
                          static_cast<uint32_t>(i * 1402), 1, kPktBytes,
                          start + static_cast<double>(i) / pps));
  }
  return out;
}

}  // namespace netqre::trafficgen
