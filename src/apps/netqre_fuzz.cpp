// netqre-fuzz — differential fuzzing harness.
//
// Cross-checks random NetQRE programs and adversarial traces across the
// five evaluation paths (§3 reference semantics, streaming engine, batched
// engine, codegen plan, parallel runtime); disagreements are shrunk to
// minimal repros and saved as replayable corpus files.
//
//     netqre-fuzz --seed 1 --iterations 500 --corpus-dir out/
//     netqre-fuzz --replay tests/corpus
//
// Exit status: 0 when every check agreed, 1 on any mismatch, 2 on usage or
// I/O problems.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/cli.hpp"
#include "fuzz/fuzz.hpp"
#include "netqre.hpp"

namespace {

constexpr const char* kUsage =
    "usage: netqre-fuzz [options]\n"
    "       netqre-fuzz --replay <file.case | dir> [...]\n"
    "\n"
    "Differential fuzzing of the NetQRE runtime: random programs + traces\n"
    "cross-checked across ref_eval / Engine / on_batch / codegen /\n"
    "parallel(1,2,4).\n"
    "\n"
    "options:\n"
    "  --seed N          RNG seed (default 1; campaign is deterministic)\n"
    "  --iterations N    (program, trace) pairs to check (default 500)\n"
    "  --corpus-dir DIR  save minimized repros as DIR/repro-*.case\n"
    "  --replay PATH     replay corpus case(s) instead of fuzzing\n"
    "  --max-seconds S   wall-clock budget for the campaign (0 = none)\n"
    "  --max-stream N    max packets per random trace (default 10)\n"
    "  --no-parallel     skip the parallel-runtime checks\n"
    "  --no-codegen      skip the codegen-plan checks\n"
    "  --json            machine-readable summary on stdout\n"
    "  -h, --help        show this help\n";

struct Options {
  netqre::fuzz::FuzzConfig cfg;
  std::vector<std::string> replay;
  bool json = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  netqre::apps::CliArgs cli(argc, argv, "netqre-fuzz", kUsage);
  while (cli.next()) {
    if (cli.is("--seed")) {
      opt.cfg.seed = cli.value_u64();
    } else if (cli.is("--iterations")) {
      opt.cfg.iterations = cli.value_u64();
    } else if (cli.is("--corpus-dir")) {
      opt.cfg.corpus_dir = cli.value();
    } else if (cli.is("--replay")) {
      opt.replay.push_back(cli.value());
    } else if (cli.is("--max-seconds")) {
      opt.cfg.max_seconds = std::atof(cli.value());
    } else if (cli.is("--max-stream")) {
      opt.cfg.gen.max_stream = std::atoi(cli.value());
      if (opt.cfg.gen.max_stream < 0 || opt.cfg.gen.max_stream > 64) {
        cli.fail("--max-stream out of range (0..64; "
                 "ref_eval is exponential in stream length)");
      }
    } else if (cli.is("--no-parallel")) {
      opt.cfg.oracle.check_parallel = false;
    } else if (cli.is("--no-codegen")) {
      opt.cfg.oracle.check_codegen = false;
    } else if (cli.is("--json")) {
      opt.json = true;
    } else {
      cli.unknown();
    }
  }

  using netqre::obs::JsonWriter;

  // ---- replay mode -------------------------------------------------------
  if (!opt.replay.empty()) {
    std::vector<std::string> lines;
    const int failing =
        netqre::fuzz::replay_corpus(opt.replay, opt.cfg.oracle, lines);
    if (opt.json) {
      JsonWriter json;
      json.begin_object();
      json.key("tool").value("netqre-fuzz");
      json.key("mode").value("replay");
      json.key("cases").begin_array();
      for (const auto& l : lines) json.value(l);
      json.end_array();
      json.key("failing").value(failing);
      json.end_object();
      std::cout << json.str() << '\n';
    } else {
      for (const auto& l : lines) std::cout << l << '\n';
      std::cout << (failing ? "FAIL" : "OK") << " (" << failing
                << " failing case(s))\n";
    }
    return failing ? 1 : 0;
  }

  // ---- campaign mode -----------------------------------------------------
  netqre::fuzz::FuzzSummary sum;
  try {
    sum = netqre::fuzz::run_fuzz(opt.cfg);
  } catch (const std::exception& e) {
    std::cerr << "netqre-fuzz: " << e.what() << '\n';
    return 2;
  }

  if (opt.json) {
    JsonWriter json;
    json.begin_object();
    json.key("tool").value("netqre-fuzz");
    json.key("mode").value("fuzz");
    json.key("seed").value(static_cast<int64_t>(opt.cfg.seed));
    json.key("iterations").value(static_cast<int64_t>(sum.iterations));
    json.key("rejected").value(static_cast<int64_t>(sum.rejected));
    json.key("scope_programs")
        .value(static_cast<int64_t>(sum.scope_programs));
    json.key("mismatches").value(static_cast<int64_t>(sum.mismatches));
    json.key("shrink_steps").value(static_cast<int64_t>(sum.shrink_steps));
    json.key("shrink_attempts")
        .value(static_cast<int64_t>(sum.shrink_attempts));
    json.key("checks_parallel_sharded")
        .value(static_cast<int64_t>(sum.checks_parallel_sharded));
    json.key("checks_codegen")
        .value(static_cast<int64_t>(sum.checks_codegen));
    json.key("elapsed_seconds").value(sum.elapsed_seconds);
    json.key("time_boxed").value(sum.time_boxed);
    json.key("repro_files").begin_array();
    for (const auto& f : sum.repro_files) json.value(f);
    json.end_array();
    json.key("failures").begin_array();
    for (const auto& f : sum.failures) json.value(f);
    json.end_array();
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    std::cout << "netqre-fuzz: seed " << opt.cfg.seed << ", "
              << sum.iterations << " iterations (" << sum.rejected
              << " ambiguous draws discarded), " << sum.scope_programs
              << " parameterized, " << sum.checks_codegen
              << " codegen-checked, " << sum.checks_parallel_sharded
              << " sharded-parallel-checked, " << sum.mismatches
              << " mismatch(es) in " << sum.elapsed_seconds << "s";
    if (sum.time_boxed) std::cout << " [time-boxed]";
    std::cout << '\n';
    for (const auto& f : sum.failures) std::cout << "  " << f << '\n';
    for (const auto& f : sum.repro_files) {
      std::cout << "  minimized repro: " << f << '\n';
    }
  }
  return sum.mismatches ? 1 : 0;
}
