// netqre-fuzz — differential fuzzing harness.
//
// Cross-checks random NetQRE programs and adversarial traces across the
// four evaluation paths (§3 reference semantics, streaming engine, codegen
// plan, parallel runtime); disagreements are shrunk to minimal repros and
// saved as replayable corpus files.
//
//     netqre-fuzz --seed 1 --iterations 500 --corpus-dir out/
//     netqre-fuzz --replay tests/corpus
//
// Exit status: 0 when every check agreed, 1 on any mismatch, 2 on usage or
// I/O problems.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "obs/json.hpp"

namespace {

constexpr const char* kUsage =
    "usage: netqre-fuzz [options]\n"
    "       netqre-fuzz --replay <file.case | dir> [...]\n"
    "\n"
    "Differential fuzzing of the NetQRE runtime: random programs + traces\n"
    "cross-checked across ref_eval / Engine / codegen / parallel(1,2,4).\n"
    "\n"
    "options:\n"
    "  --seed N          RNG seed (default 1; campaign is deterministic)\n"
    "  --iterations N    (program, trace) pairs to check (default 500)\n"
    "  --corpus-dir DIR  save minimized repros as DIR/repro-*.case\n"
    "  --replay PATH     replay corpus case(s) instead of fuzzing\n"
    "  --max-seconds S   wall-clock budget for the campaign (0 = none)\n"
    "  --max-stream N    max packets per random trace (default 10)\n"
    "  --no-parallel     skip the parallel-runtime checks\n"
    "  --no-codegen      skip the codegen-plan checks\n"
    "  --json            machine-readable summary on stdout\n"
    "  -h, --help        show this help\n";

struct Options {
  netqre::fuzz::FuzzConfig cfg;
  std::vector<std::string> replay;
  bool json = false;
};

bool parse_u64(const char* s, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "netqre-fuzz: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--seed") {
      if (!parse_u64(next(), opt.cfg.seed)) {
        std::cerr << "netqre-fuzz: bad --seed\n";
        return 2;
      }
    } else if (arg == "--iterations") {
      if (!parse_u64(next(), opt.cfg.iterations)) {
        std::cerr << "netqre-fuzz: bad --iterations\n";
        return 2;
      }
    } else if (arg == "--corpus-dir") {
      opt.cfg.corpus_dir = next();
    } else if (arg == "--replay") {
      opt.replay.push_back(next());
    } else if (arg == "--max-seconds") {
      opt.cfg.max_seconds = std::atof(next());
    } else if (arg == "--max-stream") {
      opt.cfg.gen.max_stream = std::atoi(next());
      if (opt.cfg.gen.max_stream < 0 || opt.cfg.gen.max_stream > 64) {
        std::cerr << "netqre-fuzz: --max-stream out of range (0..64; "
                     "ref_eval is exponential in stream length)\n";
        return 2;
      }
    } else if (arg == "--no-parallel") {
      opt.cfg.oracle.check_parallel = false;
    } else if (arg == "--no-codegen") {
      opt.cfg.oracle.check_codegen = false;
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      std::cerr << "netqre-fuzz: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  using netqre::obs::JsonWriter;

  // ---- replay mode -------------------------------------------------------
  if (!opt.replay.empty()) {
    std::vector<std::string> lines;
    const int failing =
        netqre::fuzz::replay_corpus(opt.replay, opt.cfg.oracle, lines);
    if (opt.json) {
      JsonWriter json;
      json.begin_object();
      json.key("tool").value("netqre-fuzz");
      json.key("mode").value("replay");
      json.key("cases").begin_array();
      for (const auto& l : lines) json.value(l);
      json.end_array();
      json.key("failing").value(failing);
      json.end_object();
      std::cout << json.str() << '\n';
    } else {
      for (const auto& l : lines) std::cout << l << '\n';
      std::cout << (failing ? "FAIL" : "OK") << " (" << failing
                << " failing case(s))\n";
    }
    return failing ? 1 : 0;
  }

  // ---- campaign mode -----------------------------------------------------
  netqre::fuzz::FuzzSummary sum;
  try {
    sum = netqre::fuzz::run_fuzz(opt.cfg);
  } catch (const std::exception& e) {
    std::cerr << "netqre-fuzz: " << e.what() << '\n';
    return 2;
  }

  if (opt.json) {
    JsonWriter json;
    json.begin_object();
    json.key("tool").value("netqre-fuzz");
    json.key("mode").value("fuzz");
    json.key("seed").value(static_cast<int64_t>(opt.cfg.seed));
    json.key("iterations").value(static_cast<int64_t>(sum.iterations));
    json.key("rejected").value(static_cast<int64_t>(sum.rejected));
    json.key("scope_programs")
        .value(static_cast<int64_t>(sum.scope_programs));
    json.key("mismatches").value(static_cast<int64_t>(sum.mismatches));
    json.key("shrink_steps").value(static_cast<int64_t>(sum.shrink_steps));
    json.key("shrink_attempts")
        .value(static_cast<int64_t>(sum.shrink_attempts));
    json.key("checks_parallel_sharded")
        .value(static_cast<int64_t>(sum.checks_parallel_sharded));
    json.key("checks_codegen")
        .value(static_cast<int64_t>(sum.checks_codegen));
    json.key("elapsed_seconds").value(sum.elapsed_seconds);
    json.key("time_boxed").value(sum.time_boxed);
    json.key("repro_files").begin_array();
    for (const auto& f : sum.repro_files) json.value(f);
    json.end_array();
    json.key("failures").begin_array();
    for (const auto& f : sum.failures) json.value(f);
    json.end_array();
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    std::cout << "netqre-fuzz: seed " << opt.cfg.seed << ", "
              << sum.iterations << " iterations (" << sum.rejected
              << " ambiguous draws discarded), " << sum.scope_programs
              << " parameterized, " << sum.checks_codegen
              << " codegen-checked, " << sum.checks_parallel_sharded
              << " sharded-parallel-checked, " << sum.mismatches
              << " mismatch(es) in " << sum.elapsed_seconds << "s";
    if (sum.time_boxed) std::cout << " [time-boxed]";
    std::cout << '\n';
    for (const auto& f : sum.failures) std::cout << "  " << f << '\n';
    for (const auto& f : sum.repro_files) {
      std::cout << "  minimized repro: " << f << '\n';
    }
  }
  return sum.mismatches ? 1 : 0;
}
