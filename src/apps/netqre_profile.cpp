// netqre-profile — runtime profiling for the shipped NetQRE applications.
//
// Runs any Table-1 query (apps/queries.hpp) over a generated workload or a
// pcap capture and reports what the paper's evaluation plots (§6, Fig. 7–9):
// throughput, sampled per-packet latency percentiles, per-op eval/transition
// counts (top ops by work), and a guarded-state growth timeline.  Output is
// a human-readable report, `--json` for machines, and `--prometheus` for a
// raw metrics-registry dump.
//
// The metrics registry is reset before each query, so the per-query metrics
// block is attributable to that query alone.
//
// Exit status: 0 on success, 1 when any query failed to compile/run, 2 on
// usage or I/O problems.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <fstream>

#include "apps/cli.hpp"
#include "apps/queries.hpp"
#include "netqre.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trafficgen/trafficgen.hpp"

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: netqre-profile [options]\n"
    "\n"
    "Profiles shipped NetQRE queries: per-op eval counts, latency\n"
    "percentiles, throughput and a state-growth timeline.\n"
    "\n"
    "options:\n"
    "  --query FILE[:MAIN]  profile queries/FILE (repeatable; default all)\n"
    "  --list               list shipped queries and exit\n"
    "  --pcap FILE          replay a pcap (tolerant mode) instead of the\n"
    "                       generated per-query workload\n"
    "  --packets N          generated backbone packets (default 50000)\n"
    "  --sample N           state-timeline sampling interval (default 1000)\n"
    "  --top K              ops listed in the human report (default 10)\n"
    "  --json               machine-readable report on stdout\n"
    "  --prometheus         dump the metrics registry after each query\n"
    "  --parallel N         replay through a ParallelEngine with N shard\n"
    "                       workers and report per-shard queue depth and\n"
    "                       backpressure waits (default 0 = single engine)\n"
    "  --trace-out FILE     write the flight-recorder rings as Chrome\n"
    "                       trace JSON (chrome://tracing, Perfetto)\n"
    "  -h, --help           show this help\n";

struct Options {
  std::vector<std::string> queries;  // "file" or "file:main"
  std::string pcap;
  uint64_t packets = 50'000;
  uint64_t sample = 1'000;
  size_t top = 10;
  bool json = false;
  bool prometheus = false;
  int parallel = 0;        // >0: replay through a ParallelEngine
  std::string trace_out;   // Chrome trace JSON output path
};

struct TimelinePoint {
  uint64_t packets = 0;
  uint64_t state_bytes = 0;
};

struct OpRow {
  int id = 0;
  const char* kind = "";
  uint64_t steps = 0;
  uint64_t transitions = 0;
};

struct ShardStat {
  int shard = 0;
  uint64_t packets = 0;
  int64_t queue_depth_peak = 0;
};

struct QueryReport {
  apps::QueryInfo info;
  std::string workload;
  std::string error;  // non-empty when the query failed
  uint64_t packets = 0;
  uint64_t wall_ns = 0;
  std::string result;
  // --parallel mode only: per-shard queue telemetry (satellite of the
  // flight-recorder work; the same signals the TraceGovernor watches).
  std::vector<ShardStat> shards;
  uint64_t bp_waits = 0;        // backpressure-wait histogram count
  double bp_p50 = 0, bp_p99 = 0;
  uint64_t actions_fired = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  uint64_t latency_samples = 0;
  uint64_t state_bytes = 0, state_peak_bytes = 0, guarded_states = 0;
  std::vector<OpRow> ops;                 // sorted by steps, descending
  std::vector<TimelinePoint> timeline;
  std::string metrics_json;               // full registry snapshot
};

// The workload each query is meaningful on (mirrors bench/ and tests).
const std::vector<net::Packet>& workload_for(const std::string& file,
                                             uint64_t n_packets,
                                             std::string& name) {
  if (file == "syn_flood.nqre") {
    name = "synflood";
    static const auto trace = [] {
      trafficgen::SynFloodConfig cfg;
      cfg.benign_handshakes = 2000;
      cfg.attack_handshakes = 6000;
      return trafficgen::syn_flood_trace(cfg);
    }();
    return trace;
  }
  if (file == "slowloris.nqre") {
    name = "slowloris";
    static const auto trace = [] {
      trafficgen::SlowlorisConfig cfg;
      cfg.normal_conns = 300;
      cfg.slow_conns = 450;
      return trafficgen::slowloris_trace(cfg);
    }();
    return trace;
  }
  if (file == "voip_usage.nqre") {
    // The phase-split usage program keys guarded state on four parameters
    // (two Conns, user, call id); keep the SIP trace small so the guard
    // trie stays tractable, as examples/voip_quota does.
    name = "sip_small";
    static const auto trace = [] {
      trafficgen::SipConfig cfg;
      cfg.n_users = 4;
      cfg.n_calls = 12;
      cfg.media_pkts_per_call = 40;
      return trafficgen::sip_trace(cfg);
    }();
    return trace;
  }
  if (file.rfind("voip", 0) == 0) {
    name = "sip";
    static const auto trace = [] {
      trafficgen::SipConfig cfg;
      cfg.n_users = 20;
      cfg.n_calls = 200;
      return trafficgen::sip_trace(cfg);
    }();
    return trace;
  }
  if (file.rfind("dns", 0) == 0) {
    name = "dns";
    static const auto trace =
        trafficgen::dns_trace(trafficgen::DnsConfig{});
    return trace;
  }
  if (file == "email_keywords.nqre") {
    name = "smtp";
    static const auto trace =
        trafficgen::smtp_trace(trafficgen::SmtpConfig{});
    return trace;
  }
  name = "backbone";
  // Materialized once per process with the first requested size.
  static const auto trace = [n_packets] {
    trafficgen::BackboneConfig cfg;
    cfg.n_packets = n_packets;
    cfg.n_flows = static_cast<uint32_t>(
        std::max<uint64_t>(1000, n_packets / 20));
    return trafficgen::backbone_trace(cfg);
  }();
  return trace;
}

// Replays through a ParallelEngine and reads back the shard queue telemetry
// the run produced: per-shard packet counts and queue-depth peaks, plus the
// dispatcher's backpressure-wait histogram.
void profile_parallel(QueryReport& rep, const core::CompiledQuery& query,
                      const Options& opt,
                      const std::vector<net::Packet>& trace) {
  core::ParallelEngine par(query, opt.parallel);
  obs::registry().reset();
  const auto t0 = Clock::now();
  par.feed(trace);
  par.finish();
  rep.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  rep.packets = par.packets();
  rep.result = "<sharded>";  // per-shard states; no cross-shard merge here
  rep.state_bytes = rep.state_peak_bytes = par.state_memory();

  const obs::Snapshot snap = obs::registry().snapshot();
  if (const auto* h = snap.find("netqre_engine_packet_latency_ns")) {
    rep.latency_samples = h->count;
    rep.p50 = obs::histogram_quantile(*h, 0.5);
    rep.p90 = obs::histogram_quantile(*h, 0.9);
    rep.p99 = obs::histogram_quantile(*h, 0.99);
  }
  for (int i = 0; i < opt.parallel; ++i) {
    ShardStat s;
    s.shard = i;
    if (const auto* c = snap.find(obs::labeled_name(
            "netqre_parallel_shard_packets_total",
            {{"shard", std::to_string(i)}}))) {
      s.packets = c->count;
    }
    if (const auto* g = snap.find(obs::labeled_name(
            "netqre_parallel_shard_queue_depth",
            {{"shard", std::to_string(i)}}))) {
      s.queue_depth_peak = static_cast<int64_t>(g->peak);
    }
    rep.shards.push_back(s);
  }
  if (const auto* h = snap.find("netqre_parallel_backpressure_wait_ns")) {
    rep.bp_waits = h->count;
    rep.bp_p50 = obs::histogram_quantile(*h, 0.5);
    rep.bp_p99 = obs::histogram_quantile(*h, 0.99);
  }
  rep.metrics_json = snap.to_json();
}

QueryReport profile_query(const apps::QueryInfo& info, const Options& opt,
                          const std::vector<net::Packet>* pcap_trace) {
  QueryReport rep;
  rep.info = info;
  try {
    auto prog = apps::compile_app(info.file, info.main);

    const std::vector<net::Packet>* trace = pcap_trace;
    if (trace) {
      rep.workload = "pcap";
    } else {
      trace = &workload_for(info.file, opt.packets, rep.workload);
    }

    if (opt.parallel > 0) {
      profile_parallel(rep, prog.query, opt, *trace);
      return rep;
    }

    core::Engine engine(prog.query);
    engine.enable_profiling();
    obs::registry().reset();

    const auto t0 = Clock::now();
    // Batched replay; each chunk is additionally capped at the next
    // --sample boundary so the state timeline keeps its exact points.
    uint64_t next_sample = opt.sample;
    const std::span<const net::Packet> all(*trace);
    size_t pos = 0;
    while (pos < all.size()) {
      const uint64_t room = next_sample > engine.packets()
                                ? next_sample - engine.packets()
                                : opt.sample;
      const size_t chunk = std::min(
          {static_cast<size_t>(kDefaultBatch), all.size() - pos,
           static_cast<size_t>(room)});
      engine.on_batch(all.subspan(pos, chunk));
      pos += chunk;
      if (engine.packets() >= next_sample) {
        rep.timeline.push_back({engine.packets(), engine.state_memory()});
        next_sample += opt.sample;
      }
    }
    engine.sample_state_metrics();
    rep.wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    rep.packets = engine.packets();
    rep.timeline.push_back({engine.packets(), engine.state_memory()});

    try {
      rep.result = engine.eval().to_string();
    } catch (const std::exception& e) {
      rep.result = std::string("<error: ") + e.what() + ">";
    }

    // Per-op table from the profile, then flush it into the per-kind
    // registry counters so the snapshot below carries them too.
    const core::OpProfile* prof = engine.profile();
    const auto& ops = engine.indexed_ops();
    for (size_t i = 0; i < ops.size(); ++i) {
      rep.ops.push_back({static_cast<int>(i), ops[i]->kind_name(),
                         prof->steps[i], prof->transitions[i]});
    }
    std::stable_sort(rep.ops.begin(), rep.ops.end(),
                     [](const OpRow& a, const OpRow& b) {
                       return a.steps > b.steps;
                     });
    engine.publish_op_metrics();

    const obs::Snapshot snap = obs::registry().snapshot();
    if (const auto* h = snap.find("netqre_engine_packet_latency_ns")) {
      rep.latency_samples = h->count;
      rep.p50 = obs::histogram_quantile(*h, 0.5);
      rep.p90 = obs::histogram_quantile(*h, 0.9);
      rep.p99 = obs::histogram_quantile(*h, 0.99);
    }
    if (const auto* g = snap.find("netqre_engine_state_memory_bytes")) {
      rep.state_bytes = static_cast<uint64_t>(g->value);
      rep.state_peak_bytes = static_cast<uint64_t>(g->peak);
    } else {
      rep.state_bytes = rep.state_peak_bytes = engine.state_memory();
    }
    if (const auto* g = snap.find("netqre_engine_guarded_states")) {
      rep.guarded_states = static_cast<uint64_t>(g->value);
    }
    if (const auto* c = snap.find("netqre_engine_actions_fired_total")) {
      rep.actions_fired = c->count;
    }
    rep.metrics_json = snap.to_json();
  } catch (const std::exception& e) {
    rep.error = e.what();
  }
  return rep;
}

void write_json(const std::vector<QueryReport>& reports, const Options& opt) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("tool").value("netqre-profile");
  w.key("telemetry_enabled").value(obs::kEnabled);
  w.key("sample_interval").value(opt.sample);
  w.key("queries").begin_array();
  for (const auto& rep : reports) {
    w.begin_object();
    w.key("title").value(rep.info.title);
    w.key("file").value(rep.info.file);
    w.key("main").value(rep.info.main);
    if (!rep.error.empty()) {
      w.key("error").value(rep.error);
      w.end_object();
      continue;
    }
    w.key("workload").value(rep.workload);
    w.key("packets").value(rep.packets);
    w.key("wall_ns").value(rep.wall_ns);
    w.key("throughput_mpps")
        .value(rep.wall_ns
                   ? static_cast<double>(rep.packets) * 1e3 /
                         static_cast<double>(rep.wall_ns)
                   : 0.0);
    w.key("result").value(rep.result);
    w.key("actions_fired").value(rep.actions_fired);
    w.key("latency_ns").begin_object();
    w.key("samples").value(rep.latency_samples);
    w.key("p50").value(rep.p50);
    w.key("p90").value(rep.p90);
    w.key("p99").value(rep.p99);
    w.end_object();
    w.key("state").begin_object();
    w.key("bytes").value(rep.state_bytes);
    w.key("peak_bytes").value(rep.state_peak_bytes);
    w.key("guarded_states").value(rep.guarded_states);
    w.end_object();
    if (!rep.shards.empty()) {
      w.key("parallel").begin_object();
      w.key("workers").value(static_cast<uint64_t>(rep.shards.size()));
      w.key("backpressure_waits").value(rep.bp_waits);
      w.key("backpressure_wait_ns").begin_object();
      w.key("p50").value(rep.bp_p50);
      w.key("p99").value(rep.bp_p99);
      w.end_object();
      w.key("shards").begin_array();
      for (const auto& s : rep.shards) {
        w.begin_object();
        w.key("shard").value(s.shard);
        w.key("packets").value(s.packets);
        w.key("queue_depth_peak").value(s.queue_depth_peak);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.key("ops").begin_array();
    for (const auto& op : rep.ops) {
      w.begin_object();
      w.key("id").value(op.id);
      w.key("kind").value(op.kind);
      w.key("steps").value(op.steps);
      w.key("transitions").value(op.transitions);
      w.end_object();
    }
    w.end_array();
    w.key("state_timeline").begin_array();
    for (const auto& pt : rep.timeline) {
      w.begin_object();
      w.key("packets").value(pt.packets);
      w.key("bytes").value(pt.state_bytes);
      w.end_object();
    }
    w.end_array();
    w.key("metrics").raw(rep.metrics_json);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::cout << w.str() << '\n';
}

void write_human(const QueryReport& rep, const Options& opt) {
  std::printf("=== %s (%s : %s) ===\n", rep.info.title.c_str(),
              rep.info.file.c_str(), rep.info.main.c_str());
  if (!rep.error.empty()) {
    std::printf("  ERROR: %s\n\n", rep.error.c_str());
    return;
  }
  std::printf("  workload %-10s packets %-10llu wall %.2f ms"
              "  (%.2f Mpps)\n",
              rep.workload.c_str(),
              static_cast<unsigned long long>(rep.packets),
              static_cast<double>(rep.wall_ns) / 1e6,
              rep.wall_ns ? static_cast<double>(rep.packets) * 1e3 /
                                static_cast<double>(rep.wall_ns)
                          : 0.0);
  std::printf("  result %s   actions fired %llu\n", rep.result.c_str(),
              static_cast<unsigned long long>(rep.actions_fired));
  if (rep.latency_samples > 0) {
    std::printf("  latency (%llu samples): p50 %.0f ns  p90 %.0f ns  "
                "p99 %.0f ns\n",
                static_cast<unsigned long long>(rep.latency_samples),
                rep.p50, rep.p90, rep.p99);
  }
  std::printf("  state: %.1f KB now, %.1f KB peak, %llu guarded states\n",
              static_cast<double>(rep.state_bytes) / 1024.0,
              static_cast<double>(rep.state_peak_bytes) / 1024.0,
              static_cast<unsigned long long>(rep.guarded_states));
  if (!rep.shards.empty()) {
    std::printf("  parallel: %zu shards, %llu backpressure waits"
                " (p50 %.0f ns, p99 %.0f ns)\n",
                rep.shards.size(),
                static_cast<unsigned long long>(rep.bp_waits), rep.bp_p50,
                rep.bp_p99);
    for (const auto& s : rep.shards) {
      std::printf("    shard %d: %llu packets, queue depth peak %lld\n",
                  s.shard, static_cast<unsigned long long>(s.packets),
                  static_cast<long long>(s.queue_depth_peak));
    }
  }
  std::printf("  top ops by eval count:\n");
  std::printf("    %4s %-12s %14s %14s\n", "id", "kind", "steps",
              "transitions");
  size_t shown = 0;
  for (const auto& op : rep.ops) {
    if (shown++ >= opt.top) break;
    std::printf("    %4d %-12s %14llu %14llu\n", op.id, op.kind,
                static_cast<unsigned long long>(op.steps),
                static_cast<unsigned long long>(op.transitions));
  }
  if (rep.timeline.size() > 1) {
    const auto& first = rep.timeline.front();
    const auto& mid = rep.timeline[rep.timeline.size() / 2];
    const auto& last = rep.timeline.back();
    std::printf("  state growth: %.1f KB @%llu -> %.1f KB @%llu -> "
                "%.1f KB @%llu pkts (%zu samples)\n",
                static_cast<double>(first.state_bytes) / 1024.0,
                static_cast<unsigned long long>(first.packets),
                static_cast<double>(mid.state_bytes) / 1024.0,
                static_cast<unsigned long long>(mid.packets),
                static_cast<double>(last.state_bytes) / 1024.0,
                static_cast<unsigned long long>(last.packets),
                rep.timeline.size());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool list = false;
  apps::CliArgs cli(argc, argv, "netqre-profile", kUsage);
  while (cli.next()) {
    if (cli.is("--list")) {
      list = true;
    } else if (cli.is("--query")) {
      opt.queries.emplace_back(cli.value());
    } else if (cli.is("--pcap")) {
      opt.pcap = cli.value();
    } else if (cli.is("--packets")) {
      opt.packets = cli.value_u64();
    } else if (cli.is("--sample")) {
      opt.sample = std::max<uint64_t>(1, cli.value_u64());
    } else if (cli.is("--top")) {
      opt.top = cli.value_u64();
    } else if (cli.is("--json")) {
      opt.json = true;
    } else if (cli.is("--prometheus")) {
      opt.prometheus = true;
    } else if (cli.is("--parallel")) {
      opt.parallel = static_cast<int>(cli.value_u64());
    } else if (cli.is("--trace-out")) {
      opt.trace_out = cli.value();
    } else {
      cli.unknown();
    }
  }

  if (list) {
    for (const auto& q : apps::table1()) {
      std::printf("%-24s %-24s %s\n", q.file.c_str(), q.main.c_str(),
                  q.title.c_str());
    }
    return 0;
  }

  // Resolve the query set.
  std::vector<apps::QueryInfo> selected;
  if (opt.queries.empty()) {
    selected = apps::table1();
  } else {
    for (const auto& spec : opt.queries) {
      const size_t colon = spec.find(':');
      const std::string file = spec.substr(0, colon);
      bool found = false;
      for (const auto& q : apps::table1()) {
        if (q.file == file) {
          apps::QueryInfo info = q;
          if (colon != std::string::npos) {
            info.main = spec.substr(colon + 1);
          }
          selected.push_back(info);
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "netqre-profile: unknown query '" << file
                  << "' (see --list)\n";
        return 2;
      }
    }
  }

  // Optional pcap workload, shared by every selected query.
  std::vector<net::Packet> pcap_trace;
  const std::vector<net::Packet>* pcap_ptr = nullptr;
  if (!opt.pcap.empty()) {
    try {
      net::PcapOptions popt;
      popt.tolerant = true;
      net::PacketBatch batch;
      net::read_all(opt.pcap, batch, popt);
      pcap_trace = std::move(batch).take();
      pcap_ptr = &pcap_trace;
    } catch (const std::exception& e) {
      std::cerr << "netqre-profile: " << e.what() << "\n";
      return 2;
    }
  }

  // --trace-out captures this process's replay only, not whatever a prior
  // library user recorded.
  if (!opt.trace_out.empty()) obs::tracer().clear();

  std::vector<QueryReport> reports;
  bool failed = false;
  for (const auto& info : selected) {
    reports.push_back(profile_query(info, opt, pcap_ptr));
    failed = failed || !reports.back().error.empty();
    if (opt.prometheus) {
      std::printf("# query: %s\n%s\n", info.file.c_str(),
                  obs::registry().snapshot().to_prometheus().c_str());
    }
    if (!opt.json && !opt.prometheus) write_human(reports.back(), opt);
  }
  if (opt.json) write_json(reports, opt);

  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::cerr << "netqre-profile: cannot write " << opt.trace_out << "\n";
      return 2;
    }
    out << obs::tracer().snapshot().to_chrome_json("netqre-profile replay");
    if (!opt.json) {
      std::fprintf(stderr, "netqre-profile: trace written to %s\n",
                   opt.trace_out.c_str());
    }
  }
  return failed ? 1 : 0;
}
