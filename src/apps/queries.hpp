// The Table-1 application suite: the 17 quantitative monitoring programs the
// paper's expressiveness study lists (§7.1), written in NetQRE under
// queries/*.nqre and compiled through the full language pipeline.
#pragma once

#include <string>
#include <vector>

#include "lang/lower.hpp"

namespace netqre::apps {

struct QueryInfo {
  std::string title;  // row name used in Table 1
  std::string file;   // file under queries/
  std::string main;   // entry sfun compiled by default
};

// All Table-1 rows, in the paper's order.
const std::vector<QueryInfo>& table1();

// Reads queries/<file> (from the source tree).
std::string load_source(const std::string& file);

// Lines of code of a query file: non-blank, non-comment lines — the metric
// Table 1 reports.
int count_loc(const std::string& file);

// Compiles `main` from queries/<file> (prelude included).
lang::CompiledProgram compile_app(const std::string& file,
                                  const std::string& main);

}  // namespace netqre::apps
