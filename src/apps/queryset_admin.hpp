// HTTP admin surface for the multi-tenant QuerySet runtime (DESIGN.md §7).
//
// Factored out of netqre-monitor so the daemon and the in-process system
// tests register the same handlers:
//
//   GET    /api/v1/queries   one JSON row per loaded query (tier, packets,
//                            state bytes, quota, evictions) plus the shared
//                            atom-pool diagnostics
//   POST   /api/v1/queries   load a query: ?name=&file=&main=&quota= for a
//                            shipped queries/*.nqre file, or an inline
//                            NetQRE source as the request body with
//                            ?name=&main=.  The load path is the full
//                            lint → certify → compile chain; the swap into
//                            the live set is atomic at a batch boundary
//                            (zero packets dropped).  409 when the name is
//                            taken, 400 with diagnostics when the source
//                            does not lint/compile.
//   DELETE /api/v1/queries   ?name= unloads (drops all state of) a query
//
// and overrides /api/v1/statz (plus the deprecated /statz alias) with the
// monitor's extended snapshot: the metrics registry plus one section per
// loaded query carrying its tier decision and resource certificate.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "core/queryset.hpp"
#include "obs/http_export.hpp"
#include "store/series_store.hpp"

namespace netqre::apps {

// Language-layer metadata the core QuerySet does not keep.
struct QueryAdminMeta {
  std::string file;       // shipped file name, or "(inline)"
  std::string main;       // entry sfun
  std::string cert_json;  // rendered resource certificate
};

// Shared handle between the HTTP admin surface, the initial CLI loads and
// the replay loop.  Exactly one of `set` / `parallel` is non-null.
struct QuerySetRuntime {
  core::QuerySet* set = nullptr;
  core::ParallelQuerySet* parallel = nullptr;
  store::SeriesStore* store = nullptr;  // null = result store off
  size_t default_quota = 0;             // bytes; 0 = unlimited

  std::mutex mu;  // guards meta
  std::map<std::string, QueryAdminMeta> meta;

  [[nodiscard]] std::vector<core::QueryStatus> status() const {
    return set ? set->status() : parallel->status();
  }
};

struct LoadOutcome {
  int status = 200;  // HTTP status semantics: 200/400/404/409
  std::string error;  // empty on success
};

// Loads `name` into the runtime through the full lint → certify → compile →
// swap chain.  `file` names a shipped queries/*.nqre file (with `main`
// defaulting to its Table-1 entry sfun); a non-empty `source` compiles
// inline instead (then `main` is required and `file` ignored).
// `quota_bytes` = 0 inherits the runtime default.
LoadOutcome load_query(QuerySetRuntime& rt, const std::string& name,
                       const std::string& file, const std::string& main,
                       const std::string& source, size_t quota_bytes);

// Unloads `name`; 404 outcome when absent.
LoadOutcome unload_query(QuerySetRuntime& rt, const std::string& name);

// Registers the /api/v1/queries handlers and the extended statz snapshot.
// Call after register_observability_endpoints (the statz override replaces
// the registry-only default).  `rt` must outlive the server.
void register_queryset_admin(obs::HttpServer& srv, QuerySetRuntime& rt);

}  // namespace netqre::apps
