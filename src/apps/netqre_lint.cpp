// netqre-lint — static analysis for NetQRE programs.
//
// Checks .nqre files (or stdin) with the semantic analysis pass
// (src/lang/analysis.hpp) and prints structured diagnostics:
//
//     queries/bad.nqre:3: error[NQ001]: undefined name 'dprt'
//
// Exit status: 0 when clean (warnings allowed), 1 when any error was
// reported (or any warning under --werror), 2 on usage or I/O problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cli.hpp"
#include "netqre.hpp"

namespace {

constexpr const char* kUsage =
    "usage: netqre-lint [options] [file.nqre ... | -]\n"
    "\n"
    "Statically checks NetQRE programs and reports NQxxx diagnostics.\n"
    "Reads stdin when no file (or '-') is given.\n"
    "\n"
    "options:\n"
    "  --werror       exit nonzero on warnings too\n"
    "  --no-warnings  suppress warning-severity diagnostics\n"
    "  --json         structured diagnostics on stdout (CI consumption)\n"
    "  -h, --help     show this help\n";

struct Options {
  bool werror = false;
  bool no_warnings = false;
  bool json = false;
  std::vector<std::string> files;
};

// Prints (or collects, in JSON mode) diagnostics for one source.
void lint_source(const std::string& display, const std::string& source,
                 const Options& opt, netqre::obs::JsonWriter* json,
                 int& errors, int& warnings) {
  for (const auto& d : netqre::lang::analyze_source(source)) {
    if (d.is_error()) {
      ++errors;
    } else {
      ++warnings;
      if (opt.no_warnings) continue;
    }
    if (json) {
      json->begin_object();
      json->key("file").value(display);
      json->key("line").value(d.line);
      json->key("severity").value(d.is_error() ? "error" : "warning");
      json->key("code").value(d.code);
      json->key("message").value(d.message);
      json->end_object();
      continue;
    }
    std::cout << display;
    if (d.line > 0) std::cout << ':' << d.line;
    std::cout << ": " << (d.is_error() ? "error" : "warning") << '['
              << d.code << "]: " << d.message << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  netqre::apps::CliArgs cli(argc, argv, "netqre-lint", kUsage);
  while (cli.next()) {
    if (cli.is("--werror")) {
      opt.werror = true;
    } else if (cli.is("--no-warnings")) {
      opt.no_warnings = true;
    } else if (cli.is("--json")) {
      opt.json = true;
    } else if (cli.arg().size() > 1 && cli.arg()[0] == '-') {
      cli.unknown();
    } else {
      opt.files.push_back(cli.arg());
    }
  }
  if (opt.files.empty()) opt.files.push_back("-");

  netqre::obs::JsonWriter json;
  if (opt.json) {
    json.begin_object();
    json.key("tool").value("netqre-lint");
    json.key("diagnostics").begin_array();
  }
  netqre::obs::JsonWriter* jw = opt.json ? &json : nullptr;

  int errors = 0;
  int warnings = 0;
  for (const auto& file : opt.files) {
    std::ostringstream buf;
    if (file == "-") {
      buf << std::cin.rdbuf();
      lint_source("<stdin>", buf.str(), opt, jw, errors, warnings);
      continue;
    }
    std::ifstream in(file);
    if (!in) {
      std::cerr << "netqre-lint: cannot open '" << file << "'\n";
      return 2;
    }
    buf << in.rdbuf();
    lint_source(file, buf.str(), opt, jw, errors, warnings);
  }

  if (opt.json) {
    json.end_array();
    json.key("errors").value(errors);
    json.key("warnings").value(warnings);
    json.end_object();
    std::cout << json.str() << '\n';
  } else if (errors + warnings > 0) {
    std::cerr << errors << " error(s), " << warnings << " warning(s)\n";
  }
  if (errors > 0) return 1;
  if (opt.werror && warnings > 0) return 1;
  return 0;
}
