// netqre-lint — static analysis for NetQRE programs.
//
// Checks .nqre files (or stdin) with the semantic analysis pass
// (src/lang/analysis.hpp) and prints structured diagnostics:
//
//     queries/bad.nqre:3: error[NQ001]: undefined name 'dprt'
//
// Every stream function that compiles standalone is additionally certified
// (src/lang/certify.hpp): ambiguity witnesses (NQ100), per-key state bounds
// (NQ101) and worst-case per-packet cost (NQ102), with the full certificate
// available under --json and a human rendering under --explain-tier.
//
// Exit status: 0 when clean (warnings allowed), 1 when any error was
// reported (or any warning under --werror), 2 on usage or I/O problems.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "apps/cli.hpp"
#include "lang/certify.hpp"
#include "lang/parser.hpp"
#include "netqre.hpp"

namespace {

constexpr const char* kUsage =
    "usage: netqre-lint [options] [file.nqre ... | -]\n"
    "\n"
    "Statically checks NetQRE programs and reports NQxxx diagnostics.\n"
    "Reads stdin when no file (or '-') is given.\n"
    "\n"
    "options:\n"
    "  --werror            exit nonzero on warnings too\n"
    "  --no-warnings       suppress warning-severity diagnostics\n"
    "  --json              structured diagnostics + resource certificates\n"
    "  --explain-tier      print each query's resource certificate and the\n"
    "                      engine tier it proves (specialized/interpreted)\n"
    "  --cost-threshold N  NQ102 fires above N op steps/packet (default 512)\n"
    "  -h, --help          show this help\n";

struct Options {
  bool werror = false;
  bool no_warnings = false;
  bool json = false;
  bool explain_tier = false;
  netqre::lang::CertifyOptions certify;
  std::vector<std::string> files;
};

// The analysis pass visits patterns from both the expression walk and the
// pattern walk, so the same diagnostic can surface twice; report each
// distinct (severity, code, line, message) once per file.
//
// Certificate diagnostics (NQ10x) additionally dedup on the message body
// with the "'<sfun>': " prefix stripped: a shared helper's ambiguity or
// unbounded split is certified once per wrapping sfun, and repeating the
// identical root cause for every wrapper drowns the signal.
class Dedup {
 public:
  bool fresh(const netqre::lang::Diagnostic& d) {
    if (d.code.rfind("NQ10", 0) == 0) {
      std::string body = d.message;
      if (!body.empty() && body.front() == '\'') {
        const size_t colon = body.find("': ");
        if (colon != std::string::npos) body.erase(0, colon + 3);
      }
      if (!cert_seen_.emplace(d.code, std::move(body)).second) return false;
    }
    return seen_
        .emplace(static_cast<int>(d.severity), d.code, d.line, d.message)
        .second;
  }

 private:
  std::set<std::tuple<int, std::string, int, std::string>> seen_;
  std::set<std::pair<std::string, std::string>> cert_seen_;
};

void emit(const std::string& display, const netqre::lang::Diagnostic& d,
          const Options& opt, netqre::obs::JsonWriter* json, int& errors,
          int& warnings) {
  if (d.is_error()) {
    ++errors;
  } else {
    ++warnings;
    if (opt.no_warnings) return;
  }
  if (json) {
    json->begin_object();
    json->key("file").value(display);
    json->key("line").value(d.line);
    json->key("severity").value(d.is_error() ? "error" : "warning");
    json->key("code").value(d.code);
    json->key("message").value(d.message);
    json->end_object();
    return;
  }
  std::cout << display;
  if (d.line > 0) std::cout << ':' << d.line;
  std::cout << ": " << (d.is_error() ? "error" : "warning") << '[' << d.code
            << "]: " << d.message << '\n';
}

// Certificates for every stream function in `source` that compiles
// standalone.  Helpers that only make sense applied to arguments (or
// functions that fail to lower) are skipped; their problems are already
// covered by the analysis diagnostics.
struct NamedCertificate {
  std::string name;
  int line = 0;
  netqre::lang::ResourceCertificate cert;
};

std::vector<NamedCertificate> certify_source(const std::string& source) {
  std::vector<NamedCertificate> out;
  netqre::lang::Program prog;
  try {
    prog = netqre::lang::parse_program(source);
  } catch (const std::exception&) {
    return out;  // parse errors already reported
  }
  for (const auto& sfun : prog.sfuns) {
    try {
      netqre::lang::CompiledProgram compiled =
          netqre::lang::compile_source(source, sfun.name);
      out.push_back(
          {sfun.name, sfun.line, netqre::lang::certify(compiled, sfun.name)});
    } catch (const std::exception&) {
      // Not compilable standalone — nothing to certify.
    }
  }
  return out;
}

// Prints (or collects, in JSON mode) diagnostics for one source.
void lint_source(const std::string& display, const std::string& source,
                 const Options& opt, netqre::obs::JsonWriter* json,
                 std::vector<NamedCertificate>& certs, int& errors,
                 int& warnings) {
  Dedup dedup;
  for (const auto& d : netqre::lang::analyze_source(source)) {
    if (dedup.fresh(d)) emit(display, d, opt, json, errors, warnings);
  }
  for (auto& nc : certify_source(source)) {
    for (const auto& d : netqre::lang::certificate_diagnostics(
             nc.cert, nc.line, opt.certify)) {
      if (dedup.fresh(d)) emit(display, d, opt, json, errors, warnings);
    }
    certs.push_back(std::move(nc));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  netqre::apps::CliArgs cli(argc, argv, "netqre-lint", kUsage);
  while (cli.next()) {
    if (cli.is("--werror")) {
      opt.werror = true;
    } else if (cli.is("--no-warnings")) {
      opt.no_warnings = true;
    } else if (cli.is("--json")) {
      opt.json = true;
    } else if (cli.is("--explain-tier")) {
      opt.explain_tier = true;
    } else if (cli.is("--cost-threshold")) {
      opt.certify.cost_threshold = cli.value_u64();
    } else if (cli.arg().size() > 1 && cli.arg()[0] == '-') {
      cli.unknown();
    } else {
      opt.files.push_back(cli.arg());
    }
  }
  if (opt.files.empty()) opt.files.push_back("-");

  netqre::obs::JsonWriter json;
  if (opt.json) {
    json.begin_object();
    json.key("tool").value("netqre-lint");
    json.key("diagnostics").begin_array();
  }
  netqre::obs::JsonWriter* jw = opt.json ? &json : nullptr;

  int errors = 0;
  int warnings = 0;
  // (file, certificates) per input, reported after the diagnostics array.
  std::vector<std::pair<std::string, std::vector<NamedCertificate>>> all;
  for (const auto& file : opt.files) {
    std::ostringstream buf;
    std::string display = file;
    if (file == "-") {
      buf << std::cin.rdbuf();
      display = "<stdin>";
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "netqre-lint: cannot open '" << file << "'\n";
        return 2;
      }
      buf << in.rdbuf();
    }
    auto& certs = all.emplace_back(display, std::vector<NamedCertificate>{})
                      .second;
    lint_source(display, buf.str(), opt, jw, certs, errors, warnings);
  }

  if (opt.json) {
    json.end_array();
    json.key("certificates").begin_array();
    for (const auto& [file, certs] : all) {
      for (const auto& nc : certs) {
        json.begin_object();
        json.key("file").value(file);
        json.key("line").value(nc.line);
        json.key("certificate");
        netqre::lang::certificate_json(nc.cert, json);
        json.end_object();
      }
    }
    json.end_array();
    json.key("errors").value(errors);
    json.key("warnings").value(warnings);
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    if (opt.explain_tier) {
      for (const auto& [file, certs] : all) {
        for (const auto& nc : certs) {
          std::cout << file << ':' << nc.line << ": "
                    << netqre::lang::certificate_summary(nc.cert);
        }
      }
    }
    if (errors + warnings > 0) {
      std::cerr << errors << " error(s), " << warnings << " warning(s)\n";
    }
  }
  if (errors > 0) return 1;
  if (opt.werror && warnings > 0) return 1;
  return 0;
}
