#include "apps/queryset_admin.hpp"

#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "apps/queries.hpp"
#include "lang/analysis.hpp"
#include "lang/certify.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "store/stream.hpp"

namespace netqre::apps {

namespace {

// Decoded key=value pairs of a query string (no repeats expected on this
// surface; the last occurrence wins).
std::map<std::string, std::string> parse_query_params(std::string_view q) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < q.size()) {
    size_t amp = q.find('&', pos);
    if (amp == std::string_view::npos) amp = q.size();
    const std::string_view pair = q.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      out[store::url_decode(pair.substr(0, eq))] =
          store::url_decode(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      out[store::url_decode(pair)] = "";
    }
    pos = amp + 1;
  }
  return out;
}

void status_json(obs::JsonWriter& w, const core::QueryStatus& st,
                 const QueryAdminMeta* meta, bool with_certificate) {
  w.begin_object();
  w.key("name").value(st.name);
  if (meta) {
    w.key("file").value(meta->file);
    w.key("main").value(meta->main);
  }
  w.key("tier").value(st.tier);
  w.key("reason").value(st.reason);
  w.key("packets").value(static_cast<int64_t>(st.packets));
  w.key("state_bytes").value(static_cast<int64_t>(st.state_bytes));
  w.key("quota_bytes").value(static_cast<int64_t>(st.quota_bytes));
  w.key("evicted_keys").value(static_cast<int64_t>(st.evicted_keys));
  w.key("quota_resets").value(static_cast<int64_t>(st.quota_resets));
  w.key("cpu_share_ppm").value(static_cast<int64_t>(st.cpu_share_ppm));
  if (with_certificate && meta && !meta->cert_json.empty()) {
    w.key("certificate").raw(meta->cert_json);
  }
  w.end_object();
}

std::string queries_json(QuerySetRuntime& rt, bool with_certificates) {
  const auto statuses = rt.status();
  std::lock_guard lock(rt.mu);
  obs::JsonWriter w;
  w.begin_object();
  w.key("queries").begin_array();
  for (const auto& st : statuses) {
    const auto it = rt.meta.find(st.name);
    status_json(w, st, it != rt.meta.end() ? &it->second : nullptr,
                with_certificates);
  }
  w.end_array();
  const core::QuerySet& any_set =
      rt.set ? *rt.set : rt.parallel->shard_set(0);
  w.key("atom_pool").value(static_cast<int64_t>(any_set.atom_pool_size()));
  w.key("atom_refs").value(static_cast<int64_t>(any_set.atom_refs()));
  if (rt.parallel) {
    w.key("workers").value(static_cast<int64_t>(rt.parallel->workers()));
  }
  w.end_object();
  return w.str();
}

}  // namespace

LoadOutcome load_query(QuerySetRuntime& rt, const std::string& name,
                       const std::string& file, const std::string& main,
                       const std::string& source, size_t quota_bytes) {
  if (name.empty()) return {400, "missing query name"};
  const bool inline_source = !source.empty();
  std::string entry = main;
  std::string file_label = inline_source ? "(inline)" : file;
  std::string text = source;
  if (!inline_source) {
    const auto& table = table1();
    const QueryInfo* info = nullptr;
    for (const auto& q : table) {
      if (q.file == file) {
        info = &q;
        break;
      }
    }
    if (!info) return {404, "unknown query file '" + file + "'"};
    if (entry.empty()) entry = info->main;
    try {
      text = load_source(file);
    } catch (const std::exception& e) {
      return {404, e.what()};
    }
  } else if (entry.empty()) {
    return {400, "inline source needs an explicit main="};
  }

  // lint → certify → compile, then the atomic swap into the live set.
  const auto diags = lang::analyze_source(text);
  if (lang::has_errors(diags)) {
    std::string msg = "lint failed:";
    for (const auto& d : diags) msg += "\n  " + d.to_string();
    return {400, msg};
  }
  lang::CompiledProgram prog;
  lang::ResourceCertificate cert;
  try {
    prog = lang::compile_source(text, entry);
    cert = lang::certify(prog, entry);
  } catch (const std::exception& e) {
    return {400, std::string("compile failed: ") + e.what()};
  }
  core::QuerySet::LoadOptions lopt;
  lopt.state_quota_bytes = quota_bytes != 0 ? quota_bytes : rt.default_quota;
  const bool loaded =
      rt.set ? rt.set->load(name, std::move(prog.query), lopt)
             : rt.parallel->load(name, prog.query, lopt);
  if (!loaded) return {409, "query '" + name + "' is already loaded"};
  if (rt.store) rt.store->context(name);

  obs::JsonWriter cw;
  lang::certificate_json(cert, cw);
  std::lock_guard lock(rt.mu);
  rt.meta[name] = QueryAdminMeta{file_label, entry, cw.str()};
  return {};
}

LoadOutcome unload_query(QuerySetRuntime& rt, const std::string& name) {
  const bool removed =
      rt.set ? rt.set->unload(name) : rt.parallel->unload(name);
  if (!removed) return {404, "no query named '" + name + "'"};
  // The store context (historical samples) survives the unload on purpose:
  // the series is the record that the query ran.
  std::lock_guard lock(rt.mu);
  rt.meta.erase(name);
  return {};
}

void register_queryset_admin(obs::HttpServer& srv, QuerySetRuntime& rt) {
  srv.handle("/api/v1/queries", [&rt](const obs::HttpRequest&) {
    return obs::HttpResponse::json(queries_json(rt, false));
  });

  srv.handle_post("/api/v1/queries", [&rt](const obs::HttpRequest& req) {
    const auto params = parse_query_params(req.query);
    const auto get = [&params](const char* k) {
      const auto it = params.find(k);
      return it != params.end() ? it->second : std::string();
    };
    size_t quota = 0;
    if (const std::string q = get("quota"); !q.empty()) {
      quota = static_cast<size_t>(std::strtoull(q.c_str(), nullptr, 10));
    }
    std::string name = get("name");
    const std::string file = get("file");
    if (name.empty()) name = file;  // shipped file: the file names the query
    const LoadOutcome out =
        load_query(rt, name, file, get("main"), req.body, quota);
    if (out.status != 200) {
      return obs::HttpResponse::text(out.error + "\n", out.status);
    }
    obs::JsonWriter w;
    w.begin_object();
    w.key("loaded").value(name);
    w.end_object();
    return obs::HttpResponse::json(w.str());
  });

  srv.handle_delete("/api/v1/queries", [&rt](const obs::HttpRequest& req) {
    const auto params = parse_query_params(req.query);
    const auto it = params.find("name");
    if (it == params.end() || it->second.empty()) {
      return obs::HttpResponse::text("missing ?name=\n", 400);
    }
    const LoadOutcome out = unload_query(rt, it->second);
    if (out.status != 200) {
      return obs::HttpResponse::text(out.error + "\n", out.status);
    }
    obs::JsonWriter w;
    w.begin_object();
    w.key("unloaded").value(it->second);
    w.end_object();
    return obs::HttpResponse::json(w.str());
  });

  // Extended statz: the registry snapshot plus one section per query with
  // its certificate.  Overrides the registry-only default at both the
  // canonical and the deprecated path.
  obs::handle_get_versioned(srv, "/statz", [&rt](const obs::HttpRequest&) {
    obs::touch_uptime();
    obs::JsonWriter w;
    w.begin_object();
    w.key("metrics").raw(obs::registry().snapshot().to_json());
    w.key("queryset").raw(queries_json(rt, true));
    w.end_object();
    return obs::HttpResponse::json(w.str());
  });
}

}  // namespace netqre::apps
