#include "apps/queries.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netqre::apps {

#ifndef NETQRE_QUERIES_DIR
#define NETQRE_QUERIES_DIR "queries"
#endif

const std::vector<QueryInfo>& table1() {
  static const std::vector<QueryInfo> kApps = {
      {"Heavy Hitter (S4.1)", "heavy_hitter.nqre", "hh"},
      {"Super Spreader (S4.1)", "super_spreader.nqre", "ss"},
      {"Entropy Estimation [40]", "entropy.nqre", "src_pkts"},
      {"Flow size dist. [18]", "flow_size_dist.nqre", "flow_pkts"},
      {"Traffic change detection [35]", "traffic_change.nqre",
       "recent_src_bytes"},
      {"Count traffic [40]", "count_traffic.nqre", "total_bytes"},
      {"Completed flows (S4.2)", "completed_flows.nqre", "completed_flows"},
      {"SYN flood detection (S4.2)", "syn_flood.nqre", "syn_flood"},
      {"Slowloris detection (S4.2)", "slowloris.nqre", "avg_rate"},
      {"Lifetime of connection", "lifetime.nqre", "lifetime"},
      {"Newly opened connection recently", "new_conns.nqre",
       "recent_new_conns"},
      {"# duplicated ACKs", "dup_acks.nqre", "dup_acks"},
      {"# VoIP call", "voip_count.nqre", "voip_call_count"},
      {"VoIP usage (S4.3)", "voip_usage.nqre", "usage_per_user"},
      {"Key word counting in emails", "email_keywords.nqre", "keyword_pkts"},
      {"DNS tunnel detection [12]", "dns_tunnel.nqre", "dns_long_queries"},
      {"DNS amplification [20]", "dns_amplification.nqre", "dns_amp_alert"},
  };
  return kApps;
}

std::string load_source(const std::string& file) {
  const std::string path = std::string(NETQRE_QUERIES_DIR) + "/" + file;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open query file: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int count_loc(const std::string& file) {
  std::istringstream in(load_source(file));
  std::string line;
  int loc = 0;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank
    if (line[first] == '#') continue;          // comment
    ++loc;
  }
  return loc;
}

lang::CompiledProgram compile_app(const std::string& file,
                                  const std::string& main) {
  return lang::compile_source(load_source(file), main);
}

}  // namespace netqre::apps
