// netqre-monitor — a long-running NetQRE monitoring daemon with a live
// observability surface (DESIGN.md "Tracing & live monitoring").
//
// Runs one compiled query continuously over a packet source — a pcap
// capture or a generated workload, replayed with pacing and (by default)
// looped so the process behaves like a monitor on live traffic — and
// serves, on 127.0.0.1:<port>:
//
//   /metrics   Prometheus text exposition of the metrics registry
//   /statz     the same snapshot as JSON
//   /healthz   200 while the engine thread is alive and making progress
//   /tracez    the flight-recorder rings as Chrome trace JSON
//   /dump      writes a flight-recorder dump file, returns its path
//
// A TraceGovernor polls the registry once a second and snapshots the
// flight recorder to --dump-dir automatically when an anomaly trips (p99
// latency jump, shard queue saturation, truncated-record burst).
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM/--max-seconds/--once),
// 2 on usage or I/O problems.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/cli.hpp"
#include "apps/queries.hpp"
#include "lang/certify.hpp"
#include "netqre.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trafficgen/trafficgen.hpp"

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: netqre-monitor [options]\n"
    "\n"
    "Long-running NetQRE monitor: replays traffic through one compiled\n"
    "query and serves /metrics, /healthz, /tracez and /dump over HTTP on\n"
    "127.0.0.1.\n"
    "\n"
    "options:\n"
    "  --query FILE[:MAIN]  shipped query to run (default heavy_hitter.nqre)\n"
    "  --pcap FILE          replay this capture (tolerant mode) instead of\n"
    "                       the generated backbone workload\n"
    "  --packets N          generated workload size (default 100000)\n"
    "  --port P             HTTP port (default 9901; 0 = ephemeral)\n"
    "  --pps N              replay pacing, packets/second (default 250000;\n"
    "                       0 = replay as fast as possible)\n"
    "  --once               stop after one pass over the workload instead\n"
    "                       of looping\n"
    "  --max-seconds N      stop after N seconds (0 = run until signalled)\n"
    "  --dump-dir DIR       flight-recorder dump directory (default \".\")\n"
    "  --workers N          shard the query across N worker threads\n"
    "                       (default 0 = single engine)\n"
    "  --state-budget B     warn at startup when the query's certified\n"
    "                       bytes-per-key quota times the expected key\n"
    "                       count exceeds B bytes (default 0 = off)\n"
    "  -h, --help           show this help\n";

struct Options {
  std::string query = "heavy_hitter.nqre";
  std::string pcap;
  uint64_t packets = 100'000;
  uint16_t port = 9901;
  uint64_t pps = 250'000;
  bool once = false;
  uint64_t max_seconds = 0;
  std::string dump_dir = ".";
  int workers = 0;
  uint64_t state_budget = 0;  // bytes; 0 = no budget check
};

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

apps::QueryInfo resolve_query(const std::string& spec, apps::CliArgs& cli) {
  const size_t colon = spec.find(':');
  const std::string file = spec.substr(0, colon);
  for (const auto& q : apps::table1()) {
    if (q.file != file) continue;
    apps::QueryInfo info = q;
    if (colon != std::string::npos) info.main = spec.substr(colon + 1);
    return info;
  }
  cli.fail("unknown query '" + file + "' (see netqre-profile --list)");
}

struct Workload {
  std::vector<net::Packet> trace;
  // Upper estimate of distinct scope keys the workload can materialize:
  // the generator's flow count, or the packet count for a capture (each
  // packet can introduce at most one new key per scope level).
  uint64_t expected_keys = 0;
};

Workload load_workload(const Options& opt) {
  Workload w;
  if (!opt.pcap.empty()) {
    net::PcapOptions popt;
    popt.tolerant = true;
    w.trace = net::read_all(opt.pcap, popt);
    w.expected_keys = w.trace.size();
    return w;
  }
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = opt.packets;
  cfg.n_flows = static_cast<uint32_t>(
      std::max<uint64_t>(1000, opt.packets / 20));
  w.trace = trafficgen::backbone_trace(cfg);
  w.expected_keys = cfg.n_flows;
  return w;
}

// --state-budget: compares the certificate's bytes-per-key quota, scaled by
// the expected key count and window panes, against the configured budget.
// A warning, not an error: the monitor still starts (the estimate is an
// upper bound), but the operator is told before memory grows, not after.
void check_state_budget(const lang::ResourceCertificate& cert,
                        uint64_t expected_keys, uint64_t budget) {
  if (budget == 0) return;
  if (!cert.state_bounded) {
    std::fprintf(stderr,
                 "netqre-monitor: warning: --state-budget %llu set but the "
                 "query's per-key state is not statically bounded; the "
                 "certificate cannot guarantee any budget\n",
                 static_cast<unsigned long long>(budget));
    return;
  }
  const uint64_t panes = static_cast<uint64_t>(cert.window_instances);
  const uint64_t expected =
      (cert.fixed_bytes + expected_keys * cert.bytes_per_key) * panes;
  if (expected > budget) {
    std::fprintf(
        stderr,
        "netqre-monitor: warning: expected state %llu B (%llu keys x %llu "
        "B/key + %llu B fixed, x%llu window panes) exceeds --state-budget "
        "%llu B\n",
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(expected_keys),
        static_cast<unsigned long long>(cert.bytes_per_key),
        static_cast<unsigned long long>(cert.fixed_bytes),
        static_cast<unsigned long long>(panes),
        static_cast<unsigned long long>(budget));
  }
}

// Replays `trace` through the engine(s) until stopped: batched, paced to
// --pps, looping unless --once.  Updates the heartbeat every batch so
// /healthz notices a wedged engine, and polls the governor about once a
// second.
void run_engine(const Options& opt, const std::vector<net::Packet>& trace,
                core::Engine* engine, core::ParallelEngine* parallel,
                std::atomic<uint64_t>& heartbeat_ns,
                std::atomic<uint64_t>& packets_done,
                obs::TraceGovernor& governor) {
  obs::tracer().set_thread_name("engine");
  const auto start = Clock::now();
  auto next_governor_poll = start + std::chrono::seconds(1);
  const auto deadline =
      opt.max_seconds ? start + std::chrono::seconds(opt.max_seconds)
                      : Clock::time_point::max();
  uint64_t replayed = 0;  // packets replayed across all passes
  net::PacketBatch batch(kDefaultBatch);

  while (!g_stop.load(std::memory_order_relaxed)) {
    net::VectorSource source(trace);
    while (source.fill(batch, kDefaultBatch) > 0) {
      if (parallel) {
        parallel->feed(std::move(batch));
      } else {
        engine->on_batch(batch.packets());
      }
      replayed += batch.size();
      packets_done.store(replayed, std::memory_order_relaxed);

      const auto now = Clock::now();
      heartbeat_ns.store(
          static_cast<uint64_t>(std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(
                                    now.time_since_epoch())
                                    .count()),
          std::memory_order_relaxed);
      if (now >= next_governor_poll) {
        if (auto path = governor.poll()) {
          std::fprintf(stderr, "netqre-monitor: anomaly dump written: %s\n",
                       path->c_str());
        }
        next_governor_poll = now + std::chrono::seconds(1);
      }
      if (g_stop.load(std::memory_order_relaxed) || now >= deadline) {
        g_stop.store(true);
        break;
      }
      // Pacing: sleep until the replayed-packet count matches --pps.
      if (opt.pps > 0) {
        const auto due =
            start + std::chrono::nanoseconds(
                        replayed * 1'000'000'000ull / opt.pps);
        if (due > Clock::now()) std::this_thread::sleep_until(due);
      }
    }
    if (opt.once) {
      g_stop.store(true);
      break;
    }
  }
  if (parallel) parallel->finish();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  apps::CliArgs cli(argc, argv, "netqre-monitor", kUsage);
  std::string query_spec = opt.query;
  while (cli.next()) {
    if (cli.is("--query")) {
      query_spec = cli.value();
    } else if (cli.is("--pcap")) {
      opt.pcap = cli.value();
    } else if (cli.is("--packets")) {
      opt.packets = cli.value_u64();
    } else if (cli.is("--port")) {
      opt.port = static_cast<uint16_t>(cli.value_u64());
    } else if (cli.is("--pps")) {
      opt.pps = cli.value_u64();
    } else if (cli.is("--once")) {
      opt.once = true;
    } else if (cli.is("--max-seconds")) {
      opt.max_seconds = cli.value_u64();
    } else if (cli.is("--dump-dir")) {
      opt.dump_dir = cli.value();
    } else if (cli.is("--workers")) {
      opt.workers = static_cast<int>(cli.value_u64());
    } else if (cli.is("--state-budget")) {
      opt.state_budget = cli.value_u64();
    } else {
      cli.unknown();
    }
  }

  const apps::QueryInfo info = resolve_query(query_spec, cli);
  try {
    auto prog = apps::compile_app(info.file, info.main);
    const lang::ResourceCertificate cert = lang::certify(prog, info.main);
    const auto workload = load_workload(opt);
    const auto& trace = workload.trace;
    if (trace.empty()) {
      std::cerr << "netqre-monitor: workload is empty\n";
      return 2;
    }
    check_state_budget(cert, workload.expected_keys, opt.state_budget);

    obs::GovernorConfig gcfg;
    gcfg.dump_dir = opt.dump_dir;
    obs::TraceGovernor governor(gcfg);

    std::unique_ptr<core::Engine> engine;
    std::unique_ptr<core::ParallelEngine> parallel;
    if (opt.workers > 0) {
      parallel =
          std::make_unique<core::ParallelEngine>(prog.query, opt.workers);
    } else {
      engine = std::make_unique<core::Engine>(prog.query);
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::atomic<uint64_t> heartbeat_ns{0};
    std::atomic<uint64_t> packets_done{0};
    std::atomic<bool> engine_live{true};
    std::thread engine_thread([&] {
      run_engine(opt, trace, engine.get(), parallel.get(), heartbeat_ns,
                 packets_done, governor);
      engine_live.store(false);
    });

    obs::HttpServer server;
    // Healthy = engine thread running and a heartbeat in the last 5 s
    // (pacing sleeps are bounded well below that).
    obs::register_observability_endpoints(
        server,
        [&] {
          if (!engine_live.load()) return false;
          const uint64_t hb = heartbeat_ns.load(std::memory_order_relaxed);
          if (hb == 0) return true;  // still starting up
          const uint64_t now = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now().time_since_epoch())
                  .count());
          return now - hb < 5'000'000'000ull;
        },
        &governor);
    // The monitor's /statz wraps the registry snapshot together with the
    // query identity and its resource certificate (re-registering the path
    // replaces the default registry-only handler).
    std::string cert_json;
    {
      obs::JsonWriter w;
      lang::certificate_json(cert, w);
      cert_json = w.str();
    }
    server.handle("/statz", [&info, cert_json](const obs::HttpRequest&) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("metrics").raw(obs::registry().snapshot().to_json());
      w.key("query").begin_object();
      w.key("file").value(info.file);
      w.key("main").value(info.main);
      w.key("certificate").raw(cert_json);
      w.end_object();
      w.end_object();
      return obs::HttpResponse::json(w.str());
    });
    server.start(opt.port);
    const std::string workers_note =
        opt.workers > 0 ? ", " + std::to_string(opt.workers) + " workers"
                        : "";
    std::fprintf(stderr,
                 "netqre-monitor: %s (%s : %s) on http://127.0.0.1:%u  "
                 "[%llu-packet workload%s, %llu pps%s]\n",
                 info.title.c_str(), info.file.c_str(), info.main.c_str(),
                 server.port(),
                 static_cast<unsigned long long>(trace.size()),
                 opt.once ? ", one pass" : ", looped",
                 static_cast<unsigned long long>(opt.pps),
                 workers_note.c_str());

    engine_thread.join();
    server.stop();
    std::fprintf(stderr,
                 "netqre-monitor: stopped after %llu packets, %llu dumps, "
                 "%llu http requests\n",
                 static_cast<unsigned long long>(packets_done.load()),
                 static_cast<unsigned long long>(governor.dumps_written()),
                 static_cast<unsigned long long>(server.requests_served()));
  } catch (const std::exception& e) {
    std::cerr << "netqre-monitor: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
