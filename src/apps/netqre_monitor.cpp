// netqre-monitor — a long-running multi-tenant NetQRE monitoring daemon
// with a live observability surface (DESIGN.md "Tracing & live monitoring",
// §7 "Multi-tenant QuerySet runtime").
//
// Runs a QuerySet of compiled queries continuously over a packet source —
// a pcap capture or a generated workload, replayed with pacing and (by
// default) looped so the process behaves like a monitor on live traffic —
// and serves, on 127.0.0.1:<port>:
//
//   /api/v1/metrics  Prometheus text exposition (alias: /metrics)
//   /api/v1/statz    metrics + per-query tier/certificate JSON (/statz)
//   /api/v1/tracez   flight-recorder rings, Chrome trace JSON (/tracez)
//   /api/v1/dump     writes a flight-recorder dump, returns its path
//   /api/v1/queries  GET: per-query status; POST: load a query into the
//                    live set (lint → certify → compile → atomic swap at a
//                    batch boundary, zero packets dropped); DELETE: unload
//   /api/v1/contexts, /api/v1/data, /api/v1/push
//                    the time-series result store: every loaded query is
//                    one context, sampled on a cadence into retention tiers
//   /healthz         200 while the engine thread is alive and progressing
//
// Bare /metrics, /statz, /tracez, /dump remain as deprecated aliases that
// answer with a `Deprecation` header.
//
// Queries share per-batch work (decode once, pooled predicate-atom
// classification) and are isolated by per-query state quotas (--quota)
// with stalest-key eviction, so one tenant's key blowup cannot OOM the
// daemon.  A TraceGovernor polls the registry once a second and snapshots
// the flight recorder to --dump-dir when an anomaly trips.
//
// Deployment shapes (netdata's "distribute the code, not the data"):
// a plain invocation is an *edge* monitor — queryset + local store.  Add
// --stream-to HOST:PORT and every sampling round is also pushed to a
// *parent* started with --parent, which runs no engine at all: it ingests
// pushes under "<source>/<context>" and serves the same /api/v1 surface
// over every child's series.
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM/--max-seconds/--once),
// 2 on usage or I/O problems.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/cli.hpp"
#include "apps/queries.hpp"
#include "apps/queryset_admin.hpp"
#include "lang/certify.hpp"
#include "netqre.hpp"
#include "obs/health.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/series_store.hpp"
#include "store/stream.hpp"
#include "trafficgen/trafficgen.hpp"

#include <unistd.h>

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: netqre-monitor [options]\n"
    "\n"
    "Long-running multi-tenant NetQRE monitor: replays traffic through a\n"
    "set of compiled queries (load/unload at runtime over HTTP) and serves\n"
    "the /api/v1 observability surface on 127.0.0.1.\n"
    "\n"
    "options:\n"
    "  --query FILE[:MAIN]  shipped query to load at startup; repeatable\n"
    "                       (default heavy_hitter.nqre)\n"
    "  --pcap FILE          replay this capture (tolerant mode) instead of\n"
    "                       the generated backbone workload\n"
    "  --packets N          generated workload size (default 100000)\n"
    "  --port P             HTTP port (default 9901; 0 = ephemeral)\n"
    "  --pps N              replay pacing, packets/second (default 250000;\n"
    "                       0 = replay as fast as possible)\n"
    "  --once               stop after one pass over the workload instead\n"
    "                       of looping\n"
    "  --max-seconds N      stop after N seconds (0 = run until signalled)\n"
    "  --dump-dir DIR       flight-recorder dump directory (default \".\")\n"
    "  --workers N          shard the query set across N worker threads\n"
    "                       (default 0 = single-threaded set)\n"
    "  --quota B            default per-query state-memory quota in bytes;\n"
    "                       breaches evict stalest keys (compiled tier) or\n"
    "                       reset the query (interpreted). 0 = unlimited\n"
    "  --state-budget B     warn at startup when a query's certified\n"
    "                       bytes-per-key quota times the expected key\n"
    "                       count exceeds B bytes (default 0 = off)\n"
    "  --store-every MS     result-store sampling cadence in milliseconds\n"
    "                       (default 1000; 0 disables sampling)\n"
    "  --store-keys N       per-context key budget before eviction\n"
    "                       (default 1024)\n"
    "  --stream-to H:P      also push every sampling round to a parent\n"
    "                       monitor at IPv4 host H, port P\n"
    "  --health FILE        load alert rules from FILE (.health stanzas,\n"
    "                       see queries/*.health); the built-in\n"
    "                       self-monitoring alarms load either way\n"
    "  --source NAME        this edge's identity at the parent\n"
    "                       (default edge-<pid>)\n"
    "  --parent             run as an aggregator: no engine, ingest\n"
    "                       POST /api/v1/push and serve the store\n"
    "  -h, --help           show this help\n";

struct Options {
  std::vector<std::string> queries;  // FILE[:MAIN] specs; empty = default
  std::string pcap;
  uint64_t packets = 100'000;
  uint16_t port = 9901;
  uint64_t pps = 250'000;
  bool once = false;
  uint64_t max_seconds = 0;
  std::string dump_dir = ".";
  int workers = 0;
  uint64_t quota = 0;         // default per-query state quota; 0 = unlimited
  uint64_t state_budget = 0;  // bytes; 0 = no budget check
  uint64_t store_every_ms = 1000;  // 0 = store sampling off
  uint32_t store_keys = 1024;
  std::string stream_to;  // "host:port", empty = no streaming
  std::string source;     // identity at the parent; default edge-<pid>
  std::string health;     // .health rule file; empty = builtins only
  bool parent = false;
};

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

apps::QueryInfo resolve_query(const std::string& spec, apps::CliArgs& cli) {
  const size_t colon = spec.find(':');
  const std::string file = spec.substr(0, colon);
  for (const auto& q : apps::table1()) {
    if (q.file != file) continue;
    apps::QueryInfo info = q;
    if (colon != std::string::npos) info.main = spec.substr(colon + 1);
    return info;
  }
  cli.fail("unknown query '" + file + "' (see netqre-profile --list)");
}

struct Workload {
  std::vector<net::Packet> trace;
  // Upper estimate of distinct scope keys the workload can materialize:
  // the generator's flow count, or the packet count for a capture (each
  // packet can introduce at most one new key per scope level).
  uint64_t expected_keys = 0;
};

Workload load_workload(const Options& opt) {
  Workload w;
  if (!opt.pcap.empty()) {
    net::PcapOptions popt;
    popt.tolerant = true;
    net::PacketBatch batch;
    net::read_all(opt.pcap, batch, popt);
    w.trace = std::move(batch).take();
    w.expected_keys = w.trace.size();
    return w;
  }
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = opt.packets;
  cfg.n_flows = static_cast<uint32_t>(
      std::max<uint64_t>(1000, opt.packets / 20));
  w.trace = trafficgen::backbone_trace(cfg);
  w.expected_keys = cfg.n_flows;
  return w;
}

// --state-budget: compares the certificate's bytes-per-key quota, scaled by
// the expected key count and window panes, against the configured budget.
// A warning, not an error: the monitor still starts (the estimate is an
// upper bound), but the operator is told before memory grows, not after.
void check_state_budget(const std::string& name,
                        const lang::ResourceCertificate& cert,
                        uint64_t expected_keys, uint64_t budget) {
  if (budget == 0) return;
  if (!cert.state_bounded) {
    std::fprintf(stderr,
                 "netqre-monitor: warning: --state-budget %llu set but "
                 "query '%s' has no statically bounded per-key state; the "
                 "certificate cannot guarantee any budget\n",
                 static_cast<unsigned long long>(budget), name.c_str());
    return;
  }
  const uint64_t panes = static_cast<uint64_t>(cert.window_instances);
  const uint64_t expected =
      (cert.fixed_bytes + expected_keys * cert.bytes_per_key) * panes;
  if (expected > budget) {
    std::fprintf(
        stderr,
        "netqre-monitor: warning: query '%s' expected state %llu B (%llu "
        "keys x %llu B/key + %llu B fixed, x%llu window panes) exceeds "
        "--state-budget %llu B\n",
        name.c_str(), static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(expected_keys),
        static_cast<unsigned long long>(cert.bytes_per_key),
        static_cast<unsigned long long>(cert.fixed_bytes),
        static_cast<unsigned long long>(panes),
        static_cast<unsigned long long>(budget));
  }
}

uint64_t unix_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Samples every loaded query's result map into its series-store context on
// a cadence and optionally streams each round to a parent monitor.
//
// Threading: with a single-threaded set the snapshot runs on the engine
// thread itself between batches (enumerate on live state is only safe from
// the thread that mutates it).  With a sharded set the snapshot is a
// control visit executed by each shard's own worker (snapshot_all_async);
// `in_flight` keeps at most one round pending so a stalled shard queue
// cannot pile up visits.  Contexts are created lazily, so queries loaded
// over HTTP mid-run get series too.
struct StoreSampler {
  store::SeriesStore* store = nullptr;
  store::StreamClient* client = nullptr;   // null when not streaming
  health::HealthEngine* health = nullptr;  // evaluated after each round
  std::chrono::nanoseconds every{1'000'000'000};
  Clock::time_point next_sample{};  // default: sample on the first call
  std::atomic<bool> in_flight{false};

  using Round =
      std::vector<std::pair<std::string, std::vector<core::ResultSample>>>;

  void ingest_round(uint64_t t_ns, const Round& round) {
    for (const auto& [query, results] : round) {
      std::vector<store::Sample> samples;
      samples.reserve(results.size());
      for (const auto& r : results) samples.push_back({r.key, r.value});
      store->ingest(store->context(query), t_ns, samples);
      if (client) client->push(query, t_ns, samples);
    }
    // Evaluate right after ingest, so an alert fires on the round that
    // crossed the threshold — and so the golden replay's transition log
    // depends only on the ingested data, never on wall-clock cadence
    // (store windows anchor on the latest ingested sample).
    if (health) health->evaluate(t_ns);
  }

  void maybe_sample(core::QuerySet* set, core::ParallelQuerySet* parallel) {
    const auto now = Clock::now();
    if (now < next_sample) return;
    next_sample = now + every;
    sample(set, parallel);
  }

  void sample(core::QuerySet* set, core::ParallelQuerySet* parallel) {
    const uint64_t t_ns = unix_now_ns();
    if (set) {
      Round round;
      set->snapshot_all(round);
      ingest_round(t_ns, round);
      return;
    }
    if (in_flight.exchange(true)) return;  // previous round still collecting
    parallel->snapshot_all_async([this, t_ns](Round round) {
      ingest_round(t_ns, round);
      in_flight.store(false);
    });
  }
};

// Replays `trace` through the query set until stopped: batched, paced to
// --pps, looping unless --once.  Updates the heartbeat every batch so
// /healthz notices a wedged engine, polls the governor about once a second
// (also refreshing the per-query state gauges), and samples the result
// store on its cadence.
void run_engine(const Options& opt, const std::vector<net::Packet>& trace,
                core::QuerySet* set, core::ParallelQuerySet* parallel,
                std::atomic<uint64_t>& heartbeat_ns,
                std::atomic<uint64_t>& packets_done,
                obs::TraceGovernor& governor, StoreSampler* sampler,
                health::HealthEngine* health) {
  obs::tracer().set_thread_name("engine");
  const auto start = Clock::now();
  auto next_governor_poll = start + std::chrono::seconds(1);
  const auto deadline =
      opt.max_seconds ? start + std::chrono::seconds(opt.max_seconds)
                      : Clock::time_point::max();
  uint64_t replayed = 0;  // packets replayed across all passes
  net::PacketBatch batch(kDefaultBatch);

  while (!g_stop.load(std::memory_order_relaxed)) {
    net::VectorSource source(trace);
    while (source.fill(batch, kDefaultBatch) > 0) {
      const size_t n = batch.size();
      if (parallel) {
        parallel->feed(std::move(batch));  // leaves `batch` empty, reusable
      } else {
        set->on_batch(batch.packets());
      }
      replayed += n;
      packets_done.store(replayed, std::memory_order_relaxed);

      const auto now = Clock::now();
      heartbeat_ns.store(
          static_cast<uint64_t>(std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(
                                    now.time_since_epoch())
                                    .count()),
          std::memory_order_relaxed);
      if (now >= next_governor_poll) {
        if (auto path = governor.poll()) {
          std::fprintf(stderr, "netqre-monitor: anomaly dump written: %s\n",
                       path->c_str());
        }
        if (set) set->sample_state_metrics();
        // Metric rules (the self-monitoring alarms) re-evaluate on the
        // governor cadence too, so they fire even when store sampling is
        // off or slow.  Store-rule windows anchor on ingested data, so
        // the extra evaluations are idempotent for them.
        if (health) health->evaluate(unix_now_ns());
        next_governor_poll = now + std::chrono::seconds(1);
      }
      if (sampler) sampler->maybe_sample(set, parallel);
      if (g_stop.load(std::memory_order_relaxed) || now >= deadline) {
        g_stop.store(true);
        break;
      }
      // Pacing: sleep until the replayed-packet count matches --pps.
      if (opt.pps > 0) {
        const auto due =
            start + std::chrono::nanoseconds(
                        replayed * 1'000'000'000ull / opt.pps);
        if (due > Clock::now()) std::this_thread::sleep_until(due);
      }
    }
    if (opt.once) {
      g_stop.store(true);
      break;
    }
  }
  if (parallel) parallel->finish();
  // Final round after the replay drains, so a short --once run still leaves
  // its end state in the store (post-finish() the visit is synchronous).
  if (sampler) sampler->sample(set, parallel);
}

// --parent: aggregator mode.  No query, no engine — just the HTTP surface
// with the store's endpoints; children POST sampling rounds to
// /api/v1/push and range queries over "<source>/<context>" come back out
// of /api/v1/data.
int run_parent(const Options& opt) {
  store::StoreConfig scfg;
  scfg.max_keys = opt.store_keys;
  if (opt.store_every_ms > 0) {
    scfg.update_every_ns = opt.store_every_ms * 1'000'000ull;
  }
  store::SeriesStore store(scfg);
  // Fleet alert view: ALERT lines arriving on the push feed land here,
  // grouped by source, and come back out of /api/v1/alerts.
  health::FleetAlertView alerts;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  obs::HttpServer server;
  obs::register_observability_endpoints(
      server, [] { return true; }, nullptr);
  store::register_store_endpoints(
      server, store,
      [&alerts](std::string_view source, const store::AlertLine& line) {
        alerts.ingest(source, line);
      });
  health::register_fleet_alert_endpoints(server, alerts);
  server.start(opt.port);
  std::fprintf(stderr,
               "netqre-monitor: parent aggregator on http://127.0.0.1:%u  "
               "[%u-key budget per context]\n",
               server.port(), scfg.max_keys);

  const auto deadline =
      opt.max_seconds ? Clock::now() + std::chrono::seconds(opt.max_seconds)
                      : Clock::time_point::max();
  while (!g_stop.load(std::memory_order_relaxed) && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  std::fprintf(stderr,
               "netqre-monitor: parent stopped after %llu http requests, "
               "%llu resident store bytes\n",
               static_cast<unsigned long long>(server.requests_served()),
               static_cast<unsigned long long>(store.resident_bytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  apps::CliArgs cli(argc, argv, "netqre-monitor", kUsage);
  while (cli.next()) {
    if (cli.is("--query")) {
      opt.queries.push_back(cli.value());
    } else if (cli.is("--pcap")) {
      opt.pcap = cli.value();
    } else if (cli.is("--packets")) {
      opt.packets = cli.value_u64();
    } else if (cli.is("--port")) {
      opt.port = static_cast<uint16_t>(cli.value_u64());
    } else if (cli.is("--pps")) {
      opt.pps = cli.value_u64();
    } else if (cli.is("--once")) {
      opt.once = true;
    } else if (cli.is("--max-seconds")) {
      opt.max_seconds = cli.value_u64();
    } else if (cli.is("--dump-dir")) {
      opt.dump_dir = cli.value();
    } else if (cli.is("--workers")) {
      opt.workers = static_cast<int>(cli.value_u64());
    } else if (cli.is("--quota")) {
      opt.quota = cli.value_u64();
    } else if (cli.is("--state-budget")) {
      opt.state_budget = cli.value_u64();
    } else if (cli.is("--store-every")) {
      opt.store_every_ms = cli.value_u64();
    } else if (cli.is("--store-keys")) {
      opt.store_keys = static_cast<uint32_t>(cli.value_u64());
    } else if (cli.is("--stream-to")) {
      opt.stream_to = cli.value();
    } else if (cli.is("--source")) {
      opt.source = cli.value();
    } else if (cli.is("--health")) {
      opt.health = cli.value();
    } else if (cli.is("--parent")) {
      opt.parent = true;
    } else {
      cli.unknown();
    }
  }

  if (opt.parent) return run_parent(opt);
  if (opt.source.empty()) {
    opt.source = "edge-" + std::to_string(::getpid());
  }
  if (opt.queries.empty()) opt.queries.push_back("heavy_hitter.nqre");

  // Resolve the startup specs before doing any heavy work, so a typo'd
  // query name fails fast with a usage error.
  std::vector<apps::QueryInfo> infos;
  infos.reserve(opt.queries.size());
  for (const auto& spec : opt.queries) {
    infos.push_back(resolve_query(spec, cli));
  }

  try {
    const auto workload = load_workload(opt);
    const auto& trace = workload.trace;
    if (trace.empty()) {
      std::cerr << "netqre-monitor: workload is empty\n";
      return 2;
    }

    obs::GovernorConfig gcfg;
    gcfg.dump_dir = opt.dump_dir;
    obs::TraceGovernor governor(gcfg);

    std::unique_ptr<core::QuerySet> set;
    std::unique_ptr<core::ParallelQuerySet> parallel;
    if (opt.workers > 0) {
      parallel = std::make_unique<core::ParallelQuerySet>(opt.workers,
                                                          opt.quota);
    } else {
      set = std::make_unique<core::QuerySet>(opt.quota);
    }

    // Result store: every loaded query is one context, named by the query.
    store::StoreConfig scfg;
    scfg.max_keys = opt.store_keys;
    if (opt.store_every_ms > 0) {
      scfg.update_every_ns = opt.store_every_ms * 1'000'000ull;
    }
    store::SeriesStore store(scfg);
    std::unique_ptr<store::StreamClient> stream_client;
    if (!opt.stream_to.empty()) {
      const size_t colon = opt.stream_to.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "netqre-monitor: --stream-to needs HOST:PORT\n";
        return 2;
      }
      store::StreamClient::Config ccfg;
      ccfg.host = opt.stream_to.substr(0, colon);
      ccfg.port = static_cast<uint16_t>(
          std::strtoul(opt.stream_to.c_str() + colon + 1, nullptr, 10));
      ccfg.source = opt.source;
      stream_client = std::make_unique<store::StreamClient>(ccfg);
    }

    apps::QuerySetRuntime runtime;
    runtime.set = set.get();
    runtime.parallel = parallel.get();
    runtime.store = &store;
    runtime.default_quota = opt.quota;

    // Initial loads go through the same lint → certify → compile → swap
    // chain as POST /api/v1/queries.  The query name is its file name
    // (matching the admin surface's default).
    for (const auto& info : infos) {
      const apps::LoadOutcome out = apps::load_query(
          runtime, info.file, info.file, info.main, "", 0);
      if (out.status != 200) {
        std::cerr << "netqre-monitor: --query " << info.file << ": "
                  << out.error << "\n";
        return 2;
      }
      // Certificate-based budget warning, as before, per query.
      const auto prog = apps::compile_app(info.file, info.main);
      check_state_budget(info.file, lang::certify(prog, info.main),
                         workload.expected_keys, opt.state_budget);
    }

    // Health engine: the built-in self-monitoring alarms always load;
    // --health adds the operator's rules on top.  CRITICAL transitions
    // correlate a flight-recorder dump via the governor, and every
    // transition streams to the parent when --stream-to is set.
    health::HealthEngine healthd(&store, &governor);
    healthd.add_rules(health::builtin_rules());
    if (!opt.health.empty()) {
      std::ifstream in(opt.health);
      if (!in) {
        std::cerr << "netqre-monitor: --health: cannot open " << opt.health
                  << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      health::ParseResult parsed = health::parse_health_rules(buf.str());
      if (!parsed.error.empty()) {
        std::cerr << "netqre-monitor: --health " << opt.health << ": "
                  << parsed.error << "\n";
        return 2;
      }
      healthd.add_rules(std::move(parsed.rules));
    }
    if (stream_client) {
      store::StreamClient* sc = stream_client.get();
      healthd.set_transition_hook([sc](const health::AlertTransition& tr) {
        store::AlertLine line;
        line.t_ns = tr.t_ns;
        line.seq = tr.seq;
        line.rule = tr.rule;
        line.from = health::alert_status_name(tr.from);
        line.to = health::alert_status_name(tr.to);
        line.value = tr.value;
        line.key = tr.key;
        sc->push_alert(line);
      });
    }

    StoreSampler sampler;
    sampler.store = &store;
    sampler.client = stream_client.get();
    sampler.health = &healthd;
    sampler.every =
        std::chrono::nanoseconds(opt.store_every_ms * 1'000'000ull);
    StoreSampler* sampler_ptr = opt.store_every_ms > 0 ? &sampler : nullptr;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::atomic<uint64_t> heartbeat_ns{0};
    std::atomic<uint64_t> packets_done{0};
    std::atomic<bool> engine_live{true};
    std::thread engine_thread([&] {
      run_engine(opt, trace, set.get(), parallel.get(), heartbeat_ns,
                 packets_done, governor, sampler_ptr, &healthd);
      engine_live.store(false);
    });

    obs::HttpServer server;
    // Healthy = engine thread running and a heartbeat in the last 5 s
    // (pacing sleeps are bounded well below that).
    obs::register_observability_endpoints(
        server,
        [&] {
          if (!engine_live.load()) return false;
          const uint64_t hb = heartbeat_ns.load(std::memory_order_relaxed);
          if (hb == 0) return true;  // still starting up
          const uint64_t now = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now().time_since_epoch())
                  .count());
          return now - hb < 5'000'000'000ull;
        },
        &governor);
    store::register_store_endpoints(server, store);
    health::register_health_endpoints(server, healthd);
    // Queries admin API + the extended statz (metrics + per-query tier and
    // certificate sections).
    apps::register_queryset_admin(server, runtime);
    server.start(opt.port);
    const std::string workers_note =
        opt.workers > 0 ? ", " + std::to_string(opt.workers) + " workers"
                        : "";
    std::fprintf(stderr,
                 "netqre-monitor: %zu quer%s on http://127.0.0.1:%u  "
                 "[%llu-packet workload%s, %llu pps%s]\n",
                 infos.size(), infos.size() == 1 ? "y" : "ies",
                 server.port(),
                 static_cast<unsigned long long>(trace.size()),
                 opt.once ? ", one pass" : ", looped",
                 static_cast<unsigned long long>(opt.pps),
                 workers_note.c_str());

    engine_thread.join();
    if (stream_client) stream_client->stop();  // flush queued rounds
    server.stop();
    std::fprintf(stderr,
                 "netqre-monitor: stopped after %llu packets, %llu dumps, "
                 "%llu http requests\n",
                 static_cast<unsigned long long>(packets_done.load()),
                 static_cast<unsigned long long>(governor.dumps_written()),
                 static_cast<unsigned long long>(server.requests_served()));
    {
      const auto counts = healthd.counts();
      std::fprintf(
          stderr,
          "netqre-monitor: health: %llu transitions (%llu suppressed), "
          "%zu warning, %zu critical\n",
          static_cast<unsigned long long>(healthd.transitions_total()),
          static_cast<unsigned long long>(healthd.suppressed_total()),
          counts.warning, counts.critical);
      // The stable transition log ("#<seq> ..." lines, no timestamps) —
      // CI diffs these lines across golden replays.
      std::fputs(healthd.log_text().c_str(), stderr);
    }
    if (stream_client) {
      std::fprintf(
          stderr,
          "netqre-monitor: streamed %llu rounds to %s (%llu dropped, "
          "%llu push failures)\n",
          static_cast<unsigned long long>(stream_client->rounds_sent()),
          opt.stream_to.c_str(),
          static_cast<unsigned long long>(stream_client->rounds_dropped()),
          static_cast<unsigned long long>(stream_client->push_failures()));
    }
  } catch (const std::exception& e) {
    std::cerr << "netqre-monitor: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
