// Shared command-line scanning for the netqre-* tools.
//
// netqre-lint, netqre-profile and netqre-fuzz present the same conventions
// (-h/--help prints usage and exits 0; a flag missing its value, a malformed
// number, or an unknown option prints a "tool: ..." diagnostic and exits 2;
// --json/--seed/trace-path flags spell and behave identically).  Each tool
// used to hand-roll that loop; CliArgs is the one implementation.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace netqre::apps {

class CliArgs {
 public:
  CliArgs(int argc, char** argv, std::string tool, const char* usage)
      : argc_(argc), argv_(argv), tool_(std::move(tool)), usage_(usage) {}

  // Advances to the next argument; false when exhausted.  Handles
  // -h/--help itself (prints usage, exits 0).
  bool next() {
    if (++i_ >= argc_) return false;
    arg_ = argv_[i_];
    if (arg_ == "-h" || arg_ == "--help") {
      std::cout << usage_;
      std::exit(0);
    }
    return true;
  }

  [[nodiscard]] const std::string& arg() const { return arg_; }

  // True (and consumes nothing further) when the current argument is the
  // given flag name.
  [[nodiscard]] bool is(const char* name) const { return arg_ == name; }

  // The current flag's value argument; exits 2 when it is missing.
  const char* value() {
    if (i_ + 1 >= argc_) fail(arg_ + " needs a value");
    return argv_[++i_];
  }

  // The current flag's value parsed as an unsigned integer; exits 2 on a
  // malformed number.
  uint64_t value_u64() {
    const char* s = value();
    char* end = nullptr;
    const uint64_t out = std::strtoull(s, &end, 10);
    if (!end || *end != '\0') fail("bad " + arg_);
    return out;
  }

  // Unknown-option diagnostic: prints usage too, exits 2.
  [[noreturn]] void unknown() {
    std::cerr << tool_ << ": unknown option '" << arg_ << "'\n" << usage_;
    std::exit(2);
  }

  // Any other usage error ("tool: msg"), exits 2.
  [[noreturn]] void fail(const std::string& msg) {
    std::cerr << tool_ << ": " << msg << '\n';
    std::exit(2);
  }

 private:
  int argc_;
  char** argv_;
  std::string tool_;
  const char* usage_;
  int i_ = 0;
  std::string arg_;
};

}  // namespace netqre::apps
