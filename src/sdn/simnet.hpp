// Discrete-event SDN emulation substrate (§7.3).
//
// Stand-in for the paper's Mininet + POX testbed (DESIGN.md §3): hosts send
// pre-generated packet streams through one OpenFlow-style switch with a
// bandwidth-limited server link, a flow table whose drop rules the
// controller installs at runtime, and a SPAN mirror port feeding a NetQRE
// runtime.  Detection → alert → rule-install → traffic-drop causality and
// timing are preserved; queueing is modeled with a token bucket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace netqre::sdn {

// Per-interval received throughput, the series Fig. 9 plots.
struct BandwidthSeries {
  double interval = 0.5;  // seconds per bucket
  // series[name][bucket] = Mbps received at the server from `name`.
  std::map<std::string, std::vector<double>> mbps;

  void record(const std::string& name, double ts, uint32_t bytes);
  [[nodiscard]] size_t buckets() const;
};

// A monitoring attachment: sees mirrored packets, may ask the controller to
// block a source.  `mirror(p)` returns an optional source IP to block.
using MirrorFn = std::function<void(const net::Packet& p, double now)>;

class Switch {
 public:
  // `server_ip`: packets destined there traverse the rate-limited link.
  Switch(uint32_t server_ip, double link_mbps)
      : server_ip_(server_ip), rate_bps_(link_mbps * 1e6) {}

  void set_mirror(MirrorFn fn) { mirror_ = std::move(fn); }

  // Installs a drop rule for `src` at time `when` (rules take effect for
  // packets processed after `when`).
  void install_drop(uint32_t src, double when);

  // Processes one packet (packets must arrive in time order).  Returns true
  // if it was delivered to the server.
  bool process(const net::Packet& p);

  [[nodiscard]] const BandwidthSeries& delivered() const { return series_; }
  [[nodiscard]] BandwidthSeries& delivered() { return series_; }
  [[nodiscard]] uint64_t dropped_by_rule() const { return dropped_rule_; }
  [[nodiscard]] uint64_t dropped_by_queue() const { return dropped_queue_; }

  // Byte counters per source, the `stats` alternative's poll target (§7.3).
  [[nodiscard]] const std::map<uint32_t, uint64_t>& flow_bytes() const {
    return flow_bytes_;
  }

 private:
  uint32_t server_ip_;
  double rate_bps_;
  // Token bucket for the server link.
  double tokens_ = 0;
  double last_refill_ = -1;
  static constexpr double kBurstSeconds = 0.02;

  std::map<uint32_t, double> drop_rules_;  // src -> install time
  MirrorFn mirror_;
  BandwidthSeries series_;
  std::map<uint32_t, uint64_t> flow_bytes_;
  uint64_t dropped_rule_ = 0;
  uint64_t dropped_queue_ = 0;
};

// Controller latencies, modeled after a local POX deployment.
struct ControllerTiming {
  double alert_latency = 0.020;   // runtime alert -> controller
  double install_latency = 0.030; // controller -> switch rule installed
};

// Merges independently generated host streams into one time-ordered stream.
std::vector<net::Packet> merge_streams(
    std::vector<std::vector<net::Packet>> streams);

}  // namespace netqre::sdn
