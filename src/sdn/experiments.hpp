// The three end-to-end enforcement experiments of §7.3 (Fig. 9), run on the
// emulated SDN substrate: detection by a NetQRE runtime on a mirror port,
// alert to the controller, drop-rule installation, and the resulting server
// bandwidth over time.
#pragma once

#include <string>
#include <vector>

#include "sdn/simnet.hpp"

namespace netqre::sdn {

struct E2EResult {
  std::string mode;        // "netqre", "forward", "stats"
  BandwidthSeries series;  // server-side received bandwidth
  double detect_time = -1;
  double block_time = -1;
  uint64_t controller_bytes = 0;  // monitoring traffic sent to controller
  uint64_t dropped_by_rule = 0;
};

// Fig. 9a: C1 sends 1 Mbps iperf; C2 starts a SYN flood at t=7 s; the
// NetQRE SYN-flood program (recent 5 s window) detects and blocks C2.
E2EResult run_synflood_experiment();

// Fig. 9b: heavy-hitter mitigation over a 5 s sliding window, comparing the
// in-network NetQRE tap against forwarding all packets to the controller
// ("forward") and polling switch counters every 1 s ("stats").
std::vector<E2EResult> run_heavyhitter_experiment();

// Fig. 9c: a 5 Mbps VoIP call is blocked once the caller's media usage
// exceeds 18.75 MB; iperf background traffic shares the link.
E2EResult run_voip_experiment();

// Renders a result as aligned text columns (time, per-host Mbps) for the
// bench output.
std::string format_series(const E2EResult& result);

}  // namespace netqre::sdn
