#include "sdn/experiments.hpp"

#include <sstream>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/window.hpp"
#include "lang/lower.hpp"
#include "net/ipv4.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre::sdn {
namespace {

using core::Engine;
using core::SlidingWindow;
using core::Value;

constexpr uint32_t kServer = 0x0a000001;  // 10.0.0.1
constexpr uint32_t kClient1 = 0x0a000002; // 10.0.0.2
constexpr uint32_t kClient2 = 0x0a000063; // 10.0.0.99
constexpr double kLinkMbps = 100.0;

const ControllerTiming kTiming;

}  // namespace

// ----------------------------------------------------------- Fig. 9a

E2EResult run_synflood_experiment() {
  // Traffic: C1 iperf at 1 Mbps for 20 s; C2 floods from t=7 with half-open
  // handshakes plus volumetric junk data.
  auto background = trafficgen::iperf_trace(kClient1, kServer, 0.0, 20.0, 1.0);

  trafficgen::SynFloodConfig flood;
  flood.benign_handshakes = 0;
  flood.attack_handshakes = 600;
  flood.attacker_ip = kClient2;
  flood.server_ip = kServer;
  flood.start_ts = 7.0;
  flood.duration = 13.0;
  auto attack = trafficgen::syn_flood_trace(flood);
  // The flood also carries volume, so its bandwidth shows in the plot.
  auto attack_volume =
      trafficgen::iperf_trace(kClient2, kServer, 7.0, 13.0, 30.0);

  auto stream = merge_streams(
      {std::move(background), std::move(attack), std::move(attack_volume)});

  // Monitoring: per-source incomplete-handshake count over recent(5).
  auto prog = lang::compile_source(
      apps::load_source("syn_flood.nqre") +
          "sfun int incomplete_per_src(IP a) = "
          "filter(srcip == a || dstip == a) >> incomplete_handshake_num;",
      "incomplete_per_src");
  SlidingWindow window(prog.query, 5.0, 4);

  E2EResult result;
  result.mode = "netqre";
  Switch sw(kServer, kLinkMbps);
  constexpr int64_t kThreshold = 50;

  sw.set_mirror([&](const net::Packet& p, double now) {
    if (!p.is_tcp()) return;
    window.on_packet(p);
    if (result.detect_time >= 0) return;
    if (p.src_ip == kServer) return;  // the protected server is whitelisted
    Value v = window.eval_at({Value::ip(p.src_ip)});
    if (v.defined() && v.as_int() > kThreshold) {
      result.detect_time = now + kTiming.alert_latency;
      result.block_time = result.detect_time + kTiming.install_latency;
      sw.install_drop(p.src_ip, result.block_time);
    }
  });

  for (const auto& p : stream) sw.process(p);
  result.series = sw.delivered();
  result.dropped_by_rule = sw.dropped_by_rule();
  return result;
}

// ----------------------------------------------------------- Fig. 9b

namespace {

std::vector<net::Packet> heavyhitter_traffic() {
  auto normal = trafficgen::iperf_trace(kClient1, kServer, 0.0, 25.0, 1.0);
  auto heavy = trafficgen::iperf_trace(kClient2, kServer, 5.0, 20.0, 80.0);
  return merge_streams({std::move(normal), std::move(heavy)});
}

constexpr double kHHWindow = 5.0;
// Threshold: 25 Mbps sustained over the window, in bytes.
constexpr double kHHBytesThreshold = 25.0 * 1e6 / 8.0 * kHHWindow;

lang::CompiledProgram hh_program() {
  return apps::compile_app("heavy_hitter.nqre", "hh");
}

}  // namespace

std::vector<E2EResult> run_heavyhitter_experiment() {
  std::vector<E2EResult> results;
  const auto stream = heavyhitter_traffic();

  // --- netqre: tap at the switch, per-packet detection -------------------
  {
    E2EResult r;
    r.mode = "netqre";
    Switch sw(kServer, kLinkMbps);
    SlidingWindow window(hh_program().query, kHHWindow, 4);
    sw.set_mirror([&](const net::Packet& p, double now) {
      window.on_packet(p);
      if (r.detect_time >= 0) return;
      Value v = window.eval_at({Value::ip(p.src_ip), Value::ip(p.dst_ip)});
      if (v.defined() &&
          v.as_double() > kHHBytesThreshold) {
        r.detect_time = now + kTiming.alert_latency;
        r.block_time = r.detect_time + kTiming.install_latency;
        sw.install_drop(p.src_ip, r.block_time);
        // Only the alert crosses the control channel.
        r.controller_bytes += 64;
      }
    });
    for (const auto& p : stream) sw.process(p);
    r.series = sw.delivered();
    r.dropped_by_rule = sw.dropped_by_rule();
    results.push_back(std::move(r));
  }

  // --- forward: every packet crosses a 10 Mbps control channel -----------
  {
    E2EResult r;
    r.mode = "forward";
    Switch sw(kServer, kLinkMbps);
    SlidingWindow window(hh_program().query, kHHWindow, 4);
    constexpr double kCtrlBps = 10.0 * 1e6 / 8.0;  // bytes/sec
    double ctrl_free_at = 0;
    sw.set_mirror([&](const net::Packet& p, double now) {
      // Serialization onto the control channel delays when the controller
      // sees the packet (deep buffer: everything is eventually delivered,
      // just late — the scalability failure the paper attributes to the
      // forward-to-controller design).
      const double tx = p.wire_len / kCtrlBps;
      ctrl_free_at = std::max(ctrl_free_at, now) + tx;
      r.controller_bytes += p.wire_len;
      const double seen = ctrl_free_at;
      window.on_packet(p);
      if (r.detect_time >= 0) return;
      Value v = window.eval_at({Value::ip(p.src_ip), Value::ip(p.dst_ip)});
      if (v.defined() && v.as_double() > kHHBytesThreshold) {
        r.detect_time = seen + kTiming.alert_latency;
        r.block_time = r.detect_time + kTiming.install_latency;
        sw.install_drop(p.src_ip, r.block_time);
      }
    });
    for (const auto& p : stream) sw.process(p);
    r.series = sw.delivered();
    r.dropped_by_rule = sw.dropped_by_rule();
    results.push_back(std::move(r));
  }

  // --- stats: poll switch byte counters every second ----------------------
  {
    E2EResult r;
    r.mode = "stats";
    Switch sw(kServer, kLinkMbps);
    double next_poll = 1.0;
    // Sliding 5 s window over polled cumulative counters.
    std::map<uint32_t, std::vector<std::pair<double, uint64_t>>> history;
    // The poll is evaluated lazily when packet time passes the poll time.
    sw.set_mirror([&](const net::Packet&, double now) {
      while (now >= next_poll) {
        for (const auto& [src, bytes] : sw.flow_bytes()) {
          auto& h = history[src];
          h.emplace_back(next_poll, bytes);
          r.controller_bytes += 24;  // counter record in the poll reply
          if (r.detect_time < 0) {
            // Bytes within the trailing 5 s window.
            uint64_t old = 0;
            for (const auto& [t, b] : h) {
              if (t <= next_poll - kHHWindow) old = b;
            }
            if (bytes - old > kHHBytesThreshold) {
              r.detect_time = next_poll + kTiming.alert_latency;
              r.block_time = r.detect_time + kTiming.install_latency;
              sw.install_drop(src, r.block_time);
            }
          }
        }
        r.controller_bytes += 64;  // the poll request itself
        next_poll += 1.0;
      }
    });
    for (const auto& p : stream) sw.process(p);
    r.series = sw.delivered();
    r.dropped_by_rule = sw.dropped_by_rule();
    results.push_back(std::move(r));
  }
  return results;
}

// ----------------------------------------------------------- Fig. 9c

E2EResult run_voip_experiment() {
  // One long 5 Mbps call from C2 (SIP signalling + RTP), iperf background
  // from C1.  Policy: block the caller once media usage exceeds 18.75 MB
  // (~30 s at 5 Mbps).
  constexpr double kQuotaBytes = 18.75 * 1024 * 1024;
  constexpr double kCallMbps = 5.0;
  constexpr double kDuration = 60.0;

  std::vector<net::Packet> call;
  {
    // SIP dialog: INVITE / 200 / ACK, then constant-rate RTP, no BYE (the
    // call would run past the capture if not blocked).
    trafficgen::SipConfig sip;
    sip.n_users = 1;
    sip.n_calls = 1;
    sip.media_pkts_per_call = 0;
    auto dialog = trafficgen::sip_trace(sip);
    for (auto& p : dialog) {
      p.src_ip = p.src_ip == 0x0a010000 ? kClient2 : kServer;
      p.dst_ip = p.dst_ip == 0x0a010000 ? kClient2 : kServer;
      call.push_back(std::move(p));
    }
    auto media =
        trafficgen::iperf_trace(kClient2, kServer, 0.1, kDuration, kCallMbps,
                                16384);
    for (auto& p : media) {
      p.proto = net::Proto::Udp;
      p.tcp_flags = 0;
      call.push_back(std::move(p));
    }
  }
  auto background = trafficgen::iperf_trace(kClient1, kServer, 0.0, kDuration,
                                            2.0);
  auto stream = merge_streams({std::move(call), std::move(background)});

  // Live per-caller media usage in NetQRE (the phase-split usage program is
  // validated offline in the tests; enforcement needs a mid-call value).
  auto prog = lang::compile_source(
      "sfun int live_usage(IP x) = "
      "filter(srcip == x, proto == 17, dstport >= 16384) >> count_size;",
      "live_usage");
  Engine engine(prog.query);

  E2EResult result;
  result.mode = "netqre";
  Switch sw(kServer, kLinkMbps);
  sw.set_mirror([&](const net::Packet& p, double now) {
    if (!p.is_udp()) return;
    engine.on_packet(p);
    if (result.detect_time >= 0) return;
    Value v = engine.eval_at({Value::ip(p.src_ip)});
    if (v.defined() && v.as_double() > kQuotaBytes) {
      result.detect_time = now + kTiming.alert_latency;
      result.block_time = result.detect_time + kTiming.install_latency;
      sw.install_drop(p.src_ip, result.block_time);
    }
  });
  for (const auto& p : stream) sw.process(p);
  result.series = sw.delivered();
  result.dropped_by_rule = sw.dropped_by_rule();
  return result;
}

// ------------------------------------------------------------- rendering

std::string format_series(const E2EResult& result) {
  std::ostringstream out;
  out << "mode=" << result.mode;
  if (result.detect_time >= 0) {
    out << "  detect=" << result.detect_time
        << "s  block=" << result.block_time << "s";
  } else {
    out << "  (no detection)";
  }
  out << "  controller_bytes=" << result.controller_bytes
      << "  dropped_by_rule=" << result.dropped_by_rule << "\n";
  out << "  t(s)";
  for (const auto& [name, v] : result.series.mbps) out << "  " << name;
  out << "\n";
  const size_t n = result.series.buckets();
  for (size_t b = 0; b < n; ++b) {
    out << "  " << static_cast<double>(b) * result.series.interval;
    for (const auto& [name, v] : result.series.mbps) {
      out << "  " << (b < v.size() ? v[b] : 0.0);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace netqre::sdn
