#include "sdn/simnet.hpp"

#include <algorithm>

#include "net/ipv4.hpp"

namespace netqre::sdn {

void BandwidthSeries::record(const std::string& name, double ts,
                             uint32_t bytes) {
  auto& v = mbps[name];
  const auto bucket = static_cast<size_t>(ts / interval);
  if (v.size() <= bucket) v.resize(bucket + 1, 0.0);
  v[bucket] += static_cast<double>(bytes) * 8.0 / 1e6 / interval;
}

size_t BandwidthSeries::buckets() const {
  size_t n = 0;
  for (const auto& [name, v] : mbps) n = std::max(n, v.size());
  return n;
}

void Switch::install_drop(uint32_t src, double when) {
  auto it = drop_rules_.find(src);
  if (it == drop_rules_.end() || it->second > when) {
    drop_rules_[src] = when;
  }
}

bool Switch::process(const net::Packet& p) {
  // Mirror before any rule/queue handling: the SPAN port sees the ingress.
  if (mirror_) mirror_(p, p.ts);

  if (auto it = drop_rules_.find(p.src_ip);
      it != drop_rules_.end() && p.ts >= it->second) {
    ++dropped_rule_;
    return false;
  }
  if (p.dst_ip != server_ip_) return true;  // not on the measured link

  // Token bucket refill (starts full: an idle link has its burst available).
  if (last_refill_ < 0) {
    last_refill_ = p.ts;
    tokens_ = rate_bps_ / 8.0 * kBurstSeconds;
  }
  tokens_ = std::min(tokens_ + (p.ts - last_refill_) * rate_bps_ / 8.0,
                     rate_bps_ / 8.0 * kBurstSeconds);
  last_refill_ = p.ts;
  if (tokens_ < p.wire_len) {
    ++dropped_queue_;
    return false;
  }
  tokens_ -= p.wire_len;
  flow_bytes_[p.src_ip] += p.wire_len;
  series_.record(net::format_ip(p.src_ip), p.ts, p.wire_len);
  return true;
}

std::vector<net::Packet> merge_streams(
    std::vector<std::vector<net::Packet>> streams) {
  std::vector<net::Packet> out;
  size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  for (auto& s : streams) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  std::ranges::stable_sort(out, {}, &net::Packet::ts);
  return out;
}

}  // namespace netqre::sdn
