// NetQRE embedding facade — the one header an embedding application needs.
//
// The pipeline it exposes, end to end:
//
//   source text ── lang::compile_source ──► lang::CompiledProgram
//                                                │ .query
//                                                ▼
//   capture ── net::MappedPcapReader::fill ──► net::PacketBatch
//                                                │
//       core::QuerySet::on_batch  /  core::ParallelQuerySet::feed
//                                                │
//       eval() / enumerate() / snapshot_all() ──► core::Value results
//
// The primary embedding shape is a QuerySet: N compiled queries sharing
// each batch's decode and predicate-atom classification, loadable and
// unloadable while packets flow (see README "Embedding"):
//
//   netqre::QuerySet set;
//   set.load("hh", netqre::compile(hh_source, "hh").query);
//   set.load("ss", netqre::compile(ss_source, "ss").query);
//   netqre::run_pcap(set, "trace.pcap");
//   set.enumerate("hh", [](auto key, const auto& v) { ... });
//
// A single-query embedding can still hold a bare core::Engine; the Engine
// overloads below remain supported.
//
// Everything reachable from here is the supported surface; headers under
// src/core, src/lang and src/net remain includable but are internal layout.
#pragma once

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "core/queryset.hpp"
#include "core/window.hpp"
#include "lang/analysis.hpp"
#include "lang/lower.hpp"
#include "net/packet_view.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "obs/json.hpp"

namespace netqre {

// The embedding-facing names, re-exported at namespace scope.
using core::Engine;
using core::ParallelEngine;
using core::ParallelQuerySet;
using core::QuerySet;
using core::QueryStatus;
using core::TumblingWindow;
using core::Value;
using lang::CompiledProgram;
using net::MappedPcapReader;
using net::PacketBatch;
using net::PacketSource;
using net::PacketView;
using net::PcapOptions;

// Default number of packets per ingestion batch: large enough to amortize
// per-batch work (telemetry, dispatch), small enough to stay cache-warm.
inline constexpr size_t kDefaultBatch = 1024;

// Parses `source` (plus the prelude) and compiles the stream function
// `main`.  Throws lang::LowerError / lang::ParseError with a structured
// diagnostic on bad input.
inline lang::CompiledProgram compile(const std::string& source,
                                     const std::string& main) {
  return lang::compile_source(source, main);
}

// Streams every batch of `source` through `engine`.  Returns the number of
// packets consumed.
inline uint64_t run_source(core::Engine& engine, net::PacketSource& source,
                           size_t batch_size = kDefaultBatch) {
  net::PacketBatch batch(batch_size);
  uint64_t n = 0;
  while (source.fill(batch, batch_size) > 0) {
    engine.on_batch(batch.packets());
    n += batch.size();
  }
  return n;
}

// Replays a capture file through `engine` on the zero-copy batched path.
inline uint64_t run_pcap(core::Engine& engine, const std::string& path,
                         net::PcapOptions opt = {}) {
  net::MappedPcapReader reader(path, opt);
  return run_source(engine, reader);
}

// QuerySet overloads: one pass over the source evaluates every loaded
// query (decode and atom classification shared per batch).
inline uint64_t run_source(core::QuerySet& set, net::PacketSource& source,
                           size_t batch_size = kDefaultBatch) {
  net::PacketBatch batch(batch_size);
  uint64_t n = 0;
  while (source.fill(batch, batch_size) > 0) {
    set.on_batch(batch.packets());
    n += batch.size();
  }
  return n;
}

inline uint64_t run_pcap(core::QuerySet& set, const std::string& path,
                         net::PcapOptions opt = {}) {
  net::MappedPcapReader reader(path, opt);
  return run_source(set, reader);
}

}  // namespace netqre
