// NetQRE embedding facade — the one header an embedding application needs.
//
// The pipeline it exposes, end to end:
//
//   source text ── lang::compile_source ──► lang::CompiledProgram
//                                                │ .query
//                                                ▼
//   capture ── net::MappedPcapReader::fill ──► net::PacketBatch
//                                                │
//            core::Engine::on_batch  /  core::ParallelEngine::feed
//                                                │
//            eval() / enumerate() / aggregate() ─► core::Value results
//
// Minimal embedding (see README "Embedding" for the worked example):
//
//   auto prog = netqre::compile(source, "hh");
//   netqre::Engine engine(prog.query);
//   netqre::run_pcap(engine, "trace.pcap");
//   std::cout << engine.eval().to_string() << "\n";
//
// Everything reachable from here is the supported surface; headers under
// src/core, src/lang and src/net remain includable but are internal layout.
#pragma once

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "core/window.hpp"
#include "lang/analysis.hpp"
#include "lang/lower.hpp"
#include "net/packet_view.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "obs/json.hpp"

namespace netqre {

// The embedding-facing names, re-exported at namespace scope.
using core::Engine;
using core::ParallelEngine;
using core::TumblingWindow;
using core::Value;
using lang::CompiledProgram;
using net::MappedPcapReader;
using net::PacketBatch;
using net::PacketSource;
using net::PacketView;
using net::PcapOptions;

// Default number of packets per ingestion batch: large enough to amortize
// per-batch work (telemetry, dispatch), small enough to stay cache-warm.
inline constexpr size_t kDefaultBatch = 1024;

// Parses `source` (plus the prelude) and compiles the stream function
// `main`.  Throws lang::LowerError / lang::ParseError with a structured
// diagnostic on bad input.
inline lang::CompiledProgram compile(const std::string& source,
                                     const std::string& main) {
  return lang::compile_source(source, main);
}

// Streams every batch of `source` through `engine`.  Returns the number of
// packets consumed.
inline uint64_t run_source(core::Engine& engine, net::PacketSource& source,
                           size_t batch_size = kDefaultBatch) {
  net::PacketBatch batch(batch_size);
  uint64_t n = 0;
  while (source.fill(batch, batch_size) > 0) {
    engine.on_batch(batch.packets());
    n += batch.size();
  }
  return n;
}

// Replays a capture file through `engine` on the zero-copy batched path.
inline uint64_t run_pcap(core::Engine& engine, const std::string& path,
                         net::PcapOptions opt = {}) {
  net::MappedPcapReader reader(path, opt);
  return run_source(engine, reader);
}

}  // namespace netqre
