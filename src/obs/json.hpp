// Minimal JSON emitter shared by the telemetry exposition, netqre-profile,
// netqre-lint --json and the bench reporters.  Write-only, append-style;
// comma placement is handled by the writer so call sites cannot emit
// malformed documents.  No external dependencies.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace netqre::obs {

inline void json_escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape_to(out, s);
  return out;
}

// Streaming writer for nested objects/arrays:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("packets").value(42);
//   w.key("ops").begin_array();
//   ...
//   w.end_array();
//   w.end_object();
//   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    out_ += '"';
    json_escape_to(out_, k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    out_ += '"';
    json_escape_to(out_, v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no inf/nan
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& null() {
    comma();
    out_ += "null";
    return *this;
  }
  // Embeds an already-serialized JSON document (e.g. Snapshot::to_json()).
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    if (!stack_.empty()) stack_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key, no comma
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> stack_;  // per nesting level: "needs comma"
  bool pending_value_ = false;
};

}  // namespace netqre::obs
