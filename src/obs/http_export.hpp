// Minimal blocking HTTP/1.1 exposition server (DESIGN.md "Tracing & live
// monitoring").
//
// Serves the observability surface of a long-running NetQRE process —
// /metrics for Prometheus scrapes, /healthz for liveness probes, /tracez
// and /dump for the flight recorder, and the result store's /api/v1
// surface including the parent-side streaming ingest (POST /api/v1/push).
// Deliberately from scratch on POSIX sockets (the repo's from-scratch pcap
// precedent): no third-party dependencies, GET/HEAD plus explicitly
// registered POST paths, one connection at a time, Connection: close.
// That is exactly the traffic profile of a scrape endpoint plus a
// low-frequency edge-push feed — a handful of requests per minute — not a
// general web server.
//
// Robustness against misbehaving peers (the streaming client made these
// reachable): each accepted connection carries a read timeout, so a peer
// that connects and goes silent gets a 408 instead of wedging the accept
// loop forever, and a request head that exceeds the cap is answered with
// 413 instead of being silently truncated into a 400.
//
// Binds loopback only: the exposition surface carries operational detail
// and is meant to be scraped locally or via a sidecar, not exposed raw.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netqre::obs {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", "POST" or "DELETE"
  std::string target;  // raw request target, e.g. "/metrics?x=1"
  std::string path;    // target up to '?', e.g. "/metrics"
  std::string query;   // after '?', empty when absent
  std::string body;    // POST payload (empty for GET/HEAD/DELETE)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Extra response headers (e.g. Allow on a 405, Deprecation on a legacy
  // alias), rendered verbatim after Content-Type/Content-Length.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse text(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse json(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();  // stops the accept loop if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-path handler ("/metrics") served on GET/HEAD.  Call
  // before start().  A handler that throws produces a 500 with the
  // exception message.
  void handle(std::string path, Handler fn);

  // Registers an exact-path POST handler; the request carries the decoded
  // body.  A path may have several method handlers.  A known path hit with
  // a method it has no handler for is answered 405 with an Allow header
  // listing the methods it does serve; an unknown path is a 404.
  void handle_post(std::string path, Handler fn);

  // Registers an exact-path DELETE handler (the admin surface's
  // resource-removal verb, e.g. DELETE /api/v1/queries).
  void handle_delete(std::string path, Handler fn);

  // Per-connection read timeout (both the request head and a POST body).
  // A peer that stays silent past it gets 408 and the socket is closed.
  // Call before start(); 0 disables the timeout.
  void set_read_timeout_ms(uint32_t ms) { read_timeout_ms_ = ms; }

  // Caps: request head (start line + headers) and POST body.  A request
  // exceeding either is answered 413.
  static constexpr size_t kMaxHeadBytes = 16 * 1024;
  static constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;

  // Binds 127.0.0.1:port (0 = kernel-assigned ephemeral port), spawns the
  // accept thread and returns.  Throws std::runtime_error on bind/listen
  // failure (e.g. port in use).
  void start(uint16_t port);

  // Unblocks the accept loop and joins the thread.  Idempotent.
  void stop();

  // The bound port (resolved after start(); useful with port 0).
  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }

  // Requests served since start (approximate; for the index page).
  [[nodiscard]] uint64_t requests_served() const;

 private:
  struct Impl;
  void serve_loop();
  void serve_one(int conn);

  [[nodiscard]] std::string allow_header(const std::string& path) const;

  std::map<std::string, Handler> handlers_;
  std::map<std::string, Handler> post_handlers_;
  std::map<std::string, Handler> delete_handlers_;
  Impl* impl_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint32_t read_timeout_ms_ = 5000;
};

class TraceGovernor;

// Registers `fn` under its canonical versioned path ("/api/v1" + suffix)
// and under the legacy unversioned alias (`suffix` itself), which serves
// the same handler but stamps a `Deprecation: true` header plus a Link to
// the successor path, per the HTTP deprecation-header draft.  Scrapers
// migrate on their own schedule; new integrations use /api/v1/*.
void handle_get_versioned(HttpServer& srv, const std::string& suffix,
                          HttpServer::Handler fn);

// Installs the standard observability surface onto `srv` (shared between
// netqre-monitor and the in-process system tests).  Admin/diagnostic
// endpoints live under the versioned API prefix; the bare legacy paths are
// deprecated aliases (Deprecation header, see handle_get_versioned):
//   /                 text index of the endpoints below
//   /healthz          200 "ok" while healthy() returns true, 503 otherwise
//   /api/v1/metrics   Prometheus exposition (alias: /metrics)
//   /api/v1/statz     the same registry snapshot as JSON (alias: /statz)
//   /api/v1/tracez    flight recorder, Chrome trace JSON (alias: /tracez)
//   /api/v1/dump      writes a flight-recorder dump via `governor` and
//                     returns its path; 503 when none wired (alias: /dump)
// `/` and `/healthz` stay unversioned: the index is a human landing page
// and liveness probes are configured by infrastructure conventions.
void register_observability_endpoints(HttpServer& srv,
                                      std::function<bool()> healthy,
                                      TraceGovernor* governor);

}  // namespace netqre::obs
