// Health & alerting engine over the series store (DESIGN.md §8 "Health &
// alerting").
//
// The store (store/series_store.hpp) remembers what every query produced;
// this layer decides whether anyone should be paged about it.  The model is
// netdata's health engine: declarative alarms ("alarm: syn_flood / on:
// syn_flood.nqre / lookup: max -60s / crit: > 50"), each driving a
// per-(rule,key) state machine CLEAR → WARNING → CRITICAL with
//
//   - hysteresis: a raised state only releases once the value has left the
//     threshold by the configured band, so a value oscillating *at* the
//     threshold cannot ring;
//   - `for`-duration debounce: an escalation must hold continuously for the
//     configured duration before it commits (de-escalation is immediate —
//     hysteresis is the noise filter on the way down);
//   - flap suppression: a (rule,key) pair that transitions more than
//     `flap_transitions` times inside `flap_window_ns` is frozen (further
//     transitions are counted as suppressed, not committed) until it has
//     been quiet for a full window;
//   - store gaps: a rule whose context/key yields no data holds its current
//     state and counts the miss — absence of data is a telemetry problem,
//     not recovery.
//
// Rules read from two sources: `on:` rules issue tier-aware range queries
// against the SeriesStore (windows resolve relative to the latest ingested
// sample, so re-evaluating without new data is idempotent — this is what
// makes the transition log byte-stable across identical replays), and
// `metric:` rules read the obs metrics registry, which is how the built-in
// self-monitoring alarms (shard-queue saturation, backpressure p99, store
// evictions, stream push failures, tier downgrades) watch the daemon
// itself.
//
// Every transition lands in a bounded log, updates the
// netqre_alerts{status=...} gauges, and invokes the transition hook (the
// monitor wires it to StreamClient::push_alert so parents see edge alarms);
// a transition *to* CRITICAL additionally asks the TraceGovernor for a
// flight-recorder dump, so every page arrives with the trace of what the
// daemon was doing when it fired.
//
// Threading: evaluate() and every reader take one mutex.  Evaluation runs
// at sampling cadence (~1 Hz) and readers are HTTP handlers — all cold
// paths, never the per-packet hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/series_store.hpp"
#include "store/stream.hpp"

namespace netqre::obs {
class HttpServer;
class TraceGovernor;
}  // namespace netqre::obs

namespace netqre::health {

enum class AlertStatus : uint8_t { Clear = 0, Warning = 1, Critical = 2 };

// Stable wire/display name: "CLEAR" | "WARNING" | "CRITICAL".
[[nodiscard]] const char* alert_status_name(AlertStatus s);
// Inverse of alert_status_name; false on anything else.
bool parse_alert_status(std::string_view name, AlertStatus& out);

// One comparison against a rule's aggregated value.  `holds` is the
// hysteresis side: once raised, the state persists until the value has left
// the threshold by `band` (Gt/Ge release below value - band, Lt/Le above
// value + band; Eq/Ne ignore the band).
struct Threshold {
  enum class Op : uint8_t { None = 0, Gt, Ge, Lt, Le, Eq, Ne };
  Op op = Op::None;
  double value = 0;

  [[nodiscard]] bool crossed(double v) const;
  [[nodiscard]] bool holds(double v, double band) const;
};

// One declarative alarm.  Parsed from the .health format (see
// parse_health_rules) or built in code (builtin_rules).
struct HealthRule {
  std::string name;

  enum class Source : uint8_t { Store, Metric };
  Source source = Source::Store;
  // Store rules: the series context ("syn_flood.nqre").  Metric rules: the
  // metric base name — labeled instances ("base{shard=...}") all match and
  // each becomes its own keyed alarm.
  std::string selector;
  // Store rules only: one dimension name; "*" = every key in the context
  // (each becomes its own (rule,key) alarm, capped by max_keys_per_rule);
  // empty = aggregate — each row is first reduced to the sum of its
  // defined dimensions, `lookup:` folds those totals, and the alarm runs
  // under the single key "total" (netdata's default lookup semantics —
  // right for "the flood total crossed the line" alarms over
  // per-connection contexts).
  std::string key;

  // How the looked-up window folds to one value.  Store rules fold the
  // range-query rows (Avg/Min/Max/Sum over defined points, Value = last
  // defined point, Delta = last - first).  Metric rules: Value reads the
  // current counter/gauge, Delta the change since the previous evaluation
  // (baseline-first: the first sighting only sets the baseline), P99 the
  // interpolated histogram quantile.
  enum class Method : uint8_t { Avg, Min, Max, Sum, Value, Delta, P99 };
  Method method = Method::Avg;
  int64_t window_s = 60;  // store rules: lookback window, seconds

  Threshold warn;
  Threshold crit;
  double hysteresis = 0;  // release band on de-escalation
  uint64_t for_ns = 0;    // escalation must hold this long to commit
  std::string info;       // operator-facing one-liner
};

[[nodiscard]] const char* method_name(HealthRule::Method m);

// Parses the .health stanza format.  Stanzas are separated by `alarm:`
// lines; '#' starts a comment; unknown or malformed lines fail the whole
// file with a line-numbered error:
//
//   alarm: syn_flood
//   on: syn_flood.nqre            # or  metric: netqre_store_evicted_...
//   key: value                    # dimension; "*" fans out per key;
//                                 # omitted = aggregate over the context
//   lookup: max -60s              # method + window
//   warn: > 20
//   crit: > 50
//   for: 5s                      # optional debounce
//   hysteresis: 5                # optional release band
//   info: half-open handshakes over the flood threshold
struct ParseResult {
  std::vector<HealthRule> rules;
  std::string error;  // empty on success
};
[[nodiscard]] ParseResult parse_health_rules(std::string_view text);

// The daemon's self-monitoring alarms over its own telemetry (always
// loaded by netqre-monitor, with or without --health).
[[nodiscard]] std::vector<HealthRule> builtin_rules();

// One committed state change, as kept in the bounded log.
struct AlertTransition {
  uint64_t seq = 0;   // monotonic per engine, dense from 0
  uint64_t t_ns = 0;  // evaluation time (unix ns)
  std::string rule;
  std::string key;
  AlertStatus from = AlertStatus::Clear;
  AlertStatus to = AlertStatus::Clear;
  double value = 0;        // the aggregated value that committed it
  std::string dump_path;   // correlated trace dump (CRITICAL only)
};

struct HealthConfig {
  size_t max_transitions = 256;  // bounded log; oldest dropped beyond this
  uint32_t flap_transitions = 6;
  uint64_t flap_window_ns = 60'000'000'000ull;  // 60 s
  size_t max_keys_per_rule = 256;  // wildcard store rules stop here
};

// The engine.  Construct once per daemon, add rules, then call evaluate()
// on a cadence; all other members are thread-safe readers.
class HealthEngine {
 public:
  using TransitionHook = std::function<void(const AlertTransition&)>;

  // `store` may be null (metric rules only); `governor` may be null (no
  // dump correlation).  Both must outlive the engine.
  HealthEngine(const store::SeriesStore* store,
               obs::TraceGovernor* governor, HealthConfig cfg = {});
  ~HealthEngine();

  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  void add_rule(HealthRule rule);
  void add_rules(std::vector<HealthRule> rules);
  [[nodiscard]] size_t rule_count() const;

  // Called on every committed transition, after the log/gauges update and
  // (for CRITICAL) the dump correlation.  Invoked with the engine's mutex
  // held — keep it cheap and never call back into the engine.
  void set_transition_hook(TransitionHook hook);

  // Evaluates every rule at unix time `now_ns`.  `now_ns` must be
  // monotonically non-decreasing across calls (it anchors the `for` and
  // flap clocks).
  void evaluate(uint64_t now_ns);

  // Current status of one alarm; nullopt when the (rule,key) pair has
  // never been evaluated with data.
  [[nodiscard]] std::optional<AlertStatus> status(std::string_view rule,
                                                 std::string_view key) const;

  struct Counts {
    size_t clear = 0;
    size_t warning = 0;
    size_t critical = 0;
  };
  [[nodiscard]] Counts counts() const;
  [[nodiscard]] uint64_t evaluations() const;
  [[nodiscard]] uint64_t transitions_total() const;
  [[nodiscard]] uint64_t suppressed_total() const;  // flap-suppressed

  // {"counts":{...},"alarms":[{rule,key,status,value,since_ns,...}]}
  [[nodiscard]] std::string alerts_json() const;
  // {"transitions":[{seq,t_ns,rule,key,from,to,value,dump}...]}
  [[nodiscard]] std::string log_json() const;
  // One line per transition, no timestamps — byte-stable across identical
  // replays: "#<seq> <rule>[<key>] <FROM>-><TO> value=<v>".
  [[nodiscard]] std::string log_text() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Parent-side fleet view: run_parent ingests ALERT lines (store/stream.hpp)
// from every child and serves them grouped by source.
class FleetAlertView {
 public:
  explicit FleetAlertView(size_t max_transitions_per_source = 256);
  ~FleetAlertView();

  FleetAlertView(const FleetAlertView&) = delete;
  FleetAlertView& operator=(const FleetAlertView&) = delete;

  // Thread-safe (called from the HTTP push handler).
  void ingest(std::string_view source, const store::AlertLine& line);

  [[nodiscard]] size_t sources() const;
  // {"sources":[{"source":...,"alarms":[...]}...]} — current status per
  // (source,rule,key), latest transition wins.
  [[nodiscard]] std::string alerts_json() const;
  // Transition history, newest last, across all sources.
  [[nodiscard]] std::string log_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// GET /api/v1/alerts and /api/v1/alerts/log (?format=text for the stable
// text log) over `engine` / `view`.  The referent must outlive the server.
void register_health_endpoints(obs::HttpServer& srv, HealthEngine& engine);
void register_fleet_alert_endpoints(obs::HttpServer& srv,
                                    FleetAlertView& view);

}  // namespace netqre::health
