#include "obs/health.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

#include "obs/http_export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::health {

const char* alert_status_name(AlertStatus s) {
  switch (s) {
    case AlertStatus::Clear: return "CLEAR";
    case AlertStatus::Warning: return "WARNING";
    case AlertStatus::Critical: return "CRITICAL";
  }
  return "CLEAR";
}

bool parse_alert_status(std::string_view name, AlertStatus& out) {
  if (name == "CLEAR") {
    out = AlertStatus::Clear;
  } else if (name == "WARNING") {
    out = AlertStatus::Warning;
  } else if (name == "CRITICAL") {
    out = AlertStatus::Critical;
  } else {
    return false;
  }
  return true;
}

bool Threshold::crossed(double v) const {
  switch (op) {
    case Op::None: return false;
    case Op::Gt: return v > value;
    case Op::Ge: return v >= value;
    case Op::Lt: return v < value;
    case Op::Le: return v <= value;
    case Op::Eq: return v == value;
    case Op::Ne: return v != value;
  }
  return false;
}

bool Threshold::holds(double v, double band) const {
  switch (op) {
    case Op::None: return false;
    case Op::Gt: return v > value - band;
    case Op::Ge: return v >= value - band;
    case Op::Lt: return v < value + band;
    case Op::Le: return v <= value + band;
    case Op::Eq: return v == value;
    case Op::Ne: return v != value;
  }
  return false;
}

const char* method_name(HealthRule::Method m) {
  switch (m) {
    case HealthRule::Method::Avg: return "avg";
    case HealthRule::Method::Min: return "min";
    case HealthRule::Method::Max: return "max";
    case HealthRule::Method::Sum: return "sum";
    case HealthRule::Method::Value: return "value";
    case HealthRule::Method::Delta: return "delta";
    case HealthRule::Method::P99: return "p99";
  }
  return "avg";
}

// -------------------------------------------------------------- parsing

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_method(std::string_view word, HealthRule::Method& out) {
  for (const auto m :
       {HealthRule::Method::Avg, HealthRule::Method::Min,
        HealthRule::Method::Max, HealthRule::Method::Sum,
        HealthRule::Method::Value, HealthRule::Method::Delta,
        HealthRule::Method::P99}) {
    if (word == method_name(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

// "-60s", "60s", "5m" (minutes), "60" (seconds) -> absolute seconds.
bool parse_seconds(std::string_view word, int64_t& out) {
  if (word.empty()) return false;
  if (word.front() == '-') word.remove_prefix(1);
  if (word.empty()) return false;
  int64_t scale = 1;
  if (word.back() == 's') {
    word.remove_suffix(1);
  } else if (word.back() == 'm') {
    scale = 60;
    word.remove_suffix(1);
  } else if (word.back() == 'h') {
    scale = 3600;
    word.remove_suffix(1);
  }
  if (word.empty()) return false;
  const std::string text(word);
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) return false;
  out = static_cast<int64_t>(v) * scale;
  return true;
}

// "> 50", ">= 1.5", "== 0" -> Threshold.
bool parse_threshold(std::string_view text, Threshold& out) {
  text = trim(text);
  using Op = Threshold::Op;
  Op op = Op::None;
  size_t oplen = 0;
  if (text.rfind(">=", 0) == 0) {
    op = Op::Ge;
    oplen = 2;
  } else if (text.rfind("<=", 0) == 0) {
    op = Op::Le;
    oplen = 2;
  } else if (text.rfind("==", 0) == 0) {
    op = Op::Eq;
    oplen = 2;
  } else if (text.rfind("!=", 0) == 0) {
    op = Op::Ne;
    oplen = 2;
  } else if (text.rfind(">", 0) == 0) {
    op = Op::Gt;
    oplen = 1;
  } else if (text.rfind("<", 0) == 0) {
    op = Op::Lt;
    oplen = 1;
  } else {
    return false;
  }
  const std::string num(trim(text.substr(oplen)));
  if (num.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || *end != '\0') return false;
  out.op = op;
  out.value = v;
  return true;
}

// Same exact-round-trip formatting as the stream wire format, so the
// transition log and the ALERT line agree byte-for-byte on values.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

ParseResult parse_health_rules(std::string_view text) {
  ParseResult res;
  HealthRule cur;
  bool open = false;
  bool has_source = false;
  size_t line_no = 0;

  const auto fail = [&](const std::string& msg) {
    res.error = "line " + std::to_string(line_no) + ": " + msg;
    res.rules.clear();
    return res;
  };
  const auto finish = [&]() -> std::string {
    if (!open) return {};
    if (!has_source) return "alarm '" + cur.name + "' has no on:/metric:";
    if (cur.warn.op == Threshold::Op::None &&
        cur.crit.op == Threshold::Op::None) {
      return "alarm '" + cur.name + "' has no warn:/crit:";
    }
    res.rules.push_back(std::move(cur));
    cur = HealthRule{};
    has_source = false;
    open = false;
    return {};
  };

  std::string_view rest = text;
  while (!rest.empty()) {
    ++line_no;
    const size_t nl = rest.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return fail("expected 'field: value'");
    const std::string_view field = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));

    if (field == "alarm") {
      if (const std::string err = finish(); !err.empty()) return fail(err);
      if (value.empty()) return fail("alarm: needs a name");
      cur.name = std::string(value);
      open = true;
      continue;
    }
    if (!open) return fail("'" + std::string(field) + ":' before any alarm:");

    if (field == "on") {
      cur.source = HealthRule::Source::Store;
      cur.selector = std::string(value);
      has_source = true;
    } else if (field == "metric") {
      cur.source = HealthRule::Source::Metric;
      cur.selector = std::string(value);
      has_source = true;
    } else if (field == "key") {
      cur.key = std::string(value);
    } else if (field == "lookup") {
      // "METHOD [-]WINDOW", e.g. "max -60s".
      const size_t sp = value.find(' ');
      const std::string_view method_word =
          trim(sp == std::string_view::npos ? value : value.substr(0, sp));
      if (!parse_method(method_word, cur.method)) {
        return fail("unknown lookup method '" + std::string(method_word) +
                    "'");
      }
      if (sp != std::string_view::npos) {
        if (!parse_seconds(trim(value.substr(sp + 1)), cur.window_s)) {
          return fail("unparsable lookup window");
        }
      }
    } else if (field == "warn") {
      if (!parse_threshold(value, cur.warn)) return fail("unparsable warn:");
    } else if (field == "crit") {
      if (!parse_threshold(value, cur.crit)) return fail("unparsable crit:");
    } else if (field == "for") {
      int64_t s = 0;
      if (!parse_seconds(value, s)) return fail("unparsable for:");
      cur.for_ns = static_cast<uint64_t>(s) * 1'000'000'000ull;
    } else if (field == "hysteresis") {
      const std::string num(value);
      char* end = nullptr;
      cur.hysteresis = std::strtod(num.c_str(), &end);
      if (end == num.c_str() || *end != '\0' || cur.hysteresis < 0) {
        return fail("unparsable hysteresis:");
      }
    } else if (field == "info") {
      cur.info = std::string(value);
    } else {
      return fail("unknown field '" + std::string(field) + ":'");
    }
  }
  ++line_no;
  if (const std::string err = finish(); !err.empty()) return fail(err);
  if (res.rules.empty()) res.error = "no alarm: stanzas found";
  return res;
}

std::vector<HealthRule> builtin_rules() {
  const auto metric_rule = [](std::string name, std::string selector,
                              HealthRule::Method method, Threshold warn,
                              Threshold crit, std::string info) {
    HealthRule r;
    r.name = std::move(name);
    r.source = HealthRule::Source::Metric;
    r.selector = std::move(selector);
    r.method = method;
    r.warn = warn;
    r.crit = crit;
    r.info = std::move(info);
    return r;
  };
  using Op = Threshold::Op;
  using M = HealthRule::Method;
  std::vector<HealthRule> out;
  // Defaults track GovernorConfig: warn below the governor's dump trigger,
  // crit at it.
  out.push_back(metric_rule(
      "self_shard_queue", "netqre_parallel_shard_queue_depth", M::Value,
      {Op::Ge, 6}, {Op::Ge, 8},
      "a shard queue is backing up toward the backpressure bound"));
  out.push_back(metric_rule(
      "self_backpressure_p99", "netqre_parallel_backpressure_wait_ns",
      M::P99, {Op::Gt, 1e6}, {Op::Gt, 1e7},
      "dispatcher waits on saturated shard queues (p99 ns)"));
  out.push_back(metric_rule(
      "self_store_evictions", "netqre_store_evicted_keys_total", M::Delta,
      {Op::Gt, 0}, {Op::Gt, 100},
      "the result store is evicting keys; raise --store-keys"));
  out.push_back(metric_rule(
      "self_stream_failures", "netqre_stream_push_failures_total", M::Delta,
      {Op::Gt, 0}, {Op::Ge, 5},
      "pushes to the parent are failing; check --stream-to"));
  out.push_back(metric_rule(
      "self_tier_downgrades", "netqre_query_tier_downgrades_total",
      M::Delta, {Op::Gt, 0}, {Op::None, 0},
      "a query expected to compile fell back to the interpreted tier"));
  return out;
}

// --------------------------------------------------------- HealthEngine

namespace {

// Per-(rule,key) alert state machine.
struct KeyState {
  AlertStatus status = AlertStatus::Clear;
  double last_value = 0;
  uint64_t since_ns = 0;  // when `status` committed (0 = never transitioned)
  uint64_t no_data_evals = 0;

  // Escalation debounce (`for:`).
  bool pending_valid = false;
  AlertStatus pending = AlertStatus::Clear;
  uint64_t pending_since_ns = 0;

  // Flap suppression: recent commit times inside the flap window.
  std::deque<uint64_t> commits_ns;
  bool flapping = false;
  uint64_t suppressed = 0;

  // Metric Delta baseline (baseline-first: the first sighting never
  // alerts, so a restart cannot fire on pre-existing counter values).
  bool baseline_valid = false;
  double baseline = 0;
};

AlertStatus compute_target(const HealthRule& r, AlertStatus cur, double v) {
  if (r.crit.crossed(v)) return AlertStatus::Critical;
  if (cur == AlertStatus::Critical && r.crit.holds(v, r.hysteresis)) {
    return AlertStatus::Critical;
  }
  if (r.warn.crossed(v)) return AlertStatus::Warning;
  if (cur >= AlertStatus::Warning && r.warn.holds(v, r.hysteresis)) {
    return AlertStatus::Warning;
  }
  return AlertStatus::Clear;
}

// Folds one series of per-row values (NaN = gap) by the rule's method.
// Returns false when the window holds no defined point (a gap).
bool fold_series(const std::vector<double>& vals, HealthRule::Method method,
                 double& out) {
  store::TierPoint agg;
  double first = 0, last = 0;
  bool any = false;
  for (const double v : vals) {
    if (std::isnan(v)) continue;
    agg.add(v);
    if (!any) first = v;
    last = v;
    any = true;
  }
  if (!any) return false;
  switch (method) {
    case HealthRule::Method::Avg: out = agg.avg(); break;
    case HealthRule::Method::Min: out = agg.min; break;
    case HealthRule::Method::Max: out = agg.max; break;
    case HealthRule::Method::Sum: out = agg.sum; break;
    case HealthRule::Method::Value: out = last; break;
    case HealthRule::Method::Delta:
      if (agg.count < 2) return false;
      out = last - first;
      break;
    case HealthRule::Method::P99: out = agg.max; break;  // no raw quantile
  }
  return true;
}

}  // namespace

struct HealthEngine::Impl {
  const store::SeriesStore* store;
  obs::TraceGovernor* governor;
  HealthConfig cfg;

  mutable std::mutex mu;
  struct RuleState {
    HealthRule rule;
    // Ordered by key: deterministic gauge/json/evaluation order.
    std::map<std::string, KeyState> keys;
  };
  std::vector<RuleState> rules;
  std::deque<AlertTransition> log;
  TransitionHook hook;

  uint64_t next_seq = 0;
  uint64_t evaluations = 0;
  uint64_t transitions = 0;
  uint64_t suppressed = 0;

  obs::Gauge* g_clear;
  obs::Gauge* g_warning;
  obs::Gauge* g_critical;
  obs::Counter* c_transitions;
  obs::Counter* c_suppressed;
  obs::Counter* c_evals;

  Impl(const store::SeriesStore* store, obs::TraceGovernor* governor,
       HealthConfig cfg)
      : store(store), governor(governor), cfg(cfg) {
    auto status_gauge = [](const char* status) -> obs::Gauge* {
      return &obs::registry().gauge(
          obs::labeled_name("netqre_alerts", {{"status", status}}));
    };
    g_clear = status_gauge("clear");
    g_warning = status_gauge("warning");
    g_critical = status_gauge("critical");
    c_transitions =
        &obs::registry().counter("netqre_alert_transitions_total");
    c_suppressed =
        &obs::registry().counter("netqre_alerts_suppressed_total");
    c_evals = &obs::registry().counter("netqre_health_evaluations_total");
  }

  // One observation for one (rule,key).  Runs the full state machine;
  // locked by the caller.
  void step(RuleState& rs, const std::string& key, double v,
            uint64_t now_ns) {
    KeyState& st = rs.keys[key];
    const HealthRule& rule = rs.rule;

    double value = v;
    if (rule.source == HealthRule::Source::Metric &&
        rule.method == HealthRule::Method::Delta) {
      if (!st.baseline_valid) {
        st.baseline = v;
        st.baseline_valid = true;
        st.last_value = 0;
        return;
      }
      value = v - st.baseline;
      st.baseline = v;
    }
    st.last_value = value;

    const AlertStatus target = compute_target(rule, st.status, value);

    // Prune the flap window; a pair quiet for a full window unfreezes.
    while (!st.commits_ns.empty() &&
           now_ns - st.commits_ns.front() > cfg.flap_window_ns) {
      st.commits_ns.pop_front();
    }
    if (st.flapping && st.commits_ns.empty()) st.flapping = false;

    if (target == st.status) {
      st.pending_valid = false;
      return;
    }

    if (target > st.status && rule.for_ns > 0) {
      if (!st.pending_valid || st.pending != target) {
        st.pending = target;
        st.pending_since_ns = now_ns;
        st.pending_valid = true;
        return;
      }
      if (now_ns - st.pending_since_ns < rule.for_ns) return;
    }
    st.pending_valid = false;

    if (st.flapping) {
      ++st.suppressed;
      ++suppressed;
      c_suppressed->inc();
      return;
    }

    commit(rs, key, st, target, value, now_ns);
    st.commits_ns.push_back(now_ns);
    if (st.commits_ns.size() > cfg.flap_transitions) st.flapping = true;
  }

  void commit(RuleState& rs, const std::string& key, KeyState& st,
              AlertStatus target, double value, uint64_t now_ns) {
    AlertTransition tr;
    tr.seq = next_seq++;
    tr.t_ns = now_ns;
    tr.rule = rs.rule.name;
    tr.key = key;
    tr.from = st.status;
    tr.to = target;
    tr.value = value;
    if (target == AlertStatus::Critical && governor) {
      const std::string reason = "alert: " + rs.rule.name + "[" + key +
                                 "] CRITICAL value=" + format_value(value);
      if (const auto path = governor->request_dump("alert", reason)) {
        tr.dump_path = *path;
      }
    }
    obs::tracer().record(obs::TraceKind::AlertTransition, tr.seq,
                         static_cast<uint64_t>(target));
    st.status = target;
    st.since_ns = now_ns;
    ++transitions;
    c_transitions->inc();
    log.push_back(tr);
    while (log.size() > cfg.max_transitions) log.pop_front();
    if (hook) hook(log.back());
  }

  void gap(RuleState& rs, const std::string& key) {
    const auto it = rs.keys.find(key);
    if (it == rs.keys.end()) return;  // never had data: no alarm to hold
    KeyState& st = it->second;
    ++st.no_data_evals;
    // Data loss is a telemetry problem, not recovery: hold the status and
    // drop any in-flight escalation (its evidence went away).
    st.pending_valid = false;
  }

  void evaluate_store_rule(RuleState& rs, uint64_t now_ns) {
    const HealthRule& rule = rs.rule;
    if (!store) return;
    const bool aggregate = rule.key.empty();
    const bool fan_out = rule.key == "*";
    store::RangeQuery q;
    q.after_s = -rule.window_s;
    q.before_s = 0;
    if (!aggregate && !fan_out) q.dimensions.push_back(rule.key);
    store::RangeResult rr;
    if (!store->query(rule.selector, q, rr) || rr.dimensions.empty()) {
      for (const auto& [key, _] : rs.keys) gap(rs, key);
      return;
    }

    if (aggregate) {
      // Reduce each row to the sum of its defined dimensions, then fold
      // the per-row totals: one alarm over the whole context.
      std::vector<double> totals;
      totals.reserve(rr.rows.size());
      for (const auto& row : rr.rows) {
        double total = 0;
        bool defined = false;
        for (const double v : row.values) {
          if (std::isnan(v)) continue;
          total += v;
          defined = true;
        }
        totals.push_back(defined
                             ? total
                             : std::numeric_limits<double>::quiet_NaN());
      }
      double v = 0;
      if (fold_series(totals, rule.method, v)) {
        step(rs, "total", v, now_ns);
      } else {
        gap(rs, "total");
      }
      return;
    }

    std::vector<double> col_vals(rr.rows.size());
    size_t used = 0;
    for (size_t col = 0; col < rr.dimensions.size(); ++col) {
      const std::string& key = rr.dimensions[col];
      const bool known = rs.keys.find(key) != rs.keys.end();
      if (!known && used >= cfg.max_keys_per_rule) continue;
      for (size_t i = 0; i < rr.rows.size(); ++i) {
        col_vals[i] = rr.rows[i].values[col];
      }
      double v = 0;
      if (!fold_series(col_vals, rule.method, v)) {
        gap(rs, key);
        continue;
      }
      ++used;
      step(rs, key, v, now_ns);
    }
    // Known keys absent from this result (evicted, or dimension filter
    // mismatch) count their gap too.
    for (auto& [key, _] : rs.keys) {
      if (std::find(rr.dimensions.begin(), rr.dimensions.end(), key) ==
          rr.dimensions.end()) {
        gap(rs, key);
      }
    }
  }

  void evaluate_metric_rule(RuleState& rs, const obs::Snapshot& snap,
                            uint64_t now_ns) {
    const HealthRule& rule = rs.rule;
    const std::string labeled_prefix = rule.selector + "{";
    bool matched = false;
    for (const auto& m : snap.metrics) {
      std::string key;
      if (m.name == rule.selector) {
        key = "value";
      } else if (m.name.rfind(labeled_prefix, 0) == 0 &&
                 m.name.back() == '}') {
        // The label block is the key: base{shard="0"} -> shard="0".
        key = m.name.substr(labeled_prefix.size(),
                            m.name.size() - labeled_prefix.size() - 1);
      } else {
        continue;
      }
      matched = true;
      double raw = 0;
      switch (m.kind) {
        case obs::MetricKind::Counter: {
          raw = static_cast<double>(m.count);
          break;
        }
        case obs::MetricKind::Gauge: {
          raw = static_cast<double>(m.value);
          break;
        }
        case obs::MetricKind::Histogram: {
          // Delta watches the observation count; everything else reads the
          // interpolated p99 (the tail is what self-monitoring alarms on).
          raw = rule.method == HealthRule::Method::Delta
                    ? static_cast<double>(m.count)
                    : obs::histogram_quantile(m, 0.99);
          break;
        }
      }
      step(rs, key, raw, now_ns);
    }
    if (!matched) {
      for (const auto& [key, _] : rs.keys) gap(rs, key);
    }
  }

  Counts counts_locked() const {
    Counts c;
    for (const auto& rs : rules) {
      for (const auto& [_, st] : rs.keys) {
        switch (st.status) {
          case AlertStatus::Clear: ++c.clear; break;
          case AlertStatus::Warning: ++c.warning; break;
          case AlertStatus::Critical: ++c.critical; break;
        }
      }
    }
    return c;
  }
};

HealthEngine::HealthEngine(const store::SeriesStore* store,
                           obs::TraceGovernor* governor, HealthConfig cfg)
    : impl_(std::make_unique<Impl>(store, governor, cfg)) {}

HealthEngine::~HealthEngine() = default;

void HealthEngine::add_rule(HealthRule rule) {
  std::lock_guard lock(impl_->mu);
  impl_->rules.push_back({std::move(rule), {}});
}

void HealthEngine::add_rules(std::vector<HealthRule> rules) {
  std::lock_guard lock(impl_->mu);
  for (auto& r : rules) impl_->rules.push_back({std::move(r), {}});
}

size_t HealthEngine::rule_count() const {
  std::lock_guard lock(impl_->mu);
  return impl_->rules.size();
}

void HealthEngine::set_transition_hook(TransitionHook hook) {
  std::lock_guard lock(impl_->mu);
  impl_->hook = std::move(hook);
}

void HealthEngine::evaluate(uint64_t now_ns) {
  std::lock_guard lock(impl_->mu);
  bool any_metric_rule = false;
  for (const auto& rs : impl_->rules) {
    any_metric_rule |= rs.rule.source == HealthRule::Source::Metric;
  }
  obs::Snapshot snap;
  if (any_metric_rule) snap = obs::registry().snapshot();
  for (auto& rs : impl_->rules) {
    if (rs.rule.source == HealthRule::Source::Store) {
      impl_->evaluate_store_rule(rs, now_ns);
    } else {
      impl_->evaluate_metric_rule(rs, snap, now_ns);
    }
  }
  ++impl_->evaluations;
  impl_->c_evals->inc();
  const Counts c = impl_->counts_locked();
  impl_->g_clear->set(static_cast<int64_t>(c.clear));
  impl_->g_warning->set(static_cast<int64_t>(c.warning));
  impl_->g_critical->set(static_cast<int64_t>(c.critical));
}

std::optional<AlertStatus> HealthEngine::status(std::string_view rule,
                                                std::string_view key) const {
  std::lock_guard lock(impl_->mu);
  for (const auto& rs : impl_->rules) {
    if (rs.rule.name != rule) continue;
    const auto it = rs.keys.find(std::string(key));
    if (it != rs.keys.end()) return it->second.status;
  }
  return std::nullopt;
}

HealthEngine::Counts HealthEngine::counts() const {
  std::lock_guard lock(impl_->mu);
  return impl_->counts_locked();
}

uint64_t HealthEngine::evaluations() const {
  std::lock_guard lock(impl_->mu);
  return impl_->evaluations;
}

uint64_t HealthEngine::transitions_total() const {
  std::lock_guard lock(impl_->mu);
  return impl_->transitions;
}

uint64_t HealthEngine::suppressed_total() const {
  std::lock_guard lock(impl_->mu);
  return impl_->suppressed;
}

namespace {

void transition_json(obs::JsonWriter& w, const AlertTransition& tr) {
  w.begin_object();
  w.key("seq").value(tr.seq);
  w.key("t_ns").value(tr.t_ns);
  w.key("rule").value(tr.rule);
  w.key("key").value(tr.key);
  w.key("from").value(alert_status_name(tr.from));
  w.key("to").value(alert_status_name(tr.to));
  w.key("value").value(tr.value);
  if (!tr.dump_path.empty()) w.key("dump").value(tr.dump_path);
  w.end_object();
}

}  // namespace

std::string HealthEngine::alerts_json() const {
  std::lock_guard lock(impl_->mu);
  const Counts c = impl_->counts_locked();
  obs::JsonWriter w;
  w.begin_object();
  const obs::BuildInfo bi = obs::build_info();
  w.key("version").value(bi.version);
  w.key("counts").begin_object();
  w.key("clear").value(static_cast<uint64_t>(c.clear));
  w.key("warning").value(static_cast<uint64_t>(c.warning));
  w.key("critical").value(static_cast<uint64_t>(c.critical));
  w.end_object();
  w.key("rules").value(static_cast<uint64_t>(impl_->rules.size()));
  w.key("evaluations").value(impl_->evaluations);
  w.key("transitions").value(impl_->transitions);
  w.key("suppressed").value(impl_->suppressed);
  w.key("alarms").begin_array();
  for (const auto& rs : impl_->rules) {
    for (const auto& [key, st] : rs.keys) {
      w.begin_object();
      w.key("rule").value(rs.rule.name);
      w.key("key").value(key);
      w.key("status").value(alert_status_name(st.status));
      w.key("value").value(st.last_value);
      w.key("since_ns").value(st.since_ns);
      w.key("flapping").value(st.flapping);
      w.key("no_data_evals").value(st.no_data_evals);
      if (!rs.rule.info.empty()) w.key("info").value(rs.rule.info);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string HealthEngine::log_json() const {
  std::lock_guard lock(impl_->mu);
  obs::JsonWriter w;
  w.begin_object();
  w.key("transitions").begin_array();
  for (const auto& tr : impl_->log) transition_json(w, tr);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string HealthEngine::log_text() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& tr : impl_->log) {
    out += '#';
    out += std::to_string(tr.seq);
    out += ' ';
    out += tr.rule;
    out += '[';
    out += tr.key;
    out += "] ";
    out += alert_status_name(tr.from);
    out += "->";
    out += alert_status_name(tr.to);
    out += " value=";
    out += format_value(tr.value);
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------- FleetAlertView

struct FleetAlertView::Impl {
  size_t max_per_source;

  mutable std::mutex mu;
  struct SourceState {
    // (rule, key) -> latest transition.
    std::map<std::pair<std::string, std::string>, store::AlertLine> current;
    std::deque<store::AlertLine> log;
  };
  std::map<std::string, SourceState> by_source;
};

FleetAlertView::FleetAlertView(size_t max_transitions_per_source)
    : impl_(std::make_unique<Impl>()) {
  impl_->max_per_source = max_transitions_per_source;
}

FleetAlertView::~FleetAlertView() = default;

void FleetAlertView::ingest(std::string_view source,
                            const store::AlertLine& line) {
  std::lock_guard lock(impl_->mu);
  auto& st = impl_->by_source[std::string(source)];
  st.current[{line.rule, line.key}] = line;
  st.log.push_back(line);
  while (st.log.size() > impl_->max_per_source) st.log.pop_front();
}

size_t FleetAlertView::sources() const {
  std::lock_guard lock(impl_->mu);
  return impl_->by_source.size();
}

namespace {

void alert_line_json(obs::JsonWriter& w, const store::AlertLine& a) {
  w.begin_object();
  w.key("seq").value(a.seq);
  w.key("t_ns").value(a.t_ns);
  w.key("rule").value(a.rule);
  w.key("key").value(a.key);
  w.key("from").value(a.from);
  w.key("to").value(a.to);
  w.key("value").value(a.value);
  w.end_object();
}

}  // namespace

std::string FleetAlertView::alerts_json() const {
  std::lock_guard lock(impl_->mu);
  obs::JsonWriter w;
  w.begin_object();
  w.key("sources").begin_array();
  for (const auto& [source, st] : impl_->by_source) {
    w.begin_object();
    w.key("source").value(source);
    w.key("alarms").begin_array();
    for (const auto& [rule_key, line] : st.current) {
      w.begin_object();
      w.key("rule").value(rule_key.first);
      w.key("key").value(rule_key.second);
      w.key("status").value(line.to);
      w.key("value").value(line.value);
      w.key("t_ns").value(line.t_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string FleetAlertView::log_json() const {
  std::lock_guard lock(impl_->mu);
  obs::JsonWriter w;
  w.begin_object();
  w.key("sources").begin_array();
  for (const auto& [source, st] : impl_->by_source) {
    w.begin_object();
    w.key("source").value(source);
    w.key("transitions").begin_array();
    for (const auto& line : st.log) alert_line_json(w, line);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

// ----------------------------------------------------------- endpoints

namespace {

bool wants_text(const obs::HttpRequest& req) {
  // The only parameter this surface takes; a full query parser would be
  // overkill for "format=text".
  return req.query.find("format=text") != std::string::npos;
}

}  // namespace

void register_health_endpoints(obs::HttpServer& srv, HealthEngine& engine) {
  srv.handle("/api/v1/alerts", [&engine](const obs::HttpRequest&) {
    return obs::HttpResponse::json(engine.alerts_json());
  });
  srv.handle("/api/v1/alerts/log", [&engine](const obs::HttpRequest& req) {
    if (wants_text(req)) {
      return obs::HttpResponse::text(engine.log_text());
    }
    return obs::HttpResponse::json(engine.log_json());
  });
}

void register_fleet_alert_endpoints(obs::HttpServer& srv,
                                    FleetAlertView& view) {
  srv.handle("/api/v1/alerts", [&view](const obs::HttpRequest&) {
    return obs::HttpResponse::json(view.alerts_json());
  });
  srv.handle("/api/v1/alerts/log", [&view](const obs::HttpRequest&) {
    return obs::HttpResponse::json(view.log_json());
  });
}

}  // namespace netqre::health
