#include "obs/http_export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// Writes the whole buffer, retrying on short writes/EINTR.
bool write_all_fd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string render(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

struct HttpServer::Impl {
  std::thread thread;
  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> served{0};
};

HttpServer::~HttpServer() {
  stop();
  delete impl_;
}

void HttpServer::handle(std::string path, Handler fn) {
  handlers_[std::move(path)] = std::move(fn);
}

void HttpServer::start(uint16_t port) {
  if (listen_fd_ >= 0) throw std::runtime_error("http: already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("http: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  if (!impl_) impl_ = new Impl();
  impl_->stopping.store(false);
  impl_->thread = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  impl_->stopping.store(true);
  // Unblock accept(): shutdown makes it return; close releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (impl_->thread.joinable()) impl_->thread.join();
  listen_fd_ = -1;
}

uint64_t HttpServer::requests_served() const {
  return impl_ ? impl_->served.load() : 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down
    }
    if (impl_->stopping.load()) {
      ::close(conn);
      return;
    }
    // Read until the end of the request head (we never read a body).
    std::string head;
    char buf[2048];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < 16 * 1024) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      head.append(buf, static_cast<size_t>(n));
    }
    HttpResponse resp;
    HttpRequest req;
    const size_t line_end = head.find("\r\n");
    const size_t sp1 = head.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
    if (line_end == std::string::npos || sp1 == std::string::npos ||
        sp2 == std::string::npos || sp2 > line_end) {
      resp = HttpResponse::text("malformed request\n", 400);
    } else {
      req.method = head.substr(0, sp1);
      req.target = head.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t q = req.target.find('?');
      req.path = req.target.substr(0, q);
      req.query =
          q == std::string::npos ? std::string() : req.target.substr(q + 1);
      if (req.method != "GET" && req.method != "HEAD") {
        resp = HttpResponse::text("only GET is served here\n", 405);
      } else {
        const auto it = handlers_.find(req.path);
        if (it == handlers_.end()) {
          resp = HttpResponse::text("not found: " + req.path + "\n", 404);
        } else {
          try {
            resp = it->second(req);
          } catch (const std::exception& e) {
            resp = HttpResponse::text(std::string("handler error: ") +
                                          e.what() + "\n",
                                      500);
          }
        }
      }
      if (req.method == "HEAD") resp.body.clear();
    }
    write_all_fd(conn, render(resp));
    ::close(conn);
    impl_->served.fetch_add(1, std::memory_order_relaxed);
  }
}

void register_observability_endpoints(HttpServer& srv,
                                      std::function<bool()> healthy,
                                      TraceGovernor* governor) {
  srv.handle("/", [](const HttpRequest&) {
    return HttpResponse::text(
        "netqre observability endpoints:\n"
        "  /metrics  Prometheus exposition\n"
        "  /statz    metrics snapshot (JSON)\n"
        "  /healthz  liveness probe\n"
        "  /tracez   flight recorder (Chrome trace JSON)\n"
        "  /dump     write a flight-recorder dump to disk\n");
  });
  srv.handle("/metrics", [](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = registry().snapshot().to_prometheus();
    return r;
  });
  srv.handle("/statz", [](const HttpRequest&) {
    return HttpResponse::json(registry().snapshot().to_json());
  });
  srv.handle("/healthz", [healthy = std::move(healthy)](const HttpRequest&) {
    return healthy() ? HttpResponse::text("ok\n")
                     : HttpResponse::text("engine not live\n", 503);
  });
  srv.handle("/tracez", [](const HttpRequest&) {
    return HttpResponse::json(
        tracer().snapshot().to_chrome_json("/tracez request"));
  });
  srv.handle("/dump", [governor](const HttpRequest&) {
    if (!governor) {
      return HttpResponse::text("no trace governor wired\n", 503);
    }
    return HttpResponse::text(governor->dump_now("manual /dump request") +
                              "\n");
  });
}

}  // namespace netqre::obs
