#include "obs/http_export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// Writes the whole buffer, retrying on short writes/EINTR.
bool write_all_fd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Parses the Content-Length header out of a request head (case-insensitive
// field name, as HTTP requires).  0 when absent or unparsable.
size_t content_length(std::string_view headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    const std::string_view line = headers.substr(pos, eol - pos);
    constexpr std::string_view kField = "content-length:";
    if (line.size() > kField.size()) {
      bool match = true;
      for (size_t i = 0; i < kField.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) != kField[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        size_t v = kField.size();
        while (v < line.size() && line[v] == ' ') ++v;
        size_t out = 0;
        bool any = false;
        for (; v < line.size() && line[v] >= '0' && line[v] <= '9'; ++v) {
          out = out * 10 + static_cast<size_t>(line[v] - '0');
          any = true;
        }
        return any ? out : 0;
      }
    }
    pos = eol + 2;
  }
  return 0;
}

// `announced_length` lets HEAD advertise the Content-Length the same GET
// would have returned while sending no body (RFC 9110 §9.3.2).
std::string render(const HttpResponse& r, size_t announced_length) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(announced_length) + "\r\n";
  for (const auto& [name, value] : r.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

std::string render(const HttpResponse& r) { return render(r, r.body.size()); }

}  // namespace

struct HttpServer::Impl {
  std::thread thread;
  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> served{0};
};

HttpServer::~HttpServer() {
  stop();
  delete impl_;
}

void HttpServer::handle(std::string path, Handler fn) {
  handlers_[std::move(path)] = std::move(fn);
}

void HttpServer::handle_post(std::string path, Handler fn) {
  post_handlers_[std::move(path)] = std::move(fn);
}

void HttpServer::handle_delete(std::string path, Handler fn) {
  delete_handlers_[std::move(path)] = std::move(fn);
}

std::string HttpServer::allow_header(const std::string& path) const {
  // Methods the path actually serves, in the order RFC 9110 examples use.
  std::string allow;
  const auto add = [&allow](const char* m) {
    if (!allow.empty()) allow += ", ";
    allow += m;
  };
  if (handlers_.count(path) != 0) add("GET, HEAD");
  if (post_handlers_.count(path) != 0) add("POST");
  if (delete_handlers_.count(path) != 0) add("DELETE");
  return allow;
}

void HttpServer::start(uint16_t port) {
  if (listen_fd_ >= 0) throw std::runtime_error("http: already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("http: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  if (!impl_) impl_ = new Impl();
  impl_->stopping.store(false);
  impl_->thread = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  impl_->stopping.store(true);
  // Unblock accept(): shutdown makes it return; close releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (impl_->thread.joinable()) impl_->thread.join();
  listen_fd_ = -1;
}

uint64_t HttpServer::requests_served() const {
  return impl_ ? impl_->served.load() : 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down
    }
    if (impl_->stopping.load()) {
      ::close(conn);
      return;
    }
    serve_one(conn);
    ::close(conn);
    impl_->served.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::serve_one(int conn) {
  // Per-connection read timeout: a peer that connects and never finishes a
  // request must not wedge the (single-threaded) accept loop.  recv()
  // returns EAGAIN/EWOULDBLOCK on expiry and the peer gets an explicit 408.
  if (read_timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = read_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>((read_timeout_ms_ % 1000) * 1000);
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  std::string head;
  char buf[2048];
  bool timed_out = false;
  size_t body_start = std::string::npos;
  while ((body_start = head.find("\r\n\r\n")) == std::string::npos) {
    if (head.size() >= kMaxHeadBytes) {
      // Oversized request line/headers: tell the peer instead of parsing a
      // truncated head into a misleading 400 (or worse, reading forever).
      write_all_fd(conn,
                   render(HttpResponse::text("request head too large\n", 413)));
      return;
    }
    const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      timed_out = (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    head.append(buf, static_cast<size_t>(n));
  }
  if (body_start == std::string::npos) {
    if (timed_out) {
      write_all_fd(conn,
                   render(HttpResponse::text("request read timeout\n", 408)));
    } else if (!head.empty()) {
      write_all_fd(conn, render(HttpResponse::text("malformed request\n", 400)));
    }
    return;
  }

  HttpResponse resp;
  HttpRequest req;
  const size_t line_end = head.find("\r\n");
  const size_t sp1 = head.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
  if (line_end == std::string::npos || sp1 == std::string::npos ||
      sp2 == std::string::npos || sp2 > line_end) {
    write_all_fd(conn, render(HttpResponse::text("malformed request\n", 400)));
    return;
  }
  req.method = head.substr(0, sp1);
  req.target = head.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t q = req.target.find('?');
  req.path = req.target.substr(0, q);
  req.query =
      q == std::string::npos ? std::string() : req.target.substr(q + 1);

  if (req.method == "POST") {
    const size_t length = content_length(head.substr(0, body_start));
    if (length > kMaxBodyBytes) {
      write_all_fd(conn,
                   render(HttpResponse::text("request body too large\n", 413)));
      return;
    }
    req.body = head.substr(body_start + 4);
    while (req.body.size() < length) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          write_all_fd(
              conn, render(HttpResponse::text("request read timeout\n", 408)));
          return;
        }
        break;
      }
      req.body.append(buf, static_cast<size_t>(n));
    }
    if (req.body.size() < length) {
      write_all_fd(conn,
                   render(HttpResponse::text("truncated request body\n", 400)));
      return;
    }
    req.body.resize(length);
  }

  // Method routing: a known path hit with a method it does not serve is a
  // 405 naming the methods it does (Allow, RFC 9110 §15.5.6); only a path
  // no method serves is a 404.
  const std::map<std::string, Handler>* table = nullptr;
  if (req.method == "GET" || req.method == "HEAD") {
    table = &handlers_;
  } else if (req.method == "POST") {
    table = &post_handlers_;
  } else if (req.method == "DELETE") {
    table = &delete_handlers_;
  }
  const Handler* handler = nullptr;
  if (table != nullptr) {
    const auto it = table->find(req.path);
    if (it != table->end()) handler = &it->second;
  }
  if (handler == nullptr) {
    const std::string allow = allow_header(req.path);
    if (allow.empty()) {
      resp = HttpResponse::text("not found: " + req.path + "\n", 404);
    } else {
      resp = HttpResponse::text(
          req.method + " not allowed for: " + req.path + "\n", 405);
      resp.headers.emplace_back("Allow", allow);
    }
  } else {
    try {
      resp = (*handler)(req);
    } catch (const std::exception& e) {
      resp = HttpResponse::text(
          std::string("handler error: ") + e.what() + "\n", 500);
    }
  }
  const size_t full_length = resp.body.size();
  if (req.method == "HEAD") resp.body.clear();
  write_all_fd(conn, render(resp, full_length));
}

void handle_get_versioned(HttpServer& srv, const std::string& suffix,
                          HttpServer::Handler fn) {
  const std::string canonical = "/api/v1" + suffix;
  srv.handle(canonical, fn);
  // Legacy alias: same handler, stamped with the deprecation headers so
  // scrapers can find the successor path mechanically.
  srv.handle(suffix, [fn = std::move(fn), canonical](const HttpRequest& req) {
    HttpResponse r = fn(req);
    r.headers.emplace_back("Deprecation", "true");
    r.headers.emplace_back("Link",
                           "<" + canonical + ">; rel=\"successor-version\"");
    return r;
  });
}

void register_observability_endpoints(HttpServer& srv,
                                      std::function<bool()> healthy,
                                      TraceGovernor* governor) {
  // Scrapes and alert payloads identify the emitting daemon by these.
  register_build_info();
  srv.handle("/", [](const HttpRequest&) {
    return HttpResponse::text(
        "netqre observability endpoints:\n"
        "  /api/v1/metrics  Prometheus exposition\n"
        "  /api/v1/statz    metrics snapshot (JSON)\n"
        "  /api/v1/tracez   flight recorder (Chrome trace JSON)\n"
        "  /api/v1/dump     write a flight-recorder dump to disk\n"
        "  /healthz         liveness probe\n"
        "(bare /metrics, /statz, /tracez, /dump are deprecated aliases)\n");
  });
  handle_get_versioned(srv, "/metrics", [](const HttpRequest&) {
    touch_uptime();
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = registry().snapshot().to_prometheus();
    return r;
  });
  handle_get_versioned(srv, "/statz", [](const HttpRequest&) {
    touch_uptime();
    return HttpResponse::json(registry().snapshot().to_json());
  });
  srv.handle("/healthz", [healthy = std::move(healthy)](const HttpRequest&) {
    return healthy() ? HttpResponse::text("ok\n")
                     : HttpResponse::text("engine not live\n", 503);
  });
  handle_get_versioned(srv, "/tracez", [](const HttpRequest&) {
    return HttpResponse::json(
        tracer().snapshot().to_chrome_json("/tracez request"));
  });
  handle_get_versioned(srv, "/dump", [governor](const HttpRequest&) {
    if (!governor) {
      return HttpResponse::text("no trace governor wired\n", 503);
    }
    return HttpResponse::text(governor->dump_now("manual /dump request") +
                              "\n");
  });
}

}  // namespace netqre::obs
