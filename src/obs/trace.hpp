// Flight recorder: an always-on, lock-free ring buffer of recent runtime
// events (DESIGN.md "Tracing & live monitoring").
//
// The metrics registry (obs/metrics.hpp) explains *aggregate* behavior; the
// flight recorder explains *what just happened*.  Each thread that records
// owns a private fixed-size ring of typed events (batch boundaries, shard
// queue activity, backpressure waits, reassembly gaps, action fires, slow
// packets), so a hot-path record is: one TLS load, one relaxed enabled
// check, a slot write, and one release store — no locks, no allocation.
// When something interesting happens (a latency spike, a saturated shard
// queue) the last ~N events per thread are still in memory and can be
// snapshotted into a Chrome trace_event JSON (chrome://tracing / Perfetto)
// or a human-readable dump.
//
// TraceGovernor closes the loop: it watches registry-derived signals (p99
// latency jump, shard-queue saturation, truncated-record bursts) and
// snapshots the rings to disk automatically, so the interesting window is
// captured without any always-on logging cost.
//
// Like the metrics layer, everything here compiles to a true no-op under
// -DNETQRE_TELEMETRY=OFF: record() is an empty inline, snapshots are empty,
// and the governor never fires (it only ever sees empty snapshots).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace netqre::obs {

enum class TraceKind : uint8_t {
  BatchBegin = 0,    // a: batch size
  BatchEnd,          // a: batch size, b: wall ns for the batch
  SlowPacket,        // a: sampled per-packet latency ns, b: threshold ns
  ScopeWideStep,     // a: guard-trie leaves stepped this packet, b: threshold
  ShardEnqueue,      // a: shard index, b: queue depth after enqueue
  ShardDequeue,      // a: shard index, b: queue depth after dequeue
  BackpressureWait,  // a: shard index, b: wait ns
  GapOpen,           // a: connection hash, b: sequence distance of the gap
  GapRelease,        // a: 1 when forced by buffer overflow/flush, b: segments
  ActionFire,        // a: distinct actions fired so far
  StoreRotate,       // a: destination tier (1 or 2), b: keys folded
  AlertTransition,   // a: transition seq, b: new status (0/1/2)
  Mark,              // free-form; a/b are caller-defined
};

// Stable lower_snake_case label for a kind (used by both exporters).
[[nodiscard]] const char* trace_kind_name(TraceKind k);

// One recorded event, as read back by a snapshot.
struct TraceEvent {
  uint64_t ts_ns = 0;  // steady-clock ns since the recorder epoch
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t tid = 0;    // recorder-assigned ring id
  TraceKind kind = TraceKind::Mark;
};

// A consistent-enough copy of every ring: events merged across threads in
// timestamp order.  Concurrent writers keep writing while a snapshot is
// taken; slots caught mid-write are skipped (per-slot seqlock), so a
// snapshot never contains torn events.
struct TraceSnapshot {
  struct Thread {
    uint32_t tid = 0;
    std::string name;  // "shard-3", "engine", ... (empty when unnamed)
  };
  std::vector<Thread> threads;
  std::vector<TraceEvent> events;  // ascending ts_ns
  uint64_t dropped = 0;  // events overwritten in the rings since clear()

  // Chrome trace_event JSON ({"traceEvents": [...]}): BatchBegin/BatchEnd
  // pairs become complete ("X") slices, BackpressureWait becomes a slice of
  // its wait duration, everything else an instant event; thread names are
  // emitted as metadata.  Loads in chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_json(
      std::string_view reason = {}) const;
  // One line per event: "[+1.234567s] tid=2(shard-0) shard_enqueue a=0 b=3".
  [[nodiscard]] std::string to_text() const;
};

#if !defined(NETQRE_TELEMETRY_DISABLED)

// Process-wide recorder.  Rings are created lazily, one per recording
// thread, and survive thread exit (a dump usually happens *after* the
// interesting thread finished); when more threads than kMaxRings have come
// and gone, the oldest retired ring is reset and reused, bounding memory.
class TraceRecorder {
 public:
  // One thread's event ring (definition is internal to trace.cpp; public
  // so the thread-exit lease can hold a pointer).
  struct Ring;

  static TraceRecorder& global();

  // Events kept per thread.  Rounded up to a power of two.
  static constexpr size_t kDefaultRingEvents = 4096;
  // Ring-reuse bound: at most this many rings are kept alive.
  static constexpr size_t kMaxRings = 64;

  // Hot path.  One TLS load + relaxed atomic check when disabled.
  void record(TraceKind k, uint64_t a = 0, uint64_t b = 0);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Labels the calling thread's ring in exports ("shard-0", "dispatcher").
  void set_thread_name(std::string_view name);

  // Capacity (events) for rings created after this call; existing rings
  // keep theirs.  Rounded up to a power of two.
  void set_ring_capacity(size_t events);

  [[nodiscard]] TraceSnapshot snapshot() const;

  // Forgets all recorded events (ring registrations survive).  Callers must
  // ensure producers are quiescent (between runs / in tests).
  void clear();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  struct Impl;
  Impl* impl_;  // leaked with the singleton
  std::atomic<bool> enabled_{true};

  Ring* ring_for_this_thread();
};

#else  // NETQRE_TELEMETRY_DISABLED — the recorder is a true no-op.

class TraceRecorder {
 public:
  static TraceRecorder& global() {
    static TraceRecorder r;
    return r;
  }
  static constexpr size_t kDefaultRingEvents = 0;
  static constexpr size_t kMaxRings = 0;
  void record(TraceKind, uint64_t = 0, uint64_t = 0) {}
  [[nodiscard]] bool enabled() const { return false; }
  void set_enabled(bool) {}
  void set_thread_name(std::string_view) {}
  void set_ring_capacity(size_t) {}
  [[nodiscard]] TraceSnapshot snapshot() const { return {}; }
  void clear() {}
};

#endif  // NETQRE_TELEMETRY_DISABLED

// Shorthand for TraceRecorder::global().
inline TraceRecorder& tracer() { return TraceRecorder::global(); }

// ---------------------------------------------------------------- governor

// Trigger thresholds for anomaly dumps.  Defaults are conservative: a dump
// should mean "something is actually wrong", not "traffic exists".
struct GovernorConfig {
  std::string dump_dir = ".";          // created on first dump
  std::string prefix = "netqre_trace"; // dump files: <prefix>_<n>.json
  // p99 packet latency this poll > p99_jump x its smoothed baseline.
  double p99_jump = 4.0;
  // Baseline smoothing factor for the p99 EMA (0 < alpha <= 1).
  double p99_alpha = 0.2;
  // Latency observations that must have arrived since the last poll before
  // the p99 signal is considered (avoids firing on startup noise).
  uint64_t min_latency_samples = 8;
  // Any netqre_parallel_shard_queue_depth gauge at/above this depth.
  int64_t queue_saturation_depth = 8;
  // netqre_pcap_truncated_records_total delta per poll at/above this.
  uint64_t truncated_burst = 64;
  // Minimum ns between automatic dumps *of the same trigger kind*
  // ("latency", "queue", "truncated", "alert", ...).  Kinds cool down
  // independently, so an alert-triggered dump is never starved by an
  // earlier latency-jump dump or vice versa.
  uint64_t cooldown_ns = 10'000'000'000ull;  // 10 s
};

// Watches metric snapshots for anomalies and dumps the flight-recorder
// rings when one trips.  Stateful (EMA baseline, per-counter last values,
// cooldown clock); not thread-safe — poll it from one thread.
class TraceGovernor {
 public:
  explicit TraceGovernor(GovernorConfig cfg = {});

  // Evaluates the trigger signals against `snap` and updates the internal
  // baselines.  Returns a human-readable reason when a signal trips, empty
  // otherwise.  Pure decision logic — never writes a dump (testable).
  [[nodiscard]] std::string check(const Snapshot& snap);

  // check(registry().snapshot()); on a trip outside the tripped kind's
  // cooldown window, writes the ring snapshot to disk and returns the dump
  // path.
  std::optional<std::string> poll();

  // Cooldown-gated dump for an external trigger (the health engine's
  // CRITICAL transitions use kind "alert").  Writes a dump unless a dump
  // of the same `kind` happened within cooldown_ns; other kinds' dumps
  // never suppress it.  Returns the path, or nullopt when cooling down.
  std::optional<std::string> request_dump(std::string_view kind,
                                          const std::string& reason);

  // Unconditionally dumps the rings now (the /dump endpoint).  Returns the
  // written path.  Throws std::runtime_error when the file cannot be
  // written.
  std::string dump_now(const std::string& reason);

  [[nodiscard]] uint64_t dumps_written() const { return n_dumps_; }
  [[nodiscard]] const GovernorConfig& config() const { return cfg_; }
  // Trigger kind of the last check() trip ("latency" | "queue" |
  // "truncated"); empty when check never tripped.
  [[nodiscard]] const std::string& last_trip_kind() const {
    return last_trip_kind_;
  }

 private:
  GovernorConfig cfg_;
  double p99_baseline_ = 0;        // EMA of observed p99
  bool baseline_valid_ = false;
  uint64_t last_latency_count_ = 0;
  uint64_t last_truncated_ = 0;
  std::string last_trip_kind_;
  // steady-clock ns of the last dump, per trigger kind (absent = never).
  std::map<std::string, uint64_t, std::less<>> last_dump_ns_;
  uint64_t n_dumps_ = 0;
};

}  // namespace netqre::obs
