#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace netqre::obs {

// ------------------------------------------------------------ snapshots

const MetricSample* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double histogram_quantile(const MetricSample& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(h.count);
  uint64_t seen = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    const uint64_t next = seen + h.buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [lo, hi] of this bucket.
      const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
      const double hi =
          i < h.bounds.size() ? h.bounds[i] : std::max(lo * 2.0, lo + 1.0);
      const double frac =
          h.buckets[i] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(h.buckets[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

std::string sanitize_metric_name(std::string_view name) {
  auto ok = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
      return true;
    }
    return !first && c >= '0' && c <= '9';
  };
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) out += ok(c, out.empty()) ? c : '_';
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled_name(std::string_view base,
                         std::initializer_list<LabelView> labels) {
  std::string out = sanitize_metric_name(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    // Label keys may not contain ':' (reserved for recording rules).
    std::string k = sanitize_metric_name(key);
    for (char& c : k) {
      if (c == ':') c = '_';
    }
    out += k;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

BuildInfo build_info() {
#if defined(NETQRE_VERSION)
  constexpr const char* kVersion = NETQRE_VERSION;
#else
  constexpr const char* kVersion = "unknown";
#endif
#if defined(NETQRE_GIT_SHA)
  constexpr const char* kGitSha = NETQRE_GIT_SHA;
#else
  constexpr const char* kGitSha = "unknown";
#endif
  return {kVersion, kGitSha};
}

namespace {

// Uptime epoch: pinned at the first register_build_info/touch_uptime call
// (process start for any daemon that exports metrics).
std::chrono::steady_clock::time_point uptime_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

void register_build_info() {
  const BuildInfo bi = build_info();
  registry()
      .gauge(labeled_name("netqre_build_info",
                          {{"version", bi.version}, {"git_sha", bi.git_sha}}))
      .set(1);
  touch_uptime();
}

void touch_uptime() {
  const auto up = std::chrono::steady_clock::now() - uptime_epoch();
  registry()
      .gauge("netqre_uptime_seconds")
      .set(std::chrono::duration_cast<std::chrono::seconds>(up).count());
}

std::span<const double> latency_bounds_ns() {
  // 16 ns .. 2^26 ns (~67 ms), powers of two: 23 buckets.
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    for (double v = 16; v <= 67'108'864.0; v *= 2) b.push_back(v);
    return b;
  }();
  return kBounds;
}

std::string Snapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& m : metrics) {
    w.key(m.name).begin_object();
    switch (m.kind) {
      case MetricKind::Counter:
        w.key("type").value("counter");
        w.key("value").value(m.count);
        break;
      case MetricKind::Gauge:
        w.key("type").value("gauge");
        w.key("value").value(m.value);
        w.key("peak").value(m.peak);
        break;
      case MetricKind::Histogram: {
        w.key("type").value("histogram");
        w.key("count").value(m.count);
        w.key("sum").value(m.sum);
        w.key("p50").value(histogram_quantile(m, 0.5));
        w.key("p90").value(histogram_quantile(m, 0.9));
        w.key("p99").value(histogram_quantile(m, 0.99));
        w.key("bounds").begin_array();
        for (double b : m.bounds) w.value(b);
        w.end_array();
        w.key("buckets").begin_array();
        for (uint64_t c : m.buckets) w.value(c);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

namespace {

// Splits `name{label="x"}` into the base name and the label block, so the
// Prometheus exposition can emit `# TYPE` once per base name.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  std::string_view last_base;
  for (const auto& m : metrics) {
    const auto [base, labels] = split_labels(m.name);
    const char* type = m.kind == MetricKind::Counter   ? "counter"
                       : m.kind == MetricKind::Gauge   ? "gauge"
                                                       : "histogram";
    if (base != last_base) {
      out += "# TYPE ";
      out += base;
      out += ' ';
      out += type;
      out += '\n';
      last_base = base;
    }
    switch (m.kind) {
      case MetricKind::Counter:
        out += m.name;
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      case MetricKind::Gauge:
        out += m.name;
        out += ' ';
        out += std::to_string(m.value);
        out += '\n';
        break;
      case MetricKind::Histogram: {
        uint64_t cum = 0;
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          cum += m.buckets[i];
          out += base;
          out += "_bucket{";
          if (labels.size() > 2) {  // merge existing labels
            out += labels.substr(1, labels.size() - 2);
            out += ',';
          }
          out += "le=\"";
          out += i < m.bounds.size() ? fmt_double(m.bounds[i]) : "+Inf";
          out += "\"} ";
          out += std::to_string(cum);
          out += '\n';
        }
        out += base;
        out += "_sum";
        out += labels;
        out += ' ';
        out += fmt_double(m.sum);
        out += '\n';
        out += base;
        out += "_count";
        out += labels;
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------- registry

#if !defined(NETQRE_TELEMETRY_DISABLED)

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds must be increasing");
    }
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  std::mutex mu;
  // std::map: stable addresses are guaranteed by unique_ptr; ordered
  // iteration gives deterministic, label-grouped snapshots for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  void check_unique(std::string_view name, int self) {
    // A name may live in exactly one kind map.
    if (self != 0 && counters.find(name) != counters.end()) {
      throw std::runtime_error("metric kind mismatch: " + std::string(name));
    }
    if (self != 1 && gauges.find(name) != gauges.end()) {
      throw std::runtime_error("metric kind mismatch: " + std::string(name));
    }
    if (self != 2 && histograms.find(name) != histograms.end()) {
      throw std::runtime_error("metric kind mismatch: " + std::string(name));
    }
  }
};

Registry& Registry::global() {
  // Leaked singleton: call sites cache references across static
  // destruction order.
  static Registry* g = new Registry();
  return *g;
}

Registry::Impl& Registry::impl() {
  static std::mutex init_mu;
  std::lock_guard lock(init_mu);
  if (!impl_) impl_ = new Impl();
  return *impl_;
}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    im.check_unique(name, 0);
    it = im.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    im.check_unique(name, 1);
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    im.check_unique(name, 2);
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  if (!impl_) return snap;
  std::lock_guard lock(impl_->mu);
  snap.metrics.reserve(impl_->counters.size() + impl_->gauges.size() +
                       impl_->histograms.size());
  for (const auto& [name, c] : impl_->counters) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Counter;
    m.count = c->value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, g] : impl_->gauges) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Gauge;
    m.value = g->value();
    m.peak = g->peak();
    m.count = g->sets();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, h] : impl_->histograms) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Histogram;
    m.count = h->count();
    m.sum = h->sum();
    m.bounds = h->bounds();
    m.buckets = h->bucket_counts();
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  if (!impl_) return;
  std::lock_guard lock(impl_->mu);
  for (auto& [_, c] : impl_->counters) c->reset();
  for (auto& [_, g] : impl_->gauges) g->reset();
  for (auto& [_, h] : impl_->histograms) h->reset();
}

#else  // NETQRE_TELEMETRY_DISABLED

struct Registry::Impl {};

Registry& Registry::global() {
  static Registry* g = new Registry();
  return *g;
}

Registry::Impl& Registry::impl() {
  static Impl im;
  return im;
}

Registry::~Registry() = default;

Counter& Registry::counter(std::string_view) {
  static Counter c;
  return c;
}

Gauge& Registry::gauge(std::string_view) {
  static Gauge g;
  return g;
}

Histogram& Registry::histogram(std::string_view, std::span<const double>) {
  static Histogram h{std::span<const double>{}};
  return h;
}

Snapshot Registry::snapshot() const { return {}; }

void Registry::reset() {}

#endif  // NETQRE_TELEMETRY_DISABLED

}  // namespace netqre::obs
