// Runtime telemetry: a process-wide registry of cheap counters, gauges and
// fixed-bucket histograms (§6 / Fig. 7–9 expose exactly these quantities).
//
// Design constraints, in order:
//   1. Hot-path increments are one relaxed atomic RMW — no locks, no
//      allocation, no string handling.  Registration (cold path) takes a
//      mutex and interns the name; call sites cache the returned reference.
//   2. The whole layer compiles to nothing under -DNETQRE_TELEMETRY=OFF
//      (`NETQRE_TELEMETRY_DISABLED`): the metric classes become empty
//      stubs, `kEnabled` is false so callers can `if constexpr` away any
//      sampling work (clock reads, state walks), and snapshots are empty.
//   3. Metric names follow `netqre_<layer>_<what>[_<unit>][_total]`, with
//      Prometheus-style labels baked into the name when a dimension is
//      bounded and known at the call site, e.g.
//      `netqre_op_steps_total{kind="split"}`.  The flat name doubles as the
//      exposition line, so snapshot_prometheus() needs no label machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace netqre::obs {

#if defined(NETQRE_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

// One metric read at one instant.  Histograms carry cumulative-style bucket
// counts (bucket[i] counts observations <= bounds[i]; an implicit +inf
// bucket is `count - sum(buckets)`).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  uint64_t count = 0;        // counter value / gauge sets / histogram count
  int64_t value = 0;         // gauge: current value
  int64_t peak = 0;          // gauge: high-water mark
  double sum = 0;            // histogram: sum of observations
  std::vector<double> bounds;     // histogram: bucket upper bounds
  std::vector<uint64_t> buckets;  // histogram: per-bucket counts (not cum.)
};

struct Snapshot {
  std::vector<MetricSample> metrics;

  // Finds a metric by exact name; nullptr when absent.
  [[nodiscard]] const MetricSample* find(std::string_view name) const;
  // {"netqre_x_total": {...}, ...} object keyed by metric name.
  [[nodiscard]] std::string to_json() const;
  // Prometheus text exposition format (histograms as cumulative buckets).
  [[nodiscard]] std::string to_prometheus() const;
};

// Quantile estimate from a histogram sample via linear interpolation within
// the owning bucket.  Returns 0 when the histogram is empty.
[[nodiscard]] double histogram_quantile(const MetricSample& h, double q);

// ---- Prometheus exposition hygiene ----------------------------------------
// Metric names here bake their labels into the registry key (see the header
// comment), so label hygiene has to happen where names are built.  These
// helpers are that one place; every dynamic-label call site goes through
// labeled_name().

// Clamps a metric/label name to [a-zA-Z_:][a-zA-Z0-9_:]* (invalid characters
// become '_'; a leading digit gets a '_' prefix; empty becomes "_").
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

// Escapes a label value for the text exposition: backslash, double quote
// and newline become \\, \" and \n.
[[nodiscard]] std::string escape_label_value(std::string_view value);

// Builds `base{k1="v1",k2="v2"}` with the base and keys sanitized and the
// values escaped.  With no labels, returns the sanitized base alone.
struct LabelView {
  std::string_view key;
  std::string_view value;
};
[[nodiscard]] std::string labeled_name(
    std::string_view base, std::initializer_list<LabelView> labels);

// Default latency bucket bounds: powers of two from 16 ns to ~67 ms.
[[nodiscard]] std::span<const double> latency_bounds_ns();

// ---- build identity -------------------------------------------------------

// Compile-time build identity (CMake project version + git short sha;
// "unknown" when built outside a checkout).
struct BuildInfo {
  const char* version;
  const char* git_sha;
};
[[nodiscard]] BuildInfo build_info();

// Registers netqre_build_info{version=...,git_sha=...} (a gauge pinned to
// 1, the Prometheus build-identity convention) and starts the uptime
// clock.  Idempotent; called by register_observability_endpoints.
void register_build_info();

// Refreshes the netqre_uptime_seconds gauge (seconds since the first
// register_build_info/touch_uptime call).  Scrape handlers call this so
// every exposition carries a current value.
void touch_uptime();

#if !defined(NETQRE_TELEMETRY_DISABLED)

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p &&
           !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
    sets_.fetch_add(1, std::memory_order_relaxed);
  }
  void add(int64_t d) { set(v_.load(std::memory_order_relaxed) + d); }
  [[nodiscard]] int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sets() const {
    return sets_.load(std::memory_order_relaxed);
  }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    sets_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> sets_{0};
};

class Histogram {
 public:
  // `bounds` must be strictly increasing; copied at registration.
  explicit Histogram(std::span<const double> bounds);

  void observe(double v) {
    // Branchless-ish linear scan: bucket counts are small (<= 24) and the
    // common case lands early for latency distributions.
    size_t i = 0;
    const size_t n = bounds_.size();
    while (i < n && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed double accumulation: a CAS loop on the bit pattern.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  // One slot per bound plus the +inf overflow bucket.
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

#else  // NETQRE_TELEMETRY_DISABLED — zero-size stubs, all calls no-ops.

class Counter {
 public:
  void inc(uint64_t = 1) {}
  [[nodiscard]] uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(int64_t) {}
  void add(int64_t) {}
  [[nodiscard]] int64_t value() const { return 0; }
  [[nodiscard]] int64_t peak() const { return 0; }
  [[nodiscard]] uint64_t sets() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::span<const double>) {}
  void observe(double) {}
  [[nodiscard]] uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0; }
  [[nodiscard]] const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] std::vector<uint64_t> bucket_counts() const { return {}; }
  void reset() {}
};

#endif  // NETQRE_TELEMETRY_DISABLED

// Process-wide metric registry.  Registration is idempotent: the same name
// always returns the same instance (first registration wins on kind/bounds;
// a kind mismatch throws).  References remain valid for the process
// lifetime.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds);

  // Consistent point-in-time read of every registered metric, sorted by
  // name.  Empty in the no-op build.
  [[nodiscard]] Snapshot snapshot() const;

  // Zeroes every registered metric (tests, repeated profile runs).
  void reset();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // lazily created; null in the no-op build
  Impl& impl();
};

// Shorthand for Registry::global().
inline Registry& registry() { return Registry::global(); }

}  // namespace netqre::obs
