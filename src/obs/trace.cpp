#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace netqre::obs {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::BatchBegin: return "batch_begin";
    case TraceKind::BatchEnd: return "batch_end";
    case TraceKind::SlowPacket: return "slow_packet";
    case TraceKind::ScopeWideStep: return "scope_wide_step";
    case TraceKind::ShardEnqueue: return "shard_enqueue";
    case TraceKind::ShardDequeue: return "shard_dequeue";
    case TraceKind::BackpressureWait: return "backpressure_wait";
    case TraceKind::GapOpen: return "gap_open";
    case TraceKind::GapRelease: return "gap_release";
    case TraceKind::ActionFire: return "action_fire";
    case TraceKind::StoreRotate: return "store_rotate";
    case TraceKind::AlertTransition: return "alert_transition";
    case TraceKind::Mark: return "mark";
  }
  return "unknown";
}

// ---------------------------------------------------------------- exports

namespace {

// The arg names each kind's a/b fields carry in the Chrome JSON.
std::pair<const char*, const char*> arg_names(TraceKind k) {
  switch (k) {
    case TraceKind::BatchBegin: return {"packets", nullptr};
    case TraceKind::BatchEnd: return {"packets", "wall_ns"};
    case TraceKind::SlowPacket: return {"latency_ns", "threshold_ns"};
    case TraceKind::ScopeWideStep: return {"leaves", "threshold"};
    case TraceKind::ShardEnqueue: return {"shard", "depth"};
    case TraceKind::ShardDequeue: return {"shard", "depth"};
    case TraceKind::BackpressureWait: return {"shard", "wait_ns"};
    case TraceKind::GapOpen: return {"conn_hash", "seq_distance"};
    case TraceKind::GapRelease: return {"forced", "segments"};
    case TraceKind::ActionFire: return {"actions", nullptr};
    case TraceKind::StoreRotate: return {"tier", "keys"};
    case TraceKind::AlertTransition: return {"seq", "status"};
    case TraceKind::Mark: return {"a", "b"};
  }
  return {"a", "b"};
}

void write_args(JsonWriter& w, const TraceEvent& e) {
  const auto [an, bn] = arg_names(e.kind);
  w.key("args").begin_object();
  if (an) w.key(an).value(e.a);
  if (bn) w.key(bn).value(e.b);
  w.end_object();
}

double to_us(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::string TraceSnapshot::to_chrome_json(std::string_view reason) const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& t : threads) {
    if (t.name.empty()) continue;
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(t.tid);
    w.key("args").begin_object();
    w.key("name").value(t.name);
    w.end_object();
    w.end_object();
  }
  // Open BatchBegin per tid, closed by the next BatchEnd on the same tid.
  std::vector<std::pair<uint32_t, TraceEvent>> open_batches;
  for (const auto& e : events) {
    if (e.kind == TraceKind::BatchBegin) {
      open_batches.emplace_back(e.tid, e);
      continue;
    }
    if (e.kind == TraceKind::BatchEnd) {
      auto it = std::find_if(open_batches.rbegin(), open_batches.rend(),
                             [&](const auto& p) { return p.first == e.tid; });
      w.begin_object();
      w.key("name").value("batch");
      w.key("ph").value("X");
      w.key("pid").value(1);
      w.key("tid").value(e.tid);
      if (it != open_batches.rend()) {
        w.key("ts").value(to_us(it->second.ts_ns));
        w.key("dur").value(to_us(e.ts_ns - it->second.ts_ns));
        open_batches.erase(std::next(it).base());
      } else {
        // Begin was overwritten in the ring: reconstruct from wall_ns.
        w.key("ts").value(to_us(e.ts_ns >= e.b ? e.ts_ns - e.b : 0));
        w.key("dur").value(to_us(e.b));
      }
      write_args(w, e);
      w.end_object();
      continue;
    }
    if (e.kind == TraceKind::BackpressureWait) {
      w.begin_object();
      w.key("name").value(trace_kind_name(e.kind));
      w.key("ph").value("X");
      w.key("pid").value(1);
      w.key("tid").value(e.tid);
      w.key("ts").value(to_us(e.ts_ns >= e.b ? e.ts_ns - e.b : 0));
      w.key("dur").value(to_us(e.b));
      write_args(w, e);
      w.end_object();
      continue;
    }
    w.begin_object();
    w.key("name").value(trace_kind_name(e.kind));
    w.key("ph").value("i");
    w.key("s").value("t");
    w.key("pid").value(1);
    w.key("tid").value(e.tid);
    w.key("ts").value(to_us(e.ts_ns));
    write_args(w, e);
    w.end_object();
  }
  // Begins with no matching end yet (a batch in flight at snapshot time).
  for (const auto& [tid, e] : open_batches) {
    w.begin_object();
    w.key("name").value("batch_begin");
    w.key("ph").value("i");
    w.key("s").value("t");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("ts").value(to_us(e.ts_ns));
    write_args(w, e);
    w.end_object();
  }
  w.end_array();
  w.key("otherData").begin_object();
  w.key("tool").value("netqre");
  w.key("events").value(events.size());
  w.key("dropped").value(dropped);
  if (!reason.empty()) w.key("reason").value(reason);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string TraceSnapshot::to_text() const {
  std::string out;
  auto name_of = [&](uint32_t tid) -> const std::string* {
    for (const auto& t : threads) {
      if (t.tid == tid && !t.name.empty()) return &t.name;
    }
    return nullptr;
  };
  char buf[160];
  for (const auto& e : events) {
    const std::string* tname = name_of(e.tid);
    std::snprintf(buf, sizeof(buf),
                  "[+%10.6fs] tid=%u%s%s%s %-17s a=%llu b=%llu\n",
                  static_cast<double>(e.ts_ns) / 1e9, e.tid,
                  tname ? "(" : "", tname ? tname->c_str() : "",
                  tname ? ")" : "", trace_kind_name(e.kind),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += buf;
  }
  if (dropped) {
    std::snprintf(buf, sizeof(buf),
                  "(%llu older events overwritten in the rings)\n",
                  static_cast<unsigned long long>(dropped));
    out += buf;
  }
  return out;
}

// --------------------------------------------------------------- recorder

#if !defined(NETQRE_TELEMETRY_DISABLED)

namespace {
using Clock = std::chrono::steady_clock;

uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
}  // namespace

// Single-writer ring with a per-slot seqlock: the writer marks a slot
// in-progress (seq = 0), writes the payload, then publishes seq = index+1
// with release order.  Readers copy the payload between two acquire loads
// and keep it only when the loads agree — concurrent overwrites are skipped
// instead of torn.
struct TraceRecorder::Ring {
  explicit Ring(size_t cap, uint32_t id)
      : slots(cap), seqs(cap), tid(id), mask(cap - 1) {}

  // Payload words are relaxed atomics, not a plain TraceEvent: a snapshot's
  // copy deliberately overlaps concurrent overwrites (the seq recheck
  // discards torn copies), and atomic words keep that overlap a defined
  // race-free read instead of UB the sanitizer rightly flags.
  struct Slot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> meta{0};  // tid | kind << 32
  };
  std::vector<Slot> slots;
  std::vector<std::atomic<uint64_t>> seqs;  // 0 = empty/in-progress
  std::atomic<uint64_t> head{0};            // next index (single writer)
  std::atomic<bool> retired{false};         // owning thread exited
  uint32_t tid;
  uint64_t mask;
  std::string name;  // guarded by Impl::mu

  void reset() {
    for (auto& s : seqs) s.store(0, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
  }
};

struct TraceRecorder::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  size_t ring_capacity = kDefaultRingEvents;
  Clock::time_point epoch = Clock::now();
  uint64_t cleared_dropped = 0;  // drops from rings reset on reuse
};

namespace {

// Returns the calling thread's ring to the recorder when the thread exits,
// so long-gone worker rings can be reused once kMaxRings is reached.  The
// events stay readable until the ring is actually reused.
struct RingLease {
  TraceRecorder::Ring* ring = nullptr;
  ~RingLease();
};

thread_local RingLease tl_lease;

}  // namespace

RingLease::~RingLease() {
  if (ring) ring->retired.store(true, std::memory_order_relaxed);
}

TraceRecorder::TraceRecorder() : impl_(new Impl()) {}

TraceRecorder& TraceRecorder::global() {
  // Leaked singleton, same lifetime story as the metrics Registry.
  static TraceRecorder* g = new TraceRecorder();
  return *g;
}

TraceRecorder::Ring* TraceRecorder::ring_for_this_thread() {
  if (tl_lease.ring) return tl_lease.ring;
  std::lock_guard lock(impl_->mu);
  Ring* r = nullptr;
  if (impl_->rings.size() >= kMaxRings) {
    // Reuse the retired ring with the oldest content.
    Ring* oldest = nullptr;
    for (auto& cand : impl_->rings) {
      if (!cand->retired.load(std::memory_order_relaxed)) continue;
      if (!oldest || cand->head.load(std::memory_order_relaxed) <
                         oldest->head.load(std::memory_order_relaxed)) {
        oldest = cand.get();
      }
    }
    if (oldest) {
      impl_->cleared_dropped +=
          std::min<uint64_t>(oldest->head.load(std::memory_order_relaxed),
                             oldest->slots.size());
      oldest->reset();
      oldest->retired.store(false, std::memory_order_relaxed);
      oldest->name.clear();
      r = oldest;
    }
  }
  if (!r) {
    const size_t cap = std::bit_ceil(std::max<size_t>(impl_->ring_capacity,
                                                      16));
    impl_->rings.push_back(std::make_unique<Ring>(
        cap, static_cast<uint32_t>(impl_->rings.size() + 1)));
    r = impl_->rings.back().get();
  }
  tl_lease.ring = r;
  return r;
}

void TraceRecorder::record(TraceKind k, uint64_t a, uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* r = ring_for_this_thread();
  const uint64_t idx = r->head.load(std::memory_order_relaxed);
  const size_t slot = idx & r->mask;
  r->seqs[slot].store(0, std::memory_order_relaxed);
  Ring::Slot& e = r->slots[slot];
  e.ts_ns.store(ns_between(impl_->epoch, Clock::now()),
                std::memory_order_relaxed);
  e.a.store(a, std::memory_order_relaxed);
  e.b.store(b, std::memory_order_relaxed);
  e.meta.store(uint64_t(r->tid) | (uint64_t(k) << 32),
               std::memory_order_relaxed);
  r->seqs[slot].store(idx + 1, std::memory_order_release);
  r->head.store(idx + 1, std::memory_order_relaxed);
}

void TraceRecorder::set_thread_name(std::string_view name) {
  Ring* r = ring_for_this_thread();
  std::lock_guard lock(impl_->mu);
  r->name = std::string(name);
}

void TraceRecorder::set_ring_capacity(size_t events) {
  std::lock_guard lock(impl_->mu);
  impl_->ring_capacity = std::max<size_t>(events, 16);
}

TraceSnapshot TraceRecorder::snapshot() const {
  TraceSnapshot snap;
  std::lock_guard lock(impl_->mu);
  snap.dropped = impl_->cleared_dropped;
  for (const auto& r : impl_->rings) {
    snap.threads.push_back({r->tid, r->name});
    const uint64_t head = r->head.load(std::memory_order_relaxed);
    const size_t cap = r->slots.size();
    if (head > cap) snap.dropped += head - cap;
    const uint64_t lo = head > cap ? head - cap : 0;
    for (uint64_t idx = lo; idx < head; ++idx) {
      const size_t slot = idx & r->mask;
      const uint64_t s1 = r->seqs[slot].load(std::memory_order_acquire);
      if (s1 != idx + 1) continue;  // overwritten or in progress
      const Ring::Slot& src = r->slots[slot];
      TraceEvent e;
      e.ts_ns = src.ts_ns.load(std::memory_order_relaxed);
      e.a = src.a.load(std::memory_order_relaxed);
      e.b = src.b.load(std::memory_order_relaxed);
      const uint64_t meta = src.meta.load(std::memory_order_relaxed);
      e.tid = static_cast<uint32_t>(meta);
      e.kind = static_cast<TraceKind>(meta >> 32);
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t s2 = r->seqs[slot].load(std::memory_order_relaxed);
      if (s2 != s1) continue;
      snap.events.push_back(e);
    }
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return snap;
}

void TraceRecorder::clear() {
  std::lock_guard lock(impl_->mu);
  for (auto& r : impl_->rings) r->reset();
  impl_->cleared_dropped = 0;
}

#endif  // !NETQRE_TELEMETRY_DISABLED

// --------------------------------------------------------------- governor

namespace {
using GClock = std::chrono::steady_clock;

uint64_t steady_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          GClock::now().time_since_epoch())
          .count());
}
}  // namespace

TraceGovernor::TraceGovernor(GovernorConfig cfg) : cfg_(std::move(cfg)) {}

std::string TraceGovernor::check(const Snapshot& snap) {
  std::string reason;

  // 1. p99 packet-latency jump against a smoothed baseline.
  if (const auto* lat = snap.find("netqre_engine_packet_latency_ns")) {
    const uint64_t fresh = lat->count - std::min(lat->count,
                                                 last_latency_count_);
    last_latency_count_ = lat->count;
    const double p99 = histogram_quantile(*lat, 0.99);
    if (fresh >= cfg_.min_latency_samples && p99 > 0) {
      if (baseline_valid_ && p99 > cfg_.p99_jump * p99_baseline_) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "p99 latency jump: %.0f ns vs %.0f ns baseline", p99,
                      p99_baseline_);
        reason = buf;
        last_trip_kind_ = "latency";
      }
      p99_baseline_ = baseline_valid_
                          ? (1 - cfg_.p99_alpha) * p99_baseline_ +
                                cfg_.p99_alpha * p99
                          : p99;
      baseline_valid_ = true;
    }
  }

  // 2. Shard queue saturation: any queue-depth gauge at the bound.
  for (const auto& m : snap.metrics) {
    if (m.kind != MetricKind::Gauge) continue;
    if (m.name.rfind("netqre_parallel_shard_queue_depth", 0) != 0) continue;
    if (m.value >= cfg_.queue_saturation_depth) {
      reason = "shard queue saturated: " + m.name + " depth " +
               std::to_string(m.value);
      last_trip_kind_ = "queue";
      break;
    }
  }

  // 3. Truncated-record burst.
  if (const auto* trunc = snap.find("netqre_pcap_truncated_records_total")) {
    const uint64_t delta =
        trunc->count - std::min(trunc->count, last_truncated_);
    last_truncated_ = trunc->count;
    if (delta >= cfg_.truncated_burst && cfg_.truncated_burst > 0) {
      reason = "truncated-record burst: " + std::to_string(delta) +
               " this interval";
      last_trip_kind_ = "truncated";
    }
  }
  return reason;
}

std::optional<std::string> TraceGovernor::poll() {
  const std::string reason = check(registry().snapshot());
  if (reason.empty()) return std::nullopt;
  return request_dump(last_trip_kind_, reason);
}

std::optional<std::string> TraceGovernor::request_dump(
    std::string_view kind, const std::string& reason) {
  const uint64_t now = steady_ns();
  const auto it = last_dump_ns_.find(kind);
  if (it != last_dump_ns_.end() && now - it->second < cfg_.cooldown_ns) {
    return std::nullopt;
  }
  last_dump_ns_[std::string(kind)] = now;
  return dump_now(reason);
}

std::string TraceGovernor::dump_now(const std::string& reason) {
  namespace fs = std::filesystem;
  fs::create_directories(cfg_.dump_dir);
  const fs::path path = fs::path(cfg_.dump_dir) /
                        (cfg_.prefix + "_" + std::to_string(n_dumps_) +
                         ".json");
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace dump: cannot write " + path.string());
  }
  out << tracer().snapshot().to_chrome_json(reason);
  out.close();
  if (!out) {
    throw std::runtime_error("trace dump: write failed for " +
                             path.string());
  }
  ++n_dumps_;
  return path.string();
}

}  // namespace netqre::obs
