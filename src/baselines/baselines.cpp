#include "baselines/baselines.hpp"

#include <cmath>

namespace netqre::baselines {

double EntropyEstimator::entropy() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [ip, n] : counts_) {
    acc += static_cast<double>(n) * std::log2(static_cast<double>(n));
  }
  const double n = static_cast<double>(total_);
  return std::log2(n) - acc / n;
}

void SynFloodDetector::on_packet(const net::Packet& p) {
  if (!p.is_tcp()) return;
  const bool syn = p.syn();
  const bool ack = p.ack();
  if (syn && !ack) {
    syn_seen_.insert(p.seq);
    return;
  }
  if (syn && ack) {
    if (syn_seen_.contains(p.ack_no - 1)) {
      syn_acked_.emplace(p.seq, p.ack_no - 1);
    }
    return;
  }
  if (ack) {
    // A completing ACK acknowledges the server ISN + 1.
    syn_acked_.erase(p.ack_no - 1);
  }
}

void CompletedFlows::on_packet(const net::Packet& p) {
  if (!p.is_tcp()) return;
  const net::Conn c = net::Conn::of(p).canonical();
  if (p.syn()) {
    open_.insert(c);
  } else if (p.fin()) {
    if (open_.erase(c)) ++completed_;
  }
}

void SlowlorisDetector::on_packet(const net::Packet& p) {
  if (!p.is_tcp()) return;
  auto [it, inserted] = conns_.try_emplace(net::Conn::of(p).canonical());
  if (inserted) it->second.first_ts = p.ts;
  it->second.last_ts = p.ts;
  it->second.bytes += p.wire_len;
}

double SlowlorisDetector::average_rate() const {
  double total = 0;
  size_t n = 0;
  for (const auto& [c, s] : conns_) {
    const double dt = s.last_ts - s.first_ts;
    if (dt <= 0) continue;
    total += static_cast<double>(s.bytes) / dt;
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace netqre::baselines
