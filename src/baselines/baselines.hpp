// Manually optimized imperative implementations of the Fig. 7 applications.
//
// These are the "Baseline" bars of the paper's evaluation (§7.2): each is a
// purpose-built streaming program with explicit state management — the code
// a network operator would have to hand-write without NetQRE (and which
// NetQRE's compiler is supposed to come within ~9% of).  They double as
// correctness oracles for the compiled queries in the test suite.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/flow.hpp"
#include "net/packet.hpp"

namespace netqre::baselines {

// Heavy hitter (§4.1): bytes per (src, dst) pair.
class HeavyHitter {
 public:
  void on_packet(const net::Packet& p) {
    bytes_[key(p)] += p.wire_len;
  }
  [[nodiscard]] uint64_t bytes(uint32_t src, uint32_t dst) const {
    auto it = bytes_.find((uint64_t{src} << 32) | dst);
    return it == bytes_.end() ? 0 : it->second;
  }
  [[nodiscard]] size_t flows() const { return bytes_.size(); }
  [[nodiscard]] uint64_t total() const {
    uint64_t t = 0;
    for (const auto& [k, v] : bytes_) t += v;
    return t;
  }
  [[nodiscard]] size_t memory() const {
    return bytes_.size() * (sizeof(uint64_t) * 2 + 16) + sizeof(*this);
  }

 private:
  static uint64_t key(const net::Packet& p) {
    return (uint64_t{p.src_ip} << 32) | p.dst_ip;
  }
  std::unordered_map<uint64_t, uint64_t> bytes_;
};

// Super spreader (§4.1): distinct destinations per source.
class SuperSpreader {
 public:
  void on_packet(const net::Packet& p) {
    dsts_[p.src_ip].insert(p.dst_ip);
  }
  [[nodiscard]] size_t fanout(uint32_t src) const {
    auto it = dsts_.find(src);
    return it == dsts_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] size_t max_fanout() const {
    size_t best = 0;
    for (const auto& [s, d] : dsts_) best = std::max(best, d.size());
    return best;
  }
  [[nodiscard]] size_t memory() const {
    size_t m = sizeof(*this);
    for (const auto& [s, d] : dsts_) m += 48 + d.size() * 12;
    return m;
  }

 private:
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> dsts_;
};

// Entropy estimation [40]: empirical entropy of the source-IP distribution.
class EntropyEstimator {
 public:
  void on_packet(const net::Packet& p) {
    ++counts_[p.src_ip];
    ++total_;
  }
  // H = log2(N) - (1/N) * sum n_i log2 n_i.
  [[nodiscard]] double entropy() const;
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] size_t memory() const {
    return counts_.size() * 24 + sizeof(*this);
  }

 private:
  std::unordered_map<uint32_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

// SYN flood detection (§4.2): half-open handshakes (SYN + matching SYN-ACK,
// no completing ACK).
class SynFloodDetector {
 public:
  void on_packet(const net::Packet& p);
  [[nodiscard]] uint64_t incomplete() const { return syn_acked_.size(); }
  [[nodiscard]] size_t memory() const {
    return (syn_seen_.size() + syn_acked_.size()) * 24 + sizeof(*this);
  }
  void reset() {
    syn_seen_.clear();
    syn_acked_.clear();
  }

 private:
  // Handshakes keyed by the client ISN (x in the paper's pattern); a second
  // table keyed by the server ISN awaits the completing ACK.
  std::unordered_set<uint32_t> syn_seen_;    // SYN seen, awaiting SYN-ACK
  std::unordered_map<uint32_t, uint32_t> syn_acked_;  // server ISN -> client ISN
};

// Completed flows (§4.2): connections with a full SYN ... FIN lifecycle.
class CompletedFlows {
 public:
  void on_packet(const net::Packet& p);
  [[nodiscard]] uint64_t completed() const { return completed_; }
  [[nodiscard]] size_t memory() const {
    return open_.size() * 24 + sizeof(*this);
  }

 private:
  std::unordered_set<net::Conn, net::ConnHash> open_;  // SYN seen, no FIN yet
  uint64_t completed_ = 0;
};

// Slowloris detection (§4.2): average transfer rate over TCP connections.
class SlowlorisDetector {
 public:
  void on_packet(const net::Packet& p);
  [[nodiscard]] double average_rate() const;
  [[nodiscard]] size_t flows() const { return conns_.size(); }
  [[nodiscard]] size_t memory() const {
    return conns_.size() * 56 + sizeof(*this);
  }

 private:
  struct ConnState {
    double first_ts = 0;
    double last_ts = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<net::Conn, ConnState, net::ConnHash> conns_;
};

}  // namespace netqre::baselines
