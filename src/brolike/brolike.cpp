#include "brolike/brolike.hpp"

#include <stdexcept>

#include "core/fields.hpp"
#include "net/ipv4.hpp"

namespace netqre::brolike {

// -------------------------------------------------------------------- VM

#if defined(__GNUC__) && !defined(__clang__)
// GCC's -Wmaybe-uninitialized false-positives on the inactive string
// alternative of ScriptValue temporaries created by pop()/push_back below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

void Interpreter::run(const Script& script,
                      const std::vector<ScriptValue>& event) {
  stack_.clear();
  auto pop = [&]() {
    ScriptValue v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  };
  auto as_int = [](const ScriptValue& v) {
    if (auto* i = std::get_if<int64_t>(&v)) return *i;
    if (auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
    throw std::runtime_error("brolike: expected numeric value");
  };
  auto as_str = [](const ScriptValue& v) -> const std::string& {
    return std::get<std::string>(v);
  };

  size_t pc = 0;
  while (pc < script.code.size()) {
    const Instr& in = script.code[pc];
    switch (in.op) {
      case OpCode::PushConst: stack_.push_back(script.constants[in.a]); break;
      case OpCode::LoadEvent: stack_.push_back(event[in.a]); break;
      case OpCode::LoadGlobal: stack_.push_back(globals[in.a]); break;
      case OpCode::StoreGlobal: globals[in.a] = pop(); break;
      case OpCode::TableHas: {
        ScriptValue k = pop();
        stack_.push_back(
            int64_t{tables[in.a].contains(as_str(k)) ? 1 : 0});
        break;
      }
      case OpCode::TableAdd: tables[in.a].insert(as_str(pop())); break;
      case OpCode::TableIncr: ++counters[in.a][as_str(pop())]; break;
      case OpCode::TableGet: {
        ScriptValue k = pop();
        auto it = counters[in.a].find(as_str(k));
        stack_.push_back(it == counters[in.a].end() ? int64_t{0}
                                                    : it->second);
        break;
      }
      case OpCode::Concat: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        stack_.push_back(as_str(a) + as_str(b));
        break;
      }
      case OpCode::Add: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        stack_.push_back(as_int(a) + as_int(b));
        break;
      }
      case OpCode::Sub: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        stack_.push_back(as_int(a) - as_int(b));
        break;
      }
      case OpCode::Mul: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        stack_.push_back(as_int(a) * as_int(b));
        break;
      }
      case OpCode::CmpEq: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        bool eq = a.index() == b.index() &&
                  (a.index() == 2 ? as_str(a) == as_str(b)
                                  : as_int(a) == as_int(b));
        stack_.push_back(int64_t{eq ? 1 : 0});
        break;
      }
      case OpCode::CmpGt: {
        ScriptValue b = pop();
        ScriptValue a = pop();
        stack_.push_back(int64_t{as_int(a) > as_int(b) ? 1 : 0});
        break;
      }
      case OpCode::JmpIfZero:
        if (as_int(pop()) == 0) {
          pc = static_cast<size_t>(in.a);
          continue;
        }
        break;
      case OpCode::Jmp:
        pc = static_cast<size_t>(in.a);
        continue;
      case OpCode::Halt: return;
    }
    ++pc;
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

size_t Interpreter::memory() const {
  size_t m = sizeof(*this) + globals.size() * sizeof(ScriptValue);
  for (const auto& t : tables) {
    for (const auto& k : t) m += 48 + k.size();
  }
  for (const auto& c : counters) {
    for (const auto& [k, v] : c) m += 56 + k.size();
  }
  return m;
}

// ------------------------------------------------------------ event core

void EventEngine::on_packet(const net::Packet& p) {
  // Connection bookkeeping for every packet (Bro tracks all flows).
  const net::Conn conn = net::Conn::of(p).canonical();
  auto [it, inserted] = conns_.try_emplace(conn);
  if (inserted) it->second.first_ts = p.ts;
  ++it->second.packets;
  it->second.bytes += p.wire_len;
  ++n_events_;

  // Per-packet event to the interpreted policy layer (Bro dispatches
  // new_packet / connection events into script land for every packet).
  if (pkt_handler_) {
    std::string key = net::format_ip(conn.src_ip) + ":" +
                      std::to_string(conn.src_port) + ">" +
                      net::format_ip(conn.dst_ip) + ":" +
                      std::to_string(conn.dst_port);
    pkt_handler_(key, p.wire_len);
  }

  // SIP analyzer on the well-known port.
  if (p.is_udp() && (p.src_port == 5060 || p.dst_port == 5060) &&
      sip_handler_) {
    auto method = core::sip_method(p.payload);
    if (!method.empty()) {
      SipEvent ev;
      ev.method = std::string(method);
      ev.is_request = method != "200";
      ev.call_id = std::string(core::sip_header(p.payload, "Call-ID"));
      ev.from = std::string(core::sip_header(p.payload, "From"));
      ev.to = std::string(core::sip_header(p.payload, "To"));
      ++n_events_;
      sip_handler_(ev);
    }
  }
}

// -------------------------------------------------------- VoIP policy

VoipCallCounter::VoipCallCounter() {
  // Script (per sip_request event, fields: 0=method, 1=call_id, 2=from):
  //   if (method == "INVITE" && !seen_calls.contains(call_id)) {
  //     seen_calls.add(call_id);
  //     total = total + 1;
  //     per_user[from] += 1;
  //   }
  Script s;
  s.constants = {std::string("INVITE"), int64_t{1}};
  // method == "INVITE"?
  s.code.push_back({OpCode::LoadEvent, 0});
  s.code.push_back({OpCode::PushConst, 0});
  s.code.push_back({OpCode::CmpEq, 0});
  s.code.push_back({OpCode::JmpIfZero, 18});
  // seen before?
  s.code.push_back({OpCode::LoadEvent, 1});
  s.code.push_back({OpCode::TableHas, 0});
  s.code.push_back({OpCode::JmpIfZero, 8});
  s.code.push_back({OpCode::Jmp, 18});
  // record the call
  s.code.push_back({OpCode::LoadEvent, 1});   // 8
  s.code.push_back({OpCode::TableAdd, 0});
  s.code.push_back({OpCode::LoadGlobal, 0});
  s.code.push_back({OpCode::PushConst, 1});
  s.code.push_back({OpCode::Add, 0});
  s.code.push_back({OpCode::StoreGlobal, 0});
  s.code.push_back({OpCode::LoadEvent, 2});
  s.code.push_back({OpCode::TableIncr, 0});
  s.code.push_back({OpCode::Halt, 0});        // 16
  s.code.push_back({OpCode::Halt, 0});
  s.code.push_back({OpCode::Halt, 0});        // 18
  on_invite_ = std::move(s);

  engine_.set_sip_handler([this](const SipEvent& ev) {
    interp_.run(on_invite_,
                {ev.method, ev.call_id, ev.from});
  });

  // Per-packet script (fields: 0=conn key, 1=len):
  //   conn_pkts[conn] += 1;  total_bytes = total_bytes + len;
  Script pkt;
  pkt.code.push_back({OpCode::LoadEvent, 0});
  pkt.code.push_back({OpCode::TableIncr, 1});
  pkt.code.push_back({OpCode::LoadGlobal, 1});
  pkt.code.push_back({OpCode::LoadEvent, 1});
  pkt.code.push_back({OpCode::Add, 0});
  pkt.code.push_back({OpCode::StoreGlobal, 1});
  pkt.code.push_back({OpCode::Halt, 0});
  on_packet_ = std::move(pkt);
  engine_.set_packet_handler([this](const std::string& conn, int64_t len) {
    interp_.run(on_packet_, {conn, len});
  });
}

void VoipCallCounter::on_packet(const net::Packet& p) {
  engine_.on_packet(p);
}

int64_t VoipCallCounter::total_calls() const {
  return std::get<int64_t>(interp_.globals[0]);
}

int64_t VoipCallCounter::calls_for(const std::string& user) const {
  auto it = interp_.counters[0].find(user);
  return it == interp_.counters[0].end() ? 0 : it->second;
}

}  // namespace netqre::brolike
