// Bro-like interpreted monitoring engine (§7.2 comparison).
//
// The paper attributes Bro's 23x slowdown on the VoIP counting task to two
// architectural properties: (1) an event-driven core that parses every
// packet into protocol events, and (2) a script *interpreter* executing the
// policy.  This module reproduces both: a connection/SIP event engine and a
// stack-based bytecode VM with tables, string values and per-event handlers.
// The VoIP call-counting policy ships as a pre-assembled script.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "net/flow.hpp"
#include "net/packet.hpp"

namespace netqre::brolike {

// ---------------------------------------------------------------- values

using ScriptValue = std::variant<int64_t, double, std::string>;

// ------------------------------------------------------------------- VM

enum class OpCode : uint8_t {
  PushConst,   // push constants[a]
  LoadEvent,   // push event field #a
  LoadGlobal,  // push globals[a]
  StoreGlobal, // pop -> globals[a]
  TableHas,    // pop key; push 1/0 whether tables[a] contains it
  TableAdd,    // pop key; insert into tables[a]
  TableIncr,   // pop key; ++counters[a][key]
  TableGet,    // pop key; push counters[a][key]
  Concat,      // pop b, a; push a+b (strings)
  Add, Sub, Mul,
  CmpEq, CmpGt,
  JmpIfZero,   // pop; if 0 jump to a
  Jmp,
  Halt,
};

struct Instr {
  OpCode op;
  int32_t a = 0;
};

// One compiled event handler: straight bytecode over a shared global store.
struct Script {
  std::vector<Instr> code;
  std::vector<ScriptValue> constants;
};

// Interpreter state shared across events (globals, sets, counters).
class Interpreter {
 public:
  void run(const Script& script, const std::vector<ScriptValue>& event);

  std::vector<ScriptValue> globals = std::vector<ScriptValue>(16, int64_t{0});
  std::vector<std::unordered_set<std::string>> tables =
      std::vector<std::unordered_set<std::string>>(4);
  std::vector<std::unordered_map<std::string, int64_t>> counters =
      std::vector<std::unordered_map<std::string, int64_t>>(4);

  [[nodiscard]] size_t memory() const;

 private:
  std::vector<ScriptValue> stack_;
};

// ------------------------------------------------------------ event core

// SIP request/response event, the shape Bro's SIP analyzer produces.
struct SipEvent {
  bool is_request = false;
  std::string method;   // or status code for responses
  std::string call_id;
  std::string from;
  std::string to;
};

// Event-driven engine: tracks connections, runs protocol analyzers over
// every packet, and dispatches events to interpreted handlers.
class EventEngine {
 public:
  using SipHandler = std::function<void(const SipEvent&)>;
  // Per-packet event handler (Bro's new_packet/connection events): fields
  // are (conn-key string, wire length).
  using PacketHandler =
      std::function<void(const std::string& conn, int64_t len)>;

  void set_sip_handler(SipHandler h) { sip_handler_ = std::move(h); }
  void set_packet_handler(PacketHandler h) { pkt_handler_ = std::move(h); }
  void on_packet(const net::Packet& p);

  [[nodiscard]] uint64_t events_dispatched() const { return n_events_; }
  [[nodiscard]] size_t connections() const { return conns_.size(); }

 private:
  struct ConnRecord {
    double first_ts = 0;
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<net::Conn, ConnRecord, net::ConnHash> conns_;
  SipHandler sip_handler_;
  PacketHandler pkt_handler_;
  uint64_t n_events_ = 0;
};

// -------------------------------------------------------- VoIP policy

// The Bro-script equivalent of the paper's comparison task: count distinct
// VoIP calls (per user) from SIP INVITE events, executed by the interpreter.
class VoipCallCounter {
 public:
  VoipCallCounter();
  void on_packet(const net::Packet& p);

  [[nodiscard]] int64_t total_calls() const;
  [[nodiscard]] int64_t calls_for(const std::string& user) const;
  [[nodiscard]] size_t memory() const { return interp_.memory(); }

 private:
  EventEngine engine_;
  Interpreter interp_;
  Script on_invite_;
  Script on_packet_;  // per-packet accounting handler (interpreted)
};

}  // namespace netqre::brolike
