// Batched, zero-copy ingestion types (DESIGN.md "Ingestion pipeline").
//
// The scalar path (PcapReader::next_packet → Engine::on_packet) allocates a
// fresh record buffer and Packet per frame.  The types here remove both
// costs: PacketView borrows frame bytes in place (an mmap'ed capture file,
// a capture ring), and PacketBatch decodes N frames into reusable slots so
// steady-state refills allocate nothing.  PacketSource is the pull
// interface every producer implements; Engine::on_batch and
// ParallelEngine::feed consume the batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace netqre::net {

// A borrowed view of one captured frame: raw bytes plus the capture-record
// metadata.  Views never own memory — they are valid only while the backing
// mapping/buffer lives, and must not be stored past it.
struct PacketView {
  const uint8_t* data = nullptr;  // captured (possibly snapped) frame bytes
  uint32_t len = 0;               // captured length
  uint32_t orig_len = 0;          // length on the wire
  double ts = 0.0;                // capture timestamp, seconds

  [[nodiscard]] std::span<const uint8_t> bytes() const {
    return {data, len};
  }
};

// A batch of decoded packets with slot reuse: clear() keeps every Packet
// (and its payload capacity) alive, so refilling an already-used batch
// performs no heap allocation.  Packets are owned by the batch; consumers
// read them through packets()/operator[] or move them out with take().
class PacketBatch {
 public:
  PacketBatch() = default;
  explicit PacketBatch(size_t reserve) { pkts_.reserve(reserve); }

  // Next reusable slot (constructed the first time around).  The caller
  // overwrites every field; drop_last() undoes the claim for frames that
  // turn out to be undecodable.
  Packet& next_slot() {
    if (n_ == pkts_.size()) pkts_.emplace_back();
    return pkts_[n_++];
  }
  void drop_last() { --n_; }

  // Forgets the live packets but keeps their slots (and capacity).
  void clear() { n_ = 0; }

  [[nodiscard]] size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] const Packet& operator[](size_t i) const { return pkts_[i]; }
  [[nodiscard]] Packet& operator[](size_t i) { return pkts_[i]; }
  [[nodiscard]] std::span<const Packet> packets() const {
    return {pkts_.data(), n_};
  }
  // Mutable view, for consumers that move packets out of the slots (e.g.
  // ParallelEngine::feed scattering a batch into shard queues).  Moved-from
  // slots stay reusable: the next refill overwrites them.
  [[nodiscard]] std::span<Packet> packets() {
    return {pkts_.data(), n_};
  }
  [[nodiscard]] auto begin() const { return pkts_.cbegin(); }
  [[nodiscard]] auto end() const { return pkts_.cbegin() + n_; }

  void push_back(Packet p) {
    next_slot() = std::move(p);
  }

  // Moves the live packets out (e.g. into a shard queue), leaving the
  // batch empty and without its slot capacity.
  [[nodiscard]] std::vector<Packet> take() && {
    pkts_.resize(n_);
    n_ = 0;
    return std::move(pkts_);
  }

 private:
  std::vector<Packet> pkts_;
  size_t n_ = 0;  // live prefix of pkts_
};

// Pull-based producer of packet batches — the unified ingestion interface.
// Implemented by MappedPcapReader (mmap'ed captures), VectorSource
// (in-memory traces), and the TCP reassembly preprocessor.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  // Clears `out` and refills it with up to `max` packets.  Returns the
  // number of packets produced; 0 means end of stream.
  virtual size_t fill(PacketBatch& out, size_t max) = 0;
};

// Replays an in-memory trace through the PacketSource interface.  The trace
// is borrowed, not copied; fill() copies each packet into the batch slots
// (reusing their capacity), so the per-fill cost is bounded by `max`.
class VectorSource final : public PacketSource {
 public:
  explicit VectorSource(std::span<const Packet> trace) : trace_(trace) {}

  size_t fill(PacketBatch& out, size_t max) override {
    out.clear();
    while (out.size() < max && pos_ < trace_.size()) {
      out.next_slot() = trace_[pos_++];
    }
    return out.size();
  }

  void rewind() { pos_ = 0; }

 private:
  std::span<const Packet> trace_;
  size_t pos_ = 0;
};

}  // namespace netqre::net
