// IPv4 address helpers: parsing, formatting, and host/network byte order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netqre::net {

// Builds a host-order IPv4 address from dotted-quad components.
constexpr uint32_t make_ip(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
         uint32_t{d};
}

// Parses "a.b.c.d" into a host-order address; nullopt on malformed input.
std::optional<uint32_t> parse_ip(std::string_view text);

// Formats a host-order address as dotted-quad.
std::string format_ip(uint32_t ip);

}  // namespace netqre::net
