// Packet model used throughout the NetQRE runtime.
//
// The paper (§2, Fig. 1) preprocesses each raw packet into a form the
// compiled query can reference through parsing functions (srcip, syn, data,
// time, ...).  This struct is that processed form: transport metadata plus
// the reassembled application payload.
#pragma once

#include <cstdint>
#include <string>

namespace netqre::net {

// IP protocol numbers we care about (subset of IANA registry).
enum class Proto : uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
  Other = 255,
};

// TCP flag bits, matching the wire encoding of the TCP header flags octet.
struct TcpFlags {
  static constexpr uint8_t kFin = 0x01;
  static constexpr uint8_t kSyn = 0x02;
  static constexpr uint8_t kRst = 0x04;
  static constexpr uint8_t kPsh = 0x08;
  static constexpr uint8_t kAck = 0x10;
};

struct Packet {
  double ts = 0.0;  // receipt timestamp, seconds since epoch
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  Proto proto = Proto::Other;
  uint8_t tcp_flags = 0;
  uint32_t seq = 0;     // TCP sequence number
  uint32_t ack_no = 0;  // TCP acknowledgement number
  uint32_t wire_len = 0;  // bytes on the wire (IP total length + L2 framing)
  std::string payload;    // application payload (after transport header)

  [[nodiscard]] bool syn() const { return tcp_flags & TcpFlags::kSyn; }
  [[nodiscard]] bool ack() const { return tcp_flags & TcpFlags::kAck; }
  [[nodiscard]] bool fin() const { return tcp_flags & TcpFlags::kFin; }
  [[nodiscard]] bool rst() const { return tcp_flags & TcpFlags::kRst; }
  [[nodiscard]] bool psh() const { return tcp_flags & TcpFlags::kPsh; }
  [[nodiscard]] bool is_tcp() const { return proto == Proto::Tcp; }
  [[nodiscard]] bool is_udp() const { return proto == Proto::Udp; }
};

}  // namespace netqre::net
