// Ethernet/IPv4/TCP/UDP wire-format codec.
//
// The NetQRE runtime consumes pcap traces (§6); this module converts between
// the raw bytes stored in a capture file and the runtime's Packet model.
// Encoding is used by the traffic generators to produce byte-accurate traces.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace netqre::net {

// Serializes `p` as Ethernet II + IPv4 + TCP/UDP frame bytes.  IP and
// transport checksums are computed.  Packets whose proto is not TCP/UDP are
// encoded as raw IPv4 with the payload as the L4 body.
std::vector<uint8_t> encode_frame(const Packet& p);

// Parses an Ethernet II frame.  Returns nullopt for non-IPv4 frames or
// truncated headers.  `ts` and `wire_len` are taken from the caller (the
// capture record), not the frame.
std::optional<Packet> decode_frame(std::span<const uint8_t> frame, double ts,
                                   uint32_t wire_len);

// Allocation-free variant: decodes into `out`, reusing its payload
// capacity (the batched ingestion path decodes every frame into recycled
// PacketBatch slots).  Returns false — leaving `out` unspecified — for
// frames decode_frame would reject.
bool decode_frame_into(std::span<const uint8_t> frame, double ts,
                       uint32_t wire_len, Packet& out);

// RFC 1071 ones'-complement checksum over `data`, with an optional seed for
// pseudo-header folding.
uint16_t inet_checksum(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace netqre::net
