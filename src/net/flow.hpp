// Flow identifiers: the NetQRE `Conn` type (§3) and 5-tuples, with hashing
// suitable for unordered_map keys and for the parallel runtime's partitioner.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>

#include "net/packet.hpp"

namespace netqre::net {

// A bidirectional connection key: the NetQRE `Conn` type holds the source
// IP-port and destination IP-port pair (§3).  `canonical()` orders the two
// endpoints so both directions of a connection map to the same key.
struct Conn {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  Proto proto = Proto::Other;

  static Conn of(const Packet& p) {
    return {p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
  }

  [[nodiscard]] Conn reversed() const {
    return {dst_ip, src_ip, dst_port, src_port, proto};
  }

  // Direction-independent form: smaller (ip, port) endpoint first.
  [[nodiscard]] Conn canonical() const {
    if (std::tie(src_ip, src_port) <= std::tie(dst_ip, dst_port)) return *this;
    return reversed();
  }

  // True if `p` belongs to this connection, in either direction.
  [[nodiscard]] bool matches(const Packet& p) const {
    return p.proto == proto &&
           ((p.src_ip == src_ip && p.src_port == src_port &&
             p.dst_ip == dst_ip && p.dst_port == dst_port) ||
            (p.src_ip == dst_ip && p.src_port == dst_port &&
             p.dst_ip == src_ip && p.dst_port == src_port));
  }

  friend bool operator==(const Conn&, const Conn&) = default;
  friend auto operator<=>(const Conn&, const Conn&) = default;
};

// 64-bit mix (splitmix64 finalizer); good avalanche for hash-partitioning.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ConnHash {
  size_t operator()(const Conn& c) const {
    uint64_t a = (uint64_t{c.src_ip} << 32) | c.dst_ip;
    uint64_t b = (uint64_t{c.src_port} << 32) | (uint64_t{c.dst_port} << 16) |
                 static_cast<uint64_t>(c.proto);
    return mix64(a ^ mix64(b));
  }
};

// Hash of the (src, dst) IP pair — the flow definition used by the heavy
// hitter use case (§4.1).
inline uint64_t ip_pair_hash(uint32_t src, uint32_t dst) {
  return mix64((uint64_t{src} << 32) | dst);
}

}  // namespace netqre::net
