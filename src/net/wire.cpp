#include "net/wire.hpp"

#include <cstring>

namespace netqre::net {
namespace {

constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr size_t kEthHeaderLen = 14;
constexpr size_t kIpHeaderLen = 20;
constexpr size_t kTcpHeaderLen = 20;
constexpr size_t kUdpHeaderLen = 8;

void put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void put32(std::vector<uint8_t>& out, uint32_t v) {
  put16(out, static_cast<uint16_t>(v >> 16));
  put16(out, static_cast<uint16_t>(v));
}

uint16_t get16(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint16_t>((b[off] << 8) | b[off + 1]);
}

uint32_t get32(std::span<const uint8_t> b, size_t off) {
  return (uint32_t{b[off]} << 24) | (uint32_t{b[off + 1]} << 16) |
         (uint32_t{b[off + 2]} << 8) | uint32_t{b[off + 3]};
}

void patch16(std::vector<uint8_t>& out, size_t off, uint16_t v) {
  out[off] = static_cast<uint8_t>(v >> 8);
  out[off + 1] = static_cast<uint8_t>(v);
}

// Pseudo-header contribution to the TCP/UDP checksum.
uint32_t pseudo_header_sum(const Packet& p, uint16_t l4_len) {
  uint32_t sum = 0;
  sum += p.src_ip >> 16;
  sum += p.src_ip & 0xffff;
  sum += p.dst_ip >> 16;
  sum += p.dst_ip & 0xffff;
  sum += static_cast<uint8_t>(p.proto);
  sum += l4_len;
  return sum;
}

}  // namespace

uint16_t inet_checksum(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t sum = seed;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

std::vector<uint8_t> encode_frame(const Packet& p) {
  const bool tcp = p.proto == Proto::Tcp;
  const bool udp = p.proto == Proto::Udp;
  const size_t l4_header = tcp ? kTcpHeaderLen : udp ? kUdpHeaderLen : 0;
  const uint16_t l4_len = static_cast<uint16_t>(l4_header + p.payload.size());
  const uint16_t ip_total = static_cast<uint16_t>(kIpHeaderLen + l4_len);

  std::vector<uint8_t> out;
  out.reserve(kEthHeaderLen + ip_total);

  // Ethernet II: synthetic MACs derived from the IPs, EtherType IPv4.
  for (int i = 0; i < 2; ++i) {
    uint32_t ip = i == 0 ? p.dst_ip : p.src_ip;
    out.push_back(0x02);  // locally administered unicast
    out.push_back(0x00);
    put32(out, ip);
  }
  put16(out, kEtherTypeIpv4);

  // IPv4 header.
  const size_t ip_off = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0);     // DSCP/ECN
  put16(out, ip_total);
  put16(out, 0);          // identification
  put16(out, 0x4000);     // flags: DF
  out.push_back(64);      // TTL
  out.push_back(static_cast<uint8_t>(p.proto));
  put16(out, 0);  // checksum placeholder
  put32(out, p.src_ip);
  put32(out, p.dst_ip);
  const uint16_t ip_csum = inet_checksum(
      std::span(out.data() + ip_off, kIpHeaderLen));
  patch16(out, ip_off + 10, ip_csum);

  const size_t l4_off = out.size();
  if (tcp) {
    put16(out, p.src_port);
    put16(out, p.dst_port);
    put32(out, p.seq);
    put32(out, p.ack_no);
    out.push_back(0x50);  // data offset 5
    out.push_back(p.tcp_flags);
    put16(out, 65535);  // window
    put16(out, 0);      // checksum placeholder
    put16(out, 0);      // urgent pointer
  } else if (udp) {
    put16(out, p.src_port);
    put16(out, p.dst_port);
    put16(out, l4_len);
    put16(out, 0);  // checksum placeholder
  }
  out.insert(out.end(), p.payload.begin(), p.payload.end());

  if (tcp || udp) {
    const uint16_t csum = inet_checksum(
        std::span(out.data() + l4_off, l4_len), pseudo_header_sum(p, l4_len));
    patch16(out, l4_off + (tcp ? 16 : 6), csum == 0 && udp ? 0xffff : csum);
  }
  return out;
}

bool decode_frame_into(std::span<const uint8_t> frame, double ts,
                       uint32_t wire_len, Packet& p) {
  if (frame.size() < kEthHeaderLen + kIpHeaderLen) return false;
  if (get16(frame, 12) != kEtherTypeIpv4) return false;

  auto ip = frame.subspan(kEthHeaderLen);
  const uint8_t version = ip[0] >> 4;
  const size_t ihl = (ip[0] & 0x0f) * 4u;
  if (version != 4 || ihl < kIpHeaderLen || ip.size() < ihl) {
    return false;
  }
  const uint16_t ip_total = get16(ip, 2);
  if (ip_total < ihl || ip.size() < ip_total) return false;

  // `p` may be a recycled batch slot: every field is (re)assigned, and the
  // payload assign reuses the slot's existing capacity.
  p.ts = ts;
  p.wire_len = wire_len;
  p.src_ip = get32(ip, 12);
  p.dst_ip = get32(ip, 16);
  p.src_port = 0;
  p.dst_port = 0;
  p.seq = 0;
  p.ack_no = 0;
  p.tcp_flags = 0;
  const uint8_t proto = ip[9];
  p.proto = proto == 6 ? Proto::Tcp : proto == 17 ? Proto::Udp
            : proto == 1 ? Proto::Icmp : Proto::Other;

  auto l4 = ip.subspan(ihl, ip_total - ihl);
  if (p.proto == Proto::Tcp) {
    if (l4.size() < kTcpHeaderLen) return false;
    p.src_port = get16(l4, 0);
    p.dst_port = get16(l4, 2);
    p.seq = get32(l4, 4);
    p.ack_no = get32(l4, 8);
    const size_t data_off = (l4[12] >> 4) * 4u;
    p.tcp_flags = l4[13];
    if (data_off < kTcpHeaderLen || l4.size() < data_off) return false;
    p.payload.assign(l4.begin() + data_off, l4.end());
  } else if (p.proto == Proto::Udp) {
    if (l4.size() < kUdpHeaderLen) return false;
    p.src_port = get16(l4, 0);
    p.dst_port = get16(l4, 2);
    p.payload.assign(l4.begin() + kUdpHeaderLen, l4.end());
  } else {
    p.payload.assign(l4.begin(), l4.end());
  }
  return true;
}

std::optional<Packet> decode_frame(std::span<const uint8_t> frame, double ts,
                                   uint32_t wire_len) {
  Packet p;
  if (!decode_frame_into(frame, ts, wire_len, p)) return std::nullopt;
  return p;
}

}  // namespace netqre::net
