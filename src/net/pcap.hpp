// Classic libpcap capture-file format, implemented from scratch (the target
// system has no libpcap).  Supports the microsecond little-endian variant
// written by tcpdump (magic 0xa1b2c3d4), link type Ethernet (DLT_EN10MB).
#pragma once

#include <cstdint>
#include <functional>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace netqre::net {

struct PcapRecord {
  double ts = 0.0;
  uint32_t orig_len = 0;       // length on the wire
  std::vector<uint8_t> data;   // captured bytes (possibly snapped)
};

class PcapWriter {
 public:
  // Opens `path` and writes the global header.  Throws std::runtime_error on
  // I/O failure.
  explicit PcapWriter(const std::string& path, uint32_t snaplen = 65535);

  void write(const PcapRecord& rec);
  // Encodes `p` with the wire codec and appends it.
  void write_packet(const Packet& p);
  void flush();

 private:
  std::ofstream out_;
  uint32_t snaplen_;
};

// In `tolerant` mode a truncated record mid-file (cut-short capture, disk
// full, live rotation) ends the read at the last whole record and bumps the
// `netqre_pcap_truncated_records_total` counter instead of throwing — the
// rest of the trace stays usable.
struct PcapOptions {
  bool tolerant = false;
};

class PcapReader {
 public:
  using Options = PcapOptions;

  // Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path, Options opt = Options());

  // Returns the next record, or nullopt at end of file.  Strict mode throws
  // on a truncated record; tolerant mode returns nullopt.
  std::optional<PcapRecord> next();
  // Convenience: next record decoded as a Packet; skips undecodable frames.
  std::optional<Packet> next_packet();

  [[nodiscard]] uint32_t snaplen() const { return snaplen_; }
  // Truncated records this reader hit (0 or 1: a truncation ends the file).
  [[nodiscard]] uint64_t truncated_records() const { return truncated_; }

 private:
  std::ifstream in_;
  Options opt_;
  uint32_t snaplen_ = 0;
  bool swapped_ = false;  // big-endian file on little-endian host
  uint64_t truncated_ = 0;

  // Records the truncation; throws in strict mode, else returns nullopt.
  std::optional<PcapRecord> truncation(const char* what);
};

// Reads an entire capture into memory (the benchmark replay path).
std::vector<Packet> read_all(const std::string& path,
                             PcapReader::Options opt = PcapReader::Options());

// Writes all packets to `path`.
void write_all(const std::string& path, const std::vector<Packet>& packets);

}  // namespace netqre::net
