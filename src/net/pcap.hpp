// Classic libpcap capture-file format, implemented from scratch (the target
// system has no libpcap).  Supports the microsecond little-endian variant
// written by tcpdump (magic 0xa1b2c3d4), link type Ethernet (DLT_EN10MB).
//
// Two readers share the format logic: the streaming PcapReader (ifstream,
// one record at a time) and the zero-copy MappedPcapReader (mmap'ed file,
// PacketView frames, batch decoding).  New code should prefer the mapped
// reader through the PacketSource interface; the streaming reader remains
// for incremental/pipe-like use.
#pragma once

#include <cstdint>
#include <functional>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_view.hpp"

namespace netqre::net {

struct PcapRecord {
  double ts = 0.0;
  uint32_t orig_len = 0;       // length on the wire
  std::vector<uint8_t> data;   // captured bytes (possibly snapped)
};

class PcapWriter {
 public:
  // Opens `path` and writes the global header.  Throws std::runtime_error on
  // I/O failure.
  explicit PcapWriter(const std::string& path, uint32_t snaplen = 65535);

  void write(const PcapRecord& rec);
  // Encodes `p` with the wire codec and appends it.
  void write_packet(const Packet& p);
  void flush();

 private:
  std::ofstream out_;
  uint32_t snaplen_;
};

// In `tolerant` mode a truncated record mid-file (cut-short capture, disk
// full, live rotation) ends the read at the last whole record and bumps the
// `netqre_pcap_truncated_records_total` counter instead of throwing — the
// rest of the trace stays usable.  (This is the one options type for both
// readers; the former PcapReader::Options alias is gone.)
struct PcapOptions {
  bool tolerant = false;
};

class PcapReader {
 public:
  // Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path, PcapOptions opt = {});

  // Returns the next record, or nullopt at end of file.  Strict mode throws
  // on a truncated record; tolerant mode returns nullopt.
  std::optional<PcapRecord> next();
  // Convenience: next record decoded as a Packet; skips undecodable frames.
  // This is the legacy one-packet path — it allocates a record buffer and a
  // Packet per frame; batch consumers should use MappedPcapReader::fill.
  std::optional<Packet> next_packet();

  [[nodiscard]] uint32_t snaplen() const { return snaplen_; }
  // Truncated records this reader hit (0 or 1: a truncation ends the file).
  [[nodiscard]] uint64_t truncated_records() const { return truncated_; }

 private:
  std::ifstream in_;
  PcapOptions opt_;
  uint32_t snaplen_ = 0;
  bool swapped_ = false;  // big-endian file on little-endian host
  uint64_t truncated_ = 0;

  // Records the truncation; throws in strict mode, else returns nullopt.
  std::optional<PcapRecord> truncation(const char* what);
};

// Zero-copy capture reader: maps the whole file and yields PacketViews that
// borrow the mapped frame bytes (no per-record buffer), or decodes frames
// batch-at-a-time into reusable PacketBatch slots via the PacketSource
// interface.  Truncation semantics, counters and header validation match
// PcapReader exactly (the mmap-vs-ifstream equivalence test pins this).
class MappedPcapReader final : public PacketSource {
 public:
  // Throws std::runtime_error on open/map failure or bad magic.
  explicit MappedPcapReader(const std::string& path, PcapOptions opt = {});
  ~MappedPcapReader() override;

  MappedPcapReader(const MappedPcapReader&) = delete;
  MappedPcapReader& operator=(const MappedPcapReader&) = delete;

  // Points `out` at the next frame in the mapping (no copy; the view stays
  // valid for this reader's lifetime).  Returns false at end of file —
  // strict mode throws on a truncated record, tolerant mode stops at the
  // last whole record.
  bool next_view(PacketView& out);

  // PacketSource: decodes up to `max` frames into `out`'s recycled slots,
  // skipping undecodable frames.  Returns 0 at end of stream.
  size_t fill(PacketBatch& out, size_t max) override;

  [[nodiscard]] uint32_t snaplen() const { return snaplen_; }
  [[nodiscard]] uint64_t truncated_records() const { return truncated_; }

 private:
  const uint8_t* base_ = nullptr;  // whole-file mapping
  size_t size_ = 0;
  size_t off_ = 0;  // next record header
  PcapOptions opt_;
  uint32_t snaplen_ = 0;
  bool swapped_ = false;
  uint64_t truncated_ = 0;
  int fd_ = -1;

  bool truncation(const char* what);
};

// Reads an entire capture into memory (the benchmark replay path), through
// the mapped reader.  Deprecated: the PacketBatch overload below reuses
// slot capacity across refills and composes with `std::move(batch).take()`
// when a vector is genuinely needed; this copy-returning variant allocates
// a fresh vector per call.  Slated for removal — see DESIGN.md §7.
[[deprecated("use read_all(path, PacketBatch&) and std::move(batch).take()")]]
std::vector<Packet> read_all(const std::string& path, PcapOptions opt = {});

// Batch variant: appends every decodable packet in the capture to `out`
// (on top of out's current live packets).  Returns the number appended.
size_t read_all(const std::string& path, PacketBatch& out,
                PcapOptions opt = {});

// Writes all packets to `path`.  The span overload covers vectors and
// PacketBatch::packets() alike; the vector overload is kept for existing
// callers.
void write_all(const std::string& path, std::span<const Packet> packets);
void write_all(const std::string& path, const std::vector<Packet>& packets);

}  // namespace netqre::net
