// Classic libpcap capture-file format, implemented from scratch (the target
// system has no libpcap).  Supports the microsecond little-endian variant
// written by tcpdump (magic 0xa1b2c3d4), link type Ethernet (DLT_EN10MB).
#pragma once

#include <cstdint>
#include <functional>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace netqre::net {

struct PcapRecord {
  double ts = 0.0;
  uint32_t orig_len = 0;       // length on the wire
  std::vector<uint8_t> data;   // captured bytes (possibly snapped)
};

class PcapWriter {
 public:
  // Opens `path` and writes the global header.  Throws std::runtime_error on
  // I/O failure.
  explicit PcapWriter(const std::string& path, uint32_t snaplen = 65535);

  void write(const PcapRecord& rec);
  // Encodes `p` with the wire codec and appends it.
  void write_packet(const Packet& p);
  void flush();

 private:
  std::ofstream out_;
  uint32_t snaplen_;
};

class PcapReader {
 public:
  // Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path);

  // Returns the next record, or nullopt at end of file.
  std::optional<PcapRecord> next();
  // Convenience: next record decoded as a Packet; skips undecodable frames.
  std::optional<Packet> next_packet();

  [[nodiscard]] uint32_t snaplen() const { return snaplen_; }

 private:
  std::ifstream in_;
  uint32_t snaplen_ = 0;
  bool swapped_ = false;  // big-endian file on little-endian host
};

// Reads an entire capture into memory (the benchmark replay path).
std::vector<Packet> read_all(const std::string& path);

// Writes all packets to `path`.
void write_all(const std::string& path, const std::vector<Packet>& packets);

}  // namespace netqre::net
