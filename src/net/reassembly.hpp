// TCP stream reordering preprocessor.
//
// §2/§8 of the paper: the compiled query assumes in-order delivery; the
// runtime is responsible for reordering, retransmissions and loss.  This
// module buffers out-of-order TCP segments per connection direction and
// releases packets to the query in sequence order, dropping exact
// retransmissions.  Non-TCP packets pass through untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/packet_view.hpp"

namespace netqre::net {

class TcpReorderer {
 public:
  struct Stats {
    uint64_t delivered = 0;
    uint64_t reordered = 0;        // held then released in order
    uint64_t retransmits_dropped = 0;
    uint64_t buffered_now = 0;
  };

  // `max_buffer` bounds held segments per direction; on overflow the oldest
  // gap is declared lost and buffered segments are flushed in order.
  explicit TcpReorderer(size_t max_buffer = 256) : max_buffer_(max_buffer) {}

  // Pushes one captured packet; appends released in-order packets to `out`.
  void push(const Packet& p, std::vector<Packet>& out);

  // Flushes everything still buffered (end of capture), in sequence order.
  void flush(std::vector<Packet>& out);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Direction {
    bool synced = false;     // next_seq is valid
    uint32_t next_seq = 0;   // next expected sequence number
    // Held out-of-order segments keyed by sequence number.
    std::map<uint32_t, Packet> pending;
  };

  // Keyed by the unidirectional 5-tuple (direction matters for seq spaces).
  std::unordered_map<Conn, Direction, ConnHash> dirs_;
  size_t max_buffer_;
  Stats stats_;

  void release_ready(Direction& d, std::vector<Packet>& out);
  static uint32_t seq_advance(const Packet& p);
};

// PacketSource adapter running a TcpReorderer over an upstream source: each
// fill() pulls batches from `upstream` and emits the in-order stream, so
// engines consume reordered traffic through the same batched interface as
// raw captures (mmap reader → reorderer → Engine::on_batch pipelines
// compose without per-packet glue).
class ReorderingSource final : public PacketSource {
 public:
  // Both references are borrowed and must outlive this adapter.
  ReorderingSource(PacketSource& upstream, TcpReorderer& reorderer)
      : upstream_(upstream), reorderer_(reorderer) {}

  // Refills `out` with up to `max` in-order packets.  A single upstream
  // batch can release more packets than it contains (a gap fill draining
  // held segments); the surplus is carried to the next call.  After the
  // upstream ends, buffered segments are flushed, then 0 is returned.
  size_t fill(PacketBatch& out, size_t max) override;

 private:
  PacketSource& upstream_;
  TcpReorderer& reorderer_;
  PacketBatch in_;               // upstream refill scratch
  std::vector<Packet> ready_;    // released, not yet handed out
  size_t ready_pos_ = 0;
  bool upstream_done_ = false;
  bool flushed_ = false;
};

}  // namespace netqre::net
