#include "net/reassembly.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::net {
namespace {

// Serial-number comparison on 32-bit sequence space (RFC 1982 style).
bool seq_lt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}

obs::Counter& ooo_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_reassembly_out_of_order_total");
  return c;
}
obs::Counter& retrans_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_reassembly_retransmits_total");
  return c;
}
obs::Counter& gap_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_reassembly_gap_flushes_total");
  return c;
}

}  // namespace

uint32_t TcpReorderer::seq_advance(const Packet& p) {
  uint32_t adv = static_cast<uint32_t>(p.payload.size());
  if (p.syn()) adv += 1;
  if (p.fin()) adv += 1;
  return adv;
}

void TcpReorderer::release_ready(Direction& d, std::vector<Packet>& out) {
  uint64_t released = 0;
  for (auto it = d.pending.begin(); it != d.pending.end();) {
    if (it->first != d.next_seq) break;
    d.next_seq = it->first + seq_advance(it->second);
    out.push_back(std::move(it->second));
    ++stats_.delivered;
    ++stats_.reordered;
    --stats_.buffered_now;
    ++released;
    it = d.pending.erase(it);
  }
  if (released > 0 && d.pending.empty()) {
    // The gap this direction was waiting on is fully drained.
    obs::tracer().record(obs::TraceKind::GapRelease, 0, released);
  }
}

void TcpReorderer::push(const Packet& p, std::vector<Packet>& out) {
  if (!p.is_tcp()) {
    out.push_back(p);
    ++stats_.delivered;
    return;
  }
  auto& d = dirs_[Conn::of(p)];
  if (p.syn() || !d.synced) {
    // (Re)synchronize on SYN, or on the first packet seen mid-stream.
    d.synced = true;
    d.next_seq = p.seq + seq_advance(p);
    out.push_back(p);
    ++stats_.delivered;
    release_ready(d, out);
    return;
  }
  if (p.seq == d.next_seq) {
    d.next_seq += seq_advance(p);
    out.push_back(p);
    ++stats_.delivered;
    release_ready(d, out);
    return;
  }
  if (seq_lt(p.seq, d.next_seq)) {
    // Old data: retransmission of something already delivered.
    // Pure ACKs carry no new sequence space and always pass through.
    if (seq_advance(p) == 0) {
      out.push_back(p);
      ++stats_.delivered;
    } else {
      ++stats_.retransmits_dropped;
      retrans_total().inc();
    }
    return;
  }
  // Future segment: hold until the gap fills.
  auto [it, inserted] = d.pending.emplace(p.seq, p);
  if (inserted) {
    ++stats_.buffered_now;
    ooo_total().inc();
    if (d.pending.size() == 1) {
      // A new gap opened on this direction.
      obs::tracer().record(obs::TraceKind::GapOpen,
                           ConnHash{}(Conn::of(p)), p.seq - d.next_seq);
    }
  } else {
    ++stats_.retransmits_dropped;  // duplicate of a held segment
    retrans_total().inc();
  }
  if (d.pending.size() > max_buffer_) {
    // Declare the gap lost: skip to the earliest held segment.
    d.next_seq = d.pending.begin()->first;
    gap_total().inc();
    obs::tracer().record(obs::TraceKind::GapRelease, 1, d.pending.size());
    release_ready(d, out);
  }
}

void TcpReorderer::flush(std::vector<Packet>& out) {
  for (auto& [conn, d] : dirs_) {
    if (!d.pending.empty()) {
      obs::tracer().record(obs::TraceKind::GapRelease, 1, d.pending.size());
    }
    for (auto& [seq, pkt] : d.pending) {
      out.push_back(std::move(pkt));
      ++stats_.delivered;
      --stats_.buffered_now;
    }
    d.pending.clear();
  }
}

size_t ReorderingSource::fill(PacketBatch& out, size_t max) {
  out.clear();
  while (out.size() < max) {
    // Drain the carried-over released packets first.
    while (ready_pos_ < ready_.size() && out.size() < max) {
      out.next_slot() = std::move(ready_[ready_pos_++]);
    }
    if (out.size() == max) break;
    ready_.clear();
    ready_pos_ = 0;
    if (!upstream_done_) {
      if (upstream_.fill(in_, max) == 0) {
        upstream_done_ = true;
        continue;
      }
      for (const Packet& p : in_) reorderer_.push(p, ready_);
    } else if (!flushed_) {
      reorderer_.flush(ready_);
      flushed_ = true;
    } else {
      break;  // upstream ended and the flush has been handed out
    }
  }
  return out.size();
}

}  // namespace netqre::net
