#include "net/ipv4.hpp"

#include <charconv>

namespace netqre::net {

std::optional<uint32_t> parse_ip(std::string_view text) {
  uint32_t ip = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    ip = (ip << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return ip;
}

std::string format_ip(uint32_t ip) {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((ip >> shift) & 0xff);
    if (shift) out += '.';
  }
  return out;
}

}  // namespace netqre::net
