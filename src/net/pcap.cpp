#include "net/pcap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace netqre::net {
namespace {

constexpr uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr uint32_t kLinkTypeEthernet = 1;

struct GlobalHeader {
  uint32_t magic;
  uint16_t version_major;
  uint16_t version_minor;
  int32_t thiszone;
  uint32_t sigfigs;
  uint32_t snaplen;
  uint32_t network;
};
static_assert(sizeof(GlobalHeader) == 24);

struct RecordHeader {
  uint32_t ts_sec;
  uint32_t ts_usec;
  uint32_t incl_len;
  uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

uint32_t bswap(uint32_t v) { return __builtin_bswap32(v); }

// Cached registry handles: registration interns once, reads are lock-free.
obs::Counter& records_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_pcap_records_total");
  return c;
}
obs::Counter& truncated_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_pcap_truncated_records_total");
  return c;
}
obs::Counter& undecodable_total() {
  static obs::Counter& c =
      obs::registry().counter("netqre_pcap_undecodable_total");
  return c;
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, uint32_t snaplen)
    : out_(path, std::ios::binary), snaplen_(snaplen) {
  if (!out_) throw std::runtime_error("pcap: cannot open " + path);
  GlobalHeader hdr{kMagicUsec, kVersionMajor, kVersionMinor, 0, 0, snaplen_,
                   kLinkTypeEthernet};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
}

void PcapWriter::write(const PcapRecord& rec) {
  RecordHeader hdr;
  hdr.ts_sec = static_cast<uint32_t>(rec.ts);
  hdr.ts_usec = static_cast<uint32_t>(
      std::llround((rec.ts - hdr.ts_sec) * 1e6));
  if (hdr.ts_usec >= 1000000) {  // rounding carried into the next second
    hdr.ts_sec += 1;
    hdr.ts_usec -= 1000000;
  }
  const uint32_t incl = std::min<uint32_t>(
      snaplen_, static_cast<uint32_t>(rec.data.size()));
  hdr.incl_len = incl;
  hdr.orig_len = rec.orig_len ? rec.orig_len
                              : static_cast<uint32_t>(rec.data.size());
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out_.write(reinterpret_cast<const char*>(rec.data.data()), incl);
  if (!out_) throw std::runtime_error("pcap: write failed");
}

void PcapWriter::write_packet(const Packet& p) {
  PcapRecord rec;
  rec.ts = p.ts;
  rec.data = encode_frame(p);
  rec.orig_len = std::max<uint32_t>(p.wire_len,
                                    static_cast<uint32_t>(rec.data.size()));
  write(rec);
}

void PcapWriter::flush() { out_.flush(); }

PcapReader::PcapReader(const std::string& path, PcapOptions opt)
    : in_(path, std::ios::binary), opt_(opt) {
  if (!in_) throw std::runtime_error("pcap: cannot open " + path);
  GlobalHeader hdr{};
  in_.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in_) throw std::runtime_error("pcap: truncated global header");
  if (hdr.magic == kMagicUsec) {
    swapped_ = false;
  } else if (hdr.magic == kMagicUsecSwapped) {
    swapped_ = true;
  } else {
    throw std::runtime_error("pcap: unsupported magic");
  }
  snaplen_ = swapped_ ? bswap(hdr.snaplen) : hdr.snaplen;
  const uint32_t network = swapped_ ? bswap(hdr.network) : hdr.network;
  if (network != kLinkTypeEthernet) {
    throw std::runtime_error("pcap: only Ethernet link type supported");
  }
}

std::optional<PcapRecord> PcapReader::truncation(const char* what) {
  ++truncated_;
  truncated_total().inc();
  if (!opt_.tolerant) {
    throw std::runtime_error(std::string("pcap: ") + what);
  }
  in_.setstate(std::ios::eofbit);  // stop at the last whole record
  return std::nullopt;
}

std::optional<PcapRecord> PcapReader::next() {
  if (truncated_) return std::nullopt;  // tolerant reader already stopped
  RecordHeader hdr{};
  in_.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (in_.gcount() == 0) return std::nullopt;  // clean EOF
  if (!in_) return truncation("truncated record header");
  if (swapped_) {
    hdr.ts_sec = bswap(hdr.ts_sec);
    hdr.ts_usec = bswap(hdr.ts_usec);
    hdr.incl_len = bswap(hdr.incl_len);
    hdr.orig_len = bswap(hdr.orig_len);
  }
  if (hdr.incl_len > snaplen_ + 65536u) {
    // A garbage length usually means the previous record was cut short and
    // we are reading mid-payload; treat it as truncation, not corruption.
    return truncation("implausible record length");
  }
  PcapRecord rec;
  rec.ts = hdr.ts_sec + hdr.ts_usec * 1e-6;
  rec.orig_len = hdr.orig_len;
  rec.data.resize(hdr.incl_len);
  in_.read(reinterpret_cast<char*>(rec.data.data()), hdr.incl_len);
  if (!in_) return truncation("truncated record body");
  records_total().inc();
  return rec;
}

std::optional<Packet> PcapReader::next_packet() {
  while (auto rec = next()) {
    if (auto p = decode_frame(rec->data, rec->ts, rec->orig_len)) return p;
    undecodable_total().inc();
  }
  return std::nullopt;
}

MappedPcapReader::MappedPcapReader(const std::string& path, PcapOptions opt)
    : opt_(opt) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw std::runtime_error("pcap: cannot open " + path);
  struct stat st{};
  const bool stat_ok = ::fstat(fd_, &st) == 0;
  auto fail = [&](const std::string& what) {
    if (base_) ::munmap(const_cast<uint8_t*>(base_), size_);
    ::close(fd_);
    fd_ = -1;
    base_ = nullptr;
    throw std::runtime_error("pcap: " + what);
  };
  if (!stat_ok) fail("cannot stat " + path);
  size_ = static_cast<size_t>(st.st_size);
  if (size_ < sizeof(GlobalHeader)) fail("truncated global header");
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (m == MAP_FAILED) fail("cannot mmap " + path);
  base_ = static_cast<const uint8_t*>(m);

  GlobalHeader hdr{};
  std::memcpy(&hdr, base_, sizeof(hdr));
  if (hdr.magic == kMagicUsec) {
    swapped_ = false;
  } else if (hdr.magic == kMagicUsecSwapped) {
    swapped_ = true;
  } else {
    fail("unsupported magic");
  }
  snaplen_ = swapped_ ? bswap(hdr.snaplen) : hdr.snaplen;
  const uint32_t network = swapped_ ? bswap(hdr.network) : hdr.network;
  if (network != kLinkTypeEthernet) {
    fail("only Ethernet link type supported");
  }
  off_ = sizeof(GlobalHeader);
}

MappedPcapReader::~MappedPcapReader() {
  if (base_) ::munmap(const_cast<uint8_t*>(base_), size_);
  if (fd_ >= 0) ::close(fd_);
}

bool MappedPcapReader::truncation(const char* what) {
  ++truncated_;
  truncated_total().inc();
  if (!opt_.tolerant) {
    throw std::runtime_error(std::string("pcap: ") + what);
  }
  return false;  // stop at the last whole record
}

bool MappedPcapReader::next_view(PacketView& out) {
  if (truncated_) return false;  // tolerant reader already stopped
  if (off_ == size_) return false;  // clean EOF
  if (size_ - off_ < sizeof(RecordHeader)) {
    return truncation("truncated record header");
  }
  RecordHeader hdr{};
  std::memcpy(&hdr, base_ + off_, sizeof(hdr));
  if (swapped_) {
    hdr.ts_sec = bswap(hdr.ts_sec);
    hdr.ts_usec = bswap(hdr.ts_usec);
    hdr.incl_len = bswap(hdr.incl_len);
    hdr.orig_len = bswap(hdr.orig_len);
  }
  if (hdr.incl_len > snaplen_ + 65536u) {
    // Same heuristic as PcapReader::next: garbage lengths read as a cut
    // previous record, not corruption.
    return truncation("implausible record length");
  }
  if (size_ - off_ - sizeof(RecordHeader) < hdr.incl_len) {
    return truncation("truncated record body");
  }
  out.data = base_ + off_ + sizeof(RecordHeader);
  out.len = hdr.incl_len;
  out.orig_len = hdr.orig_len;
  out.ts = hdr.ts_sec + hdr.ts_usec * 1e-6;
  off_ += sizeof(RecordHeader) + hdr.incl_len;
  records_total().inc();
  return true;
}

size_t MappedPcapReader::fill(PacketBatch& out, size_t max) {
  out.clear();
  PacketView v;
  while (out.size() < max && next_view(v)) {
    if (!decode_frame_into(v.bytes(), v.ts, v.orig_len, out.next_slot())) {
      out.drop_last();
      undecodable_total().inc();
    }
  }
  return out.size();
}

std::vector<Packet> read_all(const std::string& path, PcapOptions opt) {
  PacketBatch batch;
  read_all(path, batch, opt);
  return std::move(batch).take();
}

size_t read_all(const std::string& path, PacketBatch& out, PcapOptions opt) {
  MappedPcapReader reader(path, opt);
  const size_t before = out.size();
  PacketView v;
  while (reader.next_view(v)) {
    if (!decode_frame_into(v.bytes(), v.ts, v.orig_len, out.next_slot())) {
      out.drop_last();
      undecodable_total().inc();
    }
  }
  return out.size() - before;
}

void write_all(const std::string& path, std::span<const Packet> packets) {
  PcapWriter writer(path);
  for (const auto& p : packets) writer.write_packet(p);
  writer.flush();
}

void write_all(const std::string& path, const std::vector<Packet>& packets) {
  write_all(path, std::span<const Packet>(packets));
}

}  // namespace netqre::net
