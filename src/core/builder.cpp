#include "core/builder.hpp"

#include <stdexcept>

namespace netqre::core {

QueryBuilder::QueryBuilder() : table_(std::make_shared<AtomTable>()) {}

FieldRef QueryBuilder::field_or_throw(const std::string& name) {
  auto ref = resolve_field(name);
  if (!ref) throw std::runtime_error("unknown field: " + name);
  return *ref;
}

int QueryBuilder::new_param(const std::string& name, Type t) {
  (void)name;
  slot_types_.push_back(t);
  return n_slots_++;
}

Formula QueryBuilder::atom_eq(const std::string& field, Value lit) {
  Atom a;
  a.field = field_or_throw(field);
  a.op = CmpOp::Eq;
  a.literal = std::move(lit);
  return Formula::atom(table_->intern(a));
}

Formula QueryBuilder::atom_cmp(const std::string& field, CmpOp op,
                               Value lit) {
  Atom a;
  a.field = field_or_throw(field);
  a.op = op;
  a.literal = std::move(lit);
  return Formula::atom(table_->intern(a));
}

Formula QueryBuilder::atom_param(const std::string& field, int slot,
                                 int64_t offset) {
  Atom a;
  a.field = field_or_throw(field);
  a.op = CmpOp::Eq;
  a.is_param = true;
  a.param = slot;
  a.offset = offset;
  if (!a.valid()) throw std::runtime_error("invalid parameterized atom");
  return Formula::atom(table_->intern(a));
}

Formula QueryBuilder::is_tcp_conn(int slot) {
  return Formula::conj(
      atom_eq("proto", Value::integer(static_cast<int>(net::Proto::Tcp))),
      atom_param("conn", slot));
}

Dfa QueryBuilder::compile_dom(const Re& re) {
  return compile_regex(re, *table_);
}

QueryBuilder::Expr QueryBuilder::constant(Value v) {
  Type t = v.type();
  return {std::make_shared<ConstOp>(std::move(v)), Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::last_field(const std::string& field) {
  FieldRef ref = field_or_throw(field);
  return {std::make_shared<LastFieldOp>(ref), Re::plus(Re::any()),
          field_type(ref)};
}

QueryBuilder::Expr QueryBuilder::param_ref(int slot) {
  Type t = slot >= 0 && static_cast<size_t>(slot) < slot_types_.size()
               ? slot_types_[slot]
               : Type::Int;
  return {std::make_shared<ParamRefOp>(slot), Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::match(Re re) {
  Dfa dfa = compile_regex(re, *table_);
  return {std::make_shared<MatchOp>(std::move(dfa), table_), Re::all(),
          Type::Bool};
}

QueryBuilder::Expr QueryBuilder::cond(Re re, Expr then_e) {
  Dfa dfa = compile_regex(re, *table_);
  Re dom = Re::conj(re, then_e.dom);
  Type t = then_e.type;
  return {std::make_shared<CondOp>(std::move(dfa), table_,
                                   std::move(then_e.op), nullptr),
          std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::cond_else(Re re, Expr then_e, Expr else_e) {
  Dfa dfa = compile_regex(re, *table_);
  Re dom = Re::alt(Re::conj(re, then_e.dom), else_e.dom);
  Type t = then_e.type;
  return {std::make_shared<CondOp>(std::move(dfa), table_,
                                   std::move(then_e.op),
                                   std::move(else_e.op)),
          std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::bin(BinKind kind, Expr a, Expr b) {
  Re dom = Re::conj(a.dom, b.dom);
  Type t = kind == BinKind::Add || kind == BinKind::Sub ||
                   kind == BinKind::Mul
               ? a.type
           : kind == BinKind::Div ? Type::Double
                                  : Type::Bool;
  return {std::make_shared<BinOp>(kind, std::move(a.op), std::move(b.op)),
          std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::split(Expr f, Expr g, AggOp agg) {
  auto df = std::make_shared<const Dfa>(compile_dom(f.dom));
  auto dg = std::make_shared<const Dfa>(compile_dom(g.dom));
  const bool ambiguous = !concat_unambiguous(*df, *dg, *table_);
  if (ambiguous) {
    warnings_.push_back("split: possibly ambiguous decomposition");
  }
  g.op->set_domain(dg);
  Re dom = Re::concat(f.dom, g.dom);
  Type t = f.type;
  auto op = std::make_shared<SplitOp>(std::move(f.op), std::move(g.op), agg,
                                      table_);
  decomp_sites_.push_back(
      {op.get(), false, ambiguous, std::move(df), std::move(dg)});
  return {std::move(op), std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::split3(Expr a, Expr b, Expr c, AggOp agg) {
  Expr bc = split(std::move(b), std::move(c), agg);
  return split(std::move(a), std::move(bc), agg);
}

QueryBuilder::Expr QueryBuilder::iter(Expr f, AggOp agg) {
  auto df = std::make_shared<const Dfa>(compile_dom(f.dom));
  const bool ambiguous = !star_unambiguous(*df, *table_);
  if (ambiguous) {
    warnings_.push_back("iter: possibly ambiguous factorization");
  }
  f.op->set_domain(df);
  Re dom = Re::star(f.dom);
  Type t = agg == AggOp::Avg ? Type::Double : f.type;
  auto op = std::make_shared<IterOp>(std::move(f.op), agg, table_);
  decomp_sites_.push_back({op.get(), true, ambiguous, std::move(df), nullptr});
  return {std::move(op), std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::comp(Expr f, Expr g) {
  // Domain of a composition is approximated as Σ* (no pruning through >>).
  Type t = g.type;
  return {std::make_shared<CompOp>(std::move(f.op), std::move(g.op)),
          Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::action(const std::string& name,
                                        std::vector<Expr> args) {
  std::vector<OpPtr> ops;
  ops.reserve(args.size());
  for (auto& a : args) ops.push_back(std::move(a.op));
  return {std::make_shared<ActionOp>(name, std::move(ops)), Re::all(),
          Type::Action};
}

QueryBuilder::Expr QueryBuilder::ternary(Expr c, Expr then_e,
                                         std::optional<Expr> else_e) {
  Re dom = else_e ? Re::alt(Re::conj(c.dom, then_e.dom), else_e->dom)
                  : Re::conj(c.dom, then_e.dom);
  Type t = then_e.type;
  return {std::make_shared<TernaryOp>(std::move(c.op), std::move(then_e.op),
                                      else_e ? std::move(else_e->op)
                                             : nullptr),
          std::move(dom), t};
}

QueryBuilder::Expr QueryBuilder::proj(ProjOp::Component comp, Expr sub) {
  Re dom = sub.dom;
  Type t = comp == ProjOp::Component::SrcIp ||
                   comp == ProjOp::Component::DstIp
               ? Type::Ip
               : Type::Port;
  return {std::make_shared<ProjOp>(comp, std::move(sub.op)), std::move(dom),
          t};
}

QueryBuilder::Expr QueryBuilder::aggregate(AggOp agg,
                                           const std::vector<int>& slots,
                                           Expr inner) {
  if (slots.empty()) throw std::runtime_error("aggregate: no parameters");
  for (size_t i = 1; i < slots.size(); ++i) {
    if (slots[i] != slots[i - 1] + 1) {
      throw std::runtime_error("aggregate: slots must be contiguous");
    }
  }
  ScopeMode mode;
  mode.kind = ScopeMode::Kind::Aggregate;
  mode.agg = agg;
  Type t = agg == AggOp::Avg ? Type::Double : inner.type;
  auto scope = std::make_shared<ParamScopeOp>(
      slots.front(), static_cast<int>(slots.size()), mode,
      std::move(inner.op), table_);
  if (scope->eager()) {
    warnings_.push_back(
        "aggregate: sparse update invalid, falling back to eager scope");
  }
  return {std::move(scope), Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::eval_at(
    const std::vector<int>& slots, const std::vector<std::string>& key_fields,
    Expr inner) {
  if (slots.size() != key_fields.size()) {
    throw std::runtime_error("eval_at: key/slot arity mismatch");
  }
  ScopeMode mode;
  mode.kind = ScopeMode::Kind::EvalAt;
  for (const auto& k : key_fields) mode.keys.push_back(field_or_throw(k));
  Type t = inner.type;
  auto scope = std::make_shared<ParamScopeOp>(
      slots.front(), static_cast<int>(slots.size()), mode,
      std::move(inner.op), table_);
  if (scope->eager()) {
    warnings_.push_back(
        "eval_at: sparse update invalid, falling back to eager scope");
  }
  return {std::move(scope), Re::plus(Re::any()), t};
}

QueryBuilder::Expr QueryBuilder::filter(Formula pred) {
  // /.*[p]/ ? last — forwards matching packets through >>.  Composition only
  // consumes the filter's *definedness* (Algorithm 4), so the `last` value
  // is represented by a stateless constant; this keeps filter state to a
  // single DFA state, which the guard trie's miss-skip analysis relies on.
  Re re = Re::concat(Re::all(), Re::pred_of(std::move(pred)));
  Expr e = cond(std::move(re), constant(Value::boolean(true)));
  e.type = Type::Packet;
  return e;
}

QueryBuilder::Expr QueryBuilder::fold_const(AggOp agg, Value v) {
  Type t = agg == AggOp::Avg ? Type::Double : v.type();
  return {std::make_shared<FoldOp>(agg, false, FieldRef{}, std::move(v)),
          Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::fold_field(AggOp agg,
                                            const std::string& field) {
  FieldRef ref = field_or_throw(field);
  Type t = agg == AggOp::Avg ? Type::Double : field_type(ref);
  return {std::make_shared<FoldOp>(agg, true, ref, Value::undef()),
          Re::all(), t};
}

QueryBuilder::Expr QueryBuilder::count() {
  return fold_const(AggOp::Sum, Value::integer(1));
}

QueryBuilder::Expr QueryBuilder::count_size() {
  return fold_field(AggOp::Sum, "len");
}

QueryBuilder::Expr QueryBuilder::exists(Formula pred) {
  Re re = Re::concat(Re::concat(Re::all(), Re::pred_of(std::move(pred))),
                     Re::all());
  return cond_else(std::move(re), constant(Value::integer(1)),
                   constant(Value::integer(0)));
}

CompiledQuery QueryBuilder::finish(Expr e,
                                   std::vector<std::string> param_names) {
  CompiledQuery q;
  q.root = std::move(e.op);
  q.table = table_;
  q.n_slots = n_slots_;
  q.result_type = e.type;
  q.param_names = std::move(param_names);
  q.warnings = warnings_;
  q.decomp_sites = std::move(decomp_sites_);
  decomp_sites_.clear();
  index_ops(*q.root);  // preorder node ids for telemetry / profiling
  return q;
}

}  // namespace netqre::core
