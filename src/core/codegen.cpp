#include "core/codegen.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "core/aggop.hpp"
#include "core/fields.hpp"

namespace netqre::core {
namespace {

// Cap on the product machine so tables stay cache-resident: letters are
// dense (create/upd tables are materialized per cell, unlike the borrowed
// DFA of the old single-shape plan).
constexpr int kMaxLetterBits = 10;
constexpr int kMaxStates = 64;

// C++ accessor on the generated packet struct for a numeric built-in field.
std::optional<std::string> field_accessor(Field f) {
  switch (f) {
    case Field::SrcIp: return "p.src_ip";
    case Field::DstIp: return "p.dst_ip";
    case Field::SrcPort: return "p.src_port";
    case Field::DstPort: return "p.dst_port";
    case Field::Proto: return "p.proto";
    case Field::Syn: return "((p.tcp_flags >> 1) & 1)";
    case Field::Ack: return "((p.tcp_flags >> 4) & 1)";
    case Field::Fin: return "(p.tcp_flags & 1)";
    case Field::Rst: return "((p.tcp_flags >> 2) & 1)";
    case Field::Psh: return "((p.tcp_flags >> 3) & 1)";
    case Field::Seq: return "p.seq";
    case Field::AckNo: return "p.ack_no";
    case Field::Len: return "p.wire_len";
    default: return std::nullopt;
  }
}

// Runtime twin of field_accessor(): must agree with the generated C++ bit
// for bit so the in-process monitor and the gcc pipeline are interchangeable
// oracles.
uint64_t raw_field(Field f, const net::Packet& p) {
  switch (f) {
    case Field::SrcIp: return p.src_ip;
    case Field::DstIp: return p.dst_ip;
    case Field::SrcPort: return p.src_port;
    case Field::DstPort: return p.dst_port;
    case Field::Proto: return static_cast<uint64_t>(p.proto);
    case Field::Syn: return (p.tcp_flags >> 1) & 1;
    case Field::Ack: return (p.tcp_flags >> 4) & 1;
    case Field::Fin: return p.tcp_flags & 1;
    case Field::Rst: return (p.tcp_flags >> 2) & 1;
    case Field::Psh: return (p.tcp_flags >> 3) & 1;
    case Field::Seq: return p.seq;
    case Field::AckNo: return p.ack_no;
    case Field::Len: return p.wire_len;
    default: return 0;
  }
}

bool cmp_apply(CmpOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case CmpOp::Eq: return a == b;
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
    case CmpOp::Contains: return false;  // Generic atoms use Atom::eval
  }
  return false;
}

std::string cmp_cpp(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
    case CmpOp::Contains: return "/*unsupported*/";
  }
  return "==";
}

uint64_t mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// ------------------------------------------------------------ shape parser
//
// The specializable body vocabulary, as a small tree distilled from the op
// tree.  Every node owns nothing: DFAs are borrowed from the ops, which the
// plan build flattens into owned tables before returning.

struct Update {
  SpecPlan::Upd kind = SpecPlan::Upd::None;
  int64_t arg = 0;  // AddConst amount / AddField Field enum value
};

struct Shape {
  enum class K { Fold, Classifier, Distinct, Filtered };
  K k = K::Fold;
  Update upd;  // Fold
  struct Branch {
    const Dfa* dfa;
    Update upd;
  };
  std::vector<Branch> branches;  // Classifier cases, in chain order
  const Dfa* dfa = nullptr;      // Distinct pattern / Filtered guard
  int64_t then_v = 0;            // Distinct
  int64_t else_v = 0;
  bool has_else = false;
  std::unique_ptr<Shape> inner;  // Filtered body
};

// True when `d` accepts only single-letter streams: every 2-letter prefix is
// dead, and the empty stream is rejected (an empty-accepting classifier has
// ambiguous iter decompositions and is not a per-packet case table).
bool single_packet_only(const Dfa& d) {
  if (d.accepts_empty()) return false;
  for (uint64_t l1 : d.letters) {
    const int q1 = d.step(d.start, l1);
    for (uint64_t l2 : d.letters) {
      if (!d.is_dead(d.step(q1, l2))) return false;
    }
  }
  return true;
}

// Parses the scope body (or a closed query root) into a Shape.  On success
// appends one proven-step line per recognized layer to `chain`; on failure
// sets `err` and returns null, leaving the proven prefix in `chain`.
std::unique_ptr<Shape> parse_shape(const Op* op, std::vector<std::string>& chain,
                                   std::string& err) {
  if (const auto* f = dynamic_cast<const FoldOp*>(op)) {
    if (f->agg() != AggOp::Sum) {
      err = "fold aggregates with " + agg_name(f->agg()) +
            ", only sum is specialized";
      return nullptr;
    }
    auto s = std::make_unique<Shape>();
    s->k = Shape::K::Fold;
    if (f->use_field()) {
      if (!field_accessor(f->field().field)) {
        err = "fold field '" + field_name(f->field()) +
              "' has no specialized accessor";
        return nullptr;
      }
      s->upd = {SpecPlan::Upd::AddField,
                static_cast<int64_t>(f->field().field)};
      chain.push_back("fold(sum): += " + field_name(f->field()) +
                      " per forwarded packet");
    } else {
      if (f->constant().kind() != Value::Kind::Int) {
        err = "fold constant is not an integer";
        return nullptr;
      }
      s->upd = {SpecPlan::Upd::AddConst, f->constant().as_int()};
      chain.push_back("fold(sum): += " + f->constant().to_string() +
                      " per forwarded packet");
    }
    return s;
  }

  if (const auto* it = dynamic_cast<const IterOp*>(op)) {
    if (it->agg() != AggOp::Sum) {
      err = "iter aggregates with " + agg_name(it->agg()) +
            ", only sum is specialized";
      return nullptr;
    }
    auto s = std::make_unique<Shape>();
    s->k = Shape::K::Classifier;
    const Op* cur = it->f();
    while (cur) {
      const auto* c = dynamic_cast<const CondOp*>(cur);
      if (!c) {
        err = dynamic_cast<const ConstOp*>(cur)
                  ? std::string("iter classifier ends in an unconditional "
                                "value (defined on every stream, needs "
                                "case-set simulation)")
                  : "iter body is '" + std::string(cur->kind_name()) +
                        "', not a chain of pattern conditionals";
        return nullptr;
      }
      Update u;
      if (const auto* k = dynamic_cast<const ConstOp*>(c->then_op())) {
        if (k->value().kind() != Value::Kind::Int) {
          err = "iter case value is not an integer constant";
          return nullptr;
        }
        u = {SpecPlan::Upd::AddConst, k->value().as_int()};
      } else if (const auto* lf =
                     dynamic_cast<const LastFieldOp*>(c->then_op())) {
        if (!field_accessor(lf->field().field)) {
          err = "iter case field '" + field_name(lf->field()) +
                "' has no specialized accessor";
          return nullptr;
        }
        u = {SpecPlan::Upd::AddField,
             static_cast<int64_t>(lf->field().field)};
      } else {
        err = "iter case value is '" + std::string(c->then_op()->kind_name()) +
              "', not a constant or packet field";
        return nullptr;
      }
      if (!single_packet_only(c->re())) {
        err = "iter case pattern can match beyond a single packet (needs "
              "case-set simulation)";
        return nullptr;
      }
      s->branches.push_back({&c->re(), u});
      cur = c->else_op();
    }
    chain.push_back("iter(sum): single-packet classifier, " +
                    std::to_string(s->branches.size()) + " case(s)");
    return s;
  }

  if (const auto* c = dynamic_cast<const CondOp*>(op)) {
    // A terminal conditional (distinct family).  cond-with-value heads of a
    // composition are handled by the CompOp case below, so reaching here
    // means the conditional IS the per-key value.
    const auto* thn = dynamic_cast<const ConstOp*>(c->then_op());
    if (!thn || thn->value().kind() != Value::Kind::Int) {
      err = "conditional's then-branch is not an integer constant";
      return nullptr;
    }
    auto s = std::make_unique<Shape>();
    s->k = Shape::K::Distinct;
    s->dfa = &c->re();
    s->then_v = thn->value().as_int();
    if (c->else_op()) {
      const auto* els = dynamic_cast<const ConstOp*>(c->else_op());
      if (!els || els->value().kind() != Value::Kind::Int) {
        err = "conditional's else-branch is not an integer constant";
        return nullptr;
      }
      s->else_v = els->value().as_int();
      s->has_else = true;
    }
    chain.push_back("conditional: " + std::to_string(c->re().n_states()) +
                    "-state pattern reads out " +
                    std::to_string(s->then_v) +
                    (s->has_else ? "/" + std::to_string(s->else_v) : ""));
    return s;
  }

  if (const auto* cp = dynamic_cast<const CompOp*>(op)) {
    const auto* filt = dynamic_cast<const CondOp*>(cp->f());
    if (!filt || filt->else_op()) {
      err = "composition head is '" + std::string(cp->f()->kind_name()) +
            "', not a filter (else-free conditional)";
      return nullptr;
    }
    const auto* fv = dynamic_cast<const ConstOp*>(filt->then_op());
    if (!fv || !fv->value().defined()) {
      err = "filter condition carries a non-constant value";
      return nullptr;
    }
    chain.push_back("filter: " + std::to_string(filt->re().n_states()) +
                    "-state prefix pattern gates the body");
    auto inner = parse_shape(cp->g(), chain, err);
    if (!inner) return nullptr;
    auto s = std::make_unique<Shape>();
    s->k = Shape::K::Filtered;
    s->dfa = &filt->re();
    s->inner = std::move(inner);
    return s;
  }

  if (dynamic_cast<const ParamScopeOp*>(op)) {
    err = "parameter scope beneath a composition is not specialized";
    return nullptr;
  }
  if (dynamic_cast<const SplitOp*>(op)) {
    err = "split decomposition needs case-set simulation (interpreter tier)";
    return nullptr;
  }
  err = "'" + std::string(op->kind_name()) + "' has no compiled form";
  return nullptr;
}

void collect_dfas(const Shape& s, std::vector<const Dfa*>& out) {
  switch (s.k) {
    case Shape::K::Fold:
      break;
    case Shape::K::Classifier:
      for (const auto& b : s.branches) out.push_back(b.dfa);
      break;
    case Shape::K::Distinct:
      out.push_back(s.dfa);
      break;
    case Shape::K::Filtered:
      out.push_back(s.dfa);
      collect_dfas(*s.inner, out);
      break;
  }
}

// ------------------------------------------------- product machine builder

struct Machine {
  int n = 1;
  int start = 0;
  std::vector<int32_t> trans;  // (state << bits) | letter
  std::vector<Update> upd;
  bool value_is_acc = true;
  std::vector<uint8_t> acc_defined;  // per state, when value_is_acc
  std::vector<uint8_t> accept;       // per state, when !value_is_acc
};

// Translates a global letter into `d`'s local letter space.
uint64_t local_letter(const Dfa& d, uint64_t letter,
                      const std::unordered_map<int, int>& bit_of) {
  uint64_t out = 0;
  for (size_t j = 0; j < d.atom_ids.size(); ++j) {
    out |= ((letter >> bit_of.at(d.atom_ids[j])) & 1u) << j;
  }
  return out;
}

Machine build_machine(const Shape& s, int n_bits,
                      const std::unordered_map<int, int>& bit_of) {
  const size_t n_letters = size_t{1} << n_bits;
  Machine m;
  switch (s.k) {
    case Shape::K::Fold: {
      m.n = 1;
      m.trans.assign(n_letters, 0);
      m.upd.assign(n_letters, s.upd);
      m.acc_defined = {1};
      break;
    }
    case Shape::K::Classifier: {
      // State 0: live classifier; state 1: absorbing dead state reached on
      // an unclassifiable packet (the interpreter's empty iter entry set —
      // undefined on every extension).
      m.n = 2;
      m.trans.assign(2 * n_letters, 1);
      m.upd.assign(2 * n_letters, Update{});
      for (uint64_t letter = 0; letter < n_letters; ++letter) {
        bool matched = false;
        for (const auto& b : s.branches) {
          const int q1 =
              b.dfa->step(b.dfa->start, local_letter(*b.dfa, letter, bit_of));
          if (b.dfa->accept[static_cast<size_t>(q1)]) {
            m.trans[letter] = 0;
            m.upd[letter] = b.upd;
            matched = true;
            break;
          }
        }
        if (!matched) m.trans[letter] = 1;
      }
      m.acc_defined = {1, 0};
      break;
    }
    case Shape::K::Distinct: {
      const Dfa& d = *s.dfa;
      m.n = d.n_states();
      m.start = d.start;
      m.trans.assign(static_cast<size_t>(m.n) * n_letters, 0);
      m.upd.assign(static_cast<size_t>(m.n) * n_letters, Update{});
      for (int q = 0; q < m.n; ++q) {
        for (uint64_t letter = 0; letter < n_letters; ++letter) {
          m.trans[(static_cast<size_t>(q) << n_bits) | letter] =
              d.step(q, local_letter(d, letter, bit_of));
        }
      }
      m.value_is_acc = false;
      m.accept.resize(m.n);
      for (int q = 0; q < m.n; ++q) m.accept[q] = d.accept[q] ? 1 : 0;
      break;
    }
    case Shape::K::Filtered: {
      const Dfa& f = *s.dfa;
      Machine inner = build_machine(*s.inner, n_bits, bit_of);
      m.n = f.n_states() * inner.n;
      const auto idx = [&](int fq, int mq) { return fq * inner.n + mq; };
      m.start = idx(f.start, inner.start);
      m.trans.assign(static_cast<size_t>(m.n) * n_letters, 0);
      m.upd.assign(static_cast<size_t>(m.n) * n_letters, Update{});
      for (int fq = 0; fq < f.n_states(); ++fq) {
        for (uint64_t letter = 0; letter < n_letters; ++letter) {
          // Algorithm 4 order: the filter steps first, then forwards the
          // current packet iff defined on the new prefix.
          const int fq2 = f.step(fq, local_letter(f, letter, bit_of));
          const bool fwd = f.accept[static_cast<size_t>(fq2)];
          for (int mq = 0; mq < inner.n; ++mq) {
            const size_t icell = (static_cast<size_t>(mq) << n_bits) | letter;
            const size_t cell =
                (static_cast<size_t>(idx(fq, mq)) << n_bits) | letter;
            m.trans[cell] = idx(fq2, fwd ? inner.trans[icell] : mq);
            if (fwd) m.upd[cell] = inner.upd[icell];
          }
        }
      }
      m.value_is_acc = inner.value_is_acc;
      if (!inner.acc_defined.empty()) {
        m.acc_defined.resize(m.n);
        for (int fq = 0; fq < f.n_states(); ++fq) {
          for (int mq = 0; mq < inner.n; ++mq) {
            m.acc_defined[idx(fq, mq)] = inner.acc_defined[mq];
          }
        }
      }
      if (!inner.accept.empty()) {
        m.accept.resize(m.n);
        for (int fq = 0; fq < f.n_states(); ++fq) {
          for (int mq = 0; mq < inner.n; ++mq) {
            m.accept[idx(fq, mq)] = inner.accept[mq];
          }
        }
      }
      break;
    }
  }
  return m;
}

}  // namespace

SpecDecision analyze_spec_explained(const CompiledQuery& query,
                                    const SpecGate* gate) {
  SpecDecision d;
  const auto reject = [&d](std::string why) {
    d.chain.push_back("\xE2\x9C\x97 " + why);
    d.reason = std::move(why);
    d.plan.reset();
    return std::move(d);
  };

  // Certificate gate: the specialized executors assume an unambiguous query
  // with bounded per-key state, independent of the structural shape below.
  if (gate && !gate->unambiguous) {
    return reject("certificate: ambiguous split/iter decomposition" +
                  (gate->detail.empty() ? "" : " (" + gate->detail + ")"));
  }
  if (gate && !gate->state_bounded) {
    return reject("certificate: per-key state not proven bounded" +
                  (gate->detail.empty() ? "" : " (" + gate->detail + ")"));
  }
  if (gate) {
    d.chain.push_back(
        "certificate: unambiguous decompositions, bounded per-key state");
  }

  // Scope chain: directly nested parameter scopes around the body.
  SpecPlan plan;
  std::vector<const ParamScopeOp*> scopes;
  const Op* body = query.root.get();
  while (const auto* sc = dynamic_cast<const ParamScopeOp*>(body)) {
    if (sc->eager()) {
      return reject(
          "parameter scope runs eager updates (sparse-mode validation "
          "failed)");
    }
    for (size_t i = 0; i < sc->skip_param().size(); ++i) {
      if (!sc->skip_param()[i]) {
        return reject(
            "partial-hit letters are not no-ops at guard-trie level " +
            std::to_string(i));
      }
    }
    if (sc->mode().kind == ScopeMode::Kind::EvalAt) {
      return reject("scope instantiates per-packet keys (EvalAt mode)");
    }
    if (sc->mode().agg != AggOp::Sum) {
      return reject("scope aggregates with " + agg_name(sc->mode().agg) +
                    ", only sum is specialized");
    }
    scopes.push_back(sc);
    body = sc->inner();
  }

  int slot_lo = 0;
  int slot_hi = 0;
  if (!scopes.empty()) {
    slot_lo = scopes.front()->slot_lo();
    slot_hi = slot_lo;
    for (const auto* sc : scopes) {
      slot_hi = std::max(slot_hi, sc->slot_lo() + sc->n_params());
      std::string key_fields;
      for (const auto& atoms : sc->cand_atoms()) {
        if (atoms.size() != 1) {
          return reject("a scope parameter has " +
                        std::to_string(atoms.size()) +
                        " candidate atoms (key extraction needs exactly 1)");
        }
        if (!field_accessor(atoms[0].field.field)) {
          return reject("key field '" + field_name(atoms[0].field) +
                        "' has no specialized accessor");
        }
        plan.key.push_back({atoms[0].field.field, atoms[0].offset, atoms[0]});
        key_fields += (key_fields.empty() ? "" : ", ") +
                      field_name(atoms[0].field);
      }
      d.chain.push_back("scope(" + std::to_string(sc->n_params()) +
                        " param" + (sc->n_params() == 1 ? "" : "s") +
                        "): sparse guard trie keyed by [" + key_fields + "]");
    }
    const int n_params = static_cast<int>(plan.key.size());
    if (n_params < 1 || n_params > 2) {
      return reject(std::to_string(n_params) +
                    " key parameters in the scope chain (supported: 1-2)");
    }
    if (n_params == 2) {
      // Two parts pack into one uint64 as (k0 << 32) | uint32(k1): bijective
      // only when each candidate stays inside 32 bits.  Raw built-in fields
      // do, but an offset shifts the range (negative candidates alias their
      // mod-2^32 twins, which the interpreter keeps distinct).
      for (const auto& part : plan.key) {
        if (part.offset != 0) {
          return reject(
              "2-part packed key with an offset parameter (candidate can "
              "leave the 32-bit component range)");
        }
      }
    }
    plan.n_top_params = scopes.front()->n_params();
  }

  // Body shape.
  std::string err;
  auto shape = parse_shape(body, d.chain, err);
  if (!shape) return reject(err);

  // Global letter alphabet: union of all shape DFA atoms, first-seen order.
  std::vector<const Dfa*> dfas;
  collect_dfas(*shape, dfas);
  std::unordered_map<int, int> bit_of;
  std::vector<int> atom_order;
  for (const Dfa* dfa : dfas) {
    for (int id : dfa->atom_ids) {
      if (bit_of.emplace(id, static_cast<int>(atom_order.size())).second) {
        atom_order.push_back(id);
      }
    }
  }
  const int n_bits = static_cast<int>(atom_order.size());
  if (n_bits > kMaxLetterBits) {
    return reject("alphabet uses " + std::to_string(n_bits) +
                  " distinct atoms (> " + std::to_string(kMaxLetterBits) +
                  "-bit letter limit)");
  }

  // Atom evaluation strategy per letter bit.
  for (int id : atom_order) {
    const Atom& a = query.table->at(id);
    SpecPlan::AtomEval ae;
    ae.atom = a;
    ae.field = a.field.field;
    if (a.is_param) {
      if (scopes.empty() || a.param < slot_lo || a.param >= slot_hi) {
        return reject(
            "predicate references a parameter outside the scope chain");
      }
      ae.kind = SpecPlan::AtomEval::Kind::Param;
      plan.param_mask |= uint64_t{1} << bit_of.at(id);
    } else if (field_accessor(a.field.field) &&
               a.literal.kind() == Value::Kind::Int &&
               a.op != CmpOp::Contains) {
      ae.kind = SpecPlan::AtomEval::Kind::FastCmp;
      ae.op = a.op;
      ae.literal = a.literal.as_int();
    } else {
      ae.kind = SpecPlan::AtomEval::Kind::Generic;
    }
    plan.atoms.push_back(ae);
  }

  // Product machine over the global alphabet.
  Machine m = build_machine(*shape, n_bits, bit_of);
  if (m.n > kMaxStates) {
    return reject("product machine has " + std::to_string(m.n) +
                  " states (> " + std::to_string(kMaxStates) + "-state limit)");
  }
  const uint64_t n_letters = uint64_t{1} << n_bits;
  const auto col_equal = [&](uint64_t a, uint64_t b) {
    for (int q = 0; q < m.n; ++q) {
      const size_t ca = (static_cast<size_t>(q) << n_bits) | a;
      const size_t cb = (static_cast<size_t>(q) << n_bits) | b;
      if (m.trans[ca] != m.trans[cb] || m.upd[ca].kind != m.upd[cb].kind ||
          m.upd[ca].arg != m.upd[cb].arg) {
        return false;
      }
    }
    return true;
  };

  plan.create.assign(n_letters, 1);
  if (!scopes.empty()) {
    // The trie's default branch steps the body with every parameter unbound
    // (param atoms false).  The flat table synthesizes missing keys from the
    // start state, so the default branch must be inert...
    for (uint64_t letter = 0; letter < n_letters; ++letter) {
      if (letter & plan.param_mask) continue;
      const size_t cell = (static_cast<size_t>(m.start) << n_bits) | letter;
      if (m.trans[cell] != m.start ||
          m.upd[cell].kind != SpecPlan::Upd::None) {
        return reject(
            "scope body advances on parameter-miss letters (default branch "
            "is not inert)");
      }
    }
    // ...and partial-hit letters (some but not all key atoms true — the
    // trie's mixed default/candidate combos) must collapse to it, or the
    // trie would grow branches the flat table cannot address.
    for (uint64_t letter = 0; letter < n_letters; ++letter) {
      const uint64_t pbits = letter & plan.param_mask;
      if (pbits == 0 || pbits == plan.param_mask) continue;
      if (!col_equal(letter, letter & ~plan.param_mask)) {
        return reject(
            "cross-parameter partial matches diverge from the default "
            "branch");
      }
    }
    // Entry creation mirrors the trie's letter-class materialization test:
    // only letters whose machine column diverges from their parameter-miss
    // column can distinguish the candidate key from the default branch.
    for (uint64_t letter = 0; letter < n_letters; ++letter) {
      plan.create[letter] =
          col_equal(letter, letter & ~plan.param_mask) ? 0 : 1;
    }
  }

  plan.n_states = m.n;
  plan.start = m.start;
  plan.n_bits = n_bits;
  plan.trans = std::move(m.trans);
  plan.upd.reserve(m.upd.size());
  plan.upd_arg.reserve(m.upd.size());
  for (const Update& u : m.upd) {
    plan.upd.push_back(static_cast<uint8_t>(u.kind));
    plan.upd_arg.push_back(u.arg);
  }
  plan.value_is_acc = m.value_is_acc;
  plan.acc_defined = std::move(m.acc_defined);
  plan.accept = std::move(m.accept);

  const Shape* term = shape.get();
  bool filtered = false;
  while (term->k == Shape::K::Filtered) {
    filtered = true;
    term = term->inner.get();
  }
  if (term->k == Shape::K::Distinct) {
    plan.then_value = term->then_v;
    plan.else_value = term->else_v;
    plan.has_else = term->has_else;
  }

  if (scopes.empty()) {
    plan.family = term->k == Shape::K::Fold ? "closed fold"
                  : term->k == Shape::K::Classifier ? "closed classifier"
                                                    : "closed conditional";
    if (filtered) plan.family += " (filter >> body)";
  } else if (term->k == Shape::K::Fold) {
    plan.family = filtered ? "counter family (scope{filter >> fold})"
                           : "counter family (scope{fold})";
  } else if (term->k == Shape::K::Classifier) {
    plan.family = filtered ? "classifier family (scope{filter >> iter})"
                           : "classifier family (scope{iter})";
  } else {
    plan.family = "distinct family (scope{conditional})";
  }

  d.chain.push_back("product machine: " + std::to_string(plan.n_states) +
                    " state(s) over " + std::to_string(n_letters) +
                    " letters");
  d.reason = "specialized: " + plan.family +
             (plan.key.empty()
                  ? ""
                  : ", " + std::to_string(plan.key.size()) + "-part key") +
             ", " + std::to_string(plan.n_states) + "-state machine, " +
             std::to_string(n_bits) + "-atom alphabet";
  d.plan = std::move(plan);
  return d;
}

std::optional<SpecPlan> analyze_spec(const CompiledQuery& query) {
  return analyze_spec_explained(query).plan;
}

bool eval_spec_atom(const SpecPlan::AtomEval& a, const net::Packet& p,
                    const Valuation& no_params) {
  // Mirror of letter_of()'s per-atom branch: FastCmp goes through the same
  // raw_field/cmp_apply pair as the rendered C++, anything else through the
  // interpreter's Atom::eval.
  return a.kind == SpecPlan::AtomEval::Kind::FastCmp
             ? cmp_apply(a.op, raw_field(a.field, p),
                         static_cast<uint64_t>(a.literal))
             : a.atom.eval(p, no_params);
}

// ------------------------------------------------------- in-process monitor

SpecializedMonitor::SpecializedMonitor(SpecPlan plan) : plan_(std::move(plan)) {
  n_bits_ = plan_.n_bits;
  closed_ = plan_.key.empty();
  for (size_t i = 0; i < plan_.atoms.size(); ++i) {
    const auto& a = plan_.atoms[i];
    if (a.kind == SpecPlan::AtomEval::Kind::Param) continue;
    eval_atoms_.push_back(
        {static_cast<int>(i), a.kind, a.field, a.op, a.literal, a.atom});
    has_generic_ |= a.kind == SpecPlan::AtomEval::Kind::Generic;
  }
  closed_state_.q = plan_.start;
  if (!closed_) slots_.assign(1024, 0);
}

uint64_t SpecializedMonitor::key_of(const net::Packet& p) const {
  // Same packing as the rendered code: 1 part `uint64(field) - offset`,
  // 2 parts `(k0 << 32) | uint32(k1)`.
  const uint64_t k0 = raw_field(plan_.key[0].field, p) -
                      static_cast<uint64_t>(plan_.key[0].offset);
  if (plan_.key.size() == 1) return k0;
  const uint64_t k1 = raw_field(plan_.key[1].field, p) -
                      static_cast<uint64_t>(plan_.key[1].offset);
  return (k0 << 32) | static_cast<uint32_t>(k1);
}

uint64_t SpecializedMonitor::letter_of(const net::Packet& p) const {
  // Param atoms are true by construction for the candidate-keyed entry.
  uint64_t letter = plan_.param_mask;
  for (const auto& a : eval_atoms_) {
    const bool bit =
        a.kind == SpecPlan::AtomEval::Kind::FastCmp
            ? cmp_apply(a.op, raw_field(a.field, p),
                        static_cast<uint64_t>(a.literal))
            : a.atom.eval(p, no_params_);
    letter |= static_cast<uint64_t>(bit) << a.bit;
  }
  return letter;
}

void SpecializedMonitor::step_entry(Entry& e, uint64_t letter,
                                    const net::Packet& p) {
  const size_t cell = (static_cast<size_t>(e.q) << n_bits_) | letter;
  e.q = plan_.trans[cell];
  switch (static_cast<SpecPlan::Upd>(plan_.upd[cell])) {
    case SpecPlan::Upd::None:
      break;
    case SpecPlan::Upd::AddConst:
      e.acc += plan_.upd_arg[cell];
      e.touched = 1;
      break;
    case SpecPlan::Upd::AddField:
      e.acc += static_cast<long long>(
          raw_field(static_cast<Field>(plan_.upd_arg[cell]), p));
      e.touched = 1;
      break;
  }
}

const SpecializedMonitor::Entry* SpecializedMonitor::find(uint64_t key) const {
  if (slots_.empty()) return nullptr;
  const uint64_t mask = slots_.size() - 1;
  size_t idx = mix64(key) & mask;
  for (;;) {
    const uint32_t ei = slots_[idx];
    if (ei == 0) return nullptr;
    if (entries_[ei - 1].key == key) return &entries_[ei - 1];
    idx = (idx + 1) & mask;
  }
}

void SpecializedMonitor::grow() {
  std::vector<uint32_t> next(slots_.size() * 2, 0);
  const uint64_t mask = next.size() - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t idx = mix64(entries_[i].key) & mask;
    while (next[idx] != 0) idx = (idx + 1) & mask;
    next[idx] = static_cast<uint32_t>(i + 1);
  }
  slots_ = std::move(next);
}

SpecializedMonitor::Entry& SpecializedMonitor::insert(uint64_t key,
                                                      const net::Packet& p) {
  if ((entries_.size() + 1) * 10 >= slots_.size() * 7) grow();
  entries_.push_back(Entry{key, static_cast<int32_t>(plan_.start), 0, 0, 0});
  for (const auto& kp : plan_.key) key_vals_.push_back(kp.atom.candidate(p));
  const uint64_t mask = slots_.size() - 1;
  size_t idx = mix64(key) & mask;
  while (slots_[idx] != 0) idx = (idx + 1) & mask;
  slots_[idx] = static_cast<uint32_t>(entries_.size());
  return entries_.back();
}

void SpecializedMonitor::on_packet(const net::Packet& p) {
  // Generic atoms (payload scans, custom fields) read the per-packet field
  // cache; standalone drivers (fuzzer, tests) never arm it themselves.
  if (has_generic_) begin_packet_fields();
  on_letter(p, letter_of(p));
}

void SpecializedMonitor::on_letters(std::span<const net::Packet> batch,
                                    const uint64_t* letters,
                                    const uint64_t* keys) {
  const size_t n = batch.size();
  if (closed_) {
    for (size_t i = 0; i < n; ++i) {
      step_entry(closed_state_, letters[i], batch[i]);
    }
    return;
  }
  if (keys == nullptr) {
    keys_scratch_.resize(n);
    for (size_t i = 0; i < n; ++i) keys_scratch_[i] = key_of(batch[i]);
    keys = keys_scratch_.data();
  }
  // Software pipeline over the probe's two dependent loads: pull the slot
  // index's cache line kSlotAhead packets early, then peek the (usually
  // final) first slot kEntryAhead packets early to pull the entry's line.
  // Consecutive probes then overlap instead of serializing on misses.  Both
  // touches are hints — an insert may grow the table mid-batch, which only
  // makes a pending prefetch stale, never the probe below wrong.
  constexpr size_t kSlotAhead = 12;
  constexpr size_t kEntryAhead = 4;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t mask = slots_.size() - 1;
    if (i + kSlotAhead < n) {
      __builtin_prefetch(&slots_[mix64(keys[i + kSlotAhead]) & mask]);
    }
    if (i + kEntryAhead < n) {
      const uint32_t ahead = slots_[mix64(keys[i + kEntryAhead]) & mask];
      if (ahead != 0) __builtin_prefetch(&entries_[ahead - 1]);
    }
    ++tick_;
    const uint64_t letter = letters[i];
    const uint64_t key = keys[i];
    size_t idx = mix64(key) & mask;
    Entry* e = nullptr;
    for (;;) {
      const uint32_t ei = slots_[idx];
      if (ei == 0) break;
      if (entries_[ei - 1].key == key) {
        e = &entries_[ei - 1];
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (e == nullptr) {
      if (!plan_.create[letter]) continue;
      e = &insert(key, batch[i]);
    }
    e->seen = tick_;
    step_entry(*e, letter, batch[i]);
  }
}

void SpecializedMonitor::on_letter(const net::Packet& p, uint64_t letter) {
  if (closed_) {
    step_entry(closed_state_, letter, p);
    return;
  }
  ++tick_;
  const uint64_t key = key_of(p);
  const uint64_t mask = slots_.size() - 1;
  size_t idx = mix64(key) & mask;
  Entry* e = nullptr;
  for (;;) {
    const uint32_t ei = slots_[idx];
    if (ei == 0) break;
    if (entries_[ei - 1].key == key) {
      e = &entries_[ei - 1];
      break;
    }
    idx = (idx + 1) & mask;
  }
  if (e == nullptr) {
    // Guard-trie materialization mirror: keys whose letter cannot diverge
    // from the default branch are never instantiated.
    if (!plan_.create[letter]) return;
    e = &insert(key, p);
  }
  e->seen = tick_;
  step_entry(*e, letter, p);
}

Value SpecializedMonitor::entry_value(const Entry& e) const {
  if (plan_.value_is_acc) {
    return plan_.acc_defined[static_cast<size_t>(e.q)]
               ? Value::integer(e.acc)
               : Value::undef();
  }
  if (plan_.accept[static_cast<size_t>(e.q)]) {
    return Value::integer(plan_.then_value);
  }
  return plan_.has_else ? Value::integer(plan_.else_value) : Value::undef();
}

Value SpecializedMonitor::default_value() const {
  // A never-observed key sits at the start state with an identity fold.
  if (plan_.value_is_acc) {
    return plan_.acc_defined[static_cast<size_t>(plan_.start)]
               ? Value::integer(0)
               : Value::undef();
  }
  if (plan_.accept[static_cast<size_t>(plan_.start)]) {
    return Value::integer(plan_.then_value);
  }
  return plan_.has_else ? Value::integer(plan_.else_value) : Value::undef();
}

Value SpecializedMonitor::eval() const {
  if (closed_) return entry_value(closed_state_);
  AggAcc acc = AggAcc::identity(AggOp::Sum);
  for (const auto& e : entries_) {
    if (!live(e)) continue;
    acc.add(entry_value(e));
  }
  return acc.result();
}

Value SpecializedMonitor::eval_at(const std::vector<Value>& key) const {
  if (closed_) return eval();
  const size_t parts = plan_.key.size();
  const size_t n_top = static_cast<size_t>(plan_.n_top_params);
  bool all_def = key.size() >= n_top;
  for (size_t i = 0; i < n_top && all_def; ++i) all_def &= key[i].defined();
  if (n_top == parts) {
    // Flat chain: one entry per full key; undefined components take the
    // trie's default branch.
    if (!all_def) return default_value();
    uint64_t packed = static_cast<uint64_t>(key[0].as_int());
    if (parts == 2) {
      // Stored components are offset-free raw fields, always in [0, 2^32);
      // a probe outside that range can match no entry (and must not alias
      // one after truncation).
      const int64_t r0 = key[0].as_int();
      const int64_t r1 = key[1].as_int();
      constexpr int64_t kMax32 = 0xFFFFFFFFll;
      if (r0 < 0 || r0 > kMax32 || r1 < 0 || r1 > kMax32) {
        return default_value();
      }
      packed = (static_cast<uint64_t>(r0) << 32) |
               static_cast<uint32_t>(static_cast<uint64_t>(r1));
    }
    const Entry* e = find(packed);
    if (e == nullptr || !live(*e)) return default_value();
    return entry_value(*e);
  }
  // Nested chain: the outer key addresses an inner scope whose eval() is a
  // sum over its own live entries (identity when the prefix was never
  // observed).
  AggAcc acc = AggAcc::identity(AggOp::Sum);
  if (all_def) {
    const uint64_t prefix = static_cast<uint64_t>(key[0].as_int());
    for (const auto& e : entries_) {
      if (!live(e) || (e.key >> 32) != prefix) continue;
      acc.add(entry_value(e));
    }
  }
  return acc.result();
}

void SpecializedMonitor::enumerate(
    const std::function<void(const std::vector<Value>&, const Value&)>& fn)
    const {
  if (closed_) return;
  const size_t parts = plan_.key.size();
  const size_t n_top = static_cast<size_t>(plan_.n_top_params);
  std::vector<Value> vals(n_top);
  if (n_top == parts) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!live(e)) continue;
      const Value v = entry_value(e);
      if (!v.defined()) continue;
      for (size_t k = 0; k < parts; ++k) vals[k] = key_vals_[i * parts + k];
      fn(vals, v);
    }
    return;
  }
  // Nested chain: group live entries by the outer key prefix; each group is
  // one outer-trie leaf whose value is the inner scope's sum.
  std::unordered_map<uint64_t, size_t> group_of;
  std::vector<std::pair<size_t, AggAcc>> groups;  // first entry idx, sum
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (!live(e)) continue;
    const auto [it, fresh] = group_of.emplace(e.key >> 32, groups.size());
    if (fresh) groups.emplace_back(i, AggAcc::identity(AggOp::Sum));
    groups[it->second].second.add(entry_value(e));
  }
  for (auto& [first, acc] : groups) {
    for (size_t k = 0; k < n_top; ++k) vals[k] = key_vals_[first * parts + k];
    fn(vals, acc.result());
  }
}

void SpecializedMonitor::reset() {
  // Release capacity too: reset must drop the state footprint back to the
  // freshly-constructed gauge (the engine resamples memory after reset).
  std::vector<Entry>().swap(entries_);
  std::vector<Value>().swap(key_vals_);
  if (!closed_) std::vector<uint32_t>(1024, 0).swap(slots_);
  closed_state_ = Entry{};
  closed_state_.q = plan_.start;
}

size_t SpecializedMonitor::memory() const {
  return sizeof(*this) + slots_.capacity() * sizeof(uint32_t) +
         entries_.capacity() * sizeof(Entry) +
         key_vals_.capacity() * sizeof(Value) +
         plan_.trans.capacity() * sizeof(int32_t) +
         plan_.upd.capacity() * sizeof(uint8_t) +
         plan_.upd_arg.capacity() * sizeof(int64_t);
}

size_t SpecializedMonitor::entries() const {
  if (closed_) return 0;
  size_t n = 0;
  for (const auto& e : entries_) n += live(e) ? 1 : 0;
  return n;
}

size_t SpecializedMonitor::evict_stalest(size_t target_bytes) {
  if (closed_) return 0;
  const size_t parts = plan_.key.size();
  size_t evicted = 0;
  while (memory() > target_bytes && !entries_.empty()) {
    // Halving round: keep the most-recently-touched half (floor(n/2), so a
    // single survivor still converges to zero), rebuilt into exact-size
    // tables so capacity is actually released.
    const size_t keep = entries_.size() / 2;
    std::vector<size_t> order(entries_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + static_cast<long>(keep),
                     order.end(), [&](size_t a, size_t b) {
                       return entries_[a].seen > entries_[b].seen;
                     });
    order.resize(keep);
    // Survivors stay in insertion order: enumerate()'s output order (and
    // the nested-chain grouping) must not depend on eviction history.
    std::sort(order.begin(), order.end());
    std::vector<Entry> kept;
    kept.reserve(keep);
    std::vector<Value> kept_vals;
    kept_vals.reserve(keep * parts);
    for (const size_t i : order) {
      kept.push_back(entries_[i]);
      for (size_t k = 0; k < parts; ++k) {
        kept_vals.push_back(key_vals_[i * parts + k]);
      }
    }
    evicted += entries_.size() - keep;
    entries_ = std::move(kept);
    key_vals_ = std::move(kept_vals);
    size_t n_slots = 1024;
    while ((entries_.size() + 1) * 10 >= n_slots * 7) n_slots <<= 1;
    std::vector<uint32_t>(n_slots, 0).swap(slots_);
    const uint64_t mask = slots_.size() - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t idx = mix64(entries_[i].key) & mask;
      while (slots_[idx] != 0) idx = (idx + 1) & mask;
      slots_[idx] = static_cast<uint32_t>(i + 1);
    }
  }
  return evicted;
}

long long SpecializedMonitor::aggregate() const {
  if (closed_) {
    const Value v = entry_value(closed_state_);
    return v.defined() ? v.as_int() : 0;
  }
  long long total = 0;
  for (const auto& e : entries_) {
    if (!live(e)) continue;
    const Value v = entry_value(e);
    if (v.defined()) total += v.as_int();
  }
  return total;
}

long long SpecializedMonitor::at(uint64_t key) const {
  const Entry* e = find(key);
  if (plan_.value_is_acc) return e == nullptr ? 0 : e->acc;
  if (e == nullptr) return plan_.has_else ? plan_.else_value : 0;
  return plan_.accept[static_cast<size_t>(e->q)]
             ? plan_.then_value
             : (plan_.has_else ? plan_.else_value : 0);
}

// ------------------------------------------------------------ C++ renderer

std::optional<GeneratedProgram> generate_cpp(const CompiledQuery& query,
                                             const std::string& name) {
  auto plan_opt = analyze_spec(query);
  if (!plan_opt) return std::nullopt;
  const SpecPlan& plan = *plan_opt;

  // The standalone pipeline has no payload/custom-field machinery and one
  // inlined field expression per update table.
  std::optional<Field> upd_field;
  for (size_t cell = 0; cell < plan.upd.size(); ++cell) {
    if (static_cast<SpecPlan::Upd>(plan.upd[cell]) != SpecPlan::Upd::AddField) {
      continue;
    }
    const auto f = static_cast<Field>(plan.upd_arg[cell]);
    if (upd_field && *upd_field != f) return std::nullopt;
    upd_field = f;
  }
  std::vector<std::string> atom_exprs;
  for (const auto& a : plan.atoms) {
    switch (a.kind) {
      case SpecPlan::AtomEval::Kind::Param:
        atom_exprs.push_back("1u");  // true for the candidate-keyed entry
        break;
      case SpecPlan::AtomEval::Kind::FastCmp:
        atom_exprs.push_back("(uint64_t(" + *field_accessor(a.field) + ") " +
                             cmp_cpp(a.op) + " uint64_t(" +
                             std::to_string(a.literal) + "))");
        break;
      case SpecPlan::AtomEval::Kind::Generic:
        return std::nullopt;
    }
  }

  const size_t n_letters = size_t{1} << plan.n_bits;
  const bool scoped = !plan.key.empty();
  bool all_acc_defined = true;
  for (const uint8_t def : plan.acc_defined) all_acc_defined &= def != 0;

  std::ostringstream out;
  out << "// Generated by the NetQRE compiler (specialized query: " << name
      << ").\n"
      << "#include <cstdint>\n#include <cstddef>\n#include <unordered_map>\n\n"
      << "struct NetqrePacket {\n"
      << "  double ts; uint32_t src_ip, dst_ip; uint16_t src_port, dst_port;\n"
      << "  uint8_t proto, tcp_flags; uint32_t seq, ack_no, wire_len;\n"
      << "};\n\n"
      << "class " << name << " {\n public:\n";

  // Product machine tables.
  out << "  static constexpr int kBits = " << plan.n_bits << ";\n"
      << "  static constexpr int32_t kStart = " << plan.start << ";\n"
      << "  static constexpr int32_t kTrans[] = {";
  for (size_t i = 0; i < plan.trans.size(); ++i) {
    out << (i ? "," : "") << plan.trans[i];
  }
  out << "};\n  static constexpr uint8_t kUpd[] = {";
  for (size_t i = 0; i < plan.upd.size(); ++i) {
    out << (i ? "," : "") << static_cast<int>(plan.upd[i]);
  }
  out << "};\n  static constexpr long long kUpdC[] = {";
  for (size_t i = 0; i < plan.upd_arg.size(); ++i) {
    const bool is_const =
        static_cast<SpecPlan::Upd>(plan.upd[i]) == SpecPlan::Upd::AddConst;
    out << (i ? "," : "") << (is_const ? plan.upd_arg[i] : 0);
  }
  out << "};\n";
  if (!plan.value_is_acc) {
    out << "  static constexpr bool kAccept[] = {";
    for (size_t i = 0; i < plan.accept.size(); ++i) {
      out << (i ? "," : "") << (plan.accept[i] ? "true" : "false");
    }
    out << "};\n";
  } else if (!all_acc_defined) {
    out << "  static constexpr bool kAccDef[] = {";
    for (size_t i = 0; i < plan.acc_defined.size(); ++i) {
      out << (i ? "," : "") << (plan.acc_defined[i] ? "true" : "false");
    }
    out << "};\n";
  }
  if (scoped) {
    out << "  static constexpr bool kCreate[] = {";
    for (size_t i = 0; i < n_letters; ++i) {
      out << (i ? "," : "") << (plan.create[i] ? "true" : "false");
    }
    out << "};\n";
  }
  out << "\n  void on_packet(const NetqrePacket& p) {\n";
  if (scoped) {
    if (plan.key.size() == 1) {
      const auto& k = plan.key[0];
      out << "    const uint64_t key = uint64_t(" << *field_accessor(k.field)
          << ")" << (k.offset ? " - " + std::to_string(k.offset) : "")
          << ";\n";
    } else {
      const auto& k0 = plan.key[0];
      const auto& k1 = plan.key[1];
      out << "    const uint64_t key = (uint64_t("
          << *field_accessor(k0.field) << ")"
          << (k0.offset ? " - " + std::to_string(k0.offset) : "")
          << " << 32) | uint32_t(uint64_t(" << *field_accessor(k1.field)
          << ")" << (k1.offset ? " - " + std::to_string(k1.offset) : "")
          << ");\n";
    }
  }
  out << "    const uint64_t letter =";
  for (size_t i = 0; i < atom_exprs.size(); ++i) {
    out << (i ? " |" : "") << " ((" << atom_exprs[i] << ") << " << i << ")";
  }
  if (atom_exprs.empty()) out << " 0";
  out << ";\n";
  if (scoped) {
    // Guard-trie materialization mirror (see SpecPlan::create).
    out << "    auto it = table_.find(key);\n"
        << "    if (it == table_.end()) {\n"
        << "      if (!kCreate[letter]) return;\n"
        << "      it = table_.emplace(key, State{}).first;\n"
        << "    }\n"
        << "    State& s = it->second;\n";
  } else {
    out << "    State& s = state_;\n";
  }
  out << "    const size_t cell = (size_t(s.q) << kBits) | letter;\n"
      << "    s.q = kTrans[cell];\n"
      << "    if (kUpd[cell] == 1) { s.acc += kUpdC[cell]; s.touched = true; "
         "}\n";
  if (upd_field) {
    out << "    else if (kUpd[cell] == 2) { s.acc += int64_t("
        << *field_accessor(*upd_field) << "); s.touched = true; }\n";
  }
  out << "  }\n\n";

  // Per-entry read-out shared by aggregate() and at().
  const std::string then_ll = std::to_string(plan.then_value) + "LL";
  const std::string else_ll =
      std::to_string(plan.has_else ? plan.else_value : 0) + "LL";
  out << "  // Sum over all observed instantiations (the scope's "
         "aggregate).\n"
      << "  long long aggregate() const {\n"
      << "    long long total = 0;\n";
  const auto emit_value_add = [&](const std::string& state,
                                  const std::string& indent) {
    if (plan.value_is_acc && all_acc_defined) {
      out << indent << "total += " << state << ".acc;\n";
    } else if (plan.value_is_acc) {
      out << indent << "if (kAccDef[" << state << ".q]) total += " << state
          << ".acc;\n";
    } else if (plan.has_else) {
      out << indent << "total += kAccept[" << state << ".q] ? " << then_ll
          << " : " << else_ll << ";\n";
    } else {
      out << indent << "if (kAccept[" << state << ".q]) total += " << then_ll
          << ";\n";
    }
  };
  if (scoped) {
    out << "    for (const auto& kv : table_) {\n"
        << "      if (kv.second.q == kStart && !kv.second.touched) "
           "continue;\n";
    emit_value_add("kv.second", "      ");
    out << "    }\n";
  } else {
    emit_value_add("state_", "    ");
  }
  out << "    return total;\n  }\n";

  out << "  long long at(uint64_t key) const {\n";
  if (!scoped) {
    out << "    (void)key;\n    return aggregate();\n";
  } else {
    out << "    auto it = table_.find(key);\n";
    if (plan.value_is_acc) {
      out << "    return it == table_.end() ? 0 : it->second.acc;\n";
    } else {
      out << "    if (it == table_.end()) return " << else_ll << ";\n"
          << "    return kAccept[it->second.q] ? " << then_ll << " : "
          << else_ll << ";\n";
    }
  }
  out << "  }\n"
      << "  size_t entries() const {\n";
  if (scoped) {
    out << "    size_t n = 0;\n"
        << "    for (const auto& kv : table_)\n"
        << "      if (kv.second.q != kStart || kv.second.touched) ++n;\n"
        << "    return n;\n";
  } else {
    out << "    return 0;\n";
  }
  out << "  }\n\n"
      << " private:\n"
      << "  struct State { int32_t q = kStart; bool touched = false; "
         "long long acc = 0; };\n";
  if (scoped) {
    out << "  std::unordered_map<uint64_t, State> table_;\n";
  } else {
    out << "  State state_;\n";
  }
  out << "};\n";

  GeneratedProgram prog;
  prog.source = out.str();
  prog.entry_class = name;
  return prog;
}

std::string generate_pcap_main(const GeneratedProgram& prog) {
  std::ostringstream out;
  out << prog.source << R"(
// ---- standalone pcap replay driver (classic libpcap format) ----
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace {

bool parse_frame(const unsigned char* d, size_t n, uint32_t orig_len,
                 double ts, NetqrePacket& p) {
  if (n < 34 || d[12] != 0x08 || d[13] != 0x00) return false;
  const unsigned char* ip = d + 14;
  const size_t ihl = (ip[0] & 0x0f) * 4u;
  if ((ip[0] >> 4) != 4 || n < 14 + ihl + 4) return false;
  p.ts = ts;
  p.wire_len = orig_len;
  p.src_ip = (uint32_t(ip[12]) << 24) | (uint32_t(ip[13]) << 16) |
             (uint32_t(ip[14]) << 8) | ip[15];
  p.dst_ip = (uint32_t(ip[16]) << 24) | (uint32_t(ip[17]) << 16) |
             (uint32_t(ip[18]) << 8) | ip[19];
  p.proto = ip[9];
  const unsigned char* l4 = ip + ihl;
  p.src_port = (uint16_t(l4[0]) << 8) | l4[1];
  p.dst_port = (uint16_t(l4[2]) << 8) | l4[3];
  p.seq = p.ack_no = 0;
  p.tcp_flags = 0;
  if (ip[9] == 6 && n >= 14 + ihl + 20) {
    p.seq = (uint32_t(l4[4]) << 24) | (uint32_t(l4[5]) << 16) |
            (uint32_t(l4[6]) << 8) | l4[7];
    p.ack_no = (uint32_t(l4[8]) << 24) | (uint32_t(l4[9]) << 16) |
               (uint32_t(l4[10]) << 8) | l4[11];
    p.tcp_flags = l4[13];
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) { std::fprintf(stderr, "usage: %s <pcap>\n", argv[0]); return 2; }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) { std::fprintf(stderr, "cannot open %s\n", argv[1]); return 2; }
  unsigned char gh[24];
  in.read(reinterpret_cast<char*>(gh), 24);
  std::vector<NetqrePacket> packets;
  std::vector<unsigned char> buf;
  for (;;) {
    unsigned char rh[16];
    in.read(reinterpret_cast<char*>(rh), 16);
    if (!in) break;
    uint32_t ts_sec, ts_usec, incl, orig;
    std::memcpy(&ts_sec, rh, 4); std::memcpy(&ts_usec, rh + 4, 4);
    std::memcpy(&incl, rh + 8, 4); std::memcpy(&orig, rh + 12, 4);
    buf.resize(incl);
    in.read(reinterpret_cast<char*>(buf.data()), incl);
    if (!in) break;
    NetqrePacket p;
    if (parse_frame(buf.data(), buf.size(), orig, ts_sec + 1e-6 * ts_usec, p)) {
      packets.push_back(p);
    }
  }
  )" << prog.entry_class << R"( monitor;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : packets) monitor.on_packet(p);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%lld %zu %.6f\n", monitor.aggregate(), packets.size(), secs);
  return 0;
}
)";
  return out.str();
}

}  // namespace netqre::core
