#include "core/codegen.hpp"

#include <sstream>

namespace netqre::core {
namespace {

// C++ accessor on the generated packet struct for a numeric built-in field.
std::optional<std::string> field_accessor(Field f) {
  switch (f) {
    case Field::SrcIp: return "p.src_ip";
    case Field::DstIp: return "p.dst_ip";
    case Field::SrcPort: return "p.src_port";
    case Field::DstPort: return "p.dst_port";
    case Field::Proto: return "p.proto";
    case Field::Syn: return "((p.tcp_flags >> 1) & 1)";
    case Field::Ack: return "((p.tcp_flags >> 4) & 1)";
    case Field::Fin: return "(p.tcp_flags & 1)";
    case Field::Rst: return "((p.tcp_flags >> 2) & 1)";
    case Field::Psh: return "((p.tcp_flags >> 3) & 1)";
    case Field::Seq: return "p.seq";
    case Field::AckNo: return "p.ack_no";
    case Field::Len: return "p.wire_len";
    default: return std::nullopt;
  }
}

// Runtime twin of field_accessor(): must agree with the generated C++ bit
// for bit so the in-process monitor and the gcc pipeline are interchangeable
// oracles.
uint64_t raw_field(Field f, const net::Packet& p) {
  switch (f) {
    case Field::SrcIp: return p.src_ip;
    case Field::DstIp: return p.dst_ip;
    case Field::SrcPort: return p.src_port;
    case Field::DstPort: return p.dst_port;
    case Field::Proto: return static_cast<uint64_t>(p.proto);
    case Field::Syn: return (p.tcp_flags >> 1) & 1;
    case Field::Ack: return (p.tcp_flags >> 4) & 1;
    case Field::Fin: return p.tcp_flags & 1;
    case Field::Rst: return (p.tcp_flags >> 2) & 1;
    case Field::Psh: return (p.tcp_flags >> 3) & 1;
    case Field::Seq: return p.seq;
    case Field::AckNo: return p.ack_no;
    case Field::Len: return p.wire_len;
    default: return 0;
  }
}

bool cmp_apply(CmpOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case CmpOp::Eq: return a == b;
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
    case CmpOp::Contains: return false;  // rejected by analyze_spec
  }
  return false;
}

std::string cmp_cpp(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
    case CmpOp::Contains: return "/*unsupported*/";
  }
  return "==";
}

}  // namespace

SpecDecision analyze_spec_explained(const CompiledQuery& query,
                                    const SpecGate* gate) {
  // Supported shapes, rooted at a parameter scope:
  //   S1: scope(P){ comp(cond(dfa, const), fold) }       (counter family)
  //   S2: scope(P1){ scope(P2){ cond[_else](dfa, c1, c0) } }
  //       and its flat form scope(P){ cond[_else](...) }  (distinct family)
  auto reject = [](std::string why) {
    return SpecDecision{std::nullopt, std::move(why)};
  };

  // Certificate gate: the specialized executors assume an unambiguous query
  // with bounded per-key state, independent of the structural shape below.
  if (gate && !gate->unambiguous) {
    return reject("certificate: ambiguous split/iter decomposition" +
                  (gate->detail.empty() ? "" : " (" + gate->detail + ")"));
  }
  if (gate && !gate->state_bounded) {
    return reject("certificate: per-key state not proven bounded" +
                  (gate->detail.empty() ? "" : " (" + gate->detail + ")"));
  }

  const auto* scope = dynamic_cast<const ParamScopeOp*>(query.root.get());
  if (!scope) {
    return reject(std::string("root operator is '") +
                  query.root->kind_name() +
                  "', not a parameter scope (supported shapes are "
                  "scope(P){...})");
  }
  if (scope->eager()) {
    return reject("parameter scope runs eager updates (sparse-mode "
                  "validation failed)");
  }
  for (size_t i = 0; i < scope->skip_param().size(); ++i) {
    if (!scope->skip_param()[i]) {
      return reject("partial-hit letters are not no-ops at guard-trie "
                    "level " + std::to_string(i));
    }
  }

  // Collect the (possibly nested) scope chain and the innermost expression.
  std::vector<const ParamScopeOp*> scopes = {scope};
  const Op* innermost = scope->inner();
  while (const auto* nested = dynamic_cast<const ParamScopeOp*>(innermost)) {
    if (nested->eager()) {
      return reject("nested parameter scope runs eager updates");
    }
    for (size_t i = 0; i < nested->skip_param().size(); ++i) {
      if (!nested->skip_param()[i]) {
        return reject("nested scope: partial-hit letters are not no-ops at "
                      "guard-trie level " + std::to_string(i));
      }
    }
    scopes.push_back(nested);
    innermost = nested->inner();
  }

  SpecPlan plan;

  // Key atoms across the whole chain (one per parameter, all numeric).
  std::vector<Atom> key_atoms;
  int slot_lo = scopes.front()->slot_lo();
  int slot_hi = slot_lo;
  for (const auto* sc : scopes) {
    slot_hi = std::max(slot_hi, sc->slot_lo() + sc->n_params());
    for (const auto& atoms : sc->cand_atoms()) {
      if (atoms.size() != 1) {
        return reject("a scope parameter has " +
                      std::to_string(atoms.size()) +
                      " candidate atoms (key extraction needs exactly 1)");
      }
      if (!field_accessor(atoms[0].field.field)) {
        return reject("key field '" + field_name(atoms[0].field) +
                      "' has no specialized accessor");
      }
      key_atoms.push_back(atoms[0]);
      plan.key.push_back({atoms[0].field.field, atoms[0].offset});
    }
  }
  const int n_params = static_cast<int>(key_atoms.size());
  if (n_params < 1 || n_params > 2) {
    return reject(std::to_string(n_params) +
                  " key parameters in the scope chain (supported: 1-2)");
  }

  // Innermost expression: S1 counter or S2 distinct.
  const CondOp* cond = nullptr;
  const FoldOp* fold = nullptr;
  if (const auto* comp = dynamic_cast<const CompOp*>(innermost)) {
    if (scopes.size() != 1) {
      return reject("filter >> fold body under nested scopes (counter "
                    "family supports a single scope level)");
    }
    cond = dynamic_cast<const CondOp*>(comp->f());
    fold = dynamic_cast<const FoldOp*>(comp->g());
    if (!cond || cond->else_op() || !fold) {
      return reject("composition body is not filter >> fold");
    }
    if (!dynamic_cast<const ConstOp*>(cond->then_op())) {
      return reject("filter condition carries a non-constant value");
    }
    if (fold->agg() != AggOp::Sum) {
      return reject("fold aggregates with " + agg_name(fold->agg()) +
                    ", only sum is specialized");
    }
  } else if (const auto* c = dynamic_cast<const CondOp*>(innermost)) {
    cond = c;
    const auto* thn = dynamic_cast<const ConstOp*>(c->then_op());
    if (!thn || thn->value().kind() != Value::Kind::Int) {
      return reject("conditional's then-branch is not an integer constant");
    }
    plan.then_value = thn->value().as_int();
    if (c->else_op()) {
      const auto* els = dynamic_cast<const ConstOp*>(c->else_op());
      if (!els || els->value().kind() != Value::Kind::Int) {
        return reject("conditional's else-branch is not an integer constant");
      }
      plan.else_value = els->value().as_int();
      plan.has_else = true;
    }
    // The distinct family aggregates with sum at every level.
    for (const auto* sc : scopes) {
      if (sc->mode().kind == ScopeMode::Kind::Aggregate &&
          sc->mode().agg != AggOp::Sum) {
        return reject("scope aggregates with " + agg_name(sc->mode().agg) +
                      ", only sum is specialized");
      }
    }
  } else {
    return reject(std::string("scope body is '") + innermost->kind_name() +
                  "', not filter >> fold or a conditional");
  }
  plan.dfa = &cond->re();
  if (plan.dfa->n_bits() > 16) {
    return reject("DFA alphabet uses " + std::to_string(plan.dfa->n_bits()) +
                  " atoms (> 16-bit letter limit)");
  }

  // Atom descriptors: parameterized atoms are true by construction for the
  // looked-up entry; others are evaluated concretely.
  for (int id : plan.dfa->atom_ids) {
    const Atom& a = query.table->at(id);
    if (!field_accessor(a.field.field)) {
      return reject("predicate field '" + field_name(a.field) +
                    "' has no specialized accessor");
    }
    SpecPlan::AtomEval ae;
    ae.field = a.field.field;
    if (a.is_param) {
      if (a.param < slot_lo || a.param >= slot_hi) {
        return reject("predicate references a parameter outside the scope "
                      "chain");
      }
      ae.is_param = true;
    } else {
      if (a.literal.kind() != Value::Kind::Int) {
        return reject("predicate literal in '" + a.to_string() +
                      "' is not an integer");
      }
      if (a.op == CmpOp::Contains) {
        return reject("'contains' predicates need payload scans, not "
                      "specialized");
      }
      ae.op = a.op;
      ae.literal = a.literal.as_int();
    }
    plan.atoms.push_back(ae);
  }

  // Per-accept update.
  if (fold) {
    plan.has_fold = true;
    if (fold->use_field()) {
      if (!field_accessor(fold->field().field)) {
        return reject("fold field '" + field_name(fold->field()) +
                      "' has no specialized accessor");
      }
      plan.fold_use_field = true;
      plan.fold_field = fold->field().field;
    } else {
      if (fold->constant().kind() != Value::Kind::Int) {
        return reject("fold constant is not an integer");
      }
      plan.fold_const = fold->constant().as_int();
    }
  }

  SpecDecision d;
  d.reason = std::string("specialized: ") +
             (fold ? "counter family (scope{filter >> fold})"
                   : "distinct family (scope{conditional})") +
             ", " + std::to_string(n_params) + "-part key, " +
             std::to_string(plan.dfa->n_states()) + "-state DFA";
  d.plan = std::move(plan);
  return d;
}

std::optional<SpecPlan> analyze_spec(const CompiledQuery& query) {
  return analyze_spec_explained(query).plan;
}

// ------------------------------------------------------- in-process monitor

uint64_t SpecializedMonitor::key_of(const net::Packet& p) const {
  // Same packing as the rendered code: 1 param `uint64(field) - offset`,
  // 2 params `(k0 << 32) | uint32(k1)`.
  const uint64_t k0 = raw_field(plan_.key[0].field, p) -
                      static_cast<uint64_t>(plan_.key[0].offset);
  if (plan_.key.size() == 1) return k0;
  const uint64_t k1 = raw_field(plan_.key[1].field, p) -
                      static_cast<uint64_t>(plan_.key[1].offset);
  return (k0 << 32) | static_cast<uint32_t>(k1);
}

void SpecializedMonitor::on_packet(const net::Packet& p) {
  const uint64_t key = key_of(p);
  uint64_t letter = 0;
  for (size_t i = 0; i < plan_.atoms.size(); ++i) {
    const auto& a = plan_.atoms[i];
    const bool bit =
        a.is_param || cmp_apply(a.op, raw_field(a.field, p),
                                static_cast<uint64_t>(a.literal));
    letter |= static_cast<uint64_t>(bit) << i;
  }
  const Dfa& dfa = *plan_.dfa;
  const int bits = dfa.n_bits();
  auto it = table_.find(key);
  if (it == table_.end()) {
    // Prune-equivalent: do not create entries that would stay at the start
    // state without output.
    const int32_t q1 = dfa.trans[(static_cast<size_t>(dfa.start) << bits) |
                                 letter];
    if (q1 == dfa.start && !dfa.accept[static_cast<size_t>(q1)]) return;
    it = table_.emplace(key, State{dfa.start, 0}).first;
  }
  State& s = it->second;
  s.q = dfa.trans[(static_cast<size_t>(s.q) << bits) | letter];
  if (plan_.has_fold && dfa.accept[static_cast<size_t>(s.q)]) {
    s.acc += plan_.fold_use_field
                 ? static_cast<long long>(raw_field(plan_.fold_field, p))
                 : plan_.fold_const;
  }
}

long long SpecializedMonitor::aggregate() const {
  long long total = 0;
  for (const auto& kv : table_) {
    if (plan_.has_fold) {
      total += kv.second.acc;
    } else if (plan_.dfa->accept[static_cast<size_t>(kv.second.q)]) {
      total += plan_.then_value;
    } else if (plan_.has_else) {
      total += plan_.else_value;
    }
  }
  return total;
}

long long SpecializedMonitor::at(uint64_t key) const {
  auto it = table_.find(key);
  if (plan_.has_fold) return it == table_.end() ? 0 : it->second.acc;
  if (it == table_.end()) return plan_.has_else ? plan_.else_value : 0;
  if (plan_.dfa->accept[static_cast<size_t>(it->second.q)]) {
    return plan_.then_value;
  }
  return plan_.has_else ? plan_.else_value : 0;
}

// ------------------------------------------------------------ C++ renderer

std::optional<GeneratedProgram> generate_cpp(const CompiledQuery& query,
                                             const std::string& name) {
  auto plan_opt = analyze_spec(query);
  if (!plan_opt) return std::nullopt;
  const SpecPlan& plan = *plan_opt;
  const Dfa& dfa = *plan.dfa;

  // Atom expressions, one per DFA letter bit.
  std::vector<std::string> atom_exprs;
  for (const auto& a : plan.atoms) {
    if (a.is_param) {
      atom_exprs.push_back("1u");  // true for the candidate-keyed entry
    } else {
      atom_exprs.push_back("(uint64_t(" + *field_accessor(a.field) + ") " +
                           cmp_cpp(a.op) + " uint64_t(" +
                           std::to_string(a.literal) + "))");
    }
  }
  std::string fold_expr;
  if (plan.has_fold) {
    fold_expr = plan.fold_use_field
                    ? "int64_t(" + *field_accessor(plan.fold_field) + ")"
                    : std::to_string(plan.fold_const);
  }

  std::ostringstream out;
  out << "// Generated by the NetQRE compiler (specialized query: " << name
      << ").\n"
      << "#include <cstdint>\n#include <cstddef>\n#include <unordered_map>\n\n"
      << "struct NetqrePacket {\n"
      << "  double ts; uint32_t src_ip, dst_ip; uint16_t src_port, dst_port;\n"
      << "  uint8_t proto, tcp_flags; uint32_t seq, ack_no, wire_len;\n"
      << "};\n\n"
      << "class " << name << " {\n public:\n";

  // Transition / accept tables.
  const int bits = dfa.n_bits();
  out << "  static constexpr int kBits = " << bits << ";\n";
  out << "  static constexpr int32_t kTrans[] = {";
  for (size_t i = 0; i < dfa.trans.size(); ++i) {
    out << (i ? "," : "") << dfa.trans[i];
  }
  out << "};\n  static constexpr bool kAccept[] = {";
  for (size_t i = 0; i < dfa.accept.size(); ++i) {
    out << (i ? "," : "") << (dfa.accept[i] ? "true" : "false");
  }
  out << "};\n  static constexpr int32_t kStart = " << dfa.start << ";\n\n";

  out << "  void on_packet(const NetqrePacket& p) {\n";
  // Key from the candidate atoms.
  if (plan.key.size() == 1) {
    const auto& k = plan.key[0];
    out << "    const uint64_t key = uint64_t(" << *field_accessor(k.field)
        << ")" << (k.offset ? " - " + std::to_string(k.offset) : "") << ";\n";
  } else {
    const auto& k0 = plan.key[0];
    const auto& k1 = plan.key[1];
    out << "    const uint64_t key = (uint64_t(" << *field_accessor(k0.field)
        << ")" << (k0.offset ? " - " + std::to_string(k0.offset) : "")
        << " << 32) | uint32_t(uint64_t(" << *field_accessor(k1.field) << ")"
        << (k1.offset ? " - " + std::to_string(k1.offset) : "") << ");\n";
  }
  // Letter (param atoms true for this key's entry).
  out << "    const uint64_t letter =";
  for (size_t i = 0; i < atom_exprs.size(); ++i) {
    out << (i ? " |" : "") << " ((" << atom_exprs[i] << ") << " << i << ")";
  }
  if (atom_exprs.empty()) out << " 0";
  out << ";\n";
  // Prune-equivalent: do not create entries that would stay at the start
  // state without output.
  out << "    auto it = table_.find(key);\n"
      << "    if (it == table_.end()) {\n"
      << "      const int32_t q1 = kTrans[(kStart << kBits) | letter];\n"
      << "      if (q1 == kStart && !kAccept[q1]) return;\n"
      << "      it = table_.emplace(key, State{}).first;\n"
      << "    }\n"
      << "    State& s = it->second;\n"
      << "    s.q = kTrans[(s.q << kBits) | letter];\n";
  if (plan.has_fold) {
    out << "    if (kAccept[s.q]) s.acc += " << fold_expr << ";\n";
  }
  out << "  }\n\n";

  out << "  // Sum over all observed instantiations (the scope's aggregate)\n"
      << "  long long aggregate() const {\n"
      << "    long long total = 0;\n";
  if (plan.has_fold) {
    out << "    for (const auto& kv : table_) total += kv.second.acc;\n";
  } else if (plan.has_else) {
    out << "    for (const auto& kv : table_)\n"
        << "      total += kAccept[kv.second.q] ? " << plan.then_value
        << "LL : " << plan.else_value << "LL;\n";
  } else {
    out << "    for (const auto& kv : table_)\n"
        << "      if (kAccept[kv.second.q]) total += " << plan.then_value
        << "LL;\n";
  }
  out << "    return total;\n"
      << "  }\n"
      << "  long long at(uint64_t key) const {\n"
      << "    auto it = table_.find(key);\n";
  if (plan.has_fold) {
    out << "    return it == table_.end() ? 0 : it->second.acc;\n";
  } else {
    out << "    if (it == table_.end()) return "
        << (plan.has_else ? plan.else_value : 0) << "LL;\n"
        << "    return kAccept[it->second.q] ? " << plan.then_value
        << "LL : " << (plan.has_else ? plan.else_value : 0) << "LL;\n";
  }
  out << "  }\n"
      << "  size_t entries() const { return table_.size(); }\n\n"
      << " private:\n"
      << "  struct State { int32_t q = kStart; long long acc = 0; };\n"
      << "  std::unordered_map<uint64_t, State> table_;\n"
      << "};\n";

  GeneratedProgram prog;
  prog.source = out.str();
  prog.entry_class = name;
  return prog;
}

std::string generate_pcap_main(const GeneratedProgram& prog) {
  std::ostringstream out;
  out << prog.source << R"(
// ---- standalone pcap replay driver (classic libpcap format) ----
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace {

bool parse_frame(const unsigned char* d, size_t n, uint32_t orig_len,
                 double ts, NetqrePacket& p) {
  if (n < 34 || d[12] != 0x08 || d[13] != 0x00) return false;
  const unsigned char* ip = d + 14;
  const size_t ihl = (ip[0] & 0x0f) * 4u;
  if ((ip[0] >> 4) != 4 || n < 14 + ihl + 4) return false;
  p.ts = ts;
  p.wire_len = orig_len;
  p.src_ip = (uint32_t(ip[12]) << 24) | (uint32_t(ip[13]) << 16) |
             (uint32_t(ip[14]) << 8) | ip[15];
  p.dst_ip = (uint32_t(ip[16]) << 24) | (uint32_t(ip[17]) << 16) |
             (uint32_t(ip[18]) << 8) | ip[19];
  p.proto = ip[9];
  const unsigned char* l4 = ip + ihl;
  p.src_port = (uint16_t(l4[0]) << 8) | l4[1];
  p.dst_port = (uint16_t(l4[2]) << 8) | l4[3];
  p.seq = p.ack_no = 0;
  p.tcp_flags = 0;
  if (ip[9] == 6 && n >= 14 + ihl + 20) {
    p.seq = (uint32_t(l4[4]) << 24) | (uint32_t(l4[5]) << 16) |
            (uint32_t(l4[6]) << 8) | l4[7];
    p.ack_no = (uint32_t(l4[8]) << 24) | (uint32_t(l4[9]) << 16) |
               (uint32_t(l4[10]) << 8) | l4[11];
    p.tcp_flags = l4[13];
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) { std::fprintf(stderr, "usage: %s <pcap>\n", argv[0]); return 2; }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) { std::fprintf(stderr, "cannot open %s\n", argv[1]); return 2; }
  unsigned char gh[24];
  in.read(reinterpret_cast<char*>(gh), 24);
  std::vector<NetqrePacket> packets;
  std::vector<unsigned char> buf;
  for (;;) {
    unsigned char rh[16];
    in.read(reinterpret_cast<char*>(rh), 16);
    if (!in) break;
    uint32_t ts_sec, ts_usec, incl, orig;
    std::memcpy(&ts_sec, rh, 4); std::memcpy(&ts_usec, rh + 4, 4);
    std::memcpy(&incl, rh + 8, 4); std::memcpy(&orig, rh + 12, 4);
    buf.resize(incl);
    in.read(reinterpret_cast<char*>(buf.data()), incl);
    if (!in) break;
    NetqrePacket p;
    if (parse_frame(buf.data(), buf.size(), orig, ts_sec + 1e-6 * ts_usec, p)) {
      packets.push_back(p);
    }
  }
  )" << prog.entry_class << R"( monitor;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : packets) monitor.on_packet(p);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%lld %zu %.6f\n", monitor.aggregate(), packets.size(), secs);
  return 0;
}
)";
  return out.str();
}

}  // namespace netqre::core
