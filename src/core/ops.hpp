// Compiled streaming operators — the target of NetQRE compilation (§5).
//
// A NetQRE expression lowers to a tree of Ops.  Each Op defines a state
// shape (OpState), a per-packet update (`step`, Algorithms 1–4 of the
// paper), and an on-demand evaluation (`eval`).  Parameters are handled by
// ParamScopeOp, which maintains the guarded states of §5.1 as a trie over
// parameter valuations with a default branch (the guard tree of §6); all
// other operators run *within* one leaf of that trie, i.e. under a fixed
// valuation, exactly as the paper's guarded triples (s_f, s_g, F) do.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/aggop.hpp"
#include "core/predicate.hpp"
#include "core/regex.hpp"
#include "core/value.hpp"
#include "net/packet.hpp"

namespace netqre::core {

// Per-op profiling accumulators, indexed by Op::node_id() (assigned by
// index_ops / QueryBuilder::finish).  Threaded through EvalContext; null in
// the default hot path, so non-profiled engines pay one predicted branch
// per op step.  Plain (non-atomic) counters: a profile belongs to exactly
// one engine, which is single-threaded.
struct OpProfile {
  std::vector<uint64_t> steps;        // step() invocations per node
  // Kind-specific "real work" count per node: DFA state changes (match /
  // cond), split cases advanced, iter entries advanced, packets forwarded
  // through a composition, guard-trie leaves stepped (param_scope),
  // aggregate folds (fold).
  std::vector<uint64_t> transitions;
};

// Precomputed DFA letter for one packet under the current valuation.  A
// parameter scope computes every subtree DFA's letter once per touched leaf
// (it needs them anyway for the skip test) and passes them down, so MatchOp /
// CondOp skip the per-step atom re-evaluation.  A hint is only emitted for a
// DFA whose letter is fully determined at the scope's level (no atoms of
// scopes nested deeper); everything else falls back to Dfa::letter_of.
struct LetterHint {
  const Dfa* dfa = nullptr;
  uint64_t letter = 0;
};

struct EvalContext {
  const net::Packet* pkt = nullptr;
  Valuation* val = nullptr;  // all parameter slots of the query
  OpProfile* prof = nullptr;  // non-null only while profiling
  const LetterHint* hints = nullptr;  // per-packet letters, innermost scope
  int n_hints = 0;
};

// Letter for `d` on the current packet: the scope-provided hint when one
// exists (hint lists are 1-4 entries, a linear scan beats any map), else the
// full per-atom evaluation.
inline uint64_t dfa_letter(const EvalContext& ctx, const Dfa& d,
                           const AtomTable& table) {
  for (int i = 0; i < ctx.n_hints; ++i) {
    if (ctx.hints[i].dfa == &d) return ctx.hints[i].letter;
  }
  return d.letter_of(table, *ctx.pkt, *ctx.val);
}

// Base class for per-op state.  States are value-like: cloneable (the guard
// trie forks the default branch on demand), comparable (split/iter case
// deduplication, default-convergence pruning) and hashable.
class OpState {
 public:
  virtual ~OpState() = default;
  // Cheap type discriminator for equals() (one static address per class).
  [[nodiscard]] virtual const void* tag() const = 0;
  [[nodiscard]] virtual std::unique_ptr<OpState> clone() const = 0;
  [[nodiscard]] virtual bool equals(const OpState& other) const = 0;
  [[nodiscard]] virtual size_t hash() const = 0;
  // Approximate heap footprint in bytes, for the memory benchmarks.
  [[nodiscard]] virtual size_t memory() const = 0;
};

using StateBox = std::unique_ptr<OpState>;

class Op {
 public:
  virtual ~Op() = default;

  [[nodiscard]] virtual StateBox make_state() const = 0;
  virtual void step(OpState& state, const EvalContext& ctx) const = 0;
  // Current value on the consumed stream; Undef when not defined.
  [[nodiscard]] virtual Value eval(const OpState& state) const = 0;
  // Stable operator-kind label for telemetry ("match", "split", ...).
  [[nodiscard]] virtual const char* kind_name() const = 0;
  // Direct children, for tree walks (numbering, reporting).
  virtual void collect_children(std::vector<const Op*>&) const {}
  // Position of this op in its query's preorder numbering (index_ops);
  // -1 until numbered.  Used to index OpProfile vectors.
  [[nodiscard]] int node_id() const { return node_id_; }
  void set_node_id(int id) const { node_id_ = id; }
  // Atom ids used anywhere in this subtree (for candidate extraction).
  virtual void collect_atoms(std::vector<int>&) const {}
  // DFAs used anywhere in this subtree, annotated with how their acceptance
  // is consumed: `gated` = only read right after stepping, behind a
  // composition filter (Algorithm 4); `segment` = drives split/iter cut
  // decisions (Algorithms 2-3).  Used by the sparse-mode validator.
  struct DfaUse {
    const Dfa* dfa;
    bool gated;
    bool segment;
  };
  virtual void collect_dfas(std::vector<DfaUse>&, bool, bool) const {}

  // True when stepping this subtree can mutate state even on packets where
  // every parameterized predicate is false (e.g. a LastFieldOp caching each
  // packet).  When false for a validated sparse scope, the per-packet
  // default-leaf change check can be skipped.
  [[nodiscard]] virtual bool has_ungated_updates() const { return true; }

  // Reference (specification) evaluator: the declarative semantics of §3
  // computed directly over a stored stream, trying all splits.  Ground truth
  // for the streaming implementation in property tests; exponential, only
  // for short streams.
  [[nodiscard]] virtual Value ref_eval(std::span<const net::Packet> stream,
                                       Valuation& val) const = 0;

  // Value on the empty stream.
  [[nodiscard]] Value eval_empty() const { return eval(*make_state()); }

  // Domain automaton: the language of streams on which this expression can
  // (ever) become defined.  Used by split/iter to prune dead cases; may be
  // null when unknown (no pruning).
  void set_domain(std::shared_ptr<const Dfa> d);
  [[nodiscard]] const Dfa* domain() const { return domain_.get(); }
  [[nodiscard]] bool domain_dead(int state) const {
    return !domain_dead_.empty() && domain_dead_[state];
  }

 protected:
  std::shared_ptr<const Dfa> domain_;
  std::vector<bool> domain_dead_;

 private:
  // Set once by index_ops() on an otherwise-immutable tree, before any
  // stepping; safe for shared const ops.
  mutable int node_id_ = -1;
};

using OpPtr = std::shared_ptr<const Op>;

// Numbers every node of `root` in preorder (root = 0) and returns the nodes
// in numbering order.  Idempotent; called by QueryBuilder::finish and by
// Engine::enable_profiling for manually-assembled queries.
std::vector<const Op*> index_ops(const Op& root);

// Profiling hooks: one predicted branch when not profiling, nothing at all
// in NETQRE_TELEMETRY_DISABLED builds.
#if !defined(NETQRE_TELEMETRY_DISABLED)
inline void prof_step(const EvalContext& ctx, const Op& op) {
  if (ctx.prof) {
    int id = op.node_id();
    if (id >= 0 && static_cast<size_t>(id) < ctx.prof->steps.size())
      ++ctx.prof->steps[id];
  }
}
inline void prof_trans(const EvalContext& ctx, const Op& op, uint64_t n = 1) {
  if (ctx.prof) {
    int id = op.node_id();
    if (id >= 0 && static_cast<size_t>(id) < ctx.prof->transitions.size())
      ctx.prof->transitions[id] += n;
  }
}
#else
inline void prof_step(const EvalContext&, const Op&) {}
inline void prof_trans(const EvalContext&, const Op&, uint64_t = 1) {}
#endif

// ----------------------------------------------------------- leaf ops

// Constant value; defined on every stream.
class ConstOp final : public Op {
 public:
  explicit ConstOp(Value v) : value_(std::move(v)) {}
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState&, const EvalContext&) const override {}
  [[nodiscard]] Value eval(const OpState&) const override { return value_; }
  [[nodiscard]] bool has_ungated_updates() const override { return false; }
  [[nodiscard]] const char* kind_name() const override { return "const"; }
  [[nodiscard]] const Value& value() const { return value_; }
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;

 private:
  Value value_;
};

// Field of the most recent packet (`last.srcip`, `size(last)`, ...).
// Defined on non-empty streams.
class LastFieldOp final : public Op {
 public:
  explicit LastFieldOp(FieldRef field) : field_(field) {}
  [[nodiscard]] const char* kind_name() const override { return "last_field"; }
  [[nodiscard]] FieldRef field() const { return field_; }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;

 private:
  FieldRef field_;
};

// Current value of a parameter slot (e.g. `alert(user)` inside an
// aggregation body).  Defined whenever the slot is bound.
class ParamRefOp final : public Op {
 public:
  explicit ParamRefOp(int slot) : slot_(slot) {}
  [[nodiscard]] const char* kind_name() const override { return "param_ref"; }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;

 private:
  int slot_;
};

// PSRE run (§5.1): state is one DFA state; evaluates to the boolean
// "stream matches".
class MatchOp final : public Op {
 public:
  MatchOp(Dfa dfa, std::shared_ptr<const AtomTable> table)
      : dfa_(std::move(dfa)), table_(std::move(table)) {}
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;
  [[nodiscard]] const Dfa& dfa() const { return dfa_; }
  [[nodiscard]] const char* kind_name() const override { return "match"; }
  [[nodiscard]] bool has_ungated_updates() const override { return false; }

 private:
  Dfa dfa_;
  std::shared_ptr<const AtomTable> table_;
};

// Conditional `re ? then : else?` (§3.2).
class CondOp final : public Op {
 public:
  CondOp(Dfa re, std::shared_ptr<const AtomTable> table, OpPtr then_op,
         OpPtr else_op)
      : re_(std::move(re)),
        table_(std::move(table)),
        then_(std::move(then_op)),
        else_(std::move(else_op)) {}
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;
  [[nodiscard]] bool has_ungated_updates() const override {
    return then_->has_ungated_updates() ||
           (else_ && else_->has_ungated_updates());
  }
  [[nodiscard]] const Dfa& re() const { return re_; }
  [[nodiscard]] const char* kind_name() const override { return "cond"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(then_.get());
    if (else_) out.push_back(else_.get());
  }
  [[nodiscard]] const Op* then_op() const { return then_.get(); }
  [[nodiscard]] const Op* else_op() const { return else_.get(); }

 private:
  Dfa re_;
  std::shared_ptr<const AtomTable> table_;
  OpPtr then_;
  OpPtr else_;  // may be null
};

// Pointwise arithmetic / comparison / boolean combination of two stream
// functions.
enum class BinKind : uint8_t {
  Add, Sub, Mul, Div, Gt, Ge, Lt, Le, Eq, Ne, And, Or,
};

class BinOp final : public Op {
 public:
  BinOp(BinKind kind, OpPtr lhs, OpPtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;
  static Value apply(BinKind kind, const Value& a, const Value& b);
  [[nodiscard]] const char* kind_name() const override { return "bin"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(lhs_.get());
    out.push_back(rhs_.get());
  }
  [[nodiscard]] bool has_ungated_updates() const override {
    return lhs_->has_ungated_updates() || rhs_->has_ungated_updates();
  }

 private:
  BinKind kind_;
  OpPtr lhs_;
  OpPtr rhs_;
};

// split(f, g, aggop) — Algorithm 2.  Maintains the unsplit run of f plus a
// deduplicated set of split cases (frozen f state, live g state); cases are
// pruned when g's domain automaton says no extension can define g.
class SplitOp final : public Op {
 public:
  SplitOp(OpPtr f, OpPtr g, AggOp agg, std::shared_ptr<const AtomTable> table)
      : f_(std::move(f)), g_(std::move(g)), agg_(agg),
        table_(std::move(table)) {}
  [[nodiscard]] const char* kind_name() const override { return "split"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(f_.get());
    out.push_back(g_.get());
  }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;

 private:
  OpPtr f_;
  OpPtr g_;
  AggOp agg_;
  std::shared_ptr<const AtomTable> table_;
};

// iter(f, aggop) — Algorithm 3.  Entries are (aggregate-so-far, live f run);
// the compiler's incremental-aggregation optimization (§6) is exactly the
// AggAcc fold carried in each entry.
class IterOp final : public Op {
 public:
  IterOp(OpPtr f, AggOp agg, std::shared_ptr<const AtomTable> table)
      : f_(std::move(f)), agg_(agg), table_(std::move(table)) {}
  [[nodiscard]] const char* kind_name() const override { return "iter"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(f_.get());
  }
  [[nodiscard]] const Op* f() const { return f_.get(); }
  [[nodiscard]] AggOp agg() const { return agg_; }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;

 private:
  OpPtr f_;
  AggOp agg_;
  std::shared_ptr<const AtomTable> table_;
};

// Fused form of iter(/./ ? v, agg): every packet contributes one value
// (a constant or a field of the packet) folded into a running AggAcc.  This
// is the §6 incremental-aggregation optimization applied to the ubiquitous
// count / count_size / rate-style stream functions; the lowering pass
// rewrites matching iter expressions into it.
class FoldOp final : public Op {
 public:
  // Folds `field` when use_field, else the constant.
  FoldOp(AggOp agg, bool use_field, FieldRef field, Value constant)
      : agg_(agg), use_field_(use_field), field_(field),
        constant_(std::move(constant)) {}
  [[nodiscard]] const char* kind_name() const override { return "fold"; }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  [[nodiscard]] AggOp agg() const { return agg_; }
  [[nodiscard]] bool use_field() const { return use_field_; }
  [[nodiscard]] FieldRef field() const { return field_; }
  [[nodiscard]] const Value& constant() const { return constant_; }

 private:
  AggOp agg_;
  bool use_field_;
  FieldRef field_;
  Value constant_;
};

// Stream composition f >> g (§3.6, Algorithm 4).  f acts as a filter: when
// f is defined on the current prefix, the current packet is forwarded to g.
// (The paper's examples always forward `last`; packet *transformation* is
// not supported.)
class CompOp final : public Op {
 public:
  CompOp(OpPtr f, OpPtr g) : f_(std::move(f)), g_(std::move(g)) {}
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;
  [[nodiscard]] bool has_ungated_updates() const override {
    return f_->has_ungated_updates();
  }
  [[nodiscard]] const char* kind_name() const override { return "comp"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(f_.get());
    out.push_back(g_.get());
  }
  [[nodiscard]] const Op* f() const { return f_.get(); }
  [[nodiscard]] const Op* g() const { return g_.get(); }

 private:
  OpPtr f_;
  OpPtr g_;
};

// Action constructor: alert(...) / block(...).  Always defined; the engine
// fires the action when a conditional makes it reachable.
class ActionOp final : public Op {
 public:
  ActionOp(std::string name, std::vector<OpPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  [[nodiscard]] const char* kind_name() const override { return "action"; }
  void collect_children(std::vector<const Op*>& out) const override {
    for (const auto& a : args_) out.push_back(a.get());
  }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;

 private:
  std::string name_;
  std::vector<OpPtr> args_;
};

// Value-level conditional: `cond ? then : else?` where `cond` is a
// boolean-valued stream function (e.g. `count > k`), as used by the policy
// expressions of §4 (alert_hh, syn_flood).  Distinct from CondOp, whose
// condition is a PSRE match.
class TernaryOp final : public Op {
 public:
  TernaryOp(OpPtr c, OpPtr then_op, OpPtr else_op)
      : cond_(std::move(c)), then_(std::move(then_op)),
        else_(std::move(else_op)) {}
  [[nodiscard]] const char* kind_name() const override { return "ternary"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(cond_.get());
    out.push_back(then_.get());
    if (else_) out.push_back(else_.get());
  }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;

 private:
  OpPtr cond_;
  OpPtr then_;
  OpPtr else_;  // may be null
};

// Projects a component out of a Conn-valued sub-expression (c.srcip in
// `block(c.srcip)`, §4.2).
class ProjOp final : public Op {
 public:
  enum class Component : uint8_t { SrcIp, DstIp, SrcPort, DstPort };
  ProjOp(Component c, OpPtr sub) : comp_(c), sub_(std::move(sub)) {}
  [[nodiscard]] const char* kind_name() const override { return "proj"; }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(sub_.get());
  }
  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;
  static Value project(Component c, const Value& v);

 private:
  Component comp_;
  OpPtr sub_;
};

// -------------------------------------------------------- parameter scope

// How a ParamScopeOp combines its per-valuation instances.
struct ScopeMode {
  enum class Kind : uint8_t {
    Aggregate,  // aggop{ f | T x, ... }  (§3.5)
    EvalAt,     // f(e1, ..., ek) with per-packet key expressions, e.g.
                // hh(last.srcip, last.dstip) (§4.1)
  };
  Kind kind = Kind::Aggregate;
  AggOp agg = AggOp::Sum;
  std::vector<FieldRef> keys;  // EvalAt: one key field per bound slot
};

// Binds parameter slots [slot_lo, slot_lo + n_params) around `inner` and
// maintains the guarded states of §5.1: a trie over valuations whose default
// branches stand for "any other value".  See DESIGN.md §5 for the update
// and pruning rules.
class ParamScopeOp final : public Op {
 public:
  // Bound on parameters per scope (Table-1 queries use at most 4).
  static constexpr int kMaxParams = 8;

  // The constructor runs validate_sparse_scope() on `inner` and configures
  // the update strategy: sparse fast path, per-level descent, or fully
  // eager.  `force_eager` overrides the analysis (used by tests and as an
  // escape hatch).
  ParamScopeOp(int slot_lo, int n_params, ScopeMode mode, OpPtr inner,
               std::shared_ptr<const AtomTable> table,
               bool force_eager = false);

  [[nodiscard]] bool eager() const { return eager_; }
  [[nodiscard]] const std::vector<bool>& skip_param() const {
    return skip_param_;
  }
  [[nodiscard]] const char* kind_name() const override {
    return "param_scope";
  }
  void collect_children(std::vector<const Op*>& out) const override {
    out.push_back(inner_.get());
  }

  [[nodiscard]] StateBox make_state() const override;
  void step(OpState& s, const EvalContext& ctx) const override;
  [[nodiscard]] Value eval(const OpState& s) const override;
  [[nodiscard]] Value ref_eval(std::span<const net::Packet> stream,
                               Valuation& val) const override;
  void collect_atoms(std::vector<int>& out) const override;
  void collect_dfas(std::vector<DfaUse>& out, bool gated,
                    bool segment) const override;

  // Evaluate at one concrete valuation of the bound slots (runtime query
  // API, also used by EvalAt mode internally).
  [[nodiscard]] Value eval_at(const OpState& s,
                              const std::vector<Value>& key) const;
  // Enumerates (valuation, value) for all concrete leaves (observed
  // valuations).  Used by tests, result dumps and the parallel merge.
  void enumerate(const OpState& s,
                 const std::function<void(const std::vector<Value>&,
                                          const Value&)>& fn) const;

  [[nodiscard]] int slot_lo() const { return slot_lo_; }
  [[nodiscard]] int n_params() const { return n_params_; }
  [[nodiscard]] const Op* inner() const { return inner_.get(); }
  [[nodiscard]] const ScopeMode& mode() const { return mode_; }
  [[nodiscard]] const std::vector<std::vector<Atom>>& cand_atoms() const {
    return cand_atoms_;
  }

  struct Node;  // trie node (defined in ops.cpp; public for the state impl)

  // Global toggle for the letter-class skip optimization (ablation studies
  // only; always on in normal operation).
  static void set_skip_optimization(bool enabled);
  static bool skip_optimization_enabled();

  // Per-packet letter-class scratch (see ops.cpp); lives in the scope state
  // so that nested scopes cannot clobber each other's buffers.
  struct DfaCtx {
    uint64_t base = 0;
    uint32_t base_class = 0;
    Value atom_cand[8];
  };

  // Statistics for the memory/throughput analysis.
  struct Stats {
    uint64_t leaves = 0;
    uint64_t eager_steps = 0;  // packets handled on the slow (eager) path
  };
  [[nodiscard]] Stats stats(const OpState& s) const;

 private:
  int slot_lo_;
  int n_params_;
  ScopeMode mode_;
  bool eager_;
  bool dyn_check_;  // default-leaf change check needed per packet
  std::vector<bool> skip_param_;

  // Per-DFA letter equivalence classes: two letters are equivalent when
  // their transition columns coincide; a not-yet-materialized combo whose
  // letters are all miss-equivalent cannot diverge from the default branch
  // and is skipped entirely (the on-demand instantiation of §5.1 plus the
  // tree compaction of §6).
  struct ScopedDfa {
    const Dfa* dfa;
    std::vector<uint32_t> letter_class;  // dense over local letters
    struct ParamAtom {
      int local_bit;
      int param_rel;  // bound-slot index within this scope
      Atom atom;
      // Index of this atom within cand_atoms_[param_rel], so per-packet
      // letter setup reuses the candidate already extracted for the
      // instantiation pass instead of re-evaluating the atom; -1 when the
      // atom is absent from the candidate pool.
      int cand_index = -1;
    };
    std::vector<ParamAtom> patoms;
    // Atoms of parameters bound by scopes nested *inside* this one are
    // unbound when this scope computes letters, but will be bound during the
    // inner scope's own update: the class test must hold for every
    // assignment of those bits.  All subsets of that mask, including 0.
    std::vector<uint64_t> uncertain_subsets;
    // Index into the per-packet LetterHint array, or -1 when the letter is
    // not fully determined at this scope's level (nested-scope atoms).
    int hint_index = -1;
  };
  std::vector<ScopedDfa> scoped_dfas_;
  // Subtree DFAs with no atoms on this scope's own parameters (and none on
  // nested scopes' parameters): their letter is identical for every leaf, so
  // it is computed once per packet and hinted to all leaf steps.
  std::vector<const Dfa*> unparam_hint_dfas_;
  int n_scoped_hints_ = 0;  // hintable entries among scoped_dfas_
  bool combo_skip_ok_ = false;  // letter-class test usable
  bool all_skip_ = false;  // every level passed the per-param skip analysis
  OpPtr inner_;
  std::shared_ptr<const AtomTable> table_;
  // Atoms of `inner` that mention each bound slot, for candidate extraction.
  std::vector<std::vector<Atom>> cand_atoms_;  // [param] -> atoms
};

// Compile-time soundness analysis for the sparse guard-trie update
// (DESIGN.md §5).  For each DFA in `inner` and each bound parameter i, it
// examines every letter in which all of parameter i's atoms are false (the
// letters a leaf skipped at trie level i would receive) and requires the
// letter to be left-erasable (skipping it cannot change any later
// transition) and non-defining (gated/segment machines must reject;
// eval-visible machines must keep their acceptance).
//
//  - miss_ok: all-parameters-false letters satisfy the rules; when false the
//    scope runs in eager mode (every leaf stepped on every packet).
//  - skip_param[i]: parameter-i-false letters satisfy the rules; when false
//    the trie walk must descend existing concrete branches at level i
//    whenever a deeper parameter has candidate values.
struct SparseValidation {
  bool miss_ok = true;
  std::vector<bool> skip_param;
};
SparseValidation validate_sparse_scope(const Op& inner,
                                       const AtomTable& table, int slot_lo,
                                       int n_params);

}  // namespace netqre::core
