#include "core/parallel.hpp"

#include <atomic>
#include <chrono>
#include <ctime>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::core {

namespace {
using WaitClock = std::chrono::steady_clock;

std::string shard_label(const char* base, int index) {
  return obs::labeled_name(base, {{"shard", std::to_string(index)}});
}

// One histogram for all shards: a wait is a dispatcher-side event, and the
// shard it waited on is in the flight recorder.
obs::Histogram& backpressure_wait_ns() {
  static obs::Histogram& h = obs::registry().histogram(
      "netqre_parallel_backpressure_wait_ns", obs::latency_bounds_ns());
  return h;
}
}  // namespace

struct ParallelEngine::Shard {
  // One queue entry: either a packet batch, or a control visit the worker
  // runs in-line against its own engine (the race-free live-observation
  // hook behind visit_shards_async / the store's sampling cadence).
  struct Item {
    std::vector<net::Packet> batch;
    std::function<void(Engine&)> ctl;
  };

  Shard(const CompiledQuery& query, int index, EngineTier tier)
      : engine(query, tier),
        index(index),
        packets_total(&obs::registry().counter(
            shard_label("netqre_parallel_shard_packets_total", index))),
        queue_depth(&obs::registry().gauge(
            shard_label("netqre_parallel_shard_queue_depth", index))) {}

  Engine engine;
  int index;
  obs::Counter* packets_total;
  obs::Gauge* queue_depth;  // batches waiting (peak = worst backlog)
  std::mutex mu;
  std::condition_variable cv;        // worker waits: queue non-empty/closing
  std::condition_variable cv_space;  // dispatcher waits: queue below bound
  std::deque<Item> queue;
  bool closing = false;
  double busy_seconds = 0;
  std::thread thread;

  void run() {
    if constexpr (obs::kEnabled) {
      obs::tracer().set_thread_name("shard-" + std::to_string(index));
    }
    for (;;) {
      Item item;
      size_t depth = 0;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || closing; });
        if (queue.empty()) return;
        item = std::move(queue.front());
        queue.pop_front();
        depth = queue.size();
      }
      cv_space.notify_one();
      if constexpr (obs::kEnabled) {
        queue_depth->set(static_cast<int64_t>(depth));
        obs::tracer().record(obs::TraceKind::ShardDequeue,
                             static_cast<uint64_t>(index), depth);
      }
      if (item.ctl) {
        item.ctl(engine);
        continue;
      }
      // Per-thread CPU time: immune to preemption when more workers than
      // cores share the machine (the attribution basis of Fig. 8 here).
      timespec t0{}, t1{};
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
      engine.on_batch(item.batch);
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
      busy_seconds += static_cast<double>(t1.tv_sec - t0.tv_sec) +
                      1e-9 * static_cast<double>(t1.tv_nsec - t0.tv_nsec);
      packets_total->inc(item.batch.size());
    }
  }

  // Blocks while the queue is at the bound — the dispatcher absorbs the
  // backpressure rather than queueing the whole trace against a slow shard.
  // The wait, previously invisible, is recorded in the backpressure-wait
  // histogram and the flight recorder; the depth gauge tracks the backlog.
  // Control visits skip the bound: they are rare, tiny, and must not block
  // the sampling thread behind a saturated queue.
  void push_ctl(std::function<void(Engine&)> fn) {
    {
      std::lock_guard lock(mu);
      queue.push_back(Item{{}, std::move(fn)});
    }
    cv.notify_one();
  }

  void push(std::vector<net::Packet> batch, size_t max_queued) {
    size_t depth = 0;
    {
      std::unique_lock lock(mu);
      if (obs::kEnabled && queue.size() >= max_queued) {
        queue_depth->set(static_cast<int64_t>(queue.size()));
        const auto w0 = WaitClock::now();
        cv_space.wait(lock, [&] { return queue.size() < max_queued; });
        const uint64_t wait_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                WaitClock::now() - w0)
                .count());
        backpressure_wait_ns().observe(static_cast<double>(wait_ns));
        obs::tracer().record(obs::TraceKind::BackpressureWait,
                             static_cast<uint64_t>(index), wait_ns);
      } else {
        cv_space.wait(lock, [&] { return queue.size() < max_queued; });
      }
      queue.push_back(Item{std::move(batch), nullptr});
      depth = queue.size();
    }
    cv.notify_one();
    if constexpr (obs::kEnabled) {
      queue_depth->set(static_cast<int64_t>(depth));
      obs::tracer().record(obs::TraceKind::ShardEnqueue,
                           static_cast<uint64_t>(index), depth);
    }
  }

  void close() {
    {
      std::lock_guard lock(mu);
      closing = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }
};

ParallelEngine::ParallelEngine(const CompiledQuery& query, int n_workers,
                               Partitioner partitioner, EngineTier tier)
    : partitioner_(std::move(partitioner)), pending_(n_workers) {
  if constexpr (obs::kEnabled) {
    backpressure_wait_ns();  // register even when no wait ever happens
  }
  if (!partitioner_) {
    partitioner_ = [](const net::Packet& p) {
      return static_cast<size_t>(net::mix64(p.src_ip));
    };
  }
  shards_.reserve(n_workers);
  for (int i = 0; i < n_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(query, i, tier));
    Shard* s = shards_.back().get();
    s->thread = std::thread([s] { s->run(); });
  }
}

ParallelEngine::~ParallelEngine() {
  if (!finished_) finish();
}

void ParallelEngine::feed(net::PacketBatch&& batch) {
  const size_t n = shards_.size();
  for (net::Packet& p : batch.packets()) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(std::move(p));
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
  batch.clear();  // slots (and their capacity) stay reusable
}

void ParallelEngine::feed(const std::vector<net::Packet>& packets) {
  const size_t n = shards_.size();
  for (const auto& p : packets) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(p);
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
}

void ParallelEngine::visit_shards_async(
    std::function<void(int, const Engine&)> fn, std::function<void()> done) {
  if (finished_) {
    // Workers are gone and their engines quiescent: visit synchronously.
    for (const auto& s : shards_) fn(s->index, s->engine);
    if (done) done();
    return;
  }
  // Shared completion latch: the worker that finishes the last shard's
  // visit fires `done`.
  struct Pending {
    std::function<void(int, const Engine&)> fn;
    std::function<void()> done;
    std::atomic<size_t> remaining;
  };
  auto pending = std::make_shared<Pending>();
  pending->fn = std::move(fn);
  pending->done = std::move(done);
  pending->remaining.store(shards_.size(), std::memory_order_relaxed);
  for (auto& s : shards_) {
    const int index = s->index;
    s->push_ctl([pending, index](Engine& engine) {
      pending->fn(index, engine);
      if (pending->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          pending->done) {
        pending->done();
      }
    });
  }
}

void ParallelEngine::snapshot_results_async(
    std::function<void(std::vector<ResultSample>)> done) {
  struct Collect {
    std::mutex mu;
    std::vector<ResultSample> merged;
    std::unordered_map<std::string, size_t> index;
  };
  auto collect = std::make_shared<Collect>();
  visit_shards_async(
      [collect](int shard, const Engine& engine) {
        std::vector<ResultSample> local;
        engine.snapshot_results(local);
        const bool scalar = engine.query().param_names.empty();
        std::lock_guard lock(collect->mu);
        for (auto& s : local) {
          if (scalar) {
            // One dimension per shard: merging scalars needs the query's
            // aggregation operator, and per-shard series stay exact.
            s.key = "shard" + std::to_string(shard);
            collect->merged.push_back(std::move(s));
            continue;
          }
          const auto [it, fresh] =
              collect->index.emplace(s.key, collect->merged.size());
          if (fresh) {
            collect->merged.push_back(std::move(s));
          } else {
            // Non-partition-aligned scope keys land in several shards.
            collect->merged[it->second].value += s.value;
          }
        }
      },
      [collect, done = std::move(done)] {
        done(std::move(collect->merged));
      });
}

void ParallelEngine::finish() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!pending_[i].empty()) {
      shards_[i]->push(std::move(pending_[i]), kMaxQueuedBatches);
      pending_[i].clear();
    }
  }
  for (auto& s : shards_) s->close();
  finished_ = true;
}

namespace {

// Times a cross-shard merge and records it in the merge-latency histogram;
// compiles down to just fn() in OFF builds.
template <typename Fn>
auto timed_merge(Fn&& fn) {
  if constexpr (obs::kEnabled) {
    using Clock = std::chrono::steady_clock;
    static obs::Histogram& hist = obs::registry().histogram(
        "netqre_parallel_merge_latency_ns", obs::latency_bounds_ns());
    const auto t0 = Clock::now();
    auto result = fn();
    hist.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    return result;
  } else {
    return fn();
  }
}

}  // namespace

Value ParallelEngine::aggregate(AggOp op) const {
  return timed_merge([&] {
    AggAcc acc = AggAcc::identity(op);
    for (const auto& s : shards_) acc.add(s->engine.eval());
    return acc.result();
  });
}

void ParallelEngine::enumerate_all(
    const std::function<void(const std::vector<Value>&, const Value&)>& fn)
    const {
  timed_merge([&] {
    for (const auto& s : shards_) s->engine.enumerate(fn);
    return 0;
  });
}

const char* ParallelEngine::tier() const {
  return shards_.front()->engine.tier();
}

const std::string& ParallelEngine::tier_reason() const {
  return shards_.front()->engine.tier_reason();
}

const Engine& ParallelEngine::shard_engine(int shard) const {
  return shards_[shard]->engine;
}

double ParallelEngine::busy_seconds(int shard) const {
  return shards_[shard]->busy_seconds;
}

double ParallelEngine::max_busy_seconds() const {
  double best = 0;
  for (const auto& s : shards_) best = std::max(best, s->busy_seconds);
  return best;
}

double ParallelEngine::total_busy_seconds() const {
  double total = 0;
  for (const auto& s : shards_) total += s->busy_seconds;
  return total;
}

uint64_t ParallelEngine::packets() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->engine.packets();
  return n;
}

size_t ParallelEngine::state_memory() const {
  size_t m = 0;
  for (const auto& s : shards_) m += s->engine.state_memory();
  return m;
}

}  // namespace netqre::core
