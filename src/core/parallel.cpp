#include "core/parallel.hpp"

#include <chrono>
#include <ctime>
#include <deque>
#include <string>

#include "net/flow.hpp"
#include "obs/metrics.hpp"

namespace netqre::core {

struct ParallelEngine::Shard {
  Shard(const CompiledQuery& query, int index)
      : engine(query),
        packets_total(&obs::registry().counter(
            "netqre_parallel_shard_packets_total{shard=\"" +
            std::to_string(index) + "\"}")) {}

  Engine engine;
  obs::Counter* packets_total;
  std::mutex mu;
  std::condition_variable cv;        // worker waits: queue non-empty/closing
  std::condition_variable cv_space;  // dispatcher waits: queue below bound
  std::deque<std::vector<net::Packet>> queue;
  bool closing = false;
  double busy_seconds = 0;
  std::thread thread;

  void run() {
    for (;;) {
      std::vector<net::Packet> batch;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || closing; });
        if (queue.empty()) return;
        batch = std::move(queue.front());
        queue.pop_front();
      }
      cv_space.notify_one();
      // Per-thread CPU time: immune to preemption when more workers than
      // cores share the machine (the attribution basis of Fig. 8 here).
      timespec t0{}, t1{};
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
      engine.on_batch(batch);
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
      busy_seconds += static_cast<double>(t1.tv_sec - t0.tv_sec) +
                      1e-9 * static_cast<double>(t1.tv_nsec - t0.tv_nsec);
      packets_total->inc(batch.size());
    }
  }

  // Blocks while the queue is at the bound — the dispatcher absorbs the
  // backpressure rather than queueing the whole trace against a slow shard.
  void push(std::vector<net::Packet> batch, size_t max_queued) {
    {
      std::unique_lock lock(mu);
      cv_space.wait(lock, [&] { return queue.size() < max_queued; });
      queue.push_back(std::move(batch));
    }
    cv.notify_one();
  }

  void close() {
    {
      std::lock_guard lock(mu);
      closing = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }
};

ParallelEngine::ParallelEngine(const CompiledQuery& query, int n_workers,
                               Partitioner partitioner)
    : partitioner_(std::move(partitioner)), pending_(n_workers) {
  if (!partitioner_) {
    partitioner_ = [](const net::Packet& p) {
      return static_cast<size_t>(net::mix64(p.src_ip));
    };
  }
  shards_.reserve(n_workers);
  for (int i = 0; i < n_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(query, i));
    Shard* s = shards_.back().get();
    s->thread = std::thread([s] { s->run(); });
  }
}

ParallelEngine::~ParallelEngine() {
  if (!finished_) finish();
}

void ParallelEngine::feed(net::PacketBatch&& batch) {
  const size_t n = shards_.size();
  for (net::Packet& p : batch.packets()) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(std::move(p));
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
  batch.clear();  // slots (and their capacity) stay reusable
}

void ParallelEngine::feed(const std::vector<net::Packet>& packets) {
  const size_t n = shards_.size();
  for (const auto& p : packets) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(p);
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
}

void ParallelEngine::finish() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!pending_[i].empty()) {
      shards_[i]->push(std::move(pending_[i]), kMaxQueuedBatches);
      pending_[i].clear();
    }
  }
  for (auto& s : shards_) s->close();
  finished_ = true;
}

namespace {

// Times a cross-shard merge and records it in the merge-latency histogram;
// compiles down to just fn() in OFF builds.
template <typename Fn>
auto timed_merge(Fn&& fn) {
  if constexpr (obs::kEnabled) {
    using Clock = std::chrono::steady_clock;
    static obs::Histogram& hist = obs::registry().histogram(
        "netqre_parallel_merge_latency_ns", obs::latency_bounds_ns());
    const auto t0 = Clock::now();
    auto result = fn();
    hist.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    return result;
  } else {
    return fn();
  }
}

}  // namespace

Value ParallelEngine::aggregate(AggOp op) const {
  return timed_merge([&] {
    AggAcc acc = AggAcc::identity(op);
    for (const auto& s : shards_) acc.add(s->engine.eval());
    return acc.result();
  });
}

void ParallelEngine::enumerate_all(
    const std::function<void(const std::vector<Value>&, const Value&)>& fn)
    const {
  timed_merge([&] {
    for (const auto& s : shards_) s->engine.enumerate(fn);
    return 0;
  });
}

const Engine& ParallelEngine::shard_engine(int shard) const {
  return shards_[shard]->engine;
}

double ParallelEngine::busy_seconds(int shard) const {
  return shards_[shard]->busy_seconds;
}

double ParallelEngine::max_busy_seconds() const {
  double best = 0;
  for (const auto& s : shards_) best = std::max(best, s->busy_seconds);
  return best;
}

double ParallelEngine::total_busy_seconds() const {
  double total = 0;
  for (const auto& s : shards_) total += s->busy_seconds;
  return total;
}

uint64_t ParallelEngine::packets() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->engine.packets();
  return n;
}

size_t ParallelEngine::state_memory() const {
  size_t m = 0;
  for (const auto& s : shards_) m += s->engine.state_memory();
  return m;
}

}  // namespace netqre::core
