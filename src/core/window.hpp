// Time-based stream filters (§3.6): every(t) and recent(t).
//
// `every(t)` restarts the query at t-second boundaries (exact tumbling
// window).  `recent(t)` approximates a sliding window with K staggered
// panes: K engine instances restarted every t seconds, offset by t/K; a
// query is answered by the pane covering the most history within t seconds.
// Exact sliding semantics would require retracting packets, which QRE
// evaluation cannot do (documented substitution, DESIGN.md §5).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"

namespace netqre::core {

class TumblingWindow {
 public:
  // Called at each window boundary with the window start time and the
  // engine holding that window's final state.
  using WindowFn = std::function<void(double start, const Engine& engine)>;

  TumblingWindow(CompiledQuery query, double period)
      : engine_(std::move(query)), period_(period) {}

  void on_packet(const net::Packet& p) {
    if (start_ < 0) start_ = align(p.ts);
    while (p.ts >= start_ + period_) {
      if (on_window_) on_window_(start_, engine_);
      engine_.reset();
      start_ += period_;
    }
    engine_.on_packet(p);
  }

  void set_window_handler(WindowFn fn) { on_window_ = std::move(fn); }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] double window_start() const { return start_; }

 private:
  [[nodiscard]] double align(double ts) const {
    return period_ * static_cast<int64_t>(ts / period_);
  }
  Engine engine_;
  double period_;
  double start_ = -1;
  WindowFn on_window_;
};

class SlidingWindow {
 public:
  SlidingWindow(const CompiledQuery& query, double window, int panes = 8)
      : window_(window), pane_(window / panes) {
    engines_.reserve(panes);
    starts_.assign(panes, -1.0);
    for (int i = 0; i < panes; ++i) engines_.emplace_back(query);
  }

  void on_packet(const net::Packet& p) {
    if (t0_ < 0) {
      t0_ = p.ts;
      for (size_t i = 0; i < engines_.size(); ++i) {
        starts_[i] = t0_ + static_cast<double>(i) * pane_;
      }
    }
    // Restart any pane whose coverage would exceed the window.
    for (size_t i = 0; i < engines_.size(); ++i) {
      while (p.ts >= starts_[i] + window_) {
        engines_[i].reset();
        starts_[i] += window_;
      }
    }
    for (size_t i = 0; i < engines_.size(); ++i) {
      if (p.ts >= starts_[i]) engines_[i].on_packet(p);
    }
    now_ = p.ts;
  }

  // Pane covering the most history within the window at the current time.
  [[nodiscard]] const Engine& best() const {
    size_t best = 0;
    double best_cover = -1;
    for (size_t i = 0; i < engines_.size(); ++i) {
      double cover = now_ - starts_[i];
      if (cover >= 0 && cover <= window_ && cover > best_cover) {
        best_cover = cover;
        best = i;
      }
    }
    return engines_[best];
  }

  [[nodiscard]] Value eval() const { return best().eval(); }
  [[nodiscard]] Value eval_at(const std::vector<Value>& key) const {
    return best().eval_at(key);
  }

 private:
  double window_;
  double pane_;
  double t0_ = -1;
  double now_ = 0;
  std::vector<Engine> engines_;
  std::vector<double> starts_;
};

}  // namespace netqre::core
