// Parallel NetQRE runtime (§6, Fig. 8).
//
// The compiler's parallelization hash-partitions traffic on the parameter
// instantiation (e.g. hash(srcip)), runs one engine instance per worker
// thread, and merges per-shard results at query time.  A software load
// balancer thread (the dispatcher) feeds per-worker batch queues — its cost
// is what the paper's "with load balancer" curves include.
//
// Per-shard busy time is tracked with steady_clock inside each worker so
// speedup can be reported both as wall-clock and as attributable CPU time
// (this reproduction runs in a single-core container; see EXPERIMENTS.md).
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "net/packet_view.hpp"

namespace netqre::core {

class ParallelEngine {
 public:
  using Partitioner = std::function<size_t(const net::Packet&)>;

  // Partitioner defaults to hashing the source IP, the scheme §6 describes
  // for parameterized queries.  `tier` is forwarded to every shard engine;
  // hash partitioning keeps per-shard key sets disjoint, so the compiled
  // tier's per-shard flat tables merge exactly like the interpreter's tries.
  ParallelEngine(const CompiledQuery& query, int n_workers,
                 Partitioner partitioner = nullptr,
                 EngineTier tier = EngineTier::Auto);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // Dispatches a decoded batch to the per-worker queues (the load-balancer
  // role; runs on the calling thread).  Packets are MOVED out of the batch
  // into the shard queues — no copies — and the batch comes back empty with
  // its slot capacity intact, ready for the next fill().  Shard queues are
  // bounded (kMaxQueuedBatches): when a worker falls behind, feed blocks
  // until its queue drains instead of buffering the whole trace.
  void feed(net::PacketBatch&& batch);

  // Legacy copying wrapper over the batch path, kept for callers that hold
  // a long-lived trace they must not give up.
  void feed(const std::vector<net::Packet>& packets);

  // Flushes all queues and waits for the workers to drain.
  void finish();

  // Runs `fn(shard_index, engine)` on each shard's own worker thread,
  // after everything queued ahead of it — the race-free way to observe a
  // live shard's engine (the worker that mutates it executes the visit).
  // `done` fires on whichever worker completes the last visit.  Control
  // visits bypass the queue bound, so a sampling cadence never blocks the
  // dispatcher.  After finish() the visits run synchronously on the
  // calling thread (workers have exited; their engines are quiescent).
  void visit_shards_async(std::function<void(int, const Engine&)> fn,
                          std::function<void()> done = nullptr);

  // Result-snapshot hook for the time-series store: collects the
  // ResultSamples of every shard (disjoint key sets under hash
  // partitioning; duplicates from non-partition-aligned scopes are summed)
  // and hands the merged vector to `done` on the last-finishing worker.
  // Closed (scalar) queries emit one "shardN" dimension per worker —
  // merging them needs the query's aggregation operator, which the caller
  // may not know, and per-shard series stay exact.
  void snapshot_results_async(
      std::function<void(std::vector<ResultSample>)> done);

  // Merged aggregate over all shards (valid for partition-disjoint
  // parameter groupings, which hash partitioning guarantees).
  [[nodiscard]] Value aggregate(AggOp op) const;

  // Enumerates (valuation, value) across every shard.
  void enumerate_all(const std::function<void(const std::vector<Value>&,
                                              const Value&)>& fn) const;

  [[nodiscard]] int workers() const { return static_cast<int>(shards_.size()); }
  // Direct access to one shard's engine (call only after finish()); the
  // differential oracle uses this to compare a 1-shard run value-for-value
  // against a single-threaded engine, including undef results that a merged
  // aggregate() would normalize away.
  [[nodiscard]] const Engine& shard_engine(int shard) const;
  [[nodiscard]] double busy_seconds(int shard) const;
  [[nodiscard]] double max_busy_seconds() const;
  [[nodiscard]] double total_busy_seconds() const;
  [[nodiscard]] uint64_t packets() const;
  [[nodiscard]] size_t state_memory() const;
  // Tier selected by the shard engines (identical across shards).
  [[nodiscard]] const char* tier() const;
  [[nodiscard]] const std::string& tier_reason() const;

 private:
  struct Shard;
  static constexpr size_t kBatch = 4096;
  // Bound on not-yet-consumed batches per shard queue; feed() blocks when a
  // shard is this far behind (backpressure instead of unbounded buffering).
  static constexpr size_t kMaxQueuedBatches = 8;

  std::vector<std::unique_ptr<Shard>> shards_;
  Partitioner partitioner_;
  std::vector<std::vector<net::Packet>> pending_;  // per-shard open batch
  bool finished_ = false;
};

}  // namespace netqre::core
