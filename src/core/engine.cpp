#include "core/engine.hpp"

#include <stdexcept>

namespace netqre::core {

Engine::Engine(CompiledQuery query) : query_(std::move(query)) {
  if (!query_.root) throw std::runtime_error("engine: empty query");
  state_ = query_.root->make_state();
  val_.assign(query_.n_slots, Value::undef());
  top_scope_ = dynamic_cast<const ParamScopeOp*>(query_.root.get());
}

void Engine::on_packet(const net::Packet& p) {
  begin_packet_fields();
  EvalContext ctx{&p, &val_};
  query_.root->step(*state_, ctx);
  ++n_packets_;
  if (action_ && query_.result_type == Type::Action) {
    // Parameterized policies fire one action per observed valuation; each
    // distinct action fires once (the runtime's alert/update semantics, §6).
    auto fire = [&](const Value& v) {
      if (v.type() != Type::Action) return;
      if (fired_.insert(v.to_string()).second) action_(v, p);
    };
    if (top_scope_) {
      top_scope_->enumerate(*state_, [&](const std::vector<Value>&,
                                         const Value& v) { fire(v); });
    } else {
      Value v = eval();
      if (v.defined()) fire(v);
    }
  }
}

void Engine::on_stream(const std::vector<net::Packet>& packets) {
  for (const auto& p : packets) on_packet(p);
}

Value Engine::eval_at(const std::vector<Value>& key) const {
  if (!top_scope_) {
    throw std::runtime_error("eval_at: query has no top-level parameters");
  }
  return top_scope_->eval_at(*state_, key);
}

void Engine::enumerate(const std::function<void(const std::vector<Value>&,
                                                const Value&)>& fn) const {
  if (!top_scope_) {
    throw std::runtime_error("enumerate: query has no top-level parameters");
  }
  top_scope_->enumerate(*state_, fn);
}

void Engine::reset() {
  fired_.clear();
  state_ = query_.root->make_state();
  val_.assign(query_.n_slots, Value::undef());
  n_packets_ = 0;
}

}  // namespace netqre::core
