#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace netqre::core {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

// NETQRE_FORCE_TIER=interpreted|compiled overrides Auto tier selection.
EngineTier env_forced_tier() {
  const char* e = std::getenv("NETQRE_FORCE_TIER");
  if (e == nullptr || *e == '\0') return EngineTier::Auto;
  if (std::strcmp(e, "interpreted") == 0) return EngineTier::Interpreted;
  if (std::strcmp(e, "compiled") == 0) return EngineTier::Compiled;
  return EngineTier::Auto;
}

SpecDecision decide_tier(const CompiledQuery& query, EngineTier tier) {
  SpecDecision decision;
  if (tier == EngineTier::Auto) tier = env_forced_tier();
  switch (tier) {
    case EngineTier::Interpreted:
      decision.reason = "interpreted: tier forced";
      decision.chain = {"\xE2\x9C\x97 tier forced to interpreted"};
      break;
    case EngineTier::Compiled:
      // Forced: run the structural proof (with the gate when present) and
      // fall back with the refutation when it does not go through.
      decision =
          analyze_spec_explained(query, query.gate ? &*query.gate : nullptr);
      if (!decision.plan) {
        decision.reason = "interpreted: forced compiled tier unavailable -- " +
                          decision.reason;
      }
      break;
    case EngineTier::Auto:
      // Auto-selection requires the certificate gate: builder-compiled
      // queries (tests, fuzzing) carry none and stay on the interpreter
      // unless a tier is forced.
      if (!query.gate) {
        decision.reason =
            "interpreted: no resource certificate (builder-compiled query)";
        decision.chain = {
            "\xE2\x9C\x97 no resource certificate (builder-compiled query)"};
        break;
      }
      decision = analyze_spec_explained(query, &*query.gate);
      break;
  }
  return decision;
}

Engine::Engine(CompiledQuery query, EngineTier tier)
    : query_(std::move(query)) {
  if (!query_.root) throw std::runtime_error("engine: empty query");
  state_ = query_.root->make_state();
  val_.assign(query_.n_slots, Value::undef());
  top_scope_ = dynamic_cast<const ParamScopeOp*>(query_.root.get());
  select_tier(tier);
  auto& reg = obs::registry();
  packets_total_ = &reg.counter("netqre_engine_packets_total");
  actions_total_ = &reg.counter("netqre_engine_actions_fired_total");
  latency_ns_ = &reg.histogram("netqre_engine_packet_latency_ns",
                               obs::latency_bounds_ns());
  state_bytes_ = &reg.gauge("netqre_engine_state_memory_bytes");
  guarded_states_ = &reg.gauge("netqre_engine_guarded_states");
}

void Engine::select_tier(EngineTier tier) {
  decision_ = decide_tier(query_, tier);
  if (decision_.plan) {
    spec_ = std::make_unique<SpecializedMonitor>(*decision_.plan);
  }
}

Value Engine::eval() const {
  return spec_ ? spec_->eval() : query_.root->eval(*state_);
}

size_t Engine::state_memory() const {
  return spec_ ? spec_->memory() : state_->memory();
}

void Engine::on_packet(const net::Packet& p) {
  if (spec_) {
    // Compiled tier: the monitor arms the field cache itself when needed;
    // action-typed queries never specialize, so dispatch is step-only.
    const bool sample =
        obs::kEnabled && (n_packets_ & (kLatencySampleEvery - 1)) == 0;
    Clock::time_point t0{};
    if (sample) t0 = Clock::now();
    spec_->on_packet(p);
    if (sample) {
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      latency_ns_->observe(ns);
      if (ns > static_cast<double>(kSlowPacketTraceNs)) {
        obs::tracer().record(obs::TraceKind::SlowPacket,
                             static_cast<uint64_t>(ns), kSlowPacketTraceNs);
      }
    }
    ++n_packets_;
    packets_total_->inc();
    if (obs::kEnabled && n_packets_ >= next_state_sample_) {
      sample_state_metrics();
      const uint64_t interval =
          std::min(next_state_sample_, kStateSampleMaxInterval);
      next_state_sample_ += interval;
    }
    return;
  }
  begin_packet_fields();
  EvalContext ctx{&p, &val_, prof_.get()};
  // Sampled per-packet latency: two clock reads every kLatencySampleEvery
  // packets; the branch below folds away entirely in OFF builds.
  const bool sample =
      obs::kEnabled && (n_packets_ & (kLatencySampleEvery - 1)) == 0;
  Clock::time_point t0{};
  if (sample) t0 = Clock::now();
  query_.root->step(*state_, ctx);
  if (sample) {
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    latency_ns_->observe(ns);
    if (ns > static_cast<double>(kSlowPacketTraceNs)) {
      obs::tracer().record(obs::TraceKind::SlowPacket,
                           static_cast<uint64_t>(ns), kSlowPacketTraceNs);
    }
  }
  ++n_packets_;
  packets_total_->inc();
  if (obs::kEnabled && n_packets_ >= next_state_sample_) {
    sample_state_metrics();
    const uint64_t interval = std::min(next_state_sample_,
                                       kStateSampleMaxInterval);
    next_state_sample_ += interval;
  }
  if (action_ && query_.result_type == Type::Action) {
    // Parameterized policies fire one action per observed valuation; each
    // distinct action fires once (the runtime's alert/update semantics, §6).
    auto fire = [&](const Value& v) {
      if (v.type() != Type::Action) return;
      if (fired_.insert(v.to_string()).second) {
        actions_total_->inc();
        obs::tracer().record(obs::TraceKind::ActionFire, fired_.size());
        action_(v, p);
      }
    };
    if (top_scope_) {
      top_scope_->enumerate(*state_, [&](const std::vector<Value>&,
                                         const Value& v) { fire(v); });
    } else {
      Value v = eval();
      if (v.defined()) fire(v);
    }
  }
}

void Engine::on_batch(std::span<const net::Packet> batch) {
  if (batch.empty()) return;
  if (action_ && query_.result_type == Type::Action) {
    // Action dispatch needs the firing packet: take the scalar path so the
    // handler sees exactly the packet that completed the pattern.
    for (const auto& p : batch) on_packet(p);
    return;
  }
  if (spec_) {
    Clock::time_point t0{};
    double max_sampled_ns = 0;
    uint64_t i = 0;
    if constexpr (obs::kEnabled) {
      t0 = Clock::now();
      obs::tracer().record(obs::TraceKind::BatchBegin, batch.size());
    }
    for (const auto& p : batch) {
      if constexpr (obs::kEnabled) {
        if ((i++ & (kLatencySampleEvery - 1)) == 0) {
          const auto s0 = Clock::now();
          spec_->on_packet(p);
          const double ns = static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - s0)
                  .count());
          if (ns > max_sampled_ns) max_sampled_ns = ns;
          continue;
        }
      }
      spec_->on_packet(p);
    }
    if constexpr (obs::kEnabled) {
      const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - t0)
                          .count();
      latency_ns_->observe(static_cast<double>(dt) /
                           static_cast<double>(batch.size()));
      latency_ns_->observe(max_sampled_ns);
      obs::tracer().record(obs::TraceKind::BatchEnd, batch.size(),
                           static_cast<uint64_t>(dt));
      if (max_sampled_ns > static_cast<double>(kSlowPacketTraceNs)) {
        obs::tracer().record(obs::TraceKind::SlowPacket,
                             static_cast<uint64_t>(max_sampled_ns),
                             kSlowPacketTraceNs);
      }
    }
    n_packets_ += batch.size();
    packets_total_->inc(batch.size());
    if (obs::kEnabled && n_packets_ >= next_state_sample_) {
      sample_state_metrics();
      while (n_packets_ >= next_state_sample_) {
        next_state_sample_ +=
            std::min(next_state_sample_, kStateSampleMaxInterval);
      }
    }
    return;
  }
  EvalContext ctx{nullptr, &val_, prof_.get()};
  Clock::time_point t0{};
  double max_sampled_ns = 0;  // max of the per-packet latencies sampled below
  uint64_t i = 0;
  if constexpr (obs::kEnabled) {
    t0 = Clock::now();
    obs::tracer().record(obs::TraceKind::BatchBegin, batch.size());
  }
  for (const auto& p : batch) {
    begin_packet_fields();
    ctx.pkt = &p;
    if constexpr (obs::kEnabled) {
      // Every kLatencySampleEvery-th packet is individually timed so the
      // histogram keeps a tail signal under batching; ~2 extra clock reads
      // per 64 packets, negligible next to the step itself.
      if ((i++ & (kLatencySampleEvery - 1)) == 0) {
        const auto s0 = Clock::now();
        query_.root->step(*state_, ctx);
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - s0)
                .count());
        if (ns > max_sampled_ns) max_sampled_ns = ns;
        continue;
      }
    }
    query_.root->step(*state_, ctx);
  }
  if constexpr (obs::kEnabled) {
    const auto dt =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count();
    // Two observations per batch: the mean keeps throughput attribution
    // honest, the sampled max keeps p99/p999 meaningful (a batch mean of
    // 300 ns can hide a 1 ms packet).
    latency_ns_->observe(static_cast<double>(dt) /
                         static_cast<double>(batch.size()));
    latency_ns_->observe(max_sampled_ns);
    obs::tracer().record(obs::TraceKind::BatchEnd, batch.size(),
                         static_cast<uint64_t>(dt));
    if (max_sampled_ns > static_cast<double>(kSlowPacketTraceNs)) {
      obs::tracer().record(obs::TraceKind::SlowPacket,
                           static_cast<uint64_t>(max_sampled_ns),
                           kSlowPacketTraceNs);
    }
  }
  n_packets_ += batch.size();
  packets_total_->inc(batch.size());
  if (obs::kEnabled && n_packets_ >= next_state_sample_) {
    sample_state_metrics();
    while (n_packets_ >= next_state_sample_) {
      next_state_sample_ +=
          std::min(next_state_sample_, kStateSampleMaxInterval);
    }
  }
}

void Engine::on_stream(const std::vector<net::Packet>& packets) {
  on_batch(packets);
  if constexpr (obs::kEnabled) sample_state_metrics();
}

Value Engine::eval_at(const std::vector<Value>& key) const {
  if (!top_scope_) {
    throw std::runtime_error("eval_at: query has no top-level parameters");
  }
  return spec_ ? spec_->eval_at(key) : top_scope_->eval_at(*state_, key);
}

void Engine::enumerate(const std::function<void(const std::vector<Value>&,
                                                const Value&)>& fn) const {
  if (!top_scope_) {
    throw std::runtime_error("enumerate: query has no top-level parameters");
  }
  if (spec_) {
    spec_->enumerate(fn);
  } else {
    top_scope_->enumerate(*state_, fn);
  }
}

void Engine::snapshot_results(std::vector<ResultSample>& out) const {
  if (top_scope_) {
    const auto emit = [&](const std::vector<Value>& key, const Value& v) {
      if (!v.defined()) return;
      std::string name;
      for (size_t i = 0; i < key.size(); ++i) {
        if (i) name += ',';
        name += key[i].to_string();
      }
      out.push_back({std::move(name), v.as_double()});
    };
    if (spec_) {
      spec_->enumerate(emit);
    } else {
      top_scope_->enumerate(*state_, emit);
    }
    return;
  }
  const Value v = eval();
  if (v.defined()) out.push_back({"value", v.as_double()});
}

void Engine::reset() {
  fired_.clear();
  if (spec_) spec_->reset();
  state_ = query_.root->make_state();
  val_.assign(query_.n_slots, Value::undef());
  n_packets_ = 0;
  next_state_sample_ = kStateSampleFirst;
  if (prof_) {
    prof_->steps.assign(op_index_.size(), 0);
    prof_->transitions.assign(op_index_.size(), 0);
  }
  if constexpr (obs::kEnabled) sample_state_metrics();
}

void Engine::sample_state_metrics() {
  if (spec_) {
    state_bytes_->set(static_cast<int64_t>(spec_->memory()));
    guarded_states_->set(static_cast<int64_t>(spec_->entries()));
    return;
  }
  state_bytes_->set(static_cast<int64_t>(state_->memory()));
  if (top_scope_) {
    guarded_states_->set(
        static_cast<int64_t>(top_scope_->stats(*state_).leaves));
  }
}

void Engine::enable_profiling() {
  // Per-op profiles are an interpreter concept: profiling runs drop the
  // compiled tier (call before feeding packets).
  if (spec_) {
    spec_.reset();
    decision_.reason += " (profiling forces interpreter)";
  }
  op_index_ = index_ops(*query_.root);
  prof_ = std::make_unique<OpProfile>();
  prof_->steps.assign(op_index_.size(), 0);
  prof_->transitions.assign(op_index_.size(), 0);
}

void Engine::publish_op_metrics() {
  if (!prof_) return;
  // Aggregate per kind first: registry lookups take a mutex each.
  std::map<const char*, std::pair<uint64_t, uint64_t>> by_kind;
  for (size_t i = 0; i < op_index_.size(); ++i) {
    auto& acc = by_kind[op_index_[i]->kind_name()];
    acc.first += prof_->steps[i];
    acc.second += prof_->transitions[i];
  }
  auto& reg = obs::registry();
  for (const auto& [kind, counts] : by_kind) {
    if (counts.first) {
      reg.counter(obs::labeled_name("netqre_op_steps_total",
                                    {{"kind", kind}}))
          .inc(counts.first);
    }
    if (counts.second) {
      reg.counter(obs::labeled_name("netqre_op_transitions_total",
                                    {{"kind", kind}}))
          .inc(counts.second);
    }
  }
  prof_->steps.assign(op_index_.size(), 0);
  prof_->transitions.assign(op_index_.size(), 0);
}

}  // namespace netqre::core
