#include "core/fields.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

namespace netqre::core {
namespace {

bool ieq(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

}  // namespace

Value extract_builtin(Field f, const net::Packet& p) {
  switch (f) {
    case Field::SrcIp: return Value::ip(p.src_ip);
    case Field::DstIp: return Value::ip(p.dst_ip);
    case Field::SrcPort: return Value::integer(p.src_port, Type::Port);
    case Field::DstPort: return Value::integer(p.dst_port, Type::Port);
    case Field::Proto:
      return Value::integer(static_cast<int64_t>(p.proto));
    case Field::Syn: return Value::boolean(p.syn());
    case Field::Ack: return Value::boolean(p.ack());
    case Field::Fin: return Value::boolean(p.fin());
    case Field::Rst: return Value::boolean(p.rst());
    case Field::Psh: return Value::boolean(p.psh());
    case Field::Seq: return Value::integer(p.seq);
    case Field::AckNo: return Value::integer(p.ack_no);
    case Field::Len: return Value::integer(p.wire_len);
    case Field::PayLen:
      return Value::integer(static_cast<int64_t>(p.payload.size()));
    case Field::Time: return Value::real(p.ts);
    case Field::ConnId: return Value::conn(net::Conn::of(p).canonical());
    case Field::Payload: return Value::str(p.payload);
    case Field::Custom: break;
  }
  return Value::undef();
}

// ---------------------------------------------------------------- registry

FieldRegistry& FieldRegistry::instance() {
  static FieldRegistry reg;
  return reg;
}

int FieldRegistry::register_fn(const std::string& name, ParseFn fn) {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    fns_[it->second] = std::move(fn);
    return it->second;
  }
  int id = static_cast<int>(fns_.size());
  names_.push_back(name);
  fns_.push_back(std::move(fn));
  by_name_[name] = id;
  return id;
}

std::optional<int> FieldRegistry::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& FieldRegistry::name_of(int id) const {
  return names_.at(id);
}

Value FieldRegistry::extract(int id, const net::Packet& p) const {
  return fns_.at(id)(p);
}

FieldRegistry::FieldRegistry() {
  register_fn("sip.method", [](const net::Packet& p) {
    return Value::str(std::string(sip_method(p.payload)));
  });
  register_fn("sip.callid", [](const net::Packet& p) {
    return Value::str(std::string(sip_header(p.payload, "Call-ID")));
  });
  register_fn("sip.from", [](const net::Packet& p) {
    return Value::str(std::string(sip_header(p.payload, "From")));
  });
  register_fn("sip.to", [](const net::Packet& p) {
    return Value::str(std::string(sip_header(p.payload, "To")));
  });
  register_fn("dns.qname", [](const net::Packet& p) {
    return Value::str(dns_qname(p.payload));
  });
  register_fn("dns.qtype", [](const net::Packet& p) {
    return Value::integer(dns_qtype(p.payload));
  });
  register_fn("dns.response", [](const net::Packet& p) {
    return Value::boolean(dns_is_response(p.payload));
  });
  register_fn("dns.ancount", [](const net::Packet& p) {
    return Value::integer(dns_ancount(p.payload));
  });
  register_fn("dns.qnamelen", [](const net::Packet& p) {
    return Value::integer(
        static_cast<int64_t>(dns_qname(p.payload).size()));
  });
  // TLS handshake ClientHello: record type 0x16 (handshake), version 3.x,
  // handshake type 0x01.  Repeated ClientHellos inside one connection are
  // the renegotiation signature of the paper's intro use case.
  register_fn("tls.hello", [](const net::Packet& p) {
    const std::string& d = p.payload;
    const bool hello = d.size() >= 6 &&
                       static_cast<uint8_t>(d[0]) == 0x16 &&
                       static_cast<uint8_t>(d[1]) == 0x03 &&
                       static_cast<uint8_t>(d[5]) == 0x01;
    return Value::boolean(hello);
  });
  // First line token for text protocols (HTTP method, SMTP verb).
  register_fn("http.method", [](const net::Packet& p) {
    std::string_view s = p.payload;
    size_t sp = s.find(' ');
    return Value::str(std::string(sp == std::string_view::npos
                                      ? std::string_view{}
                                      : s.substr(0, sp)));
  });
}

namespace {

// Per-packet memoization of custom field extraction: application-layer
// parsing (SIP headers, DNS names) is referenced by several atoms per
// packet; parse once per packet instead.
struct FieldCache {
  uint64_t generation = 0;
  std::vector<std::pair<uint64_t, Value>> by_id;  // generation, value
};
thread_local FieldCache g_field_cache;

}  // namespace

void begin_packet_fields() { ++g_field_cache.generation; }

std::optional<FieldRef> resolve_field(const std::string& name) {
  static const std::unordered_map<std::string, Field> kBuiltins = {
      {"srcip", Field::SrcIp},   {"dstip", Field::DstIp},
      {"srcport", Field::SrcPort}, {"dstport", Field::DstPort},
      {"proto", Field::Proto},   {"syn", Field::Syn},
      {"ack", Field::Ack},       {"fin", Field::Fin},
      {"rst", Field::Rst},       {"psh", Field::Psh},
      {"seq", Field::Seq},       {"ackno", Field::AckNo},
      {"len", Field::Len},       {"size", Field::Len},
      {"paylen", Field::PayLen}, {"time", Field::Time},
      {"conn", Field::ConnId},   {"data", Field::Payload},
      {"payload", Field::Payload},
  };
  if (auto it = kBuiltins.find(name); it != kBuiltins.end()) {
    return FieldRef{it->second, -1};
  }
  if (auto id = FieldRegistry::instance().lookup(name)) {
    return FieldRef{Field::Custom, *id};
  }
  return std::nullopt;
}

std::string field_name(const FieldRef& ref) {
  if (ref.field == Field::Custom) {
    return FieldRegistry::instance().name_of(ref.custom_id);
  }
  static constexpr std::array kNames = {
      "srcip", "dstip", "srcport", "dstport", "proto", "syn",  "ack",
      "fin",   "rst",   "psh",     "seq",     "ackno", "len",  "paylen",
      "time",  "conn",  "payload", "custom"};
  return kNames[static_cast<size_t>(ref.field)];
}

Value extract(const FieldRef& ref, const net::Packet& p) {
  if (ref.field == Field::Custom) {
    auto& cache = g_field_cache;
    if (cache.by_id.size() <= static_cast<size_t>(ref.custom_id)) {
      cache.by_id.resize(ref.custom_id + 1);
    }
    auto& slot = cache.by_id[ref.custom_id];
    if (slot.first != cache.generation || cache.generation == 0) {
      slot.first = cache.generation;
      slot.second = FieldRegistry::instance().extract(ref.custom_id, p);
    }
    return slot.second;
  }
  return extract_builtin(ref.field, p);
}

Type field_type(const FieldRef& ref) {
  switch (ref.field) {
    case Field::SrcIp:
    case Field::DstIp: return Type::Ip;
    case Field::SrcPort:
    case Field::DstPort: return Type::Port;
    case Field::Syn:
    case Field::Ack:
    case Field::Fin:
    case Field::Rst:
    case Field::Psh: return Type::Bool;
    case Field::Time: return Type::Double;
    case Field::ConnId: return Type::Conn;
    case Field::Payload: return Type::String;
    case Field::Custom: return Type::String;  // refined by usage
    default: return Type::Int;
  }
}

// ------------------------------------------------------ app-layer parsers

std::string_view sip_method(std::string_view payload) {
  static constexpr std::array<std::string_view, 7> kMethods = {
      "INVITE", "ACK", "BYE", "CANCEL", "REGISTER", "OPTIONS", "INFO"};
  for (auto m : kMethods) {
    if (payload.substr(0, m.size()) == m && payload.size() > m.size() &&
        payload[m.size()] == ' ') {
      return m;
    }
  }
  // Responses: "SIP/2.0 200 OK" -> "200".
  constexpr std::string_view kResp = "SIP/2.0 ";
  if (payload.substr(0, kResp.size()) == kResp) {
    auto rest = payload.substr(kResp.size());
    size_t end = rest.find(' ');
    return rest.substr(0, end == std::string_view::npos ? rest.size() : end);
  }
  return {};
}

std::string_view sip_header(std::string_view payload, std::string_view name) {
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = payload.size();
    auto line = payload.substr(pos, eol - pos);
    if (line.empty()) break;  // end of headers
    size_t colon = line.find(':');
    if (colon != std::string_view::npos && ieq(line.substr(0, colon), name)) {
      auto v = line.substr(colon + 1);
      while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
      return v;
    }
    pos = eol + 2;
  }
  return {};
}

namespace {

// DNS message layout: 12-byte header, then questions.
constexpr size_t kDnsHeader = 12;

uint16_t dns16(std::string_view m, size_t off) {
  return static_cast<uint16_t>((static_cast<uint8_t>(m[off]) << 8) |
                               static_cast<uint8_t>(m[off + 1]));
}

}  // namespace

std::string dns_qname(std::string_view m) {
  if (m.size() < kDnsHeader || dns16(m, 4) == 0) return {};
  std::string name;
  size_t pos = kDnsHeader;
  while (pos < m.size()) {
    uint8_t len = static_cast<uint8_t>(m[pos]);
    if (len == 0) break;
    if ((len & 0xc0) != 0 || pos + 1 + len > m.size()) return {};  // pointer
    if (!name.empty()) name += '.';
    name.append(m.substr(pos + 1, len));
    pos += 1 + len;
  }
  return name;
}

int dns_qtype(std::string_view m) {
  if (m.size() < kDnsHeader || dns16(m, 4) == 0) return 0;
  size_t pos = kDnsHeader;
  while (pos < m.size() && static_cast<uint8_t>(m[pos]) != 0) {
    uint8_t len = static_cast<uint8_t>(m[pos]);
    if ((len & 0xc0) != 0) return 0;
    pos += 1 + len;
  }
  if (pos + 3 > m.size()) return 0;
  return dns16(m, pos + 1);
}

bool dns_is_response(std::string_view m) {
  return m.size() >= kDnsHeader &&
         (static_cast<uint8_t>(m[2]) & 0x80) != 0;
}

int dns_ancount(std::string_view m) {
  return m.size() >= kDnsHeader ? dns16(m, 6) : 0;
}

}  // namespace netqre::core
