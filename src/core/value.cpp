#include "core/value.hpp"

#include "net/ipv4.hpp"

namespace netqre::core {

std::string type_name(Type t) {
  switch (t) {
    case Type::Int: return "int";
    case Type::Bool: return "bool";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::Ip: return "IP";
    case Type::Port: return "Port";
    case Type::Conn: return "Conn";
    case Type::Packet: return "packet";
    case Type::Action: return "action";
  }
  return "?";
}

int Value::compare(const Value& o) const {
  if (kind_ != o.kind_) {
    // Numeric kinds compare by value across Int/Double.
    if ((kind_ == Kind::Int || kind_ == Kind::Double) &&
        (o.kind_ == Kind::Int || o.kind_ == Kind::Double)) {
      double a = as_double();
      double b = o.as_double();
      return a < b ? -1 : a > b ? 1 : 0;
    }
    return kind_ < o.kind_ ? -1 : 1;
  }
  switch (kind_) {
    case Kind::Undef: return 0;
    case Kind::Int: return int_ < o.int_ ? -1 : int_ > o.int_ ? 1 : 0;
    case Kind::Double: return dbl_ < o.dbl_ ? -1 : dbl_ > o.dbl_ ? 1 : 0;
    case Kind::Str: return str_.compare(o.str_);
    case Kind::Conn: {
      if (conn_ == o.conn_) return 0;
      return conn_ < o.conn_ ? -1 : 1;
    }
  }
  return 0;
}

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::Undef: return "undef";
    case Kind::Int:
      if (type_ == Type::Ip) return net::format_ip(static_cast<uint32_t>(int_));
      if (type_ == Type::Bool) return int_ ? "true" : "false";
      return std::to_string(int_);
    case Kind::Double: return std::to_string(dbl_);
    case Kind::Str: return str_;
    case Kind::Conn:
      return net::format_ip(conn_.src_ip) + ":" +
             std::to_string(conn_.src_port) + "<->" +
             net::format_ip(conn_.dst_ip) + ":" +
             std::to_string(conn_.dst_port);
  }
  return "?";
}

}  // namespace netqre::core
