// Reference (specification) evaluator and the sparse-scope validator.
//
// ref_eval implements the declarative semantics of §3 directly: the stream
// is stored, split points are enumerated, iterations are tried recursively.
// It is exponential and used only as ground truth in tests, exactly the
// "conceptual programming model" the paper describes before compilation
// (§2.1: "the programmer may assume that all received packets have been
// stored and presented as the input").
#include <map>
#include <set>

#include "core/ops.hpp"

namespace netqre::core {

using Stream = std::span<const net::Packet>;

Value ConstOp::ref_eval(Stream, Valuation&) const { return value_; }

Value LastFieldOp::ref_eval(Stream stream, Valuation&) const {
  if (stream.empty()) return Value::undef();
  return extract(field_, stream.back());
}

Value ParamRefOp::ref_eval(Stream, Valuation& val) const {
  if (slot_ < 0 || static_cast<size_t>(slot_) >= val.size()) {
    return Value::undef();
  }
  return val[slot_].defined() ? val[slot_] : Value::undef();
}

namespace {

bool dfa_accepts(const Dfa& dfa, const AtomTable& table, Stream stream,
                 const Valuation& val) {
  int q = dfa.start;
  for (const auto& p : stream) q = dfa.step(q, dfa.letter_of(table, p, val));
  return dfa.accept[q];
}

}  // namespace

Value MatchOp::ref_eval(Stream stream, Valuation& val) const {
  return Value::boolean(dfa_accepts(dfa_, *table_, stream, val));
}

Value CondOp::ref_eval(Stream stream, Valuation& val) const {
  if (dfa_accepts(re_, *table_, stream, val)) {
    return then_->ref_eval(stream, val);
  }
  return else_ ? else_->ref_eval(stream, val) : Value::undef();
}

Value BinOp::ref_eval(Stream stream, Valuation& val) const {
  return apply(kind_, lhs_->ref_eval(stream, val),
               rhs_->ref_eval(stream, val));
}

Value SplitOp::ref_eval(Stream stream, Valuation& val) const {
  // Try all split points; with an unambiguous split at most one is defined.
  for (size_t k = 0; k <= stream.size(); ++k) {
    Value vf = f_->ref_eval(stream.first(k), val);
    if (!vf.defined()) continue;
    Value vg = g_->ref_eval(stream.subspan(k), val);
    if (!vg.defined()) continue;
    AggAcc acc = AggAcc::identity(agg_);
    acc.add(vf);
    acc.add(vg);
    return acc.result();
  }
  return Value::undef();
}

Value IterOp::ref_eval(Stream stream, Valuation& val) const {
  // Recursive factorization into f-segments, shortest-first; AggAcc folds
  // the per-segment values.
  std::optional<AggAcc> out;
  auto go = [&](auto&& self, Stream rest, AggAcc acc) -> bool {
    if (rest.empty()) {
      out = acc;
      return true;
    }
    for (size_t k = 1; k <= rest.size(); ++k) {
      Value v = f_->ref_eval(rest.first(k), val);
      if (!v.defined()) continue;
      AggAcc next = acc;
      next.add(v);
      if (self(self, rest.subspan(k), next)) return true;
    }
    return false;
  };
  if (!go(go, stream, AggAcc::identity(agg_))) return Value::undef();
  return out->result();
}

Value CompOp::ref_eval(Stream stream, Valuation& val) const {
  // f over every prefix; prefixes on which f is defined contribute their
  // last packet to the derived stream fed to g (§3.6).
  std::vector<net::Packet> filtered;
  for (size_t i = 1; i <= stream.size(); ++i) {
    if (f_->ref_eval(stream.first(i), val).defined()) {
      filtered.push_back(stream[i - 1]);
    }
  }
  return g_->ref_eval(filtered, val);
}

Value ActionOp::ref_eval(Stream stream, Valuation& val) const {
  std::string text = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) text += ", ";
    text += args_[i]->ref_eval(stream, val).to_string();
  }
  text += ")";
  return Value::str(std::move(text), Type::Action);
}

Value ParamScopeOp::ref_eval(Stream stream, Valuation& val) const {
  // Candidate values per bound slot over the whole stream: the observed
  // valuations (the concrete guarded states of §5.1).
  std::vector<std::set<Value, decltype([](const Value& a, const Value& b) {
                         return a.compare(b) < 0;
                       })>>
      cands(n_params_);
  for (const auto& p : stream) {
    for (int i = 0; i < n_params_; ++i) {
      for (const Atom& a : cand_atoms_[i]) {
        Value v = a.candidate(p);
        if (v.defined()) cands[i].insert(std::move(v));
      }
    }
  }

  if (mode_.kind == ScopeMode::Kind::EvalAt) {
    if (stream.empty()) return Value::undef();
    for (size_t i = 0; i < mode_.keys.size() &&
                       i < static_cast<size_t>(n_params_);
         ++i) {
      val[slot_lo_ + i] = extract(mode_.keys[i], stream.back());
    }
    Value out = inner_->ref_eval(stream, val);
    for (int i = 0; i < n_params_; ++i) {
      val[slot_lo_ + i] = Value::undef();
    }
    return out;
  }

  AggAcc acc = AggAcc::identity(mode_.agg);
  auto go = [&](auto&& self, int depth) -> void {
    if (depth == n_params_) {
      acc.add(inner_->ref_eval(stream, val));
      return;
    }
    for (const Value& v : cands[depth]) {
      val[slot_lo_ + depth] = v;
      self(self, depth + 1);
    }
    val[slot_lo_ + depth] = Value::undef();
  };
  go(go, 0);
  return acc.result();
}

// ------------------------------------------------------ sparse validation

namespace {

// Checks the skip rules for one DFA over the letters in which all atoms in
// `false_mask` are false.  `gated`/`segment` machines must reject after such
// a letter (their acceptance is consumed as definedness right after
// stepping); eval-visible machines must keep their acceptance unchanged.
bool letters_skippable(const Dfa& dfa, uint64_t false_mask, bool gated,
                       bool segment) {
  for (uint64_t letter : dfa.letters) {
    if (letter & false_mask) continue;  // not a skipped letter
    for (int q = 0; q < dfa.n_states(); ++q) {
      const int q2 = dfa.step(q, letter);
      if (gated || segment) {
        // The machine must not be "defined" on a letter a skipped leaf
        // would receive: a defined filter would forward the packet, a
        // defined segment would cut (Algorithms 2-4).
        if (dfa.accept[q2]) return false;
      } else if (dfa.accept[q2] != dfa.accept[q]) {
        return false;
      }
      if (q2 == q) continue;
      // Left-erasability: skipping the letter must not change any later
      // transition.
      for (uint64_t m : dfa.letters) {
        if (dfa.step(q2, m) != dfa.step(q, m)) return false;
      }
    }
  }
  return true;
}

}  // namespace

SparseValidation validate_sparse_scope(const Op& inner,
                                       const AtomTable& table, int slot_lo,
                                       int n_params) {
  std::vector<Op::DfaUse> dfas;
  inner.collect_dfas(dfas, /*gated=*/false, /*segment=*/false);

  SparseValidation out;
  out.skip_param.assign(n_params, true);

  for (const auto& use : dfas) {
    const Dfa& dfa = *use.dfa;
    // Per-parameter atom masks within this DFA's local alphabet.
    std::vector<uint64_t> param_mask(n_params, 0);
    uint64_t scope_mask = 0;
    for (size_t i = 0; i < dfa.atom_ids.size(); ++i) {
      const Atom& a = table.at(dfa.atom_ids[i]);
      if (a.is_param && a.param >= slot_lo && a.param < slot_lo + n_params) {
        param_mask[a.param - slot_lo] |= uint64_t{1} << i;
        scope_mask |= uint64_t{1} << i;
      }
    }
    if (scope_mask == 0) continue;  // parameter-free machine

    if (out.miss_ok &&
        !letters_skippable(dfa, scope_mask, use.gated, use.segment)) {
      out.miss_ok = false;
    }
    for (int i = 0; i < n_params; ++i) {
      if (!out.skip_param[i]) continue;
      // A machine with no atoms of parameter i is exercised by *every*
      // letter at a level-i-skipped leaf, so all its letters must qualify
      // (false_mask = 0 admits every letter).
      if (!letters_skippable(dfa, param_mask[i], use.gated, use.segment)) {
        out.skip_param[i] = false;
      }
    }
  }
  return out;
}

}  // namespace netqre::core
