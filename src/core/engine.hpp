// Streaming execution engine (§2 Fig. 1, §6 runtime).
//
// Feeds processed packets into a compiled query one at a time, evaluates the
// result on demand, and dispatches actions (alert/block) to a handler — the
// controller hookup of §7.3.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "core/builder.hpp"
#include "net/packet.hpp"

namespace netqre::core {

class Engine {
 public:
  // Fired when the query's top-level action expression becomes defined.
  using ActionFn =
      std::function<void(const Value& action, const net::Packet& pkt)>;

  explicit Engine(CompiledQuery query);

  void on_packet(const net::Packet& p);
  void on_stream(const std::vector<net::Packet>& packets);

  // Current value of the query on the consumed stream.
  [[nodiscard]] Value eval() const { return query_.root->eval(*state_); }

  // For queries whose top level is a parameter scope (a parameterized sfun
  // or an aggregation): evaluate at a concrete valuation / enumerate all
  // observed valuations.
  [[nodiscard]] Value eval_at(const std::vector<Value>& key) const;
  void enumerate(const std::function<void(const std::vector<Value>&,
                                          const Value&)>& fn) const;

  void set_action_handler(ActionFn fn) { action_ = std::move(fn); }

  void reset();

  [[nodiscard]] uint64_t packets() const { return n_packets_; }
  [[nodiscard]] size_t state_memory() const { return state_->memory(); }
  [[nodiscard]] const CompiledQuery& query() const { return query_; }
  [[nodiscard]] const OpState& state() const { return *state_; }

 private:
  CompiledQuery query_;
  StateBox state_;
  Valuation val_;
  ActionFn action_;
  uint64_t n_packets_ = 0;
  const ParamScopeOp* top_scope_ = nullptr;  // when root is a scope
  std::set<std::string> fired_;  // action dedup (one fire per action text)
};

}  // namespace netqre::core
