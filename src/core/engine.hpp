// Streaming execution engine (§2 Fig. 1, §6 runtime).
//
// Feeds processed packets into a compiled query one at a time, evaluates the
// result on demand, and dispatches actions (alert/block) to a handler — the
// controller hookup of §7.3.
//
// Telemetry (src/obs): the engine exports the quantities the paper's
// evaluation plots — packets consumed, sampled per-packet latency, action
// fires, and guarded-state size/memory — as process-wide metrics, and can
// additionally record a per-op profile (eval counts, state transitions per
// tree node) when enable_profiling() is on.  All of it compiles to nothing
// under -DNETQRE_TELEMETRY=OFF.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "core/builder.hpp"
#include "core/codegen.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace netqre::core {

// Which execution tier runs the query.  Auto consults the certificate gate
// (CompiledQuery::gate) and the structural proof of analyze_spec_explained;
// the NETQRE_FORCE_TIER environment variable ("interpreted" / "compiled")
// overrides Auto for A/B runs.  An explicit Interpreted/Compiled argument
// wins over the environment (tests pin tiers programmatically).
enum class EngineTier : uint8_t { Auto, Interpreted, Compiled };

// Resolves the NETQRE_FORCE_TIER environment override; Auto when unset or
// unrecognized.  Exposed so every runtime (Engine, QuerySet) applies the
// same A/B override.
[[nodiscard]] EngineTier env_forced_tier();

// Tier selection shared by Engine and QuerySet::load: resolves Auto through
// the environment override and the certificate gate, runs the structural
// proof when the compiled tier is requested or allowed, and returns the
// decision (plan present = compiled tier) with its structured reason chain.
[[nodiscard]] SpecDecision decide_tier(const CompiledQuery& query,
                                       EngineTier tier);

// One row of a result snapshot: a rendered scope key (top-level parameter
// values joined with ','; "value" for closed queries) and the numeric
// result.  The shape the time-series store (src/store) ingests.
struct ResultSample {
  std::string key;
  double value = 0.0;
};

class Engine {
 public:
  // Fired when the query's top-level action expression becomes defined.
  using ActionFn =
      std::function<void(const Value& action, const net::Packet& pkt)>;

  explicit Engine(CompiledQuery query, EngineTier tier = EngineTier::Auto);

  void on_packet(const net::Packet& p);
  // Batched ingestion: advances the query over every packet in the span
  // with telemetry (latency sample, packet counter, state-size schedule)
  // amortized to once per batch.  Query state after on_batch(b) is
  // bit-identical to calling on_packet for each packet of b in order.  The
  // latency histogram receives two observations per batch: the batch's
  // mean ns/packet, and the max of the per-packet latencies sampled every
  // kLatencySampleEvery packets within the batch — the mean alone would
  // hide tail behavior inside large batches, flattening p99/p999.  When an
  // action handler is installed on an action-typed query, dispatch falls
  // back to the per-packet path so fires keep their exact packet context.
  void on_batch(std::span<const net::Packet> batch);
  void on_stream(const std::vector<net::Packet>& packets);

  // Current value of the query on the consumed stream.
  [[nodiscard]] Value eval() const;

  // For queries whose top level is a parameter scope (a parameterized sfun
  // or an aggregation): evaluate at a concrete valuation / enumerate all
  // observed valuations.
  [[nodiscard]] Value eval_at(const std::vector<Value>& key) const;
  void enumerate(const std::function<void(const std::vector<Value>&,
                                          const Value&)>& fn) const;

  void set_action_handler(ActionFn fn) { action_ = std::move(fn); }

  // Result snapshot hook for the time-series store: appends one
  // ResultSample per currently-defined result.  Parameterized queries
  // enumerate every observed valuation (key = values joined with ',');
  // closed queries emit a single "value" dimension.  Undefined results are
  // skipped — the store records them as gaps.  Must be called from the
  // thread driving the engine (it reads live query state).
  void snapshot_results(std::vector<ResultSample>& out) const;

  void reset();

  [[nodiscard]] uint64_t packets() const { return n_packets_; }
  [[nodiscard]] size_t state_memory() const;
  [[nodiscard]] const CompiledQuery& query() const { return query_; }
  [[nodiscard]] const OpState& state() const { return *state_; }

  // ---- execution tier ----------------------------------------------------
  // "specialized" when the compiled tier is live, else "interpreted".
  [[nodiscard]] const char* tier() const {
    return spec_ ? "specialized" : "interpreted";
  }
  // Why this tier was selected (structured reason from the eligibility
  // proof, or the forced/gate short-circuit).
  [[nodiscard]] const std::string& tier_reason() const {
    return decision_.reason;
  }
  // Proof steps leading to the decision (proven sub-shapes, then the
  // obstruction) — rendered by netqre-lint --explain-tier.
  [[nodiscard]] const std::vector<std::string>& tier_chain() const {
    return decision_.chain;
  }

  // ---- profiling ---------------------------------------------------------
  // Starts recording per-op eval/transition counts (numbering the op tree in
  // preorder if needed).  Cheap but not free: one predicted branch plus a
  // vector increment per op step.  Survives reset().
  void enable_profiling();
  // Per-node counters; nullptr unless enable_profiling() was called.
  [[nodiscard]] const OpProfile* profile() const { return prof_.get(); }
  // Preorder node list matching OpProfile indices (empty until profiling).
  [[nodiscard]] const std::vector<const Op*>& indexed_ops() const {
    return op_index_;
  }
  // Flushes the per-op profile into the global per-kind counters
  // `netqre_op_steps_total{kind=...}` / `netqre_op_transitions_total{...}`
  // and zeroes the profile, so repeated flushes never double-count.
  void publish_op_metrics();

  // Updates the state-size gauges now (also done automatically on a
  // doubling packet schedule, after on_stream, and on reset()).
  void sample_state_metrics();

  // Latency sampling interval (power of two; mask on the packet count).
  static constexpr uint64_t kLatencySampleEvery = 64;
  // A sampled packet slower than this lands a SlowPacket event in the
  // flight recorder (well above any healthy per-packet cost, so the ring
  // only records genuine outliers).
  static constexpr uint64_t kSlowPacketTraceNs = 65'536;
  // State-size gauges walk the whole guard trie, so a fixed cadence would
  // cost O(live states) per interval — on large tries that halves
  // throughput.  Instead the sample points double from kStateSampleFirst
  // up to a kStateSampleMaxInterval refresh period: O(log) walks over any
  // run prefix, so the amortized per-packet cost vanishes, while
  // on_stream()/reset() boundaries still publish exact values.
  static constexpr uint64_t kStateSampleFirst = 1024;
  static constexpr uint64_t kStateSampleMaxInterval = 1ull << 20;

 private:
  void select_tier(EngineTier tier);

  CompiledQuery query_;
  StateBox state_;
  std::unique_ptr<SpecializedMonitor> spec_;  // compiled tier, when live
  SpecDecision decision_;
  Valuation val_;
  ActionFn action_;
  uint64_t n_packets_ = 0;
  uint64_t next_state_sample_ = kStateSampleFirst;
  const ParamScopeOp* top_scope_ = nullptr;  // when root is a scope
  std::set<std::string> fired_;  // action dedup (one fire per action text)

  std::unique_ptr<OpProfile> prof_;
  std::vector<const Op*> op_index_;

  // Cached registry handles (registration is the cold path; these make the
  // hot path one relaxed atomic RMW).  Stubs under NETQRE_TELEMETRY=OFF.
  obs::Counter* packets_total_;
  obs::Counter* actions_total_;
  obs::Histogram* latency_ns_;
  obs::Gauge* state_bytes_;
  obs::Gauge* guarded_states_;
};

}  // namespace netqre::core
