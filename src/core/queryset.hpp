// Multi-tenant QuerySet runtime (ROADMAP "multi-tenant query server").
//
// Production monitoring runs many tenants' queries over one packet feed —
// CoMo's core-vs-modules split and netdata's many-collectors-one-daemon
// model are the exemplars.  A QuerySet evaluates N compiled queries per
// PacketBatch with the per-packet work shared across tenants:
//
//   - decode once: one pass over the batch feeds every query;
//   - classify once: the non-Param predicate atoms of every compiled-tier
//     query are deduplicated into one pool, evaluated once per packet, and
//     each query's letter is assembled from the pooled truth bits (a query
//     references atom results by pool index);
//   - the per-packet field cache is armed once per packet for all
//     interpreted queries and Generic atoms, so payload scans and custom
//     fields parse once no matter how many queries read them.
//
// Each query keeps its own state, tier (SpecializedMonitor or interpreter,
// selected by the same certificate-gated decide_tier as Engine), obs
// counters, and a state-memory quota with stalest-key eviction so one
// tenant's key blowup cannot OOM the daemon.
//
// Dynamic lifecycle: load()/unload() swap an immutable Roster snapshot
// (copy-on-write behind a small mutex) that on_batch() reads once per
// batch.  Loads and unloads therefore take effect at a batch boundary
// without pausing the feed — no packet is ever dropped or double-counted —
// and a freshly loaded query starts from the same blank state a new Engine
// would, which is exactly the semantics of attaching a monitor mid-stream.
// Query state is only ever stepped by the feeding thread; any thread may
// load/unload or read status().
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "net/packet_view.hpp"

namespace netqre::core {

// Cross-thread-readable view of one loaded query (the /api/v1/queries row).
struct QueryStatus {
  std::string name;
  std::string tier;    // "specialized" | "interpreted"
  std::string reason;  // structured tier-selection reason
  uint64_t packets = 0;
  size_t state_bytes = 0;
  size_t quota_bytes = 0;  // 0 = unlimited
  uint64_t evicted_keys = 0;   // compiled tier: stalest keys dropped
  uint64_t quota_resets = 0;   // interpreted tier: full-state resets
  // Attributed share of the set's shared per-packet work (decode +
  // deduplicated atom pool), in parts per million; shares sum to ~1e6
  // across the loaded queries.  See the cost model at Roster::build.
  uint32_t cpu_share_ppm = 0;
};

class QuerySet {
 public:
  struct LoadOptions {
    EngineTier tier = EngineTier::Auto;
    // Per-query state-memory budget in bytes; 0 inherits the set default.
    // On breach the compiled tier evicts stalest keys, the interpreted tier
    // (whose guard trie has no per-leaf age) resets the query's state and
    // counts a quota_reset.
    size_t state_quota_bytes = 0;
  };

  // `default_quota_bytes` applies to queries loaded without an explicit
  // quota; 0 = unlimited.
  explicit QuerySet(size_t default_quota_bytes = 0);
  ~QuerySet();

  QuerySet(const QuerySet&) = delete;
  QuerySet& operator=(const QuerySet&) = delete;

  // Loads a compiled query under `name`; false (and no change) when the
  // name is taken.  Callable from any thread, including while another
  // thread feeds packets: the new query joins at the next batch boundary
  // with blank state.  Throws when the query is empty.
  bool load(const std::string& name, CompiledQuery query, LoadOptions opt);
  bool load(const std::string& name, CompiledQuery query) {
    return load(name, std::move(query), LoadOptions());
  }

  // Unloads (drops all state of) `name`; false when absent.  Takes effect
  // at the next batch boundary.
  bool unload(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] size_t size() const;

  // Feeds a decoded batch to every loaded query (one caller thread at a
  // time; this is the stepping thread).
  void on_batch(std::span<const net::Packet> batch);
  void on_packet(const net::Packet& p) { on_batch({&p, 1}); }

  // Packets ingested by the set (counted once, not per query).
  [[nodiscard]] uint64_t packets() const {
    return total_packets_.load(std::memory_order_relaxed);
  }

  // ---- per-query results (stepping thread, or any thread while no feed
  // ---- is running; these read live query state) --------------------------
  [[nodiscard]] Value eval(std::string_view name) const;
  [[nodiscard]] Value eval_at(std::string_view name,
                              const std::vector<Value>& key) const;
  void enumerate(std::string_view name,
                 const std::function<void(const std::vector<Value>&,
                                          const Value&)>& fn) const;
  // Appends one ResultSample per defined result of `name` (same shape as
  // Engine::snapshot_results).
  void snapshot_results(std::string_view name,
                        std::vector<ResultSample>& out) const;
  // Snapshot of every loaded query, keyed by query name.
  void snapshot_all(
      std::vector<std::pair<std::string, std::vector<ResultSample>>>& out)
      const;

  // True when `name` is loaded and closed (no top-level parameters): its
  // snapshot emits the single "value" dimension.
  [[nodiscard]] bool is_scalar(std::string_view name) const;

  // Refreshes every query's state-size gauge (and enforces quotas) now —
  // also done automatically every kQuotaCheckEvery packets per query.
  // Stepping thread only.
  void sample_state_metrics();

  // ---- cross-thread status ----------------------------------------------
  [[nodiscard]] std::vector<QueryStatus> status() const;
  [[nodiscard]] std::optional<QueryStatus> status(std::string_view name) const;

  // Shared-work diagnostics: deduplicated pool size vs the total atom
  // references of the loaded compiled-tier queries.
  [[nodiscard]] size_t atom_pool_size() const;
  [[nodiscard]] size_t atom_refs() const;

  // Packet interval between quota checks (power of two; a breach is
  // detected within this many packets of occurring).
  static constexpr uint64_t kQuotaCheckEvery = 8192;

 private:
  struct Slot;
  struct Roster;

  [[nodiscard]] std::shared_ptr<const Roster> roster() const;
  [[nodiscard]] std::shared_ptr<Slot> find_slot(std::string_view name) const;
  void on_batch_columnar(const Roster& r, std::span<const net::Packet> batch);
  void on_batch_rowwise(const Roster& r, std::span<const net::Packet> batch);
  void rebuild_roster_locked();
  static void enforce_quota(Slot& s);
  static QueryStatus status_of(const Slot& s);

  mutable std::mutex mu_;                  // guards roster_ swaps
  std::shared_ptr<const Roster> roster_;   // immutable; COW on load/unload
  size_t default_quota_ = 0;
  std::atomic<uint64_t> total_packets_{0};
  std::vector<uint8_t> atom_bits_;    // per-packet scratch (pool > 64 path)
  std::vector<uint64_t> atom_masks_;  // per-batch pool truths, one mask/pkt
  std::vector<uint64_t> letters_scratch_;           // per-query batch letters
  std::vector<std::vector<uint64_t>> key_scratch_;  // per key-group keys
  Valuation no_params_;               // empty valuation for pool atoms
};

// Sharded QuerySet: the ParallelEngine topology (dispatcher thread feeding
// bounded per-worker queues, one worker per shard) with a full QuerySet per
// shard, so N queries share each shard's decode/classify pass.  Hash
// partitioning keeps per-shard key sets disjoint; results merge exactly
// like ParallelEngine's.  load()/unload() broadcast to every shard and are
// safe against a concurrent feed (each shard swaps at its own batch
// boundary; a packet is never split across two roster versions because
// partitioning is per-packet).
class ParallelQuerySet {
 public:
  using Partitioner = std::function<size_t(const net::Packet&)>;

  explicit ParallelQuerySet(int n_workers, size_t default_quota_bytes = 0,
                            Partitioner partitioner = nullptr);
  ~ParallelQuerySet();

  ParallelQuerySet(const ParallelQuerySet&) = delete;
  ParallelQuerySet& operator=(const ParallelQuerySet&) = delete;

  // Loads into every shard; false when the name is already taken.
  bool load(const std::string& name, const CompiledQuery& query,
            QuerySet::LoadOptions opt = {});
  bool unload(std::string_view name);
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  // Dispatcher-side feed (moves packets into shard queues; blocks on a
  // saturated shard — same backpressure contract as ParallelEngine).
  void feed(net::PacketBatch&& batch);
  void feed(const std::vector<net::Packet>& packets);
  // Flushes the queues and joins the workers.
  void finish();

  // Merged snapshot of every loaded query, delivered to `done` on the last
  // worker to finish (after finish(): synchronously).  Scalar queries emit
  // per-shard "shardN" dimensions, parameterized keys merge by sum — the
  // ParallelEngine::snapshot_results_async contract, per query.
  void snapshot_all_async(
      std::function<void(
          std::vector<std::pair<std::string, std::vector<ResultSample>>>)>
          done);

  // Merged per-query status (packets/state/evictions summed across shards;
  // tier fields from shard 0 — identical everywhere by construction).
  [[nodiscard]] std::vector<QueryStatus> status() const;
  [[nodiscard]] uint64_t packets() const;
  [[nodiscard]] int workers() const { return static_cast<int>(shards_.size()); }
  // One shard's set, for post-finish() inspection in tests.
  [[nodiscard]] const QuerySet& shard_set(int shard) const;

 private:
  struct Shard;
  static constexpr size_t kBatch = 4096;
  static constexpr size_t kMaxQueuedBatches = 8;

  std::vector<std::unique_ptr<Shard>> shards_;
  Partitioner partitioner_;
  std::vector<std::vector<net::Packet>> pending_;
  bool finished_ = false;
};

}  // namespace netqre::core
