// PSRE — parameterized symbolic regular expressions (§3.1) — and their
// compilation to automata.
//
// Atoms are Formulas over parameterized packet predicates.  A PSRE compiles
// (via a Thompson NFA and subset construction) to a complete DFA whose
// alphabet is the set of truth assignments to the atoms occurring in the
// expression; at runtime a packet + valuation is turned into one assignment
// and drives a single table lookup (§5.1 instantiation).  Intersection and
// complement are supported through DFA product/complement, matching the
// predicate-level `&` and `!` of Fig. 2 lifted to expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/predicate.hpp"

namespace netqre::core {

struct Re {
  enum class Kind : uint8_t {
    Epsilon,
    Pred,    // single packet satisfying `pred`
    Concat,
    Alt,
    Star,
    Plus,
    Opt,
    And,     // intersection
    Not,     // complement (over the full packet alphabet)
  };

  Kind kind = Kind::Epsilon;
  Formula pred = Formula::make_true();
  std::vector<Re> kids;

  static Re eps() { return Re{}; }
  static Re pred_of(Formula f) {
    Re r;
    r.kind = Kind::Pred;
    r.pred = std::move(f);
    return r;
  }
  static Re any() { return pred_of(Formula::make_true()); }
  static Re concat(Re a, Re b) { return nary(Kind::Concat, std::move(a), std::move(b)); }
  static Re alt(Re a, Re b) { return nary(Kind::Alt, std::move(a), std::move(b)); }
  static Re star(Re a) { return unary(Kind::Star, std::move(a)); }
  static Re plus(Re a) { return unary(Kind::Plus, std::move(a)); }
  static Re opt(Re a) { return unary(Kind::Opt, std::move(a)); }
  static Re conj(Re a, Re b) { return nary(Kind::And, std::move(a), std::move(b)); }
  static Re negate(Re a) { return unary(Kind::Not, std::move(a)); }
  // `.*` — matches every stream.
  static Re all() { return star(any()); }

  [[nodiscard]] std::string to_string(const AtomTable& table) const;

 private:
  static Re unary(Kind k, Re a) {
    Re r;
    r.kind = k;
    r.kids.push_back(std::move(a));
    return r;
  }
  static Re nary(Kind k, Re a, Re b) {
    Re r;
    r.kind = k;
    r.kids.push_back(std::move(a));
    r.kids.push_back(std::move(b));
    return r;
  }
};

// A complete, minimized DFA over truth assignments to `atom_ids`.
// Letters are local: bit i of a letter is the truth of atom `atom_ids[i]`.
class Dfa {
 public:
  int start = 0;
  std::vector<bool> accept;
  std::vector<int> atom_ids;
  // Dense transition table: next = trans[state << n_bits | letter].
  std::vector<int32_t> trans;

  [[nodiscard]] int n_states() const { return static_cast<int>(accept.size()); }
  [[nodiscard]] int n_bits() const { return static_cast<int>(atom_ids.size()); }

  [[nodiscard]] int step(int state, uint64_t letter) const {
    return trans[(static_cast<size_t>(state) << n_bits()) | letter];
  }

  // Computes the local letter for a packet under a valuation.
  [[nodiscard]] uint64_t letter_of(const AtomTable& table,
                                   const net::Packet& p,
                                   const Valuation& val) const {
    uint64_t bits = 0;
    for (size_t i = 0; i < atom_ids.size(); ++i) {
      if (table.at(atom_ids[i]).eval(p, val)) bits |= uint64_t{1} << i;
    }
    return bits;
  }

  [[nodiscard]] bool accepts_empty() const { return accept[start]; }
  // True if no string is accepted from `state`.
  [[nodiscard]] bool is_dead(int state) const;
  // True if the language is empty.
  [[nodiscard]] bool empty_language() const { return is_dead(start); }

  // All satisfiable letters (assignment-consistent), cached at build time.
  std::vector<uint64_t> letters;
};

// Syntactic nullability: true when `re` accepts the empty stream.  Exact for
// every Re (complement flips it), and needs no automaton construction — used
// by the static ambiguity lint (NQ005) before committing to a DFA build.
bool re_nullable(const Re& re);

// Compiles a PSRE to a minimal complete DFA.  Throws std::runtime_error when
// the expression references more than `kMaxAtoms` distinct atoms.
inline constexpr int kMaxAtoms = 20;
Dfa compile_regex(const Re& re, const AtomTable& table);

// Product construction over the union alphabet; `mode`: 0 = intersection,
// 1 = union.  Used by And and by the ambiguity checks.
Dfa dfa_product(const Dfa& a, const Dfa& b, const AtomTable& table, int mode);

// Unambiguity checks (§3.3/§3.4, implemented as product reachability).
// concat: no stream splits as D_f · D_g in two different positions.
bool concat_unambiguous(const Dfa& f, const Dfa& g, const AtomTable& table);
// star: no stream factors into D_f-segments in two different ways.  Also
// false when f accepts the empty stream (infinitely many decompositions).
bool star_unambiguous(const Dfa& f, const AtomTable& table);

}  // namespace netqre::core
