// Flat open-addressing hash map keyed by Value.
//
// The guard trie (ParamScopeOp) does a handful of child lookups per packet
// on maps that range from empty spines to hundreds of thousands of guarded
// states; std::unordered_map pays a prime modulus plus two dependent cache
// misses per find.  This table uses power-of-two capacity, linear probing
// over a dense control-byte + hash array (the fat key/value slots are only
// touched on a hash match), and rehashing never re-hashes keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/value.hpp"

namespace netqre::core {

// Deletion uses tombstones, never relocation: surviving entries keep their
// slots, so (as with node-based maps) erase(it) does not disturb an
// in-progress iteration — the guard-trie fold pass relies on that.
template <class T>
class ValueMap {
  enum class Ctrl : uint8_t { kEmpty, kFull, kTomb };
  struct Slot {
    std::pair<Value, T> kv;
  };

 public:
  template <bool Const>
  class Iter {
    using MapPtr = std::conditional_t<Const, const ValueMap*, ValueMap*>;

   public:
    Iter() = default;
    auto& operator*() const { return m_->slots_[i_].kv; }
    auto* operator->() const { return &m_->slots_[i_].kv; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }

   private:
    friend class ValueMap;
    Iter(MapPtr m, size_t i) : m_(m), i_(i) {}
    void skip() {
      while (i_ < m_->ctrl_.size() && m_->ctrl_[i_] != Ctrl::kFull) ++i_;
    }
    MapPtr m_ = nullptr;
    size_t i_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  ValueMap() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t size() const { return size_; }

  iterator begin() {
    iterator it(this, 0);
    it.skip();
    return it;
  }
  iterator end() { return iterator(this, ctrl_.size()); }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.skip();
    return it;
  }
  const_iterator end() const { return const_iterator(this, ctrl_.size()); }

  iterator find(const Value& k) { return iterator(this, find_idx(k)); }
  const_iterator find(const Value& k) const {
    return const_iterator(this, find_idx(k));
  }

  // Inserts (k, move(v)) unless k is present; unordered_map's return shape.
  std::pair<iterator, bool> emplace(const Value& k, T v) {
    if ((size_ + tombs_ + 1) * 4 > ctrl_.size() * 3) grow();
    const size_t h = k.hash();
    const size_t mask = ctrl_.size() - 1;
    size_t i = h & mask;
    size_t reuse = SIZE_MAX;  // first tombstone crossed, if any
    while (true) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) {
        const size_t at = reuse != SIZE_MAX ? reuse : i;
        if (ctrl_[at] == Ctrl::kTomb) --tombs_;
        ctrl_[at] = Ctrl::kFull;
        hashes_[at] = h;
        slots_[at].kv.first = k;
        slots_[at].kv.second = std::move(v);
        ++size_;
        return {iterator(this, at), true};
      }
      if (c == Ctrl::kFull && hashes_[i] == h && slots_[i].kv.first == k) {
        return {iterator(this, i), false};
      }
      if (c == Ctrl::kTomb && reuse == SIZE_MAX) reuse = i;
      i = (i + 1) & mask;
    }
  }

  size_t erase(const Value& k) {
    const size_t i = find_idx(k);
    if (i == ctrl_.size()) return 0;
    erase_at(i);
    return 1;
  }
  iterator erase(iterator it) {
    erase_at(it.i_);
    it.skip();  // the slot is now a tombstone; advance to the next entry
    return it;
  }

 private:
  void erase_at(size_t i) {
    ctrl_[i] = Ctrl::kTomb;
    slots_[i].kv.first = Value::undef();
    slots_[i].kv.second = T{};
    --size_;
    ++tombs_;
  }

  [[nodiscard]] size_t find_idx(const Value& k) const {
    if (size_ == 0) return ctrl_.size();
    const size_t h = k.hash();
    const size_t mask = ctrl_.size() - 1;
    size_t i = h & mask;
    while (true) {
      const Ctrl c = ctrl_[i];
      if (c == Ctrl::kEmpty) return ctrl_.size();
      if (c == Ctrl::kFull && hashes_[i] == h && slots_[i].kv.first == k) {
        return i;
      }
      i = (i + 1) & mask;
    }
  }

  void grow() {
    // Double when genuinely full; same capacity just flushes tombstones.
    const size_t cap =
        ctrl_.empty() ? 8 : ((size_ + 1) * 2 > ctrl_.size() ? ctrl_.size() * 2
                                                            : ctrl_.size());
    std::vector<Slot> old = std::move(slots_);
    std::vector<Ctrl> old_ctrl = std::move(ctrl_);
    std::vector<size_t> old_hashes = std::move(hashes_);
    slots_.clear();
    slots_.resize(cap);
    ctrl_.assign(cap, Ctrl::kEmpty);
    hashes_.assign(cap, 0);
    tombs_ = 0;
    const size_t mask = cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != Ctrl::kFull) continue;
      size_t j = old_hashes[i] & mask;
      while (ctrl_[j] != Ctrl::kEmpty) j = (j + 1) & mask;
      ctrl_[j] = Ctrl::kFull;
      hashes_[j] = old_hashes[i];
      slots_[j].kv = std::move(old[i].kv);
    }
  }

  std::vector<Slot> slots_;
  std::vector<Ctrl> ctrl_;
  // Cached key hashes, dense and parallel to slots_: probes compare control
  // byte + hash without touching the fat slot, so only the final hit (or a
  // rare hash collision) loads the key/value cache lines.
  std::vector<size_t> hashes_;
  size_t size_ = 0;
  size_t tombs_ = 0;
};

}  // namespace netqre::core
