// Parsing functions (§3): extract typed values from packets.
//
// Built-in transport-level fields are a fast enum dispatch; application-level
// fields (SIP, DNS, HTTP, SMTP) are registered parsing functions that inspect
// the payload on demand — the customizable parsing functions the paper
// mentions ("can be customized by the user, for example, to extract
// application-level headers").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "core/value.hpp"
#include "net/packet.hpp"

namespace netqre::core {

enum class Field : uint8_t {
  SrcIp,
  DstIp,
  SrcPort,
  DstPort,
  Proto,
  Syn,
  Ack,
  Fin,
  Rst,
  Psh,
  Seq,
  AckNo,
  Len,       // bytes on the wire
  PayLen,    // application payload bytes
  Time,
  ConnId,    // canonical (direction-independent) connection
  Payload,   // raw payload string
  Custom,    // dispatched through the registry by custom_id
};

// Reference to a field: a built-in or a registered custom parsing function.
struct FieldRef {
  Field field = Field::SrcIp;
  int custom_id = -1;

  friend bool operator==(const FieldRef&, const FieldRef&) = default;
};

// Extracts a built-in field from a packet.
Value extract_builtin(Field f, const net::Packet& p);

// Registry of custom parsing functions, keyed by name (e.g. "sip.method").
// The standard application-layer parsers are pre-registered.
class FieldRegistry {
 public:
  using ParseFn = std::function<Value(const net::Packet&)>;

  static FieldRegistry& instance();

  // Registers `fn` under `name`; returns its id.  Re-registering a name
  // replaces the function but keeps the id.
  int register_fn(const std::string& name, ParseFn fn);

  [[nodiscard]] std::optional<int> lookup(const std::string& name) const;
  [[nodiscard]] const std::string& name_of(int id) const;
  [[nodiscard]] Value extract(int id, const net::Packet& p) const;

 private:
  FieldRegistry();
  std::vector<std::string> names_;
  std::vector<ParseFn> fns_;
  std::unordered_map<std::string, int> by_name_;
};

// Invalidates the per-packet cache of custom (application-layer) field
// extractions.  The engine calls this once per packet so that repeated atom
// evaluations against the same packet parse the payload only once.
void begin_packet_fields();

// Resolves a field name ("srcip", "sip.method", ...) to a FieldRef.
std::optional<FieldRef> resolve_field(const std::string& name);
std::string field_name(const FieldRef& ref);
Value extract(const FieldRef& ref, const net::Packet& p);

// Declared result type of a field, for the type checker.
Type field_type(const FieldRef& ref);

// --- Application-layer helpers (used by the registry and by baselines) ---

// First token of the payload if it is a SIP request method (INVITE, BYE, ...),
// or "SIP/2.0 <code>" responses mapped to their status code as string.
std::string_view sip_method(std::string_view payload);
// Value of a SIP header such as "Call-ID" (case-insensitive), or "".
std::string_view sip_header(std::string_view payload, std::string_view name);
// DNS question name from a UDP DNS message, or "".
std::string dns_qname(std::string_view payload);
// DNS QTYPE of the first question, or 0.
int dns_qtype(std::string_view payload);
// DNS header flags: true if the message is a response.
bool dns_is_response(std::string_view payload);
// DNS answer record count.
int dns_ancount(std::string_view payload);

}  // namespace netqre::core
