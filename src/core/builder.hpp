// QueryBuilder — the compilation entry point (§5).
//
// Builds the operator tree from expression combinators, while performing the
// paper's compile-time work: PSRE → minimal DFA (§5.1, §6), domain-automaton
// construction, split/iter unambiguity checking (§3.3), and the sparse-mode
// validation for parameter scopes (DESIGN.md §5).  Both the NetQRE language
// front-end (src/lang) and programmatic users (src/apps, tests) target this
// API.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ops.hpp"

namespace netqre::core {

// A recorded split/iter decomposition point: the operand domain automata
// plus the builder's unambiguity verdict.  The builder already constructs
// these DFAs for the §3.3 check; keeping them alongside the op tree lets the
// static certifier (src/lang/certify) re-run the product construction with
// witness tracking instead of recompiling the domains.
struct DecompSite {
  const Op* op = nullptr;  // the SplitOp / IterOp (owned by the query root)
  bool is_iter = false;
  bool ambiguous = false;  // builder verdict: possibly ambiguous (§3.3)
  std::shared_ptr<const Dfa> left;   // f's domain automaton
  std::shared_ptr<const Dfa> right;  // g's domain (null for iter)
};

// Verdicts distilled from a ResourceCertificate (src/lang/certify), fed into
// the specializer's eligibility proof without reversing the core → lang
// layering.  The specialized back-end assumes an unambiguous query with
// per-key O(1) state; a gate with either bit cleared vetoes specialization
// even when the op-tree shape matches.
struct SpecGate {
  bool unambiguous = true;    // every split/iter decomposition proven (§3.3)
  bool state_bounded = true;  // per-key register count proven finite
  std::string detail;         // human-readable reason when a bit is false
};

// A fully compiled query ready to run on an Engine.
struct CompiledQuery {
  OpPtr root;
  std::shared_ptr<const AtomTable> table;
  int n_slots = 0;
  Type result_type = Type::Int;
  // Names of top-level parameters (empty when the query is closed).
  std::vector<std::string> param_names;
  // Compile-time diagnostics (ambiguous split/iter, eager scopes, ...).
  std::vector<std::string> warnings;
  // Every split/iter built for this query, in construction order.  Sites
  // whose op was discarded before finish() keep node_id() == -1 and are
  // ignored by consumers.
  std::vector<DecompSite> decomp_sites;
  // Certificate verdicts distilled by the lang layer (compile_program runs
  // the static certifier and records its gate here).  Engines auto-select
  // the compiled tier only when a gate is present and clean: a builder-only
  // query (tests, fuzzing) carries no gate and defaults to the interpreter
  // unless a tier is forced explicitly.
  std::optional<SpecGate> gate;
};

class QueryBuilder {
 public:
  // An expression under construction: operator tree + domain regex + type.
  struct Expr {
    std::shared_ptr<Op> op;
    Re dom = Re::all();
    Type type = Type::Int;
  };

  QueryBuilder();

  // ---- parameters -------------------------------------------------------
  int new_param(const std::string& name, Type t);
  [[nodiscard]] int n_slots() const { return n_slots_; }

  // ---- predicates -------------------------------------------------------
  Formula atom_eq(const std::string& field, Value lit);
  Formula atom_cmp(const std::string& field, CmpOp op, Value lit);
  Formula atom_param(const std::string& field, int slot, int64_t offset = 0);
  // is_tcp(c): TCP packet belonging to connection parameter `slot`.
  Formula is_tcp_conn(int slot);

  // ---- expressions ------------------------------------------------------
  Expr constant(Value v);
  Expr last_field(const std::string& field);
  Expr param_ref(int slot);
  Expr match(Re re);
  Expr cond(Re re, Expr then_e);
  Expr cond_else(Re re, Expr then_e, Expr else_e);
  Expr bin(BinKind kind, Expr a, Expr b);
  Expr split(Expr f, Expr g, AggOp agg);
  Expr split3(Expr a, Expr b, Expr c, AggOp agg);
  Expr iter(Expr f, AggOp agg);
  Expr comp(Expr f, Expr g);
  Expr action(const std::string& name, std::vector<Expr> args);
  // Value-level conditional (policy expressions, §4).
  Expr ternary(Expr c, Expr then_e, std::optional<Expr> else_e);
  // Conn component projection (c.srcip).
  Expr proj(ProjOp::Component comp, Expr sub);
  // aggop{ inner | slots }: aggregation over parameters (§3.5).
  Expr aggregate(AggOp agg, const std::vector<int>& slots, Expr inner);
  // inner(keys): per-packet instantiation, e.g. hh(last.srcip, last.dstip).
  Expr eval_at(const std::vector<int>& slots,
               const std::vector<std::string>& key_fields, Expr inner);

  // ---- convenience ------------------------------------------------------
  // filter(p) = /.*[p]/ ? last   (§3.6)
  Expr filter(Formula pred);
  // Fused iter(/./ ? v, agg) (§6 incremental aggregation).
  Expr fold_const(AggOp agg, Value v);
  Expr fold_field(AggOp agg, const std::string& field);
  // count = iter(/./?1, sum)     (§3.4)
  Expr count();
  // count_size = iter(/./?size(last), sum)  (§4.1)
  Expr count_size();
  // exists(p) = /.*[p].*/ ? 1 : 0
  Expr exists(Formula pred);

  CompiledQuery finish(Expr e, std::vector<std::string> param_names = {});

  [[nodiscard]] const std::shared_ptr<AtomTable>& table() { return table_; }
  [[nodiscard]] const std::vector<std::string>& warnings() const {
    return warnings_;
  }

 private:
  std::shared_ptr<AtomTable> table_;
  int n_slots_ = 0;
  std::vector<Type> slot_types_;
  std::vector<std::string> warnings_;
  std::vector<DecompSite> decomp_sites_;

  FieldRef field_or_throw(const std::string& name);
  Dfa compile_dom(const Re& re);
};

}  // namespace netqre::core
