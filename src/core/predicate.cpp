#include "core/predicate.hpp"

#include <algorithm>
#include <cassert>

namespace netqre::core {

std::string cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
    case CmpOp::Contains: return "contains";
  }
  return "?";
}

namespace {

bool compare(CmpOp op, const Value& lhs, const Value& rhs) {
  if (op == CmpOp::Contains) {
    if (lhs.kind() != Value::Kind::Str || rhs.kind() != Value::Kind::Str) {
      return false;
    }
    return lhs.as_str().find(rhs.as_str()) != std::string::npos;
  }
  const int c = lhs.compare(rhs);
  switch (op) {
    case CmpOp::Eq: return c == 0;
    case CmpOp::Lt: return c < 0;
    case CmpOp::Le: return c <= 0;
    case CmpOp::Gt: return c > 0;
    case CmpOp::Ge: return c >= 0;
    case CmpOp::Contains: return false;
  }
  return false;
}

// param + offset, for numeric parameter values.
Value offset_value(const Value& v, int64_t offset) {
  if (offset == 0) return v;
  if (v.kind() == Value::Kind::Int) {
    return Value::integer(v.as_int() + offset, v.type());
  }
  if (v.kind() == Value::Kind::Double) {
    return Value::real(v.as_double() + offset);
  }
  return Value::undef();
}

}  // namespace

bool Atom::raw_numeric(Field f, const net::Packet& p, uint64_t& out) {
  switch (f) {
    case Field::SrcIp: out = p.src_ip; return true;
    case Field::DstIp: out = p.dst_ip; return true;
    case Field::SrcPort: out = p.src_port; return true;
    case Field::DstPort: out = p.dst_port; return true;
    case Field::Proto: out = static_cast<uint64_t>(p.proto); return true;
    case Field::Syn: out = p.syn(); return true;
    case Field::Ack: out = p.ack(); return true;
    case Field::Fin: out = p.fin(); return true;
    case Field::Rst: out = p.rst(); return true;
    case Field::Psh: out = p.psh(); return true;
    case Field::Seq: out = p.seq; return true;
    case Field::AckNo: out = p.ack_no; return true;
    case Field::Len: out = p.wire_len; return true;
    case Field::PayLen: out = p.payload.size(); return true;
    default: return false;
  }
}

bool Atom::eval(const net::Packet& p, const Valuation& val) const {
  // Fast path: plain-numeric field against an integer operand.
  uint64_t raw;
  if (raw_numeric(field.field, p, raw)) {
    int64_t rhs;
    if (!is_param) {
      if (literal.kind() != Value::Kind::Int) goto slow;
      rhs = literal.as_int();
    } else {
      if (param < 0 || static_cast<size_t>(param) >= val.size()) return false;
      const Value& v = val[param];
      if (!v.defined()) return false;  // unbound = fresh value
      if (v.kind() != Value::Kind::Int) goto slow;
      rhs = v.as_int() + offset;
    }
    {
      const auto lhs = static_cast<int64_t>(raw);
      switch (op) {
        case CmpOp::Eq: return lhs == rhs;
        case CmpOp::Lt: return lhs < rhs;
        case CmpOp::Le: return lhs <= rhs;
        case CmpOp::Gt: return lhs > rhs;
        case CmpOp::Ge: return lhs >= rhs;
        case CmpOp::Contains: return false;
      }
    }
  }
slow:
  const Value lhs = extract(field, p);
  if (!is_param) return compare(op, lhs, literal);
  assert(op == CmpOp::Eq);
  if (param < 0 || static_cast<size_t>(param) >= val.size() ||
      !val[param].defined()) {
    return false;  // unbound = fresh value, equality cannot hold
  }
  const Value rhs = offset_value(val[param], offset);
  return rhs.defined() && compare(CmpOp::Eq, lhs, rhs);
}

Value Atom::candidate(const net::Packet& p) const {
  if (!is_param || op != CmpOp::Eq) return Value::undef();
  const Value lhs = extract(field, p);
  if (offset == 0) return lhs;
  if (lhs.kind() == Value::Kind::Int) {
    return Value::integer(lhs.as_int() - offset, lhs.type());
  }
  if (lhs.kind() == Value::Kind::Double) {
    return Value::real(lhs.as_double() - offset);
  }
  return Value::undef();
}

std::string Atom::to_string() const {
  std::string rhs = is_param
      ? "$" + std::to_string(param) +
            (offset ? "+" + std::to_string(offset) : "")
      : literal.to_string();
  return field_name(field) + " " + cmp_name(op) + " " + rhs;
}

int AtomTable::intern(const Atom& a) {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i] == a) return static_cast<int>(i);
  }
  atoms_.push_back(a);
  return static_cast<int>(atoms_.size() - 1);
}

Formula Formula::conj(Formula a, Formula b) {
  if (a.kind_ == Kind::False || b.kind_ == Kind::False) return make_false();
  if (a.kind_ == Kind::True) return b;
  if (b.kind_ == Kind::True) return a;
  Formula f(Kind::And);
  f.kids_.push_back(std::move(a));
  f.kids_.push_back(std::move(b));
  return f;
}

Formula Formula::disj(Formula a, Formula b) {
  if (a.kind_ == Kind::True || b.kind_ == Kind::True) return make_true();
  if (a.kind_ == Kind::False) return b;
  if (b.kind_ == Kind::False) return a;
  Formula f(Kind::Or);
  f.kids_.push_back(std::move(a));
  f.kids_.push_back(std::move(b));
  return f;
}

Formula Formula::negate(Formula a) {
  if (a.kind_ == Kind::True) return make_false();
  if (a.kind_ == Kind::False) return make_true();
  if (a.kind_ == Kind::Not) return a.kids_[0];
  Formula f(Kind::Not);
  f.kids_.push_back(std::move(a));
  return f;
}

bool Formula::eval(const AtomTable& table, const net::Packet& p,
                   const Valuation& val) const {
  switch (kind_) {
    case Kind::True: return true;
    case Kind::False: return false;
    case Kind::Atom: return table.at(atom_).eval(p, val);
    case Kind::And:
      return std::ranges::all_of(
          kids_, [&](const Formula& k) { return k.eval(table, p, val); });
    case Kind::Or:
      return std::ranges::any_of(
          kids_, [&](const Formula& k) { return k.eval(table, p, val); });
    case Kind::Not: return !kids_[0].eval(table, p, val);
  }
  return false;
}

bool Formula::eval_bits(uint64_t bits) const {
  switch (kind_) {
    case Kind::True: return true;
    case Kind::False: return false;
    case Kind::Atom: return (bits >> atom_) & 1;
    case Kind::And:
      return std::ranges::all_of(
          kids_, [&](const Formula& k) { return k.eval_bits(bits); });
    case Kind::Or:
      return std::ranges::any_of(
          kids_, [&](const Formula& k) { return k.eval_bits(bits); });
    case Kind::Not: return !kids_[0].eval_bits(bits);
  }
  return false;
}

void Formula::collect_atoms(std::vector<int>& out) const {
  if (kind_ == Kind::Atom) {
    out.push_back(atom_);
    return;
  }
  for (const auto& k : kids_) k.collect_atoms(out);
}

std::string Formula::to_string(const AtomTable& table) const {
  switch (kind_) {
    case Kind::True: return "true";
    case Kind::False: return "false";
    case Kind::Atom: return table.at(atom_).to_string();
    case Kind::And:
      return "(" + kids_[0].to_string(table) + " && " +
             kids_[1].to_string(table) + ")";
    case Kind::Or:
      return "(" + kids_[0].to_string(table) + " || " +
             kids_[1].to_string(table) + ")";
    case Kind::Not: return "!(" + kids_[0].to_string(table) + ")";
  }
  return "?";
}

bool formula_satisfiable(const AtomTable& table, const Formula& f) {
  std::vector<int> ids;
  f.collect_atoms(ids);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) return f.eval_bits(0);
  if (ids.size() > static_cast<size_t>(kMaxSatAtoms) || ids.back() >= 64) {
    return true;  // too large to enumerate: assume satisfiable
  }
  for (uint64_t local = 0; local < (uint64_t{1} << ids.size()); ++local) {
    if (!assignment_consistent(table, ids, local)) continue;
    // eval_bits indexes by global atom id; scatter the local assignment.
    uint64_t global = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      if ((local >> i) & 1) global |= uint64_t{1} << ids[i];
    }
    if (f.eval_bits(global)) return true;
  }
  return false;
}

bool assignment_consistent(const AtomTable& table,
                           const std::vector<int>& atom_ids, uint64_t bits) {
  const size_t n = atom_ids.size();
  for (size_t i = 0; i < n; ++i) {
    const Atom& a = table.at(atom_ids[i]);
    const bool ai = (bits >> i) & 1;
    for (size_t j = i + 1; j < n; ++j) {
      const Atom& b = table.at(atom_ids[j]);
      if (!(a.field == b.field)) continue;
      const bool bj = (bits >> j) & 1;
      // Two literal Eq atoms on the same field cannot both hold with
      // different values; if the values are equal they must agree.
      if (!a.is_param && !b.is_param && a.op == CmpOp::Eq &&
          b.op == CmpOp::Eq) {
        const bool same = a.literal == b.literal;
        if (same && ai != bj) return false;
        if (!same && ai && bj) return false;
      }
      // Same parameterized atom content would have been interned together;
      // two Eq atoms on the same field with the same param but different
      // offsets cannot both hold.
      if (a.is_param && b.is_param && a.param == b.param &&
          a.offset != b.offset && ai && bj) {
        return false;
      }
      // Literal order constraints, e.g. len == 5 contradicts len < 3.
      if (!a.is_param && !b.is_param && a.op == CmpOp::Eq && ai && bj &&
          b.op != CmpOp::Eq && b.op != CmpOp::Contains) {
        if (!compare(b.op, a.literal, b.literal)) return false;
      }
      if (!a.is_param && !b.is_param && b.op == CmpOp::Eq && ai && bj &&
          a.op != CmpOp::Eq && a.op != CmpOp::Contains) {
        if (!compare(a.op, b.literal, a.literal)) return false;
      }
    }
  }
  return true;
}

}  // namespace netqre::core
