// C++ code generation — the paper's compilation back-end (§6: "the compiler
// first generates a C++ program from an input NetQRE program, which is then
// compiled by the gcc compiler into executable").
//
// The back-end is split in two:
//
//   1. analyze_spec() proves that a compiled query fits a specializable
//      shape and distills it into a SpecPlan: a single product step machine
//      (transition table + per-cell accumulator update) over a global atom
//      alphabet, plus the key-extraction and entry-creation rules that make
//      the flat table bit-identical to the interpreter's guard trie.  The
//      proof relies on the sparse-scope validation (every non-full-match
//      letter is a no-op) and, when a certificate gate is supplied, on the
//      static certifier's unambiguity / state-boundedness verdicts.
//   2. Two consumers of the plan: generate_cpp() renders it as a standalone
//      C++ translation unit (the gcc pipeline of §6), and SpecializedMonitor
//      executes it in-process.  The in-process monitor is both the fuzzer's
//      codegen oracle and the engine's compiled execution tier (Engine
//      auto-selects it behind the certificate gate).
//
// Supported shapes — the operator vocabulary of the Table-1 query families:
//
//     scope(P...){ filter >> ... >> fold }          counter family
//     scope(P...){ filter >> iter(classifier) }     per-key classifiers
//     scope(P){ scope(P'){ cond[_else] } }          distinct / superspreader
//     fold | filter >> fold | iter(classifier)      closed (keyless) queries
//
// where filters may chain, classifiers are single-packet CondOp chains, and
// scopes may nest (plan-within-plan key composition, 1-2 key parts total).
// Queries outside the vocabulary — split decompositions, Conn-keyed scopes,
// value-level ternaries — return a structured refutation chain and run on
// the interpreting runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/builder.hpp"

namespace netqre::core {

// Distilled execution plan for a specializable query.  Self-contained: DFA
// products are flattened into owned tables, so a plan outlives the query it
// was analyzed from and can be moved across shard threads freely.
struct SpecPlan {
  // How one alphabet atom is evaluated against a packet.
  struct AtomEval {
    enum class Kind : uint8_t {
      Param,    // key atom: true by construction for the looked-up entry
      FastCmp,  // raw numeric built-in field vs integer literal
      Generic,  // full Atom::eval (contains-scans, custom fields)
    };
    Kind kind = Kind::FastCmp;
    Field field = Field::Len;
    CmpOp op = CmpOp::Eq;
    int64_t literal = 0;
    Atom atom;  // Generic evaluation; also kept for diagnostics
  };
  // One scope parameter: key component extracted from a packet field.
  struct KeyPart {
    Field field = Field::Len;
    int64_t offset = 0;  // candidate = field_value - offset
    Atom atom;           // for typed Value reconstruction (enumerate keys)
  };
  // Per-cell accumulator update of the step machine.
  enum class Upd : uint8_t { None = 0, AddConst = 1, AddField = 2 };

  std::vector<KeyPart> key;  // 0 (closed query), 1 or 2 parts
  int n_top_params = 0;      // arity of the outermost scope (enumerate keys)
  std::vector<AtomEval> atoms;  // indexed by letter bit
  uint64_t param_mask = 0;      // letter bits of Param-kind atoms

  // Product step machine over the global alphabet.  Cell index is
  // (state << n_bits) | letter.
  int n_states = 1;
  int start = 0;
  int n_bits = 0;
  std::vector<int32_t> trans;
  std::vector<uint8_t> upd;      // Upd per cell
  std::vector<int64_t> upd_arg;  // AddConst amount / AddField Field enum

  // Per-entry value read-out.  Counter/classifier machines read the
  // accumulator (undefined in dead classifier states); distinct machines
  // read acceptance into then/else constants.
  bool value_is_acc = true;
  std::vector<uint8_t> acc_defined;  // per state, when value_is_acc
  std::vector<uint8_t> accept;       // per state, when !value_is_acc
  int64_t then_value = 0;
  int64_t else_value = 0;
  bool has_else = false;

  // Entry creation: mirror of the guard trie's letter-class materialization
  // test.  create[L] is true iff column L of the machine differs from the
  // column of L with every Param bit cleared — i.e. the packet's candidate
  // key can diverge from the default branch.  Entries are only created on
  // such letters, which keeps the entry set identical to the trie's.
  std::vector<uint8_t> create;

  std::string family;  // human-readable shape family (reason strings)
};

// Outcome of the eligibility proof: a plan when the query specializes, plus
// a structured reason either way — what shape was proven, or the first
// obstruction found.  No silent nullopt: every rejection names its cause.
// `chain` records the proof steps (proven sub-shapes in order, then the
// obstruction marked with a leading "✗") for --explain-tier rendering.
struct SpecDecision {
  std::optional<SpecPlan> plan;
  std::string reason;
  std::vector<std::string> chain;

  [[nodiscard]] bool specialized() const { return plan.has_value(); }
};

// Proves `query` fits a specializable shape.  `gate` (optional) carries
// the certificate verdicts; when null only the structural proof runs.
SpecDecision analyze_spec_explained(const CompiledQuery& query,
                                    const SpecGate* gate = nullptr);

// Proves `query` fits a specializable shape and returns its plan, or
// nullopt when the query must run on the interpreting runtime.
std::optional<SpecPlan> analyze_spec(const CompiledQuery& query);

// Evaluates one non-Param alphabet atom against a packet — the truth bit a
// letter carries for that atom.  Shared by SpecializedMonitor::letter_of and
// the QuerySet's deduplicated atom pool, so pooled classification stays
// bit-identical to a standalone monitor.  `no_params` is the (empty)
// valuation Generic atoms receive; Param atoms must not be passed here.
[[nodiscard]] bool eval_spec_atom(const SpecPlan::AtomEval& a,
                                  const net::Packet& p,
                                  const Valuation& no_params);

// In-process executor for a SpecPlan — the engine's compiled tier and the
// fuzzer's codegen oracle.  Open-addressing flat table keyed by the packed
// key; entry creation and liveness mirror the guard trie's materialization
// and pruning rules, so enumerate()/eval()/eval_at() are bit-identical to
// the interpreter on specialized queries.
class SpecializedMonitor {
 public:
  explicit SpecializedMonitor(SpecPlan plan);

  void on_packet(const net::Packet& p);

  // Steps the machine with a letter the caller already classified (the
  // QuerySet path: atoms are evaluated once per packet for all queries and
  // letters assembled from the shared pool).  The letter must equal what
  // letter_of(p) would return — the caller owns arming the per-packet field
  // cache before classifying Generic atoms.  on_packet(p) is exactly
  // classify + on_letter.
  void on_letter(const net::Packet& p, uint64_t letter);

  // Batched on_letter: letters[i] is packet i's classified letter.  The
  // table's two dependent loads (slot index, then entry) are prefetched a
  // few packets ahead, so consecutive probes overlap instead of serializing
  // on cache misses — the QuerySet's query-major hot path.  `keys`, when
  // non-null, supplies precomputed packed keys (keys[i] == key_of(batch[i]));
  // QuerySet shares one key array across every query with the same key
  // shape.  Equivalent to on_letter(batch[i], letters[i]) for all i.
  void on_letters(std::span<const net::Packet> batch, const uint64_t* letters,
                  const uint64_t* keys = nullptr);

  // Engine-facing surface (mirrors the interpreter's result API).
  [[nodiscard]] Value eval() const;
  [[nodiscard]] Value eval_at(const std::vector<Value>& key) const;
  void enumerate(const std::function<void(const std::vector<Value>&,
                                          const Value&)>& fn) const;
  void reset();
  [[nodiscard]] size_t memory() const;
  // Entries distinguishable from the never-observed default (the guard
  // trie's leaf count).
  [[nodiscard]] size_t entries() const;

  // Quota enforcement: drops least-recently-touched entries (halving rounds)
  // until memory() fits under `target_bytes`, releasing table capacity, and
  // returns the number of entries evicted.  Evicted keys read back as
  // never-observed defaults — a documented lossy degradation under memory
  // pressure, bounded per query by the QuerySet's quota accounting.  Closed
  // queries hold no keyed state and never evict.
  size_t evict_stalest(size_t target_bytes);

  // Raw surface used by the differential fuzzer and the codegen tests:
  // same packed keys and long-long read-out as the generated C++.
  [[nodiscard]] long long aggregate() const;
  [[nodiscard]] long long at(uint64_t key) const;
  [[nodiscard]] uint64_t key_of(const net::Packet& p) const;

  [[nodiscard]] const SpecPlan& plan() const { return plan_; }

 private:
  struct Entry {
    uint64_t key = 0;
    int32_t q = 0;
    uint8_t touched = 0;  // an accumulator update fired at least once
    uint64_t seen = 0;    // tick of the last step (stalest-key eviction)
    long long acc = 0;
  };

  void step_entry(Entry& e, uint64_t letter, const net::Packet& p);
  [[nodiscard]] uint64_t letter_of(const net::Packet& p) const;
  [[nodiscard]] bool live(const Entry& e) const {
    return e.touched || e.q != plan_.start;
  }
  [[nodiscard]] Value entry_value(const Entry& e) const;
  [[nodiscard]] Value default_value() const;  // never-observed key read-out
  [[nodiscard]] const Entry* find(uint64_t key) const;
  Entry& insert(uint64_t key, const net::Packet& p);
  void grow();

  SpecPlan plan_;
  int n_bits_ = 0;
  bool closed_ = false;
  // Non-param atoms with their letter bit, for the per-packet letter loop.
  struct EvalAtom {
    int bit;
    SpecPlan::AtomEval::Kind kind;
    Field field;
    CmpOp op;
    int64_t literal;
    Atom atom;
  };
  std::vector<EvalAtom> eval_atoms_;
  bool has_generic_ = false;  // some atom needs the packet field cache
  Valuation no_params_;       // empty valuation for Generic Atom::eval

  // Closed-query state (key.empty()).
  Entry closed_state_;
  uint64_t tick_ = 0;  // keyed steps so far; stamps Entry::seen

  // Open addressing: slot -> entry index + 1; entries in insertion order.
  std::vector<uint64_t> keys_scratch_;  // on_letters fallback key buffer
  std::vector<uint32_t> slots_;
  std::vector<Entry> entries_;
  std::vector<Value> key_vals_;  // plan_.key.size() Values per entry
};

struct GeneratedProgram {
  std::string source;       // complete translation unit
  std::string entry_class;  // name of the generated monitor class
};

// Generates specialized C++ for `query`, or nullopt when the query's shape
// is not supported by the renderer (no plan, Generic atoms that need the
// runtime's payload/custom-field machinery, or multi-field updates).
std::optional<GeneratedProgram> generate_cpp(const CompiledQuery& query,
                                             const std::string& name);

// Wraps a generated monitor in a main() that replays a pcap file and prints
// `<result> <packets> <seconds>`; used by tests and the codegen benchmark.
std::string generate_pcap_main(const GeneratedProgram& prog);

}  // namespace netqre::core
