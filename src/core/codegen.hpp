// C++ code generation — the paper's compilation back-end (§6: "the compiler
// first generates a C++ program from an input NetQRE program, which is then
// compiled by the gcc compiler into executable").
//
// The generator specializes the common query shape
//
//     scope(params){ filter(conjunction of param/literal atoms) >> fold }
//
// (heavy hitter, entropy, flow-size distribution, per-source byte counters,
// the DNS counters, ...) into a flat hash-map program equivalent to the
// hand-written baselines, after *proving* from the DFA's letter classes that
// every non-full-match letter is a no-op.  Queries outside the supported
// shape return nullopt and run on the interpreting runtime instead.
#pragma once

#include <optional>
#include <string>

#include "core/builder.hpp"

namespace netqre::core {

struct GeneratedProgram {
  std::string source;       // complete translation unit
  std::string entry_class;  // name of the generated monitor class
};

// Generates specialized C++ for `query`, or nullopt when the query's shape
// is not supported by the specializer.
std::optional<GeneratedProgram> generate_cpp(const CompiledQuery& query,
                                             const std::string& name);

// Wraps a generated monitor in a main() that replays a pcap file and prints
// `<result> <packets> <seconds>`; used by tests and the codegen benchmark.
std::string generate_pcap_main(const GeneratedProgram& prog);

}  // namespace netqre::core
