// C++ code generation — the paper's compilation back-end (§6: "the compiler
// first generates a C++ program from an input NetQRE program, which is then
// compiled by the gcc compiler into executable").
//
// The back-end is split in two:
//
//   1. analyze_spec() proves that a compiled query fits the specializable
//      shape and distills it into a SpecPlan — key atoms, DFA tables, atom
//      evaluation descriptors, and the per-accept update.  The proof relies
//      on the sparse-scope validation (every non-full-match letter is a
//      no-op), so a plan's semantics are exactly those of the interpreted
//      guard trie.
//   2. Two consumers of the plan: generate_cpp() renders it as a standalone
//      C++ translation unit (the gcc pipeline of §6), and SpecializedMonitor
//      executes it in-process with byte-for-byte identical key packing and
//      transition logic.  The in-process monitor is what the differential
//      fuzzer (src/fuzz) cross-checks on every iteration — invoking gcc per
//      random program would be infeasible.
//
// The supported shape is the common query family
//
//     scope(params){ filter(conjunction of param/literal atoms) >> fold }
//
// (heavy hitter, entropy, flow-size distribution, per-source byte counters,
// the DNS counters, ...) plus the nested-scope distinct family.  Queries
// outside the shape return nullopt and run on the interpreting runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/builder.hpp"

namespace netqre::core {

// Distilled execution plan for a specializable query.  Everything both
// back-ends need, with the shape proofs already done.
struct SpecPlan {
  // How one DFA-alphabet atom is evaluated against a packet.
  struct AtomEval {
    bool is_param = false;  // key atom: true by construction for the entry
    Field field = Field::Len;
    CmpOp op = CmpOp::Eq;
    int64_t literal = 0;
  };
  // One scope parameter: key component extracted from a packet field.
  struct KeyPart {
    Field field = Field::Len;
    int64_t offset = 0;  // candidate = field_value - offset
  };

  std::vector<KeyPart> key;          // 1 or 2 parts
  std::vector<AtomEval> atoms;       // indexed by DFA letter bit
  const Dfa* dfa = nullptr;          // owned by the CompiledQuery's op tree
  // Per-accept update: S1 folds fold_expr into the entry accumulator; S2
  // contributes then/else values at evaluation time instead.
  bool has_fold = false;
  bool fold_use_field = false;
  Field fold_field = Field::Len;
  int64_t fold_const = 0;
  int64_t then_value = 0;
  int64_t else_value = 0;
  bool has_else = false;
};

// Verdicts distilled from a ResourceCertificate (src/lang/certify), fed into
// the eligibility proof without reversing the core → lang layering.  The
// specialized back-end assumes an unambiguous query with per-key O(1) state;
// a gate with either bit cleared vetoes specialization even when the op-tree
// shape matches.
struct SpecGate {
  bool unambiguous = true;    // every split/iter decomposition proven (§3.3)
  bool state_bounded = true;  // per-key register count proven finite
  std::string detail;         // human-readable reason when a bit is false
};

// Outcome of the eligibility proof: a plan when the query specializes, plus
// a structured reason either way — what shape was proven, or the first
// obstruction found.  No silent nullopt: every rejection names its cause.
struct SpecDecision {
  std::optional<SpecPlan> plan;
  std::string reason;

  [[nodiscard]] bool specialized() const { return plan.has_value(); }
};

// Proves `query` fits the specializable shape.  `gate` (optional) carries
// the certificate verdicts; when null only the structural proof runs.
SpecDecision analyze_spec_explained(const CompiledQuery& query,
                                    const SpecGate* gate = nullptr);

// Proves `query` fits the specializable shape and returns its plan, or
// nullopt when the query must run on the interpreting runtime.  The plan
// borrows the query's DFA; keep the query alive while using it.
std::optional<SpecPlan> analyze_spec(const CompiledQuery& query);

// In-process executor for a SpecPlan.  Mirrors the generated C++ exactly:
// same uint64 key packing, same start-state pruning, same accept/fold
// updates.  This is the "codegen path" oracle used by the fuzzer.
class SpecializedMonitor {
 public:
  explicit SpecializedMonitor(const SpecPlan& plan) : plan_(plan) {}

  void on_packet(const net::Packet& p);
  // Sum over all observed instantiations (the scope's aggregate).
  [[nodiscard]] long long aggregate() const;
  [[nodiscard]] long long at(uint64_t key) const;
  [[nodiscard]] size_t entries() const { return table_.size(); }
  // The packed key the generated code would compute for this packet.
  [[nodiscard]] uint64_t key_of(const net::Packet& p) const;

 private:
  struct State {
    int32_t q;
    long long acc = 0;
  };
  SpecPlan plan_;
  std::unordered_map<uint64_t, State> table_;
};

struct GeneratedProgram {
  std::string source;       // complete translation unit
  std::string entry_class;  // name of the generated monitor class
};

// Generates specialized C++ for `query`, or nullopt when the query's shape
// is not supported by the specializer.
std::optional<GeneratedProgram> generate_cpp(const CompiledQuery& query,
                                             const std::string& name);

// Wraps a generated monitor in a main() that replays a pcap file and prints
// `<result> <packets> <seconds>`; used by tests and the codegen benchmark.
std::string generate_pcap_main(const GeneratedProgram& prog);

}  // namespace netqre::core
