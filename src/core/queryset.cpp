#include "core/queryset.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/fields.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::core {

namespace {

std::string query_label(const char* base, const std::string& name) {
  return obs::labeled_name(base, {{"query", name}});
}

std::string shard_label(const char* base, int index) {
  return obs::labeled_name(base, {{"shard", std::to_string(index)}});
}

}  // namespace

// --------------------------------------------------------------- QuerySet

// One loaded query: a self-contained mini-runtime (state, tier, telemetry).
// Stepped only by the feeding thread; the atomics are the cross-thread
// status surface.
struct QuerySet::Slot {
  std::string name;
  CompiledQuery query;
  SpecDecision decision;
  std::unique_ptr<SpecializedMonitor> spec;  // compiled tier, when selected
  StateBox state;                            // interpreter state
  Valuation val;
  const ParamScopeOp* top_scope = nullptr;
  size_t quota = 0;  // bytes; 0 = unlimited
  uint64_t next_quota_check = QuerySet::kQuotaCheckEvery;

  std::atomic<uint64_t> packets{0};
  std::atomic<uint64_t> state_bytes{0};
  std::atomic<uint64_t> evicted{0};
  std::atomic<uint64_t> quota_resets{0};
  std::atomic<uint32_t> cpu_share_ppm{0};  // recomputed on every roster swap

  obs::Counter* packets_total = nullptr;
  obs::Gauge* state_gauge = nullptr;
  obs::Gauge* share_gauge = nullptr;

  [[nodiscard]] size_t memory() const {
    return spec ? spec->memory() : state->memory();
  }
};

// Immutable per-batch execution snapshot.  on_batch() grabs the current
// roster once per batch; load()/unload() publish a new one (sharing the
// untouched Slot objects), so membership changes land exactly on a batch
// boundary and never tear mid-packet.
struct QuerySet::Roster {
  std::vector<std::shared_ptr<Slot>> slots;  // insertion order

  // Deduplicated pool of non-Param alphabet atoms across every compiled
  // slot, evaluated once per packet.
  std::vector<SpecPlan::AtomEval> pool;
  struct CompiledRef {
    Slot* slot = nullptr;
    uint64_t base_letter = 0;  // Param bits, true by construction
    struct BitRef {
      uint32_t pool;  // index into Roster::pool
      uint8_t bit;    // letter bit in this slot's plan alphabet
    };
    std::vector<BitRef> bits;
    int key_group = -1;  // index into key_groups; -1 = closed (no key)
  };
  std::vector<CompiledRef> compiled;
  // Keyed compiled queries grouped by key shape (same fields and offsets
  // extract the same packed key): one representative per distinct shape,
  // whose key_of fills a batch-wide key array every group member reads.
  std::vector<Slot*> key_groups;
  std::vector<Slot*> interpreted;
  bool needs_fields = false;  // arm the per-packet field cache
  size_t atom_refs = 0;       // pre-dedup atom references (diagnostics)

  static std::shared_ptr<const Roster> build(
      std::vector<std::shared_ptr<Slot>> slots) {
    auto r = std::make_shared<Roster>();
    r->slots = std::move(slots);
    for (const auto& sp : r->slots) {
      if (!sp->spec) {
        // Interpreted queries read the shared field cache (payload scans,
        // custom fields) — armed once per packet for all of them.
        r->interpreted.push_back(sp.get());
        r->needs_fields = true;
        continue;
      }
      const SpecPlan& plan = sp->spec->plan();
      CompiledRef ref;
      ref.slot = sp.get();
      ref.base_letter = plan.param_mask;
      for (size_t i = 0; i < plan.atoms.size(); ++i) {
        const auto& a = plan.atoms[i];
        if (a.kind == SpecPlan::AtomEval::Kind::Param) continue;
        ++r->atom_refs;
        size_t pool_idx = r->pool.size();
        for (size_t j = 0; j < r->pool.size(); ++j) {
          if (r->pool[j].kind == a.kind && r->pool[j].atom == a.atom) {
            pool_idx = j;
            break;
          }
        }
        if (pool_idx == r->pool.size()) {
          r->pool.push_back(a);
          r->needs_fields |= a.kind == SpecPlan::AtomEval::Kind::Generic;
        }
        ref.bits.push_back({static_cast<uint32_t>(pool_idx),
                            static_cast<uint8_t>(i)});
      }
      if (!plan.key.empty()) {
        const auto same_shape = [&](const Slot* other) {
          const auto& a = other->spec->plan().key;
          if (a.size() != plan.key.size()) return false;
          for (size_t j = 0; j < a.size(); ++j) {
            if (a[j].field != plan.key[j].field ||
                a[j].offset != plan.key[j].offset) {
              return false;
            }
          }
          return true;
        };
        for (size_t g = 0; g < r->key_groups.size(); ++g) {
          if (same_shape(r->key_groups[g])) {
            ref.key_group = static_cast<int>(g);
            break;
          }
        }
        if (ref.key_group < 0) {
          ref.key_group = static_cast<int>(r->key_groups.size());
          r->key_groups.push_back(sp.get());
        }
      }
      r->compiled.push_back(std::move(ref));
    }
    r->attribute_cost();
    return r;
  }

  // Cost attribution: split the shared per-packet work across tenants so
  // operators can see *which* query a hot pool is serving (and alert on a
  // noisy tenant before quota eviction fires).  The model mirrors how
  // on_batch actually spends cycles:
  //   - every query pays 1.0 for the shared decode/dispatch baseline;
  //   - a pooled atom's evaluation cost (1.0) splits evenly across the
  //     compiled queries referencing it — dedup makes atoms cheaper for
  //     everyone, and the split keeps the books consistent with that;
  //   - an interpreted query pays a flat 4.0 on top: its per-packet tree
  //     step costs on the order of several pooled predicate evaluations.
  // Shares are published in parts per million (they sum to ~1e6 modulo
  // rounding) on each slot and its netqre_query_cpu_share gauge.
  static constexpr double kInterpretedStepCost = 4.0;
  void attribute_cost() {
    std::vector<uint32_t> pool_users(pool.size(), 0);
    for (const auto& c : compiled) {
      for (const auto& b : c.bits) ++pool_users[b.pool];
    }
    std::vector<double> weight(slots.size(), 1.0);
    for (size_t s = 0; s < slots.size(); ++s) {
      Slot* slot = slots[s].get();
      if (!slot->spec) {
        weight[s] += kInterpretedStepCost;
        continue;
      }
      for (const auto& c : compiled) {
        if (c.slot != slot) continue;
        for (const auto& b : c.bits) weight[s] += 1.0 / pool_users[b.pool];
      }
    }
    double total = 0;
    for (const double w : weight) total += w;
    for (size_t s = 0; s < slots.size(); ++s) {
      const auto ppm = static_cast<uint32_t>(
          total > 0 ? weight[s] / total * 1e6 + 0.5 : 0);
      slots[s]->cpu_share_ppm.store(ppm, std::memory_order_relaxed);
      if (obs::kEnabled && slots[s]->share_gauge) {
        slots[s]->share_gauge->set(static_cast<int64_t>(ppm));
      }
    }
  }
};

QuerySet::QuerySet(size_t default_quota_bytes)
    : default_quota_(default_quota_bytes) {
  roster_ = Roster::build({});
}

QuerySet::~QuerySet() = default;

std::shared_ptr<const QuerySet::Roster> QuerySet::roster() const {
  std::lock_guard lock(mu_);
  return roster_;
}

std::shared_ptr<QuerySet::Slot> QuerySet::find_slot(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  for (const auto& s : roster_->slots) {
    if (s->name == name) return s;
  }
  return nullptr;
}

bool QuerySet::load(const std::string& name, CompiledQuery query,
                    LoadOptions opt) {
  if (!query.root) throw std::runtime_error("queryset: empty query");
  auto slot = std::make_shared<Slot>();
  slot->name = name;
  slot->query = std::move(query);
  slot->decision = decide_tier(slot->query, opt.tier);
  if (slot->decision.plan) {
    slot->spec = std::make_unique<SpecializedMonitor>(*slot->decision.plan);
  } else if (opt.tier == EngineTier::Auto) {
    // Auto asked for the compiled tier and the certificate gate said no —
    // count it so the self-monitoring alarms can watch for regressions.
    obs::registry().counter("netqre_query_tier_downgrades_total").inc();
  }
  slot->state = slot->query.root->make_state();
  slot->val.assign(slot->query.n_slots, Value::undef());
  slot->top_scope = dynamic_cast<const ParamScopeOp*>(slot->query.root.get());
  slot->quota = opt.state_quota_bytes != 0 ? opt.state_quota_bytes
                                           : default_quota_;
  slot->packets_total = &obs::registry().counter(
      query_label("netqre_query_packets_total", name));
  slot->state_gauge =
      &obs::registry().gauge(query_label("netqre_query_state_bytes", name));
  slot->share_gauge =
      &obs::registry().gauge(query_label("netqre_query_cpu_share", name));
  slot->state_bytes.store(slot->memory(), std::memory_order_relaxed);
  slot->state_gauge->set(static_cast<int64_t>(slot->memory()));

  std::lock_guard lock(mu_);
  for (const auto& s : roster_->slots) {
    if (s->name == name) return false;
  }
  auto slots = roster_->slots;
  slots.push_back(std::move(slot));
  roster_ = Roster::build(std::move(slots));
  return true;
}

bool QuerySet::unload(std::string_view name) {
  std::lock_guard lock(mu_);
  auto slots = roster_->slots;
  const auto it = std::find_if(slots.begin(), slots.end(),
                               [&](const auto& s) { return s->name == name; });
  if (it == slots.end()) return false;
  slots.erase(it);
  roster_ = Roster::build(std::move(slots));
  return true;
}

bool QuerySet::contains(std::string_view name) const {
  return find_slot(name) != nullptr;
}

std::vector<std::string> QuerySet::names() const {
  const auto r = roster();
  std::vector<std::string> out;
  out.reserve(r->slots.size());
  for (const auto& s : r->slots) out.push_back(s->name);
  return out;
}

size_t QuerySet::size() const { return roster()->slots.size(); }

void QuerySet::on_batch(std::span<const net::Packet> batch) {
  const std::shared_ptr<const Roster> r = roster();
  total_packets_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (r->slots.empty()) return;
  if (r->pool.size() <= 64) {
    on_batch_columnar(*r, batch);
  } else {
    on_batch_rowwise(*r, batch);
  }
  for (const auto& sp : r->slots) {
    Slot& s = *sp;
    const uint64_t n =
        s.packets.fetch_add(batch.size(), std::memory_order_relaxed) +
        batch.size();
    if (obs::kEnabled) s.packets_total->inc(batch.size());
    if (n >= s.next_quota_check) {
      s.next_quota_check = n + kQuotaCheckEvery;
      enforce_quota(s);
    }
  }
}

// The hot layout: column passes in pool-atom-major then query-major order,
// so one predicate's branch pattern and one query's hash table stay hot
// across the whole batch instead of ten tables thrashing per packet.
// Requires the pool to fit one uint64_t truth mask per packet.
void QuerySet::on_batch_columnar(const Roster& r,
                                 std::span<const net::Packet> batch) {
  atom_masks_.assign(batch.size(), 0);

  // Pass 1 — classification, atom-major: each non-Generic pool atom sweeps
  // the batch (Param atoms never pool; FastCmp reads raw fields and needs
  // no field cache).
  bool generic_pool = false;
  for (size_t j = 0; j < r.pool.size(); ++j) {
    const SpecPlan::AtomEval& a = r.pool[j];
    if (a.kind == SpecPlan::AtomEval::Kind::Generic) {
      generic_pool = true;
      continue;
    }
    const uint64_t bit = uint64_t{1} << j;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (eval_spec_atom(a, batch[i], no_params_)) atom_masks_[i] |= bit;
    }
  }

  // Pass 2 — the field-cache pass, packet-major: one arming per packet
  // covers every Generic pool atom and every interpreted query (payload
  // scans and custom fields parse once however many queries read them).
  if (generic_pool || !r.interpreted.empty()) {
    for (size_t i = 0; i < batch.size(); ++i) {
      const net::Packet& p = batch[i];
      begin_packet_fields();
      if (generic_pool) {
        for (size_t j = 0; j < r.pool.size(); ++j) {
          const SpecPlan::AtomEval& a = r.pool[j];
          if (a.kind == SpecPlan::AtomEval::Kind::Generic &&
              a.atom.eval(p, no_params_)) {
            atom_masks_[i] |= uint64_t{1} << j;
          }
        }
      }
      for (Slot* s : r.interpreted) {
        EvalContext ctx{&p, &s->val, nullptr};
        s->query.root->step(*s->state, ctx);
      }
    }
  }

  // Pass 3 — key extraction, key-shape-major: every srcip-keyed (or
  // (srcip,dstip)-keyed, ...) query reads one shared key array instead of
  // re-extracting and re-packing the same fields per query.
  if (key_scratch_.size() < r.key_groups.size()) {
    key_scratch_.resize(r.key_groups.size());
  }
  for (size_t g = 0; g < r.key_groups.size(); ++g) {
    const SpecializedMonitor* rep = r.key_groups[g]->spec.get();
    auto& keys = key_scratch_[g];
    keys.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) keys[i] = rep->key_of(batch[i]);
  }

  // Pass 4 — compiled dispatch, query-major: assemble each query's letters
  // from the pooled truth masks and step its whole batch in one on_letters
  // call, which pipelines the table probe's cache misses.
  letters_scratch_.resize(batch.size());
  for (const auto& c : r.compiled) {
    if (c.bits.empty()) {
      std::fill(letters_scratch_.begin(), letters_scratch_.end(),
                c.base_letter);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        uint64_t letter = c.base_letter;
        const uint64_t m = atom_masks_[i];
        for (const auto& b : c.bits) {
          letter |= ((m >> b.pool) & uint64_t{1}) << b.bit;
        }
        letters_scratch_[i] = letter;
      }
    }
    c.slot->spec->on_letters(
        batch, letters_scratch_.data(),
        c.key_group >= 0 ? key_scratch_[c.key_group].data() : nullptr);
  }
}

// Fallback for pools past 64 atoms: the original packet-major order with a
// byte of truth per pool atom.
void QuerySet::on_batch_rowwise(const Roster& r,
                                std::span<const net::Packet> batch) {
  if (atom_bits_.size() < r.pool.size()) atom_bits_.resize(r.pool.size());
  for (const net::Packet& p : batch) {
    if (r.needs_fields) begin_packet_fields();
    for (size_t i = 0; i < r.pool.size(); ++i) {
      atom_bits_[i] = eval_spec_atom(r.pool[i], p, no_params_) ? 1 : 0;
    }
    for (const auto& c : r.compiled) {
      uint64_t letter = c.base_letter;
      for (const auto& b : c.bits) {
        letter |= static_cast<uint64_t>(atom_bits_[b.pool]) << b.bit;
      }
      c.slot->spec->on_letter(p, letter);
    }
    for (Slot* s : r.interpreted) {
      EvalContext ctx{&p, &s->val, nullptr};
      s->query.root->step(*s->state, ctx);
    }
  }
}

void QuerySet::enforce_quota(Slot& s) {
  size_t bytes = s.memory();
  if (s.quota != 0 && bytes > s.quota) {
    if (s.spec) {
      // Compiled tier: drop stalest keys until the table fits.  Evicted
      // keys read back as never-observed defaults.
      s.evicted.fetch_add(s.spec->evict_stalest(s.quota),
                          std::memory_order_relaxed);
    } else {
      // The interpreter's guard trie records no per-leaf age, so the only
      // bounded response is a full state reset — counted, so operators see
      // the query is being degraded rather than silently lying.
      s.state = s.query.root->make_state();
      s.val.assign(s.query.n_slots, Value::undef());
      s.quota_resets.fetch_add(1, std::memory_order_relaxed);
    }
    bytes = s.memory();
  }
  s.state_bytes.store(bytes, std::memory_order_relaxed);
  if (obs::kEnabled) s.state_gauge->set(static_cast<int64_t>(bytes));
}

void QuerySet::sample_state_metrics() {
  const auto r = roster();
  for (const auto& sp : r->slots) enforce_quota(*sp);
}

namespace {
[[noreturn]] void throw_unknown(std::string_view name) {
  throw std::runtime_error("queryset: no query named '" + std::string(name) +
                           "'");
}
}  // namespace

Value QuerySet::eval(std::string_view name) const {
  const auto s = find_slot(name);
  if (!s) throw_unknown(name);
  return s->spec ? s->spec->eval() : s->query.root->eval(*s->state);
}

Value QuerySet::eval_at(std::string_view name,
                        const std::vector<Value>& key) const {
  const auto s = find_slot(name);
  if (!s) throw_unknown(name);
  if (!s->top_scope) {
    throw std::runtime_error("eval_at: query has no top-level parameters");
  }
  if (s->spec) return s->spec->eval_at(key);
  return s->top_scope->eval_at(*s->state, key);
}

void QuerySet::enumerate(
    std::string_view name,
    const std::function<void(const std::vector<Value>&, const Value&)>& fn)
    const {
  const auto s = find_slot(name);
  if (!s) throw_unknown(name);
  if (!s->top_scope) {
    throw std::runtime_error("enumerate: query has no top-level parameters");
  }
  if (s->spec) {
    s->spec->enumerate(fn);
  } else {
    s->top_scope->enumerate(*s->state, fn);
  }
}

namespace {
// Engine::snapshot_results' shape, per slot.
void snapshot_slot_impl(const CompiledQuery& query,
                        const SpecializedMonitor* spec, const OpState* state,
                        const ParamScopeOp* top_scope,
                        std::vector<ResultSample>& out) {
  if (top_scope) {
    const auto emit = [&](const std::vector<Value>& key, const Value& v) {
      if (!v.defined()) return;
      std::string name;
      for (size_t i = 0; i < key.size(); ++i) {
        if (i) name += ',';
        name += key[i].to_string();
      }
      out.push_back({std::move(name), v.as_double()});
    };
    if (spec) {
      spec->enumerate(emit);
    } else {
      top_scope->enumerate(*state, emit);
    }
    return;
  }
  const Value v = spec ? spec->eval() : query.root->eval(*state);
  if (v.defined()) out.push_back({"value", v.as_double()});
}
}  // namespace

void QuerySet::snapshot_results(std::string_view name,
                                std::vector<ResultSample>& out) const {
  const auto s = find_slot(name);
  if (!s) throw_unknown(name);
  snapshot_slot_impl(s->query, s->spec.get(), s->state.get(), s->top_scope,
                     out);
}

void QuerySet::snapshot_all(
    std::vector<std::pair<std::string, std::vector<ResultSample>>>& out)
    const {
  const auto r = roster();
  for (const auto& s : r->slots) {
    std::vector<ResultSample> samples;
    snapshot_slot_impl(s->query, s->spec.get(), s->state.get(), s->top_scope,
                       samples);
    out.emplace_back(s->name, std::move(samples));
  }
}

bool QuerySet::is_scalar(std::string_view name) const {
  const auto s = find_slot(name);
  if (!s) throw_unknown(name);
  return s->query.param_names.empty();
}

QueryStatus QuerySet::status_of(const Slot& s) {
  QueryStatus st;
  st.name = s.name;
  st.tier = s.spec ? "specialized" : "interpreted";
  st.reason = s.decision.reason;
  st.packets = s.packets.load(std::memory_order_relaxed);
  st.state_bytes = s.state_bytes.load(std::memory_order_relaxed);
  st.quota_bytes = s.quota;
  st.evicted_keys = s.evicted.load(std::memory_order_relaxed);
  st.quota_resets = s.quota_resets.load(std::memory_order_relaxed);
  st.cpu_share_ppm = s.cpu_share_ppm.load(std::memory_order_relaxed);
  return st;
}

std::vector<QueryStatus> QuerySet::status() const {
  const auto r = roster();
  std::vector<QueryStatus> out;
  out.reserve(r->slots.size());
  for (const auto& s : r->slots) out.push_back(status_of(*s));
  return out;
}

std::optional<QueryStatus> QuerySet::status(std::string_view name) const {
  const auto s = find_slot(name);
  if (!s) return std::nullopt;
  return status_of(*s);
}

size_t QuerySet::atom_pool_size() const { return roster()->pool.size(); }

size_t QuerySet::atom_refs() const { return roster()->atom_refs; }

// ------------------------------------------------------- ParallelQuerySet

// ParallelEngine's shard topology (bounded mutex+cv queue, one worker per
// shard, control visits bypassing the bound) with a QuerySet instead of a
// single Engine.
struct ParallelQuerySet::Shard {
  struct Item {
    std::vector<net::Packet> batch;
    std::function<void(QuerySet&)> ctl;
  };

  Shard(int index, size_t default_quota)
      : set(default_quota),
        index(index),
        packets_total(&obs::registry().counter(
            shard_label("netqre_parallel_shard_packets_total", index))),
        queue_depth(&obs::registry().gauge(
            shard_label("netqre_parallel_shard_queue_depth", index))) {}

  QuerySet set;
  int index;
  obs::Counter* packets_total;
  obs::Gauge* queue_depth;
  std::mutex mu;
  std::condition_variable cv;
  std::condition_variable cv_space;
  std::deque<Item> queue;
  bool closing = false;
  std::thread thread;

  void run() {
    if constexpr (obs::kEnabled) {
      obs::tracer().set_thread_name("qs-shard-" + std::to_string(index));
    }
    for (;;) {
      Item item;
      size_t depth = 0;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || closing; });
        if (queue.empty()) return;
        item = std::move(queue.front());
        queue.pop_front();
        depth = queue.size();
      }
      cv_space.notify_one();
      if constexpr (obs::kEnabled) {
        queue_depth->set(static_cast<int64_t>(depth));
      }
      if (item.ctl) {
        item.ctl(set);
        continue;
      }
      set.on_batch(item.batch);
      packets_total->inc(item.batch.size());
    }
  }

  void push_ctl(std::function<void(QuerySet&)> fn) {
    {
      std::lock_guard lock(mu);
      queue.push_back(Item{{}, std::move(fn)});
    }
    cv.notify_one();
  }

  void push(std::vector<net::Packet> batch, size_t max_queued) {
    size_t depth = 0;
    {
      std::unique_lock lock(mu);
      cv_space.wait(lock, [&] { return queue.size() < max_queued; });
      queue.push_back(Item{std::move(batch), nullptr});
      depth = queue.size();
    }
    cv.notify_one();
    if constexpr (obs::kEnabled) {
      queue_depth->set(static_cast<int64_t>(depth));
    }
  }

  void close() {
    {
      std::lock_guard lock(mu);
      closing = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }
};

ParallelQuerySet::ParallelQuerySet(int n_workers, size_t default_quota_bytes,
                                   Partitioner partitioner)
    : partitioner_(std::move(partitioner)), pending_(n_workers) {
  if (!partitioner_) {
    partitioner_ = [](const net::Packet& p) {
      return static_cast<size_t>(net::mix64(p.src_ip));
    };
  }
  shards_.reserve(n_workers);
  for (int i = 0; i < n_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, default_quota_bytes));
    Shard* s = shards_.back().get();
    s->thread = std::thread([s] { s->run(); });
  }
}

ParallelQuerySet::~ParallelQuerySet() {
  if (!finished_) finish();
}

bool ParallelQuerySet::load(const std::string& name,
                            const CompiledQuery& query,
                            QuerySet::LoadOptions opt) {
  // QuerySet::load is COW-safe against a concurrent feed; each shard picks
  // the new query up at its own next batch boundary.  Names stay identical
  // across shards because every load/unload broadcasts.
  if (shards_.front()->set.contains(name)) return false;
  for (auto& s : shards_) s->set.load(name, query, opt);
  return true;
}

bool ParallelQuerySet::unload(std::string_view name) {
  bool any = false;
  for (auto& s : shards_) any |= s->set.unload(name);
  return any;
}

bool ParallelQuerySet::contains(std::string_view name) const {
  return shards_.front()->set.contains(name);
}

std::vector<std::string> ParallelQuerySet::names() const {
  return shards_.front()->set.names();
}

void ParallelQuerySet::feed(net::PacketBatch&& batch) {
  const size_t n = shards_.size();
  for (net::Packet& p : batch.packets()) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(std::move(p));
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
  batch.clear();
}

void ParallelQuerySet::feed(const std::vector<net::Packet>& packets) {
  const size_t n = shards_.size();
  for (const auto& p : packets) {
    const size_t shard = partitioner_(p) % n;
    pending_[shard].push_back(p);
    if (pending_[shard].size() >= kBatch) {
      shards_[shard]->push(std::move(pending_[shard]), kMaxQueuedBatches);
      pending_[shard].clear();
    }
  }
}

void ParallelQuerySet::finish() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!pending_[i].empty()) {
      shards_[i]->push(std::move(pending_[i]), kMaxQueuedBatches);
      pending_[i].clear();
    }
  }
  for (auto& s : shards_) s->close();
  finished_ = true;
}

void ParallelQuerySet::snapshot_all_async(
    std::function<void(
        std::vector<std::pair<std::string, std::vector<ResultSample>>>)>
        done) {
  struct Collect {
    std::mutex mu;
    std::vector<std::pair<std::string, std::vector<ResultSample>>> merged;
    std::unordered_map<std::string, size_t> query_index;
    // Per query: sample key -> index into its sample vector.
    std::vector<std::unordered_map<std::string, size_t>> key_index;
    std::atomic<size_t> remaining{0};
  };
  auto collect = std::make_shared<Collect>();
  const auto visit = [collect](int shard, QuerySet& set) {
    std::vector<std::pair<std::string, std::vector<ResultSample>>> local;
    set.snapshot_all(local);
    std::lock_guard lock(collect->mu);
    for (auto& [qname, samples] : local) {
      const bool scalar = set.is_scalar(qname);
      const auto [qit, qfresh] =
          collect->query_index.emplace(qname, collect->merged.size());
      if (qfresh) {
        collect->merged.emplace_back(qname, std::vector<ResultSample>{});
        collect->key_index.emplace_back();
      }
      auto& merged = collect->merged[qit->second].second;
      auto& keys = collect->key_index[qit->second];
      for (auto& s : samples) {
        if (scalar) {
          // One dimension per shard (merging scalars needs the query's
          // aggregation operator, which this layer does not know).
          s.key = "shard" + std::to_string(shard);
          merged.push_back(std::move(s));
          continue;
        }
        const auto [kit, kfresh] = keys.emplace(s.key, merged.size());
        if (kfresh) {
          merged.push_back(std::move(s));
        } else {
          merged[kit->second].value += s.value;
        }
      }
    }
  };
  if (finished_) {
    for (auto& s : shards_) visit(s->index, s->set);
    done(std::move(collect->merged));
    return;
  }
  collect->remaining.store(shards_.size(), std::memory_order_relaxed);
  for (auto& s : shards_) {
    const int index = s->index;
    s->push_ctl([collect, visit, index, done](QuerySet& set) {
      visit(index, set);
      if (collect->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done(std::move(collect->merged));
      }
    });
  }
}

std::vector<QueryStatus> ParallelQuerySet::status() const {
  std::vector<QueryStatus> merged = shards_.front()->set.status();
  for (size_t i = 1; i < shards_.size(); ++i) {
    const auto shard_status = shards_[i]->set.status();
    for (auto& st : merged) {
      for (const auto& other : shard_status) {
        if (other.name != st.name) continue;
        st.packets += other.packets;
        st.state_bytes += other.state_bytes;
        st.evicted_keys += other.evicted_keys;
        st.quota_resets += other.quota_resets;
      }
    }
  }
  return merged;
}

uint64_t ParallelQuerySet::packets() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->set.packets();
  return n;
}

const QuerySet& ParallelQuerySet::shard_set(int shard) const {
  return shards_[shard]->set;
}

}  // namespace netqre::core
