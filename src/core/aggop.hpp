// Aggregation operators (§3.3–§3.5): sum, avg, max, min.
//
// `avg` needs a (sum, count) pair to be mergeable, so accumulators carry the
// count alongside the numeric fold.  This also gives the incremental update
// the compiler applies for sum/avg (§6 optimizations) and makes shard merge
// in the parallel runtime exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "core/value.hpp"

namespace netqre::core {

enum class AggOp : uint8_t { Sum, Avg, Max, Min };

inline std::string agg_name(AggOp op) {
  switch (op) {
    case AggOp::Sum: return "sum";
    case AggOp::Avg: return "avg";
    case AggOp::Max: return "max";
    case AggOp::Min: return "min";
  }
  return "?";
}

struct AggAcc {
  AggOp op = AggOp::Sum;
  int64_t count = 0;
  double num = 0.0;      // running sum for Sum/Avg, extreme for Max/Min
  bool integral = true;  // all inputs were integers (formats result as int)

  static AggAcc identity(AggOp op) {
    AggAcc a;
    a.op = op;
    if (op == AggOp::Max) a.num = -std::numeric_limits<double>::infinity();
    if (op == AggOp::Min) a.num = std::numeric_limits<double>::infinity();
    return a;
  }

  void add(const Value& v) {
    if (!v.defined()) return;
    const double x = v.as_double();
    if (v.kind() != Value::Kind::Int) integral = false;
    ++count;
    switch (op) {
      case AggOp::Sum:
      case AggOp::Avg: num += x; break;
      case AggOp::Max: num = std::max(num, x); break;
      case AggOp::Min: num = std::min(num, x); break;
    }
  }

  // Removes a previously added value; valid for Sum/Avg only (the
  // incremental-aggregation optimization replaces old leaf values).
  void retract(const Value& v) {
    if (!v.defined()) return;
    --count;
    num -= v.as_double();
  }

  void merge(const AggAcc& o) {
    count += o.count;
    integral = integral && o.integral;
    switch (op) {
      case AggOp::Sum:
      case AggOp::Avg: num += o.num; break;
      case AggOp::Max: num = std::max(num, o.num); break;
      case AggOp::Min: num = std::min(num, o.num); break;
    }
  }

  // Aggregate of zero inputs: sum = 0, avg/max/min = undef.
  [[nodiscard]] Value result() const {
    switch (op) {
      case AggOp::Sum:
        return integral ? Value::integer(static_cast<int64_t>(num))
                        : Value::real(num);
      case AggOp::Avg:
        if (count == 0) return Value::undef();
        return Value::real(num / static_cast<double>(count));
      case AggOp::Max:
      case AggOp::Min:
        if (count == 0) return Value::undef();
        return integral ? Value::integer(static_cast<int64_t>(num))
                        : Value::real(num);
    }
    return Value::undef();
  }

  friend bool operator==(const AggAcc&, const AggAcc&) = default;
};

}  // namespace netqre::core
