// Typed runtime values for NetQRE (§3: int, bool, string, double, plus the
// domain-specific IP, Port, Conn and action types).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "net/flow.hpp"

namespace netqre::core {

// The NetQRE surface types.  Int/Bool/Ip/Port share the integer payload and
// differ only in formatting and type checking.
enum class Type : uint8_t {
  Int,
  Bool,
  Double,
  String,
  Ip,
  Port,
  Conn,
  Packet,
  Action,
};

std::string type_name(Type t);

// A runtime value.  `Undef` is the explicit "expression not defined on this
// stream" result that NetQRE semantics produce for failed matches and
// ambiguous splits (§3.2, §3.3).
class Value {
 public:
  enum class Kind : uint8_t { Undef, Int, Double, Str, Conn };

  Value() = default;  // Undef
  static Value undef() { return Value{}; }

  // Resets to Undef without the full member-wise assignment of
  // `*this = Value::undef()` — equality/hash/compare only look at the
  // payload of defined kinds, so stale scalars are unobservable.  The hot
  // per-packet slot resets in the guard-trie walk use this.
  void clear() {
    kind_ = Kind::Undef;
    str_.clear();
  }
  static Value integer(int64_t v, Type t = Type::Int) {
    Value out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    out.type_ = t;
    return out;
  }
  static Value boolean(bool v) { return integer(v ? 1 : 0, Type::Bool); }
  static Value ip(uint32_t v) { return integer(v, Type::Ip); }
  static Value real(double v) {
    Value out;
    out.kind_ = Kind::Double;
    out.dbl_ = v;
    out.type_ = Type::Double;
    return out;
  }
  static Value str(std::string v, Type t = Type::String) {
    Value out;
    out.kind_ = Kind::Str;
    out.str_ = std::move(v);
    out.type_ = t;
    return out;
  }
  static Value conn(const net::Conn& c) {
    Value out;
    out.kind_ = Kind::Conn;
    out.conn_ = c;
    out.type_ = Type::Conn;
    return out;
  }

  Value(const Value&) = default;
  Value(Value&&) = default;
  // Hand-rolled assignment operators: scope slots and trie keys copy Values
  // on the per-packet path, and the values there are almost never strings —
  // skipping the out-of-line std::string assign for empty sources is a
  // measurable win.
  Value& operator=(Value&& o) noexcept {
    kind_ = o.kind_;
    type_ = o.type_;
    int_ = o.int_;
    dbl_ = o.dbl_;
    conn_ = o.conn_;
    if (o.str_.empty()) {
      str_.clear();
    } else {
      str_ = std::move(o.str_);
    }
    return *this;
  }
  Value& operator=(const Value& o) {
    kind_ = o.kind_;
    type_ = o.type_;
    int_ = o.int_;
    dbl_ = o.dbl_;
    conn_ = o.conn_;
    if (o.str_.empty()) {
      str_.clear();
    } else {
      str_ = o.str_;
    }
    return *this;
  }

  [[nodiscard]] bool defined() const { return kind_ != Kind::Undef; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Type type() const { return type_; }

  [[nodiscard]] int64_t as_int() const { return int_; }
  [[nodiscard]] bool as_bool() const { return int_ != 0; }
  [[nodiscard]] double as_double() const {
    return kind_ == Kind::Double ? dbl_ : static_cast<double>(int_);
  }
  [[nodiscard]] const std::string& as_str() const { return str_; }
  [[nodiscard]] const net::Conn& as_conn() const { return conn_; }

  // Structural equality (kind + payload; type tags are not compared so that
  // e.g. an Int 80 equals a Port 80, which predicate matching relies on).
  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case Kind::Undef: return true;
      case Kind::Int: return int_ == o.int_;
      case Kind::Double: return dbl_ == o.dbl_;
      case Kind::Str: return str_ == o.str_;
      case Kind::Conn: return conn_ == o.conn_;
    }
    return false;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  // Total order used for max/min aggregation and trie keys.
  [[nodiscard]] int compare(const Value& o) const;

  [[nodiscard]] size_t hash() const {
    switch (kind_) {
      case Kind::Undef: return 0x9e3779b9;
      case Kind::Int: return net::mix64(static_cast<uint64_t>(int_));
      case Kind::Double: {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(dbl_));
        __builtin_memcpy(&bits, &dbl_, sizeof(bits));
        return net::mix64(bits ^ 0x1234);
      }
      case Kind::Str: return std::hash<std::string>{}(str_);
      case Kind::Conn: return net::ConnHash{}(conn_);
    }
    return 0;
  }
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::Undef;
  Type type_ = Type::Int;
  int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  net::Conn conn_{};
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace netqre::core
