// Parameterized packet predicates — the atoms of PSRE (§3.1).
//
// An Atom compares one packet field against either a literal or a parameter
// (optionally offset by a constant, e.g. `ackno == x+1` in the SYN-flood
// pattern, §4.2).  Formulas combine atoms with and/or/not.  Parameters are
// global slots in the compiled query; a Valuation assigns concrete values to
// a subset of slots — an unbound slot means "a fresh value different from
// every value this packet could instantiate", which is how the guard trie's
// default branch evaluates predicates (§5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fields.hpp"
#include "core/value.hpp"
#include "net/packet.hpp"

namespace netqre::core {

// Valuation of the query's parameter slots.  Undef value = unbound slot.
using Valuation = std::vector<Value>;

enum class CmpOp : uint8_t { Eq, Lt, Le, Gt, Ge, Contains };

std::string cmp_name(CmpOp op);

struct Atom {
  FieldRef field;
  CmpOp op = CmpOp::Eq;
  bool is_param = false;
  Value literal;       // rhs when !is_param
  int param = -1;      // parameter slot when is_param
  int64_t offset = 0;  // rhs = param + offset (numeric params only)

  // Parameters may only appear in Eq atoms: the guard trie's default-branch
  // semantics ("fresh value") gives Eq a definite answer (false) but no
  // definite answer for inequalities.  Enforced by the lowering pass.
  [[nodiscard]] bool valid() const { return !is_param || op == CmpOp::Eq; }

  // Evaluates against `p` under `val`.  An unbound parameter makes an Eq
  // atom false.  Numeric built-in fields take an allocation-free fast path.
  [[nodiscard]] bool eval(const net::Packet& p, const Valuation& val) const;

  // Raw numeric extraction for built-in integer fields; false when the
  // field is not plain-numeric (Conn, payload, time, custom).
  static bool raw_numeric(Field f, const net::Packet& p, uint64_t& out);

  // If this atom is `field == param + offset`, the only value of `param`
  // that can satisfy it for packet `p`; Undef otherwise (including when the
  // offset cannot be inverted for the field's value kind).
  [[nodiscard]] Value candidate(const net::Packet& p) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Atom&, const Atom&) = default;
};

// Interned atom storage shared by a compiled query.  Atom ids index into it.
class AtomTable {
 public:
  int intern(const Atom& a);
  [[nodiscard]] const Atom& at(int id) const { return atoms_[id]; }
  [[nodiscard]] size_t size() const { return atoms_.size(); }
  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }

 private:
  std::vector<Atom> atoms_;
};

// Boolean formula over atom ids.
class Formula {
 public:
  enum class Kind : uint8_t { True, False, Atom, And, Or, Not };

  static Formula make_true() { return Formula(Kind::True); }
  static Formula make_false() { return Formula(Kind::False); }
  static Formula atom(int id) {
    Formula f(Kind::Atom);
    f.atom_ = id;
    return f;
  }
  static Formula conj(Formula a, Formula b);
  static Formula disj(Formula a, Formula b);
  static Formula negate(Formula a);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] int atom_id() const { return atom_; }
  [[nodiscard]] const std::vector<Formula>& kids() const { return kids_; }

  // Direct evaluation against a packet (used by the streaming engine).
  [[nodiscard]] bool eval(const AtomTable& table, const net::Packet& p,
                          const Valuation& val) const;

  // Evaluation over an explicit truth assignment to atoms (used by the
  // automaton constructions, where `bits` bit i = truth of atom i).
  [[nodiscard]] bool eval_bits(uint64_t bits) const;

  // Atom ids referenced by this formula, appended to `out`.
  void collect_atoms(std::vector<int>& out) const;

  [[nodiscard]] std::string to_string(const AtomTable& table) const;

 private:
  explicit Formula(Kind k) : kind_(k) {}
  Kind kind_ = Kind::True;
  int atom_ = -1;
  std::vector<Formula> kids_;
};

// Conservative consistency check for a truth assignment over `table`'s atoms
// restricted to those with ids in `atom_ids`: rejects assignments that set
// two Eq atoms on the same field to true with different literal values, or
// violate literal numeric-order constraints.  Assignments involving
// parameters are kept (some valuation may satisfy them).
bool assignment_consistent(const AtomTable& table,
                           const std::vector<int>& atom_ids, uint64_t bits);

// Conservative satisfiability check: true when some packet/valuation could
// satisfy `f`, i.e. some assignment-consistent truth assignment to its atoms
// makes it true.  Conservative in the "no false alarms" direction: returns
// true when the formula references more atoms than can be enumerated
// (> kMaxSatAtoms), so `!formula_satisfiable(...)` means *provably*
// unsatisfiable.  Used by the NQ004 lint rule.
inline constexpr int kMaxSatAtoms = 16;
bool formula_satisfiable(const AtomTable& table, const Formula& f);

}  // namespace netqre::core
