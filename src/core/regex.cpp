#include "core/regex.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace netqre::core {
namespace {

// ------------------------------------------------------------------- NFA

struct Nfa {
  struct Edge {
    Formula label;
    int to;
  };
  std::vector<std::vector<Edge>> edges;
  std::vector<std::vector<int>> eps;
  int start = 0;
  int accept = 1;

  int add_state() {
    edges.emplace_back();
    eps.emplace_back();
    return static_cast<int>(edges.size()) - 1;
  }
};

// Fragment with dedicated entry/exit, Thompson style.
struct Frag {
  int in;
  int out;
};

class NfaBuilder {
 public:
  explicit NfaBuilder(const AtomTable& table) : table_(table) {}

  Nfa build(const Re& re) {
    Nfa nfa;
    nfa.edges.clear();
    nfa.eps.clear();
    nfa_ = &nfa;
    Frag f = visit(re);
    nfa.start = f.in;
    nfa.accept = f.out;
    return nfa;
  }

 private:
  const AtomTable& table_;
  Nfa* nfa_ = nullptr;

  int fresh() { return nfa_->add_state(); }
  void eps(int a, int b) { nfa_->eps[a].push_back(b); }
  void edge(int a, Formula f, int b) {
    nfa_->edges[a].push_back({std::move(f), b});
  }

  Frag visit(const Re& re);
  Frag embed_dfa(const Dfa& dfa);
};

uint64_t project_letter(uint64_t letter, const std::vector<int>& pos_map) {
  uint64_t out = 0;
  for (size_t i = 0; i < pos_map.size(); ++i) {
    if ((letter >> pos_map[i]) & 1) out |= uint64_t{1} << i;
  }
  return out;
}

// Positions of `sub` atoms inside `full` (both sorted-unique id lists).
std::vector<int> position_map(const std::vector<int>& sub,
                              const std::vector<int>& full) {
  std::vector<int> out(sub.size());
  for (size_t i = 0; i < sub.size(); ++i) {
    auto it = std::find(full.begin(), full.end(), sub[i]);
    assert(it != full.end());
    out[i] = static_cast<int>(it - full.begin());
  }
  return out;
}

// Enumerates the assignment-consistent letters over `atom_ids`.
std::vector<uint64_t> consistent_letters(const AtomTable& table,
                                         const std::vector<int>& atom_ids) {
  const size_t n = atom_ids.size();
  if (n > static_cast<size_t>(kMaxAtoms)) {
    throw std::runtime_error(
        "PSRE uses too many distinct atoms (" + std::to_string(n) + " > " +
        std::to_string(kMaxAtoms) + ")");
  }
  std::vector<uint64_t> out;
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t bits = 0; bits < limit; ++bits) {
    if (assignment_consistent(table, atom_ids, bits)) out.push_back(bits);
  }
  return out;
}

// Conjunction of atom literals describing one local letter.
Formula letter_formula(const std::vector<int>& atom_ids, uint64_t letter) {
  Formula f = Formula::make_true();
  for (size_t i = 0; i < atom_ids.size(); ++i) {
    Formula lit = Formula::atom(atom_ids[i]);
    if (!((letter >> i) & 1)) lit = Formula::negate(std::move(lit));
    f = Formula::conj(std::move(f), std::move(lit));
  }
  return f;
}

std::vector<int> nfa_atoms(const Nfa& nfa) {
  std::vector<int> atoms;
  for (const auto& st : nfa.edges) {
    for (const auto& e : st) e.label.collect_atoms(atoms);
  }
  std::ranges::sort(atoms);
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return atoms;
}

void eps_closure(const Nfa& nfa, std::set<int>& states) {
  std::deque<int> work(states.begin(), states.end());
  while (!work.empty()) {
    int s = work.front();
    work.pop_front();
    for (int t : nfa.eps[s]) {
      if (states.insert(t).second) work.push_back(t);
    }
  }
}

Dfa determinize(const Nfa& nfa, const AtomTable& table) {
  Dfa dfa;
  dfa.atom_ids = nfa_atoms(nfa);
  dfa.letters = consistent_letters(table, dfa.atom_ids);
  const int n_bits = static_cast<int>(dfa.atom_ids.size());

  // Global-position expansion of each local letter, for Formula::eval_bits.
  std::vector<uint64_t> global(dfa.letters.size(), 0);
  for (size_t li = 0; li < dfa.letters.size(); ++li) {
    for (int i = 0; i < n_bits; ++i) {
      if ((dfa.letters[li] >> i) & 1) {
        global[li] |= uint64_t{1} << dfa.atom_ids[i];
      }
    }
  }

  std::map<std::set<int>, int> ids;
  std::vector<std::set<int>> subsets;
  auto intern = [&](std::set<int> s) {
    eps_closure(nfa, s);
    auto [it, inserted] = ids.emplace(std::move(s), subsets.size());
    if (inserted) subsets.push_back(it->first);
    return it->second;
  };

  dfa.start = intern({nfa.start});
  std::vector<std::vector<int32_t>> sparse;  // per state, per letter index
  for (size_t si = 0; si < subsets.size(); ++si) {
    const std::set<int> cur = subsets[si];  // intern() may grow `subsets`
    sparse.emplace_back(dfa.letters.size());
    for (size_t li = 0; li < dfa.letters.size(); ++li) {
      std::set<int> next;
      for (int s : cur) {
        for (const auto& e : nfa.edges[s]) {
          if (e.label.eval_bits(global[li])) next.insert(e.to);
        }
      }
      sparse[si][li] = intern(std::move(next));
    }
  }

  dfa.accept.resize(subsets.size());
  for (size_t si = 0; si < subsets.size(); ++si) {
    dfa.accept[si] = subsets[si].contains(nfa.accept);
  }
  // Dense table; entries for inconsistent letters are never exercised at
  // runtime (a real packet cannot produce them) and self-loop.
  dfa.trans.assign(subsets.size() << n_bits, 0);
  for (size_t si = 0; si < subsets.size(); ++si) {
    for (uint64_t l = 0; l < (uint64_t{1} << n_bits); ++l) {
      dfa.trans[(si << n_bits) | l] = static_cast<int32_t>(si);
    }
    for (size_t li = 0; li < dfa.letters.size(); ++li) {
      dfa.trans[(si << n_bits) | dfa.letters[li]] = sparse[si][li];
    }
  }
  return dfa;
}

Dfa minimize(const Dfa& in) {
  const int n = in.n_states();
  std::vector<int> part(n);
  for (int s = 0; s < n; ++s) part[s] = in.accept[s] ? 1 : 0;

  // Moore refinement: signatures start with the old class, so classes only
  // ever split; stop when the class count stops growing.
  size_t n_classes = 0;
  while (true) {
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next(n);
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.reserve(in.letters.size() + 1);
      sig.push_back(part[s]);
      for (uint64_t l : in.letters) sig.push_back(part[in.step(s, l)]);
      auto [it, ins] = sig_ids.emplace(std::move(sig), sig_ids.size());
      next[s] = it->second;
    }
    part = std::move(next);
    if (sig_ids.size() == n_classes) break;
    n_classes = sig_ids.size();
  }

  const int m = 1 + *std::ranges::max_element(part);
  Dfa out;
  out.atom_ids = in.atom_ids;
  out.letters = in.letters;
  out.start = part[in.start];
  out.accept.assign(m, false);
  const int n_bits = in.n_bits();
  out.trans.assign(static_cast<size_t>(m) << n_bits, 0);
  for (int s = 0; s < m; ++s) {
    for (uint64_t l = 0; l < (uint64_t{1} << n_bits); ++l) {
      out.trans[(static_cast<size_t>(s) << n_bits) | l] =
          static_cast<int32_t>(s);
    }
  }
  for (int s = 0; s < n; ++s) {
    out.accept[part[s]] = out.accept[part[s]] || in.accept[s];
    for (uint64_t l : in.letters) {
      out.trans[(static_cast<size_t>(part[s]) << n_bits) | l] =
          part[in.step(s, l)];
    }
  }
  return out;
}

Frag NfaBuilder::embed_dfa(const Dfa& dfa) {
  // Wrap a DFA as an NFA fragment: one NFA state per DFA state plus a fresh
  // exit reached by epsilon from accepting states.  Edge labels are
  // disjunctions of letter-minterm formulas.
  std::vector<int> map(dfa.n_states());
  for (int s = 0; s < dfa.n_states(); ++s) map[s] = fresh();
  int out = fresh();
  for (int s = 0; s < dfa.n_states(); ++s) {
    std::map<int, Formula> by_target;
    for (uint64_t l : dfa.letters) {
      int t = dfa.step(s, l);
      Formula f = letter_formula(dfa.atom_ids, l);
      auto it = by_target.find(t);
      if (it == by_target.end()) {
        by_target.emplace(t, std::move(f));
      } else {
        it->second = Formula::disj(std::move(it->second), std::move(f));
      }
    }
    for (auto& [t, f] : by_target) edge(map[s], std::move(f), map[t]);
    if (dfa.accept[s]) eps(map[s], out);
  }
  // Thompson invariant: a fragment's entry must have no incoming edges
  // (self-loops on the DFA start would otherwise re-trigger ε-bypasses
  // added by ?/* around this fragment).
  int in = fresh();
  eps(in, map[dfa.start]);
  return {in, out};
}

Frag NfaBuilder::visit(const Re& re) {
  switch (re.kind) {
    case Re::Kind::Epsilon: {
      int a = fresh();
      int b = fresh();
      eps(a, b);
      return {a, b};
    }
    case Re::Kind::Pred: {
      int a = fresh();
      int b = fresh();
      edge(a, re.pred, b);
      return {a, b};
    }
    case Re::Kind::Concat: {
      Frag a = visit(re.kids[0]);
      Frag b = visit(re.kids[1]);
      eps(a.out, b.in);
      return {a.in, b.out};
    }
    case Re::Kind::Alt: {
      Frag a = visit(re.kids[0]);
      Frag b = visit(re.kids[1]);
      int in = fresh();
      int out = fresh();
      eps(in, a.in);
      eps(in, b.in);
      eps(a.out, out);
      eps(b.out, out);
      return {in, out};
    }
    case Re::Kind::Star: {
      Frag a = visit(re.kids[0]);
      int in = fresh();
      int out = fresh();
      eps(in, a.in);
      eps(in, out);
      eps(a.out, a.in);
      eps(a.out, out);
      return {in, out};
    }
    case Re::Kind::Plus: {
      Frag a = visit(re.kids[0]);
      int in = fresh();
      int out = fresh();
      eps(in, a.in);
      eps(a.out, a.in);
      eps(a.out, out);
      return {in, out};
    }
    case Re::Kind::Opt: {
      Frag a = visit(re.kids[0]);
      eps(a.in, a.out);
      return a;
    }
    case Re::Kind::And: {
      Dfa left = compile_regex(re.kids[0], table_);
      Dfa right = compile_regex(re.kids[1], table_);
      return embed_dfa(dfa_product(left, right, table_, 0));
    }
    case Re::Kind::Not: {
      Dfa inner = compile_regex(re.kids[0], table_);
      Dfa flipped = inner;
      for (size_t i = 0; i < flipped.accept.size(); ++i) {
        flipped.accept[i] = !flipped.accept[i];
      }
      return embed_dfa(flipped);
    }
  }
  throw std::logic_error("unreachable Re kind");
}

}  // namespace

bool re_nullable(const Re& re) {
  switch (re.kind) {
    case Re::Kind::Epsilon: return true;
    case Re::Kind::Pred: return false;
    case Re::Kind::Concat:
      return re_nullable(re.kids[0]) && re_nullable(re.kids[1]);
    case Re::Kind::Alt:
      return re_nullable(re.kids[0]) || re_nullable(re.kids[1]);
    case Re::Kind::Star:
    case Re::Kind::Opt:
      return true;
    case Re::Kind::Plus: return re_nullable(re.kids[0]);
    case Re::Kind::And:
      return re_nullable(re.kids[0]) && re_nullable(re.kids[1]);
    case Re::Kind::Not: return !re_nullable(re.kids[0]);
  }
  return false;
}

bool Dfa::is_dead(int state) const {
  std::vector<bool> seen(n_states(), false);
  std::deque<int> work{state};
  seen[state] = true;
  while (!work.empty()) {
    int s = work.front();
    work.pop_front();
    if (accept[s]) return false;
    for (uint64_t l : letters) {
      int t = step(s, l);
      if (!seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    }
  }
  return true;
}

Dfa compile_regex(const Re& re, const AtomTable& table) {
  NfaBuilder builder(table);
  Nfa nfa = builder.build(re);
  return minimize(determinize(nfa, table));
}

Dfa dfa_product(const Dfa& a, const Dfa& b, const AtomTable& table,
                int mode) {
  std::vector<int> atoms = a.atom_ids;
  atoms.insert(atoms.end(), b.atom_ids.begin(), b.atom_ids.end());
  std::ranges::sort(atoms);
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());

  Dfa out;
  out.atom_ids = atoms;
  out.letters = consistent_letters(table, atoms);
  const std::vector<int> amap = position_map(a.atom_ids, atoms);
  const std::vector<int> bmap = position_map(b.atom_ids, atoms);

  std::map<std::pair<int, int>, int> ids;
  std::vector<std::pair<int, int>> pairs;
  auto intern = [&](std::pair<int, int> p) {
    auto [it, ins] = ids.emplace(p, pairs.size());
    if (ins) pairs.push_back(p);
    return it->second;
  };
  out.start = intern({a.start, b.start});

  std::vector<std::vector<int32_t>> sparse;
  for (size_t si = 0; si < pairs.size(); ++si) {
    const auto [pa, pb] = pairs[si];  // intern() may grow `pairs`
    sparse.emplace_back(out.letters.size());
    for (size_t li = 0; li < out.letters.size(); ++li) {
      uint64_t l = out.letters[li];
      sparse[si][li] = intern({a.step(pa, project_letter(l, amap)),
                               b.step(pb, project_letter(l, bmap))});
    }
  }
  out.accept.resize(pairs.size());
  for (size_t si = 0; si < pairs.size(); ++si) {
    bool ia = a.accept[pairs[si].first];
    bool ib = b.accept[pairs[si].second];
    out.accept[si] = mode == 0 ? (ia && ib) : (ia || ib);
  }
  const int n_bits = static_cast<int>(atoms.size());
  out.trans.assign(pairs.size() << n_bits, 0);
  for (size_t si = 0; si < pairs.size(); ++si) {
    for (uint64_t l = 0; l < (uint64_t{1} << n_bits); ++l) {
      out.trans[(si << n_bits) | l] = static_cast<int32_t>(si);
    }
    for (size_t li = 0; li < out.letters.size(); ++li) {
      out.trans[(si << n_bits) | out.letters[li]] = sparse[si][li];
    }
  }
  return minimize(out);
}

// --------------------------------------------------------------- ambiguity

namespace {

struct UnionView {
  std::vector<int> atoms;
  std::vector<uint64_t> letters;
  std::vector<int> fmap;
  std::vector<int> gmap;
};

UnionView make_union(const Dfa& f, const Dfa& g, const AtomTable& table) {
  UnionView u;
  u.atoms = f.atom_ids;
  u.atoms.insert(u.atoms.end(), g.atom_ids.begin(), g.atom_ids.end());
  std::ranges::sort(u.atoms);
  u.atoms.erase(std::unique(u.atoms.begin(), u.atoms.end()), u.atoms.end());
  u.letters = consistent_letters(table, u.atoms);
  u.fmap = position_map(f.atom_ids, u.atoms);
  u.gmap = position_map(g.atom_ids, u.atoms);
  return u;
}

}  // namespace

bool concat_unambiguous(const Dfa& f, const Dfa& g, const AtomTable& table) {
  const UnionView u = make_union(f, g, table);
  // Two runs over the same stream, both decomposing it as D_f · D_g; run A
  // switches strictly before run B.  Phases: 0 = neither switched,
  // 1 = A switched at the current boundary (B may not switch yet),
  // 2 = A switched and at least one letter consumed, 3 = both switched.
  struct Cfg {
    int a, b;
    int phase;
    bool operator<(const Cfg& o) const {
      return std::tie(a, b, phase) < std::tie(o.a, o.b, o.phase);
    }
  };
  std::set<Cfg> seen;
  std::deque<Cfg> work;
  auto push = [&](Cfg c) {
    if (seen.insert(c).second) work.push_back(c);
  };
  // Boundary (epsilon) moves.
  auto expand = [&](Cfg c) {
    push(c);
    if (c.phase == 0 && f.accept[c.a]) push({g.start, c.b, 1});
    if (c.phase == 2 && f.accept[c.b]) push({c.a, g.start, 3});
  };

  expand({f.start, f.start, 0});
  while (!work.empty()) {
    Cfg c = work.front();
    work.pop_front();
    if (c.phase == 3 && g.accept[c.a] && g.accept[c.b]) return false;
    for (uint64_t l : u.letters) {
      uint64_t lf = project_letter(l, u.fmap);
      uint64_t lg = project_letter(l, u.gmap);
      Cfg n = c;
      n.a = (c.phase == 0) ? f.step(c.a, lf) : g.step(c.a, lg);
      n.b = (c.phase == 3) ? g.step(c.b, lg) : f.step(c.b, lf);
      if (n.phase == 1) n.phase = 2;
      expand(n);
    }
  }
  return true;
}

bool star_unambiguous(const Dfa& f, const AtomTable& table) {
  if (f.accepts_empty()) return false;  // empty segments: never unambiguous
  const UnionView u = make_union(f, f, table);
  struct Cfg {
    int a, b;
    bool div;
    bool operator<(const Cfg& o) const {
      return std::tie(a, b, div) < std::tie(o.a, o.b, o.div);
    }
  };
  std::set<Cfg> seen;
  std::deque<Cfg> work;
  auto push = [&](Cfg c) {
    if (seen.insert(c).second) work.push_back(c);
  };
  push({f.start, f.start, false});
  while (!work.empty()) {
    Cfg c = work.front();
    work.pop_front();
    // End of stream: both runs complete their final segment here.
    if (c.div && f.accept[c.a] && f.accept[c.b]) return false;
    for (uint64_t l : u.letters) {
      uint64_t lf = project_letter(l, u.fmap);
      // Boundary cut choices for each run (cut requires accepting state),
      // then consume the letter.
      for (int ca = 0; ca < 2; ++ca) {
        if (ca && !f.accept[c.a]) continue;
        for (int cb = 0; cb < 2; ++cb) {
          if (cb && !f.accept[c.b]) continue;
          Cfg n;
          n.a = f.step(ca ? f.start : c.a, lf);
          n.b = f.step(cb ? f.start : c.b, lf);
          n.div = c.div || (ca != cb);
          push(n);
        }
      }
    }
  }
  return true;
}

std::string Re::to_string(const AtomTable& table) const {
  switch (kind) {
    case Kind::Epsilon: return "()";
    case Kind::Pred:
      if (pred.kind() == Formula::Kind::True) return ".";
      return "[" + pred.to_string(table) + "]";
    case Kind::Concat:
      return kids[0].to_string(table) + " " + kids[1].to_string(table);
    case Kind::Alt:
      return "(" + kids[0].to_string(table) + " | " +
             kids[1].to_string(table) + ")";
    case Kind::Star: return "(" + kids[0].to_string(table) + ")*";
    case Kind::Plus: return "(" + kids[0].to_string(table) + ")+";
    case Kind::Opt: return "(" + kids[0].to_string(table) + ")?";
    case Kind::And:
      return "(" + kids[0].to_string(table) + " & " +
             kids[1].to_string(table) + ")";
    case Kind::Not: return "!(" + kids[0].to_string(table) + ")";
  }
  return "?";
}

}  // namespace netqre::core
