#include "core/ops.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <map>

#include "core/value_map.hpp"
#include "obs/trace.hpp"

namespace netqre::core {
namespace {

size_t hash_combine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

// A single packet advancing this many guard-trie leaves is an instantiation
// blowup worth a flight-recorder event (cost threshold for the trace).
constexpr uint64_t kWideStepTraceLeaves = 64;

// ------------------------------------------------------------- states

struct EmptyState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  [[nodiscard]] StateBox clone() const override {
    return std::make_unique<EmptyState>();
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    return o.tag() == tag();
  }
  [[nodiscard]] size_t hash() const override { return 1; }
  [[nodiscard]] size_t memory() const override { return sizeof(*this); }
};

struct ValueState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  Value v;
  bool seen = false;
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<ValueState>();
    s->v = v;
    s->seen = seen;
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const ValueState*>(&o);
    return p->seen == seen && p->v == v;
  }
  [[nodiscard]] size_t hash() const override {
    return hash_combine(v.hash(), seen ? 2 : 3);
  }
  [[nodiscard]] size_t memory() const override { return sizeof(*this); }
};

struct MatchState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  int32_t q = 0;
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<MatchState>();
    s->q = q;
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const MatchState*>(&o);
    return p->q == q;
  }
  [[nodiscard]] size_t hash() const override {
    return hash_combine(5, static_cast<size_t>(q));
  }
  [[nodiscard]] size_t memory() const override { return sizeof(*this); }
};

struct CondState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  int32_t q = 0;
  StateBox thn;
  StateBox els;  // may be null
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<CondState>();
    s->q = q;
    s->thn = thn->clone();
    if (els) s->els = els->clone();
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const CondState*>(&o);
    if ( p->q != q || !p->thn->equals(*thn)) return false;
    if (static_cast<bool>(els) != static_cast<bool>(p->els)) return false;
    return !els || p->els->equals(*els);
  }
  [[nodiscard]] size_t hash() const override {
    size_t h = hash_combine(7, static_cast<size_t>(q));
    h = hash_combine(h, thn->hash());
    if (els) h = hash_combine(h, els->hash());
    return h;
  }
  [[nodiscard]] size_t memory() const override {
    return sizeof(*this) + thn->memory() + (els ? els->memory() : 0);
  }
};

struct PairState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  StateBox a;
  StateBox b;
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<PairState>();
    s->a = a->clone();
    s->b = b->clone();
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const PairState*>(&o);
    return p->a->equals(*a) && p->b->equals(*b);
  }
  [[nodiscard]] size_t hash() const override {
    return hash_combine(hash_combine(11, a->hash()), b->hash());
  }
  [[nodiscard]] size_t memory() const override {
    return sizeof(*this) + a->memory() + b->memory();
  }
};

struct SplitState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  struct Case {
    StateBox f;  // frozen at the split point
    StateBox g;
    int32_t g_dom = 0;
  };
  StateBox f_run;  // the not-yet-split run of f
  std::vector<Case> cases;

  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<SplitState>();
    s->f_run = f_run->clone();
    s->cases.reserve(cases.size());
    for (const auto& c : cases) {
      s->cases.push_back({c.f->clone(), c.g->clone(), c.g_dom});
    }
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const SplitState*>(&o);
    if ( !p->f_run->equals(*f_run) || p->cases.size() != cases.size()) {
      return false;
    }
    for (size_t i = 0; i < cases.size(); ++i) {
      if (p->cases[i].g_dom != cases[i].g_dom ||
          !p->cases[i].f->equals(*cases[i].f) ||
          !p->cases[i].g->equals(*cases[i].g)) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] size_t hash() const override {
    size_t h = hash_combine(13, f_run->hash());
    for (const auto& c : cases) {
      h = hash_combine(h, hash_combine(c.f->hash(), c.g->hash()));
    }
    return h;
  }
  [[nodiscard]] size_t memory() const override {
    size_t m = sizeof(*this) + f_run->memory();
    for (const auto& c : cases) {
      m = m + c.f->memory() + c.g->memory() + sizeof(Case);
    }
    return m;
  }
};

struct IterState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  struct Entry {
    AggAcc acc;
    StateBox f;
    int32_t dom = 0;
    bool fresh = true;  // f has consumed nothing since the last cut
  };
  std::vector<Entry> entries;

  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<IterState>();
    s->entries.reserve(entries.size());
    for (const auto& e : entries) {
      s->entries.push_back({e.acc, e.f->clone(), e.dom, e.fresh});
    }
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const IterState*>(&o);
    if ( p->entries.size() != entries.size()) return false;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!(p->entries[i].acc == entries[i].acc) ||
          p->entries[i].dom != entries[i].dom ||
          p->entries[i].fresh != entries[i].fresh ||
          !p->entries[i].f->equals(*entries[i].f)) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] size_t hash() const override {
    size_t h = 17;
    for (const auto& e : entries) {
      h = hash_combine(h, hash_combine(e.f->hash(),
                                       static_cast<size_t>(e.acc.count)));
    }
    return h;
  }
  [[nodiscard]] size_t memory() const override {
    size_t m = sizeof(*this);
    for (const auto& e : entries) m += sizeof(Entry) + e.f->memory();
    return m;
  }
};

struct ActionState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  std::vector<StateBox> args;
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<ActionState>();
    s->args.reserve(args.size());
    for (const auto& a : args) s->args.push_back(a->clone());
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const ActionState*>(&o);
    if ( p->args.size() != args.size()) return false;
    for (size_t i = 0; i < args.size(); ++i) {
      if (!p->args[i]->equals(*args[i])) return false;
    }
    return true;
  }
  [[nodiscard]] size_t hash() const override {
    size_t h = 19;
    for (const auto& a : args) h = hash_combine(h, a->hash());
    return h;
  }
  [[nodiscard]] size_t memory() const override {
    size_t m = sizeof(*this);
    for (const auto& a : args) m += a->memory();
    return m;
  }
};

}  // namespace

// ----------------------------------------------------------------- base

std::vector<const Op*> index_ops(const Op& root) {
  std::vector<const Op*> order;
  // Preorder numbering; shared subexpressions keep the id of their first
  // (leftmost) occurrence, so their counts aggregate under one node.
  auto walk = [&](auto&& self, const Op& op) -> void {
    for (const Op* seen : order) {
      if (seen == &op) return;
    }
    op.set_node_id(static_cast<int>(order.size()));
    order.push_back(&op);
    std::vector<const Op*> kids;
    op.collect_children(kids);
    for (const Op* k : kids) self(self, *k);
  };
  walk(walk, root);
  return order;
}

void Op::set_domain(std::shared_ptr<const Dfa> d) {
  domain_ = std::move(d);
  domain_dead_.clear();
  if (domain_) {
    domain_dead_.resize(domain_->n_states());
    for (int s = 0; s < domain_->n_states(); ++s) {
      domain_dead_[s] = domain_->is_dead(s);
    }
  }
}

// ------------------------------------------------------------- leaf ops

StateBox ConstOp::make_state() const { return std::make_unique<EmptyState>(); }

StateBox LastFieldOp::make_state() const {
  return std::make_unique<ValueState>();
}

void LastFieldOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<ValueState&>(s);
  st.v = extract(field_, *ctx.pkt);
  st.seen = true;
}

Value LastFieldOp::eval(const OpState& s) const {
  const auto& st = static_cast<const ValueState&>(s);
  return st.seen ? st.v : Value::undef();
}

StateBox ParamRefOp::make_state() const {
  return std::make_unique<ValueState>();
}

void ParamRefOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<ValueState&>(s);
  if (slot_ >= 0 && static_cast<size_t>(slot_) < ctx.val->size()) {
    st.v = (*ctx.val)[slot_];
    st.seen = st.v.defined();
  }
}

Value ParamRefOp::eval(const OpState& s) const {
  const auto& st = static_cast<const ValueState&>(s);
  return st.seen ? st.v : Value::undef();
}

// ---------------------------------------------------------------- match

StateBox MatchOp::make_state() const {
  auto s = std::make_unique<MatchState>();
  s->q = dfa_.start;
  return s;
}

void MatchOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<MatchState&>(s);
  const int32_t prev = st.q;
  st.q = dfa_.step(st.q, dfa_letter(ctx, dfa_, *table_));
  if (st.q != prev) prof_trans(ctx, *this);
}

Value MatchOp::eval(const OpState& s) const {
  const auto& st = static_cast<const MatchState&>(s);
  return Value::boolean(dfa_.accept[st.q]);
}

void MatchOp::collect_atoms(std::vector<int>& out) const {
  out.insert(out.end(), dfa_.atom_ids.begin(), dfa_.atom_ids.end());
}

void MatchOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                           bool segment) const {
  out.push_back({&dfa_, gated, segment});
}

// ----------------------------------------------------------------- cond

StateBox CondOp::make_state() const {
  auto s = std::make_unique<CondState>();
  s->q = re_.start;
  s->thn = then_->make_state();
  if (else_) s->els = else_->make_state();
  return s;
}

void CondOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<CondState&>(s);
  const int32_t prev = st.q;
  st.q = re_.step(st.q, dfa_letter(ctx, re_, *table_));
  if (st.q != prev) prof_trans(ctx, *this);
  then_->step(*st.thn, ctx);
  if (else_) else_->step(*st.els, ctx);
}

Value CondOp::eval(const OpState& s) const {
  const auto& st = static_cast<const CondState&>(s);
  if (re_.accept[st.q]) return then_->eval(*st.thn);
  if (else_) return else_->eval(*st.els);
  return Value::undef();
}

void CondOp::collect_atoms(std::vector<int>& out) const {
  out.insert(out.end(), re_.atom_ids.begin(), re_.atom_ids.end());
  then_->collect_atoms(out);
  if (else_) else_->collect_atoms(out);
}

void CondOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                          bool segment) const {
  out.push_back({&re_, gated, segment});
  then_->collect_dfas(out, gated, segment);
  if (else_) else_->collect_dfas(out, gated, segment);
}

// ------------------------------------------------------------------ bin

StateBox BinOp::make_state() const {
  auto s = std::make_unique<PairState>();
  s->a = lhs_->make_state();
  s->b = rhs_->make_state();
  return s;
}

void BinOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<PairState&>(s);
  lhs_->step(*st.a, ctx);
  rhs_->step(*st.b, ctx);
}

Value BinOp::apply(BinKind kind, const Value& a, const Value& b) {
  if (!a.defined() || !b.defined()) return Value::undef();
  const bool ints = a.kind() == Value::Kind::Int &&
                    b.kind() == Value::Kind::Int;
  switch (kind) {
    case BinKind::Add:
      return ints ? Value::integer(a.as_int() + b.as_int())
                  : Value::real(a.as_double() + b.as_double());
    case BinKind::Sub:
      return ints ? Value::integer(a.as_int() - b.as_int())
                  : Value::real(a.as_double() - b.as_double());
    case BinKind::Mul:
      return ints ? Value::integer(a.as_int() * b.as_int())
                  : Value::real(a.as_double() * b.as_double());
    case BinKind::Div:
      if (b.as_double() == 0.0) return Value::undef();
      return Value::real(a.as_double() / b.as_double());
    case BinKind::Gt: return Value::boolean(a.compare(b) > 0);
    case BinKind::Ge: return Value::boolean(a.compare(b) >= 0);
    case BinKind::Lt: return Value::boolean(a.compare(b) < 0);
    case BinKind::Le: return Value::boolean(a.compare(b) <= 0);
    case BinKind::Eq: return Value::boolean(a == b);
    case BinKind::Ne: return Value::boolean(!(a == b));
    case BinKind::And: return Value::boolean(a.as_bool() && b.as_bool());
    case BinKind::Or: return Value::boolean(a.as_bool() || b.as_bool());
  }
  return Value::undef();
}

Value BinOp::eval(const OpState& s) const {
  const auto& st = static_cast<const PairState&>(s);
  return apply(kind_, lhs_->eval(*st.a), rhs_->eval(*st.b));
}

void BinOp::collect_atoms(std::vector<int>& out) const {
  lhs_->collect_atoms(out);
  rhs_->collect_atoms(out);
}

void BinOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                         bool segment) const {
  lhs_->collect_dfas(out, gated, segment);
  rhs_->collect_dfas(out, gated, segment);
}

// ---------------------------------------------------------------- split

StateBox SplitOp::make_state() const {
  auto s = std::make_unique<SplitState>();
  s->f_run = f_->make_state();
  // Split before the first packet: valid when f is defined on the empty
  // stream (Algorithm 2 starts from the (q0_f, true) guarded state; the
  // epsilon-prefix case materializes here).
  if (f_->eval_empty().defined()) {
    s->cases.push_back({f_->make_state(), g_->make_state(),
                        g_->domain() ? g_->domain()->start : 0});
  }
  return s;
}

void SplitOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<SplitState&>(s);
  prof_trans(ctx, *this, st.cases.size());  // split cases advanced
  const Dfa* gdom = g_->domain();
  const uint64_t gl = gdom ? dfa_letter(ctx, *gdom, *table_) : 0;

  // Advance g in every existing split case (Algorithm 2, lines 10-12),
  // pruning cases whose g can never become defined again.
  size_t keep = 0;
  for (auto& c : st.cases) {
    g_->step(*c.g, ctx);
    if (gdom) {
      c.g_dom = gdom->step(c.g_dom, gl);
      if (g_->domain_dead(c.g_dom)) continue;
    }
    st.cases[keep++] = std::move(c);
  }
  st.cases.resize(keep);

  // Advance the unsplit run of f (lines 2-8) and open a new split case at
  // the boundary after this packet when f is defined here.
  f_->step(*st.f_run, ctx);
  if (f_->eval(*st.f_run).defined()) {
    SplitState::Case c{st.f_run->clone(), g_->make_state(),
                       gdom ? gdom->start : 0};
    bool dup = false;
    for (const auto& e : st.cases) {
      if (e.g_dom == c.g_dom && e.f->equals(*c.f) && e.g->equals(*c.g)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      st.cases.push_back(std::move(c));
      prof_trans(ctx, *this);  // new split case opened
    }
  }
}

Value SplitOp::eval(const OpState& s) const {
  const auto& st = static_cast<const SplitState&>(s);
  auto combine = [&](const Value& vf, const Value& vg) {
    if (!vf.defined() || !vg.defined()) return Value::undef();
    AggAcc acc = AggAcc::identity(agg_);
    acc.add(vf);
    acc.add(vg);
    return acc.result();
  };
  // Whole stream to f, empty suffix to g.
  Value whole = combine(f_->eval(*st.f_run), g_->eval_empty());
  if (whole.defined()) return whole;
  for (const auto& c : st.cases) {
    Value v = combine(f_->eval(*c.f), g_->eval(*c.g));
    if (v.defined()) return v;  // unambiguity: at most one case is defined
  }
  return Value::undef();
}

void SplitOp::collect_atoms(std::vector<int>& out) const {
  f_->collect_atoms(out);
  g_->collect_atoms(out);
}

void SplitOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                           bool segment) const {
  // f's definedness opens split cases; g's definedness validates them.
  f_->collect_dfas(out, gated, /*segment=*/true);
  g_->collect_dfas(out, gated, /*segment=*/true);
  if (g_->domain()) out.push_back({g_->domain(), gated, segment});
}

// ----------------------------------------------------------------- iter

StateBox IterOp::make_state() const {
  auto s = std::make_unique<IterState>();
  s->entries.push_back({AggAcc::identity(agg_), f_->make_state(),
                        f_->domain() ? f_->domain()->start : 0, true});
  return s;
}

void IterOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<IterState&>(s);
  prof_trans(ctx, *this, st.entries.size());  // iter entries advanced
  const Dfa* fdom = f_->domain();
  const uint64_t fl = fdom ? dfa_letter(ctx, *fdom, *table_) : 0;

  std::vector<IterState::Entry> next;
  next.reserve(st.entries.size() + 1);
  auto push = [&](IterState::Entry e) {
    for (const auto& o : next) {
      if (o.fresh == e.fresh && o.dom == e.dom && o.acc == e.acc &&
          o.f->equals(*e.f)) {
        return;
      }
    }
    next.push_back(std::move(e));
  };

  for (auto& e : st.entries) {
    f_->step(*e.f, ctx);
    const int32_t dom = fdom ? fdom->step(e.dom, fl) : 0;
    const Value v = f_->eval(*e.f);
    // Cut at the boundary after this packet (Algorithm 3, lines 3-6).
    if (v.defined()) {
      AggAcc acc = e.acc;
      acc.add(v);
      push({std::move(acc), f_->make_state(),
            fdom ? fdom->start : 0, true});
    }
    // Continue the open segment (line 7) unless it can never complete.
    if (!fdom || !f_->domain_dead(dom)) {
      push({e.acc, std::move(e.f), dom, false});
    }
  }
  st.entries = std::move(next);
}

Value IterOp::eval(const OpState& s) const {
  const auto& st = static_cast<const IterState&>(s);
  for (const auto& e : st.entries) {
    if (e.fresh) return e.acc.result();  // unambiguity: unique fresh entry
  }
  return Value::undef();
}

void IterOp::collect_atoms(std::vector<int>& out) const {
  f_->collect_atoms(out);
}

void IterOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                          bool segment) const {
  // f's definedness drives cut decisions (Algorithm 3).
  f_->collect_dfas(out, gated, /*segment=*/true);
  if (f_->domain()) out.push_back({f_->domain(), gated, segment});
}

// ----------------------------------------------------------------- fold

namespace {

struct FoldState final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  AggAcc acc;
  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<FoldState>();
    s->acc = acc;
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const FoldState*>(&o);
    return p->acc == acc;
  }
  [[nodiscard]] size_t hash() const override {
    return hash_combine(29, static_cast<size_t>(acc.count) ^
                                static_cast<size_t>(acc.num));
  }
  [[nodiscard]] size_t memory() const override { return sizeof(*this); }
};

}  // namespace

StateBox FoldOp::make_state() const {
  auto s = std::make_unique<FoldState>();
  s->acc = AggAcc::identity(agg_);
  return s;
}

void FoldOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  prof_trans(ctx, *this);  // every step folds one observation
  auto& st = static_cast<FoldState&>(s);
  if (!use_field_) {
    st.acc.add(constant_);
    return;
  }
  uint64_t raw;
  if (Atom::raw_numeric(field_.field, *ctx.pkt, raw)) {
    st.acc.add(Value::integer(static_cast<int64_t>(raw)));
  } else {
    st.acc.add(extract(field_, *ctx.pkt));
  }
}

Value FoldOp::eval(const OpState& s) const {
  return static_cast<const FoldState&>(s).acc.result();
}

Value FoldOp::ref_eval(std::span<const net::Packet> stream,
                       Valuation&) const {
  AggAcc acc = AggAcc::identity(agg_);
  for (const auto& p : stream) {
    acc.add(use_field_ ? extract(field_, p) : constant_);
  }
  return acc.result();
}

// ----------------------------------------------------------------- comp

StateBox CompOp::make_state() const {
  auto s = std::make_unique<PairState>();
  s->a = f_->make_state();
  s->b = g_->make_state();
  return s;
}

void CompOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<PairState&>(s);
  f_->step(*st.a, ctx);
  // §3.6 / Algorithm 4: f is applied to every prefix; when defined, its
  // output (the current packet for filter-shaped f) is piped into g.
  if (f_->eval(*st.a).defined()) {
    prof_trans(ctx, *this);  // packet forwarded through the composition
    g_->step(*st.b, ctx);
  }
}

Value CompOp::eval(const OpState& s) const {
  const auto& st = static_cast<const PairState&>(s);
  return g_->eval(*st.b);
}

void CompOp::collect_atoms(std::vector<int>& out) const {
  f_->collect_atoms(out);
  g_->collect_atoms(out);
}

void CompOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                          bool segment) const {
  // f's acceptance is consulted immediately after stepping (Algorithm 4):
  // it must reject on skipped letters so that no g update is missed.
  f_->collect_dfas(out, /*gated=*/true, segment);
  g_->collect_dfas(out, gated, segment);
}

// --------------------------------------------------------------- action

StateBox ActionOp::make_state() const {
  auto s = std::make_unique<ActionState>();
  s->args.reserve(args_.size());
  for (const auto& a : args_) s->args.push_back(a->make_state());
  return s;
}

void ActionOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<ActionState&>(s);
  for (size_t i = 0; i < args_.size(); ++i) args_[i]->step(*st.args[i], ctx);
}

Value ActionOp::eval(const OpState& s) const {
  const auto& st = static_cast<const ActionState&>(s);
  std::string text = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) text += ", ";
    text += args_[i]->eval(*st.args[i]).to_string();
  }
  text += ")";
  return Value::str(std::move(text), Type::Action);
}

void ActionOp::collect_atoms(std::vector<int>& out) const {
  for (const auto& a : args_) a->collect_atoms(out);
}

void ActionOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                            bool segment) const {
  for (const auto& a : args_) a->collect_dfas(out, gated, segment);
}

// -------------------------------------------------------------- ternary

StateBox TernaryOp::make_state() const {
  auto s = std::make_unique<CondState>();
  s->q = 0;  // unused
  s->thn = std::make_unique<PairState>();
  auto* pair = static_cast<PairState*>(s->thn.get());
  pair->a = cond_->make_state();
  pair->b = then_->make_state();
  if (else_) s->els = else_->make_state();
  return s;
}

void TernaryOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  auto& st = static_cast<CondState&>(s);
  auto& pair = static_cast<PairState&>(*st.thn);
  cond_->step(*pair.a, ctx);
  then_->step(*pair.b, ctx);
  if (else_) else_->step(*st.els, ctx);
}

Value TernaryOp::eval(const OpState& s) const {
  const auto& st = static_cast<const CondState&>(s);
  const auto& pair = static_cast<const PairState&>(*st.thn);
  Value c = cond_->eval(*pair.a);
  if (!c.defined()) return Value::undef();
  if (c.as_bool()) return then_->eval(*pair.b);
  return else_ ? else_->eval(*st.els) : Value::undef();
}

Value TernaryOp::ref_eval(std::span<const net::Packet> stream,
                          Valuation& val) const {
  Value c = cond_->ref_eval(stream, val);
  if (!c.defined()) return Value::undef();
  if (c.as_bool()) return then_->ref_eval(stream, val);
  return else_ ? else_->ref_eval(stream, val) : Value::undef();
}

void TernaryOp::collect_atoms(std::vector<int>& out) const {
  cond_->collect_atoms(out);
  then_->collect_atoms(out);
  if (else_) else_->collect_atoms(out);
}

void TernaryOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                             bool segment) const {
  cond_->collect_dfas(out, gated, segment);
  then_->collect_dfas(out, gated, segment);
  if (else_) else_->collect_dfas(out, gated, segment);
}

// ----------------------------------------------------------------- proj

StateBox ProjOp::make_state() const { return sub_->make_state(); }

void ProjOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  sub_->step(s, ctx);
}

Value ProjOp::project(Component c, const Value& v) {
  if (v.kind() != Value::Kind::Conn) return Value::undef();
  const net::Conn& conn = v.as_conn();
  switch (c) {
    case Component::SrcIp: return Value::ip(conn.src_ip);
    case Component::DstIp: return Value::ip(conn.dst_ip);
    case Component::SrcPort:
      return Value::integer(conn.src_port, Type::Port);
    case Component::DstPort:
      return Value::integer(conn.dst_port, Type::Port);
  }
  return Value::undef();
}

Value ProjOp::eval(const OpState& s) const {
  return project(comp_, sub_->eval(s));
}

Value ProjOp::ref_eval(std::span<const net::Packet> stream,
                       Valuation& val) const {
  return project(comp_, sub_->ref_eval(stream, val));
}

void ProjOp::collect_atoms(std::vector<int>& out) const {
  sub_->collect_atoms(out);
}

void ProjOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                          bool segment) const {
  sub_->collect_dfas(out, gated, segment);
}

// ---------------------------------------------------------- param scope

namespace {
std::atomic<bool> g_skip_optimization{true};
}  // namespace

void ParamScopeOp::set_skip_optimization(bool enabled) {
  g_skip_optimization.store(enabled, std::memory_order_relaxed);
}
bool ParamScopeOp::skip_optimization_enabled() {
  return g_skip_optimization.load(std::memory_order_relaxed);
}

// Trie over parameter valuations (§5.1 guarded states, §6 guard tree).
// Level i branches on the value of bound parameter i; `dflt` is the default
// branch standing for every value not listed among the siblings.  Leaves
// (depth == n_params) hold the composite state of the inner expression.
struct ParamScopeOp::Node {
  ValueMap<std::unique_ptr<Node>> kids;
  std::unique_ptr<Node> dflt;  // non-null iff depth < n_params
  StateBox leaf;               // non-null iff depth == n_params

  [[nodiscard]] std::unique_ptr<Node> clone() const {
    auto n = std::make_unique<Node>();
    if (leaf) n->leaf = leaf->clone();
    if (dflt) n->dflt = dflt->clone();
    for (const auto& [k, v] : kids) n->kids.emplace(k, v->clone());
    return n;
  }

  [[nodiscard]] bool equals(const Node& o) const {
    if (static_cast<bool>(leaf) != static_cast<bool>(o.leaf)) return false;
    if (leaf && !leaf->equals(*o.leaf)) return false;
    if (static_cast<bool>(dflt) != static_cast<bool>(o.dflt)) return false;
    if (dflt && !dflt->equals(*o.dflt)) return false;
    if (kids.size() != o.kids.size()) return false;
    for (const auto& [k, v] : kids) {
      auto it = o.kids.find(k);
      if (it == o.kids.end() || !v->equals(*it->second)) return false;
    }
    return true;
  }

  [[nodiscard]] size_t hash() const {
    size_t h = leaf ? leaf->hash() : 23;
    if (dflt) h = hash_combine(h, dflt->hash());
    size_t kh = 0;  // order-independent fold over children
    for (const auto& [k, v] : kids) {
      kh ^= hash_combine(k.hash(), v->hash());
    }
    return hash_combine(h, kh);
  }

  [[nodiscard]] size_t memory() const {
    size_t m = sizeof(Node);
    if (leaf) m += leaf->memory();
    if (dflt) m += dflt->memory();
    for (const auto& [k, v] : kids) {
      m += sizeof(Value) + 16 + v->memory();  // 16 ~ flat-map slot overhead
    }
    return m;
  }
};

namespace {

struct ScopeStateImpl final : OpState {
  [[nodiscard]] const void* tag() const override {
    static const char t{};
    return &t;
  }
  const ParamScopeOp* owner = nullptr;
  std::unique_ptr<ParamScopeOp::Node> root;
  std::vector<Value> keys;  // EvalAt: cached key values
  uint64_t eager_steps = 0;
  uint64_t combos_skipped = 0;

  // Per-packet scratch, reused across steps (not part of the logical state;
  // clone()/equals() ignore it).  Kept per state instance: nested scopes
  // each use their own buffers.
  // Distinct candidate values per bound parameter, pointing into cand_raw
  // (no per-packet Value copies; raw storage is stable while cands is live).
  std::vector<std::vector<const Value*>> cand_pool;
  // Per-atom candidates before dedup, [param] -> one Value per
  // cand_atoms_[param] entry; the letter setup reuses these by cand_index.
  std::vector<std::vector<Value>> cand_raw;
  std::vector<ParamScopeOp::DfaCtx> dfa_scratch;
  std::vector<std::pair<ParamScopeOp::Node*, Value>> prune_scratch;
  std::vector<const OpState*> stepped_scratch;
  std::vector<LetterHint> hint_scratch;
  std::vector<std::vector<ParamScopeOp::Node*>> resolved_scratch;

  [[nodiscard]] StateBox clone() const override {
    auto s = std::make_unique<ScopeStateImpl>();
    s->owner = owner;
    s->root = root->clone();
    s->keys = keys;
    s->eager_steps = eager_steps;
    s->combos_skipped = combos_skipped;
    return s;
  }
  [[nodiscard]] bool equals(const OpState& o) const override {
    if (o.tag() != tag()) return false;
    auto* p = static_cast<const ScopeStateImpl*>(&o);
    return p->keys == keys && p->root->equals(*root);
  }
  [[nodiscard]] size_t hash() const override { return root->hash(); }
  [[nodiscard]] size_t memory() const override {
    return sizeof(*this) + root->memory();
  }
};

}  // namespace

ParamScopeOp::ParamScopeOp(int slot_lo, int n_params, ScopeMode mode,
                           OpPtr inner,
                           std::shared_ptr<const AtomTable> table,
                           bool force_eager)
    : slot_lo_(slot_lo),
      n_params_(n_params),
      mode_(std::move(mode)),
      inner_(std::move(inner)),
      table_(std::move(table)),
      cand_atoms_(n_params) {
  if (n_params_ < 1 || n_params_ > kMaxParams) {
    throw std::runtime_error("parameter scope supports 1.." +
                             std::to_string(kMaxParams) + " parameters");
  }
  const SparseValidation v =
      validate_sparse_scope(*inner_, *table_, slot_lo_, n_params_);
  eager_ = force_eager || !v.miss_ok;
  skip_param_ = v.skip_param;
  all_skip_ = std::ranges::all_of(skip_param_, [](bool b) { return b; });
  dyn_check_ = inner_->has_ungated_updates();
  std::vector<int> atom_ids;
  inner_->collect_atoms(atom_ids);
  std::ranges::sort(atom_ids);
  atom_ids.erase(std::unique(atom_ids.begin(), atom_ids.end()),
                 atom_ids.end());
  for (int id : atom_ids) {
    const Atom& a = table_->at(id);
    if (a.is_param && a.param >= slot_lo_ && a.param < slot_lo_ + n_params_) {
      cand_atoms_[a.param - slot_lo_].push_back(a);
    }
  }

  // Letter-class tables for the combo-skip test.  Value-carrying reads of
  // parameters (ParamRefOp) make two equivalent letters distinguishable, so
  // the test is disabled when eager anyway or when any ParamRefOp exists —
  // approximated by checking the scope's actions: ParamRefOp only occurs in
  // action arguments, and actions always sit above scopes in our lowering,
  // so the test is safe for the inner subtree.
  combo_skip_ok_ = !eager_;
  std::vector<DfaUse> uses;
  inner_->collect_dfas(uses, false, false);
  for (const auto& use : uses) {
    const Dfa& d = *use.dfa;
    ScopedDfa sd;
    sd.dfa = &d;
    uint64_t uncertain = 0;
    for (size_t i = 0; i < d.atom_ids.size(); ++i) {
      const Atom& a = table_->at(d.atom_ids[i]);
      if (a.is_param && a.param >= slot_lo_ &&
          a.param < slot_lo_ + n_params_) {
        const auto& pool = cand_atoms_[a.param - slot_lo_];
        int cand_index = -1;
        for (size_t j = 0; j < pool.size(); ++j) {
          if (pool[j] == a) {
            cand_index = static_cast<int>(j);
            break;
          }
        }
        sd.patoms.push_back(
            {static_cast<int>(i), a.param - slot_lo_, a, cand_index});
      } else if (a.is_param && a.param >= slot_lo_ + n_params_) {
        // Parameter of a scope nested inside this one (slots allocate in
        // pre-order): unbound now, bound during the inner update.
        uncertain |= uint64_t{1} << i;
      }
    }
    if (sd.patoms.empty()) {
      // Unaffected by this scope's params: the letter is leaf-invariant.
      // When no nested scope's atoms are involved either, compute it once
      // per packet and hint it to every leaf step.
      if (uncertain == 0) unparam_hint_dfas_.push_back(&d);
      continue;
    }
    if (uncertain == 0) sd.hint_index = n_scoped_hints_++;
    if (std::popcount(uncertain) > 6) {
      combo_skip_ok_ = false;  // too many uncertain bits to enumerate
    } else {
      // All subsets of the uncertain mask.
      for (uint64_t sub = uncertain;; sub = (sub - 1) & uncertain) {
        sd.uncertain_subsets.push_back(sub);
        if (sub == 0) break;
      }
    }
    if (sd.patoms.size() > 8) {
      combo_skip_ok_ = false;  // per-packet candidate cache is fixed-size
    }
    if (d.n_bits() > 16) {
      combo_skip_ok_ = false;  // dense class table too large
      scoped_dfas_.push_back(std::move(sd));
      continue;
    }
    const uint64_t n_letters = uint64_t{1} << d.n_bits();
    sd.letter_class.resize(n_letters);
    std::map<std::vector<int32_t>, uint32_t> columns;
    for (uint64_t l = 0; l < n_letters; ++l) {
      std::vector<int32_t> col(d.n_states());
      for (int q = 0; q < d.n_states(); ++q) col[q] = d.step(q, l);
      auto [it, ins] = columns.emplace(std::move(col), columns.size());
      sd.letter_class[l] = it->second;
    }
    scoped_dfas_.push_back(std::move(sd));
  }
}

namespace {

std::unique_ptr<ParamScopeOp::Node> make_chain(const Op& inner, int depth,
                                               int n) {
  auto node = std::make_unique<ParamScopeOp::Node>();
  if (depth == n) {
    node->leaf = inner.make_state();
  } else {
    node->dflt = make_chain(inner, depth + 1, n);
  }
  return node;
}

}  // namespace

StateBox ParamScopeOp::make_state() const {
  auto s = std::make_unique<ScopeStateImpl>();
  s->owner = this;
  s->root = make_chain(*inner_, 0, n_params_);
  if (mode_.kind == ScopeMode::Kind::EvalAt) {
    s->keys.assign(mode_.keys.size(), Value::undef());
  }
  return s;
}

void ParamScopeOp::step(OpState& s, const EvalContext& ctx) const {
  prof_step(ctx, *this);
  uint64_t leaves_stepped = 0;  // guard-trie leaves advanced this packet
  auto& st = static_cast<ScopeStateImpl&>(s);
  Valuation& val = *ctx.val;

  // Candidate values per bound parameter, induced by this packet through the
  // atoms `field == param + k` (Algorithm 1's on-demand instantiation).
  if (st.cand_pool.size() < static_cast<size_t>(n_params_)) {
    st.cand_pool.resize(n_params_);
  }
  auto& cands = st.cand_pool;
  if (st.cand_raw.size() < static_cast<size_t>(n_params_)) {
    st.cand_raw.resize(n_params_);
  }
  auto& raw = st.cand_raw;
  for (int i = 0; i < n_params_; ++i) {
    cands[i].clear();
    raw[i].resize(cand_atoms_[i].size());
    for (size_t j = 0; j < cand_atoms_[i].size(); ++j) {
      Value& v = raw[i][j];
      v = cand_atoms_[i][j].candidate(*ctx.pkt);
      if (!v.defined()) continue;
      if (std::ranges::find_if(cands[i], [&](const Value* p) {
            return *p == v;
          }) == cands[i].end()) {
        cands[i].push_back(&v);
      }
    }
  }

  // Letter-class pre-computation for the skip test (§5.1 on-demand
  // instantiation + §6 guard-tree compaction): base letter of each DFA with
  // all bound params unbound, and per parameterized atom the one value that
  // satisfies it on this packet.
  auto& dfa_ctx = st.dfa_scratch;
  auto& hints = st.hint_scratch;
  const bool use_skip =
      combo_skip_ok_ && !dyn_check_ && skip_optimization_enabled();
  const int n_hints =
      use_skip ? n_scoped_hints_ + static_cast<int>(unparam_hint_dfas_.size())
               : 0;
  if (use_skip) {
    dfa_ctx.resize(scoped_dfas_.size());
    if (hints.size() != static_cast<size_t>(n_hints)) {
      hints.resize(n_hints);
      for (const auto& sd : scoped_dfas_) {
        if (sd.hint_index >= 0) hints[sd.hint_index].dfa = sd.dfa;
      }
      for (size_t u = 0; u < unparam_hint_dfas_.size(); ++u) {
        hints[n_scoped_hints_ + u].dfa = unparam_hint_dfas_[u];
      }
    }
    for (size_t d = 0; d < scoped_dfas_.size(); ++d) {
      const auto& sd = scoped_dfas_[d];
      DfaCtx& c = dfa_ctx[d];
      c.base = sd.dfa->letter_of(*table_, *ctx.pkt, val);
      c.base_class = sd.letter_class[c.base];
      for (size_t a = 0; a < sd.patoms.size() && a < 8; ++a) {
        const auto& pa = sd.patoms[a];
        c.atom_cand[a] = pa.cand_index >= 0
                             ? raw[pa.param_rel][pa.cand_index]
                             : pa.atom.candidate(*ctx.pkt);
      }
    }
    // Letters of subtree DFAs with no scope-param atoms depend only on the
    // packet (and any already-bound outer scopes): one evaluation covers
    // every leaf stepped this packet.
    for (size_t u = 0; u < unparam_hint_dfas_.size(); ++u) {
      hints[n_scoped_hints_ + u].letter =
          unparam_hint_dfas_[u]->letter_of(*table_, *ctx.pkt, val);
    }
  }

  // True when, under the valuation currently bound in the scope's slots,
  // every DFA letter stays in the miss equivalence class: such a leaf cannot
  // diverge from its sibling default this packet.
  auto leaf_equiv = [&]() -> bool {
    for (size_t d = 0; d < scoped_dfas_.size(); ++d) {
      const auto& sd = scoped_dfas_[d];
      const auto& c = dfa_ctx[d];
      uint64_t letter = c.base;
      for (size_t a = 0; a < sd.patoms.size(); ++a) {
        const auto& pa = sd.patoms[a];
        const Value& v = val[slot_lo_ + pa.param_rel];
        if (v.defined() && c.atom_cand[a].defined() &&
            v == c.atom_cand[a]) {
          letter |= uint64_t{1} << pa.local_bit;
        }
      }
      if (letter == c.base) continue;
      // Equivalence must hold for every assignment of nested-scope atom
      // bits (they are bound during the inner scope's own update).
      for (uint64_t sub : sd.uncertain_subsets) {
        if (sd.letter_class[letter | sub] != sd.letter_class[c.base | sub]) {
          return false;
        }
      }
    }
    return true;
  };
  // Extension form: does every candidate/default completion below `depth`
  // stay in the miss class?  (Checked before materializing a branch.)
  auto combo_equiv = [&](auto&& self, int depth) -> bool {
    if (depth == n_params_) return leaf_equiv();
    val[slot_lo_ + depth].clear();
    if (!self(self, depth + 1)) return false;
    for (const Value* pv : cands[depth]) {
      const Value& v = *pv;
      val[slot_lo_ + depth] = v;
      const bool ok = self(self, depth + 1);
      val[slot_lo_ + depth].clear();
      if (!ok) return false;
    }
    return true;
  };

  // Like leaf_equiv, but also records each hintable DFA's reconstructed
  // letter so the inner step can reuse it instead of re-evaluating atoms
  // (the reconstruction is exact for DFAs with no nested-scope atoms).
  // Hints must be filled for every DFA even once equivalence is refuted.
  auto leaf_letters = [&]() -> bool {
    bool equiv = true;
    for (size_t d = 0; d < scoped_dfas_.size(); ++d) {
      const auto& sd = scoped_dfas_[d];
      const auto& c = dfa_ctx[d];
      uint64_t letter = c.base;
      for (size_t a = 0; a < sd.patoms.size(); ++a) {
        const auto& pa = sd.patoms[a];
        const Value& v = val[slot_lo_ + pa.param_rel];
        if (v.defined() && c.atom_cand[a].defined() &&
            v == c.atom_cand[a]) {
          letter |= uint64_t{1} << pa.local_bit;
        }
      }
      if (sd.hint_index >= 0) hints[sd.hint_index].letter = letter;
      if (!equiv || letter == c.base) continue;
      for (uint64_t sub : sd.uncertain_subsets) {
        if (sd.letter_class[letter | sub] != sd.letter_class[c.base | sub]) {
          equiv = false;
          break;
        }
      }
    }
    return equiv;
  };

  EvalContext leaf_ctx = ctx;
  if (use_skip) {
    leaf_ctx.hints = hints.data();
    leaf_ctx.n_hints = n_hints;
  }
  auto step_leaf = [&](Node* node) {
    if (use_skip) {
      if (leaf_letters()) {
        ++st.combos_skipped;
        return;
      }
      ++leaves_stepped;
      inner_->step(*node->leaf, leaf_ctx);
    } else {
      ++leaves_stepped;
      inner_->step(*node->leaf, ctx);
    }
  };

  auto& prune_list = st.prune_scratch;
  prune_list.clear();

  // Fast path: when every level passes the per-param skip analysis, a
  // miss-class letter is erasable and non-defining, so cross branches
  // (candidate at one level, default at another) never materialize and
  // spine nodes below the root carry no concrete kids.  Materializing and
  // stepping can then fuse into one walk — each candidate branch resolved
  // with a single hash lookup, cloned from its still-unstepped sibling
  // default — which is observationally identical to the two-phase walk.
  const bool fused_ok = all_skip_ && !eager_ && !dyn_check_;
  if (fused_ok) {
    if (st.resolved_scratch.size() < static_cast<size_t>(n_params_)) {
      st.resolved_scratch.resize(n_params_);
    }
    auto fused = [&](auto&& self, Node* node, int depth) -> void {
      if (depth == n_params_) {
        step_leaf(node);
        return;
      }
      auto& resolved = st.resolved_scratch[depth];
      resolved.clear();
      for (const Value* pv : cands[depth]) {
        const Value& v = *pv;
        Node* child = nullptr;
        auto it = node->kids.empty() ? node->kids.end() : node->kids.find(v);
        if (it != node->kids.end()) {
          child = it->second.get();
        } else {
          val[slot_lo_ + depth] = v;
          const bool skip = use_skip && combo_equiv(combo_equiv, depth + 1);
          val[slot_lo_ + depth].clear();
          if (skip) {
            ++st.combos_skipped;
          } else {
            child = node->kids.emplace(v, node->dflt->clone())
                        .first->second.get();
          }
        }
        resolved.push_back(child);
      }
      self(self, node->dflt.get(), depth + 1);
      for (size_t i = 0; i < cands[depth].size(); ++i) {
        Node* child = resolved[i];
        if (!child) continue;  // skipped by the combo test
        val[slot_lo_ + depth] = *cands[depth][i];
        self(self, child, depth + 1);
        val[slot_lo_ + depth].clear();
        // Converged back to the default? Queue the branch for removal.
        if (depth == n_params_ - 1 && child->equals(*node->dflt)) {
          prune_list.emplace_back(node, *cands[depth][i]);
        }
      }
    };
    fused(fused, st.root.get(), 0);
  } else {
  // Does any level below `depth` carry a candidate?  Branches failing the
  // per-level skip analysis must then be descended even when their own value
  // is not a candidate (e.g. the (x=10, y=20) guarded state of a SYN whose
  // ACK instantiates only y).
  bool deeper_cands[kMaxParams + 1];
  deeper_cands[n_params_] = false;
  for (int i = n_params_ - 1; i >= 0; --i) {
    deeper_cands[i] = deeper_cands[i + 1] || !cands[i].empty();
  }

  // ---- Phase 1: materialize candidate branches (§5.1), cloning from the
  // not-yet-stepped default subtrees.
  auto materialize = [&](auto&& self, Node* node, int depth) -> void {
    if (depth == n_params_) return;
    self(self, node->dflt.get(), depth + 1);
    for (const Value* pv : cands[depth]) {
      const Value& v = *pv;
      auto it = node->kids.find(v);
      val[slot_lo_ + depth] = v;
      if (it == node->kids.end()) {
        if (use_skip && combo_equiv(combo_equiv, depth + 1)) {
          ++st.combos_skipped;
          val[slot_lo_ + depth].clear();
          continue;
        }
        it = node->kids.emplace(v, node->dflt->clone()).first;
      }
      self(self, it->second.get(), depth + 1);
      val[slot_lo_ + depth].clear();
    }
    if (!skip_param_[depth] && deeper_cands[depth + 1]) {
      for (auto& [k, child] : node->kids) {
        if (std::ranges::find_if(cands[depth], [&](const Value* p) {
              return *p == k;
            }) == cands[depth].end()) {
          val[slot_lo_ + depth] = k;
          self(self, child.get(), depth + 1);
          val[slot_lo_ + depth].clear();
        }
      }
    }
  };
  materialize(materialize, st.root.get(), 0);

  // Snapshot the all-default leaf when ungated updates may change it under
  // the miss letter (DESIGN.md §5, miss-skip analysis).
  Node* default_chain = st.root.get();
  for (int i = 0; i < n_params_; ++i) default_chain = default_chain->dflt.get();
  OpState* default_leaf = default_chain->leaf.get();
  StateBox default_pre;
  if (!eager_ && dyn_check_) default_pre = default_leaf->clone();

  // ---- Phase 2: step the touched leaves in place.  Leaves whose letters
  // are miss-equivalent are skipped outright; a stepped concrete leaf that
  // converges back to its sibling default is queued for pruning.
  auto step_walk = [&](auto&& self, Node* node, int depth,
                       bool concrete) -> void {
    if (depth == n_params_) {
      step_leaf(node);
      return;
    }
    val[slot_lo_ + depth].clear();
    self(self, node->dflt.get(), depth + 1, concrete);
    for (const Value* pv : cands[depth]) {
      const Value& v = *pv;
      auto it = node->kids.find(v);
      if (it == node->kids.end()) continue;  // skipped at materialization
      val[slot_lo_ + depth] = v;
      self(self, it->second.get(), depth + 1, true);
      val[slot_lo_ + depth].clear();
      // Converged back to the default? Queue the branch for removal.
      if (depth == n_params_ - 1 && it->second->equals(*node->dflt)) {
        prune_list.emplace_back(node, v);
      }
    }
    if (!skip_param_[depth] && deeper_cands[depth + 1]) {
      for (auto& [k, child] : node->kids) {
        if (std::ranges::find_if(cands[depth], [&](const Value* p) {
              return *p == k;
            }) == cands[depth].end()) {
          val[slot_lo_ + depth] = k;
          self(self, child.get(), depth + 1, true);
          val[slot_lo_ + depth].clear();
          if (depth == n_params_ - 1 && child->equals(*node->dflt)) {
            prune_list.emplace_back(node, k);
          }
        }
      }
    }
  };
  step_walk(step_walk, st.root.get(), 0, false);

  // Miss letter not an identity (or validation failed): every leaf must be
  // stepped; leaves already stepped above are identified by generation
  // marks... the general slow path simply re-runs over the remaining leaves.
  if (eager_ || (default_pre && !default_pre->equals(*default_leaf))) {
    ++st.eager_steps;
    // Which leaves were already stepped?  Exactly those reachable via the
    // cands/default/descent traversal above; re-walk marks them.
    auto& stepped = st.stepped_scratch;
    stepped.clear();
    auto mark = [&](auto&& self, Node* node, int depth) -> void {
      if (depth == n_params_) {
        if (!use_skip || !leaf_equiv()) stepped.push_back(node->leaf.get());
        return;
      }
      val[slot_lo_ + depth].clear();
      self(self, node->dflt.get(), depth + 1);
      for (const Value* pv : cands[depth]) {
        const Value& v = *pv;
        auto it = node->kids.find(v);
        if (it == node->kids.end()) continue;
        val[slot_lo_ + depth] = v;
        self(self, it->second.get(), depth + 1);
        val[slot_lo_ + depth].clear();
      }
      if (!skip_param_[depth] && deeper_cands[depth + 1]) {
        for (auto& [k, child] : node->kids) {
          if (std::ranges::find_if(cands[depth], [&](const Value* p) {
              return *p == k;
            }) == cands[depth].end()) {
            val[slot_lo_ + depth] = k;
            self(self, child.get(), depth + 1);
            val[slot_lo_ + depth].clear();
          }
        }
      }
    };
    mark(mark, st.root.get(), 0);
    auto sweep = [&](auto&& self, Node* node, int depth) -> void {
      if (depth == n_params_) {
        if (std::ranges::find(stepped, node->leaf.get()) == stepped.end()) {
          ++leaves_stepped;
          inner_->step(*node->leaf, ctx);
        }
        return;
      }
      val[slot_lo_ + depth].clear();
      self(self, node->dflt.get(), depth + 1);
      for (auto& [k, child] : node->kids) {
        val[slot_lo_ + depth] = k;
        self(self, child.get(), depth + 1);
        val[slot_lo_ + depth].clear();
      }
    };
    sweep(sweep, st.root.get(), 0);
  }
  }  // !fused_ok

  // Apply queued prunes, then opportunistically fold equal ancestors.
  for (const auto& [parent, key] : prune_list) {
    parent->kids.erase(key);
  }
  if (!prune_list.empty() && n_params_ > 1) {
    auto fold = [&](auto&& self, Node* node, int depth) -> void {
      if (depth >= n_params_ - 1) return;
      for (auto it = node->kids.begin(); it != node->kids.end();) {
        self(self, it->second.get(), depth + 1);
        if (it->second->equals(*node->dflt)) {
          it = node->kids.erase(it);
        } else {
          ++it;
        }
      }
      self(self, node->dflt.get(), depth + 1);
    };
    fold(fold, st.root.get(), 0);
  }

  // Restore unbound slots and cache EvalAt keys.
  for (int i = 0; i < n_params_; ++i) {
    val[slot_lo_ + i].clear();
  }
  if (mode_.kind == ScopeMode::Kind::EvalAt) {
    for (size_t i = 0; i < mode_.keys.size(); ++i) {
      st.keys[i] = extract(mode_.keys[i], *ctx.pkt);
    }
  }
  if constexpr (obs::kEnabled) {
    if (leaves_stepped >= kWideStepTraceLeaves) {
      obs::tracer().record(obs::TraceKind::ScopeWideStep, leaves_stepped,
                          kWideStepTraceLeaves);
    }
  }
  prof_trans(ctx, *this, leaves_stepped);
}

Value ParamScopeOp::eval(const OpState& s) const {
  const auto& st = static_cast<const ScopeStateImpl&>(s);
  if (mode_.kind == ScopeMode::Kind::EvalAt) {
    return eval_at(s, st.keys);
  }
  AggAcc acc = AggAcc::identity(mode_.agg);
  enumerate(s, [&](const std::vector<Value>&, const Value& v) {
    acc.add(v);
  });
  return acc.result();
}

Value ParamScopeOp::eval_at(const OpState& s,
                            const std::vector<Value>& key) const {
  const auto& st = static_cast<const ScopeStateImpl&>(s);
  const Node* node = st.root.get();
  for (int i = 0; i < n_params_; ++i) {
    if (i < static_cast<int>(key.size()) && key[i].defined()) {
      auto it = node->kids.find(key[i]);
      node = it != node->kids.end() ? it->second.get() : node->dflt.get();
    } else {
      node = node->dflt.get();
    }
  }
  return inner_->eval(*node->leaf);
}

void ParamScopeOp::enumerate(
    const OpState& s,
    const std::function<void(const std::vector<Value>&, const Value&)>& fn)
    const {
  const auto& st = static_cast<const ScopeStateImpl&>(s);
  std::vector<Value> vals(n_params_);
  auto walk = [&](auto&& self, const Node* node, int depth) -> void {
    if (depth == n_params_) {
      Value v = inner_->eval(*node->leaf);
      if (v.defined()) fn(vals, v);
      return;
    }
    for (const auto& [k, child] : node->kids) {
      vals[depth] = k;
      self(self, child.get(), depth + 1);
    }
  };
  walk(walk, st.root.get(), 0);
}

void ParamScopeOp::collect_atoms(std::vector<int>& out) const {
  inner_->collect_atoms(out);
}

void ParamScopeOp::collect_dfas(std::vector<DfaUse>& out, bool gated,
                                bool segment) const {
  inner_->collect_dfas(out, gated, segment);
}

ParamScopeOp::Stats ParamScopeOp::stats(const OpState& s) const {
  const auto& st = static_cast<const ScopeStateImpl&>(s);
  Stats out;
  out.eager_steps = st.eager_steps;
  auto walk = [&](auto&& self, const Node* node, int depth) -> void {
    if (depth == n_params_) {
      ++out.leaves;
      return;
    }
    self(self, node->dflt.get(), depth + 1);
    for (const auto& [k, child] : node->kids) self(self, child.get(), depth + 1);
  };
  walk(walk, st.root.get(), 0);
  return out;
}

}  // namespace netqre::core
