#include "lang/analysis.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/fields.hpp"
#include "core/predicate.hpp"
#include "core/regex.hpp"
#include "lang/lower.hpp"
#include "lang/parser.hpp"

namespace netqre::lang {
namespace {

using core::AtomTable;
using core::Formula;
using core::Re;

// Builtin expression-level callables handled directly by the lowerer.
const std::set<std::string> kBuiltinCalls = {
    "filter", "exists", "exist", "alert", "block", "size", "recent", "every",
};
const std::set<std::string> kPredMacros = {"is_tcp", "is_udp", "in_conn"};

// Coarse type classes for the conservative NQ003 check.  Values within one
// class share a runtime representation (Int/Bool/IP/Port/Double all compare
// through the numeric payload), so only cross-class mixes are definite bugs.
enum class TypeClass { Numeric, String, Conn, Packet, Action, Unknown };

TypeClass class_of_surface(const std::string& t) {
  if (t == "int" || t == "bool" || t == "double" || t == "IP" || t == "Port") {
    return TypeClass::Numeric;
  }
  if (t == "string") return TypeClass::String;
  if (t == "Conn") return TypeClass::Conn;
  if (t == "packet") return TypeClass::Packet;
  if (t == "action") return TypeClass::Action;
  return TypeClass::Unknown;  // "re" and future types
}

TypeClass class_of_type(core::Type t) {
  switch (t) {
    case core::Type::Int:
    case core::Type::Bool:
    case core::Type::Double:
    case core::Type::Ip:
    case core::Type::Port:
      return TypeClass::Numeric;
    case core::Type::String: return TypeClass::String;
    case core::Type::Conn: return TypeClass::Conn;
    case core::Type::Packet: return TypeClass::Packet;
    case core::Type::Action: return TypeClass::Action;
  }
  return TypeClass::Unknown;
}

std::string class_name(TypeClass c) {
  switch (c) {
    case TypeClass::Numeric: return "numeric";
    case TypeClass::String: return "string";
    case TypeClass::Conn: return "Conn";
    case TypeClass::Packet: return "packet";
    case TypeClass::Action: return "action";
    case TypeClass::Unknown: return "?";
  }
  return "?";
}

// ---------------------------------------------------------------- pseudo
// Static lowering of predicates and regex domains against *unbound*
// parameters: every in-scope name gets a pseudo parameter slot in a local
// AtomTable, which is exactly how the real compiler treats a parameter whose
// value is not yet known.  This lets the analyzer reuse the core machinery
// (formula_satisfiable, star/concat_unambiguous) without running the
// lowering pass.

// A statically-known binding for a name during pseudo-lowering: either a
// pseudo slot (+ constant shift) or a literal.
struct PBind {
  bool is_slot = true;
  int slot = -1;
  int64_t shift = 0;
  core::Value lit;
};
using PEnv = std::map<std::string, PBind>;

class PseudoLowerer {
 public:
  explicit PseudoLowerer(const Program& prog) : prog_(prog) {}

  AtomTable table;
  // False once anything could not be modelled faithfully; the structural
  // result is still usable for nullability, but not for satisfiability or
  // ambiguity decisions.
  bool atoms_exact = true;

  int slot_of(const std::string& name) {
    auto [it, inserted] = slots_.try_emplace(name, next_slot_);
    if (inserted) ++next_slot_;
    return it->second;
  }

  // ---- predicates ------------------------------------------------------

  Formula lower_pred(const PredExp& p, const PEnv& env) {
    switch (p.kind) {
      case PredExp::Kind::True:
        return Formula::make_true();
      case PredExp::Kind::Cmp:
        return lower_cmp(p, env);
      case PredExp::Kind::And:
        return Formula::conj(lower_pred(p.kids[0], env),
                             lower_pred(p.kids[1], env));
      case PredExp::Kind::Or:
        return Formula::disj(lower_pred(p.kids[0], env),
                             lower_pred(p.kids[1], env));
      case PredExp::Kind::Not:
        return Formula::negate(lower_pred(p.kids[0], env));
      case PredExp::Kind::Macro:
        return lower_macro(p, env);
    }
    return give_up();
  }

  // ---- regex domains ---------------------------------------------------

  // Domain regex of an expression, when it is statically regex-shaped:
  // regex literals, concat sugar, (inlined) sfun references, `f ? v`
  // conditionals, split (concatenation of operand domains), iter (star),
  // filter (/.*[p]/) and exists (/.*/): the cases §3.3's unambiguity
  // requirement can be checked against.  nullopt = structurally unknown.
  std::optional<Re> domain_of(const Exp& e, const PEnv& env) {
    switch (e.kind) {
      case Exp::Kind::Lit:
        return Re::all();  // constants are defined on every stream
      case Exp::Kind::Regex:
      case Exp::Kind::Concat:
        return re_of(e, env);
      case Exp::Kind::Cond: {
        const Exp& c = *e.kids[0];
        if (!is_regex_shaped(c)) return std::nullopt;
        if (e.kids.size() == 3) {
          // `re ? a : b` is defined wherever its branches are; only the
          // all-literal case is statically total.
          if (e.kids[1]->kind == Exp::Kind::Lit &&
              e.kids[2]->kind == Exp::Kind::Lit) {
            return Re::all();
          }
          return std::nullopt;
        }
        return re_of(c, env);
      }
      case Exp::Kind::Split: {
        std::optional<Re> out;
        for (const auto& k : e.kids) {
          std::optional<Re> d = domain_of(*k, env);
          if (!d) return std::nullopt;
          out = out ? Re::concat(std::move(*out), std::move(*d))
                    : std::move(*d);
        }
        return out;
      }
      case Exp::Kind::Iter: {
        std::optional<Re> d = domain_of(*e.kids[0], env);
        if (!d) return std::nullopt;
        return Re::star(std::move(*d));
      }
      case Exp::Kind::Call: {
        if (e.name == "filter") {
          Formula f = Formula::make_true();
          for (const auto& k : e.kids) {
            std::optional<PredExp> p = exp_to_pred(*k);
            if (!p) return std::nullopt;
            f = Formula::conj(std::move(f), lower_pred(*p, env));
          }
          return Re::concat(Re::all(), Re::pred_of(std::move(f)));
        }
        if (e.name == "exists" || e.name == "exist") return Re::all();
        [[fallthrough]];
      }
      case Exp::Kind::Name: {
        if (e.kind == Exp::Kind::Name && e.name == "last") {
          return std::nullopt;
        }
        const SFun* f = prog_.find(e.name);
        if (!f) return std::nullopt;
        if (f->ret_type == "re") return re_of(e, env);
        std::optional<PEnv> callee = bind_args(*f, e, env);
        if (!callee) return std::nullopt;
        if (!push(f->name)) return std::nullopt;  // recursive
        std::optional<Re> out = domain_of(*f->body, *callee);
        pop();
        return out;
      }
      default:
        return std::nullopt;
    }
  }

  [[nodiscard]] bool is_regex_shaped(const Exp& e) const {
    switch (e.kind) {
      case Exp::Kind::Regex:
      case Exp::Kind::Concat:
        return true;
      case Exp::Kind::Call:
      case Exp::Kind::Name: {
        const SFun* f = prog_.find(e.name);
        return f && f->ret_type == "re";
      }
      default:
        return false;
    }
  }

  // Non-throwing mirror of the lowerer's exp_to_pred (filter/exists args).
  std::optional<PredExp> exp_to_pred(const Exp& e) {
    PredExp out;
    out.line = e.line;
    switch (e.kind) {
      case Exp::Kind::Bin: {
        if (e.op == "&&" || e.op == "||") {
          auto a = exp_to_pred(*e.kids[0]);
          auto b = exp_to_pred(*e.kids[1]);
          if (!a || !b) return std::nullopt;
          out.kind = e.op == "&&" ? PredExp::Kind::And : PredExp::Kind::Or;
          out.kids = {std::move(*a), std::move(*b)};
          return out;
        }
        const Exp& lhs = *e.kids[0];
        if (lhs.kind == Exp::Kind::Name) {
          out.field = lhs.name;
        } else if (lhs.kind == Exp::Kind::FieldOf) {
          out.field = lhs.name == "last" ? lhs.field
                                         : lhs.name + "." + lhs.field;
        } else {
          return std::nullopt;
        }
        out.kind = PredExp::Kind::Cmp;
        out.op = e.op;
        auto rhs = exp_to_operand(*e.kids[1]);
        if (!rhs) return std::nullopt;
        out.rhs = std::move(*rhs);
        return out;
      }
      case Exp::Kind::Call: {
        out.kind = PredExp::Kind::Macro;
        out.macro = e.name;
        for (const auto& k : e.kids) {
          auto op = exp_to_operand(*k);
          if (!op) return std::nullopt;
          out.macro_args.push_back(std::move(*op));
        }
        return out;
      }
      default:
        return std::nullopt;
    }
  }

 private:
  const Program& prog_;
  std::map<std::string, int> slots_;
  int next_slot_ = 0;
  std::vector<std::string> stack_;  // inlining recursion guard

  Formula give_up() {
    atoms_exact = false;
    return Formula::make_true();
  }

  bool push(const std::string& name) {
    for (const auto& s : stack_) {
      if (s == name) return false;
    }
    stack_.push_back(name);
    return true;
  }
  void pop() { stack_.pop_back(); }

  Formula literal_atom(const core::FieldRef& ref, const std::string& op,
                       core::Value lit) {
    core::Atom a;
    a.field = ref;
    a.literal = std::move(lit);
    if (op == "==" || op == "!=") {
      a.op = core::CmpOp::Eq;
    } else if (op == "<") {
      a.op = core::CmpOp::Lt;
    } else if (op == "<=") {
      a.op = core::CmpOp::Le;
    } else if (op == ">") {
      a.op = core::CmpOp::Gt;
    } else if (op == ">=") {
      a.op = core::CmpOp::Ge;
    } else if (op == "contains") {
      a.op = core::CmpOp::Contains;
    } else {
      return give_up();
    }
    Formula f = Formula::atom(table.intern(a));
    return op == "!=" ? Formula::negate(std::move(f)) : f;
  }

  Formula lower_cmp(const PredExp& p, const PEnv& env) {
    std::optional<core::FieldRef> ref = core::resolve_field(p.field);
    if (!ref) return give_up();
    if (p.rhs.kind == PredExp::Operand::Kind::Literal) {
      return literal_atom(*ref, p.op, p.rhs.lit);
    }
    // Parameter operand: bound literal, or (pseudo) slot + shift.
    PBind b;
    auto it = env.find(p.rhs.name);
    if (it != env.end()) {
      b = it->second;
    } else {
      b.slot = slot_of(p.rhs.name);  // free name: NQ001 reported elsewhere
    }
    const int64_t off = p.rhs.offset + b.shift;
    if (!b.is_slot) {
      core::Value v = b.lit;
      if (off != 0) {
        if (v.kind() != core::Value::Kind::Int) return give_up();
        v = core::Value::integer(v.as_int() + off, v.type());
      }
      return literal_atom(*ref, p.op, std::move(v));
    }
    if (p.op != "==" && p.op != "!=") return give_up();
    core::Atom a;
    a.field = *ref;
    a.op = core::CmpOp::Eq;
    a.is_param = true;
    a.param = b.slot;
    a.offset = off;
    Formula f = Formula::atom(table.intern(a));
    return p.op == "!=" ? Formula::negate(std::move(f)) : f;
  }

  Formula lower_macro(const PredExp& p, const PEnv& env) {
    auto proto_atom = [&](net::Proto proto) {
      core::Atom a;
      a.field = {core::Field::Proto, -1};
      a.op = core::CmpOp::Eq;
      a.literal = core::Value::integer(static_cast<int>(proto));
      return Formula::atom(table.intern(a));
    };
    auto conn_atom = [&](const PredExp::Operand& arg) -> Formula {
      if (arg.kind != PredExp::Operand::Kind::Name) return give_up();
      core::Atom a;
      a.field = {core::Field::ConnId, -1};
      a.op = core::CmpOp::Eq;
      a.is_param = true;
      auto it = env.find(arg.name);
      a.param = (it != env.end() && it->second.is_slot) ? it->second.slot
                                                        : slot_of(arg.name);
      return Formula::atom(table.intern(a));
    };
    if (p.macro == "is_tcp" || p.macro == "is_udp") {
      Formula f = proto_atom(p.macro == "is_tcp" ? net::Proto::Tcp
                                                 : net::Proto::Udp);
      if (!p.macro_args.empty()) {
        f = Formula::conj(std::move(f), conn_atom(p.macro_args[0]));
      }
      return f;
    }
    if (p.macro == "in_conn" && !p.macro_args.empty()) {
      return conn_atom(p.macro_args[0]);
    }
    return give_up();
  }

  std::optional<PredExp::Operand> exp_to_operand(const Exp& e) {
    PredExp::Operand op;
    switch (e.kind) {
      case Exp::Kind::Lit:
        op.lit = e.lit;
        return op;
      case Exp::Kind::Name:
        op.kind = PredExp::Operand::Kind::Name;
        op.name = e.name;
        return op;
      case Exp::Kind::Bin:
        if ((e.op == "+" || e.op == "-") &&
            e.kids[0]->kind == Exp::Kind::Name &&
            e.kids[1]->kind == Exp::Kind::Lit) {
          op.kind = PredExp::Operand::Kind::Name;
          op.name = e.kids[0]->name;
          op.offset = e.kids[1]->lit.as_int() * (e.op == "-" ? -1 : 1);
          return op;
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  // ---- regex expressions -----------------------------------------------

  std::optional<Re> re_of(const Exp& e, const PEnv& env) {
    switch (e.kind) {
      case Exp::Kind::Regex:
        return re_of_reexp(e.re, env);
      case Exp::Kind::Concat: {
        std::optional<Re> out;
        for (const auto& k : e.kids) {
          std::optional<Re> r = re_of(*k, env);
          if (!r) return std::nullopt;
          out = out ? Re::concat(std::move(*out), std::move(*r))
                    : std::move(*r);
        }
        return out;
      }
      case Exp::Kind::Call:
      case Exp::Kind::Name: {
        const SFun* f = prog_.find(e.name);
        if (!f || f->ret_type != "re") return std::nullopt;
        std::optional<PEnv> callee = bind_args(*f, e, env);
        if (!callee) return std::nullopt;
        if (!push(f->name)) return std::nullopt;  // recursive
        std::optional<Re> out = re_of(*f->body, *callee);
        pop();
        return out;
      }
      default:
        return std::nullopt;
    }
  }

  std::optional<Re> re_of_reexp(const ReExp& r, const PEnv& env) {
    auto bin = [&](Re (*mk)(Re, Re)) -> std::optional<Re> {
      auto a = re_of_reexp(r.kids[0], env);
      auto b = re_of_reexp(r.kids[1], env);
      if (!a || !b) return std::nullopt;
      return mk(std::move(*a), std::move(*b));
    };
    auto un = [&](Re (*mk)(Re)) -> std::optional<Re> {
      auto a = re_of_reexp(r.kids[0], env);
      if (!a) return std::nullopt;
      return mk(std::move(*a));
    };
    switch (r.kind) {
      case ReExp::Kind::Eps: return Re::eps();
      case ReExp::Kind::Any: return Re::any();
      case ReExp::Kind::Pred: return Re::pred_of(lower_pred(r.pred, env));
      case ReExp::Kind::Concat: return bin(&Re::concat);
      case ReExp::Kind::Alt: return bin(&Re::alt);
      case ReExp::Kind::Star: return un(&Re::star);
      case ReExp::Kind::Plus: return un(&Re::plus);
      case ReExp::Kind::Opt: return un(&Re::opt);
      case ReExp::Kind::And: return bin(&Re::conj);
      case ReExp::Kind::Not: return un(&Re::negate);
    }
    return std::nullopt;
  }

  // Static argument binding for inlined calls: literals, names (mapped to
  // the caller's binding or a fresh pseudo slot), name ± constant, and
  // last.<field> (a dynamic slot in the real lowering — a fresh pseudo slot
  // is exactly its "value unknown" semantics here).
  std::optional<PEnv> bind_args(const SFun& f, const Exp& call,
                                const PEnv& env) {
    const size_t n_args =
        call.kind == Exp::Kind::Call ? call.kids.size() : 0;
    if (n_args != f.params.size()) return std::nullopt;  // NQ003 elsewhere
    PEnv out;
    for (size_t i = 0; i < f.params.size(); ++i) {
      const Exp& arg = *call.kids[i];
      const std::string& pname = f.params[i].second;
      PBind b;
      if (arg.kind == Exp::Kind::Lit) {
        b.is_slot = false;
        b.lit = arg.lit;
      } else if (arg.kind == Exp::Kind::Name) {
        auto it = env.find(arg.name);
        b = it != env.end() ? it->second
                            : PBind{true, slot_of(arg.name), 0, {}};
      } else if (arg.kind == Exp::Kind::Bin &&
                 (arg.op == "+" || arg.op == "-") &&
                 arg.kids[0]->kind == Exp::Kind::Name &&
                 arg.kids[1]->kind == Exp::Kind::Lit) {
        auto it = env.find(arg.kids[0]->name);
        b = it != env.end() ? it->second
                            : PBind{true, slot_of(arg.kids[0]->name), 0, {}};
        const int64_t k =
            arg.kids[1]->lit.as_int() * (arg.op == "-" ? -1 : 1);
        if (b.is_slot) {
          b.shift += k;
        } else if (b.lit.kind() == core::Value::Kind::Int) {
          b.lit = core::Value::integer(b.lit.as_int() + k, b.lit.type());
        } else {
          return std::nullopt;
        }
      } else if (arg.kind == Exp::Kind::FieldOf && arg.name == "last") {
        b.slot = slot_of("last." + arg.field + "#" + f.name + "." + pname);
      } else {
        return std::nullopt;
      }
      out[pname] = std::move(b);
    }
    return out;
  }
};

// ---------------------------------------------------------------- analyzer

struct ScopeVar {
  std::string name;
  std::string type;  // surface type name
  int line = 0;
  bool is_binder = false;
  int uses = 0;
};

class Analyzer {
 public:
  Analyzer(const Program& prog, size_t first_sfun)
      : prog_(prog), first_(first_sfun) {}

  Diagnostics run() {
    for (size_t i = first_; i < prog_.sfuns.size(); ++i) {
      check_sfun(prog_.sfuns[i]);
    }
    return std::move(diags_);
  }

 private:
  const Program& prog_;
  size_t first_;
  Diagnostics diags_;
  std::vector<ScopeVar> scope_;
  const SFun* cur_ = nullptr;
  const Exp* window_ok_ = nullptr;  // the one call allowed to be recent/every

  void error(const char* code, int line, std::string msg) {
    diags_.push_back(Diagnostic::error(code, line, std::move(msg)));
  }
  void warn(const char* code, int line, std::string msg) {
    diags_.push_back(Diagnostic::warning(code, line, std::move(msg)));
  }

  ScopeVar* lookup(const std::string& name) {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  // Pseudo-environment binding every in-scope name to its own slot.
  PEnv scope_env(PseudoLowerer& pl) const {
    PEnv env;
    for (const auto& v : scope_) {
      env[v.name] = PBind{true, pl.slot_of(v.name), 0, {}};
    }
    return env;
  }

  void check_sfun(const SFun& f) {
    cur_ = &f;
    scope_.clear();
    for (const auto& [t, n] : f.params) {
      scope_.push_back({n, t, f.line, false, 0});
    }
    // §3.6: recent(t)/every(t) may only head the top-level composition.
    window_ok_ = nullptr;
    if (f.body->kind == Exp::Kind::Comp) {
      const Exp* h = f.body.get();
      while (h->kind == Exp::Kind::Comp) h = h->kids[0].get();
      if (h->kind == Exp::Kind::Call &&
          (h->name == "recent" || h->name == "every")) {
        window_ok_ = h;
      }
    }
    walk(*f.body);
    for (const auto& v : scope_) {
      if (v.uses == 0) {
        warn("NQ002", v.line,
             "parameter '" + v.name + "' of '" + f.name +
                 "' is never used (its guard-trie scope costs memory for "
                 "nothing)");
      }
    }
    scope_.clear();
  }

  // ---- the main walk: NQ001/NQ002/NQ003/NQ006 + check triggers ---------

  void walk(const Exp& e) {
    switch (e.kind) {
      case Exp::Kind::Lit:
        return;

      case Exp::Kind::Name: {
        if (e.name == "last") return;
        if (ScopeVar* v = lookup(e.name)) {
          ++v->uses;
          return;
        }
        if (const SFun* f = prog_.find(e.name)) {
          if (!f->params.empty()) {
            error("NQ003", e.line,
                  "'" + e.name + "' expects " +
                      std::to_string(f->params.size()) +
                      " argument(s), got 0");
          }
          return;
        }
        error("NQ001", e.line, "undefined name '" + e.name + "'");
        return;
      }

      case Exp::Kind::FieldOf: {
        if (e.name == "last") {
          if (!core::resolve_field(e.field)) {
            error("NQ001", e.line, "unknown field '" + e.field + "'");
          }
          return;
        }
        if (ScopeVar* v = lookup(e.name)) {
          ++v->uses;
          if (class_of_surface(v->type) == TypeClass::Conn &&
              e.field != "srcip" && e.field != "dstip" &&
              e.field != "srcport" && e.field != "dstport") {
            error("NQ001", e.line,
                  "unknown Conn component '" + e.field + "'");
          }
          return;
        }
        error("NQ001", e.line,
              "undefined name '" + e.name + "' in field access");
        return;
      }

      case Exp::Kind::Call:
        walk_call(e);
        return;

      case Exp::Kind::Regex:
        walk_re(e.re);
        return;

      case Exp::Kind::Concat:
      case Exp::Kind::Cond:
      case Exp::Kind::Bin:
      case Exp::Kind::Comp:
        for (const auto& k : e.kids) walk(*k);
        return;

      case Exp::Kind::Split:
        for (const auto& k : e.kids) walk(*k);
        check_split(e);
        return;

      case Exp::Kind::Iter:
        walk(*e.kids[0]);
        check_iter(e);
        return;

      case Exp::Kind::Agg: {
        const size_t base = scope_.size();
        for (const auto& [t, n] : e.binders) {
          scope_.push_back({n, t, e.line, true, 0});
        }
        walk(*e.kids[0]);
        for (size_t i = scope_.size(); i-- > base;) {
          if (scope_[i].uses == 0) {
            warn("NQ002", e.line,
                 "aggregation binder '" + scope_[i].name +
                     "' is never used (its guard-trie scope costs memory "
                     "for nothing)");
          }
        }
        scope_.resize(base);
        return;
      }
    }
  }

  void walk_call(const Exp& e) {
    if (e.name == "recent" || e.name == "every") {
      if (&e != window_ok_) {
        error("NQ006", e.line,
              "time-based filter '" + e.name +
                  "' may only appear at the head of the top-level "
                  "composition chain (§3.6)");
      }
      if (e.kids.size() != 1 || e.kids[0]->kind != Exp::Kind::Lit ||
          e.kids[0]->lit.kind() == core::Value::Kind::Str) {
        error("NQ003", e.line, e.name + "(t) needs one numeric literal");
        for (const auto& k : e.kids) walk(*k);
      }
      return;
    }
    if (e.name == "filter" || e.name == "exists" || e.name == "exist") {
      walk_filter(e);
      return;
    }
    if (e.name == "alert" || e.name == "block") {
      for (const auto& k : e.kids) walk(*k);
      return;
    }
    if (e.name == "size") {
      if (e.kids.size() != 1) {
        error("NQ003", e.line, "size expects 1 argument, got " +
                                   std::to_string(e.kids.size()));
      }
      for (const auto& k : e.kids) walk(*k);
      return;
    }
    const SFun* f = prog_.find(e.name);
    if (!f) {
      error("NQ001", e.line,
            "undefined stream function '" + e.name + "'");
      for (const auto& k : e.kids) walk(*k);
      return;
    }
    check_call(e, *f);
  }

  // Predicate macros are only valid inside [...] atoms and filter args;
  // walking them shares NQ001 name checking.
  void walk_pred(const PredExp& p) {
    switch (p.kind) {
      case PredExp::Kind::True:
        return;
      case PredExp::Kind::Cmp: {
        if (!core::resolve_field(p.field)) {
          error("NQ001", p.line, "unknown field '" + p.field + "'");
        }
        if (p.rhs.kind == PredExp::Operand::Kind::Name) {
          if (ScopeVar* v = lookup(p.rhs.name)) {
            ++v->uses;
          } else {
            error("NQ001", p.line,
                  "undefined name '" + p.rhs.name + "' in predicate");
          }
        }
        return;
      }
      case PredExp::Kind::And:
      case PredExp::Kind::Or:
      case PredExp::Kind::Not:
        for (const auto& k : p.kids) walk_pred(k);
        return;
      case PredExp::Kind::Macro: {
        if (!kPredMacros.contains(p.macro)) {
          error("NQ001", p.line,
                "unknown predicate macro '" + p.macro + "'");
          return;
        }
        if (p.macro == "in_conn" && p.macro_args.empty()) {
          error("NQ003", p.line, "in_conn expects a Conn argument");
        }
        for (const auto& a : p.macro_args) {
          if (a.kind != PredExp::Operand::Kind::Name) continue;
          ScopeVar* v = lookup(a.name);
          if (!v) {
            error("NQ001", p.line,
                  "undefined name '" + a.name + "' in predicate macro");
            continue;
          }
          ++v->uses;
          if (class_of_surface(v->type) != TypeClass::Conn &&
              class_of_surface(v->type) != TypeClass::Unknown) {
            error("NQ003", p.line,
                  "'" + p.macro + "' expects a Conn argument but '" +
                      a.name + "' is " + v->type);
          }
        }
        return;
      }
    }
  }

  void walk_re(const ReExp& r) {
    if (r.kind == ReExp::Kind::Pred) {
      walk_pred(r.pred);
      check_pred_sat(r.pred, r.line);
      return;
    }
    for (const auto& k : r.kids) walk_re(k);
  }

  // ---- NQ003: arity / type mismatch ------------------------------------

  void check_call(const Exp& e, const SFun& f) {
    if (e.kids.size() != f.params.size()) {
      error("NQ003", e.line,
            "'" + f.name + "' expects " + std::to_string(f.params.size()) +
                " argument(s), got " + std::to_string(e.kids.size()));
      for (const auto& k : e.kids) walk(*k);
      return;
    }
    for (size_t i = 0; i < e.kids.size(); ++i) {
      const Exp& arg = *e.kids[i];
      walk(arg);
      const auto& [ptype, pname] = f.params[i];
      TypeClass want = class_of_surface(ptype);
      TypeClass got = TypeClass::Unknown;
      bool form_ok = true;
      switch (arg.kind) {
        case Exp::Kind::Lit:
          got = class_of_type(arg.lit.type());
          break;
        case Exp::Kind::Name: {
          if (ScopeVar* v = lookup(arg.name)) {
            got = class_of_surface(v->type);
          } else {
            // Undefined names / sfun references were already reported or
            // are not static arguments; only the latter is an NQ003.
            form_ok = prog_.find(arg.name) == nullptr;
          }
          break;
        }
        case Exp::Kind::Bin:
          if ((arg.op == "+" || arg.op == "-") &&
              arg.kids[0]->kind == Exp::Kind::Name &&
              arg.kids[1]->kind == Exp::Kind::Lit) {
            if (ScopeVar* v = lookup(arg.kids[0]->name)) {
              got = class_of_surface(v->type);
            }
          } else {
            form_ok = false;
          }
          break;
        case Exp::Kind::FieldOf:
          if (arg.name == "last") {
            if (auto ref = core::resolve_field(arg.field)) {
              got = class_of_type(core::field_type(*ref));
            }
          } else {
            form_ok = false;  // c.srcip etc. cannot be a call argument
          }
          break;
        default:
          form_ok = false;
      }
      if (!form_ok) {
        error("NQ003", arg.line == 0 ? e.line : arg.line,
              "argument " + std::to_string(i + 1) + " to '" + f.name +
                  "' must be a literal, a parameter (optionally ± a "
                  "constant) or last.<field>");
        continue;
      }
      if (want != TypeClass::Unknown && got != TypeClass::Unknown &&
          want != got) {
        error("NQ003", arg.line == 0 ? e.line : arg.line,
              "argument " + std::to_string(i + 1) + " to '" + f.name +
                  "' is " + class_name(got) + " but parameter '" + pname +
                  "' has type " + ptype);
      }
    }
  }

  // ---- NQ004: unsatisfiable predicates ---------------------------------

  void check_pred_sat(const PredExp& p, int line) {
    PseudoLowerer pl(prog_);
    PEnv env = scope_env(pl);
    Formula f = pl.lower_pred(p, env);
    if (!pl.atoms_exact) return;  // modelled imprecisely: stay quiet
    if (!core::formula_satisfiable(pl.table, f)) {
      error("NQ004", line,
            "predicate is unsatisfiable: no packet can match " +
                f.to_string(pl.table));
    }
  }

  void walk_filter(const Exp& e) {
    PseudoLowerer pl(prog_);
    PEnv env = scope_env(pl);
    Formula all = Formula::make_true();
    for (const auto& k : e.kids) {
      // exp_to_pred lives on PseudoLowerer; run the NQ001 walk over the
      // converted predicate (or the raw expression when malformed).
      std::optional<PredExp> p = pl.exp_to_pred(*k);
      if (!p) {
        error("NQ007", k->line == 0 ? e.line : k->line,
              "argument to '" + e.name + "' is not a predicate");
        continue;
      }
      walk_pred(*p);
      all = Formula::conj(std::move(all), pl.lower_pred(*p, env));
    }
    if (pl.atoms_exact && !core::formula_satisfiable(pl.table, all)) {
      error("NQ004", e.line,
            "'" + e.name + "' condition is unsatisfiable: no packet can "
            "match " + all.to_string(pl.table));
    }
  }

  // ---- NQ005: split/iter ambiguity -------------------------------------

  void check_iter(const Exp& e) {
    PseudoLowerer pl(prog_);
    PEnv env = scope_env(pl);
    std::optional<Re> dom = pl.domain_of(*e.kids[0], env);
    if (!dom) return;
    if (core::re_nullable(*dom)) {
      warn("NQ005", e.line,
           "iter body can match the empty stream: every stream has "
           "infinitely many factorizations (§3.3 unambiguity violated)");
      return;
    }
    if (!pl.atoms_exact) return;
    try {
      core::Dfa d = core::compile_regex(*dom, pl.table);
      if (!core::star_unambiguous(d, pl.table)) {
        warn("NQ005", e.line,
             "iter body admits multiple factorizations of the same stream "
             "(§3.3 unambiguity violated): results will be undefined");
      }
    } catch (const std::exception&) {
      // Too many atoms to decide statically; the runtime check remains.
    }
  }

  void check_split(const Exp& e) {
    PseudoLowerer pl(prog_);
    PEnv env = scope_env(pl);
    std::vector<std::optional<Re>> doms;
    doms.reserve(e.kids.size());
    for (const auto& k : e.kids) doms.push_back(pl.domain_of(*k, env));
    if (!pl.atoms_exact) return;
    // Right fold, mirroring the lowering: check each frontier between
    // operand i and the concatenation of everything to its right.
    std::optional<Re> suffix;
    for (size_t i = e.kids.size(); i-- > 0;) {
      if (!doms[i]) {
        suffix = std::nullopt;
        continue;
      }
      if (suffix) {
        try {
          core::Dfa left = core::compile_regex(*doms[i], pl.table);
          core::Dfa right = core::compile_regex(*suffix, pl.table);
          if (!core::concat_unambiguous(left, right, pl.table)) {
            warn("NQ005", e.kids[i]->line == 0 ? e.line : e.kids[i]->line,
                 "split operands " + std::to_string(i + 1) + " and " +
                     std::to_string(i + 2) +
                     " overlap: some stream splits in more than one "
                     "position (§3.3 unambiguity violated)");
          }
        } catch (const std::exception&) {
          // Too many atoms to decide statically.
        }
        suffix = Re::concat(std::move(*doms[i]), std::move(*suffix));
      } else {
        suffix = std::move(*doms[i]);
      }
    }
  }
};

}  // namespace

Diagnostics analyze_program(const Program& prog, size_t first_sfun) {
  return Analyzer(prog, first_sfun).run();
}

Diagnostics analyze_source(const std::string& source) {
  Program prog;
  size_t first = 0;
  try {
    Program prelude = parse_program(stdlib_source());
    prog.sfuns = std::move(prelude.sfuns);
    first = prog.sfuns.size();
    Program user = parse_program(source);
    for (auto& f : user.sfuns) prog.sfuns.push_back(std::move(f));
  } catch (const ParseError& e) {
    return {e.diag};
  } catch (const LexError& e) {
    return {e.diag};
  }
  return analyze_program(prog, first);
}

}  // namespace netqre::lang
